package ast

import (
	"strings"
	"testing"
	"testing/quick"

	"comfort/internal/js/token"
)

func TestQuoteJS(t *testing.T) {
	cases := map[string]string{
		"abc":     `"abc"`,
		`a"b`:     `"a\"b"`,
		"a\nb":    `"a\nb"`,
		"tab\t":   `"tab\t"`,
		"\x01":    `"\x01"`,
		"back\\s": `"back\\s"`,
		"":        `""`,
	}
	for in, want := range cases {
		if got := QuoteJS(in); got != want {
			t.Errorf("QuoteJS(%q) = %s want %s", in, got, want)
		}
	}
}

// TestQuoteJSNeverBreaksLines: quoted output must stay on one line for any
// input (the printer relies on it).
func TestQuoteJSNeverBreaksLines(t *testing.T) {
	f := func(s string) bool {
		q := QuoteJS(s)
		return !strings.ContainsAny(q, "\n\r") && strings.HasPrefix(q, `"`) && strings.HasSuffix(q, `"`)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	// Build a small tree by hand.
	fn := &FuncLit{Name: "f", Params: []string{"x"},
		Body: &BlockStmt{Body: []Stmt{
			&ReturnStmt{X: &BinaryExpr{Op: token.PLUS,
				L: &Ident{Name: "x"}, R: &NumberLit{Value: 1}}},
		}}}
	prog := &Program{Body: []Stmt{
		&FuncDecl{Fn: fn},
		&ExprStmt{X: &CallExpr{Callee: &Ident{Name: "f"},
			Args: []Expr{&NumberLit{Value: 2}}}},
	}}
	count := 0
	Walk(prog, func(Node) bool { count++; return true })
	// Program, FuncDecl, FuncLit, Block, Return, Binary, Ident, Number,
	// ExprStmt, Call, Ident, Number = 12
	if count != 12 {
		t.Errorf("walk count: %d want 12", count)
	}
	if CountNodes(prog) != count {
		t.Errorf("CountNodes disagrees with Walk")
	}
	// Pruned walk stops descending.
	pruned := 0
	Walk(prog, func(n Node) bool {
		pruned++
		_, isFn := n.(*FuncLit)
		return !isFn
	})
	if pruned >= count {
		t.Errorf("pruned walk should visit fewer nodes: %d vs %d", pruned, count)
	}
}

func TestPrintStatements(t *testing.T) {
	prog := &Program{Body: []Stmt{
		&VarDecl{Kind: Var, Decls: []Declarator{{Name: "x", Init: &NumberLit{Value: 1}}}},
		&IfStmt{Cond: &Ident{Name: "x"},
			Then: &ExprStmt{X: &CallExpr{Callee: &Ident{Name: "print"},
				Args: []Expr{&StringLit{Value: "yes"}}}}},
	}}
	out := Print(prog)
	for _, want := range []string{"var x = 1;", "if (x)", `print("yes");`} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintParenthesisesStatementExpressions(t *testing.T) {
	prog := &Program{Body: []Stmt{
		&ExprStmt{X: &FuncLit{Body: &BlockStmt{}}},
		&ExprStmt{X: &ObjectLit{Props: []Property{{Key: "a", Value: &NumberLit{Value: 1}}}}},
	}}
	out := Print(prog)
	if !strings.Contains(out, "(function") || !strings.Contains(out, "({") {
		t.Errorf("statement-position function/object literals need parens:\n%s", out)
	}
}
