package exec

import (
	"fmt"
	"testing"

	"comfort/internal/engines"
)

// TestParseCacheGenerationalEviction checks the segmented eviction policy:
// the cache stays bounded, rotation reports evictions, and — the property
// the wholesale-reset design lacked — entries touched within the last
// generation survive a rotation instead of the whole working set vanishing
// at once.
func TestParseCacheGenerationalEviction(t *testing.T) {
	p := engines.ReferenceTestbed(false).Prepare()
	pc := newParseCache(8, false, false) // generations of 4

	src := func(i int) string { return fmt.Sprintf("var x%d = %d;", i, i) }
	for i := 0; i < 12; i++ {
		if _, err := pc.parse(p, src(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(pc.young)+len(pc.old) > 8 {
		t.Errorf("cache holds %d+%d entries, cap 8", len(pc.young), len(pc.old))
	}
	_, _, evictions := pc.stats()
	if evictions == 0 {
		t.Error("no evictions recorded after exceeding the cap")
	}

	// A hot entry must survive rotations: touch it between insertions so
	// promotion keeps pulling it into the young generation.
	hot := "var hot = 1;"
	if _, err := pc.parse(p, hot); err != nil {
		t.Fatal(err)
	}
	misses0 := missCount(pc)
	for i := 100; i < 130; i++ {
		if _, err := pc.parse(p, src(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := pc.parse(p, hot); err != nil {
			t.Fatal(err)
		}
	}
	if got := missCount(pc) - misses0; got != 30 {
		t.Errorf("hot entry was re-parsed: %d misses beyond the 30 cold inserts", got-30)
	}

	// Wholesale-reset regression guard: after filling far past the cap,
	// the most recently inserted entries are still resident.
	for i := 200; i < 210; i++ {
		if _, err := pc.parse(p, src(i)); err != nil {
			t.Fatal(err)
		}
	}
	misses1 := missCount(pc)
	for i := 206; i < 210; i++ {
		if _, err := pc.parse(p, src(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := missCount(pc) - misses1; got != 0 {
		t.Errorf("recently inserted entries were evicted: %d re-parses", got)
	}
}

func missCount(pc *parseCache) int64 {
	_, m, _ := pc.stats()
	return m
}

// TestParseCacheResolves checks the compiled-program property: cached
// programs come back scope-resolved (and unresolved under DisableResolve).
func TestParseCacheResolves(t *testing.T) {
	p := engines.ReferenceTestbed(false).Prepare()
	pc := newParseCache(16, false, false)
	prog, err := pc.parse(p, "function f(){ return 1; } print(f());")
	if err != nil {
		t.Fatal(err)
	}
	if !prog.ResolvedScopes {
		t.Error("cached program is not resolved")
	}
	pcRaw := newParseCache(16, true, false)
	raw, err := pcRaw.parse(p, "function g(){ return 2; } print(g());")
	if err != nil {
		t.Fatal(err)
	}
	if raw.ResolvedScopes {
		t.Error("DisableResolve cache returned a resolved program")
	}
}
