package builtins

import (
	"comfort/internal/js/interp"
)

func installFunction(r *registry) {
	in := r.in
	fnProto := in.Protos["Function"]

	// Function.prototype is itself callable (returns undefined).
	fnProto.Native = func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Undefined(), nil
	}
	fnProto.NativeName = "Function.prototype"

	ctorBody := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		// new Function(...) — dynamic code construction is routed through
		// the same path as eval but is rarely produced by the generators;
		// an empty function keeps behaviour deterministic.
		return interp.Undefined(), in.TypeErrorf("Function constructor is not supported by this engine family")
	}
	r.ctor("Function", 1, fnProto, ctorBody, ctorBody)

	r.method(fnProto, "Function.prototype.call", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() || !this.Obj().IsCallable() {
			return interp.Undefined(), in.TypeErrorf("Function.prototype.call called on non-callable")
		}
		var rest []interp.Value
		if len(args) > 1 {
			rest = args[1:]
		}
		return in.Call(this.Obj(), arg(args, 0), rest)
	})

	r.method(fnProto, "Function.prototype.apply", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() || !this.Obj().IsCallable() {
			return interp.Undefined(), in.TypeErrorf("Function.prototype.apply called on non-callable")
		}
		var list []interp.Value
		av := arg(args, 1)
		if !av.IsNullish() {
			if !av.IsObject() {
				return interp.Undefined(), in.TypeErrorf("CreateListFromArrayLike called on non-object")
			}
			lenV, err := in.GetPropKey(av, "length")
			if err != nil {
				return interp.Undefined(), err
			}
			n, err := in.ToInteger(lenV)
			if err != nil {
				return interp.Undefined(), err
			}
			for i := 0; i < int(n); i++ {
				v, err := in.GetPropKey(av, interp.FormatNumber(float64(i)))
				if err != nil {
					return interp.Undefined(), err
				}
				list = append(list, v)
			}
		}
		return in.Call(this.Obj(), arg(args, 0), list)
	})

	r.method(fnProto, "Function.prototype.bind", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() || !this.Obj().IsCallable() {
			return interp.Undefined(), in.TypeErrorf("Function.prototype.bind called on non-callable")
		}
		bound := in.NewObject(in.Protos["Function"])
		bound.Class = "Function"
		bound.BoundTarget = this.Obj()
		bound.BoundThis = arg(args, 0)
		if len(args) > 1 {
			bound.BoundArgs = append([]interp.Value(nil), args[1:]...)
		}
		nameV, _ := in.GetPropKey(this, "name")
		name, _ := in.ToString(nameV)
		bound.SetSlot("name", interp.String("bound "+name), interp.Configurable)
		return interp.ObjValue(bound), nil
	})

	r.method(fnProto, "Function.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() || !this.Obj().IsCallable() {
			return interp.Undefined(), in.TypeErrorf("Function.prototype.toString called on non-callable")
		}
		o := this.Obj()
		nameV, _ := in.GetPropKey(this, "name")
		name, _ := in.ToString(nameV)
		if o.Native != nil {
			return interp.String("function " + name + "() { [native code] }"), nil
		}
		return interp.String("function " + name + "() { [source code] }"), nil
	})
}
