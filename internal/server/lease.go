// Lease-based job claims: how several comfortd instances safely share
// one job store. Each instance carries a stable ID; before running a job
// it must hold the job's lease — a per-job file `lease.json` recording
// {instance, epoch, deadline}. The protocol:
//
//   - First claim is an atomic create-if-absent (temp file + hard link),
//     so racing instances cannot both win an unclaimed job.
//   - A held lease is renewed by heartbeat: the holder re-reads the file,
//     verifies it still carries its own {instance, epoch}, and renames in
//     a copy with a fresh deadline.
//   - A peer may take a job over only when the lease is released,
//     expired (deadline passed without renewal), or carries the taker's
//     own instance ID (a prior incarnation of itself — a restarted
//     process cannot be racing itself, so it reclaims immediately, which
//     is what keeps single-instance restarts as fast as PR 9's). A
//     takeover bumps the fencing epoch.
//   - Every store write for a running job — status, checkpoint, result —
//     is epoch-fenced: the writer re-checks that its own deadline has not
//     passed and that the lease file still carries its exact
//     {instance, epoch} before renaming bytes into place. An instance
//     that was stalled past its TTL (GC pause, SIGSTOP, partition to a
//     network store) therefore detects the newer epoch — or its own
//     expired deadline — and self-fences instead of corrupting a peer's
//     state.
//   - Graceful shutdown releases held leases (Released flag, epoch
//     preserved) so a peer picks the work up immediately instead of
//     waiting out the TTL.
//
// Why epoch-fenced rename is sufficient on a local FS: all instances
// share one kernel clock, so "deadline passed" means the same instant to
// everyone and expiry checks need no drift margin. The only unguarded
// window is the few instructions between a writer's fence check and its
// rename syscall; a takeover needs a full TTL of missed renewals first,
// so overlapping that window requires the holder to stall for the whole
// TTL and wake exactly inside it — the classical lease argument, with
// the TTL (seconds) dwarfing the window (microseconds). DESIGN.md §9
// spells out the full state machine.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// LeaseFormatVersion is bumped whenever the lease encoding changes
// incompatibly; ReadLease rejects newer formats cleanly so an old binary
// never misreads (and then overwrites) a newer instance's claim.
const LeaseFormatVersion = 1

// Lease is one job's on-disk claim record.
type Lease struct {
	Format   int    `json:"format"`
	Instance string `json:"instance"`
	// Epoch is the fencing counter, bumped by every takeover. Epochs are
	// NOT globally unique on their own: two instances contesting the
	// same expired lease both mint cur.Epoch+1, so arbitration rests on
	// the {Instance, Epoch} pair — fencedWrite compares both, which is
	// what keeps durable writes single-writer even when two takers
	// transiently believe they hold the same epoch. A writer whose
	// {instance, epoch} is not the file's exact pair has lost the claim.
	Epoch int64 `json:"epoch"`
	// DeadlineMS is the claim's expiry as Unix milliseconds on the
	// store host's clock; renewals push it forward by the TTL.
	DeadlineMS int64 `json:"deadline_ms"`
	// Released marks a graceful hand-back: the job is immediately
	// claimable, and the preserved epoch keeps the fencing history
	// monotone across the hand-off.
	Released bool `json:"released,omitempty"`
}

// fresh reports whether the lease still protects its holder at time now.
func (l *Lease) fresh(now time.Time) bool {
	return !l.Released && now.UnixMilli() < l.DeadlineMS
}

// ErrFenced reports a store write refused because the writer no longer
// holds the job's lease (a peer bumped the fencing epoch, or the
// writer's own deadline passed without renewal).
var ErrFenced = errors.New("lease lost: write fenced")

// errLeaseBusy reports a claim attempt on a job whose lease a live peer
// holds; the maintenance scan re-checks it every heartbeat.
var errLeaseBusy = errors.New("job is claimed by a live peer")

// PeerHeldError reports an operation that needs a job's lease while a
// live peer instance holds it (surfaced by the HTTP layer as a 409).
type PeerHeldError struct{ Instance string }

func (e *PeerHeldError) Error() string {
	return fmt.Sprintf("job is running on live instance %q", e.Instance)
}

// --- store-level lease file operations -------------------------------

// LeasePath is where a job's claim record lives.
func (s *Store) LeasePath(id string) string {
	return filepath.Join(s.jobDir(id), "lease.json")
}

// ReadLease returns a job's lease, nil when the job is unclaimed, or an
// error for a torn/garbage file or a future format version. Lease-file
// errors are per-job: the caller quarantines that one claim, never the
// server.
func (s *Store) ReadLease(id string) (*Lease, error) {
	data, err := os.ReadFile(s.LeasePath(id))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lease for %s: %w", id, err)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return nil, fmt.Errorf("lease for %s unreadable (torn or garbage): %v", id, err)
	}
	if l.Format > LeaseFormatVersion {
		return nil, fmt.Errorf("lease for %s has format %d, this build reads %d — refusing to contest a newer instance's claim",
			id, l.Format, LeaseFormatVersion)
	}
	if l.Format < 1 || l.Instance == "" || l.Epoch < 1 {
		return nil, fmt.Errorf("lease for %s is malformed (format %d, instance %q, epoch %d)",
			id, l.Format, l.Instance, l.Epoch)
	}
	return &l, nil
}

// CreateLease atomically creates a job's lease if and only if none
// exists: the record is staged in a temp file and hard-linked to the
// lease path, which fails with fs.ErrExist when a peer won the race.
// Unlike rename, link never replaces — it is the claim arbiter.
func (s *Store) CreateLease(id string, l *Lease) error {
	dir := s.jobDir(id)
	data, err := json.MarshalIndent(l, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".lease-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	err = os.Link(name, s.LeasePath(id))
	os.Remove(name)
	return err
}

// WriteLease atomically replaces a job's lease record (renewal, epoch
// takeover, release). Callers arbitrate via ReadLease checks; see the
// package comment for why check-then-rename suffices here.
func (s *Store) WriteLease(id string, l *Lease) error {
	return writeJSON(s.LeasePath(id), l)
}

// ReadStatus reads a job's persisted status file (the disk truth a
// non-holding instance mirrors).
func (s *Store) ReadStatus(id string) (Status, error) {
	var st Status
	err := readJSON(filepath.Join(s.jobDir(id), "status.json"), &st)
	return st, err
}

// --- supervisor-side claim / fence machinery -------------------------

// newLease builds a lease for this instance expiring one TTL from now.
func (s *Supervisor) newLease(epoch int64) *Lease {
	return &Lease{
		Format:     LeaseFormatVersion,
		Instance:   s.instance,
		Epoch:      epoch,
		DeadlineMS: s.now().Add(s.ttl).UnixMilli(),
	}
}

// claimJob tries to take a job's lease for this instance. nil means the
// claim is held (j.lease set); errLeaseBusy means a live peer holds it;
// a permanent error (garbage or future-format lease file) quarantines
// the job.
func (s *Supervisor) claimJob(j *Job) error {
	j.mu.Lock()
	held := j.lease
	j.mu.Unlock()
	cur, err := s.store.ReadLease(j.ID)
	if err != nil {
		return permanentf("%v", err)
	}
	next := s.newLease(1)
	switch {
	case cur == nil:
		// Unclaimed: the atomic create arbitrates racing peers.
		if cerr := s.store.CreateLease(j.ID, next); cerr != nil {
			if errors.Is(cerr, fs.ErrExist) {
				return errLeaseBusy
			}
			return fmt.Errorf("lease create: %w", cerr)
		}
	case held != nil && cur.Instance == held.Instance && cur.Epoch == held.Epoch:
		// Still ours from an earlier attempt this incarnation (a retry
		// after backoff, say): extend in place, same epoch.
		next.Epoch = cur.Epoch
		if werr := s.store.WriteLease(j.ID, next); werr != nil {
			return fmt.Errorf("lease renew: %w", werr)
		}
	case cur.Instance == s.instance || cur.Released || !cur.fresh(s.now()):
		// A prior incarnation of this instance, a graceful release, or a
		// dead peer's expired claim: fencing takeover. Bump the epoch so
		// every write the previous holder still has in flight detects
		// the transfer and self-fences.
		next.Epoch = cur.Epoch + 1
		if werr := s.store.WriteLease(j.ID, next); werr != nil {
			return fmt.Errorf("lease takeover: %w", werr)
		}
		// Rename is last-writer-wins: confirm this takeover landed (a
		// peer contesting the same expired lease may have renamed after
		// us — its fence checks will agree it owns the job, ours won't).
		// The confirm itself can race: a contender whose read lands
		// before the rival's rename also believes it won, so two takers
		// may transiently both run until the loser's first fenced write
		// self-fences. Re-confirm once to shrink that window; the safety
		// argument never rests on it — durable writes stay single-writer
		// because fencedWrite compares the {instance, epoch} pair.
		for confirm := 0; confirm < 2; confirm++ {
			chk, cerr := s.store.ReadLease(j.ID)
			if cerr != nil || chk == nil || chk.Instance != next.Instance || chk.Epoch != next.Epoch {
				return errLeaseBusy
			}
		}
	default:
		// A live peer's fresh claim.
		if held != nil {
			s.fenceJob(j) // we thought it was ours; it is not
		}
		return errLeaseBusy
	}
	j.mu.Lock()
	j.lease = next
	j.fenced = false
	j.mu.Unlock()
	return nil
}

// fencedWrite performs one store write for a claimed job under the
// fencing protocol: the write happens only if this instance's lease is
// unexpired by its own clock AND the lease file still carries exactly
// this instance and epoch. On any mismatch the job is fenced locally
// (run cancelled, no further writes) and ErrFenced is returned.
func (s *Supervisor) fencedWrite(j *Job, write func() error) error {
	if gate := s.writeGate; gate != nil {
		gate(j.ID) // test seam: emulates a SIGSTOP'd/stalled instance
	}
	if s.killed.Load() {
		return ErrFenced
	}
	j.mu.Lock()
	l := j.lease
	j.mu.Unlock()
	if l == nil {
		return ErrFenced
	}
	if !l.fresh(s.now()) {
		// Our own deadline passed without renewal: we may already have
		// been taken over. Self-suspend before even looking at the file.
		s.fenceJob(j)
		return ErrFenced
	}
	cur, err := s.store.ReadLease(j.ID)
	if err != nil || cur == nil || cur.Instance != l.Instance || cur.Epoch != l.Epoch {
		s.fenceJob(j)
		return ErrFenced
	}
	return write()
}

// fenceJob marks a job as lost to a peer: the claim is dropped, the
// running campaign (if any) is cancelled, and no transition or store
// write for the job happens from this instance again until a successful
// re-claim.
func (s *Supervisor) fenceJob(j *Job) {
	j.mu.Lock()
	already := j.fenced
	j.fenced = true
	j.lease = nil
	cancel := j.cancelRun
	j.mu.Unlock()
	if already {
		return
	}
	s.fences.Add(1)
	if cancel != nil {
		cancel()
	}
}

// releaseLease gracefully hands a held lease back: the on-disk record is
// marked released with its epoch preserved, so a peer claims the job
// immediately instead of waiting out the TTL. Only this holder's exact
// record is replaced — if the epoch moved on, the lease already belongs
// to someone else and is left alone.
func (s *Supervisor) releaseLease(j *Job) {
	j.mu.Lock()
	l := j.lease
	j.lease = nil
	j.mu.Unlock()
	if l == nil || s.killed.Load() {
		return
	}
	cur, err := s.store.ReadLease(j.ID)
	if err != nil || cur == nil || cur.Instance != l.Instance || cur.Epoch != l.Epoch {
		return
	}
	rel := *l
	rel.Released = true
	_ = s.store.WriteLease(j.ID, &rel)
}

// renewLeases extends every lease this instance holds by one TTL,
// fencing any job whose on-disk lease no longer matches (a peer took it
// over while we stalled).
func (s *Supervisor) renewLeases() {
	for _, j := range s.snapshotJobs() {
		j.mu.Lock()
		l := j.lease
		terminal := terminalState(j.status.State)
		j.mu.Unlock()
		if l == nil || terminal {
			continue
		}
		if !l.fresh(s.now()) {
			// Our own deadline passed without renewal — a peer may already
			// be mid-takeover. Renewing anyway would reopen the classic
			// read/write window: a stale holder waking between the peer's
			// takeover read and write could rename its old-epoch record
			// back over the fresh lease and silently steal ownership back.
			// Self-fence instead; that narrows the steal-back window to
			// the same microsecond rename race data writes already accept.
			s.fenceJob(j)
			continue
		}
		cur, err := s.store.ReadLease(j.ID)
		if err != nil || cur == nil || cur.Instance != l.Instance || cur.Epoch != l.Epoch {
			s.fenceJob(j)
			continue
		}
		if s.killed.Load() {
			return
		}
		nl := s.newLease(l.Epoch)
		if werr := s.store.WriteLease(j.ID, nl); werr == nil {
			j.mu.Lock()
			if j.lease == l {
				j.lease = nl
			}
			j.mu.Unlock()
		}
	}
}

// scanStore is the dead-peer takeover half of the maintenance tick: it
// re-reads the job directory, adopts jobs submitted to peers, mirrors
// the disk status of every job this instance does not hold, and
// enqueues claims for jobs whose lease is absent, released, expired, or
// left behind by a prior incarnation of this instance.
func (s *Supervisor) scanStore() {
	records, maxSeq, _, err := s.store.LoadJobs()
	if err != nil {
		return
	}
	s.mu.Lock()
	if maxSeq >= s.nextSeq {
		s.nextSeq = maxSeq + 1
	}
	adopted := false
	for _, rec := range records {
		if s.jobs[rec.Status.ID] != nil {
			continue
		}
		j := &Job{ID: rec.Status.ID, Seq: rec.Status.Seq, Spec: rec.Spec, hub: newHub(), status: rec.Status}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		adopted = true
		if terminalState(j.status.State) {
			j.hub.close()
		}
	}
	if adopted {
		jobs := s.jobs
		sort.Slice(s.order, func(a, b int) bool { return jobs[s.order[a]].Seq < jobs[s.order[b]].Seq })
	}
	s.mu.Unlock()

	now := s.now()
	for _, j := range s.snapshotJobs() {
		j.mu.Lock()
		mine := j.lease != nil
		terminal := terminalState(j.status.State)
		cancelled := j.cancelled
		j.mu.Unlock()
		if mine || terminal || cancelled {
			continue
		}
		cur, lerr := s.store.ReadLease(j.ID)
		s.refreshFromDisk(j)
		j.mu.Lock()
		state := j.status.State
		j.mu.Unlock()
		if terminalState(state) {
			continue
		}
		// Claimable: unclaimed, broken lease (the claim path will
		// quarantine it with the actionable error), released, expired,
		// or a prior incarnation's. A fresh peer lease is left alone.
		if lerr == nil && cur != nil && cur.Instance != s.instance && cur.fresh(now) {
			continue
		}
		s.mu.Lock()
		if !s.draining {
			s.enqueueLocked(j.ID)
		}
		s.mu.Unlock()
		s.kick()
	}
}

// refreshFromDisk mirrors a job's persisted status into this instance's
// in-memory view — the read side of multi-instance visibility. It never
// touches a job this instance holds or has already seen terminate.
func (s *Supervisor) refreshFromDisk(j *Job) {
	st, err := s.store.ReadStatus(j.ID)
	if err != nil {
		return
	}
	st.ID, st.Seq = j.ID, j.Seq
	st.CasesTotal = j.Spec.Cases
	j.mu.Lock()
	if j.lease != nil || terminalState(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.status = st
	j.mu.Unlock()
	if terminalState(st.State) && !s.killed.Load() {
		j.hub.publish(Sample{JobID: j.ID, State: st.State,
			Progress: campaignProgress(st)})
		j.hub.close()
	}
}

// maintain is one lease-maintenance tick: renew every held lease, then
// scan for peer activity and expired claims. The production heartbeat
// loop calls it on a wall-clock timer; deterministic tests call it
// directly.
func (s *Supervisor) maintain() {
	if s.killed.Load() {
		return
	}
	s.renewLeases()
	s.scanStore()
}

// leaseLoop is the background heartbeat: one maintain tick per
// Heartbeat interval until shutdown.
func (s *Supervisor) leaseLoop() {
	defer s.wg.Done()
	for s.hbSleep(s.ctx, s.hb) {
		if s.killed.Load() {
			return
		}
		s.maintain()
	}
}

// snapshotJobs copies the job list under the supervisor lock.
func (s *Supervisor) snapshotJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}
