// Package interp implements the tree-walking ECMAScript evaluator shared by
// all engine variants. It provides values, objects with prototype chains and
// property descriptors, abstract operations (ToNumber, ToString, ...),
// strict-mode semantics, a deterministic step budget standing in for wall
// time, and a hook interface through which seeded engine defects intercept
// behaviour.
package interp

import (
	"comfort/internal/js/jsnum"
)

// Kind enumerates the ECMAScript language types (Symbol excluded; see
// DESIGN.md for the supported subset).
type Kind uint8

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject

	// kindPending is an internal sentinel marking a shape-mode slot whose
	// lazy property has not materialised yet (see Object.slots). It never
	// escapes the property layer: every slot read resolves the lazy entry
	// before handing the value to the evaluator.
	kindPending Kind = 0xFF
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		return "object"
	}
}

// Value is an ECMAScript language value. The zero Value is undefined.
type Value struct {
	kind Kind
	b    bool
	num  float64
	str  string
	obj  *Object
}

// Undefined returns the undefined value.
func Undefined() Value { return Value{} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool wraps a Go bool.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number wraps a float64.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// String wraps a Go string.
func String(s string) Value { return Value{kind: KindString, str: s} }

// ObjValue wraps an object; a nil object yields undefined.
func ObjValue(o *Object) Value {
	if o == nil {
		return Value{}
	}
	return Value{kind: KindObject, obj: o}
}

// Kind reports the value's language type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNullish reports whether v is undefined or null.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// IsObject reports whether v is an object.
func (v Value) IsObject() bool { return v.kind == KindObject }

// BoolVal returns the bool payload (valid only for KindBool).
func (v Value) BoolVal() bool { return v.b }

// Num returns the number payload (valid only for KindNumber).
func (v Value) Num() float64 { return v.num }

// Str returns the string payload (valid only for KindString).
func (v Value) Str() string { return v.str }

// Obj returns the object payload, or nil.
func (v Value) Obj() *Object { return v.obj }

// SameValueStrict implements the === comparison for two values without any
// coercion (NaN !== NaN, +0 === -0).
func SameValueStrict(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num // NaN != NaN per IEEE
	case KindString:
		return a.str == b.str
	default:
		return a.obj == b.obj
	}
}

// TypeOf implements the typeof operator.
func TypeOf(v Value) string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.obj != nil && v.obj.IsCallable() {
			return "function"
		}
		return "object"
	}
}

// ToBoolean implements ECMA-262 ToBoolean.
func ToBoolean(v Value) bool {
	switch v.kind {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num == v.num && v.num != 0 // false for NaN and ±0
	case KindString:
		return v.str != ""
	default:
		return true
	}
}

// FormatNumber renders a number value per the ToString(Number) algorithm.
func FormatNumber(f float64) string { return jsnum.Format(f) }
