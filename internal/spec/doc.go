// Package spec implements the ECMA-262 side of COMFORT: an embedded
// ECMAScript-style specification document in HTML (substituting for the
// real ECMA-262 HTML, which uses the same structural conventions), a
// Tika-substitute text extractor, the regex-based rule extractor of the
// paper's Section 3.1, and the boundary-condition database of Figure 4.
package spec

// Document is the embedded ECMA-262-style HTML specification. Each
// <emu-clause> describes one API with the numbered pseudo-code steps the
// extractor mines. A number of clauses are deliberately written in prose
// form only ("natural language definitions"), which the extractor cannot
// mine — the paper reports ~82% rule coverage for the same reason.
const Document = docHeader + stringClauses + numberClauses + objectClauses +
	arrayClauses + typedArrayClauses + jsonClauses + globalClauses +
	regexpClauses + dateClauses + proseClauses + docFooter

const docHeader = `<!DOCTYPE html>
<html lang="en">
<head><meta charset="utf-8"><title>ECMAScript Language Specification</title></head>
<body>
<h1>ECMAScript 2019 Language Specification (engine-test subset)</h1>
`

const docFooter = `
</body>
</html>
`

const stringClauses = `
<emu-clause id="sec-string.prototype.substr">
<h1>String.prototype.substr ( start, length )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>ReturnIfAbrupt(S).</li>
<li>Let intStart be ToInteger(start).</li>
<li>ReturnIfAbrupt(intStart).</li>
<li>If length is undefined, let end be +&infin;; else let end be ToInteger(length).</li>
<li>ReturnIfAbrupt(end).</li>
<li>Let size be the number of code units in S.</li>
<li>If intStart &lt; 0, let intStart be max(size + intStart, 0).</li>
<li>Let resultLength be min(max(end, 0), size - intStart).</li>
<li>If resultLength &le; 0, return the empty String "".</li>
<li>Return a String containing resultLength consecutive code units from S beginning with the code unit at index intStart.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.charat">
<h1>String.prototype.charAt ( pos )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let position be ToInteger(pos).</li>
<li>Let size be the number of code units in S.</li>
<li>If position &lt; 0 or position &ge; size, return the empty String.</li>
<li>Return the String containing the single code unit at index position.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.charcodeat">
<h1>String.prototype.charCodeAt ( pos )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let position be ToInteger(pos).</li>
<li>Let size be the number of code units in S.</li>
<li>If position &lt; 0 or position &ge; size, return NaN.</li>
<li>Return the numeric value of the code unit at index position.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.indexof">
<h1>String.prototype.indexOf ( searchString, position )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let searchStr be ToString(searchString).</li>
<li>Let pos be ToInteger(position).</li>
<li>If position is undefined, this step produces the value 0.</li>
<li>Let len be the number of code units in S.</li>
<li>Let start be min(max(pos, 0), len).</li>
<li>Return the smallest possible integer k not smaller than start such that searchStr occurs at index k of S, or -1.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.lastindexof">
<h1>String.prototype.lastIndexOf ( searchString, position )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let searchStr be ToString(searchString).</li>
<li>Let numPos be ToNumber(position).</li>
<li>If numPos is NaN, let pos be +&infin;; otherwise, let pos be ToInteger(numPos).</li>
<li>Return the largest possible nonnegative integer k not larger than min(max(pos, 0), len) such that searchStr occurs at index k of S, or -1.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.slice">
<h1>String.prototype.slice ( start, end )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let len be the number of code units in S.</li>
<li>Let intStart be ToInteger(start).</li>
<li>If end is undefined, let intEnd be len; else let intEnd be ToInteger(end).</li>
<li>If intStart &lt; 0, let from be max(len + intStart, 0); otherwise let from be min(intStart, len).</li>
<li>If intEnd &lt; 0, let to be max(len + intEnd, 0); otherwise let to be min(intEnd, len).</li>
<li>Let span be max(to - from, 0).</li>
<li>Return the String containing span consecutive code units from S beginning with the code unit at index from.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.substring">
<h1>String.prototype.substring ( start, end )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let len be the number of code units in S.</li>
<li>Let intStart be ToInteger(start).</li>
<li>If end is undefined, let intEnd be len; else let intEnd be ToInteger(end).</li>
<li>Let finalStart be min(max(intStart, 0), len).</li>
<li>Let finalEnd be min(max(intEnd, 0), len).</li>
<li>Let from be min(finalStart, finalEnd).</li>
<li>Let to be max(finalStart, finalEnd).</li>
<li>Return the String whose code units are the elements of S from index from up to index to.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.repeat">
<h1>String.prototype.repeat ( count )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let n be ToInteger(count).</li>
<li>If n &lt; 0, throw a RangeError exception.</li>
<li>If n is +&infin;, throw a RangeError exception.</li>
<li>Return the String value that is made from n copies of S appended together.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.padstart">
<h1>String.prototype.padStart ( maxLength, fillString )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let intMaxLength be ToLength(maxLength).</li>
<li>Let stringLength be the length of S.</li>
<li>If intMaxLength &le; stringLength, return S.</li>
<li>If fillString is undefined, let filler be the String consisting solely of the code unit 0x0020 (SPACE).</li>
<li>Else, let filler be ToString(fillString).</li>
<li>If filler is the empty String, return S.</li>
<li>Return the string-concatenation of truncatedStringFiller and S.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.padend">
<h1>String.prototype.padEnd ( maxLength, fillString )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let intMaxLength be ToLength(maxLength).</li>
<li>If fillString is undefined, let filler be the String consisting solely of the code unit 0x0020 (SPACE).</li>
<li>Return the string-concatenation of S and truncatedStringFiller.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.split">
<h1>String.prototype.split ( separator, limit )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>If limit is undefined, let lim be 2<sup>32</sup> - 1; else let lim be ToUint32(limit).</li>
<li>Let R be ToString(separator).</li>
<li>If lim = 0, return an empty array.</li>
<li>If separator is undefined, return an array containing the single element S.</li>
<li>Return an Array of the substrings of S delimited by occurrences of R.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.startswith">
<h1>String.prototype.startsWith ( searchString, position )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let isRegExp be IsRegExp(searchString).</li>
<li>If isRegExp is true, throw a TypeError exception.</li>
<li>Let searchStr be ToString(searchString).</li>
<li>Let pos be ToInteger(position).</li>
<li>Return true if the sequence of code units of searchStr starts at index pos within S.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.endswith">
<h1>String.prototype.endsWith ( searchString, endPosition )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let isRegExp be IsRegExp(searchString).</li>
<li>If isRegExp is true, throw a TypeError exception.</li>
<li>Let searchStr be ToString(searchString).</li>
<li>If endPosition is undefined, let pos be the length of S; else let pos be ToInteger(endPosition).</li>
<li>Return true if the sequence of code units of searchStr ends at index pos within S.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.includes">
<h1>String.prototype.includes ( searchString, position )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let isRegExp be IsRegExp(searchString).</li>
<li>If isRegExp is true, throw a TypeError exception.</li>
<li>Let searchStr be ToString(searchString).</li>
<li>Let pos be ToInteger(position).</li>
<li>Return true if searchStr occurs as a substring of S at or after index pos.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.normalize">
<h1>String.prototype.normalize ( form )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>If form is undefined, let f be "NFC"; else let f be ToString(form).</li>
<li>If f is not one of "NFC", "NFD", "NFKC", or "NFKD", throw a RangeError exception.</li>
<li>Return the String value that is the result of normalizing S into the normalization form named by f.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-string.prototype.concat">
<h1>String.prototype.concat ( arg1 )</h1>
<emu-alg><ol>
<li>Let O be RequireObjectCoercible(this value).</li>
<li>Let S be ToString(O).</li>
<li>Let nextString be ToString(arg1).</li>
<li>Return the string-concatenation of S and each nextString in order.</li>
</ol></emu-alg>
</emu-clause>
`

const numberClauses = `
<emu-clause id="sec-number.prototype.tofixed">
<h1>Number.prototype.toFixed ( fractionDigits )</h1>
<emu-alg><ol>
<li>Let x be thisNumberValue(this value).</li>
<li>Let f be ToInteger(fractionDigits).</li>
<li>If f &lt; 0 or f &gt; 100, throw a RangeError exception.</li>
<li>If x is NaN, return the String "NaN".</li>
<li>Return the String consisting of the digits of the decimal representation of n / 10<sup>f</sup>.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-number.prototype.toprecision">
<h1>Number.prototype.toPrecision ( precision )</h1>
<emu-alg><ol>
<li>Let x be thisNumberValue(this value).</li>
<li>If precision is undefined, return ToString(x).</li>
<li>Let p be ToInteger(precision).</li>
<li>If p &lt; 1 or p &gt; 100, throw a RangeError exception.</li>
<li>Return the String containing x represented with p significant digits.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-number.prototype.tostring">
<h1>Number.prototype.toString ( radix )</h1>
<emu-alg><ol>
<li>Let x be thisNumberValue(this value).</li>
<li>If radix is undefined, let radixNumber be 10; else let radixNumber be ToInteger(radix).</li>
<li>If radixNumber &lt; 2 or radixNumber &gt; 36, throw a RangeError exception.</li>
<li>Return the String representation of x using the specified radix.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-number.prototype.toexponential">
<h1>Number.prototype.toExponential ( fractionDigits )</h1>
<emu-alg><ol>
<li>Let x be thisNumberValue(this value).</li>
<li>Let f be ToInteger(fractionDigits).</li>
<li>If f &lt; 0 or f &gt; 100, throw a RangeError exception.</li>
<li>Return the String representing x in decimal exponential notation with f digits after the significand's decimal point.</li>
</ol></emu-alg>
</emu-clause>
`

const objectClauses = `
<emu-clause id="sec-object.defineproperty">
<h1>Object.defineProperty ( O, P, Attributes )</h1>
<emu-alg><ol>
<li>If Type(O) is not Object, throw a TypeError exception.</li>
<li>Let key be ToPropertyKey(P).</li>
<li>Let desc be ToPropertyDescriptor(Attributes).</li>
<li>If Attributes is not an object, throw a TypeError exception.</li>
<li>Perform DefinePropertyOrThrow(O, key, desc); if the property is non-configurable and desc is incompatible, throw a TypeError exception.</li>
<li>Return O.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-object.freeze">
<h1>Object.freeze ( O )</h1>
<emu-alg><ol>
<li>If Type(O) is not Object, return O.</li>
<li>Let status be SetIntegrityLevel(O, frozen).</li>
<li>Return O.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-object.keys">
<h1>Object.keys ( O )</h1>
<emu-alg><ol>
<li>Let obj be ToObject(O).</li>
<li>Let nameList be EnumerableOwnPropertyNames(obj, key).</li>
<li>Return CreateArrayFromList(nameList).</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-object.assign">
<h1>Object.assign ( target, sources )</h1>
<emu-alg><ol>
<li>Let to be ToObject(target).</li>
<li>If sources is undefined or null, return to unchanged.</li>
<li>For each own enumerable property of each source, perform Set(to, key, value, true).</li>
<li>Return to.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-object.create">
<h1>Object.create ( O, Properties )</h1>
<emu-alg><ol>
<li>If Type(O) is neither Object nor Null, throw a TypeError exception.</li>
<li>Let obj be OrdinaryObjectCreate(O).</li>
<li>If Properties is not undefined, return ObjectDefineProperties(obj, Properties).</li>
<li>Return obj.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-object.getprototypeof">
<h1>Object.getPrototypeOf ( O )</h1>
<emu-alg><ol>
<li>Let obj be ToObject(O).</li>
<li>Return obj.[[GetPrototypeOf]]().</li>
</ol></emu-alg>
</emu-clause>
`

const arrayClauses = `
<emu-clause id="sec-array-constructor">
<h1>Array ( len )</h1>
<emu-alg><ol>
<li>Let intLen be ToUint32(len).</li>
<li>If intLen is not equal to ToNumber(len), throw a RangeError exception.</li>
<li>Return a new Array exotic object with length intLen.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.prototype.fill">
<h1>Array.prototype.fill ( value, start, end )</h1>
<emu-alg><ol>
<li>Let O be ToObject(this value).</li>
<li>Let len be LengthOfArrayLike(O).</li>
<li>Let relativeStart be ToInteger(start).</li>
<li>If relativeStart &lt; 0, let k be max(len + relativeStart, 0); else let k be min(relativeStart, len).</li>
<li>If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).</li>
<li>Repeat, while k &lt; final, set O[k] to value.</li>
<li>Return O.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.prototype.indexof">
<h1>Array.prototype.indexOf ( searchElement, fromIndex )</h1>
<emu-alg><ol>
<li>Let O be ToObject(this value).</li>
<li>Let len be LengthOfArrayLike(O).</li>
<li>Let n be ToInteger(fromIndex).</li>
<li>If n &ge; len, return -1.</li>
<li>If n &lt; 0, let k be max(len + n, 0).</li>
<li>Return the smallest index k at which StrictEquality(searchElement, O[k]) is true, or -1.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.prototype.splice">
<h1>Array.prototype.splice ( start, deleteCount )</h1>
<emu-alg><ol>
<li>Let O be ToObject(this value).</li>
<li>Let len be LengthOfArrayLike(O).</li>
<li>Let relativeStart be ToInteger(start).</li>
<li>If relativeStart &lt; 0, let actualStart be max(len + relativeStart, 0).</li>
<li>Let dc be ToInteger(deleteCount).</li>
<li>Let actualDeleteCount be min(max(dc, 0), len - actualStart).</li>
<li>Return an Array containing the deleted elements.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.prototype.slice">
<h1>Array.prototype.slice ( start, end )</h1>
<emu-alg><ol>
<li>Let O be ToObject(this value).</li>
<li>Let len be LengthOfArrayLike(O).</li>
<li>Let relativeStart be ToInteger(start).</li>
<li>If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).</li>
<li>If relativeStart &lt; 0, let k be max(len + relativeStart, 0).</li>
<li>Return a new Array containing the elements of O from k to final.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.prototype.join">
<h1>Array.prototype.join ( separator )</h1>
<emu-alg><ol>
<li>Let O be ToObject(this value).</li>
<li>Let len be LengthOfArrayLike(O).</li>
<li>If separator is undefined, let sep be the single-character String ",".</li>
<li>Else, let sep be ToString(separator).</li>
<li>Return the String consisting of the string representations of the elements of O separated by occurrences of sep.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-array.from">
<h1>Array.from ( items, mapfn )</h1>
<emu-alg><ol>
<li>If items is undefined or null, throw a TypeError exception.</li>
<li>If mapfn is undefined, let mapping be false.</li>
<li>Let arrayLike be ToObject(items).</li>
<li>Let len be LengthOfArrayLike(arrayLike).</li>
<li>Return a new Array containing the (possibly mapped) elements of arrayLike.</li>
</ol></emu-alg>
</emu-clause>
`

const typedArrayClauses = `
<emu-clause id="sec-typedarray-length">
<h1>Uint32Array ( length )</h1>
<emu-alg><ol>
<li>Let elementLength be ToIndex(length); ToIndex performs ToInteger(length).</li>
<li>If elementLength &lt; 0, throw a RangeError exception.</li>
<li>Return AllocateTypedArray with elementLength elements.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-uint8array-length">
<h1>Uint8Array ( length )</h1>
<emu-alg><ol>
<li>Let elementLength be ToIndex(length); ToIndex performs ToInteger(length).</li>
<li>If elementLength &lt; 0, throw a RangeError exception.</li>
<li>Return AllocateTypedArray with elementLength elements.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-typedarray.prototype.set">
<h1>Uint8Array.prototype.set ( source, offset )</h1>
<emu-alg><ol>
<li>Let target be the this value.</li>
<li>Let targetOffset be ToInteger(offset).</li>
<li>If targetOffset &lt; 0, throw a RangeError exception.</li>
<li>Let src be ToObject(source); a String source is converted to an array-like of single characters.</li>
<li>Let srcLength be LengthOfArrayLike(src).</li>
<li>If srcLength + targetOffset &gt; the target's length, throw a RangeError exception.</li>
<li>For each element, perform Set(target, k, ToNumber(value)).</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-typedarray.prototype.fill">
<h1>Uint8Array.prototype.fill ( value, start, end )</h1>
<emu-alg><ol>
<li>Let O be the this value.</li>
<li>Let len be the value of O's length.</li>
<li>Let numValue be ToNumber(value).</li>
<li>Let relativeStart be ToInteger(start).</li>
<li>If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).</li>
<li>Set each element in the range to numValue.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-dataview.prototype.getuint8">
<h1>DataView.prototype.getUint8 ( byteOffset )</h1>
<emu-alg><ol>
<li>Let v be the this value.</li>
<li>Let getIndex be ToIndex(byteOffset); ToIndex performs ToInteger(byteOffset).</li>
<li>If getIndex &lt; 0, throw a RangeError exception.</li>
<li>If getIndex + 1 &gt; the view's byte length, throw a RangeError exception.</li>
<li>Return GetViewValue(v, getIndex, Uint8).</li>
</ol></emu-alg>
</emu-clause>
`

const jsonClauses = `
<emu-clause id="sec-json.parse">
<h1>JSON.parse ( text, reviver )</h1>
<emu-alg><ol>
<li>Let jsonString be ToString(text).</li>
<li>If jsonString is not a valid JSON text as specified in ECMA-404, throw a SyntaxError exception.</li>
<li>Return the ECMAScript value corresponding to the JSON text.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-json.stringify">
<h1>JSON.stringify ( value, replacer, space )</h1>
<emu-alg><ol>
<li>If space is undefined, let gap be the empty String.</li>
<li>If Type(space) is Number, let sp be min(10, ToInteger(space)).</li>
<li>If value is undefined, return undefined.</li>
<li>Return SerializeJSONProperty of value.</li>
</ol></emu-alg>
</emu-clause>
`

const globalClauses = `
<emu-clause id="sec-parseint">
<h1>parseInt ( string, radix )</h1>
<emu-alg><ol>
<li>Let inputString be ToString(string).</li>
<li>Let R be ToInt32(radix).</li>
<li>If R &lt; 2 or R &gt; 36, return NaN.</li>
<li>If radix is undefined, let R be 10, or 16 when the string begins with "0x".</li>
<li>Return the integer value represented by the longest usable prefix of inputString.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-parsefloat">
<h1>parseFloat ( string )</h1>
<emu-alg><ol>
<li>Let inputString be ToString(string).</li>
<li>Let trimmedString be a substring of inputString with leading white space removed.</li>
<li>If neither trimmedString nor any prefix of trimmedString satisfies the syntax of a StrDecimalLiteral, return NaN.</li>
<li>Return the Number value for the longest satisfying prefix.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-eval">
<h1>eval ( x )</h1>
<emu-alg><ol>
<li>If Type(x) is not String, return x.</li>
<li>Let script be ParseText(x); if the parse fails, throw a SyntaxError exception.</li>
<li>Return the Completion value of evaluating script.</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-isnan">
<h1>isNaN ( number )</h1>
<emu-alg><ol>
<li>Let num be ToNumber(number).</li>
<li>If num is NaN, return true.</li>
<li>Return false.</li>
</ol></emu-alg>
</emu-clause>
`

const regexpClauses = `
<emu-clause id="sec-regexp.prototype.exec">
<h1>RegExp.prototype.exec ( string )</h1>
<emu-alg><ol>
<li>Let R be the this value.</li>
<li>Let S be ToString(string).</li>
<li>Let lastIndex be ToLength(R.lastIndex); ToLength performs ToInteger(lastIndex).</li>
<li>Return RegExpBuiltinExec(R, S).</li>
</ol></emu-alg>
</emu-clause>

<emu-clause id="sec-regexp.prototype.compile">
<h1>RegExp.prototype.compile ( pattern, flags )</h1>
<emu-alg><ol>
<li>Let O be the this value.</li>
<li>Let P be ToString(pattern).</li>
<li>Let F be ToString(flags).</li>
<li>If the lastIndex property of O is not writable, throw a TypeError exception.</li>
<li>Return RegExpInitialize(O, P, F) and set lastIndex to 0.</li>
</ol></emu-alg>
</emu-clause>
`

const dateClauses = `
<emu-clause id="sec-date.prototype.settime">
<h1>Date.prototype.setTime ( time )</h1>
<emu-alg><ol>
<li>Let t be thisTimeValue(this value).</li>
<li>Let v be TimeClip(ToNumber(time)).</li>
<li>Set the [[DateValue]] internal slot of this Date object to v.</li>
<li>Return v.</li>
</ol></emu-alg>
</emu-clause>
`

// proseClauses are defined in natural language only — the extractor cannot
// mine them, mirroring the ~18% of ECMA-262 rules the paper's parser misses.
const proseClauses = `
<emu-clause id="sec-function.prototype.bind">
<h1>Function.prototype.bind ( thisArg, args )</h1>
<p>The bind method creates a new bound function. When the bound function is
called, it calls the wrapped function with the given this value and the
bound arguments prepended to the call arguments. The bound function does
not have a prototype property.</p>
</emu-clause>

<emu-clause id="sec-array.prototype.sort">
<h1>Array.prototype.sort ( comparefn )</h1>
<p>The elements of this array are sorted. The sort must be stable for
elements that compare equal. When comparefn is undefined, elements are
compared by the lexicographic order of their ToString values. Undefined
elements are always sorted to the end of the result.</p>
</emu-clause>

<emu-clause id="sec-object.prototype.tostring-prose">
<h1>Object.prototype.toString ( )</h1>
<p>When called with an undefined this value the result is the string
"[object Undefined]"; with null it is "[object Null]"; otherwise the result
is composed from the object's builtin tag.</p>
</emu-clause>

<emu-clause id="sec-math.max-prose">
<h1>Math.max ( values )</h1>
<p>Given zero or more arguments, returns the largest of the resulting
ToNumber conversions. If any value is NaN, the result is NaN. The
comparison is performed with -0 considered smaller than +0. With no
arguments the result is -Infinity.</p>
</emu-clause>

<emu-clause id="sec-functionname-prose">
<h1>Function name binding</h1>
<p>Within the body of a named function expression, the function's own name
is bound as an immutable binding. In sloppy mode assignments to that name
are silently ignored; in strict mode they throw a TypeError.</p>
</emu-clause>

<emu-clause id="sec-strictmode-prose">
<h1>Strict mode semantics</h1>
<p>In strict mode code, assignments to undeclared identifiers throw a
ReferenceError rather than creating a global property; assignments to
non-writable properties throw a TypeError; legacy octal numeric literals
are syntax errors; and duplicate formal parameter names are not permitted.</p>
</emu-clause>

<emu-clause id="sec-forstatement-prose">
<h1>The for statement</h1>
<p>A for statement must contain a loop body statement. A for header whose
closing parenthesis is immediately followed by the end of the enclosing
script is a SyntaxError, including when the source text is evaluated by
eval.</p>
</emu-clause>
`
