package regex

import (
	"testing"
	"testing/quick"
)

// match is a test helper returning (matched, whole-match text).
func match(t *testing.T, pattern, flags, input string) (bool, string) {
	t.Helper()
	re, err := Compile(pattern, flags)
	if err != nil {
		t.Fatalf("Compile(%q, %q): %v", pattern, flags, err)
	}
	m, err := re.Exec(input, 0)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if m == nil {
		return false, ""
	}
	return true, m.GroupString(0)
}

func TestBasicMatching(t *testing.T) {
	cases := []struct {
		pattern, flags, input string
		want                  bool
		text                  string
	}{
		{`abc`, "", "xxabcxx", true, "abc"},
		{`ab+c`, "", "xabbbc", true, "abbbc"},
		{`ab*c`, "", "ac", true, "ac"},
		{`ab?c`, "", "abc", true, "abc"},
		{`a.c`, "", "axc", true, "axc"},
		{`a.c`, "", "a\nc", false, ""},
		{`a.c`, "s", "a\nc", true, "a\nc"},
		{`^abc$`, "", "abc", true, "abc"},
		{`^abc$`, "", "xabc", false, ""},
		{`^b`, "m", "a\nb", true, "b"},
		{`[a-c]+`, "", "zzabca", true, "abca"},
		{`[^a-c]+`, "", "abcxyz", true, "xyz"},
		{`\d{2,4}`, "", "a12345b", true, "1234"},
		{`\d{2}`, "", "a1b", false, ""},
		{`\w+@\w+`, "", "mail bob@host", true, "bob@host"},
		{`\s\S`, "", "a b", true, " b"},
		{`a|bc|d`, "", "xbcx", true, "bc"},
		{`(ab)+`, "", "ababab", true, "ababab"},
		{`(?:ab)+c`, "", "ababc", true, "ababc"},
		{`a+?`, "", "aaa", true, "a"},
		{`a{2,}?`, "", "aaaa", true, "aa"},
		{`\bfoo\b`, "", "a foo b", true, "foo"},
		{`\bfoo\b`, "", "afoob", false, ""},
		{`(a)(b)?`, "", "a", true, "a"},
		{`(ab)\1`, "", "abab", true, "abab"},
		{`(ab)\1`, "", "abcd", false, ""},
		{`ABC`, "i", "xxabcxx", true, "abc"},
		{`[a-z]+`, "i", "HELLO", true, "HELLO"},
		{`a(?=b)`, "", "ab", true, "a"},
		{`a(?=b)`, "", "ac", false, ""},
		{`a(?!b)`, "", "ac", true, "a"},
		{`^A`, "", "anA", false, ""},
		{`\x41`, "", "A", true, "A"},
		{`A`, "", "A", true, "A"},
	}
	for _, c := range cases {
		got, text := match(t, c.pattern, c.flags, c.input)
		if got != c.want || text != c.text {
			t.Errorf("/%s/%s on %q: got (%v, %q) want (%v, %q)",
				c.pattern, c.flags, c.input, got, text, c.want, c.text)
		}
	}
}

func TestCaptureGroups(t *testing.T) {
	re, err := Compile(`(\d+)-(\d+)`, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := re.Exec("range 10-32 units", 0)
	if err != nil || m == nil {
		t.Fatalf("no match: %v", err)
	}
	if m.GroupString(1) != "10" || m.GroupString(2) != "32" {
		t.Errorf("groups: %q %q", m.GroupString(1), m.GroupString(2))
	}
	if m.Groups[0][0] != 6 {
		t.Errorf("match index: %d", m.Groups[0][0])
	}
}

func TestUnmatchedGroupBackrefAndOptional(t *testing.T) {
	re, err := Compile(`(a)|(b)`, "")
	if err != nil {
		t.Fatal(err)
	}
	m, err := re.Exec("a", 0)
	if err != nil || m == nil {
		t.Fatal("no match")
	}
	if !m.GroupMatched(1) || m.GroupMatched(2) {
		t.Errorf("group participation wrong: %v", m.Groups)
	}
}

func TestSticky(t *testing.T) {
	re, err := Compile("b", "y")
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := re.Exec("ab", 0); m != nil {
		t.Error("sticky must anchor at start")
	}
	if m, _ := re.Exec("ab", 1); m == nil {
		t.Error("sticky at offset 1 must match")
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, pattern := range []string{`(`, `[a`, `a{2,1}`, `*a`, `(?<`, `a\`} {
		if _, err := Compile(pattern, ""); err == nil {
			t.Errorf("Compile(%q) should fail", pattern)
		}
	}
	if _, err := Compile("a", "q"); err == nil {
		t.Error("invalid flag should fail")
	}
}

func TestReplaceAll(t *testing.T) {
	re, err := Compile(`(\w+)@(\w+)`, "g")
	if err != nil {
		t.Fatal(err)
	}
	out, err := re.ReplaceAll("a@b c@d", "$2:$1", true)
	if err != nil {
		t.Fatal(err)
	}
	if out != "b:a d:c" {
		t.Errorf("ReplaceAll: %q", out)
	}
	out, _ = re.ReplaceAll("a@b c@d", "[$&]", false)
	if out != "[a@b] c@d" {
		t.Errorf("non-global replace: %q", out)
	}
}

func TestBudgetTerminates(t *testing.T) {
	re, err := Compile(`(a+)+$`, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = re.Exec("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaab", 0)
	if err != ErrBudget {
		t.Errorf("catastrophic backtracking should hit the budget, got %v", err)
	}
}

// TestLiteralProperty: any input matches itself when quoted char-by-char.
func TestLiteralProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 20 {
			s = s[:20]
		}
		quoted := ""
		for _, r := range s {
			if r == 0 || r > 0x7e {
				return true // skip exotic inputs
			}
			quoted += "\\x" + hex2(byte(r))
		}
		re, err := Compile(quoted, "")
		if err != nil {
			return false
		}
		m, err := re.Exec(s, 0)
		return err == nil && m != nil && m.GroupString(0) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func hex2(b byte) string {
	const digits = "0123456789abcdef"
	return string([]byte{digits[b>>4], digits[b&15]})
}
