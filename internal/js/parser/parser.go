// Package parser implements a recursive-descent parser for the JavaScript
// subset, with automatic semicolon insertion, strict-mode early errors, and
// leniency options used by seeded engine defects of the "Parser" component.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"comfort/internal/js/ast"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/lexer"
	"comfort/internal/js/token"
)

// Options alter parser strictness. Real engines differ in exactly these
// kinds of corner cases, which is what the seeded Parser-component defects
// exploit.
type Options struct {
	// AllowEmptyForBody accepts `for(;;)` with no body statement at all
	// (the ChakraCore eval defect from the paper's Listing 7).
	AllowEmptyForBody bool
	// AllowDuplicateParams suppresses the strict-mode duplicate-parameter
	// early error.
	AllowDuplicateParams bool
	// AllowLegacyOctal accepts 0-prefixed octal literals in strict mode.
	AllowLegacyOctal bool
	// AllowReservedIdent accepts a few reserved words as identifiers.
	AllowReservedIdent bool
	// AllowSloppyDelete accepts `delete identifier` in strict mode.
	AllowSloppyDelete bool
	// AllowEvalArgumentsAssign accepts assignments to eval/arguments in
	// strict mode.
	AllowEvalArgumentsAssign bool
	// Strict forces strict parsing regardless of directives.
	Strict bool
}

// Fingerprint packs the option set into a cache key: two option values with
// equal fingerprints parse every program identically, so parse results may
// be shared between them (the scheduler's parse-once cache relies on this).
func (o Options) Fingerprint() uint64 {
	var fp uint64
	for i, b := range []bool{
		o.AllowEmptyForBody,
		o.AllowDuplicateParams,
		o.AllowLegacyOctal,
		o.AllowReservedIdent,
		o.AllowSloppyDelete,
		o.AllowEvalArgumentsAssign,
		o.Strict,
	} {
		if b {
			fp |= 1 << uint(i)
		}
	}
	return fp
}

// SyntaxError is a parse-time error with a position.
type SyntaxError struct {
	Pos token.Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("SyntaxError: %s (at %s)", e.Msg, e.Pos)
}

// Parse parses src with default options.
func Parse(src string) (*ast.Program, error) { return ParseWith(src, Options{}) }

// ParseWith parses src under the supplied options.
func ParseWith(src string, opts Options) (prog *ast.Program, err error) {
	p := &parser{lex: lexer.New(src), opts: opts, strict: opts.Strict}
	defer func() {
		if r := recover(); r != nil {
			if se, ok := r.(*SyntaxError); ok {
				prog, err = nil, se
				return
			}
			panic(r)
		}
	}()
	p.next()
	p.next()
	prog = p.parseProgram()
	if errs := p.lex.Errors(); len(errs) > 0 {
		return nil, &SyntaxError{Pos: errs[0].Pos, Msg: errs[0].Msg}
	}
	return prog, nil
}

// ParseExprString parses a single expression, as needed by template-literal
// substitutions and synthetic AST construction.
func ParseExprString(src string) (ast.Expr, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Body) != 1 {
		return nil, &SyntaxError{Msg: "expected a single expression"}
	}
	es, ok := prog.Body[0].(*ast.ExprStmt)
	if !ok {
		return nil, &SyntaxError{Msg: "expected an expression statement"}
	}
	return es.X, nil
}

type parser struct {
	lex      *lexer.Lexer
	cur      token.Token
	peek     token.Token
	opts     Options
	strict   bool
	nextID   int
	inFunc   int
	inLoop   int
	inSwitch int
}

func (p *parser) next() {
	p.cur = p.peek
	p.peek = p.lex.Next()
}

func (p *parser) fail(format string, args ...interface{}) {
	panic(&SyntaxError{Pos: p.cur.Pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(t token.Type) token.Token {
	if p.cur.Type != t {
		p.fail("expected %q but found %q", t.String(), p.cur.String())
	}
	tok := p.cur
	p.next()
	return tok
}

// reg assigns the next node ID to n. Positions are set by callers via the
// exported fields.
func (p *parser) reg(n ast.Node) {
	p.nextID++
	ast.SetID(n, p.nextID)
}

// semicolon consumes a statement terminator, applying ASI.
func (p *parser) semicolon() {
	switch p.cur.Type {
	case token.SEMI:
		p.next()
	case token.RBRACE, token.EOF:
		// ASI before '}' or EOF.
	default:
		if p.cur.NewlineBefore {
			return // ASI at newline
		}
		p.fail("missing semicolon before %q", p.cur.String())
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	p.reg(prog)
	prog.Body, prog.Strict = p.parseSourceBody(p.strict)
	if p.cur.Type != token.EOF {
		p.fail("unexpected token %q", p.cur.String())
	}
	prog.NodeCount = p.nextID
	return prog
}

// parseSourceBody parses a statement list until EOF/'}' handling the
// directive prologue; it returns the statements and whether strict mode is
// in force for the body.
func (p *parser) parseSourceBody(inheritStrict bool) ([]ast.Stmt, bool) {
	var body []ast.Stmt
	strict := inheritStrict
	prologue := true
	savedStrict := p.strict
	p.strict = strict
	for p.cur.Type != token.EOF && p.cur.Type != token.RBRACE {
		s := p.parseStatement()
		if prologue {
			if es, ok := s.(*ast.ExprStmt); ok && es.Directive != "" {
				if es.Directive == "use strict" {
					strict = true
					p.strict = true
				}
			} else {
				prologue = false
			}
		}
		body = append(body, s)
	}
	p.strict = savedStrict
	return body, strict
}

func (p *parser) parseStatement() ast.Stmt {
	switch p.cur.Type {
	case token.VAR, token.LET, token.CONST:
		return p.parseVarDecl(true)
	case token.FUNCTION:
		return p.parseFuncDecl()
	case token.LBRACE:
		return p.parseBlock()
	case token.IF:
		return p.parseIf()
	case token.FOR:
		return p.parseFor()
	case token.WHILE:
		return p.parseWhile()
	case token.DO:
		return p.parseDoWhile()
	case token.SWITCH:
		return p.parseSwitch()
	case token.BREAK:
		return p.parseBreakContinue(true)
	case token.CONTINUE:
		return p.parseBreakContinue(false)
	case token.RETURN:
		return p.parseReturn()
	case token.THROW:
		return p.parseThrow()
	case token.TRY:
		return p.parseTry()
	case token.SEMI:
		n := &ast.EmptyStmt{}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.DEBUGGER:
		n := &ast.DebuggerStmt{}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		p.semicolon()
		return n
	case token.IDENT:
		if p.peek.Type == token.COLON {
			return p.parseLabeled()
		}
	case token.CLASS:
		p.fail("class declarations are not supported by this engine family")
	}
	return p.parseExprStmt()
}

func (p *parser) parseVarDecl(consumeSemi bool) *ast.VarDecl {
	n := &ast.VarDecl{}
	n.P = p.cur.Pos
	p.reg(n)
	switch p.cur.Type {
	case token.LET:
		n.Kind = ast.Let
	case token.CONST:
		n.Kind = ast.Const
	default:
		n.Kind = ast.Var
	}
	p.next()
	for {
		name := p.parseBindingName()
		var init ast.Expr
		if p.cur.Type == token.ASSIGN {
			p.next()
			init = p.parseAssign()
		} else if n.Kind == ast.Const {
			p.fail("missing initializer in const declaration")
		}
		n.Decls = append(n.Decls, ast.Declarator{Name: name, Init: init})
		if p.cur.Type != token.COMMA {
			break
		}
		p.next()
	}
	if consumeSemi {
		p.semicolon()
	}
	return n
}

func (p *parser) parseBindingName() string {
	if p.cur.Type != token.IDENT {
		if p.cur.Type.IsKeyword() && p.opts.AllowReservedIdent {
			name := p.cur.Literal
			p.next()
			return name
		}
		p.fail("expected binding identifier, found %q", p.cur.String())
	}
	name := p.cur.Literal
	if p.strict && (name == "eval" || name == "arguments") {
		p.fail("unexpected eval or arguments in strict mode")
	}
	p.next()
	return name
}

func (p *parser) parseFuncDecl() *ast.FuncDecl {
	n := &ast.FuncDecl{}
	n.P = p.cur.Pos
	p.reg(n)
	n.Fn = p.parseFunction(true)
	return n
}

// parseFunction parses "function name? (params) { body }". The caller has
// not consumed the function keyword.
func (p *parser) parseFunction(declaration bool) *ast.FuncLit {
	fn := &ast.FuncLit{}
	fn.P = p.cur.Pos
	p.reg(fn)
	p.expect(token.FUNCTION)
	if p.cur.Type == token.IDENT {
		fn.Name = p.cur.Literal
		p.next()
	} else if declaration {
		p.fail("function declaration requires a name")
	}
	p.parseParams(fn)
	p.expect(token.LBRACE)
	p.inFunc++
	savedLoop, savedSwitch := p.inLoop, p.inSwitch
	p.inLoop, p.inSwitch = 0, 0
	body := &ast.BlockStmt{}
	body.P = p.cur.Pos
	p.reg(body)
	body.Body, fn.Strict = p.parseSourceBody(p.strict)
	p.inLoop, p.inSwitch = savedLoop, savedSwitch
	p.inFunc--
	p.expect(token.RBRACE)
	fn.Body = body
	if (p.strict || fn.Strict) && !p.opts.AllowDuplicateParams {
		seen := map[string]bool{}
		for _, prm := range fn.Params {
			if seen[prm] {
				p.fail("duplicate parameter name %q not allowed in strict mode", prm)
			}
			seen[prm] = true
		}
	}
	return fn
}

func (p *parser) parseParams(fn *ast.FuncLit) {
	p.expect(token.LPAREN)
	for p.cur.Type != token.RPAREN {
		if p.cur.Type == token.ELLIPSIS {
			p.next()
			fn.Rest = p.parseBindingName()
			break
		}
		fn.Params = append(fn.Params, p.parseBindingName())
		if p.cur.Type != token.COMMA {
			break
		}
		p.next()
	}
	p.expect(token.RPAREN)
}

func (p *parser) parseBlock() *ast.BlockStmt {
	n := &ast.BlockStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.LBRACE)
	for p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
		n.Body = append(n.Body, p.parseStatement())
	}
	p.expect(token.RBRACE)
	return n
}

func (p *parser) parseIf() *ast.IfStmt {
	n := &ast.IfStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.IF)
	p.expect(token.LPAREN)
	n.Cond = p.parseExpression()
	p.expect(token.RPAREN)
	n.Then = p.parseStatement()
	if p.cur.Type == token.ELSE {
		p.next()
		n.Else = p.parseStatement()
	}
	return n
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.cur.Pos
	p.expect(token.FOR)
	p.expect(token.LPAREN)
	// for-in / for-of detection.
	if p.cur.Type == token.VAR || p.cur.Type == token.LET || p.cur.Type == token.CONST {
		kind := ast.Var
		switch p.cur.Type {
		case token.LET:
			kind = ast.Let
		case token.CONST:
			kind = ast.Const
		}
		if p.peek.Type == token.IDENT {
			// Look ahead two tokens for `in`/`of`, restoring both parser and
			// lexer state if the lookahead fails.
			save := *p
			savedLex := *p.lex
			p.next()
			name := p.cur.Literal
			p.next()
			if p.cur.Type == token.IN || (p.cur.Type == token.IDENT && p.cur.Literal == "of") {
				of := p.cur.Type != token.IN
				p.next()
				n := &ast.ForInStmt{Decl: kind, Name: name, Of: of}
				n.P = pos
				p.reg(n)
				n.Obj = p.parseAssign()
				p.expect(token.RPAREN)
				n.Body = p.parseLoopBody()
				return n
			}
			*p = save
			*p.lex = savedLex
		}
		init := p.parseVarDecl(false)
		return p.parseForRest(pos, init)
	}
	if p.cur.Type == token.IDENT && (p.peek.Type == token.IN || (p.peek.Type == token.IDENT && p.peek.Literal == "of")) {
		name := p.cur.Literal
		p.next()
		of := p.cur.Type != token.IN
		p.next()
		n := &ast.ForInStmt{Decl: -1, Name: name, Of: of}
		n.P = pos
		p.reg(n)
		n.Obj = p.parseAssign()
		p.expect(token.RPAREN)
		n.Body = p.parseLoopBody()
		return n
	}
	var init ast.Node
	if p.cur.Type != token.SEMI {
		init = p.parseExpression()
	}
	return p.parseForRest(pos, init)
}

func (p *parser) parseForRest(pos token.Pos, init ast.Node) *ast.ForStmt {
	n := &ast.ForStmt{Init: init}
	n.P = pos
	p.reg(n)
	p.expect(token.SEMI)
	if p.cur.Type != token.SEMI {
		n.Cond = p.parseExpression()
	}
	p.expect(token.SEMI)
	if p.cur.Type != token.RPAREN {
		n.Post = p.parseExpression()
	}
	p.expect(token.RPAREN)
	n.Body = p.parseLoopBody()
	return n
}

// parseLoopBody parses a loop body statement, honouring the
// AllowEmptyForBody leniency (a seeded parser defect site).
func (p *parser) parseLoopBody() ast.Stmt {
	if p.cur.Type == token.RBRACE || p.cur.Type == token.EOF {
		if p.opts.AllowEmptyForBody {
			n := &ast.EmptyStmt{}
			n.P = p.cur.Pos
			p.reg(n)
			return n
		}
		p.fail("missing loop body")
	}
	p.inLoop++
	defer func() { p.inLoop-- }()
	return p.parseStatement()
}

func (p *parser) parseWhile() *ast.WhileStmt {
	n := &ast.WhileStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.WHILE)
	p.expect(token.LPAREN)
	n.Cond = p.parseExpression()
	p.expect(token.RPAREN)
	n.Body = p.parseLoopBody()
	return n
}

func (p *parser) parseDoWhile() *ast.DoWhileStmt {
	n := &ast.DoWhileStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.DO)
	p.inLoop++
	n.Body = p.parseStatement()
	p.inLoop--
	p.expect(token.WHILE)
	p.expect(token.LPAREN)
	n.Cond = p.parseExpression()
	p.expect(token.RPAREN)
	if p.cur.Type == token.SEMI {
		p.next()
	}
	return n
}

func (p *parser) parseSwitch() *ast.SwitchStmt {
	n := &ast.SwitchStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.SWITCH)
	p.expect(token.LPAREN)
	n.Disc = p.parseExpression()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	p.inSwitch++
	sawDefault := false
	for p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
		c := &ast.SwitchCase{}
		c.P = p.cur.Pos
		p.reg(c)
		if p.cur.Type == token.CASE {
			p.next()
			c.Test = p.parseExpression()
		} else if p.cur.Type == token.DEFAULT {
			if sawDefault {
				p.fail("more than one default clause in switch statement")
			}
			sawDefault = true
			p.next()
		} else {
			p.fail("expected case or default in switch body")
		}
		p.expect(token.COLON)
		for p.cur.Type != token.CASE && p.cur.Type != token.DEFAULT &&
			p.cur.Type != token.RBRACE && p.cur.Type != token.EOF {
			c.Body = append(c.Body, p.parseStatement())
		}
		n.Cases = append(n.Cases, c)
	}
	p.inSwitch--
	p.expect(token.RBRACE)
	return n
}

func (p *parser) parseBreakContinue(isBreak bool) ast.Stmt {
	pos := p.cur.Pos
	p.next()
	label := ""
	if p.cur.Type == token.IDENT && !p.cur.NewlineBefore {
		label = p.cur.Literal
		p.next()
	}
	if isBreak {
		if label == "" && p.inLoop == 0 && p.inSwitch == 0 {
			p.fail("illegal break statement")
		}
		n := &ast.BreakStmt{Label: label}
		n.P = pos
		p.reg(n)
		p.semicolon()
		return n
	}
	if label == "" && p.inLoop == 0 {
		p.fail("illegal continue statement")
	}
	n := &ast.ContinueStmt{Label: label}
	n.P = pos
	p.reg(n)
	p.semicolon()
	return n
}

func (p *parser) parseReturn() *ast.ReturnStmt {
	if p.inFunc == 0 {
		p.fail("return statement outside of function")
	}
	n := &ast.ReturnStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.next()
	if p.cur.Type != token.SEMI && p.cur.Type != token.RBRACE &&
		p.cur.Type != token.EOF && !p.cur.NewlineBefore {
		n.X = p.parseExpression()
	}
	p.semicolon()
	return n
}

func (p *parser) parseThrow() *ast.ThrowStmt {
	n := &ast.ThrowStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.next()
	if p.cur.NewlineBefore {
		p.fail("illegal newline after throw")
	}
	n.X = p.parseExpression()
	p.semicolon()
	return n
}

func (p *parser) parseTry() *ast.TryStmt {
	n := &ast.TryStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.TRY)
	n.Block = p.parseBlock()
	if p.cur.Type == token.CATCH {
		p.next()
		if p.cur.Type == token.LPAREN {
			p.next()
			n.CatchParam = p.parseBindingName()
			p.expect(token.RPAREN)
		}
		n.Catch = p.parseBlock()
	}
	if p.cur.Type == token.FINALLY {
		p.next()
		n.Finally = p.parseBlock()
	}
	if n.Catch == nil && n.Finally == nil {
		p.fail("missing catch or finally after try")
	}
	return n
}

func (p *parser) parseLabeled() *ast.LabeledStmt {
	n := &ast.LabeledStmt{Label: p.cur.Literal}
	n.P = p.cur.Pos
	p.reg(n)
	p.next()   // ident
	p.next()   // colon
	p.inLoop++ // labels are usually loop labels; keep break/continue legal
	n.Body = p.parseStatement()
	p.inLoop--
	return n
}

func (p *parser) parseExprStmt() *ast.ExprStmt {
	n := &ast.ExprStmt{}
	n.P = p.cur.Pos
	p.reg(n)
	isString := p.cur.Type == token.STRING
	raw := p.cur.Literal
	n.X = p.parseExpression()
	if isString {
		if lit, ok := n.X.(*ast.StringLit); ok && lit.Value == raw {
			n.Directive = raw
		}
	}
	p.semicolon()
	return n
}

// ---------- Expressions ----------

func (p *parser) parseExpression() ast.Expr {
	e := p.parseAssign()
	if p.cur.Type != token.COMMA {
		return e
	}
	n := &ast.SeqExpr{Exprs: []ast.Expr{e}}
	n.P = e.Pos()
	p.reg(n)
	for p.cur.Type == token.COMMA {
		p.next()
		n.Exprs = append(n.Exprs, p.parseAssign())
	}
	return n
}

func isAssignOp(t token.Type) bool {
	switch t {
	case token.ASSIGN, token.PLUSASSIGN, token.MINUSASSIGN, token.STARASSIGN,
		token.SLASHASSIGN, token.PERCENTASSIGN, token.POWASSIGN,
		token.SHLASSIGN, token.SHRASSIGN, token.USHRASSIGN, token.ANDASSIGN,
		token.ORASSIGN, token.XORASSIGN, token.LOGANDASSIGN,
		token.LOGORASSIGN, token.NULLISHASSIGN:
		return true
	}
	return false
}

func (p *parser) parseAssign() ast.Expr {
	// Arrow function lookahead: IDENT => ... or ( ... ) => ...
	if e, ok := p.tryParseArrow(); ok {
		return e
	}
	left := p.parseConditional()
	if !isAssignOp(p.cur.Type) {
		return left
	}
	op := p.cur.Type
	if !isAssignTarget(left) {
		p.fail("invalid assignment target")
	}
	if p.strict && !p.opts.AllowEvalArgumentsAssign {
		if id, ok := left.(*ast.Ident); ok && (id.Name == "eval" || id.Name == "arguments") {
			p.fail("unexpected eval or arguments in strict mode")
		}
	}
	n := &ast.AssignExpr{Op: op, L: left}
	n.P = left.Pos()
	p.reg(n)
	p.next()
	n.R = p.parseAssign()
	return n
}

func isAssignTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.MemberExpr:
		return true
	}
	return false
}

// tryParseArrow attempts to parse an arrow function at the current point.
// It backtracks and reports ok=false when the lookahead is not an arrow.
func (p *parser) tryParseArrow() (ast.Expr, bool) {
	if p.cur.Type == token.IDENT && p.peek.Type == token.ARROW {
		fn := &ast.FuncLit{Arrow: true, Params: []string{p.cur.Literal}}
		fn.P = p.cur.Pos
		p.reg(fn)
		p.next() // ident
		p.next() // =>
		p.parseArrowBody(fn)
		return fn, true
	}
	if p.cur.Type != token.LPAREN {
		return nil, false
	}
	// Scan ahead in the token stream to see whether the matching RPAREN is
	// followed by =>. We re-lex from a copy of the parser state.
	save := *p
	savedLex := *p.lex
	depth := 0
	isArrow := false
scan:
	for {
		switch p.cur.Type {
		case token.LPAREN:
			depth++
		case token.RPAREN:
			depth--
			if depth == 0 {
				isArrow = p.peek.Type == token.ARROW
				break scan
			}
		case token.EOF:
			break scan
		case token.LBRACE, token.SEMI:
			// Arrow parameter lists cannot contain these.
			break scan
		}
		p.next()
	}
	*p = save
	*p.lex = savedLex
	if !isArrow {
		return nil, false
	}
	fn := &ast.FuncLit{Arrow: true}
	fn.P = p.cur.Pos
	p.reg(fn)
	p.parseParams(fn)
	p.expect(token.ARROW)
	p.parseArrowBody(fn)
	return fn, true
}

func (p *parser) parseArrowBody(fn *ast.FuncLit) {
	if p.cur.Type == token.LBRACE {
		p.expect(token.LBRACE)
		p.inFunc++
		body := &ast.BlockStmt{}
		body.P = p.cur.Pos
		p.reg(body)
		body.Body, fn.Strict = p.parseSourceBody(p.strict)
		p.inFunc--
		p.expect(token.RBRACE)
		fn.Body = body
		return
	}
	fn.ExprBody = p.parseAssign()
}

func (p *parser) parseConditional() ast.Expr {
	cond := p.parseNullish()
	if p.cur.Type != token.QUESTION {
		return cond
	}
	n := &ast.CondExpr{Cond: cond}
	n.P = cond.Pos()
	p.reg(n)
	p.next()
	n.Then = p.parseAssign()
	p.expect(token.COLON)
	n.Else = p.parseAssign()
	return n
}

func (p *parser) parseNullish() ast.Expr {
	left := p.parseLogicalOr()
	for p.cur.Type == token.NULLISH {
		n := &ast.LogicalExpr{Op: token.NULLISH, L: left}
		n.P = left.Pos()
		p.reg(n)
		p.next()
		n.R = p.parseLogicalOr()
		left = n
	}
	return left
}

func (p *parser) parseLogicalOr() ast.Expr {
	left := p.parseLogicalAnd()
	for p.cur.Type == token.LOGOR {
		n := &ast.LogicalExpr{Op: token.LOGOR, L: left}
		n.P = left.Pos()
		p.reg(n)
		p.next()
		n.R = p.parseLogicalAnd()
		left = n
	}
	return left
}

func (p *parser) parseLogicalAnd() ast.Expr {
	left := p.parseBinary(0)
	for p.cur.Type == token.LOGAND {
		n := &ast.LogicalExpr{Op: token.LOGAND, L: left}
		n.P = left.Pos()
		p.reg(n)
		p.next()
		n.R = p.parseBinary(0)
		left = n
	}
	return left
}

// binPrec gives binding powers for binary operators (higher binds tighter).
func binPrec(t token.Type) int {
	switch t {
	case token.OR:
		return 1
	case token.XOR:
		return 2
	case token.AND:
		return 3
	case token.EQ, token.NEQ, token.STRICTEQ, token.STRICTNE:
		return 4
	case token.LT, token.GT, token.LE, token.GE, token.IN, token.INSTANCEOF:
		return 5
	case token.SHL, token.SHR, token.USHR:
		return 6
	case token.PLUS, token.MINUS:
		return 7
	case token.STAR, token.SLASH, token.PERCENT:
		return 8
	case token.POW:
		return 9
	}
	return 0
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	left := p.parseUnary()
	for {
		prec := binPrec(p.cur.Type)
		if prec == 0 || prec < minPrec {
			return left
		}
		op := p.cur.Type
		n := &ast.BinaryExpr{Op: op, L: left}
		n.P = left.Pos()
		p.reg(n)
		p.next()
		if op == token.POW {
			// Exponentiation is right-associative.
			n.R = p.parseBinary(prec)
		} else {
			n.R = p.parseBinary(prec + 1)
		}
		left = n
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur.Type {
	case token.NOT, token.BNOT, token.PLUS, token.MINUS, token.TYPEOF,
		token.VOID, token.DELETE:
		op := p.cur.Type
		pos := p.cur.Pos
		p.next()
		x := p.parseUnary()
		if op == token.DELETE && p.strict && !p.opts.AllowSloppyDelete {
			if _, isIdent := x.(*ast.Ident); isIdent {
				p.fail("delete of an unqualified identifier in strict mode")
			}
		}
		n := &ast.UnaryExpr{Op: op, X: x}
		n.P = pos
		p.reg(n)
		return n
	case token.INC, token.DEC:
		op := p.cur.Type
		pos := p.cur.Pos
		p.next()
		x := p.parseUnary()
		if !isAssignTarget(x) {
			p.fail("invalid operand for %s", op)
		}
		n := &ast.UpdateExpr{Op: op, X: x, Prefix: true}
		n.P = pos
		p.reg(n)
		return n
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parseCallMember()
	if (p.cur.Type == token.INC || p.cur.Type == token.DEC) && !p.cur.NewlineBefore {
		if !isAssignTarget(x) {
			p.fail("invalid operand for %s", p.cur.Type)
		}
		n := &ast.UpdateExpr{Op: p.cur.Type, X: x, Prefix: false}
		n.P = x.Pos()
		p.reg(n)
		p.next()
		return n
	}
	return x
}

func (p *parser) parseCallMember() ast.Expr {
	var x ast.Expr
	if p.cur.Type == token.NEW {
		x = p.parseNew()
	} else {
		x = p.parsePrimary()
	}
	for {
		switch p.cur.Type {
		case token.DOT:
			p.next()
			name := p.parsePropertyName()
			n := &ast.MemberExpr{Obj: x, Name: name}
			n.P = x.Pos()
			p.reg(n)
			x = n
		case token.LBRACK:
			p.next()
			prop := p.parseExpression()
			p.expect(token.RBRACK)
			n := &ast.MemberExpr{Obj: x, Prop: prop, Computed: true}
			n.P = x.Pos()
			p.reg(n)
			x = n
		case token.LPAREN:
			n := &ast.CallExpr{Callee: x}
			n.P = x.Pos()
			p.reg(n)
			n.Args = p.parseArgs()
			x = n
		case token.TEMPLATE:
			// Tagged templates are not supported; treat as syntax error to
			// keep differential behaviour deterministic.
			p.fail("tagged template literals are not supported")
		default:
			return x
		}
	}
}

// parsePropertyName accepts identifiers and reserved words after '.'.
func (p *parser) parsePropertyName() string {
	if p.cur.Type == token.IDENT || p.cur.Type.IsKeyword() {
		name := p.cur.Literal
		p.next()
		return name
	}
	p.fail("expected property name after '.', found %q", p.cur.String())
	return ""
}

func (p *parser) parseNew() ast.Expr {
	pos := p.cur.Pos
	p.expect(token.NEW)
	var callee ast.Expr
	if p.cur.Type == token.NEW {
		callee = p.parseNew()
	} else {
		callee = p.parsePrimary()
	}
	// Member accesses bind tighter than the new-expression argument list.
	for {
		if p.cur.Type == token.DOT {
			p.next()
			name := p.parsePropertyName()
			n := &ast.MemberExpr{Obj: callee, Name: name}
			n.P = callee.Pos()
			p.reg(n)
			callee = n
			continue
		}
		if p.cur.Type == token.LBRACK {
			p.next()
			prop := p.parseExpression()
			p.expect(token.RBRACK)
			n := &ast.MemberExpr{Obj: callee, Prop: prop, Computed: true}
			n.P = callee.Pos()
			p.reg(n)
			callee = n
			continue
		}
		break
	}
	n := &ast.NewExpr{Callee: callee}
	n.P = pos
	p.reg(n)
	if p.cur.Type == token.LPAREN {
		n.Args = p.parseArgs()
	}
	return n
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for p.cur.Type != token.RPAREN {
		if p.cur.Type == token.ELLIPSIS {
			pos := p.cur.Pos
			p.next()
			sp := &ast.SpreadExpr{X: p.parseAssign()}
			sp.P = pos
			p.reg(sp)
			args = append(args, sp)
		} else {
			args = append(args, p.parseAssign())
		}
		if p.cur.Type != token.COMMA {
			break
		}
		p.next()
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	switch p.cur.Type {
	case token.IDENT:
		n := &ast.Ident{Name: p.cur.Literal}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.NUMBER:
		return p.parseNumber()
	case token.STRING:
		n := &ast.StringLit{Value: p.cur.Literal}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.TEMPLATE:
		return p.parseTemplate()
	case token.REGEX:
		return p.parseRegex()
	case token.TRUE, token.FALSE:
		n := &ast.BoolLit{Value: p.cur.Type == token.TRUE}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.NULL:
		n := &ast.NullLit{}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.THIS:
		n := &ast.ThisExpr{}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	case token.LPAREN:
		p.next()
		e := p.parseExpression()
		p.expect(token.RPAREN)
		return e
	case token.LBRACK:
		return p.parseArrayLit()
	case token.LBRACE:
		return p.parseObjectLit()
	case token.FUNCTION:
		return p.parseFunction(false)
	case token.GET, token.SET:
		// Contextual: get/set as plain identifiers.
		n := &ast.Ident{Name: p.cur.Literal}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	}
	if p.cur.Type.IsKeyword() && p.opts.AllowReservedIdent {
		n := &ast.Ident{Name: p.cur.Literal}
		n.P = p.cur.Pos
		p.reg(n)
		p.next()
		return n
	}
	p.fail("unexpected token %q", p.cur.String())
	return nil
}

func (p *parser) parseNumber() ast.Expr {
	raw := p.cur.Literal
	val, err := parseNumericLiteral(raw)
	if err != nil {
		p.fail("invalid numeric literal %q", raw)
	}
	if p.strict && !p.opts.AllowLegacyOctal && len(raw) > 1 && raw[0] == '0' &&
		raw[1] >= '0' && raw[1] <= '9' {
		p.fail("octal literals are not allowed in strict mode")
	}
	n := &ast.NumberLit{Value: val, Raw: raw}
	n.P = p.cur.Pos
	p.reg(n)
	p.next()
	return n
}

func parseNumericLiteral(raw string) (float64, error) {
	if len(raw) > 2 && raw[0] == '0' {
		switch raw[1] {
		case 'x', 'X':
			v, err := strconv.ParseUint(raw[2:], 16, 64)
			return float64(v), err
		case 'o', 'O':
			v, err := strconv.ParseUint(raw[2:], 8, 64)
			return float64(v), err
		case 'b', 'B':
			v, err := strconv.ParseUint(raw[2:], 2, 64)
			return float64(v), err
		}
	}
	// Legacy octal: 0 followed only by octal digits.
	if len(raw) > 1 && raw[0] == '0' && strings.IndexFunc(raw[1:], func(r rune) bool {
		return r < '0' || r > '7'
	}) == -1 {
		v, err := strconv.ParseUint(raw[1:], 8, 64)
		return float64(v), err
	}
	return strconv.ParseFloat(raw, 64)
}

func (p *parser) parseTemplate() ast.Expr {
	n := &ast.TemplateLit{}
	n.P = p.cur.Pos
	p.reg(n)
	raw := p.cur.Literal
	p.next()
	quasi, exprs := splitTemplate(raw)
	n.Quasis = quasi
	for _, src := range exprs {
		e, err := ParseExprString(src)
		if err != nil {
			p.fail("invalid template substitution: %v", err)
		}
		// Re-register node IDs within the current parser space.
		ast.Walk(e, func(c ast.Node) bool { p.reg(c); return true })
		n.Exprs = append(n.Exprs, e)
	}
	return n
}

// splitTemplate splits a raw template body into cooked quasis and
// substitution expression sources.
func splitTemplate(raw string) (quasis []string, exprs []string) {
	var cur strings.Builder
	i := 0
	for i < len(raw) {
		if raw[i] == '\\' && i+1 < len(raw) {
			switch raw[i+1] {
			case 'n':
				cur.WriteByte('\n')
			case 't':
				cur.WriteByte('\t')
			case 'r':
				cur.WriteByte('\r')
			case '`':
				cur.WriteByte('`')
			case '\\':
				cur.WriteByte('\\')
			case '$':
				cur.WriteByte('$')
			default:
				cur.WriteByte(raw[i+1])
			}
			i += 2
			continue
		}
		if raw[i] == '$' && i+1 < len(raw) && raw[i+1] == '{' {
			quasis = append(quasis, cur.String())
			cur.Reset()
			depth := 1
			j := i + 2
			for j < len(raw) && depth > 0 {
				switch raw[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			end := j - 1
			if end < i+2 {
				end = i + 2 // unterminated substitution: empty expression
			}
			exprs = append(exprs, raw[i+2:end])
			i = j
			continue
		}
		cur.WriteByte(raw[i])
		i++
	}
	quasis = append(quasis, cur.String())
	return quasis, exprs
}

func (p *parser) parseRegex() ast.Expr {
	raw := p.cur.Literal // e.g. "/ab+c/gi"
	end := strings.LastIndexByte(raw, '/')
	pattern := raw[1:end]
	flags := raw[end+1:]
	for _, f := range flags {
		if !strings.ContainsRune("gimsuy", f) {
			p.fail("invalid regular expression flag %q", f)
		}
	}
	n := &ast.RegexLit{Pattern: pattern, Flags: flags}
	n.P = p.cur.Pos
	p.reg(n)
	p.next()
	return n
}

func (p *parser) parseArrayLit() ast.Expr {
	n := &ast.ArrayLit{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.LBRACK)
	for p.cur.Type != token.RBRACK {
		if p.cur.Type == token.COMMA {
			n.Elems = append(n.Elems, nil) // elision
			p.next()
			continue
		}
		if p.cur.Type == token.ELLIPSIS {
			pos := p.cur.Pos
			p.next()
			sp := &ast.SpreadExpr{X: p.parseAssign()}
			sp.P = pos
			p.reg(sp)
			n.Elems = append(n.Elems, sp)
		} else {
			n.Elems = append(n.Elems, p.parseAssign())
		}
		if p.cur.Type != token.COMMA {
			break
		}
		p.next()
	}
	p.expect(token.RBRACK)
	return n
}

func (p *parser) parseObjectLit() ast.Expr {
	n := &ast.ObjectLit{}
	n.P = p.cur.Pos
	p.reg(n)
	p.expect(token.LBRACE)
	for p.cur.Type != token.RBRACE {
		n.Props = append(n.Props, p.parseProperty())
		if p.cur.Type != token.COMMA {
			break
		}
		p.next()
	}
	p.expect(token.RBRACE)
	return n
}

func (p *parser) parseProperty() ast.Property {
	// get/set accessors: `get name() {...}`.
	if p.cur.Type == token.IDENT && (p.cur.Literal == "get" || p.cur.Literal == "set") &&
		(p.peek.Type == token.IDENT || p.peek.Type == token.STRING ||
			p.peek.Type == token.NUMBER || p.peek.Type.IsKeyword()) {
		kind := ast.PropGet
		if p.cur.Literal == "set" {
			kind = ast.PropSet
		}
		p.next()
		key := p.parsePropertyKey()
		fn := &ast.FuncLit{}
		fn.P = p.cur.Pos
		p.reg(fn)
		p.parseParams(fn)
		p.expect(token.LBRACE)
		p.inFunc++
		body := &ast.BlockStmt{}
		body.P = p.cur.Pos
		p.reg(body)
		body.Body, fn.Strict = p.parseSourceBody(p.strict)
		p.inFunc--
		p.expect(token.RBRACE)
		fn.Body = body
		return ast.Property{Key: key, Kind: kind, Value: fn}
	}
	// Computed key: [expr]: value.
	if p.cur.Type == token.LBRACK {
		p.next()
		keyExpr := p.parseAssign()
		p.expect(token.RBRACK)
		p.expect(token.COLON)
		return ast.Property{KeyExpr: keyExpr, Computed: true, Value: p.parseAssign()}
	}
	key := p.parsePropertyKey()
	// Method shorthand: name() { ... }.
	if p.cur.Type == token.LPAREN {
		fn := &ast.FuncLit{Name: key}
		fn.P = p.cur.Pos
		p.reg(fn)
		p.parseParams(fn)
		p.expect(token.LBRACE)
		p.inFunc++
		body := &ast.BlockStmt{}
		body.P = p.cur.Pos
		p.reg(body)
		body.Body, fn.Strict = p.parseSourceBody(p.strict)
		p.inFunc--
		p.expect(token.RBRACE)
		fn.Body = body
		return ast.Property{Key: key, Value: fn}
	}
	// Shorthand property: {x} means {x: x}.
	if p.cur.Type != token.COLON {
		id := &ast.Ident{Name: key}
		p.reg(id)
		return ast.Property{Key: key, Value: id}
	}
	p.expect(token.COLON)
	return ast.Property{Key: key, Value: p.parseAssign()}
}

func (p *parser) parsePropertyKey() string {
	switch p.cur.Type {
	case token.IDENT:
		k := p.cur.Literal
		p.next()
		return k
	case token.STRING:
		k := p.cur.Literal
		p.next()
		return k
	case token.NUMBER:
		v, err := parseNumericLiteral(p.cur.Literal)
		if err != nil {
			p.fail("invalid numeric property key")
		}
		p.next()
		return formatPropertyNumber(v)
	default:
		if p.cur.Type.IsKeyword() {
			k := p.cur.Literal
			p.next()
			return k
		}
	}
	p.fail("invalid property key %q", p.cur.String())
	return ""
}

func formatPropertyNumber(v float64) string { return jsnum.Format(v) }
