package interp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKindsAndPredicates(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Undefined(), KindUndefined},
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Number(1.5), KindNumber},
		{String("s"), KindString},
		{ObjValue(NewObject(nil)), KindObject},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v: %v", c.v, c.v.Kind())
		}
	}
	if !Undefined().IsNullish() || !Null().IsNullish() || Bool(false).IsNullish() {
		t.Error("IsNullish")
	}
	if ObjValue(nil).Kind() != KindUndefined {
		t.Error("nil object wraps to undefined")
	}
}

func TestSameValueStrict(t *testing.T) {
	if SameValueStrict(Number(math.NaN()), Number(math.NaN())) {
		t.Error("NaN !== NaN")
	}
	if !SameValueStrict(Number(0), Number(math.Copysign(0, -1))) {
		t.Error("+0 === -0")
	}
	o := NewObject(nil)
	if !SameValueStrict(ObjValue(o), ObjValue(o)) || SameValueStrict(ObjValue(o), ObjValue(NewObject(nil))) {
		t.Error("object identity")
	}
	if SameValueStrict(String("1"), Number(1)) {
		t.Error("no cross-type equality")
	}
}

func TestToBoolean(t *testing.T) {
	falsy := []Value{Undefined(), Null(), Bool(false), Number(0),
		Number(math.Copysign(0, -1)), Number(math.NaN()), String("")}
	for _, v := range falsy {
		if ToBoolean(v) {
			t.Errorf("%v should be falsy", v)
		}
	}
	truthy := []Value{Bool(true), Number(1), Number(math.Inf(1)), String("0"),
		ObjValue(NewObject(nil))}
	for _, v := range truthy {
		if !ToBoolean(v) {
			t.Errorf("%v should be truthy", v)
		}
	}
}

func TestObjectPropertyOrder(t *testing.T) {
	o := NewObject(nil)
	o.SetSlot("b", Number(1), DefaultAttr)
	o.SetSlot("2", Number(2), DefaultAttr)
	o.SetSlot("a", Number(3), DefaultAttr)
	o.SetSlot("0", Number(4), DefaultAttr)
	keys := o.OwnKeys()
	want := []string{"0", "2", "b", "a"} // integer keys ascending, then insertion order
	if len(keys) != len(want) {
		t.Fatalf("keys: %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("key order: %v want %v", keys, want)
		}
	}
}

func TestDescriptorEnforcement(t *testing.T) {
	o := NewObject(nil)
	if !o.DefineOwn("x", &Property{Value: Number(1), Attr: 0}) {
		t.Fatal("initial define failed")
	}
	// Redefining a non-configurable, non-writable property must fail...
	if o.DefineOwn("x", &Property{Value: Number(2), Attr: DefaultAttr}) {
		t.Error("redefinition of locked property succeeded")
	}
	// ...unless nothing changes.
	if !o.DefineOwn("x", &Property{Value: Number(1), Attr: 0}) {
		t.Error("identical redefinition must be allowed")
	}
	if o.DeleteOwn("x") {
		t.Error("non-configurable delete must fail")
	}
	o.SetSlot("y", Number(1), DefaultAttr)
	if !o.DeleteOwn("y") || o.HasOwn("y") {
		t.Error("configurable delete")
	}
}

func TestArrayElementStorage(t *testing.T) {
	in := New(Config{})
	arr := in.NewArray(nil)
	arr.AppendElem(Number(1))
	arr.AppendElem(Number(2))
	if arr.ArrayLength() != 2 {
		t.Fatalf("length: %d", arr.ArrayLength())
	}
	// A sparse write far beyond the dense area lands in the property map.
	if err := in.SetProp(ObjValue(arr), "100000", Number(9), false); err != nil {
		t.Fatal(err)
	}
	if arr.ArrayLength() != 100001 {
		t.Errorf("sparse write length: %d", arr.ArrayLength())
	}
	v, err := in.GetPropKey(ObjValue(arr), "100000")
	if err != nil || v.Num() != 9 {
		t.Errorf("sparse read: %v %v", v, err)
	}
	// Truncation removes both dense and sparse elements.
	if err := in.SetProp(ObjValue(arr), "length", Number(1), false); err != nil {
		t.Fatal(err)
	}
	if arr.ArrayLength() != 1 || arr.HasOwn("100000") {
		t.Errorf("truncate failed: len=%d", arr.ArrayLength())
	}
}

// TestTypedArrayRoundTripProperty: every float64 survives a Float64Array
// store/load; int32 values survive Int32Array conversion.
func TestTypedArrayRoundTripProperty(t *testing.T) {
	f64 := &Object{Class: "Float64Array", ElemKind: ElemFloat64,
		Buf: &ArrayBuffer{Data: make([]byte, 8)}, ArrayLen: 1}
	propF := func(x float64) bool {
		f64.TypedSet(0, x)
		got := f64.TypedGet(0)
		return got == x || (math.IsNaN(x) && math.IsNaN(got))
	}
	if err := quick.Check(propF, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	i32 := &Object{Class: "Int32Array", ElemKind: ElemInt32,
		Buf: &ArrayBuffer{Data: make([]byte, 4)}, ArrayLen: 1}
	propI := func(x int32) bool {
		i32.TypedSet(0, float64(x))
		return i32.TypedGet(0) == float64(x)
	}
	if err := quick.Check(propI, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestClampedArrayRounding(t *testing.T) {
	o := &Object{Class: "Uint8ClampedArray", ElemKind: ElemUint8Clamped,
		Buf: &ArrayBuffer{Data: make([]byte, 1)}, ArrayLen: 1}
	cases := map[float64]float64{-5: 0, 300: 255, 2.5: 2, 3.5: 4, 2.6: 3, math.NaN(): 0}
	for in, want := range cases {
		o.TypedSet(0, in)
		if got := o.TypedGet(0); got != want {
			t.Errorf("clamped(%v) = %v want %v", in, got, want)
		}
	}
}

func TestFuelAccounting(t *testing.T) {
	in := New(Config{Fuel: 100})
	if err := in.Burn(50); err != nil {
		t.Fatal(err)
	}
	if in.FuelUsed() != 50 {
		t.Errorf("FuelUsed: %d", in.FuelUsed())
	}
	err := in.Burn(100)
	abort, ok := IsAbort(err)
	if !ok || abort.Kind != AbortTimeout {
		t.Errorf("exhaustion must be a timeout abort: %v", err)
	}
}

func TestTypeOf(t *testing.T) {
	fn := NewObject(nil)
	fn.Native = func(*Interp, Value, []Value) (Value, error) { return Undefined(), nil }
	cases := map[string]Value{
		"undefined": Undefined(),
		"object":    Null(),
		"boolean":   Bool(true),
		"number":    Number(1),
		"string":    String(""),
		"function":  ObjValue(fn),
	}
	for want, v := range cases {
		if got := TypeOf(v); got != want {
			t.Errorf("TypeOf(%v) = %q want %q", v, got, want)
		}
	}
}
