package faultinject

import "testing"

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Error("nil plan reports Enabled")
	}
	if f, _ := p.CaseFault(42); f != FaultNone {
		t.Errorf("nil plan injected %v", f)
	}
	if p.KillAtCheckpoint(1) {
		t.Error("nil plan kills at checkpoints")
	}
	if p.SlowProbes() != 0 {
		t.Error("nil plan has a probe budget")
	}
	if p.Fingerprint() != "none" {
		t.Errorf("nil plan fingerprint = %q", p.Fingerprint())
	}
}

func TestCaseFaultDeterministicAndSeedSensitive(t *testing.T) {
	a := New(Config{Seed: 7, PanicEvery: 10, SlowEvery: 15})
	b := New(Config{Seed: 7, PanicEvery: 10, SlowEvery: 15})
	c := New(Config{Seed: 8, PanicEvery: 10, SlowEvery: 15})
	var panics, slows, diffs int
	for i := 0; i < 2000; i++ {
		fa, sa := a.CaseFault(i)
		fb, sb := b.CaseFault(i)
		if fa != fb || sa != sb {
			t.Fatalf("case %d: same config disagrees: (%v,%d) vs (%v,%d)", i, fa, sa, fb, sb)
		}
		if fc, _ := c.CaseFault(i); fc != fa {
			diffs++
		}
		switch fa {
		case FaultPanic:
			panics++
		case FaultSlow:
			slows++
		}
	}
	if panics == 0 || slows == 0 {
		t.Fatalf("fault rates degenerate: %d panics, %d slows over 2000 cases", panics, slows)
	}
	// Roughly 1-in-10 and 1-in-15; allow a wide band.
	if panics < 100 || panics > 400 {
		t.Errorf("panic rate off: %d/2000 at 1-in-10", panics)
	}
	if diffs == 0 {
		t.Error("different seeds produced identical fault plans")
	}
}

func TestPanicTakesPrecedenceOverSlow(t *testing.T) {
	p := New(Config{Seed: 1, PanicEvery: 1, SlowEvery: 1})
	for i := 0; i < 50; i++ {
		if f, _ := p.CaseFault(i); f != FaultPanic {
			t.Fatalf("case %d: got %v, want panic to win", i, f)
		}
	}
}

func TestKillAtCheckpoint(t *testing.T) {
	p := New(Config{KillAtCheckpoints: []int{2, 5}})
	for n, want := range map[int]bool{1: false, 2: true, 3: false, 5: true, 6: false} {
		if got := p.KillAtCheckpoint(n); got != want {
			t.Errorf("KillAtCheckpoint(%d) = %v, want %v", n, got, want)
		}
	}
	if !p.Enabled() {
		t.Error("kill-only plan reports disabled")
	}
}

func TestCountdownWatchdog(t *testing.T) {
	wd := CountdownWatchdog(3)
	for i := 0; i < 3; i++ {
		if wd() {
			t.Fatalf("fired on probe %d, want survival through 3", i+1)
		}
	}
	if !wd() || !wd() {
		t.Error("did not fire (and stay fired) after the budget")
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7, panic=100, slow=150, probes=3, kill=2+5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.PanicEvery != 100 || cfg.SlowEvery != 150 || cfg.SlowProbes != 3 {
		t.Errorf("parsed %+v", cfg)
	}
	if len(cfg.KillAtCheckpoints) != 2 || cfg.KillAtCheckpoints[0] != 2 || cfg.KillAtCheckpoints[1] != 5 {
		t.Errorf("kill points %v", cfg.KillAtCheckpoints)
	}
	if c, err := Parse(""); err != nil || c.PanicEvery != 0 {
		t.Errorf("empty spec: %+v, %v", c, err)
	}
	for _, bad := range []string{"panic", "panic=-1", "kill=0", "seed=x", "bogus=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestFingerprintExcludesKillPoints(t *testing.T) {
	a := New(Config{Seed: 3, PanicEvery: 50, KillAtCheckpoints: []int{1}})
	b := New(Config{Seed: 3, PanicEvery: 50, KillAtCheckpoints: []int{4}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("kill points leaked into fingerprint: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	c := New(Config{Seed: 4, PanicEvery: 50})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("seed change did not change fingerprint")
	}
}
