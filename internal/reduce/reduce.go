// Package reduce implements the paper's Section 3.5 test-case reduction:
// traverse the AST, iteratively remove code structures, and keep each
// removal that still reproduces the anomalous behaviour, until a fixpoint.
package reduce

import (
	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
)

// Predicate reports whether a candidate source still triggers the same
// anomalous behaviour as the original test case.
type Predicate func(src string) bool

// Reduce shrinks src while pred keeps holding. The result is the fixpoint
// of statement-level removals plus branch simplifications.
func Reduce(src string, pred Predicate) string {
	if !pred(src) {
		return src
	}
	current := src
	for {
		next, improved := pass(current, pred)
		if !improved {
			return current
		}
		current = next
	}
}

// pass tries every single removal on current once; it returns the best
// improvement found.
func pass(current string, pred Predicate) (string, bool) {
	prog, err := parser.Parse(current)
	if err != nil {
		return current, false
	}
	total := countStmts(prog)
	for idx := total - 1; idx >= 0; idx-- {
		candidate, ok := removeNthStmt(current, idx)
		if !ok || candidate == current {
			continue
		}
		if pred(candidate) {
			return candidate, true
		}
	}
	// Structure simplifications: if→then, loops→body.
	for idx := 0; idx < total; idx++ {
		candidate, ok := simplifyNthStmt(current, idx)
		if !ok || candidate == current {
			continue
		}
		if pred(candidate) {
			return candidate, true
		}
	}
	return current, false
}

// stmtLists enumerates all statement containers of a program.
func stmtLists(prog *ast.Program) []*[]ast.Stmt {
	var lists []*[]ast.Stmt
	lists = append(lists, &prog.Body)
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, &v.Body)
		case *ast.SwitchCase:
			lists = append(lists, &v.Body)
		}
		return true
	})
	return lists
}

func countStmts(prog *ast.Program) int {
	total := 0
	for _, l := range stmtLists(prog) {
		total += len(*l)
	}
	return total
}

// removeNthStmt reparses src, removes the idx-th statement (in container
// enumeration order) and prints the result.
func removeNthStmt(src string, idx int) (string, bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", false
	}
	n := idx
	for _, l := range stmtLists(prog) {
		if n < len(*l) {
			*l = append(append([]ast.Stmt(nil), (*l)[:n]...), (*l)[n+1:]...)
			out := ast.Print(prog)
			if _, err := parser.Parse(out); err != nil {
				return "", false
			}
			return out, true
		}
		n -= len(*l)
	}
	return "", false
}

// simplifyNthStmt replaces a structured statement with its body.
func simplifyNthStmt(src string, idx int) (string, bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", false
	}
	n := idx
	for _, l := range stmtLists(prog) {
		if n < len(*l) {
			s := (*l)[n]
			var repl ast.Stmt
			switch v := s.(type) {
			case *ast.IfStmt:
				repl = v.Then
			case *ast.WhileStmt:
				repl = v.Body
			case *ast.ForStmt:
				repl = v.Body
			case *ast.TryStmt:
				repl = v.Block
			case *ast.LabeledStmt:
				repl = v.Body
			default:
				return "", false
			}
			if repl == nil {
				return "", false
			}
			(*l)[n] = repl
			out := ast.Print(prog)
			if _, err := parser.Parse(out); err != nil {
				return "", false
			}
			return out, true
		}
		n -= len(*l)
	}
	return "", false
}
