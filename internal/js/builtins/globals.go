package builtins

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

func installGlobals(r *registry) {
	in := r.in

	in.Global.SetSlot("NaN", interp.Number(math.NaN()), 0)
	in.Global.SetSlot("Infinity", interp.Number(math.Inf(1)), 0)
	in.Global.SetSlot("undefined", interp.Undefined(), 0)
	in.Global.SetSlot("globalThis", interp.ObjValue(in.Global), interp.Writable|interp.Configurable)

	// print and console are built by one shared thunk so console.log stays
	// an alias of print however the pair is first reached.
	printed := false
	installPrint := func() {
		if printed {
			return
		}
		printed = true
		print := r.fn("print", 1, printImpl)
		r.global("print", interp.ObjValue(print))
		// console.log aliases print, since corpus programs use both.
		console := in.NewObject(in.Protos["Object"])
		console.SetSlot("log", interp.ObjValue(print), interp.DefaultAttr)
		console.SetSlot("error", interp.ObjValue(print), interp.DefaultAttr)
		console.SetSlot("warn", interp.ObjValue(print), interp.DefaultAttr)
		r.global("console", interp.ObjValue(console))
	}
	in.Global.SetLazy("print", installPrint)
	in.Global.SetLazy("console", installPrint)

	r.globalFn("eval", 1, evalImpl)
	r.globalFn("parseInt", 2, parseIntImpl)
	r.globalFn("parseFloat", 1, parseFloatImpl)

	r.globalFn("isNaN", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(math.IsNaN(n)), nil
	})

	r.globalFn("isFinite", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(!math.IsNaN(n) && !math.IsInf(n, 0)), nil
	})
}

// printImpl implements the print builtin (and console.log/error/warn).
func printImpl(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
	var parts []string
	for _, a := range args {
		s, err := in.ToString(a)
		if err != nil {
			return interp.Undefined(), err
		}
		parts = append(parts, s)
	}
	in.Print(strings.Join(parts, " "))
	return interp.Undefined(), nil
}

// evalImpl implements the global eval function, including the
// HookEvalParse defect site (lenient parse acceptance, Listing 7).
func evalImpl(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
	src := arg(args, 0)
	if src.Kind() != interp.KindString {
		return src, nil
	}
	code := src.Str()
	opts := parser.Options{Strict: in.Strict}
	if in.Hook != nil {
		ov := in.Hook(&interp.HookCtx{Site: interp.HookEvalParse, In: in, Src: code})
		if ov != nil {
			if ov.Replace {
				return ov.Return, ov.Err
			}
			if ov.Handled {
				// Defect: the engine's eval parser is lenient.
				opts.AllowEmptyForBody = true
				opts.AllowDuplicateParams = true
				opts.AllowLegacyOctal = true
			}
		}
	}
	if err := in.Burn(int64(len(code))); err != nil {
		return interp.Undefined(), err
	}
	prog, err := parser.ParseWith(code, opts)
	if err != nil {
		return interp.Undefined(), in.SyntaxErrorf("%v", err)
	}
	// Resolve the freshly parsed tree: eval always executes in the global
	// environment, whose top level is the resolver's dynamic root, so the
	// annotations are sound here and functions the eval'd code defines run
	// on the slot-indexed path.
	resolve.Program(prog)
	return in.RunInEnv(prog, in.GlobalEnv, in.Strict)
}

func parseIntImpl(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
	s, err := in.ToString(arg(args, 0))
	if err != nil {
		return interp.Undefined(), err
	}
	radixV, err := in.ToInteger(arg(args, 1))
	if err != nil {
		return interp.Undefined(), err
	}
	radix := int(radixV)
	s = strings.TrimSpace(s)
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	if radix == 0 {
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			radix = 16
			s = s[2:]
		} else {
			radix = 10
		}
	} else if radix == 16 && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X")) {
		s = s[2:]
	}
	if radix < 2 || radix > 36 {
		return interp.Number(math.NaN()), nil
	}
	val := 0.0
	digits := 0
	for _, c := range s {
		d := digitVal(c)
		if d < 0 || d >= radix {
			break
		}
		val = val*float64(radix) + float64(d)
		digits++
	}
	if digits == 0 {
		return interp.Number(math.NaN()), nil
	}
	return interp.Number(sign * val), nil
}

func digitVal(c rune) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return -1
}

func parseFloatImpl(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
	s, err := in.ToString(arg(args, 0))
	if err != nil {
		return interp.Undefined(), err
	}
	s = strings.TrimSpace(s)
	// Longest prefix that parses as a decimal literal.
	end := 0
	seenDigit, seenDot, seenExp := false, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
			end = i + 1
		case (c == '+' || c == '-') && i == 0:
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && seenDigit && !seenExp:
			seenExp = true
			// Require a digit (optionally signed) after the exponent.
			j := i + 1
			if j < len(s) && (s[j] == '+' || s[j] == '-') {
				j++
			}
			if j >= len(s) || s[j] < '0' || s[j] > '9' {
				i = len(s)
			}
		default:
			i = len(s)
		}
	}
	if strings.HasPrefix(s, "Infinity") || strings.HasPrefix(s, "+Infinity") {
		return interp.Number(math.Inf(1)), nil
	}
	if strings.HasPrefix(s, "-Infinity") {
		return interp.Number(math.Inf(-1)), nil
	}
	if !seenDigit {
		return interp.Number(math.NaN()), nil
	}
	return interp.Number(jsnum.Parse(s[:end])), nil
}
