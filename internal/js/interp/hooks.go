package interp

// HookSite identifies the interception point of an engine defect.
type HookSite int

// Hook sites. These correspond to the places where real engines diverge:
// builtin dispatch, property stores, (eval) parsing, array growth, regex
// execution, and tier-up recompilation.
const (
	HookBuiltin HookSite = iota
	HookPropSet
	HookEvalParse
	HookArrayGrow
	HookRegexExec
	HookFuncTier
)

func (s HookSite) String() string {
	switch s {
	case HookBuiltin:
		return "builtin"
	case HookPropSet:
		return "propset"
	case HookEvalParse:
		return "evalparse"
	case HookArrayGrow:
		return "arraygrow"
	case HookRegexExec:
		return "regexexec"
	case HookFuncTier:
		return "functier"
	default:
		return "unknown"
	}
}

// HookCtx carries the interception context to a Hook.
type HookCtx struct {
	Site HookSite
	In   *Interp

	// HookBuiltin and HookRegexExec.
	Name string // canonical builtin key, e.g. "String.prototype.substr"
	This Value
	Args []Value

	// HookPropSet.
	Obj *Object
	Key Value
	Val Value

	// HookEvalParse.
	Src string

	// HookRegexExec.
	Pattern string
	Flags   string

	// HookArrayGrow: the array being written and the index.
	Index uint32

	// HookFuncTier: the invocation count of the function being entered.
	Tier int
	Fn   *Object
}

// Override tells the interpreter how a hook altered behaviour.
type Override struct {
	// Replace short-circuits the operation with Return/Err.
	Replace bool
	Return  Value
	Err     error

	// Post transforms the operation's natural result (builtin sites only).
	Post func(res Value, err error) (Value, error)

	// Handled suppresses the default property store (HookPropSet only).
	Handled bool

	// CostExtra burns additional fuel, simulating performance defects.
	CostExtra int64
}

// Hook is the defect interception function installed by engine variants.
// A nil return means "no interference".
type Hook func(*HookCtx) *Override

// hookCtx returns a HookCtx for a hook site that consumes the hook's
// Override synchronously and never touches the ctx after the hook call
// returns (propset, arraygrow, functier — the per-operation hot sites).
// Such sites reuse one per-interpreter scratch struct instead of
// allocating: a &HookCtx literal passed to the dynamic Hook call always
// escapes, and on defect-laden testbeds property stores dominated the
// evaluator's allocation profile. Builtin sites keep allocating — their
// Override.Post closures may capture the ctx past the call. If a hook
// re-enters the interpreter and reaches another scratch site while the
// outer ctx is still live, the busy flag falls back to allocation, so
// reuse is safe even for re-entrant hooks. Callers must overwrite every
// field (assign a whole HookCtx value) and release via releaseHookCtx.
func (in *Interp) hookCtx() *HookCtx {
	if in.hookScratchBusy {
		return &HookCtx{}
	}
	in.hookScratchBusy = true
	return &in.hookScratch
}

// releaseHookCtx returns the scratch HookCtx after the hook call,
// dropping the value references it holds. Heap-allocated fallbacks are
// left to the collector.
func (in *Interp) releaseHookCtx(ctx *HookCtx) {
	if ctx == &in.hookScratch {
		*ctx = HookCtx{}
		in.hookScratchBusy = false
	}
}

// applyHook runs the installed hook for a builtin-like site and merges the
// result with the default behaviour produced by run().
func (in *Interp) applyHook(ctx *HookCtx, run func() (Value, error)) (Value, error) {
	if in.Hook == nil {
		return run()
	}
	ov := in.Hook(ctx)
	if ov == nil {
		return run()
	}
	if ov.CostExtra > 0 {
		if err := in.charge(ov.CostExtra); err != nil {
			return Undefined(), err
		}
	}
	if ov.Replace {
		return ov.Return, ov.Err
	}
	res, err := run()
	if ov.Post != nil {
		res, err = ov.Post(res, err)
	}
	return res, err
}
