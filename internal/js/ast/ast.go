// Package ast declares the abstract syntax tree of the JavaScript subset,
// a generic visitor, and a source printer. Every node carries a small
// integer ID assigned by the parser; coverage measurement and test-case
// reduction key off those IDs.
package ast

import "comfort/internal/js/token"

// Node is implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
	ID() int
	setID(int)
}

// base provides position and ID storage for all nodes.
type base struct {
	P  token.Pos
	id int
}

func (b *base) Pos() token.Pos { return b.P }
func (b *base) ID() int        { return b.id }
func (b *base) setID(n int)    { b.id = n }

// SetID assigns a node ID. Exported for the parser and synthetic-AST
// builders (fuzzers) only.
func SetID(n Node, id int) { n.setID(id) }

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// ---------- static scope annotations ----------
//
// The types below are populated by internal/js/resolve, which runs once per
// parsed program and records the static scope layout: every scope node gets
// a ScopeInfo (frame size plus the named slot roles) and every identifier
// reference gets a ScopeRef. The interpreter consults the annotations when
// present and falls back to its dynamic map-based environments when they are
// absent (synthetic fuzzer ASTs, eval'd code that was not resolved), so a
// zero-valued annotation always means "use the dynamic path".

// RefKind selects how an identifier reference is resolved at run time.
type RefKind uint8

// Reference kinds.
const (
	// RefDynamic (the zero value) walks the environment chain by name —
	// the behaviour of an unresolved AST, and the fallback for references
	// the resolver cannot prove live (e.g. a name read before its `let`
	// declaration has executed).
	RefDynamic RefKind = iota
	// RefSlot reads frame Depth levels up the chain of materialised
	// frames, at index Slot. Emitted only when the binding is provably
	// declared at every execution of the reference.
	RefSlot
	// RefGlobal resolves on the global environment (top-level lexical
	// bindings) and then the global object — emitted when no intervening
	// scope can ever bind the name.
	RefGlobal
)

// ScopeRef is the resolved coordinate of one identifier reference.
type ScopeRef struct {
	Kind  RefKind
	Depth uint16 // materialised frames to walk up (RefSlot)
	Slot  uint16 // index into the target frame (RefSlot)
}

// ScopeInfo is the static layout of one scope (a function body, block,
// for/for-in loop head, switch body, or catch clause). A scope materialises
// a frame at run time iff NumSlots > 0; empty scopes reuse the enclosing
// frame, which is what makes ScopeRef depths stable.
type ScopeInfo struct {
	// NumSlots is the frame size; Names maps slot index to the declared
	// name (needed by dynamic fallback lookups scanning the frame).
	NumSlots int
	Names    []string

	// Function scopes only. ParamSlots has one entry per parameter (in
	// order; duplicate names share a slot). The *Slot fields are -1 when
	// the corresponding binding does not exist. ArgumentsSlot is -1 when
	// the body provably never observes `arguments`, which lets the
	// interpreter skip building the arguments object.
	ParamSlots    []uint16
	RestSlot      int32
	ArgumentsSlot int32
	SelfSlot      int32

	// CatchParamSlot is the catch parameter's slot in a catch-clause
	// scope, -1 otherwise.
	CatchParamSlot int32

	// VarSlots lists the slots created by var and function-declaration
	// hoisting that are not already initialised as parameters; they are
	// set to undefined at frame entry. HoistFuncs/HoistSlots are the
	// function declarations instantiated at entry, in source order.
	VarSlots   []uint16
	HoistFuncs []*FuncLit
	HoistSlots []uint16

	// Poolable marks a scope whose frame provably cannot escape the
	// dynamic extent of its activation: no function literal or declaration
	// anywhere in the scope's subtree closes over it. Set by
	// internal/js/compile; the interpreter recycles such frames through a
	// per-instance free list instead of allocating a []binding per entry.
	Poolable bool
}

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// ---------- Statements ----------

// Program is the root node of a parsed source file.
type Program struct {
	base
	Body   []Stmt
	Strict bool // file-level "use strict" directive
	// NodeCount is the total number of nodes allocated by the parser,
	// used to size coverage bitmaps.
	NodeCount int
	// ResolvedScopes marks that internal/js/resolve has annotated this
	// tree (resolution is idempotent and keyed off this flag).
	ResolvedScopes bool
	// Compiled holds the program's thunk-compiled form (a
	// *compile.Compiled), attached by internal/js/compile after
	// resolution. Stored as any to keep this package dependency-free; the
	// executing layer type-asserts. Like the scope annotations it is
	// written once, before the program is shared across goroutines.
	Compiled any
	// Analysis holds the static-semantics report (an *analyze.Report),
	// attached by internal/js/analyze under the same write-once,
	// publish-before-sharing contract as Compiled.
	Analysis any
}

// VarKind distinguishes var/let/const declarations.
type VarKind int

// Declaration kinds.
const (
	Var VarKind = iota
	Let
	Const
)

func (k VarKind) String() string {
	switch k {
	case Let:
		return "let"
	case Const:
		return "const"
	default:
		return "var"
	}
}

// Declarator is one name = init pair inside a VarDecl.
type Declarator struct {
	Name string
	Init Expr // may be nil
	// Ref is the declaration's slot target (set by internal/js/resolve;
	// RefDynamic for top-level declarations, which stay on the dynamic
	// global path).
	Ref ScopeRef
}

// VarDecl is a var/let/const statement.
type VarDecl struct {
	base
	Kind  VarKind
	Decls []Declarator
}

// FuncDecl is a function declaration statement.
type FuncDecl struct {
	base
	Fn *FuncLit
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	base
	X Expr
	// Directive holds the raw string if this statement is a directive
	// prologue entry such as "use strict".
	Directive string
}

// BlockStmt is a braced statement list.
type BlockStmt struct {
	base
	Body []Stmt
	// Scope is the block's static layout (see ScopeInfo). For a TryStmt's
	// catch block it additionally holds the catch parameter.
	Scope *ScopeInfo
}

// IfStmt is an if/else statement.
type IfStmt struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a classic three-clause for loop.
type ForStmt struct {
	base
	Init Node // *VarDecl, Expr, or nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
	// Scope holds the loop head's lexical declarations (let/const inits).
	Scope *ScopeInfo
}

// ForInStmt is for (x in obj) — and doubles as for-of when Of is set.
type ForInStmt struct {
	base
	Decl VarKind // declaration kind, or -1 when the target is a plain name
	Name string
	Obj  Expr
	Body Stmt
	Of   bool
	// Scope holds the loop variable for let/const declarations; NameRef is
	// the resolved target of the per-iteration binding or assignment.
	Scope   *ScopeInfo
	NameRef ScopeRef
}

// WhileStmt is a while loop.
type WhileStmt struct {
	base
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	base
	Body Stmt
	Cond Expr
}

// SwitchCase is one case (or default, when Test is nil) clause.
type SwitchCase struct {
	base
	Test Expr // nil for default
	Body []Stmt
}

// SwitchStmt is a switch statement.
type SwitchStmt struct {
	base
	Disc  Expr
	Cases []*SwitchCase
	// Scope is the shared scope of all case bodies. Because execution may
	// enter at any case, its lexical bindings are never statically
	// resolvable; the scope exists for frame sizing only.
	Scope *ScopeInfo
}

// BreakStmt is break [label].
type BreakStmt struct {
	base
	Label string
}

// ContinueStmt is continue [label].
type ContinueStmt struct {
	base
	Label string
}

// ReturnStmt is return [expr].
type ReturnStmt struct {
	base
	X Expr // may be nil
}

// ThrowStmt is throw expr.
type ThrowStmt struct {
	base
	X Expr
}

// TryStmt is try/catch/finally. Catch and Finally may each be nil (not both).
type TryStmt struct {
	base
	Block      *BlockStmt
	CatchParam string
	Catch      *BlockStmt
	Finally    *BlockStmt
}

// LabeledStmt is label: stmt.
type LabeledStmt struct {
	base
	Label string
	Body  Stmt
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ base }

// DebuggerStmt is the debugger statement (a no-op at run time).
type DebuggerStmt struct{ base }

func (*VarDecl) stmtNode()      {}
func (*FuncDecl) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*ForInStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*SwitchCase) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ThrowStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*LabeledStmt) stmtNode()  {}
func (*EmptyStmt) stmtNode()    {}
func (*DebuggerStmt) stmtNode() {}
func (*Program) stmtNode()      {}

// ---------- Expressions ----------

// Ident is a name reference.
type Ident struct {
	base
	Name string
	// Ref is the statically resolved scope coordinate (RefDynamic when the
	// tree has not been resolved or the reference is not provable).
	Ref ScopeRef
}

// NumberLit is a numeric literal; Value is the parsed float64.
type NumberLit struct {
	base
	Value float64
	Raw   string
}

// StringLit is a string literal (cooked value).
type StringLit struct {
	base
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is null.
type NullLit struct{ base }

// RegexLit is a regular-expression literal.
type RegexLit struct {
	base
	Pattern string
	Flags   string
}

// TemplateLit is a template literal with interleaved string parts and
// substitution expressions: Quasis has len(Exprs)+1 entries.
type TemplateLit struct {
	base
	Quasis []string
	Exprs  []Expr
}

// ArrayLit is [a, b, ...]. Nil elements represent elisions.
type ArrayLit struct {
	base
	Elems []Expr
}

// PropKind distinguishes normal properties from accessors.
type PropKind int

// Property kinds in object literals.
const (
	PropInit PropKind = iota
	PropGet
	PropSet
)

// Property is one entry in an object literal.
type Property struct {
	Key      string // used when Computed is false
	KeyExpr  Expr   // used when Computed is true
	Computed bool
	Kind     PropKind
	Value    Expr
}

// ObjectLit is { k: v, ... }.
type ObjectLit struct {
	base
	Props []Property
}

// FuncLit is a function expression/declaration body.
type FuncLit struct {
	base
	Name   string // may be empty
	Params []string
	Rest   string // rest parameter name, if any
	Body   *BlockStmt
	Arrow  bool
	// ExprBody is set for arrow functions with expression bodies:
	// the body is `return ExprBody`.
	ExprBody Expr
	Strict   bool // body has a "use strict" directive
	// Scope is the function frame's static layout (params, hoisted vars
	// and declarations, arguments/self slots).
	Scope *ScopeInfo
	// Compiled is the thunk-compiled body (an interp.CompiledBody),
	// attached by internal/js/compile; interp.MakeFunction copies it onto
	// the function object so calls dispatch to the compiled form.
	Compiled any
}

func (*FuncLit) exprNode() {}

// UnaryExpr is a prefix operator application (typeof, -, !, void, delete, ~, +).
type UnaryExpr struct {
	base
	Op token.Type
	X  Expr
}

// UpdateExpr is ++/-- in prefix or postfix position.
type UpdateExpr struct {
	base
	Op     token.Type // INC or DEC
	X      Expr
	Prefix bool
}

// BinaryExpr is a binary operator application (arithmetic, comparison,
// bitwise, in, instanceof).
type BinaryExpr struct {
	base
	Op   token.Type
	L, R Expr
}

// LogicalExpr is &&, || or ??.
type LogicalExpr struct {
	base
	Op   token.Type
	L, R Expr
}

// AssignExpr is an assignment, possibly compound (+=, etc.).
type AssignExpr struct {
	base
	Op   token.Type // ASSIGN or a compound-assign token
	L, R Expr
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	base
	Cond, Then, Else Expr
}

// CallExpr is a function call.
type CallExpr struct {
	base
	Callee Expr
	Args   []Expr
}

// NewExpr is new Callee(args).
type NewExpr struct {
	base
	Callee Expr
	Args   []Expr
}

// MemberExpr is property access: obj.name or obj[expr].
type MemberExpr struct {
	base
	Obj      Expr
	Name     string // when not computed
	Prop     Expr   // when computed
	Computed bool
}

// SeqExpr is the comma operator.
type SeqExpr struct {
	base
	Exprs []Expr
}

// SpreadExpr is ...expr in call arguments or array literals.
type SpreadExpr struct {
	base
	X Expr
}

// ThisExpr is this.
type ThisExpr struct{ base }

func (*Ident) exprNode()       {}
func (*NumberLit) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*RegexLit) exprNode()    {}
func (*TemplateLit) exprNode() {}
func (*ArrayLit) exprNode()    {}
func (*ObjectLit) exprNode()   {}
func (*UnaryExpr) exprNode()   {}
func (*UpdateExpr) exprNode()  {}
func (*BinaryExpr) exprNode()  {}
func (*LogicalExpr) exprNode() {}
func (*AssignExpr) exprNode()  {}
func (*CondExpr) exprNode()    {}
func (*CallExpr) exprNode()    {}
func (*NewExpr) exprNode()     {}
func (*MemberExpr) exprNode()  {}
func (*SeqExpr) exprNode()     {}
func (*SpreadExpr) exprNode()  {}
func (*ThisExpr) exprNode()    {}
