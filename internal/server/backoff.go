// Retry backoff. The schedule is a pure function of (job sequence, retry
// ordinal): exponential growth capped at a maximum, plus deterministic
// splitmix64-derived jitter so a burst of jobs crashing together does not
// retry in lockstep. No wall clock and no global RNG — the supervisor's
// injected Sleep decides how the delays are actually waited out, which is
// what makes the schedule assertable in tests.
package server

import "time"

// retryDelay computes the wait before retry number attempt (1-based) of
// the job with sequence number seq.
func retryDelay(base, max time.Duration, seq, attempt int) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	if max <= 0 {
		max = time.Minute
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter in [0, base): enough to de-synchronise, small enough to keep
	// the exponential shape readable in logs and tests.
	j := time.Duration(mix64(uint64(seq), uint64(attempt)) % uint64(base))
	return d + j
}

// mix64 is one splitmix64 round over (a, b) — the same mixing discipline
// as faultinject and the generator's batch seeds.
func mix64(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15*(b+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
