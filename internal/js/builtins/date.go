package builtins

import (
	"fmt"
	"math"
	"time"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
)

func installDate(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	proto.Class = "Date"

	newDate := func(in *interp.Interp, ms float64) *interp.Object {
		o := in.NewObject(in.Protos["Date"])
		o.Class = "Date"
		o.Prim, o.HasPrim = interp.Number(ms), true
		return o
	}

	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		switch len(args) {
		case 0:
			in.Now++ // the deterministic clock ticks on observation
			return interp.ObjValue(newDate(in, in.Now)), nil
		case 1:
			if args[0].Kind() == interp.KindString {
				t, err := time.Parse(time.RFC3339, args[0].Str())
				if err != nil {
					return interp.ObjValue(newDate(in, math.NaN())), nil
				}
				return interp.ObjValue(newDate(in, float64(t.UnixMilli()))), nil
			}
			n, err := in.ToNumber(args[0])
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.ObjValue(newDate(in, jsnum.ToInteger(n))), nil
		default:
			// new Date(y, m, d, h, min, s, ms) in UTC for determinism.
			get := func(i int, dflt float64) (float64, error) {
				if i >= len(args) {
					return dflt, nil
				}
				return in.ToInteger(args[i])
			}
			y, err := get(0, 1970)
			if err != nil {
				return interp.Undefined(), err
			}
			mo, err := get(1, 0)
			if err != nil {
				return interp.Undefined(), err
			}
			d, err := get(2, 1)
			if err != nil {
				return interp.Undefined(), err
			}
			h, err := get(3, 0)
			if err != nil {
				return interp.Undefined(), err
			}
			mi, err := get(4, 0)
			if err != nil {
				return interp.Undefined(), err
			}
			sec, err := get(5, 0)
			if err != nil {
				return interp.Undefined(), err
			}
			ms, err := get(6, 0)
			if err != nil {
				return interp.Undefined(), err
			}
			t := time.Date(int(y), time.Month(int(mo)+1), int(d), int(h), int(mi), int(sec), int(ms)*1e6, time.UTC)
			return interp.ObjValue(newDate(in, float64(t.UnixMilli()))), nil
		}
	}
	call := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		in.Now++
		return interp.String(formatDate(in.Now)), nil
	}
	ctor := r.ctor("Date", 7, proto, call, construct)

	r.method(ctor, "Date.now", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		in.Now++
		return interp.Number(in.Now), nil
	})

	r.method(ctor, "Date.parse", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		s, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return interp.Number(math.NaN()), nil
		}
		return interp.Number(float64(t.UnixMilli())), nil
	})

	r.method(ctor, "Date.UTC", 7, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v, err := construct(in, this, args)
		if err != nil {
			return interp.Undefined(), err
		}
		return v.Obj().Prim, nil
	})

	thisDate := func(in *interp.Interp, this interp.Value, method string) (float64, error) {
		if this.IsObject() && this.Obj().Class == "Date" && this.Obj().HasPrim {
			return this.Obj().Prim.Num(), nil
		}
		return 0, in.TypeErrorf("%s called on incompatible receiver", method)
	}

	num := func(name string, f func(t time.Time) float64) {
		r.method(proto, name, 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			ms, err := thisDate(in, this, name)
			if err != nil {
				return interp.Undefined(), err
			}
			if math.IsNaN(ms) {
				return interp.Number(math.NaN()), nil
			}
			return interp.Number(f(time.UnixMilli(int64(ms)).UTC())), nil
		})
	}

	r.method(proto, "Date.prototype.getTime", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		ms, err := thisDate(in, this, "Date.prototype.getTime")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(ms), nil
	})
	r.method(proto, "Date.prototype.valueOf", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		ms, err := thisDate(in, this, "Date.prototype.valueOf")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(ms), nil
	})

	num("Date.prototype.getFullYear", func(t time.Time) float64 { return float64(t.Year()) })
	num("Date.prototype.getMonth", func(t time.Time) float64 { return float64(int(t.Month()) - 1) })
	num("Date.prototype.getDate", func(t time.Time) float64 { return float64(t.Day()) })
	num("Date.prototype.getDay", func(t time.Time) float64 { return float64(int(t.Weekday())) })
	num("Date.prototype.getHours", func(t time.Time) float64 { return float64(t.Hour()) })
	num("Date.prototype.getMinutes", func(t time.Time) float64 { return float64(t.Minute()) })
	num("Date.prototype.getSeconds", func(t time.Time) float64 { return float64(t.Second()) })
	num("Date.prototype.getMilliseconds", func(t time.Time) float64 { return float64(t.Nanosecond() / 1e6) })
	num("Date.prototype.getUTCFullYear", func(t time.Time) float64 { return float64(t.Year()) })
	num("Date.prototype.getUTCMonth", func(t time.Time) float64 { return float64(int(t.Month()) - 1) })
	num("Date.prototype.getUTCDate", func(t time.Time) float64 { return float64(t.Day()) })
	num("Date.prototype.getUTCHours", func(t time.Time) float64 { return float64(t.Hour()) })
	num("Date.prototype.getTimezoneOffset", func(t time.Time) float64 { return 0 })

	r.method(proto, "Date.prototype.toISOString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		ms, err := thisDate(in, this, "Date.prototype.toISOString")
		if err != nil {
			return interp.Undefined(), err
		}
		if math.IsNaN(ms) {
			return interp.Undefined(), in.RangeErrorf("Invalid time value")
		}
		t := time.UnixMilli(int64(ms)).UTC()
		return interp.String(t.Format("2006-01-02T15:04:05.000Z")), nil
	})

	r.method(proto, "Date.prototype.toJSON", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		ms, err := thisDate(in, this, "Date.prototype.toJSON")
		if err != nil {
			return interp.Undefined(), err
		}
		if math.IsNaN(ms) {
			return interp.Null(), nil
		}
		t := time.UnixMilli(int64(ms)).UTC()
		return interp.String(t.Format("2006-01-02T15:04:05.000Z")), nil
	})

	r.method(proto, "Date.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		ms, err := thisDate(in, this, "Date.prototype.toString")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(formatDate(ms)), nil
	})

	r.method(proto, "Date.prototype.setTime", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if _, err := thisDate(in, this, "Date.prototype.setTime"); err != nil {
			return interp.Undefined(), err
		}
		n, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		this.Obj().Prim = interp.Number(jsnum.ToInteger(n))
		return this.Obj().Prim, nil
	})
}

func formatDate(ms float64) string {
	if math.IsNaN(ms) {
		return "Invalid Date"
	}
	t := time.UnixMilli(int64(ms)).UTC()
	return fmt.Sprintf("%s %s %02d %d %02d:%02d:%02d GMT+0000 (Coordinated Universal Time)",
		t.Weekday().String()[:3], t.Month().String()[:3], t.Day(), t.Year(),
		t.Hour(), t.Minute(), t.Second())
}
