package builtins

import (
	"comfort/internal/js/interp"
)

func installRegExp(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	proto.Class = "Object" // RegExp.prototype is an ordinary object in ES6+

	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		patV := arg(args, 0)
		flagsV := arg(args, 1)
		pattern, flags := "", ""
		if patV.IsObject() && patV.Obj().Class == "RegExp" {
			pattern = patV.Obj().Regex.Source
			flags = patV.Obj().Regex.Flags
		} else if !patV.IsUndefined() {
			var err error
			pattern, err = in.ToString(patV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		if !flagsV.IsUndefined() {
			var err error
			flags, err = in.ToString(flagsV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		return in.NewRegExp(pattern, flags)
	}
	r.ctor("RegExp", 2, proto, construct, construct)
	// NewRegExp allocates with Protos["RegExp"]; re-point it at our proto.
	in.Protos["RegExp"] = proto

	thisRegex := func(in *interp.Interp, this interp.Value, method string) (*interp.Object, error) {
		if this.IsObject() && this.Obj().Class == "RegExp" {
			return this.Obj(), nil
		}
		return nil, in.TypeErrorf("%s called on incompatible receiver", method)
	}

	r.method(proto, "RegExp.prototype.exec", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisRegex(in, this, "RegExp.prototype.exec")
		if err != nil {
			return interp.Undefined(), err
		}
		input, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		re := o.Regex
		start := 0
		if re.Global || re.Sticky {
			liV, err := in.GetPropKey(this, "lastIndex")
			if err != nil {
				return interp.Undefined(), err
			}
			li, err := in.ToInteger(liV)
			if err != nil {
				return interp.Undefined(), err
			}
			start = int(li)
		}
		m, err := runRegex(in, re, input, start, "RegExp.prototype.exec")
		if err != nil {
			return interp.Undefined(), err
		}
		if m == nil {
			if re.Global || re.Sticky {
				if err := in.SetProp(this, "lastIndex", interp.Number(0), false); err != nil {
					return interp.Undefined(), err
				}
			}
			return interp.Null(), nil
		}
		if re.Global || re.Sticky {
			if err := in.SetProp(this, "lastIndex", interp.Number(float64(m.Groups[0][1])), false); err != nil {
				return interp.Undefined(), err
			}
		}
		return matchToArray(in, m), nil
	})

	r.method(proto, "RegExp.prototype.test", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisRegex(in, this, "RegExp.prototype.test")
		if err != nil {
			return interp.Undefined(), err
		}
		input, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		re := o.Regex
		start := 0
		if re.Global || re.Sticky {
			liV, err := in.GetPropKey(this, "lastIndex")
			if err != nil {
				return interp.Undefined(), err
			}
			li, err := in.ToInteger(liV)
			if err != nil {
				return interp.Undefined(), err
			}
			start = int(li)
		}
		m, err := runRegex(in, re, input, start, "RegExp.prototype.test")
		if err != nil {
			return interp.Undefined(), err
		}
		if re.Global || re.Sticky {
			end := 0.0
			if m != nil {
				end = float64(m.Groups[0][1])
			}
			if err := in.SetProp(this, "lastIndex", interp.Number(end), false); err != nil {
				return interp.Undefined(), err
			}
		}
		return interp.Bool(m != nil), nil
	})

	r.method(proto, "RegExp.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisRegex(in, this, "RegExp.prototype.toString")
		if err != nil {
			return interp.Undefined(), err
		}
		src := o.Regex.Source
		if src == "" {
			src = "(?:)"
		}
		return interp.String("/" + src + "/" + o.Regex.Flags), nil
	})

	// Annex B: RegExp.prototype.compile re-initialises the regex in place.
	// Per ES2015+, lastIndex must be writable or compile throws a TypeError
	// — the DIE Listing-12 conformance rule.
	r.method(proto, "RegExp.prototype.compile", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisRegex(in, this, "RegExp.prototype.compile")
		if err != nil {
			return interp.Undefined(), err
		}
		if p, ok := o.GetOwnProperty("lastIndex"); ok && p.Attr&interp.Writable == 0 {
			return interp.Undefined(), in.TypeErrorf("Cannot assign to read only property 'lastIndex' of object")
		}
		nv, err := installRegexCompile(in, o, args)
		if err != nil {
			return interp.Undefined(), err
		}
		return nv, nil
	})
}

func installRegexCompile(in *interp.Interp, o *interp.Object, args []interp.Value) (interp.Value, error) {
	pattern, flags := "", ""
	patV := arg(args, 0)
	if patV.IsObject() && patV.Obj().Class == "RegExp" {
		pattern = patV.Obj().Regex.Source
		flags = patV.Obj().Regex.Flags
	} else if !patV.IsUndefined() {
		var err error
		pattern, err = in.ToString(patV)
		if err != nil {
			return interp.Undefined(), err
		}
	}
	if fv := arg(args, 1); !fv.IsUndefined() {
		var err error
		flags, err = in.ToString(fv)
		if err != nil {
			return interp.Undefined(), err
		}
	}
	nv, err := in.NewRegExp(pattern, flags)
	if err != nil {
		return interp.Undefined(), err
	}
	no := nv.Obj()
	o.Regex = no.Regex
	o.SetSlot("source", interp.String(pattern), 0)
	o.SetSlot("flags", interp.String(flags), 0)
	if err := in.SetProp(interp.ObjValue(o), "lastIndex", interp.Number(0), true); err != nil {
		return interp.Undefined(), err
	}
	return interp.ObjValue(o), nil
}
