package lexer

import (
	"testing"

	"comfort/internal/js/token"
)

func scan(t *testing.T, src string) []token.Token {
	t.Helper()
	l := New(src)
	var out []token.Token
	for {
		tok := l.Next()
		out = append(out, tok)
		if tok.Type == token.EOF {
			return out
		}
		if len(out) > 10000 {
			t.Fatal("lexer did not terminate")
		}
	}
}

func kinds(toks []token.Token) []token.Type {
	var out []token.Type
	for _, tk := range toks {
		out = append(out, tk.Type)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks := scan(t, `var x = 42 + foo("s");`)
	want := []token.Type{token.VAR, token.IDENT, token.ASSIGN, token.NUMBER,
		token.PLUS, token.IDENT, token.LPAREN, token.STRING, token.RPAREN,
		token.SEMI, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count: got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	for _, src := range []string{"0", "42", "3.14", ".5", "1e9", "1E-4", "0x1f", "0b101", "0o17", "077"} {
		toks := scan(t, src)
		if toks[0].Type != token.NUMBER || toks[0].Literal != src {
			t.Errorf("scan(%q): %v", src, toks[0])
		}
	}
}

func TestStringsAndEscapes(t *testing.T) {
	cases := map[string]string{
		`"abc"`:        "abc",
		`'a"b'`:        `a"b`,
		`"a\nb"`:       "a\nb",
		`"\x41"`:       "A",
		`"A"`:          "A",
		`"\u{1F600}"`:  "\U0001F600",
		`"tab\there"`:  "tab\there",
		`"q\"inner\""`: `q"inner"`,
	}
	for src, want := range cases {
		toks := scan(t, src)
		if toks[0].Type != token.STRING || toks[0].Literal != want {
			t.Errorf("scan(%s) = %q (%s)", src, toks[0].Literal, toks[0].Type)
		}
	}
}

func TestRegexVsDivision(t *testing.T) {
	toks := scan(t, `a / b; /re/g; x = 1 / 2;`)
	sawRegex, sawSlash := false, 0
	for _, tk := range toks {
		if tk.Type == token.REGEX {
			sawRegex = true
			if tk.Literal != "/re/g" {
				t.Errorf("regex literal: %q", tk.Literal)
			}
		}
		if tk.Type == token.SLASH {
			sawSlash++
		}
	}
	if !sawRegex || sawSlash != 2 {
		t.Errorf("regex/division disambiguation failed: regex=%v slash=%d", sawRegex, sawSlash)
	}
}

func TestNewlineTrackingForASI(t *testing.T) {
	toks := scan(t, "a\nb")
	if !toks[1].NewlineBefore {
		t.Error("second identifier must record the preceding newline")
	}
	if toks[0].NewlineBefore {
		t.Error("first token has no preceding newline")
	}
}

func TestComments(t *testing.T) {
	toks := scan(t, "a // line\n/* block\nmore */ b")
	got := kinds(toks)
	if len(got) != 3 || got[0] != token.IDENT || got[1] != token.IDENT {
		t.Errorf("comments not skipped: %v", got)
	}
	if !toks[1].NewlineBefore {
		t.Error("newline inside comments must still count for ASI")
	}
}

func TestPunctuatorMaximalMunch(t *testing.T) {
	toks := scan(t, `a >>>= b >>> c >> d > e => ** *`)
	want := []token.Type{token.IDENT, token.USHRASSIGN, token.IDENT, token.USHR,
		token.IDENT, token.SHR, token.IDENT, token.GT, token.IDENT,
		token.ARROW, token.POW, token.STAR, token.EOF}
	got := kinds(toks)
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("munch mismatch at %d: got %v", i, got)
		}
	}
}

func TestTemplates(t *testing.T) {
	toks := scan(t, "`a${x + `${y}`}b`")
	if toks[0].Type != token.TEMPLATE {
		t.Fatalf("template token: %v", toks[0])
	}
	if toks[1].Type != token.EOF {
		t.Errorf("nested template must be one token, next = %v", toks[1])
	}
}

func TestUnterminatedInputsError(t *testing.T) {
	for _, src := range []string{`"abc`, "`abc", `/abc`, `/*abc`} {
		l := New(src)
		for l.Next().Type != token.EOF {
		}
		if len(l.Errors()) == 0 {
			t.Errorf("scan(%q) should report a lexical error", src)
		}
	}
}

// TestLexerNeverLoops feeds every single byte and pathological pairs.
func TestLexerNeverLoops(t *testing.T) {
	for b := 0; b < 256; b++ {
		src := string(rune(b)) + "a" + string(rune(b))
		l := New(src)
		for i := 0; ; i++ {
			if l.Next().Type == token.EOF {
				break
			}
			if i > 100 {
				t.Fatalf("lexer loop on byte %d", b)
			}
		}
	}
}
