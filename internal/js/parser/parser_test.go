package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"comfort/internal/js/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return prog
}

func TestParseStatements(t *testing.T) {
	valid := []string{
		`var x = 1;`,
		`let y = [1, 2, , 4];`,
		`const z = {a: 1, "b c": 2, 3: true, [k]: v};`,
		`function f(a, b, ...rest) { return a + b; }`,
		`var f = (x, y) => x * y;`,
		`var g = x => { return x; };`,
		`if (a) b(); else { c(); }`,
		`for (var i = 0; i < 10; i++) work(i);`,
		`for (var k in obj) print(k);`,
		`for (var v of list) print(v);`,
		`for (x of list) print(x);`,
		`while (cond) step();`,
		`do { step(); } while (cond);`,
		`switch (x) { case 1: a(); break; default: b(); }`,
		`try { risky(); } catch (e) { handle(e); } finally { done(); }`,
		`throw new Error("boom");`,
		`lbl: for (;;) { break lbl; }`,
		"var t = `a${x + 1}b`;",
		`var re = /ab+[c-f]/gi;`,
		`a.b.c[d](e, ...f);`,
		`new Foo(1)(2);`,
		`x = y = z;`,
		`a += 1, b -= 2;`,
		`var o = {get x() { return 1; }, set x(v) {}};`,
		`var m = {method() { return 1; }};`,
		`delete obj.prop;`,
		`void 0;`,
		`typeof undeclared;`,
		`x ?? y;`,
		`x ||= 5;`,
		`debugger;`,
		"x\n++y;", // ASI keeps these as two statements
	}
	for _, src := range valid {
		if _, err := Parse(src); err != nil {
			t.Errorf("should parse %q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	invalid := []string{
		`var = 5;`,
		`function () {}`,
		`if (x {}`,
		`for (;false;)`,
		`return 1;`,
		`break;`,
		`continue;`,
		`switch (x) { default: a(); default: b(); }`,
		`try { x(); }`,
		`const c;`,
		`throw
5;`,
		`var x = ;`,
		`a b c`,
		`{`,
		`"unterminated`,
		`/unterminated`,
		`var class = 5;`,
	}
	for _, src := range invalid {
		if _, err := Parse(src); err == nil {
			t.Errorf("should reject %q", src)
		}
	}
}

func TestStrictModeEarlyErrors(t *testing.T) {
	strictInvalid := []string{
		`"use strict"; var x = 010;`,
		`"use strict"; function f(a, a) {}`,
		`"use strict"; var x = 1; delete x;`,
		`"use strict"; eval = 5;`,
		`"use strict"; arguments = 5;`,
	}
	for _, src := range strictInvalid {
		if _, err := Parse(src); err == nil {
			t.Errorf("strict mode should reject %q", src)
		}
		// The same programs parse under the matching leniency option.
		opts := Options{AllowLegacyOctal: true, AllowDuplicateParams: true,
			AllowSloppyDelete: true, AllowEvalArgumentsAssign: true}
		if _, err := ParseWith(src, opts); err != nil {
			t.Errorf("lenient options should accept %q: %v", src, err)
		}
	}
}

func TestEmptyForBodyOption(t *testing.T) {
	src := `for(;false;)`
	if _, err := Parse(src); err == nil {
		t.Fatal("bodyless for must be a SyntaxError by default")
	}
	if _, err := ParseWith(src, Options{AllowEmptyForBody: true}); err != nil {
		t.Fatalf("AllowEmptyForBody should accept it: %v", err)
	}
}

// TestPrintRoundTrip is the core printer property: parse → print → parse
// must converge (print of the reparse equals the first print).
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
print(foo(s, 6, undefined));`,
		`var a = [1, [2, 3], {x: {y: -1}}];
for (var i = 0; i < a.length; i++) {
  if (i % 2 === 0) print(a[i]); else continue;
}`,
		`var f = function(a) { return a ? -a : +a; };
print(f(1), f(0), typeof f, 1 + 2 * 3 ** 2, (1 + 2) * 3);`,
		`try { throw {code: 1}; } catch (e) { print(e.code); } finally {}
switch (2) { case 1: case 2: print("two"); break; default: print("other"); }`,
		"var t = `x=${1 + 2} y=${\"s\"}`;\nprint(t, /a[b-d]+/im.source);",
	}
	for _, src := range srcs {
		p1 := mustParse(t, src)
		out1 := ast.Print(p1)
		p2, err := Parse(out1)
		if err != nil {
			t.Fatalf("printed output does not reparse: %v\n%s", err, out1)
		}
		out2 := ast.Print(p2)
		if out1 != out2 {
			t.Errorf("print not a fixpoint:\n-- first --\n%s\n-- second --\n%s", out1, out2)
		}
	}
}

func TestNodeIDsUniqueAndDense(t *testing.T) {
	prog := mustParse(t, `function f(x) { return x ? f(x - 1) : 0; } print(f(3));`)
	seen := map[int]bool{}
	ast.Walk(prog, func(n ast.Node) bool {
		if n.ID() == 0 {
			t.Errorf("node %T has no ID", n)
		}
		if seen[n.ID()] {
			t.Errorf("duplicate node ID %d on %T", n.ID(), n)
		}
		seen[n.ID()] = true
		return true
	})
	if len(seen) > prog.NodeCount {
		t.Errorf("NodeCount %d < walked nodes %d", prog.NodeCount, len(seen))
	}
}

// TestParserNeverPanics drives the parser with random byte soup and random
// mutations of valid programs: it must return (program, nil) or (nil, err),
// never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seeds := []string{
		`var x = 1; function f(a) { return a + x; } print(f(2));`,
		`for (var i = 0; i < 3; i++) { print([1,2][i], "s".substr(i)); }`,
	}
	alphabet := `abcxyz01(){}[];,."'+-*/%=<>!&|?:` + "`\n \\$"
	for i := 0; i < 3000; i++ {
		var src string
		if i%2 == 0 {
			b := []byte(seeds[rng.Intn(len(seeds))])
			for j := 0; j < 4; j++ {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
			src = string(b)
		} else {
			n := rng.Intn(60)
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			src = sb.String()
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

// TestNumericLiteralProperty checks the numeric-literal parser against the
// printer using testing/quick.
func TestNumericLiteralProperty(t *testing.T) {
	f := func(u uint32) bool {
		v := float64(u)
		prog, err := Parse("print(" + ast.Print(&ast.NumberLit{Value: v}) + ");")
		if err != nil {
			return false
		}
		var got float64
		found := false
		ast.Walk(prog, func(n ast.Node) bool {
			if lit, ok := n.(*ast.NumberLit); ok {
				got = lit.Value
				found = true
			}
			return true
		})
		return found && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
