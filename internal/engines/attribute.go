package engines

import (
	"comfort/internal/js/builtins"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// RunWithDefect executes src with exactly one defect installed — the
// ground-truth attribution primitive used by the campaign accounting.
func RunWithDefect(d *Defect, src string, strict bool, opts RunOptions) ExecResult {
	cfg := interp.Config{Fuel: opts.Fuel, Seed: opts.Seed, Strict: strict}
	parseOpts := parser.Options{Strict: strict}
	if d != nil {
		if d.Configure != nil {
			d.Configure(&cfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			cfg.Hook = d.Hook
		}
		if d.PreParse != nil {
			if msg := d.PreParse(src); msg != "" {
				return ExecResult{Outcome: OutcomeParseError, Error: "SyntaxError: " + msg, ErrName: "SyntaxError"}
			}
		}
	}
	in := builtins.NewRuntime(cfg)
	prog, err := parser.ParseWith(src, parseOpts)
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	runErr := in.Run(prog)
	res := ExecResult{Output: in.Out.String(), FuelUsed: in.FuelUsed()}
	classifyRunError(&res, runErr)
	return res
}

// Attribute identifies which seeded defects of the testbed's version are
// responsible for a divergence observed on src: each active defect is
// re-run in isolation against the defect-free reference.
func Attribute(src string, tb Testbed, opts RunOptions) []*Defect {
	ref := RunWithDefect(nil, src, tb.Strict, opts)
	var out []*Defect
	for _, d := range ActiveDefects(tb.Version) {
		r := RunWithDefect(d, src, tb.Strict, opts)
		if r.Key() != ref.Key() {
			out = append(out, d)
		}
	}
	return out
}
