package analyze

import (
	"strings"
	"testing"

	"comfort/internal/js/parser"
)

func mustAnalyze(t *testing.T, src string) *Report {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Analyze(prog)
}

func TestEarlyErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind string // "" = expect no early error
	}{
		// Duplicate lexical declarations.
		{"dup let", `let a; let a;`, "dup-decl"},
		{"dup const", `const a = 1; const a = 2;`, "dup-decl"},
		{"let then var", `let a; var a;`, "dup-decl"},
		{"var then let", `var a; let a;`, "dup-decl"},
		{"let then block var", `let a; { var a; }`, "dup-decl"},
		{"block var then let", `{ var a; } let a;`, "dup-decl"},
		{"let vs function decl", `let f; function f() {}`, "dup-decl"},
		{"param vs body let", `function f(a) { let a; } f(1);`, "dup-decl"},
		{"catch param vs let", `try { } catch (e) { let e; }`, "dup-decl"},
		{"for head dup", `for (let i = 0, i = 1;;) break;`, "dup-decl"},
		{"switch shared scope", `switch (1) { case 1: let a; case 2: let a; }`, "dup-decl"},
		{"dup var ok", `var a; var a;`, ""},
		{"param vs body var ok", `function f(a) { var a; } f(1);`, ""},
		{"catch param vs var ok", `try { } catch (e) { var e; }`, ""},
		{"block shadow ok", `let a; { let a; }`, ""},
		{"fn var vs block let ok", `function f() { var a; { let a; } } f();`, ""},
		{"sibling blocks ok", `{ let a; } { let a; }`, ""},
		{"inner fn own scope ok", `let a; function f() { var a; } f();`, ""},

		// Labels.
		{"undefined break label", `lbl: { break lbl2; }`, "undefined-label"},
		{"undefined continue label", `for (var i = 0; i < 1; i++) { continue nope; }`, "undefined-label"},
		{"continue to non-loop", `lbl: { continue lbl; }`, "continue-not-loop"},
		{"dup nested label", `l: l: print(1);`, "dup-label"},
		{"label ok", `lbl: { break lbl; }`, ""},
		{"continue loop label ok", `lbl: for (var i = 0; i < 2; i++) { continue lbl; }`, ""},
		{"label chain continue ok", `a: b: while (false) { continue a; }`, ""},
		{"label out of scope", `l: print(1); for (;;) { break l; }`, "undefined-label"},
		{"label not across fn", `l: { (function () { break l; })(); }`, "undefined-label"},

		// Const writes.
		{"const assign", `const c = 1; c = 2;`, "const-assign"},
		{"const compound", `const c = 1; c += 1;`, "const-assign"},
		{"const update", `const c = 1; c++;`, "const-assign"},
		{"const in function", `function f() { const c = 1; c = 2; } f();`, "const-assign"},
		{"const for-in target", `const c = 1; for (c in {a: 1}) print(c);`, "const-assign"},
		{"outer const inner fn", `const c = 1; function f() { c = 2; } f();`, "const-assign"},
		{"shadowed const ok", `const c = 1; function f() { var c; c = 2; } f();`, ""},
		{"hoisted var shadow ok", `const c = 1; function f() { c = 2; var c; } f();`, ""},
		{"param shadow ok", `const c = 1; function f(c) { c = 2; } f(0);`, ""},
		{"write before const ok", `c = 2; const c = 1;`, ""},
		{"global write ok", `c = 2; print(c);`, ""},
		{"const read ok", `const c = 1; print(c + 1);`, ""},
		{"member write ok", `const c = {}; c.x = 1;`, ""},
		{"eval relaxes globals", `eval("1"); const c = 1; c = 2;`, ""},
		{"eval keeps locals", `eval("1"); function f() { const c = 1; c = 2; } f();`, "const-assign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustAnalyze(t, tc.src)
			first := rep.FirstError()
			if tc.kind == "" {
				if first != nil {
					t.Fatalf("unexpected early error %v for %q", *first, tc.src)
				}
				return
			}
			if first == nil {
				t.Fatalf("expected %s early error for %q, got none", tc.kind, tc.src)
			}
			if first.Kind != tc.kind {
				t.Fatalf("expected %s, got %s (%s) for %q", tc.kind, first.Kind, first.Msg, tc.src)
			}
			if !strings.HasPrefix(first.Render(), "SyntaxError: ") {
				t.Fatalf("early error must render as a SyntaxError: %q", first.Render())
			}
		})
	}
}

// Rules the parser owns (and defect parser options can relax) must stay
// out of the analyzer, or enforcing them here would mask seeded parser
// defects like AllowDuplicateParams testbeds.
func TestParserOwnedRulesNotDuplicated(t *testing.T) {
	prog, err := parser.ParseWith(`function f(a, a) { print(a); } f(1, 2);`, parser.Options{})
	if err != nil {
		t.Fatalf("sloppy duplicate params must parse: %v", err)
	}
	if rep := Analyze(prog); rep.Invalid() {
		t.Fatalf("duplicate params are the parser's rule, analyzer reported %v", rep.EarlyErrors)
	}
}

func TestEarlyErrorOrderDeterministic(t *testing.T) {
	src := `let a; let a; const c = 1; c = 2;`
	rep := mustAnalyze(t, src)
	if len(rep.EarlyErrors) != 2 {
		t.Fatalf("expected 2 early errors, got %v", rep.EarlyErrors)
	}
	if rep.EarlyErrors[0].Kind != "dup-decl" || rep.EarlyErrors[1].Kind != "const-assign" {
		t.Fatalf("source order violated: %v", rep.EarlyErrors)
	}
}

func TestDivergenceFlags(t *testing.T) {
	cases := []struct {
		src  string
		want string // flag name, "" = none
	}{
		{`print(Math.random());`, "math-random"},
		{`print(Date.now());`, "date"},
		{`var d = new Date(); print(1);`, "date"},
		{`var d = new Date(0); print(1);`, ""},
		{`for (var k in {a: 1}) print(k);`, "for-in-order"},
		{`for (var v of [1, 2]) print(v);`, ""},
		{`function f(n) { return n <= 0 ? 0 : f(n - 1); } print(f(3));`, "recursion"},
		{`print(0.30000000000000004);`, "float-format"},
		{`print(0.5);`, ""},
		{`print(Math.floor(1.5));`, ""},
	}
	for _, tc := range cases {
		rep := mustAnalyze(t, tc.src)
		names := strings.Join(rep.Flags.Names(), ",")
		if tc.want == "" {
			if rep.Flags.Any() {
				t.Errorf("%q: unexpected flags %s", tc.src, names)
			}
			continue
		}
		if !strings.Contains(names, tc.want) {
			t.Errorf("%q: expected flag %s, got [%s]", tc.src, tc.want, names)
		}
	}
}

func TestFeatureFingerprint(t *testing.T) {
	rep := mustAnalyze(t, `
let a = [1, "two", true, null];
const o = {get x() { return 1; }};
function f(n) { return n; }
for (var i = 0; i < 2; i++) { if (i in o) continue; }
try { throw new Error("e"); } catch (e) { print(typeof e); }
print(f(a[0]) + o.x);`)
	for _, want := range []Features{
		FeatLet, FeatConst, FeatVar, FeatFunction, FeatReturn, FeatFor,
		FeatIf, FeatContinue, FeatTry, FeatCatch, FeatThrow, FeatNew,
		FeatTypeof, FeatIn, FeatAccessor, FeatMember, FeatCall, FeatObject,
		FeatArray, FeatString, FeatNumber, FeatBool, FeatNull, FeatUpdate,
	} {
		if !rep.Features.Has(want) {
			t.Errorf("missing feature %s in %v", Features(want).Names(), rep.Features.Names())
		}
	}
	for _, absent := range []Features{FeatArrow, FeatSwitch, FeatForIn, FeatStrict, FeatEval} {
		if rep.Features.Has(absent) {
			t.Errorf("unexpected feature %s", Features(absent).Names())
		}
	}
	if rep.Features.Count() != len(rep.Features.Names()) {
		t.Errorf("Count/Names disagree: %d vs %d", rep.Features.Count(), len(rep.Features.Names()))
	}
	if got := len(featureNames); got != FeatureCount {
		t.Fatalf("feature name table out of sync: %d names, %d bits", got, FeatureCount)
	}
	for i, n := range featureNames {
		if n == "" {
			t.Fatalf("feature bit %d has no name", i)
		}
	}
}

func TestShadowingFeature(t *testing.T) {
	if rep := mustAnalyze(t, `let a = 1; { let a = 2; print(a); }`); !rep.Features.Has(FeatShadowing) {
		t.Error("block shadowing not fingerprinted")
	}
	if rep := mustAnalyze(t, `let a = 1; print(a);`); rep.Features.Has(FeatShadowing) {
		t.Error("spurious shadowing bit")
	}
}

func TestPrintSites(t *testing.T) {
	rep := mustAnalyze(t, `print(1); var f = print; for (var i = 0; i < 2; i++) print(i);`)
	if len(rep.PrintSites) != 2 {
		t.Fatalf("expected 2 print call sites, got %v", rep.PrintSites)
	}
	if rep.PrintSites[0] == rep.PrintSites[1] {
		t.Fatal("print sites must carry distinct node IDs")
	}
}

func TestScopeAwareUnused(t *testing.T) {
	// The flat-map pass was confused by same-name bindings in sibling
	// functions: y used in g must not mark f's y as used.
	rep := mustAnalyze(t, `
function f() { var y = 1; }
function g() { var y = 2; print(y); }
f(); g();`)
	unused := 0
	for _, w := range rep.Warnings {
		if strings.Contains(w, "unused variable \"y\"") {
			unused++
		}
	}
	if unused != 1 {
		t.Fatalf("expected exactly one unused y, warnings: %v", rep.Warnings)
	}

	// A shadowed outer binding is unused when only the shadow is read.
	rep = mustAnalyze(t, `var a = 1; function f() { var a = 2; print(a); } f();`)
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "unused variable \"a\"") {
			found = true
		}
	}
	if !found {
		t.Fatalf("outer shadowed a is unused, warnings: %v", rep.Warnings)
	}

	// Hoisting: use-before-declaration still counts as a use.
	rep = mustAnalyze(t, `function f() { x = 1; print(x); var x; } f();`)
	for _, w := range rep.Warnings {
		if strings.Contains(w, "unused variable \"x\"") {
			t.Fatalf("hoisted var x is used, warnings: %v", rep.Warnings)
		}
	}
}

func TestAttachOnce(t *testing.T) {
	prog, err := parser.Parse(`let a; let a;`)
	if err != nil {
		t.Fatal(err)
	}
	if Of(prog) != nil {
		t.Fatal("fresh parse must carry no report")
	}
	rep := Program(prog)
	if rep == nil || !rep.Invalid() {
		t.Fatal("attach must compute the report")
	}
	if Of(prog) != rep || Program(prog) != rep {
		t.Fatal("attach must be idempotent and Of must return the cached report")
	}
}

func TestWarningOrderDeterministic(t *testing.T) {
	src := `var u1 = 1; var u2 = 2; if (x = 5) { print(1); } var x;`
	first := mustAnalyze(t, src).Warnings
	for i := 0; i < 10; i++ {
		again := mustAnalyze(t, src).Warnings
		if strings.Join(again, "\n") != strings.Join(first, "\n") {
			t.Fatalf("warning order unstable:\n%v\nvs\n%v", first, again)
		}
	}
}
