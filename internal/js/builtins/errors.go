package builtins

import "comfort/internal/js/interp"

// errorKinds lists the standard native error constructors.
var errorKinds = []string{
	"Error", "TypeError", "RangeError", "SyntaxError", "ReferenceError",
	"EvalError", "URIError", "InternalError",
}

func installErrors(r *registry) {
	in := r.in
	base := interp.NewObject(in.Protos["Object"])
	base.Class = "Error"
	base.SetSlot("name", interp.String("Error"), interp.Writable|interp.Configurable)
	base.SetSlot("message", interp.String(""), interp.Writable|interp.Configurable)

	r.method(base, "Error.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if !this.IsObject() {
			return interp.Undefined(), in.TypeErrorf("Error.prototype.toString called on non-object")
		}
		nameV, err := in.GetPropKey(this, "name")
		if err != nil {
			return interp.Undefined(), err
		}
		name := "Error"
		if !nameV.IsUndefined() {
			name, err = in.ToString(nameV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		msgV, err := in.GetPropKey(this, "message")
		if err != nil {
			return interp.Undefined(), err
		}
		msg := ""
		if !msgV.IsUndefined() {
			msg, err = in.ToString(msgV)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		switch {
		case msg == "":
			return interp.String(name), nil
		case name == "":
			return interp.String(msg), nil
		default:
			return interp.String(name + ": " + msg), nil
		}
	})

	makeCtor := func(kind string, proto *interp.Object) {
		body := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			o := interp.NewObject(proto)
			o.Class = "Error"
			if msg := arg(args, 0); !msg.IsUndefined() {
				s, err := in.ToString(msg)
				if err != nil {
					return interp.Undefined(), err
				}
				o.SetSlot("message", interp.String(s), interp.Writable|interp.Configurable)
			}
			return interp.ObjValue(o), nil
		}
		r.ctor(kind, 1, proto, body, body)
	}

	makeCtor("Error", base)
	for _, kind := range errorKinds[1:] {
		proto := interp.NewObject(base)
		proto.Class = "Error"
		proto.SetSlot("name", interp.String(kind), interp.Writable|interp.Configurable)
		proto.SetSlot("message", interp.String(""), interp.Writable|interp.Configurable)
		makeCtor(kind, proto)
	}
}
