// Package jsnum implements ECMAScript Number conversions: the
// Number-to-String algorithm (7.1.12.1), String-to-Number parsing, and the
// integer conversions ToInteger / ToInt32 / ToUint32 that the abstract
// operations in ECMA-262 are built on.
package jsnum

import (
	"math"
	"strconv"
	"strings"
)

// smallInts interns the renderings of small non-negative integers — the
// overwhelmingly common Format inputs (array indices, loop counters,
// arguments-object keys) — so hot property-key conversion allocates
// nothing.
var smallInts = func() [4096]string {
	var t [4096]string
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return t
}()

// Format renders f using the ECMAScript ToString(Number) algorithm.
func Format(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case f == 0:
		return "0" // negative zero prints as "0"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	}
	if i := int(f); float64(i) == f && i > 0 && i < len(smallInts) {
		return smallInts[i]
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e21 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	// Shortest round-trip representation, then adjust exponent spelling to
	// the ECMAScript form (e.g. 1e+21, 1.5e-7).
	abs := math.Abs(f)
	if abs >= 1e21 || (abs < 1e-6 && abs > 0) {
		s := strconv.FormatFloat(f, 'e', -1, 64)
		// Go prints e.g. 1e+21 as "1e+21"; ECMAScript uses the same form
		// but without a two-digit exponent requirement.
		mant, exp, _ := strings.Cut(s, "e")
		exp = strings.TrimPrefix(exp, "+")
		neg := strings.HasPrefix(exp, "-")
		exp = strings.TrimPrefix(exp, "-")
		exp = strings.TrimLeft(exp, "0")
		if exp == "" {
			exp = "0"
		}
		sign := "+"
		if neg {
			sign = "-"
		}
		return mant + "e" + sign + exp
	}
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// Parse implements the ToNumber(String) conversion: leading/trailing
// whitespace is ignored, the empty string is 0, hex/octal/binary prefixes
// are honoured, and anything else yields NaN.
func Parse(s string) float64 {
	t := strings.TrimFunc(s, isJSSpace)
	if t == "" {
		return 0
	}
	if v, ok := parseRadixPrefixed(t); ok {
		return v
	}
	switch t {
	case "Infinity", "+Infinity":
		return math.Inf(1)
	case "-Infinity":
		return math.Inf(-1)
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return math.NaN()
	}
	// strconv accepts forms JS does not ("inf", "nan", "0x1p2", underscores).
	low := strings.ToLower(t)
	if strings.ContainsAny(low, "xpn_") || strings.Contains(low, "inf") {
		return math.NaN()
	}
	return v
}

func parseRadixPrefixed(t string) (float64, bool) {
	neg := false
	body := t
	if strings.HasPrefix(body, "+") {
		body = body[1:]
	} else if strings.HasPrefix(body, "-") {
		neg = true
		body = body[1:]
	}
	if len(body) < 3 || body[0] != '0' {
		return 0, false
	}
	var base int
	switch body[1] {
	case 'x', 'X':
		base = 16
	case 'o', 'O':
		base = 8
	case 'b', 'B':
		base = 2
	default:
		return 0, false
	}
	// ECMAScript does not allow a sign before a radix-prefixed numeral.
	if neg || t[0] == '+' {
		return math.NaN(), true
	}
	v, err := strconv.ParseUint(body[2:], base, 64)
	if err != nil {
		return math.NaN(), true
	}
	return float64(v), true
}

func isJSSpace(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '\v', '\f', 0x00a0, 0x2028, 0x2029, 0xfeff:
		return true
	}
	return false
}

// ToInteger implements ECMA-262 ToInteger: NaN → 0, truncation toward zero,
// infinities preserved.
func ToInteger(f float64) float64 {
	if math.IsNaN(f) {
		return 0
	}
	if f == 0 || math.IsInf(f, 0) {
		return f
	}
	return math.Trunc(f)
}

// ToInt32 implements ECMA-262 ToInt32 (used by bitwise operators).
func ToInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) || f == 0 {
		return 0
	}
	u := uint32(uint64(int64(math.Trunc(math.Mod(f, 4294967296)))))
	return int32(u)
}

// ToUint32 implements ECMA-262 ToUint32 (used by >>> and array lengths).
func ToUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) || f == 0 {
		return 0
	}
	return uint32(uint64(int64(math.Trunc(math.Mod(f, 4294967296)))))
}

// ToLength clamps a number to a valid array length per ECMA-262 ToLength.
func ToLength(f float64) float64 {
	n := ToInteger(f)
	if n <= 0 {
		return 0
	}
	const maxSafe = 9007199254740991 // 2^53-1
	if n > maxSafe {
		return maxSafe
	}
	return n
}

// SafeInt converts a float to int with explicit saturation: NaN becomes 0,
// and out-of-range magnitudes clamp, so the result is always safe to use in
// Go arithmetic (float→int conversion of NaN/±Inf is otherwise
// implementation-defined).
func SafeInt(f float64) int {
	if math.IsNaN(f) {
		return 0
	}
	const lim = 1 << 52
	if f > lim {
		return lim
	}
	if f < -lim {
		return -lim
	}
	return int(f)
}

// FormatRadix renders a finite number in the given radix (2..36) the way
// Number.prototype.toString(radix) does. Fractional digits are emitted to a
// fixed precision sufficient for round-tripping typical values.
func FormatRadix(f float64, radix int) string {
	if radix == 10 {
		return Format(f)
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	neg := f < 0
	if neg {
		f = -f
	}
	ip := math.Trunc(f)
	fp := f - ip
	digits := "0123456789abcdefghijklmnopqrstuvwxyz"
	var intPart string
	if ip == 0 {
		intPart = "0"
	} else {
		var b []byte
		for ip >= 1 {
			d := int(math.Mod(ip, float64(radix)))
			b = append(b, digits[d])
			ip = math.Trunc(ip / float64(radix))
		}
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
		intPart = string(b)
	}
	if fp == 0 {
		if neg {
			return "-" + intPart
		}
		return intPart
	}
	var frac []byte
	for i := 0; i < 20 && fp > 0; i++ {
		fp *= float64(radix)
		d := int(math.Trunc(fp))
		frac = append(frac, digits[d])
		fp -= float64(d)
	}
	out := intPart + "." + string(frac)
	if neg {
		out = "-" + out
	}
	return out
}
