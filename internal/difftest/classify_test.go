package difftest

import (
	"testing"

	"comfort/internal/engines"
)

// entry builds a synthetic ExecEntry: Classify is pure, so these tests run
// no testbed at all.
func entry(engine, version string, strict bool, r engines.ExecResult) ExecEntry {
	return ExecEntry{
		Testbed: engines.Testbed{
			Version: engines.Version{Engine: engine, Name: version, Build: version},
			Strict:  strict,
		},
		Result: r,
	}
}

func pass(out string) engines.ExecResult {
	return engines.ExecResult{Outcome: engines.OutcomePass, Output: out, FuelUsed: 100}
}

func TestClassifyTable(t *testing.T) {
	parseErr := engines.ExecResult{Outcome: engines.OutcomeParseError, ErrName: "SyntaxError"}
	crash := engines.ExecResult{Outcome: engines.OutcomeCrash, ErrName: "crash", FuelUsed: 50}
	timeout := engines.ExecResult{Outcome: engines.OutcomeTimeout, ErrName: "timeout", FuelUsed: 1000}

	cases := []struct {
		name         string
		entries      []ExecEntry
		want         Verdict
		wantDeviants []string // engine names, in deviation order
	}{
		{
			name: "unanimous pass",
			entries: []ExecEntry{
				entry("A", "1", false, pass("1")),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("1")),
			},
			want: VerdictPass,
		},
		{
			name: "all reject is invalid",
			entries: []ExecEntry{
				entry("A", "1", false, parseErr),
				entry("B", "1", false, parseErr),
			},
			want: VerdictInvalid,
		},
		{
			name: "parse minority is deviant",
			entries: []ExecEntry{
				entry("A", "1", false, parseErr),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("1")),
			},
			want:         VerdictParseInconsistent,
			wantDeviants: []string{"A"},
		},
		{
			name: "crash outranks output differences",
			entries: []ExecEntry{
				entry("A", "1", false, crash),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("2")),
			},
			want:         VerdictCrash,
			wantDeviants: []string{"A"},
		},
		{
			name: "2x fuel rule flags the slow engine",
			entries: []ExecEntry{
				entry("A", "1", false, timeout),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("1")),
			},
			want:         VerdictTimeout,
			wantDeviants: []string{"A"},
		},
		{
			name: "timeout within 2x of finishers is not deviant",
			entries: []ExecEntry{
				entry("A", "1", false, engines.ExecResult{
					Outcome: engines.OutcomeTimeout, ErrName: "timeout", FuelUsed: 150,
				}),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("1")),
			},
			want:         VerdictWrongOutput, // falls through to majority voting
			wantDeviants: []string{"A"},
		},
		{
			name: "all timeout is ignored",
			entries: []ExecEntry{
				entry("A", "1", false, timeout),
				entry("B", "1", false, timeout),
			},
			want: VerdictAllTimeout,
		},
		{
			name: "majority vote isolates the odd output",
			entries: []ExecEntry{
				entry("A", "1", false, pass("1")),
				entry("B", "1", false, pass("1")),
				entry("C", "1", false, pass("2")),
			},
			want:         VerdictWrongOutput,
			wantDeviants: []string{"C"},
		},
		{
			name: "perfect split is inconclusive",
			entries: []ExecEntry{
				entry("A", "1", false, pass("1")),
				entry("B", "1", false, pass("2")),
			},
			want: VerdictInconclusive,
		},
		{
			name: "strict and normal pools vote separately",
			entries: []ExecEntry{
				entry("A", "1", false, pass("sloppy")),
				entry("B", "1", false, pass("sloppy")),
				entry("A", "1", true, pass("strict")),
				entry("B", "1", true, pass("strict")),
			},
			want: VerdictPass,
		},
		{
			name: "strict-pool deviant surfaces through the merge",
			entries: []ExecEntry{
				entry("A", "1", false, pass("1")),
				entry("B", "1", false, pass("1")),
				entry("A", "1", true, pass("1")),
				entry("B", "1", true, pass("1")),
				entry("C", "1", true, pass("2")),
			},
			want:         VerdictWrongOutput,
			wantDeviants: []string{"C"},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cr := Classify(tc.entries)
			if cr.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s", cr.Verdict, tc.want)
			}
			if len(cr.Deviations) != len(tc.wantDeviants) {
				t.Fatalf("deviations = %d, want %d (%+v)",
					len(cr.Deviations), len(tc.wantDeviants), cr.Deviations)
			}
			for i, want := range tc.wantDeviants {
				if got := cr.Deviations[i].Testbed.Version.Engine; got != want {
					t.Errorf("deviant[%d] = %s, want %s", i, got, want)
				}
			}
			if len(cr.Results) != len(tc.entries) {
				t.Errorf("results map has %d entries, want %d", len(cr.Results), len(tc.entries))
			}
		})
	}
}

// TestClassifyMatchesRun pins the split API to the composed one: Run must
// equal Classify∘Execute by construction.
func TestClassifyMatchesRun(t *testing.T) {
	tbs := engines.Testbeds()[:20]
	srcs := []string{
		`print(1 + 1);`,
		`print("Name: Albert".substr(6, undefined));`,
		`var = broken(`,
	}
	for _, src := range srcs {
		direct := Run(src, tbs, Options{Seed: 7})
		composed := Classify(Execute(src, tbs, Options{Seed: 7}))
		if direct.Verdict != composed.Verdict {
			t.Errorf("src %q: Run=%s, Classify(Execute)=%s", src, direct.Verdict, composed.Verdict)
		}
		if len(direct.Deviations) != len(composed.Deviations) {
			t.Errorf("src %q: deviation counts differ: %d vs %d",
				src, len(direct.Deviations), len(composed.Deviations))
		}
	}
}
