package difftest

import (
	"testing"

	"comfort/internal/engines"
)

func testbedsFor(t *testing.T, specs ...[2]string) []engines.Testbed {
	t.Helper()
	var out []engines.Testbed
	for _, s := range specs {
		v, ok := engines.FindVersion(s[0], s[1])
		if !ok {
			t.Fatalf("unknown version %v", s)
		}
		out = append(out, engines.Testbed{Version: v})
	}
	return out
}

func TestPassVerdict(t *testing.T) {
	tbs := engines.LatestTestbeds()
	cr := Run(`print(1 + 1);`, tbs, Options{})
	if cr.Verdict != VerdictPass {
		t.Errorf("verdict: %s", cr.Verdict)
	}
}

func TestInvalidVerdict(t *testing.T) {
	tbs := engines.LatestTestbeds()
	cr := Run(`var = broken(`, tbs, Options{})
	if cr.Verdict != VerdictInvalid {
		t.Errorf("verdict: %s", cr.Verdict)
	}
}

func TestConsistentExceptionIsPass(t *testing.T) {
	tbs := engines.LatestTestbeds()
	cr := Run(`null.x;`, tbs, Options{})
	if cr.Verdict != VerdictPass {
		t.Errorf("a uniformly thrown TypeError is a pass, got %s", cr.Verdict)
	}
}

func TestWrongOutputIsolatesDeviant(t *testing.T) {
	// The Figure-2 substr witness on Rhino v1.7.12 vs clean engines.
	tbs := testbedsFor(t,
		[2]string{"Rhino", "v1.7.12"},
		[2]string{"V8", "d891c59"},
		[2]string{"SpiderMonkey", "v78.0"},
		[2]string{"QuickJS", "1722758"},
	)
	src := `print("Name: Albert".substr(6, undefined));`
	cr := Run(src, tbs, Options{})
	if cr.Verdict != VerdictWrongOutput {
		t.Fatalf("verdict: %s", cr.Verdict)
	}
	if len(cr.Deviations) != 1 || cr.Deviations[0].Testbed.Version.Engine != "Rhino" {
		t.Errorf("deviant should be Rhino alone: %+v", cr.Deviations)
	}
}

func TestCrashVerdict(t *testing.T) {
	// The Listing-9 QuickJS crash.
	tbs := testbedsFor(t,
		[2]string{"QuickJS", "9ccefbf"},
		[2]string{"V8", "d891c59"},
		[2]string{"SpiderMonkey", "v78.0"},
	)
	src := `"".normalize(true);`
	cr := Run(src, tbs, Options{})
	if cr.Verdict != VerdictCrash {
		t.Fatalf("verdict: %s", cr.Verdict)
	}
	if len(cr.Deviations) != 1 || cr.Deviations[0].Testbed.Version.Engine != "QuickJS" {
		t.Errorf("crash deviant: %+v", cr.Deviations)
	}
}

func TestTimeoutTwoXRule(t *testing.T) {
	// The Hermes reverse-fill slowdown against fast engines.
	tbs := testbedsFor(t,
		[2]string{"Hermes", "3ed8340"},
		[2]string{"V8", "d891c59"},
		[2]string{"SpiderMonkey", "v78.0"},
	)
	src := `var foo = function(size) {
  var array = new Array(size);
  while (size--) { array[size] = 0; }
};
foo(30000);
print("done");`
	// The budget must exceed 2× what the conforming engines consume for
	// the 2× rule to separate the slow engine from ordinary variance.
	cr := Run(src, tbs, Options{Fuel: 2000000})
	if cr.Verdict != VerdictTimeout {
		t.Fatalf("verdict: %s", cr.Verdict)
	}
	if len(cr.Deviations) != 1 || cr.Deviations[0].Testbed.Version.Engine != "Hermes" {
		t.Errorf("timeout deviant: %+v", cr.Deviations)
	}
}

func TestAllTimeoutIgnored(t *testing.T) {
	tbs := engines.LatestTestbeds()[:3]
	cr := Run(`while (true) {}`, tbs, Options{Fuel: 20000})
	if cr.Verdict != VerdictAllTimeout {
		t.Errorf("infinite loops must be ignored, got %s", cr.Verdict)
	}
}

func TestParseInconsistency(t *testing.T) {
	// ChakraCore's parser rejects binary literals (ch-007).
	tbs := testbedsFor(t,
		[2]string{"ChakraCore", "v1.11.19"},
		[2]string{"V8", "d891c59"},
		[2]string{"QuickJS", "1722758"},
	)
	cr := Run(`print(0b101);`, tbs, Options{})
	if cr.Verdict != VerdictParseInconsistent {
		t.Fatalf("verdict: %s", cr.Verdict)
	}
	if len(cr.Deviations) != 1 || cr.Deviations[0].Testbed.Version.Engine != "ChakraCore" {
		t.Errorf("parse deviant: %+v", cr.Deviations)
	}
}

func TestStrictAndNormalPoolsVoteSeparately(t *testing.T) {
	// Sloppy/strict behaviour differences are NOT bugs: a program that
	// legitimately behaves differently in strict mode must not produce
	// deviants when both modes are present.
	var tbs []engines.Testbed
	for _, e := range engines.All() {
		tbs = append(tbs, engines.Testbed{Version: e.Latest()},
			engines.Testbed{Version: e.Latest(), Strict: true})
	}
	// The this-binding of a plain function call differs legitimately
	// between modes and touches no seeded-defect site.
	src := `function f() { return this === undefined; }
print(f());`
	cr := Run(src, tbs, Options{})
	if cr.Verdict.IsBuggy() {
		t.Errorf("legitimate strict/sloppy difference flagged as bug: %s (%d deviations)",
			cr.Verdict, len(cr.Deviations))
	}
}
