// Command benchgate is the campaign-throughput regression gate: it runs
// the BenchmarkCampaignThroughput campaign shape (via the same
// campaign.ThroughputProbe the benchmark measures) and compares the
// observed execs/sec against the newest entry of BENCH_campaign.json —
// the machine-readable perf trajectory each perf PR appends to. It also
// gates the multi-campaign server shape (server.LoadProbe, the
// BenchmarkServerLoad workload) against BENCH_server.json. CI fails when
// either throughput falls more than the threshold below its recorded
// value.
//
// Usage:
//
//	benchgate                      # gate both shapes at 15%
//	benchgate -threshold 0.35      # slack for noisy shared runners
//	benchgate -reps 3              # best-of-3 damps scheduler noise
//	benchgate -server-json ""      # skip the server gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"comfort/internal/campaign"
	"comfort/internal/server"
)

// benchHistory mirrors BENCH_campaign.json (schema-checked by
// TestBenchCampaignJSON).
type benchHistory struct {
	Benchmark string `json:"benchmark"`
	Metric    string `json:"metric"`
	Shape     string `json:"shape"`
	History   []struct {
		PR          int     `json:"pr"`
		ExecsPerSec float64 `json:"execs_per_sec"`
		Note        string  `json:"note"`
	} `json:"history"`
}

func main() {
	var (
		jsonPath   = flag.String("bench-json", "BENCH_campaign.json", "perf-trajectory file to gate against")
		serverJSON = flag.String("server-json", "BENCH_server.json", "server-load trajectory file; empty = skip the server gate")
		threshold  = flag.Float64("threshold", 0.15, "maximum allowed fractional regression vs the newest entry")
		reps       = flag.Int("reps", 3, "probe repetitions; the best rate is compared (damps scheduler noise)")
		cases      = flag.Int("cases", 120, "campaign case budget (the recorded shape)")
		workers    = flag.Int("workers", 8, "scheduler workers (the recorded shape)")
		seed       = flag.Int64("seed", 2021, "campaign seed (the recorded shape)")
		loadJobs   = flag.Int("server-jobs", 3, "concurrent campaigns in the server-load shape")
	)
	flag.Parse()

	ok := gate(*jsonPath, "campaign", *threshold, *reps, func() (int, error) {
		return campaign.ThroughputProbe(*cases, *workers, *seed), nil
	})
	if *serverJSON != "" {
		ok = gate(*serverJSON, "server-load", *threshold, *reps, func() (int, error) {
			dir, err := os.MkdirTemp("", "benchgate-server-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			return server.LoadProbe(dir, *loadJobs, *cases, *workers, *seed)
		}) && ok
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// gate runs one probe shape best-of-reps and compares it against the
// newest entry of its trajectory file; false means regression.
func gate(jsonPath, label string, threshold float64, reps int, probe func() (int, error)) bool {
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var h benchHistory
	if err := json.Unmarshal(raw, &h); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", jsonPath, err)
		os.Exit(2)
	}
	if len(h.History) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %s has no history entries\n", jsonPath)
		os.Exit(2)
	}
	last := h.History[len(h.History)-1]

	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		executed, err := probe()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s probe: %v\n", label, err)
			os.Exit(2)
		}
		rate := float64(executed) / time.Since(start).Seconds()
		fmt.Printf("%s probe %d/%d: %d executions, %.1f execs/sec\n", label, i+1, reps, executed, rate)
		if rate > best {
			best = rate
		}
	}

	floor := last.ExecsPerSec * (1 - threshold)
	fmt.Printf("benchgate: %s best %.1f execs/sec vs recorded PR %d at %.1f (floor %.1f, threshold %.0f%%)\n",
		label, best, last.PR, last.ExecsPerSec, floor, threshold*100)
	if best < floor {
		fmt.Fprintf(os.Stderr, "benchgate: %s REGRESSION — %.1f execs/sec is %.1f%% below the recorded %.1f\n",
			label, best, 100*(1-best/last.ExecsPerSec), last.ExecsPerSec)
		return false
	}
	return true
}
