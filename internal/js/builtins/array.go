package builtins

import (
	"math"
	"sort"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
)

func installArray(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])

	ctorBody := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 1 && args[0].Kind() == interp.KindNumber {
			n := args[0].Num()
			u := jsnum.ToUint32(n)
			if float64(u) != n {
				return interp.Undefined(), in.RangeErrorf("Invalid array length")
			}
			arr := in.NewArray(nil)
			if err := in.Burn(int64(u) / 16); err != nil {
				return interp.Undefined(), err
			}
			arr.SetArrayElems(make([]interp.Value, u))
			return interp.ObjValue(arr), nil
		}
		return interp.ObjValue(in.NewArray(append([]interp.Value(nil), args...))), nil
	}
	ctor := r.ctor("Array", 1, proto, ctorBody, ctorBody)

	r.method(ctor, "Array.isArray", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		return interp.Bool(v.IsObject() && v.Obj().IsArray()), nil
	})

	r.method(ctor, "Array.of", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.ObjValue(in.NewArray(append([]interp.Value(nil), args...))), nil
	})

	r.method(ctor, "Array.from", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		src := arg(args, 0)
		mapFn := arg(args, 1)
		var items []interp.Value
		switch {
		case src.Kind() == interp.KindString:
			for _, c := range src.Str() {
				items = append(items, interp.String(string(c)))
			}
		case src.IsObject() && src.Obj().IsArray():
			items = append(items, src.Obj().ArrayElems()...)
		case src.IsObject():
			lenV, err := in.GetPropKey(src, "length")
			if err != nil {
				return interp.Undefined(), err
			}
			n, err := in.ToInteger(lenV)
			if err != nil {
				return interp.Undefined(), err
			}
			for i := 0; i < int(n); i++ {
				v, err := in.GetPropKey(src, interp.FormatNumber(float64(i)))
				if err != nil {
					return interp.Undefined(), err
				}
				items = append(items, v)
			}
		case src.IsNullish():
			return interp.Undefined(), in.TypeErrorf("Array.from requires an array-like object")
		}
		if mapFn.IsObject() && mapFn.Obj().IsCallable() {
			for i, item := range items {
				v, err := in.Call(mapFn.Obj(), interp.Undefined(),
					[]interp.Value{item, interp.Number(float64(i))})
				if err != nil {
					return interp.Undefined(), err
				}
				items[i] = v
			}
		}
		return interp.ObjValue(in.NewArray(items)), nil
	})

	// thisArray coerces the receiver to an Array object or errors.
	thisArray := func(in *interp.Interp, this interp.Value, method string) (*interp.Object, error) {
		if this.IsObject() && this.Obj().IsArray() {
			return this.Obj(), nil
		}
		return nil, in.TypeErrorf("%s called on non-array receiver", method)
	}

	r.method(proto, "Array.prototype.push", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.push")
		if err != nil {
			return interp.Undefined(), err
		}
		for _, a := range args {
			o.AppendElem(a)
		}
		return interp.Number(float64(o.ArrayLength())), nil
	})

	r.method(proto, "Array.prototype.pop", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.pop")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		if len(elems) == 0 {
			o.SetArrayLength(0)
			return interp.Undefined(), nil
		}
		last := elems[len(elems)-1]
		o.SetArrayElems(elems[:len(elems)-1])
		return last, nil
	})

	r.method(proto, "Array.prototype.shift", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.shift")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		if len(elems) == 0 {
			o.SetArrayLength(0)
			return interp.Undefined(), nil
		}
		first := elems[0]
		if err := in.Burn(int64(len(elems)) / 8); err != nil {
			return interp.Undefined(), err
		}
		o.SetArrayElems(append([]interp.Value(nil), elems[1:]...))
		return first, nil
	})

	r.method(proto, "Array.prototype.unshift", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.unshift")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		if err := in.Burn(int64(len(elems)) / 8); err != nil {
			return interp.Undefined(), err
		}
		o.SetArrayElems(append(append([]interp.Value(nil), args...), elems...))
		return interp.Number(float64(o.ArrayLength())), nil
	})

	r.method(proto, "Array.prototype.slice", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.slice")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		start, end, err := sliceRange(in, args, len(elems))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.ObjValue(in.NewArray(append([]interp.Value(nil), elems[start:end]...))), nil
	})

	r.method(proto, "Array.prototype.splice", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.splice")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		n := len(elems)
		startF, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		start := clampIndex(startF, n)
		delCount := n - start
		if len(args) >= 2 {
			dcF, err := in.ToInteger(arg(args, 1))
			if err != nil {
				return interp.Undefined(), err
			}
			delCount = int(math.Max(0, math.Min(float64(n-start), dcF)))
		}
		removed := append([]interp.Value(nil), elems[start:start+delCount]...)
		var inserted []interp.Value
		if len(args) > 2 {
			inserted = args[2:]
		}
		out := make([]interp.Value, 0, n-delCount+len(inserted))
		out = append(out, elems[:start]...)
		out = append(out, inserted...)
		out = append(out, elems[start+delCount:]...)
		o.SetArrayElems(out)
		return interp.ObjValue(in.NewArray(removed)), nil
	})

	r.method(proto, "Array.prototype.concat", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.concat")
		if err != nil {
			return interp.Undefined(), err
		}
		out := append([]interp.Value(nil), o.ArrayElems()...)
		for _, a := range args {
			if a.IsObject() && a.Obj().IsArray() {
				out = append(out, a.Obj().ArrayElems()...)
			} else {
				out = append(out, a)
			}
		}
		return interp.ObjValue(in.NewArray(out)), nil
	})

	join := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.join")
		if err != nil {
			return interp.Undefined(), err
		}
		sep := ","
		if s := arg(args, 0); !s.IsUndefined() {
			sep, err = in.ToString(s)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		var b strings.Builder
		for i, e := range o.ArrayElems() {
			if i > 0 {
				b.WriteString(sep)
			}
			if e.IsNullish() {
				continue
			}
			s, err := in.ToString(e)
			if err != nil {
				return interp.Undefined(), err
			}
			b.WriteString(s)
		}
		return interp.String(b.String()), nil
	}
	r.method(proto, "Array.prototype.join", 1, join)
	r.method(proto, "Array.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if this.IsObject() && this.Obj().IsArray() {
			return join(in, this, nil)
		}
		s, err := in.ToString(this)
		return interp.String(s), err
	})

	r.method(proto, "Array.prototype.indexOf", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.indexOf")
		if err != nil {
			return interp.Undefined(), err
		}
		target := arg(args, 0)
		elems := o.ArrayElems()
		start := 0
		if len(args) > 1 {
			f, err := in.ToInteger(args[1])
			if err != nil {
				return interp.Undefined(), err
			}
			start = clampIndex(f, len(elems))
		}
		for i := start; i < len(elems); i++ {
			if interp.SameValueStrict(elems[i], target) {
				return interp.Number(float64(i)), nil
			}
		}
		return interp.Number(-1), nil
	})

	r.method(proto, "Array.prototype.lastIndexOf", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.lastIndexOf")
		if err != nil {
			return interp.Undefined(), err
		}
		target := arg(args, 0)
		elems := o.ArrayElems()
		for i := len(elems) - 1; i >= 0; i-- {
			if interp.SameValueStrict(elems[i], target) {
				return interp.Number(float64(i)), nil
			}
		}
		return interp.Number(-1), nil
	})

	r.method(proto, "Array.prototype.includes", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.includes")
		if err != nil {
			return interp.Undefined(), err
		}
		target := arg(args, 0)
		for _, e := range o.ArrayElems() {
			if interp.SameValueStrict(e, target) {
				return interp.Bool(true), nil
			}
			// SameValueZero: NaN matches NaN.
			if e.Kind() == interp.KindNumber && target.Kind() == interp.KindNumber &&
				math.IsNaN(e.Num()) && math.IsNaN(target.Num()) {
				return interp.Bool(true), nil
			}
		}
		return interp.Bool(false), nil
	})

	// iterCallback factors the forEach/map/filter/find/some/every loops.
	iterCallback := func(method string) func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			o, err := thisArray(in, this, method)
			if err != nil {
				return interp.Undefined(), err
			}
			cb := arg(args, 0)
			if !cb.IsObject() || !cb.Obj().IsCallable() {
				return interp.Undefined(), in.TypeErrorf("%v is not a function", interp.DebugString(cb))
			}
			thisArg := arg(args, 1)
			elems := o.ArrayElems()
			var mapped []interp.Value
			var filtered []interp.Value
			for i := 0; i < len(elems) && i < int(o.ArrayLength()); i++ {
				v, err := in.Call(cb.Obj(), thisArg,
					[]interp.Value{elems[i], interp.Number(float64(i)), this})
				if err != nil {
					return interp.Undefined(), err
				}
				switch method {
				case "Array.prototype.forEach":
				case "Array.prototype.map":
					mapped = append(mapped, v)
				case "Array.prototype.filter":
					if interp.ToBoolean(v) {
						filtered = append(filtered, elems[i])
					}
				case "Array.prototype.find":
					if interp.ToBoolean(v) {
						return elems[i], nil
					}
				case "Array.prototype.findIndex":
					if interp.ToBoolean(v) {
						return interp.Number(float64(i)), nil
					}
				case "Array.prototype.some":
					if interp.ToBoolean(v) {
						return interp.Bool(true), nil
					}
				case "Array.prototype.every":
					if !interp.ToBoolean(v) {
						return interp.Bool(false), nil
					}
				}
			}
			switch method {
			case "Array.prototype.map":
				return interp.ObjValue(in.NewArray(mapped)), nil
			case "Array.prototype.filter":
				return interp.ObjValue(in.NewArray(filtered)), nil
			case "Array.prototype.find":
				return interp.Undefined(), nil
			case "Array.prototype.findIndex":
				return interp.Number(-1), nil
			case "Array.prototype.some":
				return interp.Bool(false), nil
			case "Array.prototype.every":
				return interp.Bool(true), nil
			}
			return interp.Undefined(), nil
		}
	}
	for _, m := range []string{"forEach", "map", "filter", "find", "findIndex", "some", "every"} {
		r.method(proto, "Array.prototype."+m, 1, iterCallback("Array.prototype."+m))
	}

	reduce := func(method string, fromRight bool) interp.NativeFunc {
		return func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			o, err := thisArray(in, this, method)
			if err != nil {
				return interp.Undefined(), err
			}
			cb := arg(args, 0)
			if !cb.IsObject() || !cb.Obj().IsCallable() {
				return interp.Undefined(), in.TypeErrorf("%v is not a function", interp.DebugString(cb))
			}
			elems := append([]interp.Value(nil), o.ArrayElems()...)
			idx := make([]int, len(elems))
			for i := range idx {
				idx[i] = i
			}
			if fromRight {
				for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
					elems[i], elems[j] = elems[j], elems[i]
					idx[i], idx[j] = idx[j], idx[i]
				}
			}
			var acc interp.Value
			start := 0
			if len(args) >= 2 {
				acc = args[1]
			} else {
				if len(elems) == 0 {
					return interp.Undefined(), in.TypeErrorf("Reduce of empty array with no initial value")
				}
				acc = elems[0]
				start = 1
			}
			for i := start; i < len(elems); i++ {
				acc, err = in.Call(cb.Obj(), interp.Undefined(),
					[]interp.Value{acc, elems[i], interp.Number(float64(idx[i])), this})
				if err != nil {
					return interp.Undefined(), err
				}
			}
			return acc, nil
		}
	}
	r.method(proto, "Array.prototype.reduce", 1, reduce("Array.prototype.reduce", false))
	r.method(proto, "Array.prototype.reduceRight", 1, reduce("Array.prototype.reduceRight", true))

	r.method(proto, "Array.prototype.reverse", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.reverse")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		for i, j := 0, len(elems)-1; i < j; i, j = i+1, j-1 {
			elems[i], elems[j] = elems[j], elems[i]
		}
		return this, nil
	})

	r.method(proto, "Array.prototype.sort", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.sort")
		if err != nil {
			return interp.Undefined(), err
		}
		cmp := arg(args, 0)
		elems := o.ArrayElems()
		if err := in.Burn(int64(len(elems))); err != nil {
			return interp.Undefined(), err
		}
		var sortErr error
		sort.SliceStable(elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			a, b := elems[i], elems[j]
			if a.IsUndefined() {
				return false
			}
			if b.IsUndefined() {
				return true
			}
			if cmp.IsObject() && cmp.Obj().IsCallable() {
				v, err := in.Call(cmp.Obj(), interp.Undefined(), []interp.Value{a, b})
				if err != nil {
					sortErr = err
					return false
				}
				n, err := in.ToNumber(v)
				if err != nil {
					sortErr = err
					return false
				}
				return n < 0
			}
			sa, err := in.ToString(a)
			if err != nil {
				sortErr = err
				return false
			}
			sb, err := in.ToString(b)
			if err != nil {
				sortErr = err
				return false
			}
			return sa < sb
		})
		if sortErr != nil {
			return interp.Undefined(), sortErr
		}
		return this, nil
	})

	r.method(proto, "Array.prototype.fill", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.fill")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		start, end, err := sliceRange(in, restArgs(args, 1), len(elems))
		if err != nil {
			return interp.Undefined(), err
		}
		for i := start; i < end; i++ {
			elems[i] = arg(args, 0)
		}
		return this, nil
	})

	r.method(proto, "Array.prototype.flat", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.flat")
		if err != nil {
			return interp.Undefined(), err
		}
		depth := 1.0
		if d := arg(args, 0); !d.IsUndefined() {
			depth, err = in.ToInteger(d)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		var flatten func(elems []interp.Value, d float64) []interp.Value
		flatten = func(elems []interp.Value, d float64) []interp.Value {
			var out []interp.Value
			for _, e := range elems {
				if d >= 1 && e.IsObject() && e.Obj().IsArray() {
					out = append(out, flatten(e.Obj().ArrayElems(), d-1)...)
				} else {
					out = append(out, e)
				}
			}
			return out
		}
		return interp.ObjValue(in.NewArray(flatten(o.ArrayElems(), depth))), nil
	})

	r.method(proto, "Array.prototype.copyWithin", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := thisArray(in, this, "Array.prototype.copyWithin")
		if err != nil {
			return interp.Undefined(), err
		}
		elems := o.ArrayElems()
		n := len(elems)
		tF, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		target := clampIndex(tF, n)
		start, end, err := sliceRange(in, restArgs(args, 1), n)
		if err != nil {
			return interp.Undefined(), err
		}
		src := append([]interp.Value(nil), elems[start:end]...)
		for i, v := range src {
			if target+i >= n {
				break
			}
			elems[target+i] = v
		}
		return this, nil
	})
}

// sliceRange resolves (start, end) arguments against a length per the
// shared ECMA-262 relative-index rules.
func sliceRange(in *interp.Interp, args []interp.Value, n int) (int, int, error) {
	start, end := 0, n
	if len(args) >= 1 && !args[0].IsUndefined() {
		f, err := in.ToInteger(args[0])
		if err != nil {
			return 0, 0, err
		}
		start = clampIndex(f, n)
	}
	if len(args) >= 2 && !args[1].IsUndefined() {
		f, err := in.ToInteger(args[1])
		if err != nil {
			return 0, 0, err
		}
		end = clampIndex(f, n)
	}
	if end < start {
		end = start
	}
	return start, end, nil
}

// clampIndex maps a possibly-negative relative index into [0, n]. NaN maps
// to 0 per ToIntegerOrInfinity.
func clampIndex(f float64, n int) int {
	if math.IsNaN(f) {
		return 0
	}
	if f < 0 {
		f += float64(n)
	}
	if f < 0 {
		return 0
	}
	if f > float64(n) {
		return n
	}
	return int(f)
}
