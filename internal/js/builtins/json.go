package builtins

import (
	"math"
	"strconv"
	"strings"
	"unicode/utf16"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
)

func installJSON(r *registry) {
	in := r.in
	j := in.NewObject(in.Protos["Object"])
	j.Class = "JSON"
	r.global("JSON", interp.ObjValue(j))

	r.method(j, "JSON.stringify", 3, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		indent := ""
		if sp := arg(args, 2); !sp.IsUndefined() {
			switch sp.Kind() {
			case interp.KindNumber:
				n := int(jsnum.ToInteger(sp.Num()))
				if n > 10 {
					n = 10
				}
				if n > 0 {
					indent = strings.Repeat(" ", n)
				}
			case interp.KindString:
				indent = sp.Str()
				if len(indent) > 10 {
					indent = indent[:10]
				}
			}
		}
		s, ok, err := jsonStringify(in, arg(args, 0), indent, "", map[*interp.Object]bool{})
		if err != nil {
			return interp.Undefined(), err
		}
		if !ok {
			return interp.Undefined(), nil
		}
		return interp.String(s), nil
	})

	r.method(j, "JSON.parse", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		src, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		p := &jsonParser{in: in, src: src}
		p.skipWS()
		v, err := p.value()
		if err != nil {
			return interp.Undefined(), err
		}
		p.skipWS()
		if p.pos != len(p.src) {
			return interp.Undefined(), in.SyntaxErrorf("Unexpected token in JSON at position %d", p.pos)
		}
		return v, nil
	})
}

// jsonStringify implements SerializeJSONProperty; ok=false means the value
// is not serialisable (undefined / function).
func jsonStringify(in *interp.Interp, v interp.Value, indent, cur string,
	seen map[*interp.Object]bool) (string, bool, error) {
	// toJSON support (Date).
	if v.IsObject() {
		toJSON, err := in.GetPropKey(v, "toJSON")
		if err != nil {
			return "", false, err
		}
		if toJSON.IsObject() && toJSON.Obj().IsCallable() {
			v, err = in.Call(toJSON.Obj(), v, nil)
			if err != nil {
				return "", false, err
			}
		}
	}
	switch v.Kind() {
	case interp.KindUndefined:
		return "", false, nil
	case interp.KindNull:
		return "null", true, nil
	case interp.KindBool:
		if v.BoolVal() {
			return "true", true, nil
		}
		return "false", true, nil
	case interp.KindNumber:
		if math.IsNaN(v.Num()) || math.IsInf(v.Num(), 0) {
			return "null", true, nil
		}
		return jsnum.Format(v.Num()), true, nil
	case interp.KindString:
		return quoteJSON(v.Str()), true, nil
	}
	o := v.Obj()
	if o.IsCallable() {
		return "", false, nil
	}
	// Unwrap primitive wrappers.
	if o.HasPrim {
		switch o.Class {
		case "String":
			return quoteJSON(o.Prim.Str()), true, nil
		case "Number":
			return jsonStringify(in, o.Prim, indent, cur, seen)
		case "Boolean":
			return jsonStringify(in, o.Prim, indent, cur, seen)
		}
	}
	if seen[o] {
		return "", false, in.TypeErrorf("Converting circular structure to JSON")
	}
	seen[o] = true
	defer delete(seen, o)
	if err := in.Burn(4); err != nil {
		return "", false, err
	}
	inner := cur + indent
	nl, sp := "", ""
	if indent != "" {
		nl, sp = "\n", " "
	}
	if o.IsArray() {
		elems := o.ArrayElems()
		if len(elems) == 0 {
			return "[]", true, nil
		}
		var parts []string
		for _, e := range elems {
			s, ok, err := jsonStringify(in, e, indent, inner, seen)
			if err != nil {
				return "", false, err
			}
			if !ok {
				s = "null"
			}
			parts = append(parts, inner+s)
		}
		return "[" + nl + strings.Join(parts, ","+nl) + nl + cur + "]", true, nil
	}
	var parts []string
	for _, k := range o.EnumerableKeys() {
		pv, err := in.GetPropKey(v, k)
		if err != nil {
			return "", false, err
		}
		s, ok, err := jsonStringify(in, pv, indent, inner, seen)
		if err != nil {
			return "", false, err
		}
		if !ok {
			continue
		}
		parts = append(parts, inner+quoteJSON(k)+":"+sp+s)
	}
	if len(parts) == 0 {
		return "{}", true, nil
	}
	return "{" + nl + strings.Join(parts, ","+nl) + nl + cur + "}", true, nil
}

func quoteJSON(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		case '\b':
			b.WriteString(`\b`)
		case '\f':
			b.WriteString(`\f`)
		default:
			if r < 0x20 {
				b.WriteString("\\u")
				hex := strconv.FormatInt(int64(r), 16)
				for len(hex) < 4 {
					hex = "0" + hex
				}
				b.WriteString(hex)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// jsonParser is a small standalone JSON reader producing JS values.
type jsonParser struct {
	in  *interp.Interp
	src string
	pos int
}

func (p *jsonParser) skipWS() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) fail() error {
	return p.in.SyntaxErrorf("Unexpected token in JSON at position %d", p.pos)
}

func (p *jsonParser) value() (interp.Value, error) {
	if err := p.in.Burn(1); err != nil {
		return interp.Undefined(), err
	}
	if p.pos >= len(p.src) {
		return interp.Undefined(), p.in.SyntaxErrorf("Unexpected end of JSON input")
	}
	switch c := p.src[p.pos]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		s, err := p.str()
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(s), nil
	case c == 't':
		if strings.HasPrefix(p.src[p.pos:], "true") {
			p.pos += 4
			return interp.Bool(true), nil
		}
		return interp.Undefined(), p.fail()
	case c == 'f':
		if strings.HasPrefix(p.src[p.pos:], "false") {
			p.pos += 5
			return interp.Bool(false), nil
		}
		return interp.Undefined(), p.fail()
	case c == 'n':
		if strings.HasPrefix(p.src[p.pos:], "null") {
			p.pos += 4
			return interp.Null(), nil
		}
		return interp.Undefined(), p.fail()
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	default:
		return interp.Undefined(), p.fail()
	}
}

func (p *jsonParser) number() (interp.Value, error) {
	start := p.pos
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos < len(p.src) && p.src[p.pos] == '.' {
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
	}
	if p.pos < len(p.src) && (p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.src) && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
			p.pos++
		}
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return interp.Undefined(), p.fail()
	}
	return interp.Number(f), nil
}

func (p *jsonParser) str() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '"':
			p.pos++
			return b.String(), nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.src) {
				return "", p.fail()
			}
			switch p.src[p.pos] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case '/':
				b.WriteByte('/')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case 'u':
				if p.pos+4 >= len(p.src) {
					return "", p.fail()
				}
				u, err := strconv.ParseUint(p.src[p.pos+1:p.pos+5], 16, 32)
				if err != nil {
					return "", p.fail()
				}
				p.pos += 4
				r := rune(u)
				// Surrogate pair handling.
				if utf16.IsSurrogate(r) && p.pos+6 < len(p.src) &&
					p.src[p.pos+1] == '\\' && p.src[p.pos+2] == 'u' {
					u2, err := strconv.ParseUint(p.src[p.pos+3:p.pos+7], 16, 32)
					if err == nil {
						if dec := utf16.DecodeRune(r, rune(u2)); dec != 0xFFFD {
							r = dec
							p.pos += 6
						}
					}
				}
				b.WriteRune(r)
			default:
				return "", p.fail()
			}
			p.pos++
		case c < 0x20:
			return "", p.fail()
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", p.in.SyntaxErrorf("Unexpected end of JSON input")
}

func (p *jsonParser) object() (interp.Value, error) {
	p.pos++ // '{'
	o := p.in.NewObject(p.in.Protos["Object"])
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == '}' {
		p.pos++
		return interp.ObjValue(o), nil
	}
	for {
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != '"' {
			return interp.Undefined(), p.fail()
		}
		k, err := p.str()
		if err != nil {
			return interp.Undefined(), err
		}
		p.skipWS()
		if p.pos >= len(p.src) || p.src[p.pos] != ':' {
			return interp.Undefined(), p.fail()
		}
		p.pos++
		p.skipWS()
		v, err := p.value()
		if err != nil {
			return interp.Undefined(), err
		}
		o.SetSlot(k, v, interp.DefaultAttr)
		p.skipWS()
		if p.pos >= len(p.src) {
			return interp.Undefined(), p.in.SyntaxErrorf("Unexpected end of JSON input")
		}
		if p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		if p.src[p.pos] == '}' {
			p.pos++
			return interp.ObjValue(o), nil
		}
		return interp.Undefined(), p.fail()
	}
}

func (p *jsonParser) array() (interp.Value, error) {
	p.pos++ // '['
	arr := p.in.NewArray(nil)
	p.skipWS()
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return interp.ObjValue(arr), nil
	}
	for {
		p.skipWS()
		v, err := p.value()
		if err != nil {
			return interp.Undefined(), err
		}
		arr.AppendElem(v)
		p.skipWS()
		if p.pos >= len(p.src) {
			return interp.Undefined(), p.in.SyntaxErrorf("Unexpected end of JSON input")
		}
		if p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		if p.src[p.pos] == ']' {
			p.pos++
			return interp.ObjValue(arr), nil
		}
		return interp.Undefined(), p.fail()
	}
}
