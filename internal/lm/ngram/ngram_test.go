package ngram

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSampleFollowsCounts(t *testing.T) {
	m := New(2)
	m.Train(strings.Fields("a b c a b d a b c"))
	rng := rand.New(rand.NewSource(1))
	// After "a b" the continuations are c (2) and d (1).
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		tok, ok := m.Sample([]string{"a", "b"}, 10, rng)
		if !ok {
			t.Fatal("sample failed")
		}
		seen[tok]++
	}
	// Sampling is uniform among the top-k (the paper's sampling scheme), so
	// both observed continuations must appear; nothing else may.
	if seen["c"] == 0 || seen["d"] == 0 {
		t.Errorf("both continuations should appear: %v", seen)
	}
	if len(seen) != 2 {
		t.Errorf("only observed continuations may be sampled: %v", seen)
	}
}

func TestBackoff(t *testing.T) {
	m := New(3)
	m.Train(strings.Fields("x y z w"))
	rng := rand.New(rand.NewSource(2))
	// Unseen long context must back off to shorter suffixes.
	tok, ok := m.Sample([]string{"q", "q", "z"}, 10, rng)
	if !ok || tok != "w" {
		t.Errorf("backoff: got %q ok=%v", tok, ok)
	}
}

func TestEmptyModel(t *testing.T) {
	m := New(2)
	rng := rand.New(rand.NewSource(3))
	if _, ok := m.Sample([]string{"a"}, 10, rng); ok {
		t.Error("untrained model must fail to sample")
	}
}

func TestTopKRestriction(t *testing.T) {
	// 20 distinct continuations with frequencies 21..1.
	m2 := New(1)
	for i := 0; i < 20; i++ {
		for j := 0; j <= 20-i; j++ {
			m2.Train([]string{"ctx", string(rune('a' + i))})
		}
	}
	rng := rand.New(rand.NewSource(4))
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		tok, _ := m2.Sample([]string{"ctx"}, 3, rng)
		seen[tok] = true
	}
	if len(seen) > 3 {
		t.Errorf("top-3 sampling drew %d distinct tokens: %v", len(seen), seen)
	}
}

func TestDeterminism(t *testing.T) {
	m := New(4)
	m.Train(strings.Fields("the quick brown fox jumps over the lazy dog the quick brown cat"))
	a := sampleSeq(m, 42)
	b := sampleSeq(m, 42)
	if a != b {
		t.Errorf("sampling not deterministic: %q vs %q", a, b)
	}
}

// TestFrozenMatchesMapSample is the sampler-level differential oracle:
// over randomized corpora, every (context, topK, rng-state) draw from the
// frozen model must match the map model exactly — same token, same ok,
// same RNG consumption — including contexts with out-of-vocabulary tokens
// and contexts longer than the order.
func TestFrozenMatchesMapSample(t *testing.T) {
	words := strings.Fields("a b c d aa bb cc if for var x y z print return")
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		order := 1 + rng.Intn(4)
		m := New(order)
		for s := 0; s < 3+rng.Intn(5); s++ {
			seq := make([]string, 2+rng.Intn(30))
			for i := range seq {
				seq[i] = words[rng.Intn(len(words))]
			}
			m.Train(seq)
		}
		f := m.Freeze()
		if f.Contexts() != m.Contexts() {
			t.Fatalf("trial %d: frozen reports %d contexts, map %d", trial, f.Contexts(), m.Contexts())
		}
		ctxWords := append(append([]string{}, words...), "UNSEEN", "⊥")
		for draw := 0; draw < 300; draw++ {
			ctx := make([]string, rng.Intn(order+3))
			for i := range ctx {
				ctx[i] = ctxWords[rng.Intn(len(ctxWords))]
			}
			topK := 1 + rng.Intn(5)
			seed := rng.Int63()
			mTok, mOK := m.Sample(ctx, topK, rand.New(rand.NewSource(seed)))
			fTok, fOK := f.Sample(ctx, topK, rand.New(rand.NewSource(seed)))
			if mOK != fOK || mTok != fTok {
				t.Fatalf("trial %d ctx %q topK %d: map (%q,%v) vs frozen (%q,%v)",
					trial, ctx, topK, mTok, mOK, fTok, fOK)
			}
		}
	}
}

// TestFrozenStreamEquivalence drives both samplers through a whole
// generation-shaped loop (context grows by each drawn token) with one
// shared seed per stream and requires identical sequences.
func TestFrozenStreamEquivalence(t *testing.T) {
	m := New(4)
	m.Train(strings.Fields("the quick brown fox jumps over the lazy dog the quick brown cat"))
	f := m.Freeze()
	for seed := int64(0); seed < 50; seed++ {
		mapSeq := sampleSeq(m, seed)
		rng := rand.New(rand.NewSource(seed))
		ids := []int32{f.TokenID("the")}
		var out []string
		for i := 0; i < 10; i++ {
			id, ok := f.SampleID(ids, 10, rng)
			if !ok {
				break
			}
			out = append(out, f.Token(id))
			ids = append(ids, id)
		}
		if got := strings.Join(out, " "); got != mapSeq {
			t.Fatalf("seed %d: frozen stream %q != map stream %q", seed, got, mapSeq)
		}
	}
}

func TestFrozenEmptyAndUnknown(t *testing.T) {
	empty := New(2).Freeze()
	if _, ok := empty.SampleID(nil, 10, rand.New(rand.NewSource(1))); ok {
		t.Error("frozen untrained model must fail to sample")
	}
	if empty.EOF() != -1 {
		t.Errorf("untrained model EOF = %d, want -1", empty.EOF())
	}
	m := New(2)
	m.Train([]string{"x", "y", "z", "<EOF>"})
	f := m.Freeze()
	if f.TokenID("nope") != -1 {
		t.Error("out-of-vocabulary token must intern to -1")
	}
	if id := f.TokenID("y"); id < 0 || f.Token(id) != "y" {
		t.Errorf("TokenID/Token round trip broke: id=%d", id)
	}
	if f.EOF() < 0 || f.Token(f.EOF()) != "<EOF>" {
		t.Errorf("EOF id %d does not map back to the marker", f.EOF())
	}
	// An unknown token inside the context suffix must back off exactly like
	// the map model's failed string lookup.
	tok, ok := f.Sample([]string{"UNSEEN", "y"}, 10, rand.New(rand.NewSource(2)))
	if !ok || tok != "z" {
		t.Errorf("backoff through unknown token: got %q ok=%v, want z", tok, ok)
	}
}

func TestFrozenSampleAllocs(t *testing.T) {
	m := New(3)
	m.Train(strings.Fields("a b c a b d a b c a c b"))
	f := m.Freeze()
	rng := rand.New(rand.NewSource(7))
	ctx := []int32{f.TokenID("a"), f.TokenID("b")}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := f.SampleID(ctx, 10, rng); !ok {
			t.Fatal("sample failed")
		}
	})
	if allocs != 0 {
		t.Errorf("SampleID allocates %.1f objects per draw, want 0", allocs)
	}
}

func sampleSeq(m *Model, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	ctx := []string{"the"}
	var out []string
	for i := 0; i < 10; i++ {
		tok, ok := m.Sample(ctx, 10, rng)
		if !ok {
			break
		}
		out = append(out, tok)
		ctx = append(ctx, tok)
	}
	return strings.Join(out, " ")
}
