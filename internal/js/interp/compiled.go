package interp

import (
	"comfort/internal/js/ast"
	"comfort/internal/js/token"
)

// This file is the runtime-support surface for internal/js/compile: the
// compile pass turns a resolved AST into a tree of closure thunks, and
// those thunks execute against the same interpreter state — environments,
// fuel, hooks, global object — as the tree-walking evaluator. Every helper
// here is a thin exported veneer over an existing internal operation, so
// the two evaluators cannot drift: a thunk that calls SetProp pays exactly
// the fuel, hook interception and semantics the tree walker pays at the
// same site.

// CompiledBody executes a thunk-compiled function body in an already
// prepared call frame (parameters, rest, arguments, self-name and hoisted
// declarations are installed by Call, shared with the tree walker). It
// subsumes both statement bodies (handling the return control signal
// internally) and arrow expression bodies.
type CompiledBody func(in *Interp, env *Env, strict bool) (Value, error)

// Charge consumes n fuel steps — the compiled code's equivalent of the
// tree walker's per-node charge.
func (in *Interp) Charge(n int64) error { return in.charge(n) }

// ChargeSeq consumes n unit steps with the exact observable semantics of
// n consecutive Charge(1) calls whose intervening work is pure: the
// sequence succeeds iff fuel > n, and otherwise aborts at the step that
// drives fuel to zero, leaving fuel pinned at 0 so FuelUsed never
// over-reports past the abort point. Fused thunks may use this ONLY when
// nothing observable (output, hooks, errors, further charges) happens
// between the unit charges they replace.
func (in *Interp) ChargeSeq(n int64) error {
	if in.fuel > n {
		in.fuel -= n
		return nil
	}
	in.fuel = 0
	return &Abort{Kind: AbortTimeout, Msg: "step budget exhausted"}
}

// CtrlLabel and CtrlVal are the compiled evaluator's control registers:
// break/continue thunks write the label, return thunks write the value,
// and the statement thunks return only a one-byte control kind. Each
// register is read by its direct consumer (the loop, switch, labelled
// statement or function-body runner) before any other thunk runs; the one
// construct that executes statements between receiving a control signal
// and propagating it — try/finally — snapshots and restores them.
func (in *Interp) CtrlLabel() string     { return in.ctrlLabel }
func (in *Interp) SetCtrlLabel(l string) { in.ctrlLabel = l }
func (in *Interp) CtrlVal() Value        { return in.ctrlVal }
func (in *Interp) SetCtrlVal(v Value)    { in.ctrlVal = v }

// CoverStmt, CoverBranch and CoverFunc record coverage from compiled code.
func (in *Interp) CoverStmt(id int)        { in.coverStmt(id) }
func (in *Interp) CoverBranch(id, arm int) { in.coverBranch(id, arm) }
func (in *Interp) CoverFunc(id int)        { in.coverFunc(id) }

// CurrentThis resolves the active this binding.
func (in *Interp) CurrentThis() Value { return in.currentThis() }

// TakePendingLabel consumes the pending statement label (the loop-entry
// half of the labelled break/continue protocol); SetPendingLabel sets it
// (the LabeledStmt half). Compiled code keeps this protocol dynamic — the
// tree walker lets a label flow through arbitrary statements, and even
// through calls, until the first loop consumes it, which no static pass
// can reproduce.
func (in *Interp) TakePendingLabel() string {
	l := in.pendingLabel
	in.pendingLabel = ""
	return l
}

// SetPendingLabel sets the pending statement label.
func (in *Interp) SetPendingLabel(l string) { in.pendingLabel = l }

// ---------- identifier access ----------

// SlotValue reads the binding at a resolved (depth, slot) coordinate.
func (e *Env) SlotValue(depth, slot uint16) Value { return e.at(depth, slot).v }

// AtDepth walks up the materialised-frame chain.
func (e *Env) AtDepth(depth uint16) *Env {
	for ; depth > 0; depth-- {
		e = e.parent
	}
	return e
}

// AssignSlot writes through a resolved slot reference, honouring
// mutability and the function self-name rules.
func (in *Interp) AssignSlot(env *Env, depth, slot uint16, v Value, strict bool) error {
	return in.assignBinding(env.at(depth, slot), v, strict)
}

// LookupGlobalName reads a RefGlobal identifier: the global environment's
// lexical bindings, then the global object and its prototype chain.
func (in *Interp) LookupGlobalName(name string) (Value, error) { return in.lookupGlobal(name) }

// LookupDynamic reads a RefDynamic identifier by walking the environment
// chain by name.
func (in *Interp) LookupDynamic(name string, env *Env) (Value, error) {
	return in.lookupIdent(name, env)
}

// AssignGlobalName writes a RefGlobal identifier.
func (in *Interp) AssignGlobalName(name string, v Value, strict bool) error {
	if b, ok := in.GlobalEnv.lookup(name); ok {
		return in.assignBinding(b, v, strict)
	}
	return in.assignGlobalTail(name, v, strict)
}

// AssignDynamic writes a RefDynamic identifier by chain walk.
func (in *Interp) AssignDynamic(name string, v Value, env *Env, strict bool) error {
	return in.assignIdent(name, v, env, strict)
}

// HasGlobalName reports whether the global object (or its prototype
// chain) carries the name — the typeof/delete existence probe.
func (in *Interp) HasGlobalName(name string) bool { return in.hasGlobal(name) }

// ---------- declarations ----------

// DeclareSlotVar applies var-declaration write semantics at a resolved
// slot coordinate.
func (in *Interp) DeclareSlotVar(env *Env, depth, slot uint16, v Value) {
	env.at(depth, slot).declareVarWrite(v)
}

// SetSlotLexical (re)creates the lexical binding in this frame's slot —
// the let/const declaration, for-in loop variable and catch parameter
// write.
func (e *Env) SetSlotLexical(slot uint16, v Value, mutable bool) {
	e.slots[slot] = binding{v: v, mutable: mutable, live: true}
}

// DeclareVar creates a var-scoped binding on the nearest function frame
// (the dynamic-path declaration).
func (e *Env) DeclareVar(name string, v Value) { e.declareVar(name, v) }

// DeclareLexical creates a block-scoped binding on this frame by name.
func (e *Env) DeclareLexical(name string, v Value, mutable bool) {
	e.declareLexical(name, v, mutable)
}

// ScopeEnv returns the environment a resolved scope executes in (fresh
// frame, reused parent, or dynamic child — see the unexported scopeEnv).
func (in *Interp) ScopeEnv(parent *Env, scope *ast.ScopeInfo) *Env {
	return in.scopeEnv(parent, scope)
}

// ---------- operations ----------

// MakeArguments builds the arguments object for a call.
func (in *Interp) MakeArguments(args []Value) Value { return in.makeArguments(args) }

// Iterate spreads an iterable value (for-of, spread syntax).
func (in *Interp) Iterate(v Value) ([]Value, error) { return in.iterate(v) }

// ApplyBinary applies a binary operator to evaluated operands.
func (in *Interp) ApplyBinary(op token.Type, l, r Value) (Value, error) {
	return in.applyBinary(op, l, r)
}

// GetPropByValue reads obj[key] with the key still a language value
// (dense-array fast path included).
func (in *Interp) GetPropByValue(obj, key Value) (Value, error) {
	return in.getPropByValue(obj, key)
}

// SetPropByValue writes obj[key] = v with the key still a language value.
func (in *Interp) SetPropByValue(target, key, v Value, strict bool) error {
	return in.setPropByValue(target, key, v, strict)
}

// DefineAccessor installs one half of an accessor property on an object
// literal under construction, merging with an existing accessor pair
// exactly as the tree walker's object-literal evaluation does.
func (o *Object) DefineAccessor(key string, fn *Object, getter bool) {
	existing, ok := o.getOwn(key)
	if !ok || !existing.Accessor {
		existing = &Property{Accessor: true, Attr: Enumerable | Configurable}
		o.DefineOwn(key, existing)
	}
	if getter {
		existing.Get = fn
	} else {
		existing.Set = fn
	}
}

// ForInKeys collects the for-in enumeration sequence of a value: own and
// inherited enumerable keys, deduplicated along the prototype chain. A
// nullish value enumerates nothing (nil, nil).
func (in *Interp) ForInKeys(obj Value) ([]Value, error) {
	if obj.IsNullish() {
		return nil, nil
	}
	o, err := in.ToObject(obj)
	if err != nil {
		return nil, err
	}
	var items []Value
	seen := map[string]bool{}
	for cur := o; cur != nil; cur = cur.Proto {
		for _, k := range cur.EnumerableKeys() {
			if !seen[k] {
				seen[k] = true
				items = append(items, String(k))
			}
		}
	}
	return items, nil
}

// ---------- frame pooling ----------

// maxPooledFrames bounds the per-interpreter frame free list; beyond it
// released frames are left to the collector.
const maxPooledFrames = 64

// AcquireScope returns a slot frame for a Poolable scope, recycling a
// released frame whose slot slice is large enough. The frame is
// indistinguishable from a fresh newFrame allocation: slots are zeroed at
// release time.
func (in *Interp) AcquireScope(parent *Env, scope *ast.ScopeInfo, isFunc bool) *Env {
	for i := len(in.framePool) - 1; i >= 0; i-- {
		e := in.framePool[i]
		if cap(e.slots) >= scope.NumSlots {
			in.framePool[i] = in.framePool[len(in.framePool)-1]
			in.framePool = in.framePool[:len(in.framePool)-1]
			e.scope = scope
			e.slots = e.slots[:scope.NumSlots]
			e.parent = parent
			e.isFunc = isFunc
			return e
		}
	}
	return newFrame(parent, scope, isFunc)
}

// AcquireArgs returns an argument slice of length n from the
// per-interpreter free list. Compiled call sites use it when the callee is
// a plain JS function: such calls only ever copy argument values (into
// parameter slots, the rest array, or the arguments object), so the slice
// itself provably does not survive the call. Natives and bound functions
// are excluded — they may retain the slice.
func (in *Interp) AcquireArgs(n int) []Value {
	if k := len(in.argsPool); k > 0 {
		a := in.argsPool[k-1]
		if cap(a) >= n {
			in.argsPool = in.argsPool[:k-1]
			return a[:n]
		}
	}
	return make([]Value, n)
}

// ReleaseArgs returns an argument slice to the free list, dropping the
// value references it holds.
func (in *Interp) ReleaseArgs(a []Value) {
	if cap(a) == 0 || len(in.argsPool) >= maxPooledFrames {
		return
	}
	a = a[:cap(a)]
	for i := range a {
		a[i] = Value{}
	}
	in.argsPool = append(in.argsPool, a)
}

// ReleaseScope returns a frame obtained from AcquireScope (or newFrame)
// to the free list. Callers guarantee the frame cannot be referenced
// after release — the compile pass only marks a scope Poolable when no
// closure can capture it. A frame that grew a dynamic overlay is never
// pooled (the overlay would leak bindings across activations).
func (in *Interp) ReleaseScope(e *Env) {
	if e.vars != nil || len(in.framePool) >= maxPooledFrames {
		return
	}
	slots := e.slots[:cap(e.slots)]
	for i := range slots {
		slots[i] = binding{}
	}
	e.parent = nil
	e.scope = nil
	in.framePool = append(in.framePool, e)
}
