package ngram

import (
	"math/rand"
	"sort"
	"strings"
)

// Frozen is the compiled, read-only form of a trained Model. Freezing
// interns the string vocabulary into dense int32 token IDs, lays every
// (order, context-tuple) out in an open-addressing hash table over a flat
// ID backing array, and precomputes each context's continuation list
// sorted by (count descending, token lexicographic) — exactly the order
// the map-backed Sample derives per call. Sampling therefore costs one
// hash lookup plus one rng.Intn with zero allocations, instead of the
// map model's per-token context join, map copy and full sort.
//
// A Frozen model is immutable and safe for concurrent samplers; the
// map-backed Model stays intact as the differential oracle's second
// implementation (lm.Config.DisableFrozenLM keeps generation on it).
type Frozen struct {
	order int
	vocab []string         // id → token
	ids   map[string]int32 // token → id
	// tables[k] indexes the k-token contexts; cands holds every context's
	// sorted continuation list, concatenated in table order.
	tables []ctxTable
	cands  []int32
	eof    int32 // id of "<EOF>", -1 when untrained
}

// ctxTable is the open-addressing index of one context order: slots maps
// hash probes to entry indices, ctxs stores entry e's tuple at
// [e*k : e*k+k], and entry e's continuations are cands[start[e]:][:n[e]].
type ctxTable struct {
	k     int
	mask  uint64
	slots []int32 // -1 = empty
	ctxs  []int32
	start []int32
	n     []int32
}

// unknownID is returned for tokens outside the trained vocabulary. It can
// never equal an interned ID, so a context tuple containing it matches no
// trained context — the same miss-and-back-off the string model gets when
// a map lookup fails on an unseen token.
const unknownID = int32(-1)

// Freeze compiles the trained model. The result is independent of map
// iteration order: vocabulary IDs are assigned lexicographically and every
// candidate list carries the map Sample's (count, token) sort.
func (m *Model) Freeze() *Frozen {
	f := &Frozen{order: m.Order, ids: map[string]int32{}, eof: unknownID}

	// Pass 1: the vocabulary. Every token observable at sampling time
	// appears as a continuation; context tokens are a subset (order ≥ 1
	// contexts are built from trained sequences) but are collected too so
	// TokenID covers them even on tiny corpora.
	var vocab []string
	add := func(tok string) {
		if _, ok := f.ids[tok]; !ok {
			f.ids[tok] = 0 // placeholder; real IDs assigned after the sort
			vocab = append(vocab, tok)
		}
	}
	for k := 0; k <= m.Order; k++ {
		for ctx, row := range m.counts[k] {
			if k > 0 {
				for _, tok := range splitCtx(ctx) {
					add(tok)
				}
			}
			for tok := range row {
				add(tok)
			}
		}
	}
	sort.Strings(vocab)
	f.vocab = vocab
	for i, tok := range vocab {
		f.ids[tok] = int32(i)
	}
	if id, ok := f.ids["<EOF>"]; ok {
		f.eof = id
	}

	// Pass 2: per-order context tables with precomputed candidate lists.
	f.tables = make([]ctxTable, m.Order+1)
	for k := 0; k <= m.Order; k++ {
		rows := m.counts[k]
		keys := make([]string, 0, len(rows))
		for ctx := range rows {
			keys = append(keys, ctx)
		}
		sort.Strings(keys)
		t := &f.tables[k]
		t.k = k
		size := tableSize(len(keys))
		t.mask = uint64(size - 1)
		t.slots = make([]int32, size)
		for i := range t.slots {
			t.slots[i] = -1
		}
		t.ctxs = make([]int32, 0, len(keys)*k)
		t.start = make([]int32, len(keys))
		t.n = make([]int32, len(keys))
		for e, ctx := range keys {
			base := len(t.ctxs)
			if k > 0 {
				for _, tok := range splitCtx(ctx) {
					t.ctxs = append(t.ctxs, f.ids[tok])
				}
			}
			t.start[e] = int32(len(f.cands))
			cands := sortedCandidates(rows[ctx])
			t.n[e] = int32(len(cands))
			for _, c := range cands {
				f.cands = append(f.cands, f.ids[c.tok])
			}
			h := hashIDs(t.ctxs[base:])
			for i := h & t.mask; ; i = (i + 1) & t.mask {
				if t.slots[i] < 0 {
					t.slots[i] = int32(e)
					break
				}
			}
		}
	}
	return f
}

// sortedCandidates orders a continuation row by count descending, token
// ascending — the exact comparator of the map model's Sample.
func sortedCandidates(row map[string]int) []candidate {
	cands := make([]candidate, 0, len(row))
	for tok, n := range row {
		cands = append(cands, candidate{tok, n})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].tok < cands[j].tok
	})
	return cands
}

// splitCtx splits a joined context key back into its tokens.
func splitCtx(ctx string) []string { return strings.Split(ctx, sep) }

// tableSize picks a power-of-two capacity at most half full.
func tableSize(entries int) int {
	size := 4
	for size < 2*entries {
		size *= 2
	}
	return size
}

// hashIDs is FNV-1a over the tuple's IDs (one round per ID).
func hashIDs(ids []int32) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, id := range ids {
		h ^= uint64(uint32(id))
		h *= 0x100000001b3
	}
	return h
}

// find locates a context tuple's entry index.
func (t *ctxTable) find(ctx []int32) (int32, bool) {
	if len(t.start) == 0 {
		return 0, false
	}
	h := hashIDs(ctx)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		e := t.slots[i]
		if e < 0 {
			return 0, false
		}
		base := int(e) * t.k
		match := true
		for j := 0; j < t.k; j++ {
			if t.ctxs[base+j] != ctx[j] {
				match = false
				break
			}
		}
		if match {
			return e, true
		}
	}
}

// SampleID draws the next token ID from the top-k continuations of the
// longest matching context suffix — semantically identical to the map
// model's Sample, including the backoff order, the candidate sort and the
// single rng.Intn draw, so the two implementations consume the RNG in
// lockstep and produce byte-identical streams.
func (f *Frozen) SampleID(ctx []int32, topK int, rng *rand.Rand) (int32, bool) {
	if topK < 1 {
		topK = 10
	}
	for k := f.order; k >= 0; k-- {
		if len(ctx) < k {
			continue
		}
		t := &f.tables[k]
		e, ok := t.find(ctx[len(ctx)-k:])
		if !ok {
			continue
		}
		n := int(t.n[e])
		if n > topK {
			n = topK
		}
		return f.cands[int(t.start[e])+rng.Intn(n)], true
	}
	return unknownID, false
}

// Sample is the string-level convenience wrapper over SampleID (tests and
// oracles; the generation hot path stays on IDs end to end).
func (f *Frozen) Sample(context []string, topK int, rng *rand.Rand) (string, bool) {
	ids := make([]int32, len(context))
	for i, tok := range context {
		ids[i] = f.TokenID(tok)
	}
	id, ok := f.SampleID(ids, topK, rng)
	if !ok {
		return "", false
	}
	return f.vocab[id], true
}

// TokenID interns a token, returning -1 for tokens outside the trained
// vocabulary.
func (f *Frozen) TokenID(tok string) int32 {
	if id, ok := f.ids[tok]; ok {
		return id
	}
	return unknownID
}

// Token returns the string form of an interned ID.
func (f *Frozen) Token(id int32) string { return f.vocab[id] }

// EOF reports the interned ID of the end-of-generation marker (-1 when
// the corpus never produced one).
func (f *Frozen) EOF() int32 { return f.eof }

// Order reports the model's context length.
func (f *Frozen) Order() int { return f.order }

// VocabSize reports the number of interned tokens.
func (f *Frozen) VocabSize() int { return len(f.vocab) }

// Contexts reports the number of distinct highest-order contexts — the
// same statistic as Model.Contexts, read from the frozen tables.
func (f *Frozen) Contexts() int { return len(f.tables[f.order].start) }
