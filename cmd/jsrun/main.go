// Command jsrun executes a JavaScript file on a named engine version (or
// the defect-free reference), printing the program output and outcome.
//
// Usage:
//
//	jsrun -engine Rhino -version v1.7.12 script.js
//	jsrun -strict script.js            # reference engine, strict mode
//	jsrun -list                        # list engine versions
//	jsrun -cpuprofile cpu.prof -n 1000 hot.js   # profile a single program
//	jsrun -disable-compile script.js   # tree-walking evaluator (oracle)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"comfort/internal/engines"
)

func main() {
	// Profile flushing happens in deferred handlers, which os.Exit would
	// skip; realMain returns the exit code instead.
	os.Exit(realMain())
}

func realMain() int {
	var (
		engine    = flag.String("engine", "", "engine family (empty = reference)")
		version   = flag.String("version", "", "engine version or build")
		strict    = flag.Bool("strict", false, "run in strict mode")
		fuel      = flag.Int64("fuel", 2_000_000, "step budget")
		list      = flag.Bool("list", false, "list engine versions and exit")
		repeat    = flag.Int("n", 1, "execute the program n times (profiling workloads)")
		noCompile = flag.Bool("disable-compile", false, "execute on the tree-walking evaluator instead of compiled thunks")
		noResolve = flag.Bool("disable-resolve", false, "execute on the dynamic map-scope evaluator (implies -disable-compile)")
		noShapes  = flag.Bool("disable-shapes", false, "execute with dictionary-mode objects and no inline caches")
		noAnlz    = flag.Bool("disable-analyze", false, "recompute static early errors per execution instead of using the cached report (oracle)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range engines.All() {
			for _, v := range e.Versions {
				fmt.Printf("%-14s %-12s %-12s (%d seeded defects)\n",
					e.Name, v.Name, v.Build, len(engines.ActiveDefects(v)))
			}
		}
		return 0
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsrun [-engine E -version V] [-strict] file.js")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	opts := engines.RunOptions{Fuel: *fuel, Seed: 1,
		DisableResolve: *noResolve, DisableCompile: *noCompile,
		DisableShapes: *noShapes, DisableAnalyze: *noAnlz}
	tb := engines.ReferenceTestbed(*strict)
	if *engine != "" {
		v, ok := engines.FindVersion(*engine, *version)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine version %s/%s (try -list)\n", *engine, *version)
			return 1
		}
		tb = engines.Testbed{Version: v, Strict: *strict}
	}
	// Repetitions are for profiling workloads; only the last execution's
	// output and outcome are reported.
	var res engines.ExecResult
	for i := 0; i < *repeat || i == 0; i++ {
		res = tb.Run(string(src), opts)
	}
	fmt.Print(res.Output)
	if res.Outcome != engines.OutcomePass {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", res.Outcome, res.Error)
		return 1
	}
	return 0
}
