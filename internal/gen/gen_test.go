package gen

import (
	"math/rand"
	"testing"

	"comfort/internal/corpus"
	"comfort/internal/js/lint"
	"comfort/internal/lm"
)

func pipeline() *Pipeline {
	return New(lm.Train(corpus.Programs(), corpus.Headers(), lm.Config{Arch: lm.ArchGPT2}))
}

func TestBatchKeepsSomeInvalid(t *testing.T) {
	p := pipeline()
	rng := rand.New(rand.NewSource(3))
	batch := p.Batch(300, rng)
	valid, invalid := 0, 0
	for _, prog := range batch {
		if prog.Valid != lint.Valid(prog.Source) {
			t.Error("Valid flag disagrees with the linter")
		}
		if prog.Valid {
			valid++
		} else {
			invalid++
		}
	}
	if valid == 0 {
		t.Error("no valid programs")
	}
	// The paper keeps ~20% of invalid generations for parser fuzzing; with
	// a mostly-valid generator some invalid programs must still slip in.
	if invalid == 0 {
		t.Error("the 20%-invalid-kept rule produced nothing")
	}
	t.Logf("batch: %d valid, %d invalid", valid, invalid)
}

func TestNextDeterminism(t *testing.T) {
	p := pipeline()
	a := p.Next(rand.New(rand.NewSource(9)))
	b := p.Next(rand.New(rand.NewSource(9)))
	if a.Source != b.Source || a.Valid != b.Valid {
		t.Error("Next must be deterministic per seed")
	}
}
