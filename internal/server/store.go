// The persistent job store. Layout under the data root:
//
//	jobs/<id>/spec.json        the submitted Spec, written once
//	jobs/<id>/status.json      the Status, rewritten on every transition
//	jobs/<id>/checkpoint.json  the campaign.State (written by the campaign)
//	jobs/<id>/result.json      the final Accounting, written on completion
//
// Every write is atomic (temp file + rename in the target directory), so
// a SIGKILL at any instant leaves each file either absent, old or new —
// never torn — and the supervisor reconstructs the entire queue from this
// directory alone on startup.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Store is the on-disk job queue.
type Store struct {
	root string
}

// OpenStore opens (creating if needed) a data directory.
func OpenStore(root string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(root, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("open store: %w", err)
	}
	return &Store{root: root}, nil
}

// Root returns the data directory path.
func (s *Store) Root() string { return s.root }

func (s *Store) jobDir(id string) string { return filepath.Join(s.root, "jobs", id) }

// CheckpointPath is where a job's campaign persists its checkpoint.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.jobDir(id), "checkpoint.json")
}

// ResultPath is where a job's final accounting lands.
func (s *Store) ResultPath(id string) string {
	return filepath.Join(s.jobDir(id), "result.json")
}

// jobID renders a sequence number as a job ID; IDs sort in submission
// order both lexically and numerically.
func jobID(seq int) string { return fmt.Sprintf("job-%06d", seq) }

// seqOf parses a job ID back to its sequence number.
func seqOf(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// writeAtomic stages data in a temp file and renames it over path — the
// same crash-safe discipline as campaign.WriteState.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stage-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return writeAtomic(path, append(data, '\n'))
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// CreateJob persists a new job: its directory, spec and initial status.
// The directory create is plain Mkdir, not MkdirAll: it doubles as the
// cross-instance arbiter for sequence numbers — two instances submitting
// concurrently cannot both create job-NNNNNN, the loser sees fs.ErrExist
// and retries with the next sequence.
func (s *Store) CreateJob(st Status, sp Spec) error {
	dir := s.jobDir(st.ID)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "spec.json"), sp); err != nil {
		return err
	}
	return s.WriteStatus(st)
}

// WriteStatus atomically rewrites a job's status file.
func (s *Store) WriteStatus(st Status) error {
	return writeJSON(filepath.Join(s.jobDir(st.ID), "status.json"), st)
}

// WriteResult atomically writes a job's final accounting bytes.
func (s *Store) WriteResult(id string, data []byte) error {
	return writeAtomic(s.ResultPath(id), data)
}

// ReadResult returns a job's final accounting bytes, or nil when the job
// has not completed.
func (s *Store) ReadResult(id string) []byte {
	data, err := os.ReadFile(s.ResultPath(id))
	if err != nil {
		return nil
	}
	return data
}

// JobRecord is one reconstructed job.
type JobRecord struct {
	Spec   Spec
	Status Status
}

// LoadJobs reconstructs every job from disk in submission (sequence)
// order and reports the highest sequence number seen. Directories with a
// torn or missing spec are skipped and reported as warnings rather than
// failing the whole startup — one corrupt job must not hold the queue
// hostage.
func (s *Store) LoadJobs() (jobs []JobRecord, maxSeq int, warnings []string, err error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, 0, nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		seq, ok := seqOf(id)
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: not a job directory, skipped", id))
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		var rec JobRecord
		if err := readJSON(filepath.Join(s.jobDir(id), "spec.json"), &rec.Spec); err != nil {
			warnings = append(warnings, fmt.Sprintf("%s: unreadable spec (%v), skipped", id, err))
			continue
		}
		if err := readJSON(filepath.Join(s.jobDir(id), "status.json"), &rec.Status); err != nil {
			// A kill between spec and first status write: reconstruct the
			// initial status from the spec.
			rec.Status = Status{State: StateQueued, CasesTotal: rec.Spec.Cases}
		}
		rec.Status.ID = id
		rec.Status.Seq = seq
		rec.Status.CasesTotal = rec.Spec.Cases
		jobs = append(jobs, rec)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Status.Seq < jobs[j].Status.Seq })
	return jobs, maxSeq, warnings, nil
}
