package comfort

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// benchHistory mirrors the BENCH_*.json trajectory files — the
// machine-readable throughput records each perf PR appends to (the
// human-readable analysis lives in EXPERIMENTS.md).
type benchHistory struct {
	Benchmark string `json:"benchmark"`
	Metric    string `json:"metric"`
	Shape     string `json:"shape"`
	History   []struct {
		PR          int     `json:"pr"`
		ExecsPerSec float64 `json:"execs_per_sec"`
		Note        string  `json:"note"`
	} `json:"history"`
}

// checkBenchJSON keeps one trajectory file parseable and coherent:
// strictly increasing PR numbers, positive measurements, and a trajectory
// that never ends below where it started — a PR that regresses its
// benchmark must say so in EXPERIMENTS.md, not silently corrupt the
// record.
func checkBenchJSON(t *testing.T, path, benchmark string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s unreadable: %v", path, err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var h benchHistory
	if err := dec.Decode(&h); err != nil {
		t.Fatalf("%s schema drift: %v", path, err)
	}
	if h.Benchmark != benchmark || h.Metric != "execs/sec" {
		t.Fatalf("unexpected benchmark/metric: %q / %q", h.Benchmark, h.Metric)
	}
	if len(h.History) == 0 {
		t.Fatal("empty history")
	}
	for i, e := range h.History {
		if e.ExecsPerSec <= 0 {
			t.Errorf("entry %d: non-positive measurement %v", i, e.ExecsPerSec)
		}
		if e.Note == "" {
			t.Errorf("entry %d: missing note", i)
		}
		if i > 0 && e.PR <= h.History[i-1].PR {
			t.Errorf("entry %d: PR numbers not strictly increasing (%d after %d)",
				i, e.PR, h.History[i-1].PR)
		}
	}
	if last, first := h.History[len(h.History)-1], h.History[0]; last.ExecsPerSec < first.ExecsPerSec {
		t.Errorf("trajectory ends below its start: %v < %v", last.ExecsPerSec, first.ExecsPerSec)
	}
}

func TestBenchCampaignJSON(t *testing.T) {
	checkBenchJSON(t, "BENCH_campaign.json", "BenchmarkCampaignThroughput")
}

func TestBenchServerJSON(t *testing.T) {
	checkBenchJSON(t, "BENCH_server.json", "BenchmarkServerLoad")
}
