package engines

import "sync"

// The defect catalog is the reproduction's ground truth: 158 seeded
// conformance defects whose engine / version / component / API-type /
// channel / triage distributions reproduce the paper's Tables 2-5 and
// Figure 7 exactly (asserted by catalog_test.go). Each defect carries a
// witness program proving it is behaviourally triggerable under
// differential testing.

var (
	catalogOnce sync.Once
	catalog     []*Defect
)

// Catalog returns all seeded defects across all engines.
func Catalog() []*Defect {
	catalogOnce.Do(func() {
		b := &catalogBuilder{}
		b.v8()
		b.chakraCore()
		b.jsc()
		b.spiderMonkey()
		b.rhino()
		b.nashorn()
		b.hermes()
		b.jerryScript()
		b.quickJS()
		b.graaljs()
		catalog = b.defects
	})
	return catalog
}

// DefectByID looks up a defect.
func DefectByID(id string) (*Defect, bool) {
	for _, d := range Catalog() {
		if d.ID == id {
			return d, true
		}
	}
	return nil, false
}

type catalogBuilder struct {
	defects []*Defect
}

func (b *catalogBuilder) add(d *Defect) *Defect {
	b.defects = append(b.defects, d)
	return d
}
