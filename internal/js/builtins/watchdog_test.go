package builtins

import (
	"testing"

	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// TestWatchdogDeadlineAbort pins the wall-clock watchdog contract: a probe
// that starts returning true aborts the run with AbortDeadline long before
// the fuel budget is exhausted, and the probe is polled once per
// WatchdogStride consumed steps.
func TestWatchdogDeadlineAbort(t *testing.T) {
	prog, err := parser.Parse(`while (true) {}`)
	if err != nil {
		t.Fatal(err)
	}
	fuel := int64(50 * interp.WatchdogStride)
	probes := 0
	in := NewRuntime(interp.Config{Fuel: fuel, Watchdog: func() bool {
		probes++
		return probes >= 3
	}})
	err = in.Run(prog)
	abort, ok := interp.IsAbort(err)
	if !ok || abort.Kind != interp.AbortDeadline {
		t.Fatalf("expected deadline abort, got %v", err)
	}
	if probes != 3 {
		t.Errorf("watchdog polled %d times before firing, want 3", probes)
	}
	// Three strides of fuel, give or take a stride for charge granularity.
	if used := in.FuelUsed(); used > 4*interp.WatchdogStride {
		t.Errorf("deadline abort consumed %d fuel, want ≈3 strides (%d)", used, 3*interp.WatchdogStride)
	}
	if interp.AbortDeadline.String() != "deadline" {
		t.Errorf("AbortDeadline renders as %q", interp.AbortDeadline)
	}
}

// TestWatchdogQuietWhenNotFiring: a never-true probe changes nothing — the
// program completes with its normal output, and probe frequency is bounded
// by consumed fuel / stride.
func TestWatchdogQuietWhenNotFiring(t *testing.T) {
	src := `var s = 0; for (var i = 0; i < 1000; i++) s += i; print(s);`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	probes := 0
	in := NewRuntime(interp.Config{Fuel: 2_000_000, Watchdog: func() bool {
		probes++
		return false
	}})
	if err := in.Run(prog); err != nil {
		t.Fatalf("watchdog-armed run failed: %v", err)
	}
	plain := run(t, src)
	if in.Out.String() != plain {
		t.Errorf("output differs with watchdog armed: %q vs %q", in.Out.String(), plain)
	}
	if maxProbes := int(in.FuelUsed()/interp.WatchdogStride) + 1; probes > maxProbes {
		t.Errorf("watchdog polled %d times for %d fuel (max %d)", probes, in.FuelUsed(), maxProbes)
	}
}

// TestWatchdogFiresOnFuelExhaustionFirst: when fuel runs out before the
// deadline, the abort is still the classic timeout — the watchdog never
// masks the deterministic fuel axis.
func TestWatchdogFuelStillPrimary(t *testing.T) {
	prog, err := parser.Parse(`while (true) {}`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewRuntime(interp.Config{Fuel: 10000, Watchdog: func() bool { return false }})
	err = in.Run(prog)
	abort, ok := interp.IsAbort(err)
	if !ok || abort.Kind != interp.AbortTimeout {
		t.Fatalf("expected fuel timeout abort, got %v", err)
	}
}
