package engines

import (
	"fmt"

	"comfort/internal/js/ast"
	"comfort/internal/js/compile"
	"comfort/internal/js/interp"
)

// This file is the panic-isolation layer: every physical interpreter run —
// the scheduler's behaviour-class executions, single-defect attribution
// and reduction replays, and the direct Run paths — funnels through
// runGuarded, so an evaluator panic anywhere in the interpreter surfaces
// as a classified OutcomeCrash result instead of killing the campaign
// process. An interpreter crash is a finding: the result is deduplicated,
// attributed and reported like any other divergence. The interpreter is
// deterministic, so a panicking (config, program, fuel, seed) combination
// panics identically — same message, same partial output, same fuel — on
// every run, which keeps the crash-as-finding results byte-identical
// across workers, shards and checkpoint resumes.

// runGuarded executes a (possibly thunk-compiled) program on the given
// runtime and classifies the outcome, converting evaluator panics into
// crash results. It is the shared tail of every executor in this package.
func runGuarded(in *interp.Interp, prog *ast.Program, opts RunOptions) (res ExecResult) {
	defer func() {
		if rec := recover(); rec != nil {
			res = ExecResult{
				Outcome:  OutcomeCrash,
				Output:   in.Out.String(),
				Error:    panicMessage(rec),
				ErrName:  "panic",
				FuelUsed: in.FuelUsed(),
				Panic:    true,
			}
		}
	}()
	runErr := runProgramInjected(in, prog, opts)
	res = ExecResult{Output: in.Out.String(), FuelUsed: in.FuelUsed()}
	res.ICHit, res.ICMiss, res.ICMega = in.ICStats()
	classifyRunError(&res, runErr)
	return res
}

// runProgramInjected is runProgram behind the fault-injection gate: an
// armed InjectPanic fires inside the guarded region, exactly where a real
// evaluator panic would originate.
func runProgramInjected(in *interp.Interp, prog *ast.Program, opts RunOptions) error {
	if opts.InjectPanic {
		panic("faultinject: injected evaluator panic")
	}
	if cp := compile.Of(prog); cp != nil && !opts.DisableCompile {
		return cp.Run(in)
	}
	return in.Run(prog)
}

// panicMessage renders a recovered panic value deterministically (runtime
// errors and string panics carry no addresses or timestamps).
func panicMessage(rec interface{}) string {
	return fmt.Sprintf("panic: %v", rec)
}
