// Package builtins installs the ECMAScript standard library into an
// interpreter instance: Object, Function, Array, String, Number, Boolean,
// Math, JSON, RegExp, Date, the Error hierarchy, typed arrays, DataView,
// eval and the global functions. Every builtin carries a canonical spec key
// (e.g. "String.prototype.substr") through which engine defects intercept it
// and the dedup tree classifies bug reports.
package builtins

import (
	"sync"

	"comfort/internal/js/interp"
)

// NewRuntime creates an interpreter with the full standard library.
func NewRuntime(cfg interp.Config) *interp.Interp {
	in := interp.New(cfg)
	Install(in)
	return in
}

// Native-method tables: the first Install runs a capture pass on a
// throwaway interpreter, recording every r.method registration into a
// frozen, realm-independent interp.NativeTable per receiver object (the
// method implementations only ever touch the interpreter passed at call
// time, never the realm that registered them — the receiver parameter
// shadows the installer's). Every later realm attaches the frozen table
// (one pointer, one key-slice append) instead of re-registering each
// method (a closure and a map insert per method per realm) — realm
// construction is the campaign scheduler's single hottest path.
var (
	tableOnce sync.Once
	// methodTables maps a method's canonical spec key to the frozen table
	// of its receiver object.
	methodTables map[string]*interp.NativeTable
)

func captureTables() {
	cap := &registry{
		in:        interp.New(interp.Config{}),
		capturing: map[*interp.Object]*interp.NativeTable{},
		captured:  map[string]*interp.NativeTable{},
	}
	installAll(cap)
	methodTables = cap.captured
}

// Install wires the standard library into in. It is idempotent per
// interpreter.
//
// Sections reachable only through a global binding (Math, JSON, Date and
// the typed-array family) are installed lazily on first access to any of
// their globals: realm construction is on the campaign scheduler's hottest
// path, and most generated programs touch none of them. Everything a
// literal or primitive can reach (Object/Function/Array/String/Number/
// Boolean/RegExp prototypes, the Error hierarchy, the global functions)
// stays eager.
func Install(in *interp.Interp) {
	tableOnce.Do(captureTables)
	r := &registry{in: in}
	installAll(r)
}

// installAll wires every stdlib section through the given registry (a
// normal realm, or the one-time table-capture pass).
func installAll(r *registry) {
	in := r.in

	// Bootstrap Object.prototype and Function.prototype first: everything
	// else hangs off them.
	objProto := in.NewObject(nil)
	in.Protos["Object"] = objProto
	fnProto := in.NewObject(objProto)
	fnProto.Class = "Function"
	in.Protos["Function"] = fnProto

	installObject(r)
	installFunction(r)
	// The Error hierarchy is deferred like the operator sections below;
	// unlike them it is also reachable from inside the interpreter (every
	// Throwf needs the error prototypes for classification), so the
	// interpreter's prototype-miss hook forces it too — per kind, so a
	// throwing realm installs just the base plus the kind it raised.
	in.ProtoMiss = installErrorsLazy(r, []string{
		"Error", "EvalError", "RangeError", "ReferenceError",
		"SyntaxError", "TypeError", "URIError", "InternalError",
	})
	installArray(r)
	installString(r)
	installNumber(r)
	installBoolean(r)
	installRegExp(r)
	installGlobals(r)

	lazySection(r, []string{"Math"}, installMath)
	lazySection(r, []string{"JSON"}, installJSON)
	lazySection(r, []string{"Date"}, installDate)
	lazySection(r, []string{
		"ArrayBuffer",
		"Int8Array", "Uint8Array", "Uint8ClampedArray",
		"Int16Array", "Uint16Array",
		"Int32Array", "Uint32Array",
		"Float32Array", "Float64Array",
		"DataView",
	}, installTypedArrays)
}

// lazySection defers one stdlib installer until any of its global names is
// touched; the installer runs at most once per realm. It returns the
// force-thunk so interpreter-internal consumers (the prototype-miss hook)
// can trigger the section without a global read. The capture pass installs
// immediately — its realm must register every method table.
func lazySection(r *registry, names []string, install func(*registry)) func() {
	if r.capturing != nil {
		install(r)
		return func() {}
	}
	installed := false
	thunk := func() {
		if installed {
			return
		}
		installed = true
		install(r)
	}
	for _, n := range names {
		r.in.Global.SetLazy(n, thunk)
	}
	return thunk
}

// registry carries shared helpers for the install functions.
type registry struct {
	in *interp.Interp
	// capturing/captured are set only during the one-time table-capture
	// pass: capturing groups entries by receiver object, captured indexes
	// the resulting tables by method spec key.
	capturing map[*interp.Object]*interp.NativeTable
	captured  map[string]*interp.NativeTable
}

// shortName strips the canonical spec key down to its final segment.
func shortName(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}

// fn creates a native function object with the canonical spec key name.
func (r *registry) fn(name string, arity int, f interp.NativeFunc) *interp.Object {
	return interp.NewNativeFunc(r.in.Protos["Function"], name, shortName(name), arity, f)
}

// method attaches a native method to obj under its short name. Function
// objects are built lazily on first access (a generated program touches a
// handful of the library's hundreds of methods); registration itself goes
// through the frozen per-object method tables, so a realm pays one table
// attachment per object instead of one closure + map insert per method.
// Materialisation order remains the registration order, and
// delete/overwrite interactions go through the lazy resolution in Object.
func (r *registry) method(obj *interp.Object, name string, arity int, f interp.NativeFunc) {
	short := shortName(name)
	if r.capturing != nil {
		t := r.capturing[obj]
		if t == nil {
			t = &interp.NativeTable{ByName: map[string]uint8{}}
			r.capturing[obj] = t
		}
		if len(t.Entries) >= interp.MaxNativeTableEntries {
			panic("builtins: method table overflow for " + name)
		}
		t.ByName[short] = uint8(len(t.Entries))
		t.Names = append(t.Names, short)
		t.Entries = append(t.Entries, interp.NativeTableEntry{SpecKey: name, Short: short, Arity: arity, Fn: f})
		r.captured[name] = t
		// Install eagerly on the capture realm so intra-install reads see
		// a complete object.
		obj.SetSlot(short, interp.ObjValue(r.fn(name, arity, f)), interp.Writable|interp.Configurable)
		return
	}
	if t, ok := methodTables[name]; ok {
		if obj.LazyTable() == nil {
			obj.AttachLazyTable(t, r.in.Protos["Function"])
		}
		return
	}
	// Not captured (dynamically named registration): per-method lazy slot.
	obj.SetLazy(short, func() {
		fo := r.fn(name, arity, f)
		obj.SetSlot(short, interp.ObjValue(fo), interp.Writable|interp.Configurable)
	})
}

// global binds a value on the global object.
func (r *registry) global(name string, v interp.Value) {
	r.in.Global.SetSlot(name, v, interp.Writable|interp.Configurable)
}

// globalFn binds a native function on the global object, building it
// lazily on first access like method does.
func (r *registry) globalFn(name string, arity int, f interp.NativeFunc) {
	r.in.Global.SetLazy(name, func() {
		r.global(name, interp.ObjValue(r.fn(name, arity, f)))
	})
}

// ctor creates a constructor function wired to a prototype object, registers
// both in the realm tables, and exposes the constructor globally.
func (r *registry) ctor(name string, arity int, proto *interp.Object,
	call, construct interp.NativeFunc) *interp.Object {
	c := r.fn(name, arity, call)
	c.Construct = construct
	c.SetSlot("prototype", interp.ObjValue(proto), 0)
	proto.SetSlot("constructor", interp.ObjValue(c), interp.Writable|interp.Configurable)
	r.in.Protos[name] = proto
	r.in.Ctors[name] = c
	r.global(name, interp.ObjValue(c))
	return c
}

// restArgs returns args[i:] or nil when fewer arguments were passed.
func restArgs(args []interp.Value, i int) []interp.Value {
	if i >= len(args) {
		return nil
	}
	return args[i:]
}

// arg returns args[i] or undefined.
func arg(args []interp.Value, i int) interp.Value {
	if i < len(args) {
		return args[i]
	}
	return interp.Undefined()
}

// requireObjectCoercible throws TypeError for null/undefined receivers.
func requireObjectCoercible(in *interp.Interp, v interp.Value, method string) error {
	if v.IsNullish() {
		return in.TypeErrorf("%s called on null or undefined", method)
	}
	return nil
}
