// Command comfort runs fuzzing campaigns and regenerates the paper's
// evaluation tables and figures.
//
// Usage:
//
//	comfort -cases 1000                 # full campaign + all tables
//	comfort -table 2 -cases 500         # one table
//	comfort -figure 8 -cases 300        # fuzzer comparison
//	comfort -figure 9 -n 200            # quality metrics
package main

import (
	"flag"
	"fmt"
	"os"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
		figure = flag.Int("figure", 0, "regenerate one figure (7-9); 0 = all")
		cases  = flag.Int("cases", 600, "test-case budget for campaigns")
		n      = flag.Int("n", 150, "programs per fuzzer for figure 9")
		seed   = flag.Int64("seed", 2021, "campaign seed")
		fuzzer = flag.String("fuzzer", "COMFORT", "fuzzer for single-fuzzer campaigns")
	)
	flag.Parse()

	needCampaign := *table >= 2 || *figure == 7 ||
		(*table == 0 && *figure == 0)
	var res *campaign.Result
	if needCampaign {
		f, ok := fuzzers.ByName(*fuzzer)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown fuzzer %q\n", *fuzzer)
			os.Exit(1)
		}
		fmt.Printf("running %s campaign: %d cases over %d testbeds...\n\n",
			f.Name(), *cases, len(engines.Testbeds()))
		res = campaign.Run(campaign.Config{
			Fuzzer:   f,
			Testbeds: engines.Testbeds(),
			Cases:    *cases,
			Seed:     *seed,
		})
		fmt.Printf("campaign done: %d cases, %d findings, %d duplicates filtered\n\n",
			res.CasesRun, len(res.Found), res.DuplicatesFiltered)
	}
	found := []*campaign.Defect{}
	if res != nil {
		found = res.FoundDefects()
	}

	show := func(id int, render func() string) {
		fmt.Println(render())
	}
	if *table == 1 || (*table == 0 && *figure == 0) {
		show(1, campaign.Table1)
	}
	if *table == 2 || (*table == 0 && *figure == 0) {
		show(2, func() string { return campaign.Table2(found) })
	}
	if *table == 3 || (*table == 0 && *figure == 0) {
		show(3, func() string { return campaign.Table3(found) })
	}
	if *table == 4 || (*table == 0 && *figure == 0) {
		show(4, func() string { return campaign.Table4(found) })
	}
	if *table == 5 || (*table == 0 && *figure == 0) {
		show(5, func() string { return campaign.Table5(found) })
	}
	if *figure == 7 || (*table == 0 && *figure == 0) {
		show(7, func() string { return campaign.Figure7(found) })
	}
	if *figure == 8 {
		out, _ := campaign.Figure8(*cases, *seed)
		fmt.Println(out)
	}
	if *figure == 9 {
		out, _ := campaign.Figure9(*n, *seed)
		fmt.Println(out)
	}
}
