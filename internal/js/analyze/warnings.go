package analyze

import (
	"fmt"

	"comfort/internal/js/ast"
)

// warnings runs the static quality passes (the JSHint-substitute layer
// lint.Check exposes): unused declarations, assignments in conditions,
// duplicate object keys, and unreachable statements. Output order is
// deterministic: the structural passes in tree walk order, then unused
// declarations in source order.
func warnings(prog *ast.Program, r *Report) {
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.IfStmt:
			if _, ok := v.Cond.(*ast.AssignExpr); ok {
				r.Warnings = append(r.Warnings, fmt.Sprintf("line %d: assignment in condition; did you mean ==?", v.Pos().Line))
			}
		case *ast.ObjectLit:
			seen := map[string]bool{}
			for _, p := range v.Props {
				if p.Computed || p.Kind != ast.PropInit {
					continue
				}
				if seen[p.Key] {
					r.Warnings = append(r.Warnings, fmt.Sprintf("line %d: duplicate object key %q", v.Pos().Line, p.Key))
				}
				seen[p.Key] = true
			}
		case *ast.BlockStmt:
			r.Warnings = append(r.Warnings, unreachable(v.Body)...)
		}
		return true
	})
	r.Warnings = append(r.Warnings, unusedWarnings(prog)...)
}

// unreachable flags statements following an unconditional control transfer.
func unreachable(body []ast.Stmt) []string {
	var out []string
	for i, s := range body {
		terminal := false
		switch s.(type) {
		case *ast.ReturnStmt, *ast.ThrowStmt, *ast.BreakStmt, *ast.ContinueStmt:
			terminal = true
		}
		if terminal && i+1 < len(body) {
			next := body[i+1]
			if _, isFn := next.(*ast.FuncDecl); !isFn {
				out = append(out, fmt.Sprintf("line %d: unreachable code", next.Pos().Line))
			}
			break
		}
	}
	return out
}

// The unused-declaration pass is scope-aware: a declaration counts as
// used only when some reference actually resolves to it through the
// lexical scope chain — var declarations hoist to their function scope,
// let/const bind in their block — so a name used only in a sibling
// function no longer masks an unused binding of the same name, and a
// shadowed outer binding is not marked used by references to its inner
// shadow.

type wdecl struct {
	name string
	used bool
}

type wscope struct {
	parent *wscope
	fn     bool // function or program scope: var declarations land here
	decls  map[string]*wdecl
}

type wref struct {
	sc   *wscope
	name string
}

// unusedWarnings reports declarations never referenced, in source order.
func unusedWarnings(prog *ast.Program) []string {
	u := &unused{}
	root := u.scope(nil, true)
	for _, s := range prog.Body {
		u.collect(s, root)
	}
	for _, ref := range u.refs {
		for s := ref.sc; s != nil; s = s.parent {
			if d, ok := s.decls[ref.name]; ok {
				d.used = true
				break
			}
		}
	}
	var out []string
	for _, d := range u.order {
		if !d.used {
			out = append(out, fmt.Sprintf("unused variable %q", d.name))
		}
	}
	return out
}

type unused struct {
	order []*wdecl
	refs  []wref
}

func (u *unused) scope(parent *wscope, fn bool) *wscope {
	return &wscope{parent: parent, fn: fn, decls: map[string]*wdecl{}}
}

func (u *unused) declare(name string, sc *wscope, hoist bool) {
	target := sc
	if hoist {
		for !target.fn {
			target = target.parent
		}
	}
	if _, ok := target.decls[name]; ok {
		return // redeclaration: one report per binding is enough
	}
	d := &wdecl{name: name}
	target.decls[name] = d
	u.order = append(u.order, d)
}

// collect builds the scope tree, recording declarations and references;
// resolution happens afterwards so hoisted and forward references work.
func (u *unused) collect(n ast.Node, sc *wscope) {
	switch v := n.(type) {
	case nil:
		return
	case *ast.VarDecl:
		for i := range v.Decls {
			d := &v.Decls[i]
			u.declare(d.Name, sc, v.Kind == ast.Var)
			if d.Init != nil {
				u.collect(d.Init, sc)
			}
		}
	case *ast.Ident:
		u.refs = append(u.refs, wref{sc: sc, name: v.Name})
	case *ast.FuncLit:
		inner := u.scope(sc, true)
		if v.ExprBody != nil {
			u.collect(v.ExprBody, inner)
		} else if v.Body != nil {
			for _, s := range v.Body.Body {
				u.collect(s, inner)
			}
		}
	case *ast.BlockStmt:
		inner := u.scope(sc, false)
		for _, s := range v.Body {
			u.collect(s, inner)
		}
	case *ast.ForStmt:
		head := u.scope(sc, false)
		for _, c := range ast.Children(v) {
			u.collect(c, head)
		}
	case *ast.ForInStmt:
		head := u.scope(sc, false)
		switch v.Decl {
		case ast.Let, ast.Const:
			u.declare(v.Name, head, false)
		case ast.Var:
			u.declare(v.Name, head, true)
		default:
			u.refs = append(u.refs, wref{sc: sc, name: v.Name})
		}
		u.collect(v.Obj, sc)
		u.collect(v.Body, head)
	case *ast.SwitchStmt:
		u.collect(v.Disc, sc)
		inner := u.scope(sc, false)
		for _, c := range v.Cases {
			for _, cc := range ast.Children(c) {
				u.collect(cc, inner)
			}
		}
	default:
		for _, c := range ast.Children(n) {
			u.collect(c, sc)
		}
	}
}
