package ast

import (
	"fmt"
	"strings"

	"comfort/internal/js/jsnum"
	"comfort/internal/js/token"
)

// Print renders the tree rooted at n back to JavaScript source. The output
// re-parses to an equivalent tree; sub-expressions are parenthesised
// conservatively rather than minimally.
func Print(n Node) string {
	var p printer
	p.node(n)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) ws(s string) { p.b.WriteString(s) }

func (p *printer) nl() {
	p.b.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.b.WriteString("  ")
	}
}

func (p *printer) node(n Node) {
	switch v := n.(type) {
	case *Program:
		for i, s := range v.Body {
			if i > 0 {
				p.nl()
			}
			p.stmt(s)
		}
	case Stmt:
		p.stmt(v)
	case Expr:
		p.expr(v)
	}
}

func (p *printer) stmt(s Stmt) {
	switch v := s.(type) {
	case *VarDecl:
		p.ws(v.Kind.String())
		p.ws(" ")
		for i, d := range v.Decls {
			if i > 0 {
				p.ws(", ")
			}
			p.ws(d.Name)
			if d.Init != nil {
				p.ws(" = ")
				p.assignRHS(d.Init)
			}
		}
		p.ws(";")
	case *FuncDecl:
		p.funcLit(v.Fn)
	case *ExprStmt:
		// Function and object expressions at statement position need parens.
		switch v.X.(type) {
		case *FuncLit, *ObjectLit:
			p.ws("(")
			p.expr(v.X)
			p.ws(")")
		default:
			p.expr(v.X)
		}
		p.ws(";")
	case *BlockStmt:
		p.block(v)
	case *IfStmt:
		p.ws("if (")
		p.expr(v.Cond)
		p.ws(") ")
		p.nested(v.Then)
		if v.Else != nil {
			p.ws(" else ")
			p.nested(v.Else)
		}
	case *ForStmt:
		p.ws("for (")
		switch init := v.Init.(type) {
		case *VarDecl:
			p.ws(init.Kind.String())
			p.ws(" ")
			for i, d := range init.Decls {
				if i > 0 {
					p.ws(", ")
				}
				p.ws(d.Name)
				if d.Init != nil {
					p.ws(" = ")
					p.assignRHS(d.Init)
				}
			}
		case Expr:
			p.expr(init)
		}
		p.ws("; ")
		if v.Cond != nil {
			p.expr(v.Cond)
		}
		p.ws("; ")
		if v.Post != nil {
			p.expr(v.Post)
		}
		p.ws(") ")
		p.nested(v.Body)
	case *ForInStmt:
		p.ws("for (")
		if v.Decl >= 0 {
			p.ws(v.Decl.String())
			p.ws(" ")
		}
		p.ws(v.Name)
		if v.Of {
			p.ws(" of ")
		} else {
			p.ws(" in ")
		}
		p.expr(v.Obj)
		p.ws(") ")
		p.nested(v.Body)
	case *WhileStmt:
		p.ws("while (")
		p.expr(v.Cond)
		p.ws(") ")
		p.nested(v.Body)
	case *DoWhileStmt:
		p.ws("do ")
		p.nested(v.Body)
		p.ws(" while (")
		p.expr(v.Cond)
		p.ws(");")
	case *SwitchStmt:
		p.ws("switch (")
		p.expr(v.Disc)
		p.ws(") {")
		p.indent++
		for _, c := range v.Cases {
			p.nl()
			if c.Test != nil {
				p.ws("case ")
				p.expr(c.Test)
				p.ws(":")
			} else {
				p.ws("default:")
			}
			p.indent++
			for _, s := range c.Body {
				p.nl()
				p.stmt(s)
			}
			p.indent--
		}
		p.indent--
		p.nl()
		p.ws("}")
	case *BreakStmt:
		p.ws("break")
		if v.Label != "" {
			p.ws(" " + v.Label)
		}
		p.ws(";")
	case *ContinueStmt:
		p.ws("continue")
		if v.Label != "" {
			p.ws(" " + v.Label)
		}
		p.ws(";")
	case *ReturnStmt:
		p.ws("return")
		if v.X != nil {
			p.ws(" ")
			p.expr(v.X)
		}
		p.ws(";")
	case *ThrowStmt:
		p.ws("throw ")
		p.expr(v.X)
		p.ws(";")
	case *TryStmt:
		p.ws("try ")
		p.block(v.Block)
		if v.Catch != nil {
			p.ws(" catch (")
			p.ws(v.CatchParam)
			p.ws(") ")
			p.block(v.Catch)
		}
		if v.Finally != nil {
			p.ws(" finally ")
			p.block(v.Finally)
		}
	case *LabeledStmt:
		p.ws(v.Label)
		p.ws(": ")
		p.stmt(v.Body)
	case *EmptyStmt:
		p.ws(";")
	case *DebuggerStmt:
		p.ws("debugger;")
	default:
		p.ws(fmt.Sprintf("/* unknown stmt %T */", s))
	}
}

// nested prints a statement used as a loop/if body, placing blocks inline
// and other statements on the same line.
func (p *printer) nested(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		p.block(b)
		return
	}
	p.stmt(s)
}

func (p *printer) block(b *BlockStmt) {
	p.ws("{")
	p.indent++
	for _, s := range b.Body {
		p.nl()
		p.stmt(s)
	}
	p.indent--
	p.nl()
	p.ws("}")
}

func (p *printer) funcLit(f *FuncLit) {
	if f.Arrow {
		p.ws("(")
		p.params(f)
		p.ws(") => ")
		if f.ExprBody != nil {
			// Object literals in arrow expression bodies need parentheses.
			if _, isObj := f.ExprBody.(*ObjectLit); isObj {
				p.ws("(")
				p.expr(f.ExprBody)
				p.ws(")")
			} else {
				p.assignRHS(f.ExprBody)
			}
			return
		}
		p.block(f.Body)
		return
	}
	p.ws("function")
	if f.Name != "" {
		p.ws(" " + f.Name)
	}
	p.ws("(")
	p.params(f)
	p.ws(") ")
	p.block(f.Body)
}

func (p *printer) params(f *FuncLit) {
	for i, prm := range f.Params {
		if i > 0 {
			p.ws(", ")
		}
		p.ws(prm)
	}
	if f.Rest != "" {
		if len(f.Params) > 0 {
			p.ws(", ")
		}
		p.ws("..." + f.Rest)
	}
}

// assignRHS prints an expression in assignment-value position, where a
// top-level sequence expression would change meaning without parentheses.
func (p *printer) assignRHS(e Expr) {
	if _, ok := e.(*SeqExpr); ok {
		p.ws("(")
		p.expr(e)
		p.ws(")")
		return
	}
	p.expr(e)
}

func (p *printer) expr(e Expr) {
	switch v := e.(type) {
	case *Ident:
		p.ws(v.Name)
	case *NumberLit:
		if v.Raw != "" {
			p.ws(v.Raw)
		} else {
			p.ws(jsnum.Format(v.Value))
		}
	case *StringLit:
		p.ws(QuoteJS(v.Value))
	case *BoolLit:
		if v.Value {
			p.ws("true")
		} else {
			p.ws("false")
		}
	case *NullLit:
		p.ws("null")
	case *RegexLit:
		p.ws("/" + v.Pattern + "/" + v.Flags)
	case *TemplateLit:
		p.ws("`")
		for i, q := range v.Quasis {
			p.ws(escapeTemplate(q))
			if i < len(v.Exprs) {
				p.ws("${")
				p.expr(v.Exprs[i])
				p.ws("}")
			}
		}
		p.ws("`")
	case *ArrayLit:
		p.ws("[")
		for i, el := range v.Elems {
			if i > 0 {
				p.ws(", ")
			}
			if el != nil {
				p.assignRHS(el)
			}
		}
		p.ws("]")
	case *ObjectLit:
		p.ws("{")
		for i, prop := range v.Props {
			if i > 0 {
				p.ws(", ")
			}
			switch prop.Kind {
			case PropGet:
				p.ws("get ")
			case PropSet:
				p.ws("set ")
			}
			if prop.Computed {
				p.ws("[")
				p.expr(prop.KeyExpr)
				p.ws("]")
			} else if isValidIdentName(prop.Key) {
				p.ws(prop.Key)
			} else {
				p.ws(QuoteJS(prop.Key))
			}
			if prop.Kind == PropInit {
				p.ws(": ")
				p.assignRHS(prop.Value)
			} else {
				fn := prop.Value.(*FuncLit)
				p.ws("(")
				p.params(fn)
				p.ws(") ")
				p.block(fn.Body)
			}
		}
		p.ws("}")
	case *FuncLit:
		p.funcLit(v)
	case *UnaryExpr:
		p.ws(v.Op.String())
		switch v.Op {
		case token.TYPEOF, token.VOID, token.DELETE:
			p.ws(" ")
		}
		p.paren(v.X)
	case *UpdateExpr:
		if v.Prefix {
			p.ws(v.Op.String())
			p.paren(v.X)
		} else {
			p.paren(v.X)
			p.ws(v.Op.String())
		}
	case *BinaryExpr:
		p.paren(v.L)
		p.ws(" " + v.Op.String() + " ")
		p.paren(v.R)
	case *LogicalExpr:
		p.paren(v.L)
		p.ws(" " + v.Op.String() + " ")
		p.paren(v.R)
	case *AssignExpr:
		p.expr(v.L)
		p.ws(" " + v.Op.String() + " ")
		p.assignRHS(v.R)
	case *CondExpr:
		p.paren(v.Cond)
		p.ws(" ? ")
		p.paren(v.Then)
		p.ws(" : ")
		p.paren(v.Else)
	case *CallExpr:
		p.callee(v.Callee)
		p.ws("(")
		for i, a := range v.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.assignRHS(a)
		}
		p.ws(")")
	case *NewExpr:
		p.ws("new ")
		p.callee(v.Callee)
		p.ws("(")
		for i, a := range v.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.assignRHS(a)
		}
		p.ws(")")
	case *MemberExpr:
		p.callee(v.Obj)
		if v.Computed {
			p.ws("[")
			p.expr(v.Prop)
			p.ws("]")
		} else {
			p.ws("." + v.Name)
		}
	case *SeqExpr:
		for i, x := range v.Exprs {
			if i > 0 {
				p.ws(", ")
			}
			p.paren(x)
		}
	case *SpreadExpr:
		p.ws("...")
		p.paren(v.X)
	case *ThisExpr:
		p.ws("this")
	default:
		p.ws(fmt.Sprintf("/* unknown expr %T */", e))
	}
}

// paren prints e, wrapping non-atomic expressions in parentheses. This is
// deliberately conservative: correctness over minimality.
func (p *printer) paren(e Expr) {
	switch e.(type) {
	case *Ident, *NumberLit, *StringLit, *BoolLit, *NullLit, *ThisExpr,
		*ArrayLit, *TemplateLit, *RegexLit, *CallExpr, *MemberExpr, *NewExpr:
		p.expr(e)
	default:
		p.ws("(")
		p.expr(e)
		p.ws(")")
	}
}

// callee prints an expression in callee/member-object position.
func (p *printer) callee(e Expr) {
	switch e.(type) {
	case *Ident, *CallExpr, *MemberExpr, *ThisExpr, *ArrayLit, *StringLit,
		*TemplateLit, *RegexLit:
		p.expr(e)
	default:
		p.ws("(")
		p.expr(e)
		p.ws(")")
	}
}

func escapeTemplate(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "`", "\\`")
	s = strings.ReplaceAll(s, "${", "\\${")
	return s
}

func isValidIdentName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !(r == '_' || r == '$' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')) {
				return false
			}
		} else if !(r == '_' || r == '$' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return token.Lookup(s) == token.IDENT
}

// QuoteJS renders s as a double-quoted JavaScript string literal.
func QuoteJS(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString("\\\"")
		case '\\':
			b.WriteString("\\\\")
		case '\n':
			b.WriteString("\\n")
		case '\r':
			b.WriteString("\\r")
		case '\t':
			b.WriteString("\\t")
		case '\b':
			b.WriteString("\\b")
		case '\f':
			b.WriteString("\\f")
		case '\v':
			b.WriteString("\\v")
		case 0:
			b.WriteString("\\0")
		default:
			if r < 0x20 {
				b.WriteString(fmt.Sprintf("\\x%02x", r))
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
