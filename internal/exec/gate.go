// A Gate bounds physical executions across schedulers. One Scheduler
// already caps its own concurrency with Config.Workers; when several
// campaigns run side by side in one process (internal/server's shared
// worker pool), each campaign's workers additionally acquire a slot from a
// process-wide Gate around every physical run, so the machine's execution
// parallelism stays bounded no matter how many campaigns are admitted.
// The gate bounds *concurrency*, never *order*: the case stream, the
// outcome order and all accounting are unchanged by gating, so findings
// remain byte-identical with and without a gate (the determinism contract
// treats the gate exactly like the worker count).
package exec

import "context"

// Gate is a shared execution-slot pool. Acquire blocks until a slot is
// free or ctx is cancelled; every successful Acquire must be paired with
// exactly one Release. Implementations must be safe for concurrent use by
// many schedulers' workers.
type Gate interface {
	Acquire(ctx context.Context) error
	Release()
}

// chanGate is the channel-semaphore Gate.
type chanGate struct {
	slots chan struct{}
}

// NewGate returns a Gate with n concurrently-held slots; n <= 0 is
// clamped to 1.
func NewGate(n int) Gate {
	if n < 1 {
		n = 1
	}
	return &chanGate{slots: make(chan struct{}, n)}
}

func (g *chanGate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *chanGate) Release() {
	<-g.slots
}
