package engines

import (
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// v8 seeds the 4 V8 defects (Table 2: 4 submitted / 4 verified / 3 fixed /
// 1 in Test262; Table 3: all attributed to V8.5).
func (b *catalogBuilder) v8() {
	// The paper's Listing 1: defineProperty on a non-configurable array
	// length silently succeeds instead of throwing TypeError.
	b.add(&Defect{
		ID: "v8-001", Engine: "V8", AttrVersion: "V8.5",
		Component: Implementation, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "Listing 1: no TypeError when redefining non-configurable array length",
		Witness: `var foo = function() {
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", {value: 1, configurable: true});
  print("no throw");
};
foo();`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[1].Kind() == interp.KindString &&
				ctx.Args[1].Str() == "length" && ctx.Args[0].IsObject() && ctx.Args[0].Obj().IsArray()
		}, noThrow(interp.Undefined())),
	})
	// Strict-mode store to a frozen object does not throw.
	b.add(&Defect{
		ID: "v8-002", Engine: "V8", AttrVersion: "V8.5",
		Component: StrictModeComp, APIType: "Object", API: "propset",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		StrictOnly: true, WitnessStrict: true,
		Note: "strict mode: assignment to frozen object property is silently ignored",
		Witness: `"use strict";
var o = Object.freeze({a: 1});
o.a = 2;
print(o.a);`,
		Hook: onPropSet(func(ctx *interp.HookCtx) bool {
			return hasHiddenFlag(ctx.Obj, "frozen")
		}, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Handled: true}
		}),
	})
	// ToInt32 of negative fractional operands rounds instead of truncating
	// in the bitwise-OR fast path.
	b.add(&Defect{
		ID: "v8-003", Engine: "V8", AttrVersion: "V8.5",
		Component: CodeGen, APIType: "other", API: "Math.trunc",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "Math.trunc of negative fractions rounds toward -Infinity",
		Witness: `print(Math.trunc(-2.5), Math.trunc(-0.5));`,
		Hook: onAPI("Math.trunc", argNeg(0), retFn(func(ctx *interp.HookCtx) interp.Value {
			f := ctx.Args[0].Num()
			return interp.Number(float64(int64(f)) - boolToF(f != float64(int64(f))))
		})),
	})
	// Verified but unfixed (the V8 CodeGen bug still open at paper time):
	// parseInt mishandles radix 16 detection after a unary minus.
	b.add(&Defect{
		ID: "v8-004", Engine: "V8", AttrVersion: "V8.5",
		Component: CodeGen, APIType: "other", API: "parseInt",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "parseInt(\"-0x10\") parses as hex 0 instead of NaN-free -16",
		Witness: `print(parseInt("-0x10"));`,
		Hook: onAPI("parseInt", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(ctx.Args[0].Str(), "-0x")
		}, ret(interp.Number(0))),
	})
}

// graaljs seeds the 2 Graaljs defects (2/2/2/0).
func (b *catalogBuilder) graaljs() {
	// Shares the Listing-1 defineProperty bug with V8.
	b.add(&Defect{
		ID: "graal-001", Engine: "Graaljs", AttrVersion: "v20.1.0",
		Component: Implementation, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note: "Listing 1 (Graaljs variant): no TypeError for non-configurable length redefinition",
		Witness: `var arrobj = [0, 1];
Object.defineProperty(arrobj, "length", {value: 1, configurable: true});
print("no throw");`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[1].Kind() == interp.KindString &&
				ctx.Args[1].Str() == "length" && ctx.Args[0].IsObject() && ctx.Args[0].Obj().IsArray()
		}, noThrow(interp.Undefined())),
	})
	// Shares the Listing-5 TypedArray.set(string) bug with old JSC.
	b.add(&Defect{
		ID: "graal-002", Engine: "Graaljs", AttrVersion: "v20.1.0",
		Component: CodeGen, APIType: "TypedArray", API: "Uint8Array.prototype.set",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Listing 5 (Graaljs variant): TypedArray.set rejects String array-likes",
		Witness: `var e = '123';
var A = new Uint8Array(5);
A.set(e);
print(A);`,
		Hook: onAPI("Uint8Array.prototype.set", argString(0),
			throwE("TypeError", "invalid argument type in TypedArray.set")),
	})
}

// spiderMonkey seeds the 3 SpiderMonkey defects (3/3/3/0) — all fixed in
// later versions, attributed per Table 3 to v1.7, v38.3 and v52.9.
func (b *catalogBuilder) spiderMonkey() {
	// The paper's Listing 3: Uint32Array(3.14) throws TypeError instead of
	// converting via ToInteger. Present before v52.9.
	b.add(&Defect{
		ID: "sm-001", Engine: "SpiderMonkey", AttrVersion: "v1.7", FixedIn: "v52.9",
		Component: CodeGen, APIType: "TypedArray", API: "new Uint32Array",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		Note: "Listing 3: Uint32Array length not converted with ToInteger",
		Witness: `var foo = function(length) {
  var array = new Uint32Array(length);
  print(array.length);
};
var parameter = 3.14;
foo(parameter);`,
		Hook: onAPI("new Uint32Array", argFrac(0),
			throwE("TypeError", "invalid arguments")),
	})
	// String.prototype.repeat(0) returns " " instead of "".
	b.add(&Defect{
		ID: "sm-002", Engine: "SpiderMonkey", AttrVersion: "v38.3", FixedIn: "v60.1.1",
		Component: Implementation, APIType: "String", API: "String.prototype.repeat",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note:    "repeat(0) returns a single space instead of the empty string",
		Witness: `print("[" + "ab".repeat(0) + "]");`,
		Hook:    onAPI("String.prototype.repeat", argZero(0), ret(interp.String(" "))),
	})
	// isFinite coerces null to NaN (should be 0 → finite).
	b.add(&Defect{
		ID: "sm-003", Engine: "SpiderMonkey", AttrVersion: "v52.9", FixedIn: "gecko-dev",
		Component: Implementation, APIType: "other", API: "isFinite",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		Note:    "isFinite(null) returns false; ToNumber(null) must be +0",
		Witness: `print(isFinite(null));`,
		Hook:    onAPI("isFinite", argNull(0), ret(interp.Bool(false))),
	})
}

// hasHiddenFlag mirrors the builtins package's frozen/sealed marker.
func hasHiddenFlag(o *interp.Object, flag string) bool {
	return o != nil && o.HasOwn("__"+flag+"__")
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// lenientEvalHook marks eval parsing as lenient (accepting programs the
// spec rejects) — the Listing-7 defect family.
func lenientEvalHook(srcContains string) interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookEvalParse {
			return nil
		}
		if srcContains != "" && !strings.Contains(ctx.Src, srcContains) {
			return nil
		}
		return &interp.Override{Handled: true}
	}
}

// rejectSource builds a PreParse function flagging programs that contain a
// construct the defective parser cannot handle.
func rejectSource(substr, msg string) func(string) string {
	return func(src string) string {
		if strings.Contains(src, substr) {
			return msg
		}
		return ""
	}
}

// parserLenient returns a ParserOpts mutation.
func parserLenient(f func(*parser.Options)) func(*parser.Options) { return f }
