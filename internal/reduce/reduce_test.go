package reduce

import (
	"strings"
	"testing"
)

func TestReduceKeepsProperty(t *testing.T) {
	src := `var a = 1;
var b = 2;
var needle = "KEEP";
var c = 3;
print(needle);
print(a + b + c);`
	out := Reduce(src, func(s string) bool {
		return strings.Contains(s, `"KEEP"`)
	})
	if !strings.Contains(out, `"KEEP"`) {
		t.Fatalf("reduction lost the property:\n%s", out)
	}
	if strings.Contains(out, "a + b + c") {
		t.Errorf("unrelated statements should be removed:\n%s", out)
	}
	if len(out) >= len(src) {
		t.Errorf("no shrinkage: %d -> %d", len(src), len(out))
	}
}

func TestReduceFixpointInsideBlocks(t *testing.T) {
	src := `var foo = function() {
  var x = 1;
  var y = 2;
  print("BUG");
  print(x + y);
};
foo();`
	out := Reduce(src, func(s string) bool {
		return strings.Contains(s, `"BUG"`) && strings.Contains(s, "foo()")
	})
	if strings.Contains(out, "x + y") {
		t.Errorf("inner statements not reduced:\n%s", out)
	}
	if !strings.Contains(out, `"BUG"`) || !strings.Contains(out, "foo()") {
		t.Errorf("property lost:\n%s", out)
	}
}

func TestReduceSimplifiesStructures(t *testing.T) {
	src := `if (true) {
  print("BUG");
}`
	out := Reduce(src, func(s string) bool { return strings.Contains(s, `"BUG"`) })
	if strings.Contains(out, "if") {
		t.Errorf("if wrapper should be simplified away:\n%s", out)
	}
}

func TestReduceNonReproducingInputUnchanged(t *testing.T) {
	src := `print(1);`
	if out := Reduce(src, func(string) bool { return false }); out != src {
		t.Errorf("non-reproducing input must be returned unchanged")
	}
}

func TestReduceUnparseableInputUnchanged(t *testing.T) {
	src := `var = broken(`
	if out := Reduce(src, func(string) bool { return true }); out != src {
		t.Errorf("unparseable input must be returned unchanged, got %q", out)
	}
}
