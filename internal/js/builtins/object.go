package builtins

import (
	"comfort/internal/js/interp"
)

func installObject(r *registry) {
	in := r.in
	objProto := in.Protos["Object"]

	objectCall := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if v.IsNullish() {
			return interp.ObjValue(in.NewObject(in.Protos["Object"])), nil
		}
		o, err := in.ToObject(v)
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.ObjValue(o), nil
	}
	ctor := r.ctor("Object", 1, objProto, objectCall, objectCall)

	r.method(ctor, "Object.keys", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		arr := in.NewArray(nil)
		for _, k := range o.EnumerableKeys() {
			arr.AppendElem(interp.String(k))
		}
		return interp.ObjValue(arr), nil
	})

	r.method(ctor, "Object.values", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		arr := in.NewArray(nil)
		for _, k := range o.EnumerableKeys() {
			v, err := in.GetPropKey(interp.ObjValue(o), k)
			if err != nil {
				return interp.Undefined(), err
			}
			arr.AppendElem(v)
		}
		return interp.ObjValue(arr), nil
	})

	r.method(ctor, "Object.entries", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		arr := in.NewArray(nil)
		for _, k := range o.EnumerableKeys() {
			v, err := in.GetPropKey(interp.ObjValue(o), k)
			if err != nil {
				return interp.Undefined(), err
			}
			pair := in.NewArray([]interp.Value{interp.String(k), v})
			arr.AppendElem(interp.ObjValue(pair))
		}
		return interp.ObjValue(arr), nil
	})

	r.method(ctor, "Object.assign", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		target, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		for _, src := range args[1:] {
			if src.IsNullish() {
				continue
			}
			so, err := in.ToObject(src)
			if err != nil {
				return interp.Undefined(), err
			}
			for _, k := range so.EnumerableKeys() {
				v, err := in.GetPropKey(src, k)
				if err != nil {
					return interp.Undefined(), err
				}
				if err := in.SetProp(interp.ObjValue(target), k, v, true); err != nil {
					return interp.Undefined(), err
				}
			}
		}
		return interp.ObjValue(target), nil
	})

	r.method(ctor, "Object.freeze", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if !v.IsObject() {
			return v, nil
		}
		o := v.Obj()
		o.Extensible = false
		for _, k := range o.OwnKeys() {
			if p, ok := o.GetOwnProperty(k); ok {
				p.Attr &^= interp.Writable | interp.Configurable
				o.DefineOwn(k, p)
			}
		}
		setFrozenFlag(o, "frozen")
		return v, nil
	})

	r.method(ctor, "Object.isFrozen", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if !v.IsObject() {
			return interp.Bool(true), nil
		}
		return interp.Bool(hasFrozenFlag(v.Obj(), "frozen")), nil
	})

	r.method(ctor, "Object.seal", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if !v.IsObject() {
			return v, nil
		}
		o := v.Obj()
		o.Extensible = false
		for _, k := range o.OwnKeys() {
			if p, ok := o.GetOwnProperty(k); ok {
				p.Attr &^= interp.Configurable
				o.DefineOwn(k, p)
			}
		}
		setFrozenFlag(o, "sealed")
		return v, nil
	})

	r.method(ctor, "Object.isSealed", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if !v.IsObject() {
			return interp.Bool(true), nil
		}
		o := v.Obj()
		return interp.Bool(hasFrozenFlag(o, "sealed") || hasFrozenFlag(o, "frozen")), nil
	})

	r.method(ctor, "Object.preventExtensions", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if v.IsObject() {
			v.Obj().Extensible = false
		}
		return v, nil
	})

	r.method(ctor, "Object.isExtensible", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		return interp.Bool(v.IsObject() && v.Obj().Extensible), nil
	})

	r.method(ctor, "Object.create", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		protoArg := arg(args, 0)
		var proto *interp.Object
		switch {
		case protoArg.IsNull():
			proto = nil
		case protoArg.IsObject():
			proto = protoArg.Obj()
		default:
			return interp.Undefined(), in.TypeErrorf("Object prototype may only be an Object or null")
		}
		o := in.NewObject(proto)
		if props := arg(args, 1); props.IsObject() {
			for _, k := range props.Obj().EnumerableKeys() {
				descV, err := in.GetPropKey(props, k)
				if err != nil {
					return interp.Undefined(), err
				}
				if err := defineFromDescriptor(in, o, k, descV); err != nil {
					return interp.Undefined(), err
				}
			}
		}
		return interp.ObjValue(o), nil
	})

	r.method(ctor, "Object.getPrototypeOf", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if o.Proto == nil {
			return interp.Null(), nil
		}
		return interp.ObjValue(o.Proto), nil
	})

	r.method(ctor, "Object.setPrototypeOf", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if err := requireObjectCoercible(in, v, "Object.setPrototypeOf"); err != nil {
			return interp.Undefined(), err
		}
		protoArg := arg(args, 1)
		if v.IsObject() {
			switch {
			case protoArg.IsNull():
				v.Obj().Proto = nil
			case protoArg.IsObject():
				v.Obj().Proto = protoArg.Obj()
			default:
				return interp.Undefined(), in.TypeErrorf("Object prototype may only be an Object or null")
			}
		}
		return v, nil
	})

	r.method(ctor, "Object.getOwnPropertyNames", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		arr := in.NewArray(nil)
		for _, k := range o.OwnKeys() {
			arr.AppendElem(interp.String(k))
		}
		if o.IsArray() || (o.Class == "String" && o.HasPrim) {
			arr.AppendElem(interp.String("length"))
		}
		return interp.ObjValue(arr), nil
	})

	r.method(ctor, "Object.defineProperty", 3, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		target := arg(args, 0)
		if !target.IsObject() {
			return interp.Undefined(), in.TypeErrorf("Object.defineProperty called on non-object")
		}
		key, err := in.ToPropertyKey(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		if err := defineFromDescriptor(in, target.Obj(), key, arg(args, 2)); err != nil {
			return interp.Undefined(), err
		}
		return target, nil
	})

	r.method(ctor, "Object.defineProperties", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		target := arg(args, 0)
		if !target.IsObject() {
			return interp.Undefined(), in.TypeErrorf("Object.defineProperties called on non-object")
		}
		props := arg(args, 1)
		if props.IsObject() {
			for _, k := range props.Obj().EnumerableKeys() {
				descV, err := in.GetPropKey(props, k)
				if err != nil {
					return interp.Undefined(), err
				}
				if err := defineFromDescriptor(in, target.Obj(), k, descV); err != nil {
					return interp.Undefined(), err
				}
			}
		}
		return target, nil
	})

	r.method(ctor, "Object.getOwnPropertyDescriptor", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		key, err := in.ToPropertyKey(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		p, ok := o.GetOwnProperty(key)
		if !ok {
			return interp.Undefined(), nil
		}
		desc := in.NewObject(in.Protos["Object"])
		if p.Accessor {
			desc.SetSlot("get", interp.ObjValue(p.Get), interp.DefaultAttr)
			desc.SetSlot("set", interp.ObjValue(p.Set), interp.DefaultAttr)
		} else {
			desc.SetSlot("value", p.Value, interp.DefaultAttr)
			desc.SetSlot("writable", interp.Bool(p.Attr&interp.Writable != 0), interp.DefaultAttr)
		}
		desc.SetSlot("enumerable", interp.Bool(p.Attr&interp.Enumerable != 0), interp.DefaultAttr)
		desc.SetSlot("configurable", interp.Bool(p.Attr&interp.Configurable != 0), interp.DefaultAttr)
		return interp.ObjValue(desc), nil
	})

	// Object.prototype methods.
	r.method(objProto, "Object.prototype.hasOwnProperty", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if err := requireObjectCoercible(in, this, "Object.prototype.hasOwnProperty"); err != nil {
			return interp.Undefined(), err
		}
		key, err := in.ToPropertyKey(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		o, err := in.ToObject(this)
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(o.HasOwn(key)), nil
	})

	r.method(objProto, "Object.prototype.isPrototypeOf", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		if !v.IsObject() || !this.IsObject() {
			return interp.Bool(false), nil
		}
		for cur := v.Obj().Proto; cur != nil; cur = cur.Proto {
			if cur == this.Obj() {
				return interp.Bool(true), nil
			}
		}
		return interp.Bool(false), nil
	})

	r.method(objProto, "Object.prototype.propertyIsEnumerable", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		key, err := in.ToPropertyKey(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		o, err := in.ToObject(this)
		if err != nil {
			return interp.Undefined(), err
		}
		p, ok := o.GetOwnProperty(key)
		return interp.Bool(ok && p.Attr&interp.Enumerable != 0), nil
	})

	r.method(objProto, "Object.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		switch this.Kind() {
		case interp.KindUndefined:
			return interp.String("[object Undefined]"), nil
		case interp.KindNull:
			return interp.String("[object Null]"), nil
		}
		o, err := in.ToObject(this)
		if err != nil {
			return interp.Undefined(), err
		}
		tag := o.Class
		switch tag {
		case "Arguments", "Array", "Function", "Error", "Boolean", "Number",
			"String", "Date", "RegExp":
		default:
			tag = "Object"
		}
		return interp.String("[object " + tag + "]"), nil
	})

	r.method(objProto, "Object.prototype.toLocaleString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		s, err := in.ToString(this)
		return interp.String(s), err
	})

	r.method(objProto, "Object.prototype.valueOf", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o, err := in.ToObject(this)
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.ObjValue(o), nil
	})
}

// frozen/sealed flags are stored as hidden internal properties.
func setFrozenFlag(o *interp.Object, flag string) { o.SetSlot("__"+flag+"__", interp.Bool(true), 0) }

func hasFrozenFlag(o *interp.Object, flag string) bool { return o.HasOwn("__" + flag + "__") }

// defineFromDescriptor implements ToPropertyDescriptor + DefineOwnProperty,
// the machinery behind Object.defineProperty. This is the site of the V8
// Listing-1 defect (failing to throw on a non-configurable redefinition).
func defineFromDescriptor(in *interp.Interp, o *interp.Object, key string, descV interp.Value) error {
	if !descV.IsObject() {
		return in.TypeErrorf("Property description must be an object")
	}
	desc := descV.Obj()
	p := &interp.Property{}
	get := func(name string) (interp.Value, bool, error) {
		if !desc.HasOwn(name) {
			return interp.Undefined(), false, nil
		}
		v, err := in.GetPropKey(descV, name)
		return v, true, err
	}
	if v, ok, err := get("value"); err != nil {
		return err
	} else if ok {
		p.Value = v
	}
	if v, ok, err := get("get"); err != nil {
		return err
	} else if ok && v.IsObject() {
		p.Accessor = true
		p.Get = v.Obj()
	}
	if v, ok, err := get("set"); err != nil {
		return err
	} else if ok && v.IsObject() {
		p.Accessor = true
		p.Set = v.Obj()
	}
	if v, ok, err := get("writable"); err != nil {
		return err
	} else if ok && interp.ToBoolean(v) {
		p.Attr |= interp.Writable
	}
	if v, ok, err := get("enumerable"); err != nil {
		return err
	} else if ok && interp.ToBoolean(v) {
		p.Attr |= interp.Enumerable
	}
	if v, ok, err := get("configurable"); err != nil {
		return err
	} else if ok && interp.ToBoolean(v) {
		p.Attr |= interp.Configurable
	}
	// One-way writable→false transition: a non-configurable data property
	// may still be made non-writable (ECMA-262 ValidateAndApplyPropertyDescriptor
	// step 4c). Needed for the RegExp.prototype.compile lastIndex rule.
	if existing, ok := o.GetOwnProperty(key); ok && !existing.Accessor && !p.Accessor &&
		existing.Attr&interp.Configurable == 0 && existing.Attr&interp.Writable != 0 &&
		desc.HasOwn("writable") && p.Attr&interp.Writable == 0 &&
		!(o.IsArray() && key == "length") {
		if desc.HasOwn("value") {
			existing.Value = p.Value
		}
		existing.Attr &^= interp.Writable
		return nil
	}
	// Array length special case: defineProperty(arr, "length", {value}) must
	// respect the non-configurability of length.
	if o.IsArray() && key == "length" {
		n, err := in.ToNumber(p.Value)
		if err != nil {
			return err
		}
		if p.Attr&interp.Configurable != 0 {
			// length is non-configurable; attempting to make it configurable
			// must throw (the Listing-1 conformance rule).
			return in.TypeErrorf("Cannot redefine property: length")
		}
		o.SetArrayLength(uint32(n))
		elems := o.ArrayElems()
		if int(uint32(n)) < len(elems) {
			o.SetArrayElems(elems[:uint32(n)])
		}
		return nil
	}
	if !o.DefineOwn(key, p) {
		return in.TypeErrorf("Cannot redefine property: %s", key)
	}
	return nil
}
