// Command jsreduce shrinks a bug-exposing test case while the divergence
// between an engine version and the reference persists (Section 3.5).
//
// Usage:
//
//	jsreduce -engine Rhino -version v1.7.12 testcase.js
//	jsreduce -engine V8 -version 8.4 -fuel 200000 -seed 2021 -workers 8 t.js
//
// -fuel and -seed must match the campaign that reported the divergence:
// reducing under a different budget can chase a different divergence than
// the one reported. -workers widens the reducer's speculative pool; the
// output is byte-identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/reduce"
)

func main() {
	var (
		engine  = flag.String("engine", "", "engine family")
		version = flag.String("version", "", "engine version or build")
		strict  = flag.Bool("strict", false, "strict-mode testbed")
		fuel    = flag.Int64("fuel", difftest.DefaultFuel, "interpreter step budget per execution (match the campaign's)")
		seed    = flag.Int64("seed", 1, "deterministic runtime seed (match the campaign's)")
		workers = flag.Int("workers", 0, "speculative reducer pool size; 0 = GOMAXPROCS")
	)
	flag.Parse()
	if flag.NArg() != 1 || *engine == "" {
		fmt.Fprintln(os.Stderr, "usage: jsreduce -engine E -version V [-strict] [-fuel N] [-seed N] [-workers N] file.js")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reduced, err := reduceSource(*engine, *version, *strict, *fuel, *seed, *workers, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(reduced)
	fmt.Fprintf(os.Stderr, "reduced %d bytes -> %d bytes\n", len(src), len(reduced))
}

// reduceSource resolves the testbed, prepares it and the reference once,
// and runs the parallel reducer over the divergence predicate.
func reduceSource(engine, version string, strict bool, fuel, seed int64, workers int, src string) (string, error) {
	v, ok := engines.FindVersion(engine, version)
	if !ok {
		return "", fmt.Errorf("unknown engine version %s/%s", engine, version)
	}
	p := engines.Testbed{Version: v, Strict: strict}.Prepare()
	ref := engines.ReferenceTestbed(strict).Prepare()
	diverges := engines.Diverges(p, ref, engines.RunOptions{Fuel: fuel, Seed: seed})
	if !diverges(src) {
		return "", fmt.Errorf("input does not diverge from the reference on that testbed")
	}
	return reduce.Parallel(src, diverges, reduce.Options{Workers: workers}), nil
}
