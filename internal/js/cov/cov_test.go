package cov

import (
	"testing"

	"comfort/internal/engines"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

func measure(t *testing.T, src string) Profile {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c := interp.NewCoverage()
	res := engines.Reference(src, false, engines.RunOptions{Fuel: 200000, Seed: 1, Cov: c})
	if res.Outcome != engines.OutcomePass {
		t.Fatalf("reference run failed: %s %s", res.Outcome, res.Error)
	}
	return Measure(prog, c)
}

func TestFullCoverage(t *testing.T) {
	p := measure(t, `var x = 1; print(x + 1);`)
	if p.StmtRate() != 1 {
		t.Errorf("straight-line code must be 100%% covered: %+v", p)
	}
}

func TestBranchCoverage(t *testing.T) {
	p := measure(t, `var x = 1;
if (x > 0) { print("pos"); } else { print("neg"); }`)
	// Only the then-arm executes: 1 of 2 branch arms.
	if p.BranchTotal != 2 || p.BranchHit != 1 {
		t.Errorf("branch accounting: %+v", p)
	}
	if p.StmtRate() == 1 {
		t.Error("the else arm's statement must be uncovered")
	}
}

func TestFunctionCoverage(t *testing.T) {
	p := measure(t, `function used() { return 1; }
function unused() { return 2; }
print(used());`)
	if p.FuncTotal != 2 || p.FuncHit != 1 {
		t.Errorf("function accounting: %+v", p)
	}
}

func TestMerge(t *testing.T) {
	a := Profile{StmtTotal: 10, StmtHit: 5, FuncTotal: 2, FuncHit: 1, BranchTotal: 4, BranchHit: 2}
	m := Merge(a, a)
	if m.StmtTotal != 20 || m.StmtHit != 10 || m.FuncRate() != 0.5 || m.BranchRate() != 0.5 {
		t.Errorf("merge: %+v", m)
	}
}

func TestEmptyProfileRates(t *testing.T) {
	var p Profile
	if p.StmtRate() != 1 || p.FuncRate() != 1 || p.BranchRate() != 1 {
		t.Error("nothing-to-cover must report full coverage (Istanbul convention)")
	}
}
