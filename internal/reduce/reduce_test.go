package reduce

import (
	"context"
	"strings"
	"testing"
)

// propertySources pairs multi-construct programs with the substring their
// predicate must preserve, exercising every candidate tier.
var propertySources = []struct {
	name, src, keep string
}{
	{
		name: "flat",
		src: `var a = 1;
var b = 2;
var needle = "KEEP";
var c = 3;
print(needle);
print(a + b + c);`,
		keep: "KEEP",
	},
	{
		name: "nested",
		src: `var unrelated = [1, 2, 3].map(function(x) { return x * 2; });
function helper(n) {
  return n + 1;
}
var foo = function() {
  var counter = 0;
  for (var i = 0; i < 3; i++) {
    counter += helper(i);
  }
  if (counter > 1) {
    print("KEEP");
  } else {
    print("other");
  }
  return counter;
};
foo();
print(unrelated.join(","));`,
		keep: "KEEP",
	},
	{
		name: "structured",
		src: `var x = 0;
while (x < 2) {
  x++;
  try {
    print("KEEP");
  } catch (e) {
    print(e);
  }
}
switch (x) {
case 1:
  print("one");
  break;
default:
  print("many");
}`,
		keep: "KEEP",
	},
}

// TestReduceOutputSatisfiesPredicate pins the reducer's core contract: the
// result of a reduction always satisfies the predicate that drove it.
func TestReduceOutputSatisfiesPredicate(t *testing.T) {
	for _, tc := range propertySources {
		t.Run(tc.name, func(t *testing.T) {
			pred := func(s string) bool { return strings.Contains(s, tc.keep) }
			out := Reduce(tc.src, pred)
			if !pred(out) {
				t.Fatalf("reduced output lost the predicate:\n%s", out)
			}
			if len(out) >= len(tc.src) {
				t.Errorf("no shrinkage: %d -> %d bytes", len(tc.src), len(out))
			}
		})
	}
}

// TestReduceFixpoint pins idempotence: re-reducing a reduced witness
// changes nothing.
func TestReduceFixpoint(t *testing.T) {
	for _, tc := range propertySources {
		t.Run(tc.name, func(t *testing.T) {
			pred := func(s string) bool { return strings.Contains(s, tc.keep) }
			once := Reduce(tc.src, pred)
			twice := Reduce(once, pred)
			if once != twice {
				t.Errorf("not a fixpoint:\nonce:\n%s\ntwice:\n%s", once, twice)
			}
		})
	}
}

// TestReduceWorkerCountIndependence pins the speculative driver's
// determinism contract: the reduced output is byte-identical for every
// worker count, like the exec scheduler's.
func TestReduceWorkerCountIndependence(t *testing.T) {
	for _, tc := range propertySources {
		t.Run(tc.name, func(t *testing.T) {
			pred := func(s string) bool { return strings.Contains(s, tc.keep) }
			serial := Parallel(tc.src, pred, Options{Workers: 1})
			for _, w := range []int{2, 8} {
				wide := Parallel(tc.src, pred, Options{Workers: w})
				if wide != serial {
					t.Errorf("workers=%d diverged from workers=1:\nserial:\n%s\nwide:\n%s",
						w, serial, wide)
				}
			}
		})
	}
}

// TestReduceExpressionTier checks that call arguments and initialisers
// irrelevant to the predicate collapse to 0.
func TestReduceExpressionTier(t *testing.T) {
	src := `var setup = Math.pow(2, 10) + parseInt("42");
print(setup * 2, "KEEP");`
	out := Reduce(src, func(s string) bool { return strings.Contains(s, "KEEP") })
	if strings.Contains(out, "Math.pow") || strings.Contains(out, "parseInt") {
		t.Errorf("complex expressions should reduce to 0:\n%s", out)
	}
	if !strings.Contains(out, "KEEP") {
		t.Fatalf("property lost:\n%s", out)
	}
}

// TestReduceSplitsMultiDeclarators checks that splitting a multi-declarator
// var unlocks removal of the irrelevant declarators.
func TestReduceSplitsMultiDeclarators(t *testing.T) {
	src := `var a = 1, needle = "KEEP", z = 9;
print(needle);`
	out := Reduce(src, func(s string) bool { return strings.Contains(s, "KEEP") })
	if strings.Contains(out, "a = 1") || strings.Contains(out, "z = 9") {
		t.Errorf("irrelevant declarators should be removed after the split:\n%s", out)
	}
	if !strings.Contains(out, "KEEP") {
		t.Fatalf("property lost:\n%s", out)
	}
}

// TestReduceDropsElse checks the else-branch drop candidate.
func TestReduceDropsElse(t *testing.T) {
	src := `if (print("KEEP")) {
  print("then");
} else {
  print("irrelevant else");
}`
	out := Reduce(src, func(s string) bool { return strings.Contains(s, "KEEP") })
	if strings.Contains(out, "irrelevant else") {
		t.Errorf("else branch should be dropped:\n%s", out)
	}
	if !strings.Contains(out, "KEEP") {
		t.Fatalf("property lost:\n%s", out)
	}
}

// TestReduceNeverGrows pins the no-growth guarantee: when every committed
// intermediate (here a var split whose declarators are all load-bearing)
// fails to unlock a removal, the input is returned rather than a larger
// fixpoint.
func TestReduceNeverGrows(t *testing.T) {
	src := `var a = 1, b = 2;`
	out := Reduce(src, func(s string) bool {
		return strings.Contains(s, "a = 1") && strings.Contains(s, "b = 2")
	})
	if len(out) > len(src) {
		t.Errorf("reduction grew the witness: %d -> %d bytes:\n%s", len(src), len(out), out)
	}
	if out != src {
		t.Errorf("no removal possible, input should come back unchanged, got:\n%s", out)
	}
}

// TestReduceCancellation checks that a cancelled context returns the input
// (the best committed state so far) instead of hanging.
func TestReduceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := propertySources[0].src
	out := Parallel(src, func(s string) bool {
		return strings.Contains(s, "KEEP")
	}, Options{Workers: 4, Context: ctx})
	if out != src {
		t.Errorf("cancelled reduction should return the input unchanged, got:\n%s", out)
	}
}

func TestReduceKeepsProperty(t *testing.T) {
	src := `var a = 1;
var b = 2;
var needle = "KEEP";
var c = 3;
print(needle);
print(a + b + c);`
	out := Reduce(src, func(s string) bool {
		return strings.Contains(s, `"KEEP"`)
	})
	if !strings.Contains(out, `"KEEP"`) {
		t.Fatalf("reduction lost the property:\n%s", out)
	}
	if strings.Contains(out, "a + b + c") {
		t.Errorf("unrelated statements should be removed:\n%s", out)
	}
	if len(out) >= len(src) {
		t.Errorf("no shrinkage: %d -> %d", len(src), len(out))
	}
}

func TestReduceFixpointInsideBlocks(t *testing.T) {
	src := `var foo = function() {
  var x = 1;
  var y = 2;
  print("BUG");
  print(x + y);
};
foo();`
	out := Reduce(src, func(s string) bool {
		return strings.Contains(s, `"BUG"`) && strings.Contains(s, "foo()")
	})
	if strings.Contains(out, "x + y") {
		t.Errorf("inner statements not reduced:\n%s", out)
	}
	if !strings.Contains(out, `"BUG"`) || !strings.Contains(out, "foo()") {
		t.Errorf("property lost:\n%s", out)
	}
}

func TestReduceSimplifiesStructures(t *testing.T) {
	src := `if (true) {
  print("BUG");
}`
	out := Reduce(src, func(s string) bool { return strings.Contains(s, `"BUG"`) })
	if strings.Contains(out, "if") {
		t.Errorf("if wrapper should be simplified away:\n%s", out)
	}
}

func TestReduceNonReproducingInputUnchanged(t *testing.T) {
	src := `print(1);`
	if out := Reduce(src, func(string) bool { return false }); out != src {
		t.Errorf("non-reproducing input must be returned unchanged")
	}
}

func TestReduceUnparseableInputUnchanged(t *testing.T) {
	src := `var = broken(`
	if out := Reduce(src, func(string) bool { return true }); out != src {
		t.Errorf("unparseable input must be returned unchanged, got %q", out)
	}
}
