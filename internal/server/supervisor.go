// The supervisor: a crash-only scheduler for campaign jobs. Queued jobs
// run over a shared execution gate, at most MaxActive campaigns at a
// time; each run is panic-isolated, auto-resumes from its checkpoint,
// and on failure re-enters the queue under exponential backoff until its
// retry budget is exhausted and it is quarantined with the last error
// preserved. Every state transition is persisted atomically before the
// supervisor moves on, so the disk is always one rename behind the truth
// — the recovery invariant a SIGKILL at any instant cannot break.
//
// Several supervisors may share one store: each instance claims a job's
// lease before running it and fences every write with its lease epoch
// (lease.go), so at-most-one-writer holds even when two live processes
// disagree about who owns a job.
package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"comfort/internal/campaign"
	"comfort/internal/exec"
	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
)

// Options parameterises a Supervisor. The zero value of every field has a
// usable default; only Store is required.
type Options struct {
	Store *Store
	// InstanceID is this process's stable identity for job leases. Two
	// instances sharing a store must use distinct IDs; a restarted
	// process should reuse its old ID so it can reclaim its own leases
	// immediately instead of waiting out the TTL. Empty means "solo".
	InstanceID string
	// LeaseTTL is how long a job claim survives without renewal; a peer
	// may take over only after the deadline passes. 0 means 15s.
	LeaseTTL time.Duration
	// Heartbeat is the lease renewal + peer-scan interval. 0 means
	// LeaseTTL/3 — three missed renewals before a claim can be contested.
	Heartbeat time.Duration
	// HeartbeatSleep waits out one heartbeat interval, returning false if
	// ctx was cancelled first. Nil means a real timer; deterministic
	// tests park the loop and call maintain() directly.
	HeartbeatSleep func(ctx context.Context, d time.Duration) bool
	// PoolWorkers sizes the shared execution gate — the cross-campaign
	// bound on concurrent interpreter runs; 0 means GOMAXPROCS.
	PoolWorkers int
	// MaxActive bounds concurrently-running campaigns; 0 means 2.
	MaxActive int
	// QueueMax bounds the backlog (queued + backoff-waiting jobs).
	// Submissions past the bound are rejected with a retry-after signal —
	// admission control protects running jobs instead of degrading them.
	// 0 means 64.
	QueueMax int
	// MaxRetries is how many consecutive no-progress failures a job may
	// accumulate before quarantine; a run that advances the job's
	// accounted cases resets the count (crash-looping is the disease,
	// being killed mid-progress is not). 0 means 3.
	MaxRetries int
	// BackoffBase/BackoffMax shape the retry delay schedule (see
	// backoff.go); 0 means 1s / 1min.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Clock stamps status transitions, drives the campaigns'
	// checkpoint-interval/deadline axes, and times lease deadlines. Nil
	// stamps no timestamps and times leases on the system clock.
	Clock func() time.Time
	// Sleep waits out a backoff delay, returning false if ctx was
	// cancelled first. Nil means a real timer; tests inject an instant,
	// recording sleeper to pin the schedule.
	Sleep func(ctx context.Context, d time.Duration) bool
	// ProgressEvery is the campaigns' progress cadence in cases; 0 means
	// 64.
	ProgressEvery int
}

// Typed submission errors, surfaced by the HTTP layer as status codes.
var (
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server is draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("no such job")
	// ErrTerminal reports an operation on a job that already reached a
	// terminal state.
	ErrTerminal = errors.New("job already in a terminal state")
)

// QueueFullError rejects a submission over the admission bound, carrying
// the backpressure signal: how long the client should wait before
// retrying.
type QueueFullError struct {
	Backlog    int
	Limit      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full (%d jobs backlogged, limit %d); retry after %s",
		e.Backlog, e.Limit, e.RetryAfter)
}

// permanentError marks failures no retry can fix (corrupt checkpoints,
// fingerprint mismatches): the job is quarantined immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanentf(format string, args ...any) error {
	return &permanentError{err: fmt.Errorf(format, args...)}
}

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Job is one supervised campaign.
type Job struct {
	ID   string
	Seq  int
	Spec Spec
	hub  *hub

	mu        sync.Mutex
	status    Status
	cancelRun context.CancelFunc // non-nil while running
	cancelled bool               // operator requested cancellation
	// lease is this instance's claim on the job, nil when unclaimed or
	// lost; fenced marks a claim detected as lost (no write for the job
	// leaves this instance again until a successful re-claim).
	lease  *Lease
	fenced bool
}

// snapshot returns a copy of the job's status.
func (j *Job) snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// isFenced reports whether this instance has lost the job's claim.
func (j *Job) isFenced() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fenced
}

// noteProgress updates the in-memory case position from a progress
// sample (the persisted position lives in the checkpoint).
func (j *Job) noteProgress(done int) {
	j.mu.Lock()
	j.status.CasesDone = done
	j.mu.Unlock()
}

// campaignProgress renders a status as a stream progress payload.
func campaignProgress(st Status) campaign.Progress {
	return campaign.Progress{Done: st.CasesDone, Total: st.CasesTotal}
}

// Supervisor schedules jobs; see the package comment for the contract.
type Supervisor struct {
	opt      Options
	store    *Store
	gate     exec.Gate
	sleep    func(ctx context.Context, d time.Duration) bool
	hbSleep  func(ctx context.Context, d time.Duration) bool
	now      func() time.Time
	instance string
	ttl      time.Duration
	hb       time.Duration
	ctx      context.Context
	cancel   context.CancelFunc
	// killed emulates SIGKILL for the in-process crash oracle: once set,
	// no goroutine writes another byte to disk or transitions another
	// status — the process is "dead", only the checkpoints already
	// renamed into place survive.
	killed atomic.Bool
	// fences counts self-fencing events — writes this instance refused
	// because it detected a lost lease. Surfaced in /healthz.
	fences atomic.Int64
	// runHook, when set by a test, runs before each campaign attempt and
	// may fail the attempt without executing anything — the seam for
	// driving the retry/backoff/quarantine machinery deterministically.
	runHook func(*Job) error
	// writeGate, when set by a test, runs at the top of every fenced
	// write for the job and may block — the SIGSTOP-emulation seam: a
	// paused instance is one stuck between deciding to write and writing.
	writeGate func(jobID string)

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string        // all job IDs in sequence order
	queue    []string        // runnable job IDs
	queued   map[string]bool // membership index over queue
	active   int
	nextSeq  int
	draining bool
	wake     chan struct{}
	wg       sync.WaitGroup
	warnings []string
}

// NewSupervisor reconstructs the queue from the store and starts the
// scheduling loop. Jobs found in any non-terminal state — including
// "running", which only a dead or live-peer server leaves behind — are
// re-queued and auto-resume from their checkpoints, except jobs whose
// lease a live peer instance holds: those are mirrored read-only until
// the peer finishes, releases, or lets the lease expire.
func NewSupervisor(opt Options) (*Supervisor, error) {
	if opt.Store == nil {
		return nil, errors.New("server: Options.Store is required")
	}
	if opt.InstanceID == "" {
		opt.InstanceID = "solo"
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 15 * time.Second
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = opt.LeaseTTL / 3
	}
	if opt.PoolWorkers <= 0 {
		opt.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if opt.MaxActive <= 0 {
		opt.MaxActive = 2
	}
	if opt.QueueMax <= 0 {
		opt.QueueMax = 64
	}
	if opt.MaxRetries <= 0 {
		opt.MaxRetries = 3
	}
	if opt.BackoffBase <= 0 {
		opt.BackoffBase = time.Second
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = time.Minute
	}
	if opt.ProgressEvery <= 0 {
		opt.ProgressEvery = 64
	}
	s := &Supervisor{
		opt:      opt,
		store:    opt.Store,
		gate:     exec.NewGate(opt.PoolWorkers),
		sleep:    opt.Sleep,
		hbSleep:  opt.HeartbeatSleep,
		now:      opt.Clock,
		instance: opt.InstanceID,
		ttl:      opt.LeaseTTL,
		hb:       opt.Heartbeat,
		jobs:     map[string]*Job{},
		queued:   map[string]bool{},
		wake:     make(chan struct{}, 1),
	}
	if s.sleep == nil {
		s.sleep = defaultSleep
	}
	if s.hbSleep == nil {
		s.hbSleep = defaultSleep
	}
	if s.now == nil {
		s.now = time.Now //detlint:wallclock — lease deadlines default to the system clock
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	records, maxSeq, warnings, err := s.store.LoadJobs()
	if err != nil {
		return nil, err
	}
	s.warnings = warnings
	s.nextSeq = maxSeq + 1
	for _, rec := range records {
		j := &Job{ID: rec.Status.ID, Seq: rec.Status.Seq, Spec: rec.Spec, hub: newHub(), status: rec.Status}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if terminalState(j.status.State) {
			j.hub.close()
			continue
		}
		// A live peer's fresh claim means the job is being run elsewhere:
		// mirror it read-only. Everything else — no lease, a released or
		// expired one, a lease left by this instance's own prior
		// incarnation, even an unreadable one (the claim path quarantines
		// it with the actionable error) — is ours to recover: crash
		// (running), drain (interrupted) and lost backoff (waiting) all
		// collapse to queued and resume from the checkpoint.
		if lease, lerr := s.store.ReadLease(j.ID); lerr == nil && lease != nil &&
			lease.Instance != s.instance && lease.fresh(s.now()) {
			continue
		}
		j.status.State = StateQueued
		j.status.NextRetryMS = 0
		s.stamp(&j.status)
		s.persist(j)
		s.enqueueLocked(j.ID)
	}
	s.wg.Add(2)
	go s.loop()
	go s.leaseLoop()
	s.kick()
	return s, nil
}

// Warnings reports non-fatal startup findings (skipped corrupt job dirs).
func (s *Supervisor) Warnings() []string { return s.warnings }

// Instance returns this supervisor's stable lease identity.
func (s *Supervisor) Instance() string { return s.instance }

// LeasesHeld counts jobs whose lease this instance currently holds.
func (s *Supervisor) LeasesHeld() int {
	n := 0
	for _, j := range s.snapshotJobs() {
		j.mu.Lock()
		if j.lease != nil {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// Fences reports how many claims this instance has detected as lost and
// self-fenced (a healthy instance reports 0; growth means it keeps
// losing leases to peers — stalls, clock trouble, or a TTL too short).
func (s *Supervisor) Fences() int64 { return s.fences.Load() }

// defaultSleep waits out a backoff delay on a real timer.
func defaultSleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d) //detlint:wallclock — retry backoff legitimately waits wall time
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// stamp adds wall-clock metadata when a clock is configured.
func (s *Supervisor) stamp(st *Status) {
	if s.opt.Clock != nil {
		st.UpdatedAt = s.opt.Clock().UTC().Format(time.RFC3339)
	}
}

// persist writes a job's status unless the supervisor is "dead". A failed
// write never stops the supervisor (mirroring checkpoint-failure
// semantics); the state is re-persisted at the next transition. Used only
// for jobs this instance does not hold a lease for (startup collapse,
// quarantine of unclaimable jobs) — leased jobs persist via transition's
// fenced path.
func (s *Supervisor) persist(j *Job) {
	if s.killed.Load() {
		return
	}
	_ = s.store.WriteStatus(j.status)
}

// transition applies mutate under the job lock, stamps and persists the
// new status, and publishes it to stream subscribers. Terminal states
// close the job's hub after the final sample. When this instance holds
// the job's lease the status write is epoch-fenced; a fenced write
// reverts the in-memory mutation and publishes nothing — the peer that
// took the job over owns its story now.
func (s *Supervisor) transition(j *Job, mutate func(*Status)) Status {
	j.mu.Lock()
	if j.fenced {
		st := j.status
		j.mu.Unlock()
		return st
	}
	prev := j.status
	mutate(&j.status)
	s.stamp(&j.status)
	st := j.status
	leased := j.lease != nil
	j.mu.Unlock()
	if leased {
		err := s.fencedWrite(j, func() error { return s.store.WriteStatus(st) })
		if errors.Is(err, ErrFenced) {
			j.mu.Lock()
			j.status = prev
			j.mu.Unlock()
			return prev
		}
	} else {
		s.persist(j)
	}
	if !s.killed.Load() {
		j.hub.publish(Sample{JobID: j.ID, State: st.State, Progress: campaignProgress(st)})
		if terminalState(st.State) {
			j.hub.close()
		}
	}
	return st
}

func (s *Supervisor) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler: it admits queued jobs into free active slots.
func (s *Supervisor) loop() {
	defer s.wg.Done()
	for {
		s.dispatch()
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
	}
}

// enqueueLocked appends a job to the runnable queue unless it is already
// there. Caller holds s.mu.
func (s *Supervisor) enqueueLocked(id string) {
	if s.queued[id] {
		return
	}
	s.queued[id] = true
	s.queue = append(s.queue, id)
}

// dequeueLocked removes a job from the runnable queue. Caller holds s.mu.
func (s *Supervisor) dequeueLocked(id string) {
	if !s.queued[id] {
		return
	}
	delete(s.queued, id)
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
}

// dispatch admits runnable jobs into free active slots, highest priority
// first, submission order within a priority.
func (s *Supervisor) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.draining && s.active < s.opt.MaxActive && len(s.queue) > 0 {
		best := 0
		for i := 1; i < len(s.queue); i++ {
			c, b := s.jobs[s.queue[i]], s.jobs[s.queue[best]]
			if c == nil {
				continue
			}
			if b == nil || c.Spec.Priority > b.Spec.Priority ||
				(c.Spec.Priority == b.Spec.Priority && c.Seq < b.Seq) {
				best = i
			}
		}
		id := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		delete(s.queued, id)
		j := s.jobs[id]
		if j == nil || terminalState(j.snapshot().State) {
			continue
		}
		s.active++
		s.wg.Add(1)
		go s.runJob(j)
	}
}

// Submit validates and enqueues a new job, applying admission control:
// when the backlog is at the bound the submission is rejected with a
// QueueFullError rather than admitted to degrade running work. Sequence
// numbers are arbitrated across instances by the job directory create —
// a seq a peer claimed first is skipped and the next one tried.
//
// Persist first, publish second: the job enters s.jobs and the run
// queue only after store.CreateJob has won the cross-instance seq
// arbitration. Publishing before the directory create would open a
// window where, during a seq collision, this instance's dispatcher
// could claim a lease inside the peer-owned job-NNNNNN directory and
// run a different spec there — or a stale retry goroutine could write
// an unfenced status into it after the withdrawal.
func (s *Supervisor) Submit(sp Spec) (Status, error) {
	if err := sp.Validate(); err != nil {
		return Status{}, err
	}
	for {
		s.mu.Lock()
		if s.draining || s.ctx.Err() != nil {
			s.mu.Unlock()
			return Status{}, ErrDraining
		}
		backlog := len(s.queue)
		for _, id := range s.order {
			if s.jobs[id].snapshot().State == StateWaiting {
				backlog++
			}
		}
		if backlog >= s.opt.QueueMax {
			s.mu.Unlock()
			return Status{}, &QueueFullError{Backlog: backlog, Limit: s.opt.QueueMax, RetryAfter: s.opt.BackoffBase}
		}
		seq := s.nextSeq
		s.nextSeq++
		j := &Job{ID: jobID(seq), Seq: seq, Spec: sp, hub: newHub()}
		j.status = Status{ID: j.ID, Seq: seq, State: StateQueued, CasesTotal: sp.Cases}
		s.stamp(&j.status)
		s.mu.Unlock()

		err := s.store.CreateJob(j.status, sp)
		if errors.Is(err, fs.ErrExist) {
			// A peer instance claimed this sequence number first; the
			// next maintenance scan will adopt its job. Try the next seq.
			continue
		}
		if err != nil {
			return Status{}, fmt.Errorf("persist job: %w", err)
		}

		s.mu.Lock()
		if existing := s.jobs[j.ID]; existing != nil {
			// The maintenance scan adopted this job from disk between the
			// directory create and here — same job, keep the adopted entry
			// (subscribers may already be attached to its hub).
			s.mu.Unlock()
			s.kick()
			return existing.snapshot(), nil
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n := len(s.order); n > 1 && s.jobs[s.order[n-2]].Seq > seq {
			// A concurrent Submit with a higher seq persisted first; keep
			// the listing in sequence order.
			jobs := s.jobs
			sort.Slice(s.order, func(a, b int) bool { return jobs[s.order[a]].Seq < jobs[s.order[b]].Seq })
		}
		s.enqueueLocked(j.ID)
		s.mu.Unlock()
		s.kick()
		return j.snapshot(), nil
	}
}

// JobStatus returns one job's current status.
func (s *Supervisor) JobStatus(id string) (Status, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, false
	}
	return j.snapshot(), true
}

// List returns every job's status in submission order.
func (s *Supervisor) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Accounting returns a completed job's final accounting bytes (nil until
// completion).
func (s *Supervisor) Accounting(id string) []byte {
	return s.store.ReadResult(id)
}

// Subscribe attaches a progress subscriber to a job's stream.
func (s *Supervisor) Subscribe(id string) (*subscriber, bool) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, false
	}
	return j.hub.subscribe(), true
}

// Unsubscribe detaches a Subscribe'd subscriber.
func (s *Supervisor) Unsubscribe(id string, sub *subscriber) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		j.hub.unsubscribe(sub)
	}
}

// CancelJob cancels a job in any non-terminal state: running campaigns
// drain and flush a final checkpoint, queued/waiting jobs leave the
// queue. A job running on a live peer instance cannot be cancelled here
// — the attempt returns a PeerHeldError naming the holder. The
// checkpoint is retained, so a cancelled job's work is not lost —
// resubmitting the same spec on a fresh server could resume it.
func (s *Supervisor) CancelJob(id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	st := j.status.State
	cancelRun := j.cancelRun
	held := j.lease != nil
	if terminalState(st) {
		j.mu.Unlock()
		s.mu.Unlock()
		return ErrTerminal
	}
	j.cancelled = true
	j.mu.Unlock()
	s.dequeueLocked(id)
	s.mu.Unlock()

	switch {
	case held && cancelRun != nil:
		// The runner observes the cancellation and performs the terminal
		// transition after the campaign's final checkpoint flush.
		cancelRun()
	case held:
		s.transition(j, func(st *Status) { st.State = StateCancelled })
		s.releaseLease(j)
	default:
		// No claim held here. Take the lease (possible only when it is
		// absent, released, expired, or a prior incarnation's) and cancel
		// under it; a live peer's claim makes the cancel its to perform.
		if err := s.claimJob(j); err != nil {
			j.mu.Lock()
			j.cancelled = false
			j.mu.Unlock()
			if errors.Is(err, errLeaseBusy) {
				holder := "unknown"
				if cur, rerr := s.store.ReadLease(id); rerr == nil && cur != nil {
					holder = cur.Instance
				}
				return &PeerHeldError{Instance: holder}
			}
			if isPermanent(err) {
				s.quarantine(j, err)
				return nil
			}
			return err
		}
		s.transition(j, func(st *Status) { st.State = StateCancelled })
		s.releaseLease(j)
	}
	return nil
}

// Idle reports whether no job is queued, waiting or running.
func (s *Supervisor) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active > 0 || len(s.queue) > 0 {
		return false
	}
	for _, id := range s.order {
		if st := s.jobs[id].snapshot().State; st == StateWaiting || st == StateRunning || st == StateQueued {
			return false
		}
	}
	return true
}

// Shutdown drains gracefully: no new admissions, every running campaign
// is cancelled (each flushes a final checkpoint on its way out) and
// marked interrupted, every held lease is released so a peer can pick
// the work up immediately, and the call returns when every goroutine has
// exited. A subsequent NewSupervisor over the same store resumes all
// unfinished work.
func (s *Supervisor) Shutdown() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	for _, j := range s.snapshotJobs() {
		s.releaseLease(j)
	}
}

// kill emulates SIGKILL for the in-process crash-recovery oracle: every
// goroutine is abandoned mid-flight and — crucially — nothing is flushed,
// drained, released or transitioned on the way down. Only bytes already
// renamed into place survive, exactly the disk a real SIGKILL leaves
// behind (held leases stay on disk un-released and must expire).
func (s *Supervisor) kill() {
	s.killed.Store(true)
	s.cancel()
	s.wg.Wait()
}

// runJob is one attempt at one job: claim its lease, resume-or-run the
// campaign behind a recover() chokepoint, then route the outcome through
// the state machine. A job whose lease a live peer holds is mirrored and
// skipped; a job fenced mid-run is abandoned without a transition — the
// peer that took it over owns it now, and this instance burned no retry.
func (s *Supervisor) runJob(j *Job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		s.kick()
	}()

	j.mu.Lock()
	if j.cancelled || terminalState(j.status.State) {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	switch err := s.claimJob(j); {
	case err == nil:
	case errors.Is(err, errLeaseBusy):
		s.refreshFromDisk(j)
		return
	case isPermanent(err):
		s.quarantine(j, err)
		return
	default:
		s.retry(j, err, false)
		return
	}

	j.mu.Lock()
	if j.cancelled {
		j.mu.Unlock()
		s.transition(j, func(st *Status) { st.State = StateCancelled })
		s.releaseLease(j)
		return
	}
	runCtx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	j.cancelRun = cancel
	startCases := j.status.CasesDone
	epoch := j.lease.Epoch
	j.mu.Unlock()
	s.transition(j, func(st *Status) {
		st.State = StateRunning
		st.NextRetryMS = 0
		st.Instance = s.instance
		st.Epoch = epoch
	})

	res, err := s.runCampaign(runCtx, j)

	j.mu.Lock()
	j.cancelRun = nil
	userCancelled := j.cancelled
	fenced := j.fenced
	j.mu.Unlock()

	if s.killed.Load() {
		return // "dead": no transitions, no writes
	}
	if fenced {
		// The claim was lost mid-run: a peer owns the job and its
		// checkpoint now. Mirror whatever it publishes; no retry burned.
		s.refreshFromDisk(j)
		return
	}
	switch {
	case err != nil && isPermanent(err):
		s.quarantine(j, err)
		s.releaseLease(j)
	case err != nil:
		s.retry(j, err, res != nil && res.CasesRun > startCases)
	case res.CasesRun >= j.Spec.Cases:
		s.complete(j, res)
	case userCancelled:
		s.transition(j, func(st *Status) {
			st.State = StateCancelled
			st.CasesDone = res.CasesRun
		})
		s.releaseLease(j)
	case s.ctx.Err() != nil:
		// Graceful drain: the campaign flushed its final checkpoint; the
		// released lease lets a peer — or the next incarnation — resume
		// immediately.
		s.transition(j, func(st *Status) {
			st.State = StateInterrupted
			st.CasesDone = res.CasesRun
		})
		s.releaseLease(j)
	default:
		// The campaign stopped early without cancellation — an injected
		// kill plan or an exhausted generator. Treat as a crash: retry
		// from the checkpoint.
		s.retry(j, fmt.Errorf("campaign stopped at %d/%d cases", res.CasesRun, j.Spec.Cases),
			res.CasesRun > startCases)
	}
}

// runCampaign builds the campaign config from the job spec and runs it,
// resuming from the job's checkpoint when one exists. Checkpoint writes
// go through the lease fence — a stale instance's campaign cannot
// overwrite the checkpoint a peer is resuming from. All panics — the
// supervisor's own bugs included — surface as retryable errors, never as
// a dead server.
func (s *Supervisor) runCampaign(ctx context.Context, j *Job) (res *campaign.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job runner panic: %v", r)
		}
	}()
	if s.runHook != nil {
		if herr := s.runHook(j); herr != nil {
			return nil, herr
		}
	}
	f, ok := fuzzers.ByName(j.Spec.Fuzzer)
	if !ok {
		return nil, permanentf("unknown fuzzer %q", j.Spec.Fuzzer)
	}
	ckptPath := s.store.CheckpointPath(j.ID)
	cfg := campaign.Config{
		Fuzzer:          f,
		Testbeds:        j.Spec.testbeds(),
		Cases:           j.Spec.Cases,
		Seed:            j.Spec.Seed,
		Fuel:            j.Spec.Fuel,
		Workers:         j.Spec.Workers,
		GenShards:       j.Spec.GenShards,
		ReduceWitnesses: j.Spec.Reduce,
		DisableDedup:    j.Spec.DisableDedup,
		DisableResolve:  j.Spec.DisableResolve,
		DisableCompile:  j.Spec.DisableCompile,
		DisableShapes:   j.Spec.DisableShapes,
		DisableAnalyze:  j.Spec.DisableAnalyze,
		Context:         ctx,
		Gate:            s.gate,
		Clock:           s.opt.Clock,
		Checkpoint:      ckptPath,
		CheckpointEvery: j.Spec.CheckpointEvery,
		ProgressEvery:   s.opt.ProgressEvery,
		WriteCheckpoint: func(st *campaign.State) error {
			return s.fencedWrite(j, func() error { return campaign.WriteState(ckptPath, st) })
		},
		Progress: func(p campaign.Progress) {
			if j.isFenced() {
				return
			}
			j.noteProgress(p.Done)
			j.hub.publish(Sample{JobID: j.ID, State: StateRunning, Progress: p})
		},
	}
	if j.Spec.Faults != "" {
		fcfg, ferr := faultinject.Parse(j.Spec.Faults)
		if ferr != nil {
			return nil, permanentf("fault spec: %v", ferr)
		}
		cfg.Faults = faultinject.New(fcfg)
	}
	if _, serr := os.Stat(cfg.Checkpoint); serr == nil {
		st, lerr := campaign.LoadState(cfg.Checkpoint)
		if lerr != nil {
			return nil, permanentf("checkpoint unreadable: %v", lerr)
		}
		res, rerr := campaign.Resume(cfg, st)
		if rerr != nil {
			// Fingerprint mismatches arrive here with the diverging fields
			// spelled out by campaign.DiffFingerprints.
			return nil, permanentf("resume: %v", rerr)
		}
		return res, nil
	}
	return campaign.Run(cfg), nil
}

// retry schedules another attempt under backoff, or quarantines the job
// when its no-progress retry budget is spent. progressed resets the
// budget: a job that keeps advancing its checkpoint is being killed, not
// crash-looping. The lease is kept (and heartbeat-renewed) through the
// backoff so peers don't steal a job that is merely waiting; a drain
// releases it so they can.
func (s *Supervisor) retry(j *Job, cause error, progressed bool) {
	var delay time.Duration
	quarantined := false
	s.transition(j, func(st *Status) {
		if progressed {
			st.Retries = 0
		}
		st.Retries++
		if st.Retries > s.opt.MaxRetries {
			st.State = StateQuarantined
			st.LastError = fmt.Sprintf("%v (retries exhausted: %d failures without progress)", cause, st.Retries-1)
			quarantined = true
			return
		}
		delay = retryDelay(s.opt.BackoffBase, s.opt.BackoffMax, j.Seq, st.Retries)
		st.State = StateWaiting
		st.LastError = cause.Error()
		st.NextRetryMS = delay.Milliseconds()
	})
	if quarantined {
		s.releaseLease(j)
		return
	}
	if j.isFenced() {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		if s.killed.Load() {
			return
		}
		if s.sleep(s.ctx, delay) {
			s.requeue(j)
		} else {
			// Drain while waiting: hand the lease back so a peer (or the
			// next incarnation) retries without waiting out the TTL.
			s.releaseLease(j)
		}
	}()
}

// requeue returns a backoff-expired job to the queue.
func (s *Supervisor) requeue(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed.Load() {
		return
	}
	if s.draining {
		s.releaseLease(j)
		return
	}
	j.mu.Lock()
	skip := j.cancelled || j.fenced || terminalState(j.status.State)
	j.mu.Unlock()
	if skip {
		return
	}
	s.transition(j, func(st *Status) {
		st.State = StateQueued
		st.NextRetryMS = 0
	})
	s.enqueueLocked(j.ID)
	s.kick()
}

// quarantine parks a job terminally with its last error preserved.
func (s *Supervisor) quarantine(j *Job, cause error) {
	s.transition(j, func(st *Status) {
		st.State = StateQuarantined
		st.LastError = cause.Error()
	})
}

// complete records a finished campaign: the deterministic accounting is
// written first (the byte-identical artifact), then the terminal status.
// Both writes are fenced — an instance that lost the job while its final
// cases were in flight writes neither and lets the peer's run finish the
// job.
func (s *Supervisor) complete(j *Job, res *campaign.Result) {
	data, err := marshalAccounting(accountingOf(res))
	if err == nil {
		err = s.fencedWrite(j, func() error { return s.store.WriteResult(j.ID, data) })
	}
	if errors.Is(err, ErrFenced) {
		s.refreshFromDisk(j)
		return
	}
	s.transition(j, func(st *Status) {
		st.State = StateDone
		st.CasesDone = res.CasesRun
		st.Findings = len(res.Found)
		if err != nil {
			st.LastError = fmt.Sprintf("result write failed: %v", err)
		}
	})
	s.releaseLease(j)
}
