package lm

import (
	"math/rand"
	"strings"
	"testing"

	"comfort/internal/corpus"
	"comfort/internal/js/lint"
)

func TestTokenizeRoundTrip(t *testing.T) {
	for _, src := range corpus.Programs()[:10] {
		tokens := TokenizeCode(src)
		var b strings.Builder
		for _, tok := range tokens {
			b.WriteString(tok)
		}
		// Space runs collapse; everything else must round-trip.
		norm := func(s string) string {
			for strings.Contains(s, "  ") {
				s = strings.ReplaceAll(s, "  ", " ")
			}
			return strings.ReplaceAll(s, "\t", " ")
		}
		if norm(b.String()) != norm(src) {
			t.Errorf("tokenize round trip failed:\n%q\n%q", norm(src), norm(b.String()))
		}
	}
}

func trainDefault(t *testing.T, arch Arch) *Generator {
	t.Helper()
	return Train(corpus.Programs(), corpus.Headers(), Config{Arch: arch})
}

func TestGeneratorProducesParseableCode(t *testing.T) {
	g := trainDefault(t, ArchGPT2)
	rng := rand.New(rand.NewSource(7))
	valid := 0
	const n = 200
	for i := 0; i < n; i++ {
		src := g.Generate(rng)
		if src == "" {
			t.Fatal("empty generation")
		}
		if lint.Valid(src) {
			valid++
		}
	}
	rate := float64(valid) / n
	// The paper reports ~80% syntactic validity for the GPT-2 generator.
	if rate < 0.6 {
		t.Errorf("GPT-2-substitute validity %.2f, expected >= 0.6", rate)
	}
	t.Logf("gpt2 validity: %.2f", rate)
}

func TestLongContextBeatsShortContext(t *testing.T) {
	gpt := trainDefault(t, ArchGPT2)
	lstm := trainDefault(t, ArchLSTM)
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	const n = 150
	validGPT, validLSTM := 0, 0
	for i := 0; i < n; i++ {
		if lint.Valid(gpt.Generate(rngA)) {
			validGPT++
		}
		if lint.Valid(lstm.Generate(rngB)) {
			validLSTM++
		}
	}
	if validGPT <= validLSTM {
		t.Errorf("long-context model should beat short-context: gpt2 %d vs lstm %d of %d",
			validGPT, validLSTM, n)
	}
	t.Logf("validity gpt2=%d/%d lstm=%d/%d", validGPT, n, validLSTM, n)
}

func TestGenerationDeterminism(t *testing.T) {
	g := trainDefault(t, ArchGPT2)
	a := g.Generate(rand.New(rand.NewSource(3)))
	b := g.Generate(rand.New(rand.NewSource(3)))
	if a != b {
		t.Error("generation must be deterministic under a fixed seed")
	}
}

// TestFrozenMatchesMapGenerator is the generator-level differential
// oracle: for both architectures, programs generated on the frozen
// token-ID path must be byte-identical — same text, same sampled-token
// count, same RNG consumption — to the map-backed path, across many
// consecutive generations from one shared RNG (so any drift in draw
// counts desynchronises the streams and fails loudly).
func TestFrozenMatchesMapGenerator(t *testing.T) {
	for _, arch := range []Arch{ArchGPT2, ArchLSTM} {
		frozen := Train(corpus.Programs(), corpus.Headers(), Config{Arch: arch})
		mapped := Train(corpus.Programs(), corpus.Headers(), Config{Arch: arch, DisableFrozenLM: true})
		if !frozen.FrozenLM() || mapped.FrozenLM() {
			t.Fatalf("%s: frozen knob not honoured", arch)
		}
		for _, seed := range []int64{1, 42, 2021} {
			rngF := rand.New(rand.NewSource(seed))
			rngM := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				f, fn := frozen.GenerateFromN(corpus.Headers()[i%len(corpus.Headers())], rngF)
				m, mn := mapped.GenerateFromN(corpus.Headers()[i%len(corpus.Headers())], rngM)
				if f != m {
					t.Fatalf("%s seed %d gen %d: frozen and map programs differ:\n%q\nvs\n%q",
						arch, seed, i, f, m)
				}
				if fn != mn {
					t.Fatalf("%s seed %d gen %d: sampled-token counts differ: %d vs %d",
						arch, seed, i, fn, mn)
				}
			}
		}
	}
}

// TestFrozenHandlesUnknownHeaderTokens pins the out-of-vocabulary path:
// a header whose identifiers never occur in the corpus must round-trip
// its own text and still generate identically on both samplers.
func TestFrozenHandlesUnknownHeaderTokens(t *testing.T) {
	frozen := trainDefault(t, ArchGPT2)
	mapped := Train(corpus.Programs(), corpus.Headers(), Config{Arch: ArchGPT2, DisableFrozenLM: true})
	const header = "var zzUnknownZZ = qqNeverTrainedQQ + "
	for seed := int64(0); seed < 10; seed++ {
		f := frozen.GenerateFrom(header, rand.New(rand.NewSource(seed)))
		m := mapped.GenerateFrom(header, rand.New(rand.NewSource(seed)))
		if f != m {
			t.Fatalf("seed %d: unknown-header generations differ:\n%q\nvs\n%q", seed, f, m)
		}
		if !strings.HasPrefix(f, "var zzUnknownZZ = qqNeverTrainedQQ") {
			t.Fatalf("seed %d: header text lost through ID detokenization: %q", seed, f)
		}
	}
}

func TestGenerationTerminates(t *testing.T) {
	g := trainDefault(t, ArchGPT2)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		src := g.Generate(rng)
		if len(TokenizeCode(src)) > g.MaxTokens+64 {
			t.Errorf("generation exceeded the token cap: %d tokens", len(TokenizeCode(src)))
		}
	}
}
