// Checkpoint/resume for campaigns. A State is the sink's complete
// accounted position — the generator restart point, the Figure-6 dedup
// tree, the findings and every verdict counter — serialised to JSON.
// Because all accounting is single-threaded and outcomes arrive in case
// order, the state after case k is a pure function of (config, k): a
// campaign killed at any checkpoint and resumed from it produces findings
// byte-identical to an uninterrupted run, at every worker and shard
// count. Writes are atomic (temp file + rename in the target directory)
// so a kill mid-write leaves the previous checkpoint intact, and both a
// format version and a config fingerprint guard resumes against stale or
// mismatched files.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"comfort/internal/dedup"
	"comfort/internal/difftest"
	"comfort/internal/engines"
)

// StateFormatVersion is bumped whenever the checkpoint encoding changes
// incompatibly; LoadState rejects other versions.
const StateFormatVersion = 1

// SavedFinding is a Finding's serialisable form. The defect is stored by
// catalog ID and re-resolved on restore.
type SavedFinding struct {
	DefectID string   `json:"defect_id"`
	TestCase string   `json:"test_case"`
	Reduced  string   `json:"reduced,omitempty"`
	Verdict  string   `json:"verdict"`
	Engine   string   `json:"engine"`
	Features []string `json:"features,omitempty"`
	Flags    []string `json:"flags,omitempty"`
	Strict   bool     `json:"strict"`
}

// State is a campaign checkpoint: everything the sink needs to continue a
// killed campaign as if it had never stopped.
type State struct {
	Format      int    `json:"format"`
	Fingerprint string `json:"fingerprint"`

	// Position: CasesDone cases are fully accounted; the generator restarts
	// at offset NextOff into batch NextBatch (NextBatch == -1 is the serial
	// path, which replays and resumes by CasesDone alone). Done marks a
	// completed campaign.
	CasesDone int  `json:"cases_done"`
	NextBatch int  `json:"next_batch"`
	NextOff   int  `json:"next_off"`
	Done      bool `json:"done"`

	// Accounted result state — the byte-identical part of the contract.
	Executed             int             `json:"executed"`
	Verdicts             map[string]int  `json:"verdicts"`
	DuplicatesFiltered   int             `json:"duplicates_filtered"`
	UnattributedFindings int             `json:"unattributed_findings"`
	EarlyErrorCases      int             `json:"early_error_cases"`
	FlaggedNondet        int64           `json:"flagged_nondet"`
	FeatureCounts        map[string]int  `json:"feature_counts,omitempty"`
	FeatureBits          uint64          `json:"feature_bits"`
	Dedup                *dedup.Snapshot `json:"dedup,omitempty"`
	Found                []SavedFinding  `json:"found"`
	Suppressed           []SavedFinding  `json:"suppressed"`

	// Diagnostic baselines: scheduler counters at checkpoint time, added to
	// the resumed scheduler's own counts so totals stay cumulative across
	// the whole campaign. These describe physical work done, which resume
	// legitimately changes (a resumed run re-parses its working set, say),
	// so they are cumulative-but-not-byte-identical — deliberately outside
	// the determinism contract.
	CacheHits      int64  `json:"cache_hits"`
	CacheMisses    int64  `json:"cache_misses"`
	CacheEvictions int64  `json:"cache_evictions"`
	Compiled       int64  `json:"compiled"`
	Fallback       int64  `json:"fallback"`
	ICHits         uint64 `json:"ic_hits"`
	ICMisses       uint64 `json:"ic_misses"`
	ICMega         uint64 `json:"ic_mega"`
	Analyzed       int64  `json:"analyzed"`
	EarlyErrSkips  int64  `json:"early_error_skips"`
	Panics         int64  `json:"panics"`
	WallTimeouts   int64  `json:"wall_timeouts"`
	Checkpoints    int64  `json:"checkpoints"`
	CkptFailures   int64  `json:"checkpoint_failures"`
}

// fingerprint canonically renders every config parameter that shapes the
// finding stream. Workers and GenShards are deliberately excluded — the
// determinism contract makes findings independent of both, so a campaign
// may resume with a different pool or shard layout; likewise checkpoint
// cadence and kill points, which decide where a run stops, not what it
// finds.
func fingerprint(cfg Config) string {
	ids := make([]string, 0, len(cfg.Testbeds))
	for _, tb := range cfg.Testbeds {
		ids = append(ids, tb.ID())
	}
	return fmt.Sprintf(
		"comfort-campaign/v%d fuzzer=%s seed=%d cases=%d fuel=%d testbeds=%s dedup=%t resolve=%t compile=%t shapes=%t analyze=%t faults=%s",
		StateFormatVersion, cfg.Fuzzer.Name(), cfg.Seed, cfg.Cases, cfg.Fuel,
		strings.Join(ids, ","), !cfg.DisableDedup, !cfg.DisableResolve,
		!cfg.DisableCompile, !cfg.DisableShapes, !cfg.DisableAnalyze,
		cfg.Faults.Fingerprint())
}

// saveFindings converts a finding map to its serialisable form in
// defect-ID order (deterministic checkpoint bytes).
func saveFindings(m map[string]*Finding) []SavedFinding {
	ids := make([]string, 0, len(m))
	for id := range m { //detlint:order — sorted before use below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]SavedFinding, 0, len(ids))
	for _, id := range ids {
		f := m[id]
		out = append(out, SavedFinding{
			DefectID: id, TestCase: f.TestCase, Reduced: f.Reduced,
			Verdict: f.Verdict.String(), Engine: f.Engine,
			Features: f.Features, Flags: f.Flags, Strict: f.strict,
		})
	}
	return out
}

// restoreFindings rebuilds a finding map, resolving defects by catalog ID.
func restoreFindings(saved []SavedFinding) (map[string]*Finding, error) {
	out := make(map[string]*Finding, len(saved))
	for _, s := range saved {
		d, ok := engines.DefectByID(s.DefectID)
		if !ok {
			return nil, fmt.Errorf("checkpoint names unknown defect %q", s.DefectID)
		}
		v, ok := difftest.VerdictByName(s.Verdict)
		if !ok {
			return nil, fmt.Errorf("checkpoint names unknown verdict %q", s.Verdict)
		}
		out[s.DefectID] = &Finding{
			Defect: d, TestCase: s.TestCase, Reduced: s.Reduced,
			Verdict: v, Engine: s.Engine, Features: s.Features,
			Flags: s.Flags, strict: s.Strict,
		}
	}
	return out, nil
}

// WriteState atomically persists a checkpoint: the JSON is written to a
// temp file in the target's directory and renamed over the destination,
// so a crash at any instant leaves either the old checkpoint or the new
// one — never a torn file.
func WriteState(path string, st *State) error {
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("stage checkpoint: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("stage checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("stage checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("publish checkpoint: %w", err)
	}
	return nil
}

// LoadState reads a checkpoint and validates its format version. Config
// compatibility is checked later, by Resume, once the target config is
// known.
func LoadState(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("decode checkpoint %s: %w", path, err)
	}
	if st.Format != StateFormatVersion {
		return nil, fmt.Errorf("checkpoint %s has format %d, this build reads %d",
			path, st.Format, StateFormatVersion)
	}
	return &st, nil
}

// DiffFingerprints compares two campaign fingerprints field by field and
// reports each diverging parameter as "name: checkpoint has X, config has
// Y" — the actionable form of a mismatch, so an operator learns *which*
// knob differs (seed, fuzzer, testbed set, ...) instead of eyeballing two
// opaque strings. Fingerprints are space-separated key=value tokens after
// a version header (see fingerprint above); an identical pair diffs to
// nil.
func DiffFingerprints(checkpoint, config string) []string {
	parse := func(fp string) (map[string]string, []string) {
		m := map[string]string{}
		var order []string
		for i, tok := range strings.Fields(fp) {
			key, val, ok := strings.Cut(tok, "=")
			if i == 0 && !ok {
				key, val = "version", tok
			} else if !ok {
				continue
			}
			if _, seen := m[key]; !seen {
				order = append(order, key)
			}
			m[key] = val
		}
		return m, order
	}
	ck, order := parse(checkpoint)
	cf, cfOrder := parse(config)
	for _, key := range cfOrder {
		if _, ok := ck[key]; !ok {
			order = append(order, key)
		}
	}
	var out []string
	for _, key := range order {
		cv, inCk := ck[key]
		gv, inCf := cf[key]
		switch {
		case !inCf:
			out = append(out, fmt.Sprintf("%s: checkpoint has %s, config has no such field", key, cv))
		case !inCk:
			out = append(out, fmt.Sprintf("%s: checkpoint has no such field, config has %s", key, gv))
		case cv != gv:
			out = append(out, fmt.Sprintf("%s: checkpoint has %s, config has %s", key, cv, gv))
		}
	}
	return out
}

// Resume continues a campaign from a checkpoint. The config must describe
// the same campaign the checkpoint came from (fingerprint equality over
// every finding-relevant parameter); workers, shard count, checkpoint
// cadence and kill points may differ. A Done checkpoint reconstructs the
// final result without running anything.
func Resume(cfg Config, st *State) (*Result, error) {
	cfg = withDefaults(cfg)
	if fp := fingerprint(cfg); st.Fingerprint != fp {
		diffs := DiffFingerprints(st.Fingerprint, fp)
		if len(diffs) == 0 {
			// Same fields, different rendering (shouldn't happen; belt and
			// braces for hand-edited checkpoints).
			diffs = []string{fmt.Sprintf("checkpoint %q vs config %q", st.Fingerprint, fp)}
		}
		return nil, fmt.Errorf("checkpoint belongs to a different campaign; diverging fields:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	if st.CasesDone > cfg.Cases {
		return nil, fmt.Errorf("checkpoint has %d cases accounted, config budget is %d", st.CasesDone, cfg.Cases)
	}
	cfg.resume = st
	return run(cfg)
}

// restoreInto loads a checkpoint's accounted state into a fresh Result
// and dedup tree. It returns the feature-bit accumulator.
func restoreInto(st *State, res *Result, tree *dedup.Tree) (uint64, error) {
	found, err := restoreFindings(st.Found)
	if err != nil {
		return 0, err
	}
	suppressed, err := restoreFindings(st.Suppressed)
	if err != nil {
		return 0, err
	}
	res.Found = found
	res.SuppressedNondet = suppressed
	res.CasesRun = st.CasesDone
	res.Executed = st.Executed
	for name, n := range st.Verdicts { //detlint:order — accumulating counters
		v, ok := difftest.VerdictByName(name)
		if !ok {
			return 0, fmt.Errorf("checkpoint names unknown verdict %q", name)
		}
		res.Verdicts[v] = n
	}
	res.DuplicatesFiltered = st.DuplicatesFiltered
	res.UnattributedFindings = st.UnattributedFindings
	res.EarlyErrorCases = st.EarlyErrorCases
	res.FlaggedNondet = st.FlaggedNondet
	if res.FeatureCounts != nil {
		for name, n := range st.FeatureCounts { //detlint:order — accumulating counters
			res.FeatureCounts[name] = n
		}
	}
	tree.Restore(st.Dedup)
	return st.FeatureBits, nil
}
