// Command comfort runs fuzzing campaigns and regenerates the paper's
// evaluation tables and figures.
//
// Usage:
//
//	comfort -cases 1000                 # full campaign + all tables
//	comfort -table 2 -cases 500         # one table
//	comfort -figure 8 -cases 300        # fuzzer comparison
//	comfort -figure 9 -n 200            # quality metrics
//	comfort -cases 2000 -workers 16     # wider scheduler pool
//	comfort -cases 5000 -gen-shards 4 -progress -progress-every 500
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
)

// Exit codes: 0 success, 1 usage/config error, 3 interrupted (partial
// results flushed; resumable), 4 fault-injected kill (CI soak runs).
const (
	exitInterrupted = 3
	exitFaultKill   = 4
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
		figure   = flag.Int("figure", 0, "regenerate one figure (7-9); 0 = all")
		cases    = flag.Int("cases", 600, "test-case budget for campaigns")
		n        = flag.Int("n", 150, "programs per fuzzer for figure 9")
		seed     = flag.Int64("seed", 2021, "campaign seed")
		fuzzer   = flag.String("fuzzer", "COMFORT", "fuzzer for single-fuzzer campaigns")
		workers  = flag.Int("workers", 0, "scheduler worker pool size; 0 = default")
		genShard = flag.Int("gen-shards", 0, "generator shards for forkable fuzzers; 0 = default (stream is shard-count independent)")
		fuel     = flag.Int64("fuel", 0, "interpreter step budget per execution; 0 = default")
		progress = flag.Bool("progress", false, "print campaign progress to stderr")
		progEach = flag.Int("progress-every", 100, "cases between progress samples (1 = every case)")
		reduceW  = flag.Bool("reduce", false, "reduce each finding's witness after the campaign (Section 3.5)")
		noComp   = flag.Bool("disable-compile", false, "execute on the tree-walking evaluator instead of compiled thunks (oracle/ablation)")
		noRes    = flag.Bool("disable-resolve", false, "execute on the dynamic map-scope evaluator (implies -disable-compile)")
		noShapes = flag.Bool("disable-shapes", false, "execute with dictionary-mode objects and no inline caches (oracle/ablation)")
		noAnlz   = flag.Bool("disable-analyze", false, "recompute early errors per execution and skip nondet suppression / feature accounting (oracle/ablation)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		ckptPath = flag.String("checkpoint", "", "periodically persist campaign state to this file (atomic writes)")
		resume   = flag.Bool("resume", false, "resume the campaign from the -checkpoint file")
		ckptEach = flag.Int("checkpoint-every", 0, "cases between checkpoint writes; 0 = default (256)")
		ckptIvl  = flag.Duration("checkpoint-interval", 0, "also checkpoint when this much wall time has passed (0 = off)")
		deadline = flag.Duration("case-deadline", 0, "wall-clock watchdog per execution; hung cases become timeout findings (0 = off)")
		faultStr = flag.String("faults", "", "deterministic fault-injection spec, e.g. \"seed=7,panic=100,slow=150,kill=2\" (testing/CI)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	// Graceful shutdown: the first SIGINT/SIGTERM cancels the campaign
	// context — the sink drains, flushes a final checkpoint and the partial
	// report prints below — and a second signal force-quits.
	ctx, cancelCampaign := context.WithCancel(context.Background())
	defer cancelCampaign()
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "\ninterrupted: draining pipeline, flushing checkpoint and partial report (signal again to force quit)")
		interrupted.Store(true)
		cancelCampaign()
		<-sigCh
		os.Exit(130)
	}()

	// base carries the scheduler options every campaign in this invocation
	// shares (including the per-fuzzer campaigns behind -figure 8).
	// ReduceWitnesses stays out of base: Figure 8 only reads Found counts,
	// so reducing inside its six campaigns would be silent wasted work —
	// the flag applies to the main campaign, whose summary is printed.
	base := campaign.Config{
		Workers: *workers, Fuel: *fuel,
		GenShards: *genShard, ProgressEvery: *progEach,
		DisableResolve: *noRes, DisableCompile: *noComp, DisableShapes: *noShapes,
		DisableAnalyze: *noAnlz,
		Context:        ctx,
	}
	if *progress {
		// The sampling cadence lives in ProgressEvery now: the campaign only
		// reads the cache counters and invokes this callback on sampled
		// cases, so large campaigns stop paying per-case progress overhead.
		base.Progress = func(p campaign.Progress) {
			fmt.Fprintf(os.Stderr, "  %d/%d cases (program cache: %d hits, %d misses, %d evicted; execs: %d compiled, %d tree; IC: %d hit, %d miss, %d mega; analyze: %d cached, %d early-error skips, %d nondet-flagged, %d features; robustness: %d panics, %d wall-timeouts, %d checkpoints)\n",
				p.Done, p.Total, p.CacheHits, p.CacheMisses, p.CacheEvictions, p.Compiled, p.Fallback,
				p.ICHits, p.ICMisses, p.ICMega,
				p.Analyzed, p.EarlyErrorSkips, p.FlaggedNondet, p.FeaturesSeen,
				p.Panics, p.WallTimeouts, p.Checkpoints)
		}
	}

	needCampaign := *table >= 2 || *figure == 7 ||
		(*table == 0 && *figure == 0)
	var res *campaign.Result
	if needCampaign {
		f, ok := fuzzers.ByName(*fuzzer)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown fuzzer %q\n", *fuzzer)
			os.Exit(1)
		}
		fmt.Printf("running %s campaign: %d cases over %d testbeds...\n\n",
			f.Name(), *cases, len(engines.Testbeds()))
		cfg := base
		cfg.Fuzzer = f
		cfg.Testbeds = engines.Testbeds()
		cfg.Cases = *cases
		cfg.Seed = *seed
		cfg.ReduceWitnesses = *reduceW
		cfg.Checkpoint = *ckptPath
		cfg.CheckpointEvery = *ckptEach
		cfg.CheckpointInterval = *ckptIvl
		cfg.CaseDeadline = *deadline
		cfg.Clock = time.Now
		if *faultStr != "" {
			fcfg, err := faultinject.Parse(*faultStr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			plan := faultinject.New(fcfg)
			plan.Kill = func() {
				// Die exactly as a crash would: no final flush, no report.
				fmt.Fprintln(os.Stderr, "faultinject: killing process after checkpoint write")
				os.Exit(exitFaultKill)
			}
			cfg.Faults = plan
		}
		if *resume {
			if *ckptPath == "" {
				fmt.Fprintln(os.Stderr, "-resume requires -checkpoint <path>")
				os.Exit(1)
			}
			st, err := campaign.LoadState(*ckptPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resume: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("resuming from %s: %d/%d cases already accounted\n\n", *ckptPath, st.CasesDone, *cases)
			res, err = campaign.Resume(cfg, st)
			if err != nil {
				fmt.Fprintf(os.Stderr, "resume: %v\n", err)
				os.Exit(1)
			}
		} else {
			res = campaign.Run(cfg)
		}
		fmt.Printf("campaign done: %d cases, %d findings, %d duplicates filtered, %d nondet-suppressed, %d early-error cases, %d recovered panics, %d wall-timeouts, %d checkpoints\n\n",
			res.CasesRun, len(res.Found), res.DuplicatesFiltered,
			len(res.SuppressedNondet), res.EarlyErrorCases,
			res.Panics, res.WallTimeouts, res.Checkpoints)
		if *reduceW {
			fmt.Println(campaign.ReductionSummary(res))
		}
	}
	found := []*campaign.Defect{}
	if res != nil {
		found = res.FoundDefects()
	}

	// show renders one artifact when it is selected (-table/-figure id) or
	// when no specific selection was made.
	all := *table == 0 && *figure == 0
	showTable := func(id int, render func() string) {
		if *table == id || all {
			fmt.Println(render())
		}
	}
	showFigure := func(id int, render func() string) {
		if *figure == id || all {
			fmt.Println(render())
		}
	}
	showTable(1, campaign.Table1)
	showTable(2, func() string { return campaign.Table2(found) })
	showTable(3, func() string { return campaign.Table3(found) })
	showTable(4, func() string { return campaign.Table4(found) })
	showTable(5, func() string { return campaign.Table5(found) })
	showFigure(7, func() string { return campaign.Figure7(found) })
	if *figure == 8 {
		out, _ := campaign.Figure8With(base, *cases, *seed)
		fmt.Println(out)
	}
	if *figure == 9 {
		out, _ := campaign.Figure9(*n, *seed)
		fmt.Println(out)
	}
	if interrupted.Load() {
		if *ckptPath != "" {
			fmt.Fprintf(os.Stderr, "interrupted: partial results above; continue with -resume -checkpoint %s\n", *ckptPath)
		} else {
			fmt.Fprintln(os.Stderr, "interrupted: partial results above (run with -checkpoint to make interrupts resumable)")
		}
		pprof.StopCPUProfile() // deferred handlers are skipped by os.Exit
		os.Exit(exitInterrupted)
	}
}
