// Package dedup implements the tree-based identical-miscompilation filter
// of the paper's Section 3.6 and Figure 6: a three-layer decision tree
// (JS engine → API function → differential error class) that recognises
// test cases triggering already-analysed bugs.
package dedup

import (
	"fmt"
	"hash/fnv"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Tree is the knowledge base. The zero value is not usable; call New.
type Tree struct {
	mu sync.Mutex
	// engines → api function → error class → first-seen flag
	root map[string]map[string]map[string]bool
	// hits counts filtered duplicates; leaves counts distinct leaf nodes.
	hits   int
	leaves int
	// apiDetector extracts the API function layer from test sources.
	knownAPIs []string
}

// New builds an empty knowledge base. knownAPIs lists the method and global
// function names the second tree layer can recognise in test sources.
func New(knownAPIs []string) *Tree {
	sorted := append([]string(nil), knownAPIs...)
	sort.Strings(sorted)
	return &Tree{root: map[string]map[string]map[string]bool{}, knownAPIs: sorted}
}

var methodCallRe = regexp.MustCompile(`\.(\w+)\s*\(`)
var globalCallRe = regexp.MustCompile(`\b(\w+)\s*\(`)

// APIOf extracts the API-function layer key from a test source: the first
// recognised method or global call, or "None" (the Figure-6 None leaf).
func (t *Tree) APIOf(src string) string {
	for _, m := range methodCallRe.FindAllStringSubmatch(src, -1) {
		if t.isKnown(m[1]) {
			return m[1]
		}
	}
	for _, m := range globalCallRe.FindAllStringSubmatch(src, -1) {
		if t.isKnown(m[1]) {
			return m[1]
		}
	}
	return "None"
}

func (t *Tree) isKnown(name string) bool {
	i := sort.SearchStrings(t.knownAPIs, name)
	return i < len(t.knownAPIs) && t.knownAPIs[i] == name
}

// ErrorClass normalises a differential outcome into the third tree layer:
// the exception class (TypeError, RangeError, TimeOut, Crash, ...) when one
// exists, otherwise a digest of the deviant output so distinct wrong-output
// behaviours occupy distinct leaves (Figure 6 groups leaves by "the
// differential results").
func ErrorClass(outcome, errName string) string {
	if errName != "" {
		return errName
	}
	if outcome == "" {
		return "WrongOutput"
	}
	return outcome
}

// BehaviourClass builds the full third-layer key from an outcome, error
// name and the deviant output.
func BehaviourClass(outcome, errName, output string) string {
	base := ErrorClass(outcome, errName)
	if errName != "" || output == "" {
		return base
	}
	h := fnv.New32a()
	h.Write([]byte(output))
	return fmt.Sprintf("%s#%08x", base, h.Sum32())
}

// SeenOrAdd walks the tree for (engine, api, errClass). It returns true if
// an identical miscompilation was already recorded (the test case should be
// filtered), and records the new leaf otherwise.
func (t *Tree) SeenOrAdd(engine, api, errClass string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	apis, ok := t.root[engine]
	if !ok {
		apis = map[string]map[string]bool{}
		t.root[engine] = apis
	}
	classes, ok := apis[api]
	if !ok {
		classes = map[string]bool{}
		apis[api] = classes
	}
	if classes[errClass] {
		t.hits++
		return true
	}
	classes[errClass] = true
	t.leaves++
	return false
}

// Stats reports (distinct leaves, filtered duplicates).
func (t *Tree) Stats() (leaves, filtered int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leaves, t.hits
}

// Snapshot is a Tree's serialisable state: the full leaf set plus the
// hit/leaf counters. Campaign checkpoints persist it so a resumed run
// filters duplicates against exactly the tree the killed run had built.
type Snapshot struct {
	Root   map[string]map[string]map[string]bool `json:"root"`
	Leaves int                                   `json:"leaves"`
	Hits   int                                   `json:"hits"`
}

// Snapshot deep-copies the tree's current state.
func (t *Tree) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	root := make(map[string]map[string]map[string]bool, len(t.root))
	for e, apis := range t.root { //detlint:order — copying into a map
		ac := make(map[string]map[string]bool, len(apis))
		for a, classes := range apis { //detlint:order — copying into a map
			cc := make(map[string]bool, len(classes))
			for c, v := range classes { //detlint:order — copying into a map
				cc[c] = v
			}
			ac[a] = cc
		}
		root[e] = ac
	}
	return &Snapshot{Root: root, Leaves: t.leaves, Hits: t.hits}
}

// Restore replaces the tree's leaf set and counters with a snapshot's
// (the detector's known-API list is config, not state, and is untouched).
func (t *Tree) Restore(s *Snapshot) {
	if s == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.root = make(map[string]map[string]map[string]bool, len(s.Root))
	for e, apis := range s.Root { //detlint:order — copying into a map
		ac := make(map[string]map[string]bool, len(apis))
		for a, classes := range apis { //detlint:order — copying into a map
			cc := make(map[string]bool, len(classes))
			for c, v := range classes { //detlint:order — copying into a map
				cc[c] = v
			}
			ac[a] = cc
		}
		t.root[e] = ac
	}
	t.leaves = s.Leaves
	t.hits = s.Hits
}

// Engines returns the engines with recorded bugs (first tree layer).
func (t *Tree) Engines() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	for e := range t.root { //detlint:order — sorted before use below
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// KnownAPIsFromSpec is a convenience: the short method names for the
// detector, derived from canonical spec keys like "String.prototype.substr".
func KnownAPIsFromSpec(names []string) []string {
	var out []string
	for _, n := range names {
		if i := strings.LastIndex(n, "."); i >= 0 {
			out = append(out, n[i+1:])
		} else {
			out = append(out, n)
		}
	}
	return out
}
