package ast

// Walk traverses the tree rooted at n in depth-first pre-order, calling fn
// for every non-nil node. If fn returns false the node's children are not
// visited.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, fn)
	}
}

// isNilNode guards against typed-nil interface values.
func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *Program:
		return v == nil
	case *BlockStmt:
		return v == nil
	case *SwitchCase:
		return v == nil
	case *FuncLit:
		return v == nil
	}
	return false
}

// Children returns the direct child nodes of n in source order.
// Nil children are omitted.
func Children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		if c == nil {
			return
		}
		switch v := c.(type) {
		case *BlockStmt:
			if v == nil {
				return
			}
		case *FuncLit:
			if v == nil {
				return
			}
		case *SwitchCase:
			if v == nil {
				return
			}
		}
		out = append(out, c)
	}
	addE := func(e Expr) {
		if e != nil {
			add(e)
		}
	}
	addS := func(s Stmt) {
		if s != nil {
			add(s)
		}
	}
	switch v := n.(type) {
	case *Program:
		for _, s := range v.Body {
			addS(s)
		}
	case *VarDecl:
		for _, d := range v.Decls {
			addE(d.Init)
		}
	case *FuncDecl:
		add(v.Fn)
	case *ExprStmt:
		addE(v.X)
	case *BlockStmt:
		for _, s := range v.Body {
			addS(s)
		}
	case *IfStmt:
		addE(v.Cond)
		addS(v.Then)
		addS(v.Else)
	case *ForStmt:
		if v.Init != nil {
			add(v.Init)
		}
		addE(v.Cond)
		addE(v.Post)
		addS(v.Body)
	case *ForInStmt:
		addE(v.Obj)
		addS(v.Body)
	case *WhileStmt:
		addE(v.Cond)
		addS(v.Body)
	case *DoWhileStmt:
		addS(v.Body)
		addE(v.Cond)
	case *SwitchStmt:
		addE(v.Disc)
		for _, c := range v.Cases {
			add(c)
		}
	case *SwitchCase:
		addE(v.Test)
		for _, s := range v.Body {
			addS(s)
		}
	case *ReturnStmt:
		addE(v.X)
	case *ThrowStmt:
		addE(v.X)
	case *TryStmt:
		add(v.Block)
		if v.Catch != nil {
			add(v.Catch)
		}
		if v.Finally != nil {
			add(v.Finally)
		}
	case *LabeledStmt:
		addS(v.Body)
	case *TemplateLit:
		for _, e := range v.Exprs {
			addE(e)
		}
	case *ArrayLit:
		for _, e := range v.Elems {
			addE(e)
		}
	case *ObjectLit:
		for _, p := range v.Props {
			if p.Computed {
				addE(p.KeyExpr)
			}
			addE(p.Value)
		}
	case *FuncLit:
		if v.ExprBody != nil {
			addE(v.ExprBody)
		}
		if v.Body != nil {
			add(v.Body)
		}
	case *UnaryExpr:
		addE(v.X)
	case *UpdateExpr:
		addE(v.X)
	case *BinaryExpr:
		addE(v.L)
		addE(v.R)
	case *LogicalExpr:
		addE(v.L)
		addE(v.R)
	case *AssignExpr:
		addE(v.L)
		addE(v.R)
	case *CondExpr:
		addE(v.Cond)
		addE(v.Then)
		addE(v.Else)
	case *CallExpr:
		addE(v.Callee)
		for _, a := range v.Args {
			addE(a)
		}
	case *NewExpr:
		addE(v.Callee)
		for _, a := range v.Args {
			addE(a)
		}
	case *MemberExpr:
		addE(v.Obj)
		if v.Computed {
			addE(v.Prop)
		}
	case *SeqExpr:
		for _, e := range v.Exprs {
			addE(e)
		}
	case *SpreadExpr:
		addE(v.X)
	}
	return out
}

// CountNodes returns the number of nodes in the tree rooted at n.
func CountNodes(n Node) int {
	count := 0
	Walk(n, func(Node) bool { count++; return true })
	return count
}
