package interp

import (
	"sort"
	"strconv"
	"sync/atomic"
	"unicode/utf8"
	"unsafe"

	"comfort/internal/js/ast"
	"comfort/internal/js/regex"
)

// runeLen is the rune count of s — string "length" in this evaluator's
// rune-indexed model — without materialising a rune slice.
func runeLen(s string) int { return utf8.RuneCountInString(s) }

// stringMetrics measures a string's rune count and ASCII-ness through the
// interpreter's direct-mapped metrics cache. Scan loops read `s.length`
// (and index the same string) once per iteration; without a cache each
// read re-counts the whole string, turning a linear scan quadratic — and
// loops that alternate between two strings (`a[i] == b[i]` compares)
// ping-pong a single-entry cache back to quadratic, so the cache holds
// four entries indexed by the data pointer. The key is the (data pointer,
// byte length) pair, which identifies the exact backing bytes — Go
// strings are immutable, so equal coordinates imply equal content.
func (in *Interp) stringMetrics(s string) (runes int, ascii bool) {
	if len(s) == 0 {
		return 0, true
	}
	d := unsafe.StringData(s)
	e := &in.strCache[(uintptr(unsafe.Pointer(d))>>4)&3]
	if d == e.data && len(s) == e.len {
		return e.runes, e.ascii
	}
	runes = utf8.RuneCountInString(s)
	ascii = runes == len(s)
	*e = strMetrics{data: d, len: len(s), runes: runes, ascii: ascii}
	return runes, ascii
}

// strMetrics is one entry of the string-metrics cache.
type strMetrics struct {
	data  *byte
	len   int
	runes int
	ascii bool
}

// RuneLen is the rune count of s (string "length" in this evaluator's
// rune-indexed model), served from the metrics cache.
func (in *Interp) RuneLen(s string) int {
	n, _ := in.stringMetrics(s)
	return n
}

// RuneAt returns the rune at (integral, non-negative) position pos. pos
// arrives as a ToInteger float; any value at or beyond the byte length is
// out of range for the rune count too (runes ≤ bytes), which keeps the
// int conversion safe for absurd positions. ASCII strings — the common
// case for generated programs — index in constant time via the metrics
// cache.
func (in *Interp) RuneAt(s string, pos float64) (rune, bool) {
	if pos < 0 || pos >= float64(len(s)) {
		return 0, false
	}
	want := int(pos)
	if _, ascii := in.stringMetrics(s); ascii {
		return rune(s[want]), true
	}
	n := 0
	for _, r := range s {
		if n == want {
			return r, true
		}
		n++
	}
	return 0, false
}

// runeAt returns the idx-th rune of s as a string, slicing the original
// backing store — no rune-slice materialisation, no allocation. ok is
// false when idx is out of range.
func runeAt(s string, idx int) (string, bool) {
	n := 0
	for i, r := range s {
		if n == idx {
			return s[i : i+utf8.RuneLen(r)], true
		}
		n++
	}
	return "", false
}

// PropAttr holds property descriptor attribute bits.
type PropAttr uint8

// Descriptor attributes.
const (
	Writable PropAttr = 1 << iota
	Enumerable
	Configurable
)

// DefaultAttr is the attribute set of properties created by assignment.
const DefaultAttr = Writable | Enumerable | Configurable

// Property is a property slot: either a data property (Value) or an
// accessor property (Get/Set).
type Property struct {
	Value    Value
	Get, Set *Object
	Accessor bool
	Attr     PropAttr
}

// FuncDef binds a function literal to its defining environment (a closure).
type FuncDef struct {
	Lit *ast.FuncLit
	Env *Env
	// Compiled is the thunk-compiled body when the program went through
	// internal/js/compile; Call dispatches to it instead of tree-walking
	// Lit (unless the interpreter runs with DisableCompile).
	Compiled CompiledBody
}

// NativeFunc is the Go implementation of a builtin.
type NativeFunc func(in *Interp, this Value, args []Value) (Value, error)

// ElemKind enumerates typed-array element types.
type ElemKind uint8

// Typed-array element kinds.
const (
	ElemNone ElemKind = iota
	ElemInt8
	ElemUint8
	ElemUint8Clamped
	ElemInt16
	ElemUint16
	ElemInt32
	ElemUint32
	ElemFloat32
	ElemFloat64
)

// Size returns the element width in bytes.
func (k ElemKind) Size() int {
	switch k {
	case ElemInt8, ElemUint8, ElemUint8Clamped:
		return 1
	case ElemInt16, ElemUint16:
		return 2
	case ElemInt32, ElemUint32, ElemFloat32:
		return 4
	case ElemFloat64:
		return 8
	}
	return 0
}

// ArrayBuffer is a raw byte buffer shared by typed arrays and DataViews.
type ArrayBuffer struct {
	Data []byte
}

// Object is an ECMAScript object: ordered named properties, a prototype
// link, and optional internal slots for the specialised classes.
type Object struct {
	Class      string // "Object", "Array", "Function", "Error", "RegExp", ...
	Proto      *Object
	Extensible bool

	props map[string]*Property
	keys  []string // insertion order of string keys

	// shape/slots are the hidden-class layout: when shape is non-nil the
	// object is in shape mode — named data properties live in the dense
	// slots array at the indices the shape chain fixes, and props/keys are
	// nil. Deletes, accessors and attribute redefinition drop the object
	// to dictionary mode (toDictionary); slots holding kindPending ride
	// the lazy-property machinery below. epoch counts layout changes
	// (key added, deleted, redefined, mode change) in BOTH modes; inline
	// caches record it for every prototype-chain link they resolved past,
	// so shadowing writes and proto surgery invalidate cleanly.
	shape *Shape
	slots []Value
	epoch uint32

	// Array internal slots: dense elements plus an explicit length to
	// support sparse writes (which land in props).
	elems    []Value
	arrayLen uint32

	// Function internal slots.
	Fn          *FuncDef
	Native      NativeFunc
	Construct   NativeFunc // nil means Native is used for construction too
	NativeName  string     // canonical spec key, e.g. "String.prototype.substr"
	BoundTarget *Object
	BoundThis   Value
	BoundArgs   []Value
	Invocations int // call counter, drives Optimizer-component defects

	// Primitive wrapper slot (String/Number/Boolean objects) and the Date
	// time value.
	Prim    Value
	HasPrim bool

	// frozen mirrors the presence of the hidden __frozen__ own property
	// (maintained in SetSlot/DefineOwn/DeleteOwn), so the array element
	// fast paths check a bit instead of probing the property map per
	// write. strictMarked mirrors __strict__ the same way for Call's
	// per-invocation strictness derivation. indexProps records that an
	// array-index-keyed own property was (ever) added — objects without
	// one can be skipped wholesale in prototype-chain walks for index
	// keys, which is every growing array write.
	frozen       bool
	strictMarked bool
	indexProps   bool

	// RegExp internal slots.
	Regex *regex.Regexp

	// Typed array / DataView internal slots.
	Buf      *ArrayBuffer
	ElemKind ElemKind
	ByteOff  int
	ArrayLen int // element count for typed arrays, byte length for DataView

	// lazyTab is a frozen, realm-independent native-method table shared by
	// every realm (see NativeTable); tabPending is the bitmask of entries
	// not yet materialised on this object, and lazyTabProto the realm's
	// Function.prototype for materialised method objects. Attaching a
	// table costs one pointer and one key-slice append per realm, where
	// per-method lazy registration cost a closure and a map insert each.
	lazyTab      *NativeTable
	lazyTabProto *Object
	tabPending   uint64

	// lazy holds own-property names and the thunks that materialise them
	// on first access — deferred stdlib sections and prototype methods —
	// as an append-only pair list in registration order. Registration is
	// one slice append (the global object registers a few dozen lazy names
	// on every realm build, so a map insert per name was a measurable
	// construction cost); lookup is a short linear scan, paid only for the
	// properties a program actually touches. A resolved entry keeps its
	// position with a nil thunk so enumeration order matches the eager
	// install order no matter which properties resolve first; lazyLeft
	// counts the entries still pending.
	lazy     []lazyProp
	lazyLeft int
	// lazyInstalling counts nested lazy-thunk executions; while non-zero,
	// SetSlot must not re-append a reserved key.
	lazyInstalling int
}

// NewObject allocates a plain object with the given prototype. The property
// map is created lazily on first write — most objects a program allocates
// (and every builtin function object) carry few or no own named properties,
// so the empty-map allocation used to dominate runtime-construction cost.
func NewObject(proto *Object) *Object {
	return &Object{Class: "Object", Proto: proto, Extensible: true}
}

// NativeTable is a frozen description of an object's native methods:
// spec key, arity and implementation per name, in registration order.
// Tables are built once per process (the implementations are pure
// functions of the interpreter instance passed at call time, never of the
// realm that registered them) and attached to every realm's corresponding
// object; entries materialise into function objects on first access.
type NativeTable struct {
	Names   []string
	ByName  map[string]uint8
	Entries []NativeTableEntry

	// shapeCache memoises the shape suffix the table induces: attaching to
	// an object whose shape matches `from` jumps straight to `to`. One
	// entry suffices — a given table attaches to objects of one
	// construction history (the realm's corresponding prototype).
	shapeCache atomic.Pointer[tableShape]
}

// tableShape is a cached (attach-point shape → post-attach shape) pair.
type tableShape struct {
	from, to *Shape
}

// NativeTableEntry is one method of a NativeTable.
type NativeTableEntry struct {
	SpecKey string
	Short   string
	Arity   int
	Fn      NativeFunc
}

// MaxNativeTableEntries bounds a table (entries pend in one uint64 mask).
const MaxNativeTableEntries = 64

// AttachLazyTable wires a frozen method table onto the object, reserving
// every entry's enumeration position. fnProto is the realm's
// Function.prototype (the prototype of materialised method objects).
// Shape-mode objects take the table as a prebuilt shape suffix: every
// entry appends a pending slot, and the resulting leaf shape is cached on
// the table so realms after the first pay one pointer compare instead of
// per-name transitions.
func (o *Object) AttachLazyTable(t *NativeTable, fnProto *Object) {
	o.lazyTab = t
	o.lazyTabProto = fnProto
	if n := len(t.Entries); n >= 64 {
		o.tabPending = ^uint64(0)
	} else {
		o.tabPending = 1<<uint(n) - 1
	}
	if o.shape != nil {
		if c := t.shapeCache.Load(); c != nil && c.from == o.shape {
			o.shape = c.to
		} else {
			from := o.shape
			sh := from
			for _, name := range t.Names {
				sh = sh.transition(name, Writable|Configurable)
			}
			o.shape = sh
			t.shapeCache.Store(&tableShape{from: from, to: sh})
		}
		// One exact-size growth: per-entry appends reallocated the slot
		// array several times per attach, and realms attach dozens of
		// tables — the discarded intermediates dominated GC scan work.
		base := len(o.slots)
		need := base + len(t.Names)
		if cap(o.slots) < need {
			grown := make([]Value, need)
			copy(grown, o.slots[:base])
			o.slots = grown
		} else {
			o.slots = o.slots[:need]
		}
		for i := base; i < need; i++ {
			o.slots[i] = Value{kind: kindPending}
		}
		o.epoch++
		return
	}
	o.keys = append(o.keys, t.Names...)
}

// LazyTable returns the attached method table, if any.
func (o *Object) LazyTable() *NativeTable { return o.lazyTab }

// lazyProp is one deferred own property: the name and the thunk that
// materialises it (nil once resolved).
type lazyProp struct {
	key     string
	install func()
}

// hasLazy reports whether any own property is still unmaterialised.
func (o *Object) hasLazy() bool { return o.lazyLeft > 0 || o.tabPending != 0 }

// SetLazy registers a thunk that installs the named own property (and
// possibly siblings sharing the thunk) when it is first needed. Used by
// the builtins package to defer expensive stdlib sections and prototype
// methods that most programs never touch. The thunk must install the key
// it was registered under; the key's enumeration position is reserved at
// registration so access order cannot perturb property order.
func (o *Object) SetLazy(key string, install func()) {
	for i := range o.lazy {
		if o.lazy[i].key == key {
			// Re-registration: the key already holds its reserved position.
			if o.lazy[i].install == nil {
				o.lazyLeft++
			}
			o.lazy[i].install = install
			return
		}
	}
	o.lazy = append(o.lazy, lazyProp{key, install})
	o.lazyLeft++
	if o.shape != nil {
		o.shape = o.shape.transition(key, Writable|Configurable)
		o.slots = append(o.slots, Value{kind: kindPending})
		o.epoch++
		return
	}
	o.keys = append(o.keys, key)
}

// resolveLazy materialises the named lazy property if one is pending. It
// reports whether a thunk ran (callers then re-check props).
func (o *Object) resolveLazy(key string) bool {
	if o.lazyLeft > 0 {
		for i := range o.lazy {
			if o.lazy[i].key == key {
				th := o.lazy[i].install
				if th == nil {
					break // already materialised
				}
				// Clear before running so a nested probe cannot re-enter.
				o.lazy[i].install = nil
				o.lazyLeft--
				o.lazyInstalling++
				th()
				o.lazyInstalling--
				return true
			}
		}
	}
	if o.tabPending != 0 {
		if i, ok := o.lazyTab.ByName[key]; ok && o.tabPending&(1<<i) != 0 {
			o.tabPending &^= 1 << i
			e := &o.lazyTab.Entries[i]
			fo := NewNativeFunc(o.lazyTabProto, e.SpecKey, e.Short, e.Arity, e.Fn)
			o.lazyInstalling++
			o.SetSlot(key, ObjValue(fo), Writable|Configurable)
			o.lazyInstalling--
			return true
		}
	}
	return false
}

// materializeLazy forces every pending lazy property, in registration
// order (enumeration must observe a deterministic key order).
func (o *Object) materializeLazy() {
	if o.lazyLeft > 0 {
		for i := range o.lazy {
			if o.lazy[i].install != nil {
				o.resolveLazy(o.lazy[i].key)
			}
		}
		o.lazy, o.lazyLeft = nil, 0
	}
	if o.tabPending != 0 {
		for _, k := range o.lazyTab.Names {
			o.resolveLazy(k)
		}
	}
}

// NewNativeFunc allocates a builtin function object with its length and
// name properties pre-installed. The two Property slots share one backing
// allocation and the map is exactly sized — this constructor runs hundreds
// of times per realm, so its allocation count sets the floor on runtime
// construction cost.
func NewNativeFunc(proto *Object, specKey, short string, arity int, f NativeFunc) *Object {
	if proto != nil && proto.shape != nil {
		// Shape-mode realm (the prototype is shaped exactly when the realm
		// runs with shapes on): the prebuilt length/name shape replaces the
		// map and both Property boxes with one slot array.
		return &Object{
			Class: "Function", Proto: proto, Extensible: true,
			Native: f, NativeName: specKey,
			shape: nativeFuncShape,
			slots: []Value{Number(float64(arity)), String(short)},
		}
	}
	ps := make([]Property, 2)
	ps[0] = Property{Value: Number(float64(arity)), Attr: Configurable}
	ps[1] = Property{Value: String(short), Attr: Configurable}
	return &Object{
		Class: "Function", Proto: proto, Extensible: true,
		Native: f, NativeName: specKey,
		props: map[string]*Property{"length": &ps[0], "name": &ps[1]},
		keys:  []string{"length", "name"},
	}
}

// IsCallable reports whether the object can be invoked.
func (o *Object) IsCallable() bool {
	return o != nil && (o.Fn != nil || o.Native != nil || o.BoundTarget != nil)
}

// IsArray reports whether the object is an Array exotic object.
func (o *Object) IsArray() bool { return o != nil && o.Class == "Array" }

// arrayFrozen reports the hidden __frozen__ marker Object.freeze maintains
// on arrays and typed arrays, without boxing a descriptor.
func (o *Object) arrayFrozen() bool { return o.frozen }

// frozenKey is the hidden marker property Object.freeze installs;
// strictKey marks strict-mode function objects.
const (
	frozenKey = "__frozen__"
	strictKey = "__strict__"
)

// noteKey keeps the hidden-marker mirror bits in sync with own-property
// writes (both markers are 10 bytes, so one length test gates the
// comparisons).
func (o *Object) noteKey(key string) {
	if len(key) == len(frozenKey) {
		if key == frozenKey {
			o.frozen = true
		} else if key == strictKey {
			o.strictMarked = true
		}
	}
	if !o.indexProps && isIndexKey(key) {
		o.indexProps = true
	}
}

// arrayIndex parses a canonical array index from a property key; ok is
// false for non-index keys.
func arrayIndex(key string) (uint32, bool) {
	if key == "" || len(key) > 10 {
		return 0, false
	}
	if key == "0" {
		return 0, true
	}
	if key[0] < '1' || key[0] > '9' {
		return 0, false
	}
	n, err := strconv.ParseUint(key, 10, 32)
	if err != nil || n >= 4294967295 {
		return 0, false
	}
	return uint32(n), true
}

// getOwn returns the own property for key, consulting array storage and
// virtual slots (array length, string indices).
func (o *Object) getOwn(key string) (*Property, bool) {
	if o.IsArray() {
		if key == "length" {
			return &Property{Value: Number(float64(o.arrayLen)), Attr: Writable}, true
		}
		if idx, ok := arrayIndex(key); ok && int(idx) < len(o.elems) {
			return &Property{Value: o.elems[idx], Attr: DefaultAttr}, true
		}
	}
	if o.Class == "String" && o.HasPrim {
		if key == "length" {
			return &Property{Value: Number(float64(runeLen(o.Prim.Str())))}, true
		}
		if idx, ok := arrayIndex(key); ok {
			if r, ok := runeAt(o.Prim.Str(), int(idx)); ok {
				return &Property{Value: String(r), Attr: Enumerable}, true
			}
		}
	}
	if o.ElemKind != ElemNone && o.Class != "DataView" {
		if key == "length" {
			return &Property{Value: Number(float64(o.ArrayLen))}, true
		}
		if idx, ok := arrayIndex(key); ok {
			if int(idx) < o.ArrayLen {
				return &Property{Value: Number(o.typedGet(int(idx))), Attr: Writable | Enumerable}, true
			}
			return &Property{Value: Undefined()}, true
		}
	}
	if o.shape != nil {
		return o.shapeGetOwn(key)
	}
	p, ok := o.props[key]
	if !ok && o.hasLazy() && o.resolveLazy(key) {
		p, ok = o.props[key]
	}
	return p, ok
}

// HasOwn reports whether key is an own property.
func (o *Object) HasOwn(key string) bool {
	if o.shape != nil && o.shapeFastKey(key) {
		return o.shape.find(key) != nil
	}
	_, ok := o.getOwn(key)
	return ok
}

// GetOwnProperty exposes the own-property lookup for builtins
// (Object.getOwnPropertyDescriptor and friends). Builtins mutate the
// returned descriptor in place (Object.freeze and seal clear attribute
// bits through it), which shape mode's synthesized boxes would silently
// drop — so descriptor-level access leaves shape mode first.
func (o *Object) GetOwnProperty(key string) (*Property, bool) {
	o.toDictionary()
	return o.getOwn(key)
}

// SetSlot writes a raw property without descriptor checks (used during
// runtime setup).
func (o *Object) SetSlot(key string, v Value, attr PropAttr) {
	if o.shape != nil {
		if sp := o.shape.find(key); sp != nil {
			if sp.attr != attr {
				// Attribute change needs per-object descriptor storage.
				o.toDictionary()
				o.SetSlot(key, v, attr)
				return
			}
			if o.slots[sp.slot].kind == kindPending {
				// Run the lazy installer first (it may install siblings),
				// then overwrite — matching dictionary-mode order. The
				// installer clears its pending entry before writing, so
				// the nested SetSlot cannot recurse back here.
				o.resolveLazy(key)
			}
			o.slots[sp.slot] = v
			return
		}
		o.shapeAppend(key, v, attr)
		return
	}
	if o.hasLazy() {
		o.resolveLazy(key)
	}
	if p, ok := o.props[key]; ok {
		p.Value = v
		p.Attr = attr
		p.Accessor = false
		return
	}
	if o.props == nil {
		o.props = map[string]*Property{}
	}
	o.props[key] = &Property{Value: v, Attr: attr}
	o.noteKey(key)
	o.epoch++
	if o.lazyInstalling > 0 && o.keyReserved(key) {
		return // the key's position was reserved at lazy registration
	}
	o.keys = append(o.keys, key)
}

// keyReserved reports whether key is already present in the insertion
// order (only consulted during lazy installs, which run once per realm).
func (o *Object) keyReserved(key string) bool {
	for _, k := range o.keys {
		if k == key {
			return true
		}
	}
	return false
}

// DefineOwn installs a property descriptor, honouring configurability.
// It returns false when the existing property forbids the redefinition.
func (o *Object) DefineOwn(key string, p *Property) bool {
	if o.hasLazy() {
		o.resolveLazy(key)
	}
	if o.IsArray() {
		if idx, ok := arrayIndex(key); ok && !p.Accessor {
			o.arraySet(idx, p.Value)
			return true
		}
		if key == "length" && !p.Accessor {
			n := uint32(p.Value.Num())
			o.truncate(n)
			return true
		}
	}
	if o.shape != nil {
		if !p.Accessor && o.Extensible && o.shape.find(key) == nil {
			o.shapeAppend(key, p.Value, p.Attr)
			return true
		}
		// Redefinition, accessor install or non-extensible define: fall
		// back to descriptor storage.
		o.toDictionary()
	}
	existing, ok := o.props[key]
	if ok && existing.Attr&Configurable == 0 {
		// Permit only value updates on writable, non-configurable data props.
		if !existing.Accessor && !p.Accessor && existing.Attr&Writable != 0 {
			existing.Value = p.Value
			return true
		}
		if existing.Accessor == p.Accessor && existing.Attr == p.Attr &&
			!p.Accessor && SameValueStrict(existing.Value, p.Value) {
			return true
		}
		return false
	}
	if !ok && !o.Extensible {
		return false
	}
	if o.props == nil {
		o.props = map[string]*Property{}
	}
	if !ok && !(o.lazyInstalling > 0 && o.keyReserved(key)) {
		o.keys = append(o.keys, key)
	}
	o.props[key] = p
	o.noteKey(key)
	o.epoch++
	return true
}

// DeleteOwn removes an own property; it returns false for non-configurable
// properties.
func (o *Object) DeleteOwn(key string) bool {
	if o.hasLazy() {
		o.resolveLazy(key)
	}
	if o.IsArray() {
		if idx, ok := arrayIndex(key); ok {
			if int(idx) < len(o.elems) {
				o.elems[idx] = Undefined()
				return true
			}
		}
	}
	if o.shape != nil {
		if o.shape.find(key) == nil {
			return true
		}
		// Deleting a shape-tracked property: dense layout cannot model the
		// hole, so drop to dictionary mode and delete there.
		o.toDictionary()
	}
	p, ok := o.props[key]
	if !ok {
		return true
	}
	if p.Attr&Configurable == 0 {
		return false
	}
	delete(o.props, key)
	o.epoch++
	if len(key) == len(frozenKey) {
		if key == frozenKey {
			o.frozen = false
		} else if key == strictKey {
			o.strictMarked = false
		}
	}
	for i, k := range o.keys {
		if k == key {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
	return true
}

// OwnKeys returns own enumerable-or-not string keys in specification order:
// integer indices ascending first, then insertion order.
func (o *Object) OwnKeys() []string {
	o.materializeLazy()
	var ints []uint32
	var names []string
	if o.IsArray() {
		for i := range o.elems {
			ints = append(ints, uint32(i))
		}
	}
	if o.Class == "String" && o.HasPrim {
		for i, n := 0, runeLen(o.Prim.Str()); i < n; i++ {
			ints = append(ints, uint32(i))
		}
	}
	if o.ElemKind != ElemNone && o.Class != "DataView" {
		for i := 0; i < o.ArrayLen; i++ {
			ints = append(ints, uint32(i))
		}
	}
	named := o.keys
	if o.shape != nil {
		named = o.shape.keyChain()
	}
	for _, k := range named {
		if idx, ok := arrayIndex(k); ok {
			ints = append(ints, idx)
		} else {
			names = append(names, k)
		}
	}
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	out := make([]string, 0, len(ints)+len(names))
	var last uint32
	first := true
	for _, i := range ints {
		if !first && i == last {
			continue
		}
		first = false
		last = i
		out = append(out, strconv.FormatUint(uint64(i), 10))
	}
	return append(out, names...)
}

// EnumerableKeys returns own enumerable keys in OwnKeys order.
func (o *Object) EnumerableKeys() []string {
	var out []string
	for _, k := range o.OwnKeys() {
		p, ok := o.getOwn(k)
		if !ok {
			continue
		}
		if p.Attr&Enumerable != 0 || o.IsArray() || (o.ElemKind != ElemNone && o.Class != "DataView") ||
			(o.Class == "String" && o.HasPrim && isIndexKey(k)) {
			if o.shape != nil {
				if sp := o.shape.find(k); sp != nil && sp.attr&Enumerable == 0 {
					continue
				}
			} else if p2, inMap := o.props[k]; inMap {
				if p2.Attr&Enumerable == 0 {
					continue
				}
			}
			out = append(out, k)
		}
	}
	return out
}

func isIndexKey(k string) bool {
	_, ok := arrayIndex(k)
	return ok
}

// arraySet writes a dense or sparse array element and maintains length.
func (o *Object) arraySet(idx uint32, v Value) {
	const denseGap = 4096
	switch {
	case int(idx) < len(o.elems):
		o.elems[idx] = v
	case int(idx) == len(o.elems):
		o.elems = append(o.elems, v)
	case int(idx)-len(o.elems) < denseGap:
		for len(o.elems) < int(idx) {
			o.elems = append(o.elems, Undefined())
		}
		o.elems = append(o.elems, v)
	default:
		o.SetSlot(strconv.FormatUint(uint64(idx), 10), v, DefaultAttr)
	}
	if idx+1 > o.arrayLen {
		o.arrayLen = idx + 1
	}
}

// truncate implements assignment to array length.
func (o *Object) truncate(n uint32) {
	if int(n) < len(o.elems) {
		o.elems = o.elems[:n]
	}
	if n < o.arrayLen {
		for _, k := range append([]string(nil), o.keys...) {
			if idx, ok := arrayIndex(k); ok && idx >= n {
				o.DeleteOwn(k)
			}
		}
	}
	o.arrayLen = n
}

// ArrayElems exposes the dense element slice (builtins mutate it in place).
func (o *Object) ArrayElems() []Value { return o.elems }

// SetArrayElems replaces the dense elements and fixes up length.
func (o *Object) SetArrayElems(elems []Value) {
	o.elems = elems
	if uint32(len(elems)) > o.arrayLen || true {
		o.arrayLen = uint32(len(elems))
	}
}

// ArrayLength returns the array length.
func (o *Object) ArrayLength() uint32 { return o.arrayLen }

// SetArrayLength sets the length slot (used by builtins after sparse ops).
func (o *Object) SetArrayLength(n uint32) { o.arrayLen = n }

// AppendElem pushes a dense element.
func (o *Object) AppendElem(v Value) {
	o.elems = append(o.elems, v)
	if uint32(len(o.elems)) > o.arrayLen {
		o.arrayLen = uint32(len(o.elems))
	}
}

// typedGet reads element idx of a typed array as float64.
func (o *Object) typedGet(idx int) float64 {
	off := o.ByteOff + idx*o.ElemKind.Size()
	d := o.Buf.Data
	switch o.ElemKind {
	case ElemInt8:
		return float64(int8(d[off]))
	case ElemUint8, ElemUint8Clamped:
		return float64(d[off])
	case ElemInt16:
		return float64(int16(uint16(d[off]) | uint16(d[off+1])<<8))
	case ElemUint16:
		return float64(uint16(d[off]) | uint16(d[off+1])<<8)
	case ElemInt32:
		return float64(int32(le32(d[off:])))
	case ElemUint32:
		return float64(le32(d[off:]))
	case ElemFloat32:
		return float64(fromBits32(le32(d[off:])))
	case ElemFloat64:
		return fromBits64(le64(d[off:]))
	}
	return 0
}

// TypedGet exposes typed-array element reads to builtins.
func (o *Object) TypedGet(idx int) float64 { return o.typedGet(idx) }

// TypedSet writes element idx of a typed array from a float64 using the
// element kind's conversion.
func (o *Object) TypedSet(idx int, f float64) {
	off := o.ByteOff + idx*o.ElemKind.Size()
	d := o.Buf.Data
	switch o.ElemKind {
	case ElemInt8:
		d[off] = byte(int8(toInt64(f)))
	case ElemUint8:
		d[off] = byte(uint8(toInt64(f)))
	case ElemUint8Clamped:
		d[off] = clampUint8(f)
	case ElemInt16, ElemUint16:
		v := uint16(toInt64(f))
		d[off] = byte(v)
		d[off+1] = byte(v >> 8)
	case ElemInt32, ElemUint32:
		putLE32(d[off:], uint32(toInt64(f)))
	case ElemFloat32:
		putLE32(d[off:], bits32(float32(f)))
	case ElemFloat64:
		putLE64(d[off:], bits64(f))
	}
}
