package campaign

import (
	"strings"
	"testing"

	"comfort/internal/engines"
	"comfort/internal/fuzzers"
)

// TestComfortCampaignFindsSeededBugs runs a small COMFORT campaign over the
// bug-richest testbeds and checks that it discovers seeded defects across
// several engines — the end-to-end property behind every table.
func TestComfortCampaignFindsSeededBugs(t *testing.T) {
	res := Run(Config{
		Fuzzer:   fuzzers.NewComfort(),
		Testbeds: figure8Testbeds(),
		Cases:    300,
		Seed:     1,
	})
	if len(res.Found) < 5 {
		t.Fatalf("expected at least 5 seeded defects found, got %d", len(res.Found))
	}
	enginesHit := map[string]bool{}
	for _, f := range res.Found {
		enginesHit[f.Defect.Engine] = true
	}
	if len(enginesHit) < 3 {
		t.Errorf("expected findings across >= 3 engines, got %v", enginesHit)
	}
	t.Logf("found %d defects across %d engines (dups filtered: %d)",
		len(res.Found), len(enginesHit), res.DuplicatesFiltered)
}

func TestCampaignDeterminism(t *testing.T) {
	cfg := Config{
		Fuzzer:   fuzzers.NewDIE(),
		Testbeds: figure8Testbeds()[:6],
		Cases:    60,
		Seed:     9,
	}
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Found) != len(b.Found) {
		t.Fatalf("campaign not deterministic: %d vs %d findings", len(a.Found), len(b.Found))
	}
	for id := range a.Found {
		if _, ok := b.Found[id]; !ok {
			t.Errorf("finding %s missing from second run", id)
		}
	}
}

func TestWitnessReplayFindsEveryDefect(t *testing.T) {
	// Replaying the catalog's own witnesses through the differential
	// pipeline must rediscover every defect — the completeness bound of
	// the harness (a fuzzer can never find more than the catalog).
	found := map[string]bool{}
	for _, e := range engines.All() {
		for _, v := range e.Versions {
			for _, d := range engines.ActiveDefects(v) {
				if found[d.ID] || d.AttrVersion != v.Name {
					continue
				}
				tb := engines.Testbed{Version: v, Strict: d.WitnessStrict}
				attr := engines.Attribute(d.Witness, tb, engines.RunOptions{Fuel: 500000, Seed: 1})
				for _, ad := range attr {
					found[ad.ID] = true
				}
			}
		}
	}
	if len(found) != len(engines.Catalog()) {
		missing := []string{}
		for _, d := range engines.Catalog() {
			if !found[d.ID] {
				missing = append(missing, d.ID)
			}
		}
		t.Errorf("witness replay found %d/%d defects; missing: %v",
			len(found), len(engines.Catalog()), missing)
	}
}

func TestTablesRender(t *testing.T) {
	found := engines.Catalog()[:20]
	var fd []*Defect
	fd = append(fd, found...)
	for name, table := range map[string]string{
		"t1": Table1(), "t2": Table2(fd), "t3": Table3(fd),
		"t4": Table4(fd), "t5": Table5(fd), "f7": Figure7(fd),
	} {
		if len(strings.Split(table, "\n")) < 4 {
			t.Errorf("table %s suspiciously short:\n%s", name, table)
		}
	}
	if !strings.Contains(Table2(fd), "158") {
		t.Error("Table 2 must contain the paper total 158")
	}
}
