// BenchmarkLM measures raw token-sampling throughput — the generator's
// innermost loop — on the frozen token-ID sampler against the map-backed
// oracle implementation, for both architectures. EXPERIMENTS.md records
// the measured speedups; the acceptance bar is ≥ 5× on the frozen path.
package lm

import (
	"math/rand"
	"testing"

	"comfort/internal/corpus"
)

func BenchmarkLM(b *testing.B) {
	for _, arch := range []Arch{ArchGPT2, ArchLSTM} {
		g := Train(corpus.Programs(), corpus.Headers(), Config{Arch: arch})
		header := corpus.Headers()[0]
		prefix := g.encodeTokens(TokenizeCode(header))

		b.Run(arch.String()+"/frozen", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			ids := make([]int32, len(prefix), len(prefix)+512)
			for i, tok := range prefix {
				ids[i] = g.frozen.TokenID(tok)
			}
			base := len(ids)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, ok := g.frozen.SampleID(ids, g.topK, rng)
				if !ok {
					b.Fatal("sample failed")
				}
				ids = append(ids, id)
				if len(ids) >= base+400 || id == g.frozen.EOF() {
					ids = ids[:base]
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tokens/sec")
		})

		b.Run(arch.String()+"/map", func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			stream := append([]string(nil), prefix...)
			base := len(stream)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok, ok := g.model.Sample(stream, g.topK, rng)
				if !ok {
					b.Fatal("sample failed")
				}
				stream = append(stream, tok)
				if len(stream) >= base+400 || tok == "<EOF>" {
					stream = stream[:base]
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tokens/sec")
		})
	}
}
