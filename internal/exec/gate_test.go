package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingGate wraps a Gate and tracks the high-water mark of
// concurrently-held slots.
type countingGate struct {
	inner Gate
	held  atomic.Int32
	peak  atomic.Int32
}

func (g *countingGate) Acquire(ctx context.Context) error {
	if err := g.inner.Acquire(ctx); err != nil {
		return err
	}
	h := g.held.Add(1)
	for {
		p := g.peak.Load()
		if h <= p || g.peak.CompareAndSwap(p, h) {
			break
		}
	}
	return nil
}

func (g *countingGate) Release() {
	g.held.Add(-1)
	g.inner.Release()
}

// TestGateDoesNotChangeOutcomes: a scheduler squeezed through a 1-slot
// gate delivers exactly the outcomes of an ungated run — the gate bounds
// concurrency, never results or order.
func TestGateDoesNotChangeOutcomes(t *testing.T) {
	want := collect(t, New(schedCfg(8)), testSrcs)

	cfg := schedCfg(8)
	gate := &countingGate{inner: NewGate(1)}
	cfg.Gate = gate
	got := collect(t, New(cfg), testSrcs)

	if len(got) != len(want) {
		t.Fatalf("gated run delivered %d outcomes, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index || got[i].Src != want[i].Src {
			t.Fatalf("outcome %d differs under gating", i)
		}
		for j := range want[i].Entries {
			w, g := want[i].Entries[j].Result, got[i].Entries[j].Result
			if w.Outcome != g.Outcome || w.Output != g.Output || w.FuelUsed != g.FuelUsed {
				t.Errorf("outcome %d entry %d differs under gating:\n%+v\nvs\n%+v", i, j, w, g)
			}
		}
	}
	if peak := gate.peak.Load(); peak > 1 {
		t.Errorf("1-slot gate admitted %d concurrent executions", peak)
	}
}

// TestGateBoundsSharedConcurrency: two schedulers sharing one gate never
// exceed the gate's slot count in combined physical executions.
func TestGateBoundsSharedConcurrency(t *testing.T) {
	gate := &countingGate{inner: NewGate(2)}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cfg := schedCfg(4)
		cfg.Gate = gate
		s := New(cfg)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range s.Run(context.Background(), FromSlice(context.Background(), testSrcs)) {
			}
		}()
	}
	wg.Wait()
	if peak := gate.peak.Load(); peak > 2 {
		t.Errorf("2-slot gate admitted %d concurrent executions across schedulers", peak)
	}
	if peak := gate.peak.Load(); peak == 0 {
		t.Error("gate was never acquired")
	}
}

// TestGateCancellationUnblocks: workers blocked on a fully-held gate see
// the context cancellation and the outcome stream still terminates (the
// blocked cases are dropped under the contiguous-prefix contract).
func TestGateCancellationUnblocks(t *testing.T) {
	gate := NewGate(1)
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer gate.Release() // held for the whole test: every Acquire must block

	cfg := schedCfg(2)
	cfg.Gate = gate
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	out := s.Run(ctx, FromSlice(ctx, testSrcs))
	time.AfterFunc(50*time.Millisecond, cancel)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range out {
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unblock gate-starved workers")
	}
}
