package reduce

import (
	"comfort/internal/js/ast"
)

// candidate is one speculative transform of the shared tree. apply mutates
// the tree in place and returns the inverse; committing a candidate means
// applying it and not undoing. Every transform strictly decreases the
// lexicographic measure (multi-declarator count, non-trivial expression
// slots, node count), so the tier fixpoint terminates.
type candidate struct {
	apply func() (undo func())
}

// stmtLists enumerates all statement containers of the tree in
// deterministic pre-order: the program body, block bodies (including
// function bodies) and switch-case bodies.
func (r *reducer) stmtLists() []*[]ast.Stmt {
	lists := []*[]ast.Stmt{&r.prog.Body}
	ast.Walk(r.prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, &v.Body)
		case *ast.SwitchCase:
			lists = append(lists, &v.Body)
		}
		return true
	})
	return lists
}

func (r *reducer) totalStmts() int {
	total := 0
	for _, l := range r.stmtLists() {
		total += len(*l)
	}
	return total
}

// removeChunk builds the transform deleting (*l)[i:j]. The replacement
// slice is freshly allocated so the undo can restore the original header.
func removeChunk(l *[]ast.Stmt, i, j int) candidate {
	return candidate{apply: func() func() {
		orig := *l
		next := make([]ast.Stmt, 0, len(orig)-(j-i))
		next = append(next, orig[:i]...)
		next = append(next, orig[j:]...)
		*l = next
		return func() { *l = orig }
	}}
}

// chunkCandidates enumerates the removal of every aligned chunk of `size`
// statements from every container, later chunks first (trailing
// statements are the least depended-upon, so they go first, matching the
// greedy reducer's reverse scan at size 1).
func (r *reducer) chunkCandidates(size int) []candidate {
	var cands []candidate
	for _, l := range r.stmtLists() {
		l := l
		n := len(*l)
		if n == 0 {
			continue
		}
		for start := ((n - 1) / size) * size; start >= 0; start -= size {
			end := start + size
			if end > n {
				end = n
			}
			cands = append(cands, removeChunk(l, start, end))
		}
	}
	return cands
}

// replaceStmt builds the transform swapping (*l)[n] for repl.
func replaceStmt(l *[]ast.Stmt, n int, repl ast.Stmt) candidate {
	return candidate{apply: func() func() {
		orig := (*l)[n]
		(*l)[n] = repl
		return func() { (*l)[n] = orig }
	}}
}

// structureCandidates unwraps structured statements to their bodies:
// if→then, if→else, loops→body, try→block, label→body.
func (r *reducer) structureCandidates() []candidate {
	var cands []candidate
	for _, l := range r.stmtLists() {
		l := l
		for n, s := range *l {
			n := n
			var repls []ast.Stmt
			switch v := s.(type) {
			case *ast.IfStmt:
				repls = append(repls, v.Then)
				if v.Else != nil {
					repls = append(repls, v.Else)
				}
			case *ast.WhileStmt:
				repls = append(repls, v.Body)
			case *ast.DoWhileStmt:
				repls = append(repls, v.Body)
			case *ast.ForStmt:
				repls = append(repls, v.Body)
			case *ast.ForInStmt:
				repls = append(repls, v.Body)
			case *ast.TryStmt:
				repls = append(repls, ast.Stmt(v.Block))
			case *ast.LabeledStmt:
				repls = append(repls, v.Body)
			}
			for _, repl := range repls {
				if repl != nil {
					cands = append(cands, replaceStmt(l, n, repl))
				}
			}
		}
	}
	return cands
}

// zeroLit builds the literal 0 used as the universal replacement
// expression.
func zeroLit() ast.Expr { return &ast.NumberLit{Value: 0, Raw: "0"} }

// trivialExpr reports whether e is already as simple as the replacement
// would make it (so no candidate is generated and the tier terminates).
func trivialExpr(e ast.Expr) bool {
	_, ok := e.(*ast.NumberLit)
	return ok
}

// exprCandidates enumerates the expression tier: call/new arguments and
// declaration initialisers replaced by 0, multi-declarator var statements
// split into single declarators (so tier 1 can remove them one by one),
// and else-branches dropped.
func (r *reducer) exprCandidates() []candidate {
	var cands []candidate
	ast.Walk(r.prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			for i := range v.Args {
				i, c := i, v
				if !trivialExpr(c.Args[i]) {
					cands = append(cands, candidate{apply: func() func() {
						orig := c.Args[i]
						c.Args[i] = zeroLit()
						return func() { c.Args[i] = orig }
					}})
				}
			}
		case *ast.NewExpr:
			for i := range v.Args {
				i, c := i, v
				if !trivialExpr(c.Args[i]) {
					cands = append(cands, candidate{apply: func() func() {
						orig := c.Args[i]
						c.Args[i] = zeroLit()
						return func() { c.Args[i] = orig }
					}})
				}
			}
		case *ast.VarDecl:
			for i := range v.Decls {
				i, d := i, v
				if d.Decls[i].Init != nil && !trivialExpr(d.Decls[i].Init) {
					cands = append(cands, candidate{apply: func() func() {
						orig := d.Decls[i].Init
						d.Decls[i].Init = zeroLit()
						return func() { d.Decls[i].Init = orig }
					}})
				}
			}
		case *ast.IfStmt:
			if v.Else != nil {
				c := v
				cands = append(cands, candidate{apply: func() func() {
					orig := c.Else
					c.Else = nil
					return func() { c.Else = orig }
				}})
			}
		}
		return true
	})
	// Multi-declarator splits need the enclosing container, so they are
	// enumerated per statement list rather than per node.
	for _, l := range r.stmtLists() {
		l := l
		for n, s := range *l {
			decl, ok := s.(*ast.VarDecl)
			if !ok || len(decl.Decls) < 2 {
				continue
			}
			n, decl := n, decl
			cands = append(cands, candidate{apply: func() func() {
				orig := *l
				next := make([]ast.Stmt, 0, len(orig)+len(decl.Decls)-1)
				next = append(next, orig[:n]...)
				for _, d := range decl.Decls {
					next = append(next, &ast.VarDecl{Kind: decl.Kind, Decls: []ast.Declarator{d}})
				}
				next = append(next, orig[n+1:]...)
				*l = next
				return func() { *l = orig }
			}})
		}
	}
	return cands
}
