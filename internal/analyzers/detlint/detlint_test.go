package detlint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule materialises a throwaway module on disk and returns a Linter
// for it — the loader is exercised end to end, including the recursive
// module-internal importer and the stdlib source importer.
func writeModule(t *testing.T, pkgs map[string]map[string]string) *Linter {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for dir, files := range pkgs {
		d := filepath.Join(root, filepath.FromSlash(dir))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, src := range files {
			if err := os.WriteFile(filepath.Join(d, name), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return NewLinter(root, "m")
}

func lintOne(t *testing.T, src string) []Finding {
	t.Helper()
	l := writeModule(t, map[string]map[string]string{
		"p": {"p.go": src},
	})
	fs, err := l.Lint("m/p")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	return fs
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestRangeOverMap(t *testing.T) {
	fs := lintOne(t, `package p

func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(fs) != 1 || fs[0].Rule != "range-over-map" {
		t.Fatalf("want one range-over-map finding, got %v", fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Fatalf("finding at line %d, want 5", fs[0].Pos.Line)
	}
}

func TestRangeOverMapEscapes(t *testing.T) {
	// Annotation on the range line and on the line above both suppress;
	// slices and channels never trip the rule.
	fs := lintOne(t, `package p

func f(m map[string]int, xs []int) []string {
	var keys []string
	for k := range m { //detlint:order — sorted by caller
		keys = append(keys, k)
	}
	//detlint:order
	for k := range m {
		keys = append(keys, k)
	}
	for range xs {
	}
	return keys
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

func TestWallClock(t *testing.T) {
	fs := lintOne(t, `package p

import (
	"runtime"
	"time"
)

func f() int64 {
	t := time.Now()
	_ = time.Since(t)
	_ = runtime.GOMAXPROCS(0) // type-driven check: not a time call
	return t.Unix()
}
`)
	got := rules(fs)
	if len(got) != 2 || got[0] != "wall-clock" || got[1] != "wall-clock" {
		t.Fatalf("want [wall-clock wall-clock], got %v", fs)
	}
}

func TestWallClockTimers(t *testing.T) {
	// The timer constructors smuggle wall-clock dependence in through
	// scheduling; each is flagged like time.Now.
	fs := lintOne(t, `package p

import "time"

func f(d time.Duration) {
	time.Sleep(d)
	<-time.After(d)
	t := time.NewTimer(d)
	t.Stop()
	k := time.NewTicker(d)
	k.Stop()
}
`)
	got := rules(fs)
	if len(got) != 4 {
		t.Fatalf("want 4 wall-clock findings, got %v", fs)
	}
	for _, r := range got {
		if r != "wall-clock" {
			t.Fatalf("want all wall-clock, got %v", fs)
		}
	}
}

func TestWallClockEscape(t *testing.T) {
	// A //detlint:wallclock marker on the call's line or the line above
	// declares a legitimate wall-clock owner (backoff timers, watchdogs).
	fs := lintOne(t, `package p

import "time"

func f(d time.Duration) {
	t := time.NewTimer(d) //detlint:wallclock — backoff legitimately waits wall time
	t.Stop()
	//detlint:wallclock — watchdog
	time.Sleep(d)
	time.Sleep(d) // unmarked: still a finding
}
`)
	got := rules(fs)
	if len(got) != 1 || got[0] != "wall-clock" {
		t.Fatalf("want exactly the unmarked time.Sleep flagged, got %v", fs)
	}
	if fs[0].Pos.Line != 10 {
		t.Fatalf("finding at line %d, want 10", fs[0].Pos.Line)
	}
}

func TestGlobalRand(t *testing.T) {
	fs := lintOne(t, `package p

import "math/rand"

func f(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are the sanctioned pattern
	return r.Intn(10) + rand.Intn(10)   // method on r fine; global Intn is not
}
`)
	if len(fs) != 1 || fs[0].Rule != "global-rand" {
		t.Fatalf("want one global-rand finding, got %v", fs)
	}
}

func TestLocalPackageLikeNamesDoNotTrip(t *testing.T) {
	// A local variable named time/rand must not be mistaken for the package.
	fs := lintOne(t, `package p

type clock struct{}

func (clock) Now() int  { return 0 }
func (clock) Intn(int) int { return 0 }

func f() int {
	var time clock
	var rand clock
	return time.Now() + rand.Intn(3)
}
`)
	if len(fs) != 0 {
		t.Fatalf("want no findings, got %v", fs)
	}
}

func TestModuleInternalImports(t *testing.T) {
	// The hazard hides behind a module-internal import: package q defines a
	// map type alias, package p ranges over it. The linter must resolve q
	// through the module importer to see the map.
	l := writeModule(t, map[string]map[string]string{
		"q": {"q.go": `package q

type Table = map[string]int
`},
		"p": {"p.go": `package p

import "m/q"

func F(t q.Table) int {
	n := 0
	for range t {
		n++
	}
	return n
}
`},
	})
	fs, err := l.Lint("m/p")
	if err != nil {
		t.Fatalf("Lint: %v", err)
	}
	if len(fs) != 1 || fs[0].Rule != "range-over-map" {
		t.Fatalf("want one range-over-map finding, got %v", fs)
	}
}

// TestRepositoryIsClean is the CI check in test form: the
// deterministic-critical packages of this repository must lint clean.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks half the module; skipped in -short")
	}
	root, modpath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinter(root, modpath)
	for _, pkg := range []string{
		"internal/fuzzers", "internal/campaign", "internal/reduce",
		"internal/dedup", "internal/exec", "internal/faultinject",
		"internal/server",
	} {
		fs, err := l.Lint(modpath + "/" + pkg)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, f := range fs {
			t.Errorf("%s", f)
		}
	}
}
