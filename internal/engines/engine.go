// Package engines models the ten JavaScript engine families under test.
// Each engine version is the shared interpreter plus the subset of the
// seeded defect catalog active in that version; normal and strict testbeds
// mirror the paper's 2× testbed setup. The catalog's 158 defects reproduce
// the per-engine, per-version, per-component, per-API-type and per-channel
// bug distributions of the paper's Tables 2-5 and Figure 7.
package engines

import (
	"fmt"
	"sync"

	"comfort/internal/js/interp"
)

// Version identifies one engine build (a row of Table 1).
type Version struct {
	Engine  string
	Name    string // human version, e.g. "v1.7.12"
	Build   string // build hash / number
	Release string // release date, e.g. "Jan. 2020"
	ES      string // supported ECMAScript edition
	rank    int    // position in the engine's oldest→newest ordering
}

// ID returns the unique engine-version identifier.
func (v Version) ID() string { return v.Engine + "/" + v.Name + "@" + v.Build }

// Engine is one JS engine family with its tested versions, oldest first.
type Engine struct {
	Name     string
	Versions []Version
}

// Latest returns the newest tested version.
func (e *Engine) Latest() Version { return e.Versions[len(e.Versions)-1] }

// versionRow is the compact Table 1 data format.
type versionRow struct{ name, build, release, es string }

func mkEngine(name string, rows []versionRow) *Engine {
	e := &Engine{Name: name}
	for i, r := range rows {
		e.Versions = append(e.Versions, Version{
			Engine: name, Name: r.name, Build: r.build,
			Release: r.release, ES: r.es, rank: i,
		})
	}
	return e
}

var (
	allOnce     sync.Once
	allEngines  []*Engine
	allTestbeds []Testbed
)

// All returns the ten engine families with the version inventory of
// Table 1 (oldest→newest within each engine). JerryScript additionally
// carries the v1.0 build that the paper's Table 3 references. The
// inventory is built once and memoised; callers receive a fresh top-level
// slice over the shared (immutable) Engine values.
func All() []*Engine {
	allOnce.Do(buildInventory)
	out := make([]*Engine, len(allEngines))
	copy(out, allEngines)
	return out
}

func buildInventory() {
	allEngines = []*Engine{
		mkEngine("V8", []versionRow{
			{"V8.5", "0e44fef", "Apr. 2019", "ES2019"},
			{"V8.5", "e39c701", "Aug. 2019", "ES2019"},
			{"V8.5", "d891c59", "Jun. 2020", "ES2019"},
		}),
		mkEngine("ChakraCore", []versionRow{
			{"v1.11.8", "dbfb5bd", "Apr. 2019", "ES2019"},
			{"v1.11.12", "e1f5b03", "Aug. 2019", "ES2019"},
			{"v1.11.13", "8fcb0f1", "Aug. 2019", "ES2019"},
			{"v1.11.16", "eaaf7ac", "Nov. 2019", "ES2019"},
			{"v1.11.19", "5ed2985", "May 2020", "ES2019"},
		}),
		mkEngine("JSC", []versionRow{
			{"244445", "b3fa4c5", "Apr. 2019", "ES2019"},
			{"246135", "d940b47", "Jun. 2019", "ES2019"},
			{"251631", "b96bf75", "Oct. 2019", "ES2019"},
			{"261782", "dbae081", "May 2020", "ES2019"},
		}),
		mkEngine("SpiderMonkey", []versionRow{
			{"v1.7", "js-1.7.0", "Sep. 2017", "ES2018/2019"},
			{"v38.3", "mozjs38.3.0", "Oct. 2017", "ES2018/2019"},
			{"v52.9", "mozjs52.9.1pre1", "Jul. 2018", "ES2018/2019"},
			{"v60.1.1", "mozjs60.1.1pre3", "Jul. 2018", "ES2018/2019"},
			{"gecko-dev", "201255a", "Jun. 2019", "ES2018/2019"},
			{"gecko-dev", "2c619e2", "May 2020", "ES2018/2019"},
			{"v78.0", "C69.0a1", "Jun. 2020", "ES2018/2019"},
		}),
		mkEngine("Rhino", []versionRow{
			{"v1.7R3", "d1a8338", "Apr. 2011", "ES2015"},
			{"v1.7R4", "82ffb8f", "Jun. 2012", "ES2015"},
			{"v1.7R5", "584e7ec", "Jan. 2015", "ES2015"},
			{"v1.7.9", "3ee580e", "Mar. 2018", "ES2015"},
			{"v1.7.10", "1692f5f", "May 2019", "ES2015"},
			{"v1.7.11", "f0e1c63", "May 2019", "ES2015"},
			{"v1.7.12", "d4021ee", "Jan. 2020", "ES2015"},
		}),
		mkEngine("Nashorn", []versionRow{
			{"v1.7.6", "JDK7u65", "May 2014", "ES2011/2015"},
			{"v1.8.0_201", "JDK8u201", "Jan. 2019", "ES2011/2015"},
			{"v11.0.3", "JDK11.0.3", "Mar. 2019", "ES2011/2015"},
			{"v12.0.1", "JDK12.0.1", "Apr. 2019", "ES2011/2015"},
			{"v13.0.1", "JDK13.0.1", "Sep. 2019", "ES2011/2015"},
		}),
		mkEngine("Hermes", []versionRow{
			{"v0.1.1", "3ed8340", "Jul. 2019", "ES2015"},
			{"v0.3.0", "3826084", "Sep. 2019", "ES2015"},
			{"v0.4.0", "044cf4b", "Dec. 2019", "ES2015"},
			{"v0.6.0", "b6530ae", "May 2020", "ES2015"},
		}),
		mkEngine("JerryScript", []versionRow{
			{"v1.0", "legacy10", "Jan. 2017", "ES2011/2015"},
			{"v2.0", "e944cda", "Apr. 2019", "ES2011/2015"},
			{"v2.0", "40f7b1c", "Apr. 2019", "ES2011/2015"},
			{"v2.0", "b6fc4e1", "May 2019", "ES2011/2015"},
			{"v2.0", "351acdf", "Jun. 2019", "ES2011/2015"},
			{"v2.1.0", "9ab4872", "Sep. 2019", "ES2011/2015"},
			{"v2.1.0", "84a56ef", "Oct. 2019", "ES2011/2015"},
			{"v2.2.0", "7df87b7", "Oct. 2019", "ES2011/2015"},
			{"v2.2.0", "996bf76", "Nov. 2019", "ES2011/2015"},
			{"v2.3.0", "bd1c4df", "May 2020", "ES2011/2015"},
		}),
		mkEngine("QuickJS", []versionRow{
			{"2019-07-09", "9ccefbf", "Jul. 2019", "ES2019"},
			{"2019-09-01", "3608b16", "Sep. 2019", "ES2019"},
			{"2019-09-18", "6e76fd9", "Sep. 2019", "ES2019"},
			{"2019-10-27", "eb34626", "Oct. 2019", "ES2019"},
			{"2020-01-05", "91459fb", "Jan. 2020", "ES2019"},
			{"2020-04-12", "1722758", "Apr. 2020", "ES2019"},
		}),
		mkEngine("Graaljs", []versionRow{
			{"v20.1.0", "299f61f", "May 2020", "ES2020"},
		}),
	}
	for _, e := range allEngines {
		for _, v := range e.Versions {
			allTestbeds = append(allTestbeds, Testbed{Version: v}, Testbed{Version: v, Strict: true})
		}
	}
}

// ByName returns the engine family with the given name.
func ByName(name string) (*Engine, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// FindVersion resolves an engine name plus version string (matching either
// Name or Build) to a Version.
func FindVersion(engine, version string) (Version, bool) {
	e, ok := ByName(engine)
	if !ok {
		return Version{}, false
	}
	for _, v := range e.Versions {
		if v.Name == version || v.Build == version {
			return v, true
		}
	}
	return Version{}, false
}

// Testbed is one engine-version in one execution mode (normal or strict),
// matching the paper's 102-testbed setup.
type Testbed struct {
	Version Version
	Strict  bool
}

// ID returns a unique testbed identifier.
func (tb Testbed) ID() string {
	mode := "normal"
	if tb.Strict {
		mode = "strict"
	}
	return tb.Version.ID() + "#" + mode
}

// Testbeds enumerates all testbeds: every version × {normal, strict}. The
// enumeration is memoised; callers receive a fresh slice.
func Testbeds() []Testbed {
	allOnce.Do(buildInventory)
	out := make([]Testbed, len(allTestbeds))
	copy(out, allTestbeds)
	return out
}

// LatestTestbeds returns one normal-mode testbed per engine's newest
// version — the configuration used for fuzzer-comparison experiments.
func LatestTestbeds() []Testbed {
	var out []Testbed
	for _, e := range All() {
		out = append(out, Testbed{Version: e.Latest()})
	}
	return out
}

// ExecOutcome classifies the result of running one test case on one
// testbed (the per-engine leaf states of the paper's Figure 5).
type ExecOutcome int

// Per-testbed outcomes.
const (
	OutcomePass ExecOutcome = iota
	OutcomeParseError
	OutcomeException
	OutcomeCrash
	OutcomeTimeout
)

func (o ExecOutcome) String() string {
	switch o {
	case OutcomePass:
		return "pass"
	case OutcomeParseError:
		return "parse-error"
	case OutcomeException:
		return "exception"
	case OutcomeCrash:
		return "crash"
	case OutcomeTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// ExecResult is the observable behaviour of one run, plus evaluator
// diagnostics (the inline-cache counters) that are not part of the
// behaviour: Key() and the differential oracles never consult them.
type ExecResult struct {
	Outcome  ExecOutcome
	Output   string // print() output
	Error    string // exception rendering (name: message) or parse error
	ErrName  string // exception constructor name for classification
	FuelUsed int64
	// EarlyError marks a pre-execution SyntaxError from the static
	// analyzer (Outcome is OutcomeParseError): the program violated a
	// static-semantics rule every testbed enforces identically. Part of
	// the observable semantics — both the cached-report path and the
	// DisableAnalyze recompute path must produce it byte-identically.
	EarlyError bool
	// Panic marks an OutcomeCrash produced by the panic-isolation layer:
	// the evaluator panicked mid-run and the recover() converted it into a
	// classified crash instead of killing the process. The interpreter is
	// deterministic, so a panicking (defect, src, fuel, seed) panics — with
	// the same rendering, partial output and fuel — on every run.
	Panic bool
	// WallClock marks an OutcomeTimeout raised by the wall-clock watchdog
	// (interp.AbortDeadline) rather than fuel exhaustion: the case hung in
	// real time while its step budget still had headroom. Classification
	// treats such entries as deviant without the 2× fuel test — a hung
	// engine is anomalous no matter how little fuel it burned.
	WallClock bool
	// ICHit/ICMiss/ICMega count the compiled evaluator's inline-cache
	// probes for this run (all zero under DisableShapes/DisableCompile).
	ICHit, ICMiss, ICMega uint64
}

// Semantics returns the result with the evaluator diagnostics cleared —
// the observable behaviour (outcome, output, error rendering, fuel) the
// differential oracles compare byte-for-byte. The inline-cache counters
// are legitimately path-dependent and must not feed an oracle.
func (r ExecResult) Semantics() ExecResult {
	r.ICHit, r.ICMiss, r.ICMega = 0, 0, 0
	return r
}

// Key renders the behaviour for differential comparison: two testbeds agree
// iff their keys are equal.
func (r ExecResult) Key() string {
	return fmt.Sprintf("%s|%s|%s", r.Outcome, r.Output, r.ErrName)
}

// RunOptions parameterise a testbed execution.
type RunOptions struct {
	Fuel int64
	Seed int64
	Cov  *interp.Coverage
	// DisableResolve keeps the execution on the dynamic map-scope
	// evaluator instead of the resolve-once slot path — honoured by the
	// single-defect executors (RunWithDefect, DefectRunner,
	// DivergesRunners) so a DisableResolve campaign's attribution and
	// reduction replay on the evaluator that observed the divergence.
	// The scheduler path carries the same knob in exec.Config instead
	// (its compiled programs are cached across calls).
	DisableResolve bool
	// DisableCompile keeps execution on the (resolved) tree-walking
	// evaluator instead of the thunk-compiled closure path — the
	// differential oracle and ablation knob for internal/js/compile,
	// mirrored by exec.Config and campaign.Config for the scheduler path.
	DisableCompile bool
	// DisableShapes keeps objects on dictionary-mode property maps and
	// leaves the compiled evaluator's inline caches empty — the
	// differential oracle and ablation knob for the hidden-class object
	// layout, mirrored by exec.Config and campaign.Config.
	DisableShapes bool
	// DisableAnalyze bypasses the report cached on the program
	// (ast.Program.Analysis) and recomputes the early-error verdict from
	// the AST on every execution — the differential oracle and ablation
	// knob for internal/js/analyze, mirrored by exec.Config and
	// campaign.Config. The observable semantics are identical in both
	// modes; the knob validates the analyze-once publication machinery.
	DisableAnalyze bool
	// Watchdog is the wall-clock deadline probe threaded into
	// interp.Config.Watchdog (see there): polled every
	// interp.WatchdogStride fuel steps, a true return classifies the run
	// as a WallClock timeout. Nil disables the watchdog entirely.
	Watchdog func() bool
	// InjectPanic makes the execution panic inside the guarded evaluator
	// region — the fault-injection harness's hook for proving that the
	// panic-isolation layer converts evaluator panics into classified
	// crash results. Always false in normal operation.
	InjectPanic bool
}

// ActiveDefects returns the catalog defects present in the given version.
func ActiveDefects(v Version) []*Defect {
	var out []*Defect
	for _, d := range Catalog() {
		if d.ActiveIn(v) {
			out = append(out, d)
		}
	}
	return out
}

// Run executes src on the testbed and classifies the outcome. It is a thin
// wrapper over Prepare().Run — the active defect set, hook chain and option
// deltas are resolved once per version×mode and memoised.
func (tb Testbed) Run(src string, opts RunOptions) ExecResult {
	return tb.Prepare().Run(src, opts)
}

// ReferenceTestbed returns the defect-free reference testbed in the given
// mode; prepare it once to run many candidates against the conformance
// oracle (reduction predicates, witness replay).
func ReferenceTestbed(strict bool) Testbed {
	return Testbed{Version: Version{Engine: "Reference", Name: "spec", rank: 0}, Strict: strict}
}

// Reference runs src on the defect-free reference runtime (the conformance
// oracle used by witness tests and ground-truth accounting).
func Reference(src string, strict bool, opts RunOptions) ExecResult {
	return ReferenceTestbed(strict).Run(src, opts)
}
