package server

import (
	"testing"
	"time"

	"comfort/internal/campaign"
)

// TestHubSlowSubscriberNeverBlocksPublish is the backpressure contract: a
// subscriber that never reads cannot stall the publisher. Publishing far
// more samples than any buffer holds must complete promptly, shedding the
// oldest samples while keeping the newest reachable.
func TestHubSlowSubscriberNeverBlocksPublish(t *testing.T) {
	h := newHub()
	dead := h.subscribe() // never read from
	const n = 10000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= n; i++ {
			h.publish(Sample{JobID: "job-000001", State: StateRunning,
				Progress: campaign.Progress{Done: i, Total: n}})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publish blocked on a dead subscriber")
	}
	if got := h.droppedCount(); got < n-subBuffer {
		t.Fatalf("dropped %d samples, want >= %d (drop-oldest under overflow)", got, n-subBuffer)
	}
	// The buffer holds the most recent window, newest last.
	var last Sample
	drained := 0
	for {
		select {
		case s := <-dead.ch:
			last, drained = s, drained+1
			continue
		default:
		}
		break
	}
	if drained == 0 || drained > subBuffer {
		t.Fatalf("dead subscriber buffered %d samples, want 1..%d", drained, subBuffer)
	}
	if last.Done != n {
		t.Fatalf("newest buffered sample is Done=%d, want %d (oldest must be shed first)", last.Done, n)
	}
}

// TestHubLateSubscriberSeesLastSample: subscribing after samples have
// flowed delivers the current position immediately.
func TestHubLateSubscriberSeesLastSample(t *testing.T) {
	h := newHub()
	h.publish(Sample{JobID: "j", State: StateRunning, Progress: campaign.Progress{Done: 42, Total: 100}})
	sub := h.subscribe()
	select {
	case s := <-sub.ch:
		if s.Done != 42 {
			t.Fatalf("late subscriber got Done=%d, want 42", s.Done)
		}
	default:
		t.Fatal("late subscriber received nothing")
	}
	h.close()
	if _, open := <-sub.ch; open {
		t.Fatal("subscriber channel still open after hub close")
	}
	// Subscribing to a closed hub yields the last sample, then EOF.
	after := h.subscribe()
	s, open := <-after.ch
	if !open || s.Done != 42 {
		t.Fatalf("post-close subscriber got (%+v, open=%v), want last sample then close", s, open)
	}
	if _, open := <-after.ch; open {
		t.Fatal("post-close subscriber channel not closed")
	}
}

// TestHubPublishAfterCloseIsIgnored guards the shutdown race: campaign
// progress callbacks may still fire while a job is being finalised.
func TestHubPublishAfterCloseIsIgnored(t *testing.T) {
	h := newHub()
	h.close()
	h.publish(Sample{JobID: "j", State: StateRunning}) // must not panic
	h.close()                                          // idempotent
}

// TestSlowSubscriberDoesNotStallCampaign is the end-to-end version: a job
// with an attached never-reading stream subscriber must still run to
// completion at full speed.
func TestSlowSubscriberDoesNotStallCampaign(t *testing.T) {
	opt := testOptions(t)
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	st, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 4,
		CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := s.Subscribe(st.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	_ = sub // deliberately never read
	waitIdle(t, s)
	final, _ := s.JobStatus(st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s with a dead subscriber attached, want done", final.State)
	}
	// The dead subscriber's buffer ends with the terminal sample still
	// reachable after drop-oldest shedding.
	var last Sample
	got := false
	for sample := range sub.ch { // closed by the terminal transition
		last, got = sample, true
	}
	if !got || last.State != StateDone {
		t.Fatalf("dead subscriber's newest sample is %+v, want terminal done sample", last)
	}
}
