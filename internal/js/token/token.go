// Package token defines the lexical tokens of the JavaScript subset
// implemented by this repository's engines, together with source positions.
package token

import "fmt"

// Type identifies the class of a lexical token.
type Type int

// Token types. Keyword and punctuator tokens each get their own type so the
// parser can switch on them directly.
const (
	ILLEGAL Type = iota
	EOF

	// Literals and names.
	IDENT    // foo
	NUMBER   // 3.14, 0x1f, 1e9
	STRING   // "abc", 'abc'
	TEMPLATE // `a${b}c` (raw body, without backticks)
	REGEX    // /ab+c/gi (raw body including delimiters and flags)

	keywordBeg
	// Keywords.
	VAR
	LET
	CONST
	FUNCTION
	RETURN
	IF
	ELSE
	FOR
	WHILE
	DO
	BREAK
	CONTINUE
	NEW
	DELETE
	TYPEOF
	INSTANCEOF
	IN
	OF
	VOID
	THIS
	NULL
	TRUE
	FALSE
	SWITCH
	CASE
	DEFAULT
	THROW
	TRY
	CATCH
	FINALLY
	DEBUGGER
	CLASS
	EXTENDS
	SUPER
	GET
	SET
	keywordEnd

	// Punctuators.
	LPAREN   // (
	RPAREN   // )
	LBRACK   // [
	RBRACK   // ]
	LBRACE   // {
	RBRACE   // }
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ELLIPSIS // ...
	ARROW    // =>
	QUESTION // ?
	COLON    // :

	ASSIGN        // =
	PLUSASSIGN    // +=
	MINUSASSIGN   // -=
	STARASSIGN    // *=
	SLASHASSIGN   // /=
	PERCENTASSIGN // %=
	POWASSIGN     // **=
	SHLASSIGN     // <<=
	SHRASSIGN     // >>=
	USHRASSIGN    // >>>=
	ANDASSIGN     // &=
	ORASSIGN      // |=
	XORASSIGN     // ^=
	LOGANDASSIGN  // &&=
	LOGORASSIGN   // ||=
	NULLISHASSIGN // ??=

	EQ       // ==
	STRICTEQ // ===
	NEQ      // !=
	STRICTNE // !==
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	POW     // **
	INC     // ++
	DEC     // --

	SHL  // <<
	SHR  // >>
	USHR // >>>

	AND  // &
	OR   // |
	XOR  // ^
	NOT  // !
	BNOT // ~

	LOGAND  // &&
	LOGOR   // ||
	NULLISH // ??
)

var names = map[Type]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", NUMBER: "NUMBER",
	STRING: "STRING", TEMPLATE: "TEMPLATE", REGEX: "REGEX",
	VAR: "var", LET: "let", CONST: "const", FUNCTION: "function",
	RETURN: "return", IF: "if", ELSE: "else", FOR: "for", WHILE: "while",
	DO: "do", BREAK: "break", CONTINUE: "continue", NEW: "new",
	DELETE: "delete", TYPEOF: "typeof", INSTANCEOF: "instanceof", IN: "in",
	OF: "of", VOID: "void", THIS: "this", NULL: "null", TRUE: "true",
	FALSE: "false", SWITCH: "switch", CASE: "case", DEFAULT: "default",
	THROW: "throw", TRY: "try", CATCH: "catch", FINALLY: "finally",
	DEBUGGER: "debugger", CLASS: "class", EXTENDS: "extends", SUPER: "super",
	GET: "get", SET: "set",
	LPAREN: "(", RPAREN: ")", LBRACK: "[", RBRACK: "]", LBRACE: "{",
	RBRACE: "}", SEMI: ";", COMMA: ",", DOT: ".", ELLIPSIS: "...",
	ARROW: "=>", QUESTION: "?", COLON: ":",
	ASSIGN: "=", PLUSASSIGN: "+=", MINUSASSIGN: "-=", STARASSIGN: "*=",
	SLASHASSIGN: "/=", PERCENTASSIGN: "%=", POWASSIGN: "**=",
	SHLASSIGN: "<<=", SHRASSIGN: ">>=", USHRASSIGN: ">>>=",
	ANDASSIGN: "&=", ORASSIGN: "|=", XORASSIGN: "^=",
	LOGANDASSIGN: "&&=", LOGORASSIGN: "||=", NULLISHASSIGN: "??=",
	EQ: "==", STRICTEQ: "===", NEQ: "!=", STRICTNE: "!==",
	LT: "<", GT: ">", LE: "<=", GE: ">=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", POW: "**",
	INC: "++", DEC: "--", SHL: "<<", SHR: ">>", USHR: ">>>",
	AND: "&", OR: "|", XOR: "^", NOT: "!", BNOT: "~",
	LOGAND: "&&", LOGOR: "||", NULLISH: "??",
}

// String returns the canonical spelling of the token type.
func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// IsKeyword reports whether the type is a reserved word.
func (t Type) IsKeyword() bool { return t > keywordBeg && t < keywordEnd }

// keywords maps spellings to keyword token types. get/set are contextual:
// the lexer emits them as IDENT and the parser upgrades them when needed.
var keywords = map[string]Type{
	"var": VAR, "let": LET, "const": CONST, "function": FUNCTION,
	"return": RETURN, "if": IF, "else": ELSE, "for": FOR, "while": WHILE,
	"do": DO, "break": BREAK, "continue": CONTINUE, "new": NEW,
	"delete": DELETE, "typeof": TYPEOF, "instanceof": INSTANCEOF, "in": IN,
	"void": VOID, "this": THIS, "null": NULL, "true": TRUE, "false": FALSE,
	"switch": SWITCH, "case": CASE, "default": DEFAULT, "throw": THROW,
	"try": TRY, "catch": CATCH, "finally": FINALLY, "debugger": DEBUGGER,
	"class": CLASS, "extends": EXTENDS, "super": SUPER,
}

// Lookup maps an identifier spelling to its keyword type, or IDENT.
// "of" is contextual (only a keyword in for-of heads) and is returned as
// IDENT; the parser recognises it by spelling.
func Lookup(ident string) Type {
	if t, ok := keywords[ident]; ok {
		return t
	}
	return IDENT
}

// Pos is a byte offset plus 1-based line/column within the source text.
type Pos struct {
	Offset int
	Line   int
	Col    int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token: its type, literal spelling and position.
type Token struct {
	Type    Type
	Literal string
	Pos     Pos
	// NewlineBefore records whether a line terminator appeared between the
	// previous token and this one; the parser uses it for automatic
	// semicolon insertion and restricted productions (return/throw/++/--).
	NewlineBefore bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Type {
	case IDENT, NUMBER, STRING, TEMPLATE, REGEX, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Type, t.Literal)
	default:
		return t.Type.String()
	}
}
