package spec

import (
	"regexp"
	"strings"
)

// The extractor mirrors the paper's Section 3.1 pipeline: an HTML content
// analysis pass (the Tika substitute) locates each function clause and its
// numbered algorithm steps; hand-written regular expressions then mine the
// initialisation and boundary-condition rules.

// Clause is one extracted specification clause before rule mining.
type Clause struct {
	ID        string
	Signature string   // e.g. "String.prototype.substr ( start, length )"
	Steps     []string // numbered pseudo-code steps (empty for prose clauses)
	Prose     string   // prose body for natural-language clauses
}

var (
	clauseRe = regexp.MustCompile(`(?s)<emu-clause id="([^"]+)">\s*<h1>([^<]+)</h1>(.*?)</emu-clause>`)
	stepRe   = regexp.MustCompile(`(?s)<li>(.*?)</li>`)
	tagRe    = regexp.MustCompile(`<[^>]+>`)
	wsRe     = regexp.MustCompile(`\s+`)
)

// ExtractClauses performs the structural pass over the HTML document.
func ExtractClauses(html string) []Clause {
	var out []Clause
	for _, m := range clauseRe.FindAllStringSubmatch(html, -1) {
		c := Clause{ID: m[1], Signature: cleanText(m[2])}
		body := m[3]
		if strings.Contains(body, "<emu-alg>") {
			for _, sm := range stepRe.FindAllStringSubmatch(body, -1) {
				c.Steps = append(c.Steps, cleanText(sm[1]))
			}
		} else {
			c.Prose = cleanText(body)
		}
		out = append(out, c)
	}
	return out
}

// cleanText is the Tika substitute: strip tags, decode the entities the
// document uses, and normalise whitespace.
func cleanText(s string) string {
	s = tagRe.ReplaceAllString(s, "")
	replacements := [][2]string{
		{"&lt;", "<"}, {"&gt;", ">"}, {"&le;", "<="}, {"&ge;", ">="},
		{"&infin;", "Infinity"}, {"&amp;", "&"}, {"&quot;", "\""},
	}
	for _, r := range replacements {
		s = strings.ReplaceAll(s, r[0], r[1])
	}
	return strings.TrimSpace(wsRe.ReplaceAllString(s, " "))
}

// signatureRe parses "Name ( p1, p2 )" headings.
var signatureRe = regexp.MustCompile(`^([\w.$]+)\s*\(\s*([^)]*)\)`)

// Rule-mining regular expressions (the paper's `^Let $Var be $Func$` family).
var (
	letConvRe   = regexp.MustCompile(`[Ll]et (\w+) be To(\w+)\((\w+)\)`)
	undefinedRe = regexp.MustCompile(`If (\w+) is undefined`)
	ltZeroRe    = regexp.MustCompile(`If (\w+) < 0`)
	cmpRe       = regexp.MustCompile(`If (\w+) (<|>|<=|>=) (-?\d+)(?: or (\w+) (<|>|<=|>=) (-?\d+))?, throw a (\w+) exception`)
	isNaNRe     = regexp.MustCompile(`If (\w+) is NaN`)
	isInfRe     = regexp.MustCompile(`If (\w+) is \+?Infinity`)
	notObjRe    = regexp.MustCompile(`If (?:Type\((\w+)\) is not Object|(\w+) is not an object), throw a TypeError`)
	regexpArgRe = regexp.MustCompile(`Let isRegExp be IsRegExp\((\w+)\)`)
	nullishRe   = regexp.MustCompile(`If (\w+) is undefined or null`)
	notStringRe = regexp.MustCompile(`If Type\((\w+)\) is not String, return`)
)

// mineParam accumulates extracted knowledge about one parameter.
type minedParam struct {
	typ        string
	conditions []string
	scopes     []int
	extras     []string // extra boundary literals from numeric comparisons
}

// MineRules applies the regex rule set to a clause, producing the API rule
// of Figure 4, or ok=false for clauses the extractor cannot mine (prose
// definitions, parameterless clauses).
func MineRules(c Clause) (APIRule, bool) {
	if len(c.Steps) == 0 {
		return APIRule{}, false
	}
	sig := signatureRe.FindStringSubmatch(c.Signature)
	if sig == nil {
		return APIRule{}, false
	}
	name := sig[1]
	var params []string
	for _, p := range strings.Split(sig[2], ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			params = append(params, p)
		}
	}
	if len(params) == 0 {
		return APIRule{}, false
	}
	mined := map[string]*minedParam{}
	for _, p := range params {
		mined[p] = &minedParam{}
	}
	get := func(n string) *minedParam {
		if m, ok := mined[n]; ok {
			return m
		}
		return nil
	}
	for i, step := range c.Steps {
		for _, m := range letConvRe.FindAllStringSubmatch(step, -1) {
			if p := get(m[3]); p != nil && p.typ == "" {
				p.typ = convTypeName(m[2])
			}
		}
		for _, m := range undefinedRe.FindAllStringSubmatch(step, -1) {
			if p := get(m[1]); p != nil {
				p.conditions = append(p.conditions, m[1]+" === undefined")
			}
		}
		for _, m := range nullishRe.FindAllStringSubmatch(step, -1) {
			if p := get(m[1]); p != nil {
				p.conditions = append(p.conditions, m[1]+" == null")
			}
		}
		for _, m := range ltZeroRe.FindAllStringSubmatch(step, -1) {
			// The `< 0` subject is often a derived variable (intStart);
			// attribute it to the parameter it was converted from.
			if p := findSourceParam(c.Steps[:i+1], m[1], mined); p != nil {
				p.conditions = append(p.conditions, m[1]+" < 0")
				p.scopes = append(p.scopes, 0)
			}
		}
		for _, m := range cmpRe.FindAllStringSubmatch(step, -1) {
			if p := findSourceParam(c.Steps[:i+1], m[1], mined); p != nil {
				p.conditions = append(p.conditions, m[1]+" "+m[2]+" "+m[3]+" -> "+m[7])
				p.extras = append(p.extras, boundaryNeighbours(m[3])...)
			}
			if m[4] != "" {
				if p := findSourceParam(c.Steps[:i+1], m[4], mined); p != nil {
					p.conditions = append(p.conditions, m[4]+" "+m[5]+" "+m[6]+" -> "+m[7])
					p.extras = append(p.extras, boundaryNeighbours(m[6])...)
				}
			}
		}
		for _, m := range isNaNRe.FindAllStringSubmatch(step, -1) {
			if p := findSourceParam(c.Steps[:i+1], m[1], mined); p != nil {
				p.conditions = append(p.conditions, "isNaN("+m[1]+")")
			}
		}
		for _, m := range isInfRe.FindAllStringSubmatch(step, -1) {
			if p := findSourceParam(c.Steps[:i+1], m[1], mined); p != nil {
				p.conditions = append(p.conditions, m[1]+" === Infinity")
			}
		}
		for _, m := range notObjRe.FindAllStringSubmatch(step, -1) {
			pname := m[1]
			if pname == "" {
				pname = m[2]
			}
			if p := get(pname); p != nil {
				p.typ = "object"
				p.conditions = append(p.conditions, "Type("+pname+") !== Object -> TypeError")
			}
		}
		for _, m := range regexpArgRe.FindAllStringSubmatch(step, -1) {
			if p := get(m[1]); p != nil {
				p.conditions = append(p.conditions, "IsRegExp("+m[1]+") -> TypeError")
			}
		}
		for _, m := range notStringRe.FindAllStringSubmatch(step, -1) {
			if p := get(m[1]); p != nil {
				p.typ = "any"
				p.conditions = append(p.conditions, "typeof "+m[1]+" !== 'string' -> identity")
			}
		}
	}
	rule := APIRule{Name: name}
	for _, pn := range params {
		m := mined[pn]
		typ := m.typ
		if typ == "" {
			typ = "any"
		}
		rule.Params = append(rule.Params, ParamRule{
			Name:       pn,
			Type:       typ,
			Values:     boundaryValues(typ, m.conditions, m.extras),
			Scopes:     m.scopes,
			Conditions: m.conditions,
		})
	}
	return rule, true
}

// findSourceParam maps a derived variable (e.g. intStart) back to the
// parameter it was converted from via an earlier `Let X be ToY(param)` step,
// falling back to a direct parameter-name match.
func findSourceParam(steps []string, varName string, mined map[string]*minedParam) *minedParam {
	if p, ok := mined[varName]; ok {
		return p
	}
	for _, step := range steps {
		for _, m := range letConvRe.FindAllStringSubmatch(step, -1) {
			if m[1] == varName {
				if p, ok := mined[m[3]]; ok {
					return p
				}
			}
		}
	}
	return nil
}

// convTypeName maps a To* abstract operation to the Figure-4 type label.
func convTypeName(op string) string {
	switch op {
	case "Integer", "Int32", "Uint32", "Length", "Index", "IntegerOrInfinity":
		return "integer"
	case "Number":
		return "number"
	case "String", "PropertyKey":
		return "string"
	case "Boolean":
		return "boolean"
	case "Object", "PropertyDescriptor":
		return "object"
	default:
		return "any"
	}
}

// boundaryNeighbours yields the literals adjacent to a numeric bound (the
// classic off-by-one probes).
func boundaryNeighbours(bound string) []string {
	switch bound {
	case "0":
		return []string{"0", "-1", "1"}
	case "100":
		return []string{"100", "101", "99"}
	case "36":
		return []string{"36", "37", "2", "1"}
	case "2":
		return []string{"2", "1", "37"}
	case "1":
		return []string{"1", "0", "101"}
	default:
		return []string{bound}
	}
}

// boundaryValues synthesises the Figure-4 "values" list for a parameter.
// Condition-derived probes lead the list (Figure 4(b) puts "undefined"
// first for substr's length) so tight mutation budgets still hit them,
// followed by the numeric boundary neighbours, then the generic type probes.
func boundaryValues(typ string, conditions []string, extras []string) []string {
	var vals []string
	for _, c := range conditions {
		if strings.Contains(c, "undefined") {
			vals = append(vals, "undefined")
		}
		if strings.Contains(c, "IsRegExp") {
			vals = append(vals, "/a/")
		}
		if strings.Contains(c, "== null") {
			vals = append(vals, "null")
		}
		if strings.Contains(c, "< 0") {
			vals = append(vals, "-1")
		}
		if strings.Contains(c, "isNaN") {
			vals = append(vals, "NaN")
		}
	}
	vals = append(vals, extras...)
	switch typ {
	case "integer", "number":
		vals = append(vals, "1", "-1", "NaN", "0", "Infinity", "-Infinity", "3.14", "4294967296")
	case "string":
		vals = append(vals, `""`, `"a"`, `"0"`, `"Name: Albert"`, `" "`)
	case "boolean":
		vals = append(vals, "true", "false")
	case "object":
		vals = append(vals, "null", "{}", "[]", `"s"`, "5")
	default:
		vals = append(vals, "undefined", "null", "0", `""`, "true", "NaN")
	}
	return dedupeStrings(vals)
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
