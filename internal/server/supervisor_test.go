package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
)

// instantSleep makes backoff waits return immediately (still honouring
// cancellation), so retry chains run at test speed.
func instantSleep(ctx context.Context, d time.Duration) bool {
	return ctx.Err() == nil
}

// recordingSleep captures every backoff delay the supervisor schedules.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *recordingSleep) sleep(ctx context.Context, d time.Duration) bool {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
	return ctx.Err() == nil
}

func (r *recordingSleep) recorded() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.delays...)
}

// waitIdle polls until the supervisor has no runnable work, failing the
// test on timeout.
func waitIdle(t *testing.T, s *Supervisor) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for !s.Idle() {
		if time.Now().After(deadline) {
			var states []string
			for _, st := range s.List() {
				states = append(states, fmt.Sprintf("%s=%s(%d/%d r%d %q)",
					st.ID, st.State, st.CasesDone, st.CasesTotal, st.Retries, st.LastError))
			}
			t.Fatalf("supervisor did not go idle: %s", strings.Join(states, " "))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// expectedAccounting runs the spec's campaign directly — no server, no
// faults, no interruptions — and returns the canonical result bytes the
// server must reproduce.
func expectedAccounting(t *testing.T, sp Spec) []byte {
	t.Helper()
	f, ok := fuzzers.ByName(sp.Fuzzer)
	if !ok {
		t.Fatalf("unknown fuzzer %q", sp.Fuzzer)
	}
	res := campaign.Run(campaign.Config{
		Fuzzer:          f,
		Testbeds:        sp.testbeds(),
		Cases:           sp.Cases,
		Seed:            sp.Seed,
		Fuel:            sp.Fuel,
		ReduceWitnesses: sp.Reduce,
	})
	data, err := marshalAccounting(accountingOf(res))
	if err != nil {
		t.Fatalf("marshal baseline accounting: %v", err)
	}
	return data
}

func testOptions(t *testing.T) Options {
	t.Helper()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Store:         store,
		PoolWorkers:   2,
		MaxActive:     3,
		Sleep:         instantSleep,
		ProgressEvery: 4,
	}
}

// TestServerCrashRecoveryOracle is the server-level kill oracle: three
// concurrent jobs — one of them carrying an injected kill plan that makes
// its campaign die over and over — while the whole supervisor is
// repeatedly "SIGKILLed" (no drain, no flush, no status writes) at
// varying points and restarted over the same data directory. After
// convergence every job's result.json must be byte-identical to an
// uninterrupted direct campaign run of the same spec.
func TestServerCrashRecoveryOracle(t *testing.T) {
	specs := []Spec{
		{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 6, CheckpointEvery: 8},
		{Fuzzer: "COMFORT", Cases: 40, Seed: 7, TestbedLimit: 6, CheckpointEvery: 8,
			Faults: "kill=1"},
		{Fuzzer: "COMFORT", Cases: 32, Seed: 11, TestbedLimit: 4, CheckpointEvery: 8},
	}
	want := make([][]byte, len(specs))
	for i, sp := range specs {
		// The kill plan shapes when the campaign dies, never what it finds:
		// the baseline is the same spec without the plan.
		clean := sp
		clean.Faults = ""
		want[i] = expectedAccounting(t, clean)
	}

	opt := testOptions(t)
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		st, err := s.Submit(sp)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = st.ID
	}

	// Kill the server at increasing progress thresholds, restarting over
	// the same store each time; the final instance runs to convergence.
	thresholds := []int{8, 24, 48, 72}
	for round := 0; round < len(thresholds); round++ {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			total := 0
			for _, st := range s.List() {
				total += st.CasesDone
			}
			if total >= thresholds[round] || s.Idle() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d: never reached %d cases", round, thresholds[round])
			}
			time.Sleep(time.Millisecond)
		}
		s.kill()
		s, err = NewSupervisor(opt)
		if err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
	}
	waitIdle(t, s)
	defer s.Shutdown()

	for i, id := range ids {
		st, ok := s.JobStatus(id)
		if !ok {
			t.Fatalf("job %s lost across restarts", id)
		}
		if st.State != StateDone {
			t.Errorf("job %s: state %s (%d/%d, retries %d, last error %q), want done",
				id, st.State, st.CasesDone, st.CasesTotal, st.Retries, st.LastError)
			continue
		}
		got := s.Accounting(id)
		if got == nil {
			t.Errorf("job %s: no result.json", id)
			continue
		}
		if !bytes.Equal(got, want[i]) {
			t.Errorf("job %s: accounting diverged from uninterrupted baseline:\n--- want\n%s\n--- got\n%s",
				id, want[i], got)
		}
	}
}

// TestGracefulDrainResumesOnRestart pins the clean half of the shutdown
// contract: Shutdown checkpoints running work and marks it interrupted; a
// new supervisor over the same store re-queues it and completes it with
// baseline-identical accounting.
func TestGracefulDrainResumesOnRestart(t *testing.T) {
	sp := Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 6, CheckpointEvery: 8}
	want := expectedAccounting(t, sp)

	opt := testOptions(t)
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then drain.
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := s.JobStatus(st.ID)
		if cur.CasesDone > 0 || terminalState(cur.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never progressed")
		}
		time.Sleep(time.Millisecond)
	}
	s.Shutdown()

	cur, _ := s.JobStatus(st.ID)
	if cur.State != StateInterrupted && cur.State != StateDone {
		t.Fatalf("after drain: state %s, want interrupted (or done)", cur.State)
	}
	if _, err := s.Submit(sp); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err=%v, want ErrDraining", err)
	}

	s2, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s2)
	defer s2.Shutdown()
	final, _ := s2.JobStatus(st.ID)
	if final.State != StateDone {
		t.Fatalf("after restart: state %s (%q), want done", final.State, final.LastError)
	}
	if got := s2.Accounting(st.ID); !bytes.Equal(got, want) {
		t.Fatalf("drained+resumed accounting diverged:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestRetryBackoffScheduleIsDeterministic drives the retry machinery
// through the test seam: a job whose every attempt fails without progress
// must wait exactly retryDelay(seq, attempt) before each retry and be
// quarantined — last error preserved — when the budget is spent.
func TestRetryBackoffScheduleIsDeterministic(t *testing.T) {
	rec := &recordingSleep{}
	opt := testOptions(t)
	opt.Sleep = rec.sleep
	opt.MaxRetries = 3
	opt.BackoffBase = time.Second
	opt.BackoffMax = time.Minute
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	s.runHook = func(j *Job) error { return errors.New("injected attempt failure") }

	st, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 8, Seed: 2, TestbedLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)

	final, _ := s.JobStatus(st.ID)
	if final.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined", final.State)
	}
	if !strings.Contains(final.LastError, "injected attempt failure") ||
		!strings.Contains(final.LastError, "retries exhausted") {
		t.Fatalf("quarantine error not preserved/actionable: %q", final.LastError)
	}
	got := rec.recorded()
	if len(got) != opt.MaxRetries {
		t.Fatalf("recorded %d backoff waits %v, want %d", len(got), got, opt.MaxRetries)
	}
	for i, d := range got {
		want := retryDelay(opt.BackoffBase, opt.BackoffMax, st.Seq, i+1)
		if d != want {
			t.Errorf("attempt %d: slept %v, want %v", i+1, d, want)
		}
	}
	// The schedule itself must escalate: each base doubling dominates the
	// sub-base jitter.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Errorf("backoff not escalating: attempt %d slept %v after %v", i+1, got[i], got[i-1])
		}
	}
}

// TestRetryBudgetResetsOnProgress: attempts that advance the checkpoint
// must not burn the retry budget — a job killed more times than
// MaxRetries still completes as long as each life makes progress.
func TestRetryBudgetResetsOnProgress(t *testing.T) {
	opt := testOptions(t)
	opt.MaxRetries = 2
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// kill=1 dies after every first checkpoint write: 40 cases at cadence 8
	// is 4 deaths — twice the retry budget — each with fresh progress.
	st, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 4,
		CheckpointEvery: 8, Faults: "kill=1"})
	if err != nil {
		t.Fatal(err)
	}
	waitIdle(t, s)
	final, _ := s.JobStatus(st.ID)
	if final.State != StateDone {
		t.Fatalf("state %s (retries %d, %q), want done", final.State, final.Retries, final.LastError)
	}
}

// TestQuarantineOnCorruptCheckpoint: an unreadable checkpoint is a
// permanent failure — no retry can fix the bytes — and the job is
// quarantined immediately with the load error preserved.
func TestQuarantineOnCorruptCheckpoint(t *testing.T) {
	opt := testOptions(t)
	sp := Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 4, CheckpointEvery: 8}
	st := Status{ID: jobID(1), Seq: 1, State: StateQueued, CasesTotal: sp.Cases}
	if err := opt.Store.CreateJob(st, sp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(opt.Store.CheckpointPath(st.ID), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	waitIdle(t, s)
	final, _ := s.JobStatus(st.ID)
	if final.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined", final.State)
	}
	if !strings.Contains(final.LastError, "checkpoint unreadable") {
		t.Fatalf("last error %q does not name the corrupt checkpoint", final.LastError)
	}
	if final.Retries != 0 {
		t.Fatalf("permanent failure consumed %d retries, want 0", final.Retries)
	}
}

// TestQuarantineOnFingerprintMismatch is satellite coverage for the
// actionable-diff surface in the job API: a checkpoint written by a
// different campaign quarantines the job, and the preserved error names
// exactly the diverging config fields.
func TestQuarantineOnFingerprintMismatch(t *testing.T) {
	opt := testOptions(t)
	sp := Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 3, TestbedLimit: 4, CheckpointEvery: 8}
	st := Status{ID: jobID(1), Seq: 1, State: StateQueued, CasesTotal: sp.Cases}
	if err := opt.Store.CreateJob(st, sp); err != nil {
		t.Fatal(err)
	}
	// Plant a checkpoint from the same campaign shape but a different
	// seed, as a crashed run of a *different* job would have left behind.
	other := sp
	other.Seed = 2
	f, _ := fuzzers.ByName(other.Fuzzer)
	campaign.Run(campaign.Config{
		Fuzzer: f, Testbeds: other.testbeds(), Cases: other.Cases, Seed: other.Seed,
		CheckpointEvery: 8, Checkpoint: opt.Store.CheckpointPath(st.ID),
		Faults: faultinject.New(faultinject.Config{KillAtCheckpoints: []int{1}}),
	})
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	waitIdle(t, s)
	final, _ := s.JobStatus(st.ID)
	if final.State != StateQuarantined {
		t.Fatalf("state %s, want quarantined", final.State)
	}
	if !strings.Contains(final.LastError, "seed: checkpoint has 2, config has 3") {
		t.Fatalf("quarantine error not actionable: %q", final.LastError)
	}
	if strings.Contains(final.LastError, "fuzzer:") {
		t.Fatalf("quarantine error names non-diverging fields: %q", final.LastError)
	}
}

// TestAdmissionControl: the backlog bound rejects submissions with a
// QueueFullError carrying a retry-after hint, and frees up as jobs leave
// the queue.
func TestAdmissionControl(t *testing.T) {
	opt := testOptions(t)
	opt.MaxActive = 1
	opt.QueueMax = 1
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	long := Spec{Fuzzer: "COMFORT", Cases: 100000, Seed: 2, TestbedLimit: 2}
	first, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first job to occupy the single active slot, so the
	// backlog accounting below is deterministic.
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := s.JobStatus(first.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first job stuck in %s", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	second, err := s.Submit(long)
	if err != nil {
		t.Fatalf("backlog 0/1, submit rejected: %v", err)
	}
	_, err = s.Submit(long)
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("backlog 1/1, err=%v, want QueueFullError", err)
	}
	if qf.RetryAfter <= 0 {
		t.Fatalf("QueueFullError carries no retry-after hint: %+v", qf)
	}
	// Cancelling the queued job frees the backlog slot.
	if err := s.CancelJob(second.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(long); err != nil {
		t.Fatalf("after cancel, submit rejected: %v", err)
	}
	if err := s.CancelJob(first.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningJob: cancelling a running job drains its campaign,
// records the cancelled state with its accounted position, and keeps the
// checkpoint on disk.
func TestCancelRunningJob(t *testing.T) {
	opt := testOptions(t)
	s, err := NewSupervisor(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	st, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 100000, Seed: 2, TestbedLimit: 2,
		CheckpointEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := s.JobStatus(st.ID)
		if cur.State == StateRunning && cur.CasesDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.CancelJob(st.ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(time.Minute)
	for {
		cur, _ := s.JobStatus(st.ID)
		if terminalState(cur.State) {
			if cur.State != StateCancelled {
				t.Fatalf("state %s, want cancelled", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never landed, state %s", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.CancelJob(st.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("double cancel: err=%v, want ErrTerminal", err)
	}
	if _, err := os.Stat(opt.Store.CheckpointPath(st.ID)); err != nil {
		t.Fatalf("cancelled job's checkpoint discarded: %v", err)
	}
}

func init() {
	// Compile-time guard: the test spec's TestbedLimit values must stay
	// within the engine catalog.
	if len(engines.Testbeds()) < 6 {
		panic("engine catalog shrank below the testbed limits used in server tests")
	}
}
