package comfort

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// benchHistory mirrors BENCH_campaign.json — the machine-readable
// campaign-throughput trajectory that each perf PR appends to (the
// human-readable analysis lives in EXPERIMENTS.md).
type benchHistory struct {
	Benchmark string `json:"benchmark"`
	Metric    string `json:"metric"`
	Shape     string `json:"shape"`
	History   []struct {
		PR          int     `json:"pr"`
		ExecsPerSec float64 `json:"execs_per_sec"`
		Note        string  `json:"note"`
	} `json:"history"`
}

// TestBenchCampaignJSON keeps the perf-trajectory file parseable and
// coherent: strictly increasing PR numbers, positive measurements, and a
// trajectory that never ends below where it started — a PR that regresses
// the headline benchmark must say so in EXPERIMENTS.md, not silently
// corrupt the record.
func TestBenchCampaignJSON(t *testing.T) {
	raw, err := os.ReadFile("BENCH_campaign.json")
	if err != nil {
		t.Fatalf("BENCH_campaign.json unreadable: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var h benchHistory
	if err := dec.Decode(&h); err != nil {
		t.Fatalf("BENCH_campaign.json schema drift: %v", err)
	}
	if h.Benchmark != "BenchmarkCampaignThroughput" || h.Metric != "execs/sec" {
		t.Fatalf("unexpected benchmark/metric: %q / %q", h.Benchmark, h.Metric)
	}
	if len(h.History) == 0 {
		t.Fatal("empty history")
	}
	for i, e := range h.History {
		if e.ExecsPerSec <= 0 {
			t.Errorf("entry %d: non-positive measurement %v", i, e.ExecsPerSec)
		}
		if e.Note == "" {
			t.Errorf("entry %d: missing note", i)
		}
		if i > 0 && e.PR <= h.History[i-1].PR {
			t.Errorf("entry %d: PR numbers not strictly increasing (%d after %d)",
				i, e.PR, h.History[i-1].PR)
		}
	}
	if last, first := h.History[len(h.History)-1], h.History[0]; last.ExecsPerSec < first.ExecsPerSec {
		t.Errorf("trajectory ends below its start: %v < %v", last.ExecsPerSec, first.ExecsPerSec)
	}
}
