package engines

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/parser"
	"comfort/internal/js/regex"
)

// rhino seeds the 44 Rhino defects (44/29/29/4). Rhino gained ES2015
// support late, which is why v1.7.11/v1.7.12 dominate the counts (the
// paper's Table 3 discussion).
func (b *catalogBuilder) rhino() {
	// ---- v1.7.10: 2 verified/fixed, both new ----
	// Listing 4: toFixed out-of-range digits silently formats the number.
	b.add(&Defect{
		ID: "rh-001", Engine: "Rhino", AttrVersion: "v1.7.10",
		Component: CodeGen, APIType: "Number", API: "Number.prototype.toFixed",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note: "Listing 4: toFixed(-2) prints the value instead of throwing RangeError",
		Witness: `var foo = function(num) {
  var p = num.toFixed(-2);
  print(p);
};
var parameter = -634619;
foo(parameter);`,
		Hook: onAPI("Number.prototype.toFixed", argNeg(0),
			func(ctx *interp.HookCtx) *interp.Override {
				this := ctx.This
				return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
					if _, isThrow := interp.IsThrow(err); isThrow {
						if this.Kind() == interp.KindNumber {
							return interp.String(jsnum.Format(this.Num())), nil
						}
						if this.IsObject() && this.Obj().HasPrim {
							return interp.String(jsnum.Format(this.Obj().Prim.Num())), nil
						}
					}
					return res, err
				}}
			}),
	})
	// Listing 10 (CodeAlchemist case): no TypeError for a null receiver.
	b.add(&Defect{
		ID: "rh-002", Engine: "Rhino", AttrVersion: "v1.7.10",
		Component: Implementation, APIType: "String", API: "String.prototype.big",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Listing 10: String.prototype.big.call(null) does not throw",
		Witness: `var v0 = (function() {
  print(String.prototype.big.call(null));
});
v0();`,
		Hook: onAPI("String.prototype.big", func(ctx *interp.HookCtx) bool {
			return ctx.This.IsNullish()
		}, ret(interp.String("<big>null</big>"))),
	})

	// ---- v1.7.11: 17 submitted (8 verified+fixed, 9 unverified) ----
	// Listing 11 (Fuzzilli case): Object.seal crashes on String wrappers.
	b.add(&Defect{
		ID: "rh-003", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "Object", API: "Object.seal",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "Listing 11: Object.seal(new String(...)) crashes the engine",
		Witness: `function main() {
  var v2 = new String(2477);
  var v4 = Object.seal(v2);
}
main();`,
		Hook: onAPI("Object.seal", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() &&
				ctx.Args[0].Obj().Class == "String" && ctx.Args[0].Obj().HasPrim
		}, crash("segmentation fault in NativeString.sealObject")),
	})
	// Listing 12 (DIE case): compile() permitted on non-writable lastIndex.
	b.add(&Defect{
		ID: "rh-004", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: RegexEngine, APIType: "RegExp", API: "RegExp.prototype.compile",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "Listing 12: compile ignores a non-writable lastIndex property",
		Witness: `var regexp5 = new RegExp(/abc/);
Object.defineProperty(regexp5, "lastIndex", {value: "\\w?\\B", writable: false});
regex5 = regexp5.compile("def");
print(regexp5.lastIndex);`,
		Hook: onAPI("RegExp.prototype.compile", nil,
			func(ctx *interp.HookCtx) *interp.Override {
				this := ctx.This
				return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
					if _, isThrow := interp.IsThrow(err); isThrow {
						return this, nil
					}
					return res, err
				}}
			}),
	})
	// Listing 13 (Montage case): mutable function self-name binding.
	b.add(&Defect{
		ID: "rh-005", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "other", API: "funcname",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: false,
		Note: "Listing 13: named function expression self-name is writable",
		Witness: `(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());`,
		Configure: func(cfg *interp.Config) { cfg.MutableFuncName = true },
	})
	b.add(&Defect{
		ID: "rh-006", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "other", API: "parseInt",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "parseInt defaults leading-zero numerals to octal",
		Witness: `print(parseInt("010"));`,
		Hook: onAPI("parseInt", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) > 1 && !ctx.Args[1].IsUndefined() {
				return false
			}
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(strings.TrimSpace(ctx.Args[0].Str()), "0") &&
				len(strings.TrimSpace(ctx.Args[0].Str())) > 1 &&
				!strings.HasPrefix(strings.TrimSpace(ctx.Args[0].Str()), "0x")
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			s := strings.TrimSpace(ctx.Args[0].Str())
			val := 0.0
			for _, c := range s[1:] {
				if c < '0' || c > '7' {
					break
				}
				val = val*8 + float64(c-'0')
			}
			return interp.Number(val)
		})),
	})
	b.add(&Defect{
		ID: "rh-007", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "String", API: "String.prototype.charAt",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "charAt with a negative position wraps from the end",
		Witness: `print("abc".charAt(-1));`,
		Hook: onAPI("String.prototype.charAt", argNeg(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				s := []rune(ctx.This.Str())
				i := len(s) + int(ctx.Args[0].Num())
				if i >= 0 && i < len(s) {
					return interp.String(string(s[i]))
				}
				return interp.String("")
			})),
	})
	b.add(&Defect{
		ID: "rh-008", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "other", API: "Object.prototype.toString",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "Object.prototype.toString.call(null) reports [object Object]",
		Witness: `print(Object.prototype.toString.call(null));`,
		Hook: onAPI("Object.prototype.toString", func(ctx *interp.HookCtx) bool {
			return ctx.This.IsNull()
		}, ret(interp.String("[object Object]"))),
	})
	b.add(&Defect{
		ID: "rh-009", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects accessor properties in object literals",
		Witness:  `var o = {get x() { return 7; }}; print(o.x);`,
		PreParse: rejectSource("get x(", "invalid property id"),
	})
	b.add(&Defect{
		ID: "rh-010", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: StrictModeComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: false,
		WitnessStrict: true,
		Note:          "strict mode: legacy octal literals accepted",
		Witness:       `"use strict"; var x = 010; print(x);`,
		ParserOpts:    func(o *parser.Options) { o.AllowLegacyOctal = true },
	})
	// v1.7.11 unverified reports.
	b.add(&Defect{
		ID: "rh-011", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "Array", API: "Array.prototype.pop",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "pop on an empty array returns null instead of undefined",
		Witness: `print([].pop());`,
		Hook: onAPI("Array.prototype.pop", func(ctx *interp.HookCtx) bool {
			return ctx.This.IsObject() && ctx.This.Obj().IsArray() &&
				len(ctx.This.Obj().ArrayElems()) == 0
		}, ret(interp.Null())),
	})
	b.add(&Defect{
		ID: "rh-012", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "Array", API: "Array.prototype.concat",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "concat drops non-array arguments",
		Witness: `print([1].concat(2, [3]));`,
		Hook: onAPI("Array.prototype.concat", func(ctx *interp.HookCtx) bool {
			for _, a := range ctx.Args {
				if !a.IsObject() || !a.Obj().IsArray() {
					return true
				}
			}
			return false
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			var out []interp.Value
			if ctx.This.IsObject() && ctx.This.Obj().IsArray() {
				out = append(out, ctx.This.Obj().ArrayElems()...)
			}
			for _, a := range ctx.Args {
				if a.IsObject() && a.Obj().IsArray() {
					out = append(out, a.Obj().ArrayElems()...)
				}
			}
			return interp.ObjValue(ctx.In.NewArray(out))
		})),
	})
	b.add(&Defect{
		ID: "rh-013", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "String", API: "String.fromCharCode",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "fromCharCode(NaN) yields the string \"NaN\"",
		Witness: `print(String.fromCharCode(NaN).length);`,
		Hook:    onAPI("String.fromCharCode", argNaN(0), ret(interp.String("NaN"))),
	})
	b.add(&Defect{
		ID: "rh-014", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "Object", API: "Object.create",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Object.create(null) still inherits Object.prototype",
		Witness: `print(typeof Object.create(null).toString);`,
		Hook: onAPI("Object.create", argNull(0), retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.ObjValue(interp.NewObject(ctx.In.Protos["Object"]))
		})),
	})
	b.add(&Defect{
		ID: "rh-015", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "Date", API: "Date.prototype.getTime",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "getTime of an invalid Date returns 0 instead of NaN",
		Witness: `print(new Date("bogus").getTime());`,
		Hook: onAPI("Date.prototype.getTime", func(ctx *interp.HookCtx) bool {
			return ctx.This.IsObject() && ctx.This.Obj().Class == "Date" &&
				ctx.This.Obj().HasPrim && math.IsNaN(ctx.This.Obj().Prim.Num())
		}, ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "rh-016", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "other", API: "Math.log2",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Math.log2 of exact powers of two is off by 1 ULP",
		Witness: `print(Math.log2(8) === 3);`,
		Hook: onAPI("Math.log2", argNumber(0, func(f float64) bool {
			return f == 8 || f == 16 || f == 32
		}), retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.Number(math.Log2(ctx.Args[0].Num()) + 4.440892098500626e-16)
		})),
	})
	b.add(&Defect{
		ID: "rh-017", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: CodeGen, APIType: "other", API: "parseInt",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "parseInt does not trim leading whitespace",
		Witness: `print(parseInt("  42"));`,
		Hook: onAPI("parseInt", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(ctx.Args[0].Str(), " ")
		}, ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "rh-018", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "other", API: "Boolean",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Boolean(\"false\") returns false",
		Witness: `print(Boolean("false"));`,
		Hook: onAPI("Boolean", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				ctx.Args[0].Str() == "false"
		}, ret(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "rh-019", Engine: "Rhino", AttrVersion: "v1.7.11",
		Component: Implementation, APIType: "other", API: "Number.isInteger",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Number.isInteger coerces numeric strings",
		Witness: `print(Number.isInteger("5"));`,
		Hook: onAPI("Number.isInteger", argString(0), retFn(func(ctx *interp.HookCtx) interp.Value {
			f := jsnum.Parse(ctx.Args[0].Str())
			return interp.Bool(!math.IsNaN(f) && f == math.Trunc(f))
		})),
	})

	// ---- v1.7.12: 25 submitted (19 verified+fixed+new, 6 unverified) ----
	// The Figure 1/2 walkthrough bug: substr with an undefined length.
	b.add(&Defect{
		ID: "rh-020", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "String", API: "String.prototype.substr",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note: "Figure 2: substr(start, undefined) returns the empty string",
		Witness: `function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);`,
		Hook: onAPI("String.prototype.substr", argUndef(1), ret(interp.String(""))),
	})
	b.add(&Defect{
		ID: "rh-021", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "String", API: "String.prototype.startsWith",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "startsWith accepts RegExp arguments instead of throwing TypeError",
		Witness: `print("abc".startsWith(/a/));`,
		Hook: onAPI("String.prototype.startsWith", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && ctx.Args[0].Obj().Class == "RegExp"
		}, noThrow(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "rh-022", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "String", API: "String.prototype.trim",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "trim does not strip non-breaking spaces",
		Witness: "print(\"[\" + \" x \".trim() + \"]\");",
		Hook: onAPI("String.prototype.trim", func(ctx *interp.HookCtx) bool {
			return ctx.This.Kind() == interp.KindString && strings.ContainsRune(ctx.This.Str(), ' ')
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.String(strings.Trim(ctx.This.Str(), " \t\n\r\v\f"))
		})),
	})
	b.add(&Defect{
		ID: "rh-023", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note: "defineProperty ignores enumerable: false",
		Witness: `var o = {};
Object.defineProperty(o, "x", {value: 1, enumerable: false});
print(Object.keys(o).length);`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) < 3 || !ctx.Args[2].IsObject() {
				return false
			}
			d := ctx.Args[2].Obj()
			if p, ok := d.GetOwnProperty("enumerable"); ok {
				return !interp.ToBoolean(p.Value)
			}
			return false
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if len(ctx.Args) > 1 && ctx.Args[0].IsObject() {
				key := ctx.Args[1].Str()
				if p, ok := ctx.Args[0].Obj().GetOwnProperty(key); ok {
					p.Attr |= interp.Enumerable
					ctx.Args[0].Obj().DefineOwn(key, p)
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "rh-024", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Object", API: "Object.getOwnPropertyNames",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "getOwnPropertyNames omits non-enumerable properties (e.g. array length)",
		Witness: `print(Object.getOwnPropertyNames([1, 2]).length);`,
		Hook: onAPI("Object.getOwnPropertyNames", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject()
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			arr := ctx.In.NewArray(nil)
			for _, k := range ctx.Args[0].Obj().EnumerableKeys() {
				arr.AppendElem(interp.String(k))
			}
			return interp.ObjValue(arr)
		})),
	})
	b.add(&Defect{
		ID: "rh-025", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Object", API: "Object.entries",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "Object.entries includes inherited enumerable properties",
		Witness: `var o = Object.create({inh: 1});
o.own = 2;
print(Object.entries(o).length);`,
		Hook: onAPI("Object.entries", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && ctx.Args[0].Obj().Proto != nil &&
				len(ctx.Args[0].Obj().Proto.EnumerableKeys()) > 0
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if !res.IsObject() || !res.Obj().IsArray() {
				return res
			}
			proto := ctx.Args[0].Obj().Proto
			for _, k := range proto.EnumerableKeys() {
				if v, ok, _ := protoGet(ctx.In, proto, k); ok {
					pair := ctx.In.NewArray([]interp.Value{interp.String(k), v})
					res.Obj().AppendElem(interp.ObjValue(pair))
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "rh-026", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.fill",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "fill ignores its start argument",
		Witness: `print([0, 0, 0].fill(1, 1));`,
		Hook: onAPI("Array.prototype.fill", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && !ctx.Args[1].IsUndefined()
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			if ctx.This.IsObject() && ctx.This.Obj().IsArray() {
				elems := ctx.This.Obj().ArrayElems()
				for i := range elems {
					elems[i] = ctx.Args[0]
				}
			}
			return ctx.This
		})),
	})
	b.add(&Defect{
		ID: "rh-027", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.flat",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "flat(Infinity) only flattens one level",
		Witness: `print([1, [2, [3]]].flat(Infinity)[2] + 1);`,
		Hook: onAPI("Array.prototype.flat", argInf(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				var out []interp.Value
				if ctx.This.IsObject() && ctx.This.Obj().IsArray() {
					for _, e := range ctx.This.Obj().ArrayElems() {
						if e.IsObject() && e.Obj().IsArray() {
							out = append(out, e.Obj().ArrayElems()...)
						} else {
							out = append(out, e)
						}
					}
				}
				return interp.ObjValue(ctx.In.NewArray(out))
			})),
	})
	b.add(&Defect{
		ID: "rh-028", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Array", API: "Array.from",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "Array.from(string) returns a one-element array",
		Witness: `print(Array.from("abc").length);`,
		Hook: onAPI("Array.from", argString(0), retFn(func(ctx *interp.HookCtx) interp.Value {
			return interp.ObjValue(ctx.In.NewArray([]interp.Value{ctx.Args[0]}))
		})),
	})
	b.add(&Defect{
		ID: "rh-029", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "JSON", API: "JSON.stringify",
		Channel: ChannelGen, Verified: true, DevFixed: true, Test262: true, New: true,
		Note:    "JSON.stringify emits unquoted object keys",
		Witness: `print(JSON.stringify({a: 1, b: "x"}));`,
		Hook: onAPI("JSON.stringify", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].IsObject() && !ctx.Args[0].Obj().IsArray()
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if res.Kind() != interp.KindString {
				return res
			}
			s := res.Str()
			// Strip the quotes around keys: {"a":1} → {a:1}.
			s = strings.ReplaceAll(s, "{\"", "{")
			s = strings.ReplaceAll(s, ",\"", ",")
			s = strings.ReplaceAll(s, "\":", ":")
			return interp.String(s)
		})),
	})
	b.add(&Defect{
		ID: "rh-030", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "DataView", API: "DataView.prototype.getUint8",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note: "out-of-bounds getUint8 returns 0 instead of throwing RangeError",
		Witness: `var dv = new DataView(new ArrayBuffer(1));
print(dv.getUint8(5));`,
		Hook: onAPI("DataView.prototype.getUint8", nil, noThrow(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "rh-031", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "other", API: "Math.max",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "Math.max skips NaN arguments instead of returning NaN",
		Witness: `print(Math.max(NaN, 1));`,
		Hook: onAPI("Math.max", func(ctx *interp.HookCtx) bool {
			hasNaN, hasNum := false, false
			for _, a := range ctx.Args {
				if a.Kind() == interp.KindNumber {
					if math.IsNaN(a.Num()) {
						hasNaN = true
					} else {
						hasNum = true
					}
				}
			}
			return hasNaN && hasNum
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			best := math.Inf(-1)
			for _, a := range ctx.Args {
				if a.Kind() == interp.KindNumber && !math.IsNaN(a.Num()) && a.Num() > best {
					best = a.Num()
				}
			}
			return interp.Number(best)
		})),
	})
	b.add(&Defect{
		ID: "rh-032", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "other", API: "parseFloat",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "parseFloat of small exponents underflows to 0",
		Witness: `print(parseFloat("1e-7"));`,
		Hook: onAPI("parseFloat", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.Contains(ctx.Args[0].Str(), "e-")
		}, ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "rh-033", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "other", API: "Function.prototype.apply",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note: "apply with a null argument array throws TypeError",
		Witness: `function f() { return 7; }
print(f.apply(null, null));`,
		Hook: onAPI("Function.prototype.apply", argNull(1),
			throwE("TypeError", "second argument to Function.prototype.apply must be an array")),
	})
	b.add(&Defect{
		ID: "rh-034", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects the exponentiation operator",
		Witness:  `print(2 ** 10);`,
		PreParse: rejectSource("**", "invalid exponentiation expression"),
	})
	b.add(&Defect{
		ID: "rh-035", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		WitnessStrict: true,
		Note:          "strict mode: duplicate function parameters accepted",
		Witness:       `"use strict"; function f(a, a) { return a; } print(f(1, 2));`,
		ParserOpts:    func(o *parser.Options) { o.AllowDuplicateParams = true },
	})
	b.add(&Defect{
		ID: "rh-036", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:     "parser rejects for-of loops",
		Witness:  `for (var v of [1, 2]) print(v);`,
		PreParse: rejectSource(" of ", "invalid for..of construct"),
	})
	b.add(&Defect{
		ID: "rh-037", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: RegexEngine, APIType: "other", API: "String.prototype.match",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		Note:    "lazy quantifiers behave greedily in match",
		Witness: `print("aaa".match(/a+?/)[0].length);`,
		Hook: onRegex("String.prototype.match", func(pattern, flags string) bool {
			return strings.Contains(pattern, "+?") || strings.Contains(pattern, "*?")
		}, func(ctx *interp.HookCtx) *interp.Override {
			greedy := strings.ReplaceAll(strings.ReplaceAll(ctx.Pattern, "+?", "+"), "*?", "*")
			re, err := regex.Compile(greedy, ctx.Flags)
			if err != nil {
				return nil
			}
			input := ""
			if len(ctx.Args) > 0 {
				input = ctx.Args[0].Str()
			}
			m, err := re.Exec(input, 0)
			if err != nil || m == nil {
				return nil
			}
			return &interp.Override{Replace: true,
				Return: interp.ObjValue(fakeMatchObject(m.Groups[0][0], m.Groups[0][1]))}
		}),
	})
	b.add(&Defect{
		ID: "rh-038", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: StrictModeComp, APIType: "other", API: "assignment",
		Channel: ChannelGen, Verified: true, DevFixed: true, New: true,
		WitnessStrict: true,
		Note:          "strict mode: assignment to undeclared identifiers creates globals",
		Witness:       `"use strict"; undeclaredGlobal = 5; print(undeclaredGlobal);`,
		Configure:     func(cfg *interp.Config) { cfg.SloppyStrictAssign = true },
	})
	// v1.7.12 unverified reports.
	b.add(&Defect{
		ID: "rh-039", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Array", API: "Array.prototype.reverse",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "reverse returns a reversed copy without mutating the receiver",
		Witness: `var a = [1, 2, 3];
a.reverse();
print(a);`,
		Hook: onAPI("Array.prototype.reverse", nil, retFn(func(ctx *interp.HookCtx) interp.Value {
			if !ctx.This.IsObject() || !ctx.This.Obj().IsArray() {
				return ctx.This
			}
			elems := ctx.This.Obj().ArrayElems()
			out := make([]interp.Value, len(elems))
			for i, e := range elems {
				out[len(elems)-1-i] = e
			}
			return interp.ObjValue(ctx.In.NewArray(out))
		})),
	})
	b.add(&Defect{
		ID: "rh-040", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "String", API: "String.prototype.repeat",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "repeat throws RangeError for fractional counts",
		Witness: `print("ab".repeat(2.5));`,
		Hook: onAPI("String.prototype.repeat", argFrac(0),
			throwE("RangeError", "Invalid count value")),
	})
	b.add(&Defect{
		ID: "rh-041", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Object", API: "Object.assign",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "Object.assign(null, ...) returns null instead of throwing",
		Witness: `print(Object.assign(null, {a: 1}));`,
		Hook:    onAPI("Object.assign", argNull(0), noThrow(interp.Null())),
	})
	b.add(&Defect{
		ID: "rh-042", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: Implementation, APIType: "Number", API: "Number.isSafeInteger",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "isSafeInteger(2^53) returns true",
		Witness: `print(Number.isSafeInteger(9007199254740992));`,
		Hook: onAPI("Number.isSafeInteger",
			argNumber(0, func(f float64) bool { return f == 9007199254740992 }),
			ret(interp.Bool(true))),
	})
	b.add(&Defect{
		ID: "rh-043", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "other", API: "Math.fround",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Math.fround returns its argument without float32 rounding",
		Witness: `print(Math.fround(0.1) === 0.1);`,
		Hook: onAPI("Math.fround", nil, retFn(func(ctx *interp.HookCtx) interp.Value {
			if len(ctx.Args) > 0 {
				return ctx.Args[0]
			}
			return interp.Number(math.NaN())
		})),
	})
	b.add(&Defect{
		ID: "rh-044", Engine: "Rhino", AttrVersion: "v1.7.12",
		Component: CodeGen, APIType: "other", API: "parseInt",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "parseInt(\"Infinity\") returns Infinity instead of NaN",
		Witness: `print(parseInt("Infinity"));`,
		Hook: onAPI("parseInt", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.TrimSpace(ctx.Args[0].Str()) == "Infinity"
		}, ret(interp.Number(math.Inf(1)))),
	})
}
