package builtins

import (
	"strings"
	"testing"

	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// run executes src on a fresh runtime and returns printed output.
func run(t *testing.T, src string) string {
	t.Helper()
	out, err := runErr(src)
	if err != nil {
		t.Fatalf("run(%q): %v", src, err)
	}
	return out
}

// runErr executes src and returns output and any error.
func runErr(src string) (string, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	in := NewRuntime(interp.Config{Seed: 1})
	err = in.Run(prog)
	return in.Out.String(), err
}

// expectOut asserts that running src prints want (lines joined by \n).
func expectOut(t *testing.T, src, want string) {
	t.Helper()
	got := strings.TrimRight(run(t, src), "\n")
	if got != want {
		t.Errorf("source %q:\n got %q\nwant %q", src, got, want)
	}
}

// expectThrow asserts that running src throws an error whose name is kind.
func expectThrow(t *testing.T, src, kind string) {
	t.Helper()
	_, err := runErr(src)
	if err == nil {
		t.Fatalf("source %q: expected %s, ran normally", src, kind)
	}
	th, ok := interp.IsThrow(err)
	if !ok {
		t.Fatalf("source %q: expected %s, got %v", src, kind, err)
	}
	if name := interp.ErrorName(th.Val); name != kind {
		t.Errorf("source %q: expected %s, threw %s (%v)", src, kind, name, err)
	}
}

func TestBasicEvaluation(t *testing.T) {
	expectOut(t, `print(1 + 2);`, "3")
	expectOut(t, `print("a" + 1);`, "a1")
	expectOut(t, `print(1 + "a");`, "1a")
	expectOut(t, `var x = 10; x += 5; print(x);`, "15")
	expectOut(t, `print(7 % 3, 2 ** 10, 7 / 2);`, "1 1024 3.5")
	expectOut(t, `print(1 < 2, "a" < "b", 2 <= 2, 3 > 4);`, "true true true false")
	expectOut(t, `print(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 4, -16 >> 2, -16 >>> 28);`,
		"1 7 6 -6 16 -4 15")
	expectOut(t, `print(typeof 1, typeof "s", typeof undefined, typeof null, typeof {}, typeof print);`,
		"number string undefined object object function")
	expectOut(t, `print(0.1 + 0.2);`, "0.30000000000000004")
	expectOut(t, `print(1e21, 1e-7, -0);`, "1e+21 1e-7 0")
	expectOut(t, `print(NaN === NaN, null == undefined, null === undefined);`,
		"false true false")
	expectOut(t, `print("5" == 5, "5" === 5, true == 1, [] == "");`,
		"true false true true")
}

func TestControlFlow(t *testing.T) {
	expectOut(t, `var s = 0; for (var i = 0; i < 5; i++) { s += i; } print(s);`, "10")
	expectOut(t, `var s = ""; var o = {a: 1, b: 2}; for (var k in o) { s += k; } print(s);`, "ab")
	expectOut(t, `var s = 0; for (var v of [1, 2, 3]) { s += v; } print(s);`, "6")
	expectOut(t, `var i = 0; while (i < 3) { i++; } print(i);`, "3")
	expectOut(t, `var i = 0; do { i++; } while (i < 3); print(i);`, "3")
	expectOut(t, `
var s = "";
switch (2) {
  case 1: s += "one";
  case 2: s += "two";
  case 3: s += "three"; break;
  default: s += "other";
}
print(s);`, "twothree")
	expectOut(t, `
outer: for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 3; j++) {
    if (j === 1) continue outer;
    if (i === 2) break outer;
    print(i, j);
  }
}`, "0 0\n1 0")
	expectOut(t, `
try { throw new TypeError("boom"); }
catch (e) { print(e instanceof TypeError, e.message); }
finally { print("done"); }`, "true boom\ndone")
}

func TestFunctions(t *testing.T) {
	expectOut(t, `function add(a, b) { return a + b; } print(add(2, 3));`, "5")
	expectOut(t, `var f = function(x) { return x * 2; }; print(f(21));`, "42")
	expectOut(t, `var f = (x) => x + 1; print(f(1));`, "2")
	expectOut(t, `var f = x => { return x * 3; }; print(f(2));`, "6")
	expectOut(t, `
function counter() {
  var n = 0;
  return function() { n++; return n; };
}
var c = counter();
c(); c();
print(c());`, "3")
	expectOut(t, `function f() { return arguments.length + ":" + arguments[1]; } print(f(9, 8, 7));`, "3:8")
	expectOut(t, `function f(a, ...rest) { return rest.join("-"); } print(f(1, 2, 3, 4));`, "2-3-4")
	expectOut(t, `function f(x) { return this.v + x; } print(f.call({v: 10}, 5), f.apply({v: 1}, [2]));`, "15 3")
	expectOut(t, `function f(x, y) { return this.v + x + y; } var g = f.bind({v: 100}, 10); print(g(1));`, "111")
	expectOut(t, `
function Point(x, y) { this.x = x; this.y = y; }
Point.prototype.norm = function() { return this.x * this.x + this.y * this.y; };
var p = new Point(3, 4);
print(p.norm(), p instanceof Point);`, "25 true")
	expectOut(t, `print((function fact(n) { return n <= 1 ? 1 : n * fact(n - 1); })(10));`, "3628800")
}

func TestStringBuiltins(t *testing.T) {
	expectOut(t, `print("Name: Albert".substr(6, undefined));`, "Albert")
	expectOut(t, `print("hello".substr(1, 3), "hello".substr(-3));`, "ell llo")
	expectOut(t, `print("hello".slice(1, -1), "hello".substring(3, 1));`, "ell el")
	expectOut(t, `print("a-b-c".split("-").length, "abc".split("").join(","));`, "3 a,b,c")
	expectOut(t, `print("anA".split(/^A/));`, "anA")
	expectOut(t, `print("aXbXc".replace(/X/g, "-"), "aXbXc".replace("X", "-"));`, "a-b-c a-bXc")
	expectOut(t, `print("a1b22c".replace(/\d+/g, function(m) { return "[" + m + "]"; }));`, "a[1]b[22]c")
	expectOut(t, `print("hello world".indexOf("world"), "abcabc".lastIndexOf("b"));`, "6 4")
	expectOut(t, `print("HeLLo".toLowerCase(), "hi".toUpperCase());`, "hello HI")
	expectOut(t, `print("  pad  ".trim(), "5".padStart(3, "0"), "ab".repeat(3));`, "pad 005 ababab")
	expectOut(t, `print("abc".charAt(1), "abc".charCodeAt(0), String.fromCharCode(74, 83));`, "b 97 JS")
	expectOut(t, `print("café".length, "tested".includes("est"), "ab".startsWith("a"));`, "4 true true")
	expectOut(t, `var m = "2021-06-20".match(/(\d+)-(\d+)/); print(m[0], m[1], m[2], m.index);`, "2021-06 2021 06 0")
	expectOut(t, `print("".normalize(), "x".normalize("NFC"));`, " x")
	expectThrow(t, `"".normalize(true);`, "RangeError")
	expectThrow(t, `String.prototype.big.call(null);`, "TypeError")
	expectOut(t, `print("s".big());`, "<big>s</big>")
}

func TestArrayBuiltins(t *testing.T) {
	// Note: print stringifies its object arguments after all arguments are
	// evaluated, so the popped element is already gone from a.
	expectOut(t, `var a = [1, 2, 3]; a.push(4); print(a, a.length, a.pop(), a.length);`, "1,2,3 4 4 3")
	expectOut(t, `var a = [3, 1, 2]; print(a.sort(), [10, 9, 1].sort());`, "1,2,3 1,10,9")
	expectOut(t, `print([3, 1, 2].sort(function(x, y) { return x - y; }));`, "1,2,3")
	expectOut(t, `print([1, 2, 3].map(function(x) { return x * x; }));`, "1,4,9")
	expectOut(t, `print([1, 2, 3, 4].filter(function(x) { return x % 2 === 0; }));`, "2,4")
	expectOut(t, `print([1, 2, 3].reduce(function(a, b) { return a + b; }, 10));`, "16")
	expectOut(t, `print([1, 2, 3].indexOf(2), [1, 2].includes(3), [[1, [2]], 3].flat(2));`, "1 false 1,2,3")
	expectOut(t, `var a = [1, 2, 3, 4, 5]; print(a.slice(1, 3), a.splice(1, 2), a);`, "2,3 2,3 1,4,5")
	expectOut(t, `print([1, 2].concat([3], 4), ["b", "a"].reverse().join(""));`, "1,2,3,4 ab")
	expectOut(t, `print(Array.isArray([]), Array.isArray("no"), Array.of(1, 2).length);`, "true false 2")
	expectOut(t, `print(Array.from("abc"), Array.from([1, 2], function(x) { return x * 2; }));`, "a,b,c 2,4")
	expectOut(t, `var a = new Array(3); print(a.length); a[5] = 1; print(a.length);`, "3\n6")
	expectOut(t, `var a = [1, 2, 5]; a[true] = 10; print(a); print(a[true]);`, "1,2,5\n10")
	expectOut(t, `print([1, 2, 3].find(function(x) { return x > 1; }), [1, 2].some(function(x) { return x > 1; }), [1, 2].every(function(x) { return x > 0; }));`, "2 true true")
}

func TestObjectBuiltins(t *testing.T) {
	expectOut(t, `print(Object.keys({a: 1, b: 2}), Object.values({a: 1, b: 2}));`, "a,b 1,2")
	expectOut(t, `var o = {}; Object.defineProperty(o, "x", {value: 42}); print(o.x);`, "42")
	expectThrow(t, `
var arrobj = [0, 1];
Object.defineProperty(arrobj, "length", {value: 1, configurable: true});`, "TypeError")
	expectOut(t, `
var arrobj = [0, 1, 2];
Object.defineProperty(arrobj, "length", {value: 1});
print(arrobj.length, arrobj);`, "1 0")
	expectOut(t, `var o = Object.freeze({a: 1}); o.a = 2; print(o.a, Object.isFrozen(o));`, "1 true")
	expectOut(t, `var o = {a: 1}; print(o.hasOwnProperty("a"), o.hasOwnProperty("b"), "a" in o);`, "true false true")
	expectOut(t, `var o = Object.create({inherited: 7}); print(o.inherited, Object.getPrototypeOf(o).inherited);`, "7 7")
	expectOut(t, `print(Object.assign({}, {a: 1}, {b: 2}).b);`, "2")
	expectOut(t, `var o = {get x() { return 9; }, set x(v) { this.y = v; }}; print(o.x); o.x = 3; print(o.y);`, "9\n3")
	expectOut(t, `print(({}).toString(), [].toString(), Object.prototype.toString.call([]));`, "[object Object]  [object Array]")
	expectOut(t, `delete Object.prototype; print(typeof Object.prototype);`, "object")
}

func TestNumberMathJSON(t *testing.T) {
	expectOut(t, `print((255).toString(16), (8).toString(2));`, "ff 1000")
	expectOut(t, `print((3.14159).toFixed(2), (0.5).toFixed(0));`, "3.14 1")
	expectThrow(t, `(-634619).toFixed(-2);`, "RangeError")
	expectOut(t, `print(Number.isInteger(5), Number.isInteger(5.5), Number.MAX_SAFE_INTEGER);`,
		"true false 9007199254740991")
	expectOut(t, `print(parseInt("42px"), parseInt("0x1f"), parseInt("11", 2), parseFloat("3.5e2x"));`,
		"42 31 3 350")
	expectOut(t, `print(Math.max(1, 5, 3), Math.min(-1, 2), Math.abs(-7), Math.floor(2.7), Math.round(2.5), Math.round(-2.5));`,
		"5 -1 7 2 3 -2")
	expectOut(t, `print(Math.sqrt(16), Math.pow(2, 8), Math.sign(-3));`, "4 256 -1")
	expectOut(t, `print(JSON.stringify({a: [1, "x", null], b: true}));`, `{"a":[1,"x",null],"b":true}`)
	expectOut(t, `var o = JSON.parse('{"a": [1, 2], "b": "s"}'); print(o.a[1], o.b);`, "2 s")
	expectOut(t, `print(JSON.stringify(undefined), JSON.stringify(function() {}));`, "undefined undefined")
	expectThrow(t, `JSON.parse("{bad}");`, "SyntaxError")
	expectOut(t, `print(JSON.stringify({a:1}, null, 2));`, "{\n  \"a\": 1\n}")
}

func TestTypedArraysAndEval(t *testing.T) {
	expectOut(t, `var a = new Uint32Array(3.14); print(a.length);`, "3")
	expectOut(t, `var A = new Uint8Array(5); A.set("123"); print(A);`, "1,2,3,0,0")
	expectOut(t, `var a = new Int8Array([200, -1]); print(a[0], a[1]);`, "-56 -1")
	expectOut(t, `var b = new ArrayBuffer(4); var dv = new DataView(b); dv.setUint16(0, 513); print(dv.getUint8(0), dv.getUint8(1));`, "2 1")
	expectOut(t, `var f = new Float64Array(1); f[0] = 0.5; print(f[0]);`, "0.5")
	expectOut(t, `print(eval("1 + 2"), eval("'str'"));`, "3 str")
	expectThrow(t, `eval("for(;false;)");`, "SyntaxError")
	expectOut(t, `eval("var evalVar = 99;"); print(evalVar);`, "99")
}

func TestRegExpBuiltins(t *testing.T) {
	expectOut(t, `print(/ab+c/.test("xabbbc"), /^a/.test("ba"));`, "true false")
	expectOut(t, `var m = /(\w+)@(\w+)/.exec("mail: bob@host"); print(m[1], m[2], m.index);`, "bob host 6")
	expectOut(t, `var re = /a/g; re.exec("aa"); print(re.lastIndex);`, "1")
	expectOut(t, `print("aAbBcC".match(/[a-c]/gi).length);`, "6")
	expectOut(t, `print(new RegExp("x+").test("axxb"), String(/a/gi));`, "true /a/gi")
	expectOut(t, `print("abc".search(/c/), "abc".search(/z/));`, "2 -1")
	expectThrow(t, `new RegExp("(");`, "SyntaxError")
}

func TestStrictModeSemantics(t *testing.T) {
	expectThrow(t, `"use strict"; undeclared = 5;`, "ReferenceError")
	expectOut(t, `undeclared = 5; print(undeclared);`, "5")
	expectThrow(t, `"use strict"; var o = Object.freeze({a: 1}); o.a = 2;`, "TypeError")
	expectOut(t, `"use strict"; function f() { return this; } print(f() === undefined);`, "true")
	expectOut(t, `function f() { return this; } print(f() === globalThis);`, "true")
}

func TestBugWitnessBaseline(t *testing.T) {
	// The paper's bug-exposing listings must all behave per spec on the
	// reference (defect-free) runtime.
	expectOut(t, `
function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);`, "Albert") // Listing: Rhino substr conformance bug
	expectOut(t, `
var foo = function() {
  var e = '123';
  A = new Uint8Array(5);
  A.set(e);
  print(A);
};
foo();`, "1,2,3,0,0") // Listing 5: JSC TypedArray.set
	expectOut(t, `
var foo = function() {
  var property = true;
  var obj = [1, 2, 5];
  obj[property] = 10;
  print(obj);
  print(obj[property]);
};
foo();`, "1,2,5\n10") // Listing 6: QuickJS array property
	expectOut(t, `
(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());`, "true\nfunction") // Montage IIFE-name case
}

func TestDeterminism(t *testing.T) {
	src := `var a = []; for (var i = 0; i < 5; i++) a.push(Math.random()); print(a.join(","));`
	first := run(t, src)
	second := run(t, src)
	if first != second {
		t.Errorf("Math.random not deterministic across runs:\n%s\n%s", first, second)
	}
}

func TestFuelTimeout(t *testing.T) {
	prog, err := parser.Parse(`while (true) {}`)
	if err != nil {
		t.Fatal(err)
	}
	in := NewRuntime(interp.Config{Fuel: 10000})
	err = in.Run(prog)
	abort, ok := interp.IsAbort(err)
	if !ok || abort.Kind != interp.AbortTimeout {
		t.Fatalf("expected timeout abort, got %v", err)
	}
	if in.FuelUsed() < 9000 {
		t.Errorf("expected fuel to be consumed, used %d", in.FuelUsed())
	}
}
