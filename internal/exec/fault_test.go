package exec

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/faultinject"
)

// faultCfg is schedCfg plus an aggressive deterministic fault plan.
func faultCfg(workers int, plan *faultinject.Plan) Config {
	cfg := schedCfg(workers)
	cfg.Faults = plan
	return cfg
}

// TestInjectedFaultsSurfaceAsFindings pins the scheduler half of the fault
// harness: injected panics and hangs never kill the process — each targets
// one behaviour class of its case and surfaces as a crash/timeout verdict,
// counted in FaultStats.
func TestInjectedFaultsSurfaceAsFindings(t *testing.T) {
	// panic=2, slow=3: over six cases both fault kinds fire repeatedly.
	plan := faultinject.New(faultinject.Config{Seed: 5, PanicEvery: 2, SlowEvery: 3})
	s := New(faultCfg(4, plan))
	outcomes := collect(t, s, testSrcs)
	if len(outcomes) != len(testSrcs) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(testSrcs))
	}
	panics, wallTimeouts := s.FaultStats()
	if panics == 0 {
		t.Error("no injected panic fired at 1-in-2")
	}
	var crashes, hangs int
	for _, oc := range outcomes {
		fault, _ := plan.CaseFault(oc.Index)
		switch oc.Result.Verdict {
		case difftest.VerdictCrash:
			crashes++
			if fault != faultinject.FaultPanic {
				t.Errorf("case %d crashed without an injected panic", oc.Index)
			}
		case difftest.VerdictTimeout:
			hangs++
		}
		for _, e := range oc.Entries {
			if e.Result.Panic && fault != faultinject.FaultPanic {
				t.Errorf("case %d: spurious panic marker", oc.Index)
			}
		}
	}
	if crashes == 0 {
		t.Error("injected panics produced no crash verdicts")
	}
	// Parse-error cases (testSrcs[2]) never execute, so hangs may be rare;
	// require only that counters and verdicts stay consistent.
	if wallTimeouts == 0 && hangs > 0 {
		t.Error("timeout verdicts without wall-timeout counts")
	}
	t.Logf("faults: %d panics, %d wall-timeouts; verdicts: %d crash, %d timeout",
		panics, wallTimeouts, crashes, hangs)
}

// TestFaultedRunWorkerIndependence: the fault plan is part of the
// deterministic input, so faulted outcomes are identical for any pool
// size — the determinism contract survives injected crashes and hangs.
func TestFaultedRunWorkerIndependence(t *testing.T) {
	mk := func(workers int) []Outcome {
		plan := faultinject.New(faultinject.Config{Seed: 5, PanicEvery: 2, SlowEvery: 3})
		return collect(t, New(faultCfg(workers, plan)), testSrcs)
	}
	base := mk(1)
	wide := mk(8)
	if len(base) != len(wide) {
		t.Fatalf("outcome counts differ: %d vs %d", len(base), len(wide))
	}
	for i := range base {
		if base[i].Result.Verdict != wide[i].Result.Verdict {
			t.Errorf("case %d: verdict %s (1 worker) vs %s (8 workers)",
				i, base[i].Result.Verdict, wide[i].Result.Verdict)
		}
		for j := range base[i].Entries {
			a, b := base[i].Entries[j].Result, wide[i].Entries[j].Result
			if a.Key() != b.Key() || a.Panic != b.Panic || a.WallClock != b.WallClock {
				t.Errorf("case %d entry %d: faulted results differ across pool sizes", i, j)
			}
		}
	}
}

// TestInjectedSlowFaultDeviates: an injected hang on a fuel-hungry case
// aborts the faulted behaviour class via its countdown watchdog while the
// healthy classes finish — exactly one deviant wall-clock timeout, so the
// case classifies as a timeout finding.
func TestInjectedSlowFaultDeviates(t *testing.T) {
	plan := faultinject.New(faultinject.Config{Seed: 1, SlowEvery: 1, SlowProbes: 1})
	cfg := faultCfg(2, plan)
	cfg.Fuel = 5_000_000 // room for the loop to finish on healthy classes
	// Heavy enough to cross several watchdog-probe strides.
	srcs := []string{`var s = 0; for (var i = 0; i < 50000; i++) s += i; print(s);`}
	s := New(cfg)
	outcomes := collect(t, s, srcs)
	if len(outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	oc := outcomes[0]
	if oc.Result.Verdict != difftest.VerdictTimeout {
		t.Fatalf("verdict = %v, want timeout (one class hung, rest finished)", oc.Result.Verdict)
	}
	var wall, finished int
	for _, e := range oc.Entries {
		if e.Result.WallClock {
			wall++
		} else if e.Result.Outcome != engines.OutcomeTimeout {
			finished++
		}
	}
	if wall == 0 || finished == 0 {
		t.Fatalf("expected one hung class among finishers: %d wall-clock, %d finished", wall, finished)
	}
	if _, wt := s.FaultStats(); wt == 0 {
		t.Error("wall-timeout counter did not move")
	}
}

// TestCaseDeadlineWatchdog drives the real wall-clock path with an
// injected clock: a case that hangs past the deadline is classified as a
// timeout instead of stalling its worker.
func TestCaseDeadlineWatchdog(t *testing.T) {
	var ticks atomic.Int64
	cfg := schedCfg(2)
	cfg.Fuel = 50_000_000 // far beyond the loop's appetite: only the clock can stop it
	cfg.CaseDeadline = time.Second
	cfg.Clock = func() time.Time {
		// Each probe advances the fake clock, so the second probe of any
		// run is past the deadline. Clocks share time.Now's contract:
		// they are called concurrently from worker goroutines.
		return time.Unix(0, ticks.Add(1)*int64(600*time.Millisecond))
	}
	srcs := []string{`while (true) {}`}
	outcomes := collect(t, New(cfg), srcs)
	if len(outcomes) != 1 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	if v := outcomes[0].Result.Verdict; v != difftest.VerdictAllTimeout {
		t.Fatalf("hung case verdict = %v, want all-timeout (every testbed hangs)", v)
	}
	for _, e := range outcomes[0].Entries {
		if e.Result.Outcome != engines.OutcomeTimeout || !e.Result.WallClock {
			t.Fatalf("entry not a wall-clock timeout: %+v", e.Result)
		}
	}
}

// TestContiguousPrefixUnderFaults: cancellation mid-stream with faults
// armed still yields a contiguous prefix of in-order outcomes.
func TestContiguousPrefixUnderFaults(t *testing.T) {
	plan := faultinject.New(faultinject.Config{Seed: 9, PanicEvery: 2})
	s := New(faultCfg(4, plan))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srcs := make([]string, 200)
	for i := range srcs {
		srcs[i] = testSrcs[i%len(testSrcs)]
	}
	n := 0
	for oc := range s.Run(ctx, FromSlice(ctx, srcs)) {
		if oc.Index != n {
			t.Fatalf("outcome %d has index %d — hole in the prefix", n, oc.Index)
		}
		n++
		if n == 20 {
			cancel()
		}
	}
	if n < 20 || n >= 200 {
		t.Errorf("cancelled faulted run emitted %d outcomes", n)
	}
}
