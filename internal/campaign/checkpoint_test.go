package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
)

// requireSameAccounting asserts the byte-identical half of the
// checkpoint/resume contract: findings, verdict histogram, dedup and
// attribution counters, and feature accounting all match between two
// results. Diagnostic counters (cache, IC, evaluator paths) are
// deliberately outside the contract.
func requireSameAccounting(t *testing.T, tag string, want, got *Result) {
	t.Helper()
	if want.CasesRun != got.CasesRun || want.Executed != got.Executed {
		t.Fatalf("%s: accounting position differs: (%d,%d) vs (%d,%d)",
			tag, want.CasesRun, want.Executed, got.CasesRun, got.Executed)
	}
	sameFindings := func(kind string, w, g map[string]*Finding) {
		if len(w) != len(g) {
			t.Fatalf("%s: %s count differs: %d vs %d", tag, kind, len(w), len(g))
		}
		for id, f := range w {
			h, ok := g[id]
			if !ok {
				t.Errorf("%s: %s %s missing", tag, kind, id)
				continue
			}
			if f.TestCase != h.TestCase || f.Verdict != h.Verdict || f.Engine != h.Engine ||
				f.strict != h.strict {
				t.Errorf("%s: %s %s differs:\n%+v\nvs\n%+v", tag, kind, id, f, h)
			}
			if len(f.Features) != len(h.Features) || len(f.Flags) != len(h.Flags) {
				t.Errorf("%s: %s %s features/flags differ", tag, kind, id)
			}
		}
	}
	sameFindings("finding", want.Found, got.Found)
	sameFindings("suppressed", want.SuppressedNondet, got.SuppressedNondet)
	for v, n := range want.Verdicts {
		if got.Verdicts[v] != n {
			t.Errorf("%s: verdict %s: %d vs %d", tag, v, n, got.Verdicts[v])
		}
	}
	for v, n := range got.Verdicts {
		if want.Verdicts[v] != n {
			t.Errorf("%s: extra verdict %s: %d", tag, v, n)
		}
	}
	if want.DuplicatesFiltered != got.DuplicatesFiltered {
		t.Errorf("%s: duplicates filtered: %d vs %d", tag, want.DuplicatesFiltered, got.DuplicatesFiltered)
	}
	if want.UnattributedFindings != got.UnattributedFindings {
		t.Errorf("%s: unattributed: %d vs %d", tag, want.UnattributedFindings, got.UnattributedFindings)
	}
	if want.EarlyErrorCases != got.EarlyErrorCases {
		t.Errorf("%s: early-error cases: %d vs %d", tag, want.EarlyErrorCases, got.EarlyErrorCases)
	}
	if want.FlaggedNondet != got.FlaggedNondet {
		t.Errorf("%s: flagged nondet: %d vs %d", tag, want.FlaggedNondet, got.FlaggedNondet)
	}
	if want.FeaturesSeen != got.FeaturesSeen {
		t.Errorf("%s: features seen: %d vs %d", tag, want.FeaturesSeen, got.FeaturesSeen)
	}
	for name, n := range want.FeatureCounts {
		if got.FeatureCounts[name] != n {
			t.Errorf("%s: feature %s: %d vs %d", tag, name, n, got.FeatureCounts[name])
		}
	}
}

// TestKillAtEveryCheckpointResumesIdentical is the crash-recovery oracle:
// for every checkpoint ordinal, a campaign killed right after that write
// and resumed from the file produces accounting byte-identical to an
// uninterrupted run — across two worker/shard configurations, including a
// resume under a different pool and shard layout than the killed run.
func TestKillAtEveryCheckpointResumesIdentical(t *testing.T) {
	const cases, every = 40, 8
	mkCfg := func(workers, shards int) Config {
		return Config{
			Fuzzer:          fuzzers.NewComfort(),
			Testbeds:        figure8Testbeds(),
			Cases:           cases,
			Seed:            2,
			Workers:         workers,
			GenShards:       shards,
			CheckpointEvery: every,
		}
	}
	configs := []struct {
		name                           string
		killW, killS, resumeW, resumeS int
	}{
		{"serial", 1, 1, 1, 1},
		{"wide-to-narrow", 8, 4, 2, 1},
	}
	want := Run(mkCfg(4, 2))
	if want.CasesRun != cases {
		t.Fatalf("baseline ran %d cases, want %d", want.CasesRun, cases)
	}
	kills := (cases - 1) / every
	if kills < 2 {
		t.Fatalf("test needs >= 2 checkpoints, got %d", kills)
	}
	for _, cc := range configs {
		for n := 1; n <= kills; n++ {
			path := filepath.Join(t.TempDir(), "ckpt.json")
			killCfg := mkCfg(cc.killW, cc.killS)
			killCfg.Checkpoint = path
			killCfg.Faults = faultinject.New(faultinject.Config{KillAtCheckpoints: []int{n}})
			killed := Run(killCfg)
			if killed.CasesRun != n*every {
				t.Fatalf("%s kill@%d: killed run accounted %d cases, want %d",
					cc.name, n, killed.CasesRun, n*every)
			}
			st, err := LoadState(path)
			if err != nil {
				t.Fatalf("%s kill@%d: %v", cc.name, n, err)
			}
			if st.Done || st.CasesDone != n*every {
				t.Fatalf("%s kill@%d: checkpoint at %d cases (done=%v), want %d",
					cc.name, n, st.CasesDone, st.Done, n*every)
			}
			got, err := Resume(mkCfg(cc.resumeW, cc.resumeS), st)
			if err != nil {
				t.Fatalf("%s kill@%d: resume: %v", cc.name, n, err)
			}
			requireSameAccounting(t, fmt.Sprintf("%s/kill@%d", cc.name, n), want, got)
		}
	}
}

// TestSerialFuzzerCheckpointResume pins the replay path: a stateful (non-
// Forkable) fuzzer resumes by regenerating the stream from case 0 and
// suppressing the already-accounted prefix — same findings as an
// uninterrupted run.
func TestSerialFuzzerCheckpointResume(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Fuzzer:          fuzzers.NewDIE(),
			Testbeds:        figure8Testbeds()[:6],
			Cases:           30,
			Seed:            9,
			Workers:         4,
			CheckpointEvery: 7,
		}
	}
	want := Run(mkCfg())
	path := filepath.Join(t.TempDir(), "ckpt.json")
	killCfg := mkCfg()
	killCfg.Checkpoint = path
	killCfg.Faults = faultinject.New(faultinject.Config{KillAtCheckpoints: []int{2}})
	Run(killCfg)
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.NextBatch != -1 {
		t.Fatalf("serial checkpoint recorded batch %d, want -1 (replay-by-index)", st.NextBatch)
	}
	got, err := Resume(mkCfg(), st)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAccounting(t, "serial-fuzzer", want, got)
}

// TestCancelThenResumeCompletes is the graceful-shutdown path end to end:
// a cancelled campaign flushes a final (not Done) checkpoint, and resuming
// it completes the budget with accounting identical to a never-interrupted
// run.
func TestCancelThenResumeCompletes(t *testing.T) {
	mkCfg := func() Config {
		return Config{
			Fuzzer:          fuzzers.NewComfort(),
			Testbeds:        figure8Testbeds(),
			Cases:           60,
			Seed:            2,
			Workers:         4,
			CheckpointEvery: 1000, // periodic writes out of the picture: only the final flush
		}
	}
	want := Run(mkCfg())
	path := filepath.Join(t.TempDir(), "ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := mkCfg()
	cfg.Checkpoint = path
	cfg.Context = ctx
	cfg.Progress = func(p Progress) {
		if p.Done == 20 {
			cancel()
		}
	}
	partial := Run(cfg)
	if partial.CasesRun >= 60 || partial.CasesRun < 20 {
		t.Fatalf("cancelled run accounted %d cases", partial.CasesRun)
	}
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Fatal("interrupted checkpoint marked Done")
	}
	if st.CasesDone != partial.CasesRun {
		t.Fatalf("final flush at %d cases, result says %d", st.CasesDone, partial.CasesRun)
	}
	got, err := Resume(mkCfg(), st)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAccounting(t, "cancel-resume", want, got)

	// Resuming the now-Done final checkpoint reconstructs the result
	// without running anything.
	cfg2 := mkCfg()
	cfg2.Checkpoint = path
	if _, err := Resume(cfg2, st); err != nil {
		t.Fatal(err)
	}
	final, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatal("completed resume did not mark the checkpoint Done")
	}
	redone, err := Resume(mkCfg(), final)
	if err != nil {
		t.Fatal(err)
	}
	requireSameAccounting(t, "done-restore", want, redone)
}

// TestLoadStateRejectsBadCheckpoints: garbage bytes, wrong format versions
// and mismatched configs all fail loudly instead of corrupting a resume.
func TestLoadStateRejectsBadCheckpoints(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(garbage); err == nil {
		t.Error("garbage checkpoint loaded")
	}
	if _, err := LoadState(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing checkpoint loaded")
	}
	versioned := filepath.Join(dir, "versioned.json")
	if err := os.WriteFile(versioned, []byte(`{"format": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(versioned); err == nil {
		t.Error("future-format checkpoint loaded")
	}

	// Fingerprint mismatch: a checkpoint from seed 2 must not resume a
	// seed-3 campaign.
	path := filepath.Join(dir, "ckpt.json")
	cfg := Config{
		Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
		Cases: 20, Seed: 2, Workers: 2,
		Checkpoint: path, CheckpointEvery: 5,
		Faults: faultinject.New(faultinject.Config{KillAtCheckpoints: []int{1}}),
	}
	Run(cfg)
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 3
	bad.Faults = nil
	if _, err := Resume(bad, st); err == nil {
		t.Error("checkpoint resumed under a different seed")
	}
	over := cfg
	over.Faults = nil
	over.Cases = 20 // same fingerprint requires same Cases; corrupt CasesDone instead
	st.CasesDone = 999
	if _, err := Resume(over, st); err == nil {
		t.Error("checkpoint with CasesDone past the budget resumed")
	}
}

// TestFingerprintMismatchIsActionable: a resume under a diverging config
// names the diverging fields (and only those), both through
// DiffFingerprints and through the Resume error message itself.
func TestFingerprintMismatchIsActionable(t *testing.T) {
	diffs := DiffFingerprints(
		"comfort-campaign/v1 fuzzer=COMFORT seed=2 cases=40 dedup=true faults=none",
		"comfort-campaign/v1 fuzzer=DIE seed=3 cases=40 dedup=true faults=seed=7,panic=5")
	want := []string{
		"fuzzer: checkpoint has COMFORT, config has DIE",
		"seed: checkpoint has 2, config has 3",
		"faults: checkpoint has none, config has seed=7,panic=5",
	}
	if len(diffs) != len(want) {
		t.Fatalf("got %d diffs %v, want %d", len(diffs), diffs, len(want))
	}
	for i := range want {
		if diffs[i] != want[i] {
			t.Errorf("diff %d = %q, want %q", i, diffs[i], want[i])
		}
	}
	if d := DiffFingerprints("a b=1", "a b=1"); d != nil {
		t.Errorf("identical fingerprints diff to %v", d)
	}

	// End to end: the Resume error names the diverging field.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cfg := Config{
		Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
		Cases: 20, Seed: 2, Workers: 2,
		Checkpoint: path, CheckpointEvery: 5,
		Faults: faultinject.New(faultinject.Config{KillAtCheckpoints: []int{1}}),
	}
	Run(cfg)
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Seed = 3
	bad.Faults = nil
	_, err = Resume(bad, st)
	if err == nil {
		t.Fatal("mismatched resume succeeded")
	}
	if !strings.Contains(err.Error(), "seed: checkpoint has 2, config has 3") {
		t.Errorf("mismatch error does not name the diverging seed:\n%v", err)
	}
	if strings.Contains(err.Error(), "fuzzer:") {
		t.Errorf("mismatch error names a field that did not diverge:\n%v", err)
	}
}

// TestCheckpointIntervalUsesInjectedClock: the wall-time checkpoint axis
// ticks on the injected clock (the campaign never reads time.Now itself).
func TestCheckpointIntervalUsesInjectedClock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	now := time.Unix(0, 0)
	res := Run(Config{
		Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
		Cases: 20, Seed: 2, Workers: 2,
		Checkpoint:         path,
		CheckpointEvery:    1000, // case axis off
		CheckpointInterval: time.Minute,
		Clock: func() time.Time {
			now = now.Add(10 * time.Second) // six calls per "minute"
			return now
		},
	})
	// Periodic interval writes plus the final flush.
	if res.Checkpoints < 2 {
		t.Fatalf("interval axis produced %d checkpoint writes", res.Checkpoints)
	}
	st, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.CasesDone != 20 {
		t.Errorf("final checkpoint: done=%v cases=%d", st.Done, st.CasesDone)
	}
}

// TestCampaignFaultInjectionIsAFinding: an injected evaluator panic inside
// a full campaign surfaces as a crash verdict and a Panics count — and
// never kills the process.
func TestCampaignFaultInjectionIsAFinding(t *testing.T) {
	mk := func() *Result {
		return Run(Config{
			Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
			Cases: 30, Seed: 2, Workers: 4,
			Faults: faultinject.New(faultinject.Config{Seed: 11, PanicEvery: 5}),
		})
	}
	a := mk()
	if a.Panics == 0 {
		t.Fatal("no injected panic recovered at 1-in-5")
	}
	crashes := 0
	for v, n := range a.Verdicts {
		if v.String() == "crash" {
			crashes += n
		}
	}
	if crashes == 0 {
		t.Error("recovered panics produced no crash verdicts")
	}
	b := mk()
	requireSameAccounting(t, "fault-campaign-determinism", a, b)
	if a.Panics != b.Panics {
		t.Errorf("panic counts differ across identical runs: %d vs %d", a.Panics, b.Panics)
	}
}

// TestCancellationWithReductionAndAnalysis pins mid-campaign cancellation
// with both the reduction stage and the analyzer enabled: the partial
// result is exactly the prefix campaign's accounting (reduced witnesses
// excepted — a cancelled context stops the reducer early).
func TestCancellationWithReductionAndAnalysis(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
		Cases: 100000, Seed: 2, Workers: 4,
		ReduceWitnesses: true, // reduction armed while the context dies mid-stream
		Progress: func(p Progress) {
			if p.Done == 25 {
				cancel()
			}
		},
		Context: ctx,
	}
	done := make(chan *Result, 1)
	go func() { done <- Run(cfg) }()
	var partial *Result
	select {
	case partial = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("cancelled reduce+analyze campaign did not return")
	}
	if partial.CasesRun < 25 || partial.CasesRun >= 100000 {
		t.Fatalf("cancelled run accounted %d cases", partial.CasesRun)
	}
	if partial.FeatureCounts == nil {
		t.Fatal("analysis accounting missing from cancelled run")
	}
	// The accounted prefix must equal a fresh campaign over exactly that
	// budget (reduction off: cancelled reduction output is unspecified).
	fresh := Run(Config{
		Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
		Cases: partial.CasesRun, Seed: 2, Workers: 4,
	})
	requireSameAccounting(t, "cancel+reduce+analyze", fresh, partial)
}

// TestWriteCheckpointHook pins the Config.WriteCheckpoint seam the
// campaign server fences with its job lease: when set, the hook replaces
// the default WriteState call for every checkpoint write, the default
// path receives no bytes, the states it persists resume byte-identically
// — and a hook error counts as a checkpoint failure without changing
// what the campaign finds.
func TestWriteCheckpointHook(t *testing.T) {
	const cases, every = 40, 8
	base := func() Config {
		return Config{
			Fuzzer: fuzzers.NewComfort(), Testbeds: figure8Testbeds(),
			Cases: cases, Seed: 2, CheckpointEvery: every,
		}
	}
	want := Run(base())
	if want.CasesRun != cases {
		t.Fatalf("baseline ran %d cases, want %d", want.CasesRun, cases)
	}

	// Hooked run killed mid-campaign: the hook's file is the only
	// checkpoint, and resuming from it completes identically.
	dir := t.TempDir()
	defaultPath := filepath.Join(dir, "default.json")
	hookPath := filepath.Join(dir, "hook.json")
	writes := 0
	killCfg := base()
	killCfg.Checkpoint = defaultPath
	killCfg.WriteCheckpoint = func(st *State) error {
		writes++
		return WriteState(hookPath, st)
	}
	killCfg.Faults = faultinject.New(faultinject.Config{KillAtCheckpoints: []int{2}})
	killed := Run(killCfg)
	if killed.CasesRun != 2*every {
		t.Fatalf("killed run accounted %d cases, want %d", killed.CasesRun, 2*every)
	}
	if writes != 2 {
		t.Fatalf("hook saw %d writes before the kill, want 2", writes)
	}
	if _, err := os.Stat(defaultPath); !os.IsNotExist(err) {
		t.Fatalf("default checkpoint path written despite hook (err %v)", err)
	}
	st, err := LoadState(hookPath)
	if err != nil {
		t.Fatalf("hook-persisted state unreadable: %v", err)
	}
	resumeCfg := base()
	resumeCfg.Checkpoint = defaultPath
	resumeCfg.WriteCheckpoint = func(s *State) error { return WriteState(hookPath, s) }
	resumed, err := Resume(resumeCfg, st)
	if err != nil {
		t.Fatalf("resume from hook state: %v", err)
	}
	requireSameAccounting(t, "hooked kill+resume", want, resumed)

	// A hook that always fails: checkpoint failures are counted, the
	// campaign still completes, and the accounting is untouched — the
	// hook shapes where state lands, never what the campaign finds.
	failCfg := base()
	failCfg.WriteCheckpoint = func(*State) error { return fmt.Errorf("fenced") }
	failed := Run(failCfg)
	if failed.CheckpointFailures == 0 {
		t.Fatal("failing hook not accounted as checkpoint failures")
	}
	if failed.Checkpoints != 0 {
		t.Fatalf("failing hook counted %d successful checkpoints", failed.Checkpoints)
	}
	requireSameAccounting(t, "failing hook", want, failed)
}
