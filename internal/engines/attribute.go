package engines

import (
	"comfort/internal/js/builtins"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// RunWithDefect executes src with exactly one defect installed — the
// ground-truth attribution primitive used by the campaign accounting.
func RunWithDefect(d *Defect, src string, strict bool, opts RunOptions) ExecResult {
	cfg := interp.Config{Fuel: opts.Fuel, Seed: opts.Seed, Strict: strict}
	parseOpts := parser.Options{Strict: strict}
	if d != nil {
		if d.Configure != nil {
			d.Configure(&cfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			cfg.Hook = d.Hook
		}
		if d.PreParse != nil {
			if msg := d.PreParse(src); msg != "" {
				return ExecResult{Outcome: OutcomeParseError, Error: "SyntaxError: " + msg, ErrName: "SyntaxError"}
			}
		}
	}
	in := builtins.NewRuntime(cfg)
	prog, err := parser.ParseWith(src, parseOpts)
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	runErr := in.Run(prog)
	res := ExecResult{Output: in.Out.String(), FuelUsed: in.FuelUsed()}
	classifyRunError(&res, runErr)
	return res
}

// DefectRunner is the prepared form of RunWithDefect: the interpreter
// config, parser options and hook for one (defect, mode) pair are resolved
// once, so a reduction predicate that executes hundreds of candidates pays
// the setup exactly once. A nil defect prepares the defect-free reference.
// Run is safe for concurrent use (each call builds its own runtime).
type DefectRunner struct {
	d         *Defect
	baseCfg   interp.Config // Strict + Configure deltas; Fuel/Seed per run
	parseOpts parser.Options
}

// NewDefectRunner prepares a single-defect executor with semantics
// identical to RunWithDefect(d, ·, strict, ·).
func NewDefectRunner(d *Defect, strict bool) *DefectRunner {
	r := &DefectRunner{
		d:         d,
		baseCfg:   interp.Config{Strict: strict},
		parseOpts: parser.Options{Strict: strict},
	}
	if d != nil {
		if d.Configure != nil {
			d.Configure(&r.baseCfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&r.parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			r.baseCfg.Hook = d.Hook
		}
	}
	return r
}

// Run executes src with the prepared defect (or the reference when the
// runner was prepared with a nil defect).
func (r *DefectRunner) Run(src string, opts RunOptions) ExecResult {
	if r.d != nil && r.d.PreParse != nil {
		if msg := r.d.PreParse(src); msg != "" {
			return ExecResult{Outcome: OutcomeParseError, Error: "SyntaxError: " + msg, ErrName: "SyntaxError"}
		}
	}
	cfg := r.baseCfg
	cfg.Fuel = opts.Fuel
	cfg.Seed = opts.Seed
	in := builtins.NewRuntime(cfg)
	prog, err := parser.ParseWith(src, r.parseOpts)
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	runErr := in.Run(prog)
	res := ExecResult{Output: in.Out.String(), FuelUsed: in.FuelUsed()}
	classifyRunError(&res, runErr)
	return res
}

// Attribute identifies which seeded defects of the testbed's version are
// responsible for a divergence observed on src: each active defect is
// re-run in isolation against the defect-free reference.
func Attribute(src string, tb Testbed, opts RunOptions) []*Defect {
	ref := RunWithDefect(nil, src, tb.Strict, opts)
	var out []*Defect
	for _, d := range ActiveDefects(tb.Version) {
		r := RunWithDefect(d, src, tb.Strict, opts)
		if r.Key() != ref.Key() {
			out = append(out, d)
		}
	}
	return out
}
