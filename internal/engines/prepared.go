package engines

import (
	"sort"
	"strings"
	"sync"

	"comfort/internal/js/analyze"
	"comfort/internal/js/ast"
	"comfort/internal/js/builtins"
	"comfort/internal/js/compile"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

// PreparedTestbed is a testbed with everything that is constant across runs
// resolved once: the active defect subset of the catalog, the combined hook
// chain, the interpreter config deltas and the parser options. Preparing a
// testbed turns Testbed.Run's per-execution catalog scan + hook sort into a
// one-time cost, which matters when a campaign executes the same 102
// testbeds tens of thousands of times.
type PreparedTestbed struct {
	Testbed Testbed

	defects  []*Defect // active defects, catalog order
	preParse []*Defect // subset with PreParse interceptors
	hook     interp.Hook
	baseCfg  interp.Config  // Strict + Configure deltas; Fuel/Seed filled per run
	parseOps parser.Options // Strict + ParserOpts deltas
	behavior string         // mode + active defect IDs; see BehaviorKey
}

var (
	preparedMu    sync.Mutex
	preparedCache = map[string]*PreparedTestbed{}
)

// Prepare resolves the testbed's defect set, hook chain and option deltas.
// Results are memoised per version×mode, so repeated calls are cheap.
func (tb Testbed) Prepare() *PreparedTestbed {
	key := tb.ID()
	preparedMu.Lock()
	defer preparedMu.Unlock()
	if p, ok := preparedCache[key]; ok {
		return p
	}
	p := prepare(tb)
	preparedCache[key] = p
	return p
}

func prepare(tb Testbed) *PreparedTestbed {
	p := &PreparedTestbed{
		Testbed:  tb,
		defects:  ActiveDefects(tb.Version),
		baseCfg:  interp.Config{Strict: tb.Strict},
		parseOps: parser.Options{Strict: tb.Strict},
	}
	for _, d := range p.defects {
		if d.Configure != nil {
			d.Configure(&p.baseCfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&p.parseOps)
		}
		if d.PreParse != nil {
			p.preParse = append(p.preParse, d)
		}
	}
	p.hook = combineHooks(p.defects, tb.Strict)
	var b strings.Builder
	if tb.Strict {
		b.WriteString("strict")
	} else {
		b.WriteString("normal")
	}
	for _, d := range p.defects {
		b.WriteByte('|')
		b.WriteString(d.ID)
	}
	p.behavior = b.String()
	return p
}

// BehaviorKey identifies the testbed's behaviour equivalence class: an
// execution's result is a pure function of the active defect set, the mode
// and the run options — the engine version itself is never consulted at run
// time — so two testbeds with equal keys produce identical ExecResults for
// every (src, fuel, seed). Schedulers exploit this to run each class once
// per case and fan the result out to all class members.
func (p *PreparedTestbed) BehaviorKey() string { return p.behavior }

// ActiveDefects returns the defects live in this testbed (shared slice; do
// not mutate).
func (p *PreparedTestbed) ActiveDefects() []*Defect { return p.defects }

// ParseOptions returns the resolved parser options for this testbed.
func (p *PreparedTestbed) ParseOptions() parser.Options { return p.parseOps }

// ParseFingerprint keys parse-and-resolve caches: two testbeds with equal
// fingerprints accept exactly the same programs with the same ASTs. The
// fingerprint also covers every resolver-relevant input — the resolve pass
// consumes nothing beyond the AST itself (scope layout is mode- and
// defect-independent in this subset), so parse equivalence implies
// compiled-program equivalence; parser/options_test.go pins the property.
func (p *PreparedTestbed) ParseFingerprint() uint64 { return p.parseOps.Fingerprint() }

// PreParseError runs the testbed's pre-parse defect interceptors (parser
// defects that reject valid programs before the shared parser sees them).
// It returns a non-empty SyntaxError rendering when one fires.
func (p *PreparedTestbed) PreParseError(src string) string {
	for _, d := range p.preParse {
		if msg := d.PreParse(src); msg != "" {
			return "SyntaxError: " + msg
		}
	}
	return ""
}

// Parse compiles src under the testbed's resolved parser options: a parse,
// the resolve-once scope pass, then the compile-once thunk pass, so every
// execution of the returned program — the scheduler shares it across
// behaviour classes, and reduction predicates across their two testbeds —
// dispatches through closure thunks instead of re-walking the AST. The
// compiled form is sound under the same fingerprint key as the scope
// annotations: the compiler consumes nothing beyond the resolved AST
// (hooks, mode and fuel stay per-execution inputs of the shared runtime
// helpers the thunks call), so parse equivalence implies thunk
// equivalence.
func (p *PreparedTestbed) Parse(src string) (*ast.Program, error) {
	prog, err := parser.ParseWith(src, p.parseOps)
	if err == nil {
		resolve.Program(prog)
		compile.Program(prog)
		analyze.Program(prog)
	}
	return prog, err
}

// ParseResolved parses and scope-resolves src without the thunk-compile
// pass — the compiled-evaluator ablation's parse mode (the tree walker
// executes the resolved AST directly).
func (p *PreparedTestbed) ParseResolved(src string) (*ast.Program, error) {
	prog, err := parser.ParseWith(src, p.parseOps)
	if err == nil {
		resolve.Program(prog)
		analyze.Program(prog)
	}
	return prog, err
}

// ParseUnresolved parses src without the resolve pass, leaving execution on
// the interpreter's dynamic map-scope path. It exists for the differential
// oracle that cross-checks the evaluator paths (and the campaign
// ablation behind exec.Config.DisableResolve). The static analysis still
// attaches — it consumes nothing but the raw AST, so every evaluator
// ablation keeps identical early-error semantics.
func (p *PreparedTestbed) ParseUnresolved(src string) (*ast.Program, error) {
	prog, err := parser.ParseWith(src, p.parseOps)
	if err == nil {
		analyze.Program(prog)
	}
	return prog, err
}

// PreParseResult renders a PreParseError message as its ExecResult.
func PreParseResult(msg string) ExecResult {
	return ExecResult{Outcome: OutcomeParseError, Error: msg, ErrName: "SyntaxError"}
}

// Run executes src on the prepared testbed: pre-parse interceptors,
// compile (or plain parse under RunOptions.DisableResolve), then Exec.
func (p *PreparedTestbed) Run(src string, opts RunOptions) ExecResult {
	if msg := p.PreParseError(src); msg != "" {
		return PreParseResult(msg)
	}
	prog, err := p.parseFor(src, opts)
	return p.ExecParsed(prog, err, opts)
}

// parseFor compiles src for an execution under opts, honouring the
// map-scope and thunk-compile ablation knobs.
func (p *PreparedTestbed) parseFor(src string, opts RunOptions) (*ast.Program, error) {
	if opts.DisableResolve {
		return p.ParseUnresolved(src)
	}
	if opts.DisableCompile {
		return p.ParseResolved(src)
	}
	return p.Parse(src)
}

// ExecParsed adapts an (already pre-parse-checked) parse result — typically
// from a parse cache — into an execution: a parse error classifies as
// OutcomeParseError, a static-semantics violation as a pre-execution
// SyntaxError, anything else interprets. Keeping this in one place stops
// the direct-run, difftest and scheduler paths from drifting apart.
func (p *PreparedTestbed) ExecParsed(prog *ast.Program, err error, opts RunOptions) ExecResult {
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	if res, bad := earlyErrorResult(prog, opts); bad {
		return res
	}
	return p.Exec(prog, opts)
}

// earlyErrorResult returns the pre-execution SyntaxError for a program
// the static analyzer rejects. The default path reads the report cached
// on the program by the parse pipeline; DisableAnalyze recomputes the
// verdict from the AST per execution — two implementations of identical
// semantics, exactly the DisableCompile oracle pattern. The report is
// never attached here: programs may already be shared across goroutines.
func earlyErrorResult(prog *ast.Program, opts RunOptions) (ExecResult, bool) {
	var rep *analyze.Report
	if opts.DisableAnalyze {
		rep = analyze.Analyze(prog)
	} else if rep = analyze.Of(prog); rep == nil {
		rep = analyze.Analyze(prog)
	}
	ee := rep.FirstError()
	if ee == nil {
		return ExecResult{}, false
	}
	return ExecResult{
		Outcome:    OutcomeParseError,
		Error:      ee.Render(),
		ErrName:    "SyntaxError",
		EarlyError: true,
	}, true
}

// Exec runs an already-parsed program. The program may be shared across
// concurrent Exec calls (the interpreter never mutates the AST), which is
// what enables the scheduler's parse-once source cache. Callers must have
// applied PreParseError to the original source themselves. The execution
// is panic-isolated: an evaluator panic classifies as an OutcomeCrash
// result (see runGuarded) instead of unwinding into the scheduler.
func (p *PreparedTestbed) Exec(prog *ast.Program, opts RunOptions) ExecResult {
	cfg := p.baseCfg
	cfg.Fuel = opts.Fuel
	cfg.Seed = opts.Seed
	cfg.Hook = p.hook
	cfg.DisableCompile = opts.DisableCompile
	cfg.DisableShapes = opts.DisableShapes
	cfg.Watchdog = opts.Watchdog
	in := builtins.NewRuntime(cfg)
	in.Cov = opts.Cov
	return runGuarded(in, prog, opts)
}

// classifyRunError maps an interpreter error to the Figure-5 per-testbed
// outcome taxonomy.
func classifyRunError(res *ExecResult, runErr error) {
	switch e := runErr.(type) {
	case nil:
		res.Outcome = OutcomePass
	case *interp.Throw:
		res.Outcome = OutcomeException
		res.Error = e.Error()
		res.ErrName = interp.ErrorName(e.Val)
	case *interp.Abort:
		switch e.Kind {
		case interp.AbortCrash:
			res.Outcome = OutcomeCrash
			res.Error = e.Error()
			res.ErrName = "crash"
		case interp.AbortDeadline:
			res.Outcome = OutcomeTimeout
			res.Error = e.Error()
			res.ErrName = "timeout"
			res.WallClock = true
		default:
			res.Outcome = OutcomeTimeout
			res.Error = e.Error()
			res.ErrName = "timeout"
		}
	default:
		res.Outcome = OutcomeCrash
		res.Error = runErr.Error()
		res.ErrName = "crash"
	}
}

// Diverges builds a reduction predicate over two prepared testbeds: it
// reports whether src behaves differently on a and b under opts. When the
// testbeds' parser options coincide (the common case — a version against
// the reference) each candidate is parsed once and the AST shared between
// both executions, so a reducer evaluating hundreds of candidates pays one
// parse, not two, per candidate. The predicate is safe for concurrent
// calls, as reduce.Parallel requires.
func Diverges(a, b *PreparedTestbed, opts RunOptions) func(src string) bool {
	if a.ParseFingerprint() != b.ParseFingerprint() {
		return func(src string) bool {
			return a.Run(src, opts).Key() != b.Run(src, opts).Key()
		}
	}
	return func(src string) bool {
		var prog *ast.Program
		var perr error
		parsed := false
		runOne := func(p *PreparedTestbed) ExecResult {
			if msg := p.PreParseError(src); msg != "" {
				return PreParseResult(msg)
			}
			if !parsed {
				prog, perr = a.parseFor(src, opts)
				parsed = true
			}
			return p.ExecParsed(prog, perr, opts)
		}
		return runOne(a).Key() != runOne(b).Key()
	}
}

// combineHooks merges the active defects' hooks; the first override wins.
func combineHooks(defects []*Defect, strict bool) interp.Hook {
	var hooks []*Defect
	for _, d := range defects {
		if d.Hook != nil {
			if d.StrictOnly && !strict {
				continue
			}
			hooks = append(hooks, d)
		}
	}
	if len(hooks) == 0 {
		return nil
	}
	sort.SliceStable(hooks, func(i, j int) bool { return hooks[i].ID < hooks[j].ID })
	return func(ctx *interp.HookCtx) *interp.Override {
		for _, d := range hooks {
			if ov := d.Hook(ctx); ov != nil {
				return ov
			}
		}
		return nil
	}
}
