package compile_test

import (
	"errors"
	"testing"

	"comfort/internal/js/ast"
	"comfort/internal/js/builtins"
	"comfort/internal/js/compile"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

// run executes src on one evaluator path and reports output, fuel and the
// terminating error. The same compiled program object serves both paths —
// exactly the sharing shape the scheduler cache produces.
func run(t *testing.T, src string, compiled bool, strict bool) (string, int64, error) {
	t.Helper()
	prog, err := parser.ParseWith(src, parser.Options{Strict: strict})
	if err != nil {
		// Some battery programs are sloppy-only (e.g. delete of an
		// unqualified name); an identical parse rejection on both paths is
		// trivially parity.
		return "", 0, errParse
	}
	resolve.Program(prog)
	compile.Program(prog)
	in := builtins.NewRuntime(interp.Config{Fuel: 500000, Strict: strict, DisableCompile: !compiled})
	var runErr error
	if compiled {
		runErr = compile.Of(prog).Run(in)
	} else {
		runErr = in.Run(prog)
	}
	return in.Out.String(), in.FuelUsed(), runErr
}

// errParse marks a battery program the strict parser rejects.
var errParse = errors.New("parse rejected")

// parityPrograms exercise every statement and expression form, the
// labelled break/continue protocol (including its dynamic quirks), frame
// pooling under recursion and exception unwinding, and the fuel-abort
// boundary.
var parityPrograms = []string{
	`print(1+2*3);`,
	`function f(a,b){var s=0; for(var i=a;i<b;i++){s+=i;} return s;} print(f(1,10));`,
	`var a=[1,2,3]; var o={x:1,get y(){return 42;}}; for (var k in o){print(k);} print(o.y); print(a.map(function(v){return v*2;}).join(","));`,
	`try { null.x; } catch (e) { print("caught: " + e); } finally { print("fin"); }`,
	`outer: for (var i=0;i<3;i++){ for (var j=0;j<3;j++){ if (j==1) continue outer; print(i+","+j);} }`,
	`var s=""; do { s += "x"; } while (s.length < 3); print(s); label: { print("in"); break label; print("no"); }`,
	`switch(2){case 1: print("one"); case 2: print("two"); case 3: print("three"); break; default: print("def");} print(typeof zzz); print(typeof print);`,
	`function F(v){this.v=v;} F.prototype.get=function(){return this.v;}; var o=new F(7); print(o.get()); print(o instanceof F);`,
	`var x = 5; x += 3; x++; --x; print(x); var y; print(y === undefined); delete x; print(typeof x);`,
	`print(eval("1+2")); var t = [0]; t[0]++; print(t[0]); print("abc".charCodeAt(1));`,
	// Recursion in a poolable frame: every activation must see its own
	// slots, including while unwinding through throws.
	`function fib(n){ if (n < 2) return n; return fib(n-1)+fib(n-2); } print(fib(12));`,
	`function deep(n){ var mine = n; if (n === 3) throw "stop@" + mine; deep(n+1); return mine; }
	 try { deep(0); } catch (e) { print(e); }`,
	// A closure-bearing function must NOT pool (the inner literal captures
	// the frame); its captured state must survive across calls.
	`function counter(){ var c = 0; return function(){ c++; return c; }; }
	 var c1 = counter(), c2 = counter(); print(c1()); print(c1()); print(c2());`,
	// The tree walker lets a label flow into the first loop that consumes
	// it — even through a labelled block; the compiled path must keep the
	// dynamic protocol.
	`foo: { var n = 0; while (n < 5) { n++; if (n === 2) { break foo; } } print("after:" + n); }`,
	`var log = ""; bar: { for (var i=0;i<4;i++){ if (i===2) continue bar; log += i; } log += "|tail"; } print(log);`,
	// Spread, template literals, sequence and conditional expressions.
	"var parts = [1,2]; function sum(a,b,c){return a+b+c;} print(sum(0, ...parts)); print(`tpl ${1+1} ${\"x\"}`);",
	`var q = (1, 2, 3); print(q); print(q > 2 ? "big" : "small"); var arr=[...[4,5],6]; print(arr.join("-"));`,
	// Named function expression self-name (silent sloppy write), arguments
	// object, update through members.
	`var f = function me(n){ me = 7; if (n > 0) { return me(n-1)+1; } return 0; }; print(f(3));`,
	`function g(){ return arguments.length + ":" + arguments[1]; } print(g(9,8,7));`,
	`var store = {}; var ob = { set v(x){ store.last = x; }, get v(){ return (store.last||0)*2; }, ["k"+1]: 10 };
	 ob.v = 21; print(ob.v); print(ob.k1); var m = {n: 1}; m.n += 4; m["n"]--; print(m.n);`,
	// for-of over strings/arrays, for-in over prototype chains.
	`for (var ch of "ab") { print(ch); } for (var v of [10,20]) { print(v); }
	 function P(){} P.prototype.inherited = 1; var pi = new P(); pi.own = 2;
	 var ks=[]; for (var key in pi) { ks.push(key); } print(ks.sort().join(","));`,
	// typeof/delete against the three reference classes, void, bitwise.
	`var dv = 3; function h(){ var local = 1; print(typeof local, typeof dv, typeof nope); } h();
	 print(void 0 === undefined); print(~5, 1<<4, 37>>>2, 8%3);`,
	// Exceptions crossing frames, finally overriding control flow.
	`function t1(){ try { return "try"; } finally { print("f1"); } } print(t1());
	 function t2(){ for (;;) { try { break; } finally { print("f2"); } } return "done"; } print(t2());`,
	// Dense-array traffic (by-value fast paths) and string builtins.
	`var big=[]; for (var i=0;i<50;i++){ big[i]=i; } var acc=0; for (var j=0;j<50;j++){ acc+=big[j]; } print(acc);
	 print("padme".padStart(8, "*")); print("x,y".split(",").length);`,
	// Logical assignment and nullish operators.
	`var la = 0; la ||= 5; print(la); var lb = 1; lb &&= 9; print(lb); var lc = null; lc ??= "n"; print(lc); print(null ?? "d");`,
	// Hoisting order: function declarations instantiated past blocks,
	// var/function name collisions, let shadowing in blocks.
	`print(hoisted()); function hoisted(){ return "up"; }
	 var shadow = "outer"; { let shadow = "inner"; print(shadow); } print(shadow);`,
	// Fuel-exhaustion parity: the abort must land on the same step.
	`var spin = 0; while (true) { spin++; }`,
}

// TestParity cross-checks the compiled and tree evaluators over the
// handwritten program battery — byte-identical output, error rendering and
// fuel, in both modes.
func TestParity(t *testing.T) {
	for _, strict := range []bool{false, true} {
		for i, src := range parityPrograms {
			co, cf, ce := run(t, src, true, strict)
			to, tf, te := run(t, src, false, strict)
			ceStr, teStr := "", ""
			if ce != nil {
				ceStr = ce.Error()
			}
			if te != nil {
				teStr = te.Error()
			}
			if co != to || cf != tf || ceStr != teStr {
				t.Errorf("case %d (strict=%v) diverges:\ncompiled: out=%q fuel=%d err=%q\ntree:     out=%q fuel=%d err=%q\nsrc: %s",
					i, strict, co, cf, ceStr, to, tf, teStr, src)
			}
		}
	}
}

// TestCoverageParity pins that compiled execution records the same
// statement/function/branch coverage as the tree walk (Figure 9 must not
// depend on the evaluator path).
func TestCoverageParity(t *testing.T) {
	src := `function pick(n){ if (n > 1) { return "hi"; } else { return "lo"; } }
	 for (var i = 0; i < 3; i++) { print(pick(i)); }
	 switch (1) { case 1: print("c1"); break; default: print("cd"); }`
	cover := func(compiled bool) *interp.Coverage {
		prog, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		resolve.Program(prog)
		compile.Program(prog)
		in := builtins.NewRuntime(interp.Config{Fuel: 100000, DisableCompile: !compiled})
		in.Cov = interp.NewCoverage()
		if compiled {
			err = compile.Of(prog).Run(in)
		} else {
			err = in.Run(prog)
		}
		if err != nil {
			t.Fatal(err)
		}
		return in.Cov
	}
	a, b := cover(true), cover(false)
	if len(a.Stmts) != len(b.Stmts) || len(a.Funcs) != len(b.Funcs) || len(a.Branches) != len(b.Branches) {
		t.Fatalf("coverage cardinality diverges: compiled (%d,%d,%d) vs tree (%d,%d,%d)",
			len(a.Stmts), len(a.Funcs), len(a.Branches), len(b.Stmts), len(b.Funcs), len(b.Branches))
	}
	for id := range b.Stmts {
		if !a.Stmts[id] {
			t.Errorf("compiled path missed statement %d", id)
		}
	}
	for key := range b.Branches {
		if !a.Branches[key] {
			t.Errorf("compiled path missed branch %v", key)
		}
	}
}

// TestCompileIdempotent guards the cache-sharing contract: compiling twice
// must be a no-op.
func TestCompileIdempotent(t *testing.T) {
	prog, err := parser.Parse("function f(a){return a*2;} print(f(21));")
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	compile.Program(prog)
	first := compile.Of(prog)
	if first == nil {
		t.Fatal("compile pass did not attach")
	}
	compile.Program(prog)
	if compile.Of(prog) != first {
		t.Error("recompilation replaced the attachment")
	}
}

// TestCompileRequiresResolve pins the layering: the compiler consumes the
// resolver's scope annotations and declines unresolved trees.
func TestCompileRequiresResolve(t *testing.T) {
	prog, err := parser.Parse("print(1);")
	if err != nil {
		t.Fatal(err)
	}
	compile.Program(prog)
	if compile.Of(prog) != nil {
		t.Error("compiler attached to an unresolved program")
	}
}

// TestPoolableMarking pins the frame-escape analysis: closure-free
// function scopes pool, closure-bearing ones must not.
func TestPoolableMarking(t *testing.T) {
	prog, err := parser.Parse(`
		function leafy(a, b) { var t = a + b; return t; }
		function maker() { var c = 0; return function () { return c; }; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	resolve.Program(prog)
	compile.Program(prog)
	scopes := map[string]*ast.ScopeInfo{}
	for _, st := range prog.Body {
		if fd, ok := st.(*ast.FuncDecl); ok {
			scopes[fd.Fn.Name] = fd.Fn.Scope
		}
	}
	if sc := scopes["leafy"]; sc == nil || !sc.Poolable {
		t.Error("closure-free function scope not marked Poolable")
	}
	if sc := scopes["maker"]; sc == nil || sc.Poolable {
		t.Error("closure-bearing function scope marked Poolable")
	}
}
