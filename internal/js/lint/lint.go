// Package lint is the JSHint substitute: a static syntax checker used by
// the generation pipeline to classify synthesised programs as syntactically
// valid or invalid, plus a handful of static quality warnings.
package lint

import (
	"fmt"

	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
)

// Result is the outcome of linting one program.
type Result struct {
	Valid    bool
	Err      error // parse error when !Valid
	Warnings []string
}

// Check parses src and, when it parses, runs the static warning passes.
func Check(src string) Result {
	prog, err := parser.Parse(src)
	if err != nil {
		return Result{Valid: false, Err: err}
	}
	return Result{Valid: true, Warnings: warnings(prog)}
}

// Valid reports only whether src parses.
func Valid(src string) bool {
	_, err := parser.Parse(src)
	return err == nil
}

// warnings runs the static quality passes: unused declarations, assignments
// in conditions, duplicate object keys, and unreachable statements.
func warnings(prog *ast.Program) []string {
	var out []string
	declared := map[string]bool{}
	used := map[string]bool{}
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.VarDecl:
			for _, d := range v.Decls {
				declared[d.Name] = true
			}
		case *ast.Ident:
			used[v.Name] = true
		case *ast.IfStmt:
			if a, ok := v.Cond.(*ast.AssignExpr); ok {
				_ = a
				out = append(out, fmt.Sprintf("line %d: assignment in condition; did you mean ==?", v.Pos().Line))
			}
		case *ast.ObjectLit:
			seen := map[string]bool{}
			for _, p := range v.Props {
				if p.Computed || p.Kind != ast.PropInit {
					continue
				}
				if seen[p.Key] {
					out = append(out, fmt.Sprintf("line %d: duplicate object key %q", v.Pos().Line, p.Key))
				}
				seen[p.Key] = true
			}
		case *ast.BlockStmt:
			out = append(out, unreachable(v.Body)...)
		}
		return true
	})
	for name := range declared {
		if !used[name] {
			out = append(out, fmt.Sprintf("unused variable %q", name))
		}
	}
	return out
}

// unreachable flags statements following an unconditional control transfer.
func unreachable(body []ast.Stmt) []string {
	var out []string
	for i, s := range body {
		terminal := false
		switch s.(type) {
		case *ast.ReturnStmt, *ast.ThrowStmt, *ast.BreakStmt, *ast.ContinueStmt:
			terminal = true
		}
		if terminal && i+1 < len(body) {
			next := body[i+1]
			if _, isFn := next.(*ast.FuncDecl); !isFn {
				out = append(out, fmt.Sprintf("line %d: unreachable code", next.Pos().Line))
			}
			break
		}
	}
	return out
}
