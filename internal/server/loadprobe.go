// The multi-campaign load probe: the fixed workload shape behind the
// repo-root BenchmarkServerLoad and the cmd/benchgate server gate, shared
// so the benchmark and the CI regression gate measure the same thing.
package server

import (
	"encoding/json"
	"fmt"
	"time"
)

// LoadProbe runs `jobs` concurrent campaigns of `cases` cases each
// (seeds seed, seed+1, ...) through a supervisor over a shared pool of
// `pool` execution slots, in the data directory dir. It returns the total
// number of testbed executions accounted across all jobs; the caller
// divides by its own wall-clock measurement to get the aggregate rate.
func LoadProbe(dir string, jobs, cases, pool int, seed int64) (int, error) {
	store, err := OpenStore(dir)
	if err != nil {
		return 0, err
	}
	s, err := NewSupervisor(Options{
		Store:       store,
		PoolWorkers: pool,
		MaxActive:   jobs,
	})
	if err != nil {
		return 0, err
	}
	defer s.Shutdown()
	for i := 0; i < jobs; i++ {
		if _, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: cases, Seed: seed + int64(i)}); err != nil {
			return 0, fmt.Errorf("submit job %d: %w", i, err)
		}
	}
	for !s.Idle() {
		time.Sleep(time.Millisecond) //detlint:wallclock — completion poll in a throughput probe
	}
	total := 0
	for _, st := range s.List() {
		if st.State != StateDone {
			return 0, fmt.Errorf("%s ended %s (%q), want done", st.ID, st.State, st.LastError)
		}
		var a Accounting
		if err := json.Unmarshal(s.Accounting(st.ID), &a); err != nil {
			return 0, fmt.Errorf("%s: accounting unreadable: %w", st.ID, err)
		}
		total += a.Executed
	}
	return total, nil
}
