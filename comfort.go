// Package comfort is a from-scratch Go reproduction of COMFORT (Ye et al.,
// PLDI 2021): a deep-learning-based compiler fuzzer that detects ECMA-262
// conformance bugs in JavaScript engines by generating test programs with a
// language model, deriving test data from the structured specification, and
// differentially testing many engine versions.
//
// The package is a thin façade over the implementation:
//
//   - internal/js/...    — a complete ECMAScript interpreter (the engine
//     substrate: lexer, parser, evaluator, stdlib, regex engine, lint,
//     coverage)
//   - internal/engines   — ten engine families × 52 versions with a
//     catalog of 158 seeded conformance defects reproducing the paper's
//     Tables 2–5 and Figure 7
//   - internal/spec      — the ECMA-262 document parser and Figure-4
//     boundary-condition database
//   - internal/lm        — BPE + long-context language model (the GPT-2
//     substitute) and the short-context baseline
//   - internal/fuzzers   — COMFORT plus the five baseline fuzzers
//   - internal/exec      — the execution scheduler: prepared testbeds,
//     behaviour-class sharing, a parse-once cache and a streaming
//     (case × testbed) worker pool
//   - internal/reduce    — hierarchical ddmin test-case reduction with
//     speculative parallel predicate evaluation (Section 3.5)
//   - internal/campaign  — differential-testing campaigns (a fuzzer →
//     scheduler → classify → dedup/attribute → reduce pipeline) and the
//     table/figure generators
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package comfort

import (
	"math/rand"

	"comfort/internal/campaign"
	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/reduce"
	"comfort/internal/spec"
	"comfort/internal/testgen"
)

// Re-exported core types.
type (
	// Engine is one JS engine family under test.
	Engine = engines.Engine
	// Version is one engine build (a Table-1 row).
	Version = engines.Version
	// Testbed is an engine version in normal or strict mode.
	Testbed = engines.Testbed
	// PreparedTestbed is a testbed with its defect set, hook chain and
	// option deltas resolved once (the per-execution fast path).
	PreparedTestbed = engines.PreparedTestbed
	// Defect is a seeded conformance bug with its triage ground truth.
	Defect = engines.Defect
	// ExecResult is the observable behaviour of one testbed run.
	ExecResult = engines.ExecResult
	// RunOptions carries the per-execution fuel budget and seed.
	RunOptions = engines.RunOptions
	// CaseResult is a differential-testing outcome (Figure 5).
	CaseResult = difftest.CaseResult
	// ExecEntry pairs one testbed with its observed behaviour on a case.
	ExecEntry = difftest.ExecEntry
	// Fuzzer generates test cases (COMFORT or a baseline).
	Fuzzer = fuzzers.Fuzzer
	// CampaignConfig parameterises a fuzzing campaign.
	CampaignConfig = campaign.Config
	// CampaignResult summarises a campaign's findings.
	CampaignResult = campaign.Result
	// SpecDB is the Figure-4 boundary-condition database.
	SpecDB = spec.DB
)

// Engines returns the ten engine families with their tested versions.
func Engines() []*Engine { return engines.All() }

// Testbeds returns all engine-version × mode testbeds.
func Testbeds() []Testbed { return engines.Testbeds() }

// Catalog returns the 158 seeded conformance defects (the ground truth
// behind every reproduced table).
func Catalog() []*Defect { return engines.Catalog() }

// RunTestbed executes src on one testbed.
func RunTestbed(tb Testbed, src string, fuel, seed int64) ExecResult {
	return tb.Run(src, engines.RunOptions{Fuel: fuel, Seed: seed})
}

// PrepareTestbed resolves a testbed's constant state (active defects, hook
// chain, parser options) once; the result is memoised per version×mode and
// its Run avoids the per-execution catalog scan.
func PrepareTestbed(tb Testbed) *PreparedTestbed { return tb.Prepare() }

// ExecuteCase runs src on every testbed and returns the raw per-testbed
// entries (parse and behaviour-class sharing applied).
func ExecuteCase(src string, testbeds []Testbed, fuel, seed int64) []ExecEntry {
	return difftest.Execute(src, testbeds, difftest.Options{Fuel: fuel, Seed: seed})
}

// ClassifyCase applies the pure Figure-5 classification to a set of
// executions (no testbed runs).
func ClassifyCase(entries []ExecEntry) CaseResult { return difftest.Classify(entries) }

// RunReference executes src on the defect-free reference engine.
func RunReference(src string, strict bool, fuel, seed int64) ExecResult {
	return engines.Reference(src, strict, engines.RunOptions{Fuel: fuel, Seed: seed})
}

// ReferenceTestbed returns the defect-free reference testbed in the given
// mode (prepare it once to run many candidates against the oracle).
func ReferenceTestbed(strict bool) Testbed { return engines.ReferenceTestbed(strict) }

// DiffTest differentially tests src across testbeds per Figure 5.
func DiffTest(src string, testbeds []Testbed, fuel, seed int64) CaseResult {
	return difftest.Run(src, testbeds, difftest.Options{Fuel: fuel, Seed: seed})
}

// NewComfortFuzzer builds the full COMFORT pipeline (GPT-2-substitute
// program generation plus ECMA-262-guided test data).
func NewComfortFuzzer() Fuzzer { return fuzzers.NewComfort() }

// Fuzzers returns COMFORT and the five baseline fuzzers of the paper's
// comparison experiments.
func Fuzzers() []Fuzzer { return fuzzers.All() }

// RunCampaign executes a fuzzing campaign.
func RunCampaign(cfg CampaignConfig) *CampaignResult { return campaign.Run(cfg) }

// SpecDatabase returns the boundary-condition database extracted from the
// embedded ECMA-262-style document.
func SpecDatabase() *SpecDB { return spec.Default() }

// MutateTestData applies Algorithm 1 (ECMA-262-guided test data generation)
// to a test program and returns the mutated variants.
func MutateTestData(src string, maxVariants int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var out []string
	for _, v := range testgen.Mutate(src, spec.Default(), rng, testgen.Options{MaxVariants: maxVariants}) {
		out = append(out, v.Source)
	}
	return out
}

// ReduceOptions parameterises parallel test-case reduction.
type ReduceOptions = reduce.Options

// ReduceTestCase shrinks a bug-exposing test case while keep reports that
// the anomaly still reproduces (Section 3.5), using the sequential driver.
func ReduceTestCase(src string, keep func(string) bool) string {
	return reduce.Reduce(src, keep)
}

// ReduceTestCaseParallel shrinks a bug-exposing test case with the
// hierarchical ddmin reducer, evaluating independent candidates
// speculatively on a bounded worker pool. keep must be safe for concurrent
// calls when Workers > 1; the result is byte-identical for every worker
// count.
func ReduceTestCaseParallel(src string, keep func(string) bool, opts ReduceOptions) string {
	return reduce.Parallel(src, keep, opts)
}

// Tables regenerates the paper's evaluation artifacts from a campaign's
// findings; see the campaign package for the individual generators.
var Tables = struct {
	Table1  func() string
	Table2  func(found []*Defect) string
	Table3  func(found []*Defect) string
	Table4  func(found []*Defect) string
	Table5  func(found []*Defect) string
	Figure7 func(found []*Defect) string
	Figure8 func(casesPerFuzzer int, seed int64) (string, []campaign.FuzzerComparison)
	Figure9 func(n int, seed int64) (string, []campaign.QualityMetrics)
}{
	Table1:  campaign.Table1,
	Table2:  campaign.Table2,
	Table3:  campaign.Table3,
	Table4:  campaign.Table4,
	Table5:  campaign.Table5,
	Figure7: campaign.Figure7,
	Figure8: campaign.Figure8,
	Figure9: campaign.Figure9,
}
