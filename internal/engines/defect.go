package engines

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/regex"
)

// Component labels the engine subsystem a defect lives in (Figure 7).
type Component int

// Compiler components.
const (
	CodeGen Component = iota
	Implementation
	ParserComp
	RegexEngine
	StrictModeComp
	Optimizer
)

func (c Component) String() string {
	switch c {
	case CodeGen:
		return "CodeGen"
	case Implementation:
		return "Implementation"
	case ParserComp:
		return "Parser"
	case RegexEngine:
		return "Regex Engine"
	case StrictModeComp:
		return "Strict Mode"
	case Optimizer:
		return "Optimizer"
	default:
		return "?"
	}
}

// Components lists all component labels in Figure 7 order.
func Components() []Component {
	return []Component{CodeGen, Implementation, ParserComp, RegexEngine, StrictModeComp, Optimizer}
}

// Channel labels which part of the COMFORT pipeline exposes a defect
// (Table 4): plain generated programs, or ECMA-262-guided test data.
type Channel int

// Discovery channels.
const (
	ChannelGen Channel = iota
	ChannelSpecData
)

func (c Channel) String() string {
	if c == ChannelSpecData {
		return "ECMA-262 guided mutation"
	}
	return "Test program generation"
}

// Defect is one seeded conformance bug: where it lives, which versions have
// it, how its discovery was triaged in the paper's ground truth, and the
// behavioural interception that realises it.
type Defect struct {
	ID          string
	Engine      string
	AttrVersion string // earliest bug-exposing version (Table 3 attribution)
	FixedIn     string // first version without the bug ("" = never, in our set)

	Component Component
	APIType   string // Table 5 object-type grouping ("other" = non-API)
	API       string // canonical spec key of the defective operation
	Channel   Channel

	Verified bool // developer confirmed (Table 2 "#Verified")
	DevFixed bool // developer fixed (Table 2 "#Fixed")
	Test262  bool // witness accepted into Test262 (Table 2 last column)
	New      bool // newly discovered by COMFORT (Table 3 "#New")

	Note    string
	Witness string // JS program that provably triggers the defect

	// WitnessStrict runs the witness on the strict testbed.
	WitnessStrict bool
	// StrictOnly restricts the hook to strict-mode runs (Figure 7's
	// "Strict Mode" component defects).
	StrictOnly bool

	Hook       interp.Hook
	Configure  func(*interp.Config)
	ParserOpts func(*parser.Options)
	// PreParse lets over-restrictive parser defects reject a valid program;
	// a non-empty return is the SyntaxError message.
	PreParse func(src string) string
}

// ActiveIn reports whether the defect is present in version v.
func (d *Defect) ActiveIn(v Version) bool {
	if v.Engine != d.Engine {
		return false
	}
	e, ok := ByName(d.Engine)
	if !ok {
		return false
	}
	intro, ok := rankOf(e, d.AttrVersion)
	if !ok || v.rank < intro {
		return false
	}
	if d.FixedIn != "" {
		if fixed, ok := rankOf(e, d.FixedIn); ok && v.rank >= fixed {
			return false
		}
	}
	return true
}

// rankOf resolves a version name to its rank (first match wins, since
// JerryScript reuses version names across builds).
func rankOf(e *Engine, name string) (int, bool) {
	for _, v := range e.Versions {
		if v.Name == name || v.Build == name {
			return v.rank, true
		}
	}
	return 0, false
}

// ---------- hook builders ----------

// onAPI intercepts one builtin by its canonical spec key.
func onAPI(api string, when func(*interp.HookCtx) bool, eff func(*interp.HookCtx) *interp.Override) interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookBuiltin || ctx.Name != api {
			return nil
		}
		if when != nil && !when(ctx) {
			return nil
		}
		return eff(ctx)
	}
}

// onRegex intercepts a regex execution entry point (split/match/exec/...)
// conditioned on the pattern source.
func onRegex(api string, patWhen func(pattern, flags string) bool, eff func(ctx *interp.HookCtx) *interp.Override) interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookRegexExec || ctx.Name != api {
			return nil
		}
		if patWhen != nil && !patWhen(ctx.Pattern, ctx.Flags) {
			return nil
		}
		return eff(ctx)
	}
}

// onPropSet intercepts property stores.
func onPropSet(when func(ctx *interp.HookCtx) bool, eff func(ctx *interp.HookCtx) *interp.Override) interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookPropSet {
			return nil
		}
		if when != nil && !when(ctx) {
			return nil
		}
		return eff(ctx)
	}
}

// onTier intercepts function entry after the given invocation count — the
// "optimizing tier kicks in" defect model.
func onTier(threshold int, eff func(ctx *interp.HookCtx) *interp.Override) interp.Hook {
	return func(ctx *interp.HookCtx) *interp.Override {
		if ctx.Site != interp.HookFuncTier || ctx.Tier != threshold {
			return nil
		}
		return eff(ctx)
	}
}

// ---------- effect builders ----------

func ret(v interp.Value) func(*interp.HookCtx) *interp.Override {
	return func(*interp.HookCtx) *interp.Override {
		return &interp.Override{Replace: true, Return: v}
	}
}

func retFn(f func(ctx *interp.HookCtx) interp.Value) func(*interp.HookCtx) *interp.Override {
	return func(ctx *interp.HookCtx) *interp.Override {
		return &interp.Override{Replace: true, Return: f(ctx)}
	}
}

func throwE(kind, msg string) func(*interp.HookCtx) *interp.Override {
	return func(ctx *interp.HookCtx) *interp.Override {
		return &interp.Override{Replace: true, Err: &interp.Throw{Val: ctx.In.NewError(kind, msg)}}
	}
}

// noThrow swallows the exception the operation should raise, yielding v.
func noThrow(v interp.Value) func(*interp.HookCtx) *interp.Override {
	return func(*interp.HookCtx) *interp.Override {
		return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
			if _, isThrow := interp.IsThrow(err); isThrow {
				return v, nil
			}
			return res, err
		}}
	}
}

// mapResult transforms a successful result.
func mapResult(f func(ctx *interp.HookCtx, res interp.Value) interp.Value) func(*interp.HookCtx) *interp.Override {
	return func(ctx *interp.HookCtx) *interp.Override {
		return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
			if err != nil {
				return res, err
			}
			return f(ctx, res), nil
		}}
	}
}

func crash(msg string) func(*interp.HookCtx) *interp.Override {
	return func(*interp.HookCtx) *interp.Override {
		return &interp.Override{Replace: true, Err: &interp.Abort{Kind: interp.AbortCrash, Msg: msg}}
	}
}

func slow(cost int64) func(*interp.HookCtx) *interp.Override {
	return func(*interp.HookCtx) *interp.Override {
		return &interp.Override{CostExtra: cost}
	}
}

// ---------- trigger predicates ----------

func argUndef(i int) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i < len(ctx.Args) && ctx.Args[i].IsUndefined()
	}
}

func argMissingOrUndef(i int) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i >= len(ctx.Args) || ctx.Args[i].IsUndefined()
	}
}

func argNull(i int) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i < len(ctx.Args) && ctx.Args[i].IsNull()
	}
}

func argBool(i int) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i < len(ctx.Args) && ctx.Args[i].Kind() == interp.KindBool
	}
}

func argString(i int) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i < len(ctx.Args) && ctx.Args[i].Kind() == interp.KindString
	}
}

func argNumber(i int, pred func(float64) bool) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return i < len(ctx.Args) && ctx.Args[i].Kind() == interp.KindNumber && pred(ctx.Args[i].Num())
	}
}

func argNeg(i int) func(*interp.HookCtx) bool {
	return argNumber(i, func(f float64) bool { return f < 0 })
}

func argNaN(i int) func(*interp.HookCtx) bool {
	return argNumber(i, math.IsNaN)
}

func argInf(i int) func(*interp.HookCtx) bool {
	return argNumber(i, func(f float64) bool { return math.IsInf(f, 0) })
}

func argFrac(i int) func(*interp.HookCtx) bool {
	return argNumber(i, func(f float64) bool {
		return !math.IsNaN(f) && !math.IsInf(f, 0) && f != math.Trunc(f)
	})
}

func argZero(i int) func(*interp.HookCtx) bool {
	return argNumber(i, func(f float64) bool { return f == 0 })
}

func argBigNum(i int, min float64) func(*interp.HookCtx) bool {
	return argNumber(i, func(f float64) bool { return f >= min })
}

func noArgs() func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool { return len(ctx.Args) == 0 }
}

func thisEmptyString() func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return ctx.This.Kind() == interp.KindString && ctx.This.Str() == ""
	}
}

func thisStringContains(sub string) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		return ctx.This.Kind() == interp.KindString && strings.Contains(ctx.This.Str(), sub)
	}
}

func and(preds ...func(*interp.HookCtx) bool) func(*interp.HookCtx) bool {
	return func(ctx *interp.HookCtx) bool {
		for _, p := range preds {
			if !p(ctx) {
				return false
			}
		}
		return true
	}
}

// anchorAnywhere implements the "^ anchor honoured mid-string" regex defect
// family: it re-runs the pattern without its leading anchor and fakes a
// match wherever it lands.
func anchorAnywhere(api string) interp.Hook {
	return onRegex(api, func(pattern, flags string) bool {
		return strings.HasPrefix(pattern, "^") && len(pattern) > 1
	}, func(ctx *interp.HookCtx) *interp.Override {
		re, err := regex.Compile(strings.TrimPrefix(ctx.Pattern, "^"), ctx.Flags)
		if err != nil {
			return nil
		}
		input := ""
		start := 0
		if len(ctx.Args) > 0 {
			input = ctx.Args[0].Str()
		}
		if len(ctx.Args) > 1 {
			start = int(ctx.Args[1].Num())
		}
		m, err := re.Exec(input, start)
		if err != nil || m == nil {
			return nil
		}
		if m.Groups[0][0] == 0 {
			return nil // the correct matcher would find this anyway
		}
		return &interp.Override{Replace: true, Return: interp.ObjValue(
			fakeMatchObject(m.Groups[0][0], m.Groups[0][1]))}
	})
}

// fakeMatchObject encodes a fake [start,end) range for runRegex overrides.
func fakeMatchObject(start, end int) *interp.Object {
	o := interp.NewObject(nil)
	o.Class = "FakeMatch"
	o.SetSlot("start", interp.Number(float64(start)), interp.DefaultAttr)
	o.SetSlot("end", interp.Number(float64(end)), interp.DefaultAttr)
	return o
}
