package interp

import "fmt"

// Throw is a JavaScript exception propagating as a Go error.
type Throw struct {
	Val Value
}

func (t *Throw) Error() string {
	if t.Val.IsObject() {
		o := t.Val.Obj()
		name, msg := "Error", ""
		if p, ok := o.getOwn("name"); ok && p.Value.Kind() == KindString {
			name = p.Value.Str()
		} else if o.Proto != nil {
			if p, ok := o.Proto.getOwn("name"); ok && p.Value.Kind() == KindString {
				name = p.Value.Str()
			}
		}
		if p, ok := o.getOwn("message"); ok && p.Value.Kind() == KindString {
			msg = p.Value.Str()
		}
		if msg != "" {
			return name + ": " + msg
		}
		return name
	}
	return "Throw: " + DebugString(t.Val)
}

// AbortKind classifies non-exception terminations.
type AbortKind int

// Abort kinds.
const (
	AbortTimeout  AbortKind = iota // fuel exhausted
	AbortCrash                     // simulated engine crash (e.g. memory safety)
	AbortLimit                     // internal limit (recursion depth, regex budget)
	AbortDeadline                  // wall-clock watchdog fired (Config.Watchdog)
)

func (k AbortKind) String() string {
	switch k {
	case AbortTimeout:
		return "timeout"
	case AbortCrash:
		return "crash"
	case AbortDeadline:
		return "deadline"
	default:
		return "limit"
	}
}

// Abort is a non-exception engine termination: a timeout, a simulated
// crash, or an internal resource limit.
type Abort struct {
	Kind AbortKind
	Msg  string
}

func (a *Abort) Error() string { return fmt.Sprintf("engine %s: %s", a.Kind, a.Msg) }

// IsThrow reports whether err is a JS exception and returns it.
func IsThrow(err error) (*Throw, bool) {
	t, ok := err.(*Throw)
	return t, ok
}

// IsAbort reports whether err is an engine abort and returns it.
func IsAbort(err error) (*Abort, bool) {
	a, ok := err.(*Abort)
	return a, ok
}

// Proto resolves a realm prototype by name, invoking the prototype-miss
// hook once when the name is absent (lazily-installed stdlib sections).
func (in *Interp) Proto(kind string) *Object {
	p := in.Protos[kind]
	if p == nil && in.ProtoMiss != nil {
		in.ProtoMiss(kind)
		p = in.Protos[kind]
	}
	return p
}

// NewError builds an Error object of the given kind ("TypeError", ...) with
// a message, using the realm's prototypes when available.
func (in *Interp) NewError(kind, msg string) Value {
	proto := in.Proto(kind)
	if proto == nil {
		proto = in.Proto("Error")
	}
	o := NewObject(proto)
	o.Class = "Error"
	o.SetSlot("message", String(msg), Writable|Configurable)
	if proto == nil {
		// Bare interpreter without the stdlib installed: keep the name on
		// the instance so classification still works.
		o.SetSlot("name", String(kind), Writable|Configurable)
	}
	return ObjValue(o)
}

// Throwf raises a JS exception of the given error kind.
func (in *Interp) Throwf(kind, format string, args ...interface{}) error {
	return &Throw{Val: in.NewError(kind, fmt.Sprintf(format, args...))}
}

// TypeErrorf raises a TypeError.
func (in *Interp) TypeErrorf(format string, args ...interface{}) error {
	return in.Throwf("TypeError", format, args...)
}

// RangeErrorf raises a RangeError.
func (in *Interp) RangeErrorf(format string, args ...interface{}) error {
	return in.Throwf("RangeError", format, args...)
}

// SyntaxErrorf raises a SyntaxError.
func (in *Interp) SyntaxErrorf(format string, args ...interface{}) error {
	return in.Throwf("SyntaxError", format, args...)
}

// ReferenceErrorf raises a ReferenceError.
func (in *Interp) ReferenceErrorf(format string, args ...interface{}) error {
	return in.Throwf("ReferenceError", format, args...)
}

// ErrorName extracts the constructor name ("TypeError", ...) from a thrown
// value, for outcome classification and the dedup tree.
func ErrorName(v Value) string {
	if !v.IsObject() {
		return "value"
	}
	o := v.Obj()
	for cur := o; cur != nil; cur = cur.Proto {
		if p, ok := cur.getOwn("name"); ok && p.Value.Kind() == KindString {
			return p.Value.Str()
		}
	}
	return o.Class
}
