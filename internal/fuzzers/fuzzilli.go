package fuzzers

import (
	"fmt"
	"math/rand"
	"strings"
)

// Fuzzilli is the typed-IL mutation baseline: programs are sequences of
// FuzzIL-like instructions over numbered variables; mutation splices,
// re-types and extends instruction lists; lifting renders JS. Because every
// instruction's inputs are variables that exist, the lifted programs are
// syntactically valid by construction but explore API space through
// hand-crafted generation rules — which is why Fuzzilli leads *function*
// coverage while trailing statement/branch coverage in Figure 9.
type Fuzzilli struct {
	corpusIL [][]ilInst
}

// ilInst is one FuzzIL-like instruction.
type ilInst struct {
	op  string
	out int   // defined variable, -1 if none
	ins []int // used variables
	aux string
}

// NewFuzzilli seeds the IL corpus with a few hand-built programs, as the
// real tool seeds its corpus with minimal samples.
func NewFuzzilli() *Fuzzilli {
	return &Fuzzilli{corpusIL: [][]ilInst{
		{
			{op: "LoadInt", out: 0, aux: "2477"},
			{op: "NewString", out: 1, ins: []int{0}},
			{op: "ObjectOp", out: 2, ins: []int{1}, aux: "seal"},
			{op: "Print", out: -1, ins: []int{2}},
		},
		{
			{op: "LoadString", out: 0, aux: `"abc"`},
			{op: "CallMethod", out: 1, ins: []int{0}, aux: "toUpperCase"},
			{op: "Print", out: -1, ins: []int{1}},
		},
		{
			{op: "NewArray", out: 0, aux: "1, 2, 5"},
			{op: "LoadBool", out: 1, aux: "true"},
			{op: "StoreElem", out: -1, ins: []int{0, 1}, aux: "10"},
			{op: "Print", out: -1, ins: []int{0}},
		},
	}}
}

// Name implements Fuzzer.
func (f *Fuzzilli) Name() string { return "Fuzzilli" }

// Fork implements fuzzers.Forkable: Next copies the picked corpus program
// before mutating it, so shards can share the seed IL corpus.
func (f *Fuzzilli) Fork(shardSeed int64) Fuzzer {
	return &Fuzzilli{corpusIL: f.corpusIL}
}

// Next implements Fuzzer: pick a corpus program, mutate it, lift it.
func (f *Fuzzilli) Next(rng *rand.Rand) []string {
	base := f.corpusIL[rng.Intn(len(f.corpusIL))]
	prog := append([]ilInst(nil), base...)
	for i := 0; i < 1+rng.Intn(3); i++ {
		prog = f.mutate(prog, rng)
	}
	return []string{textCorrupt(liftIL(prog), rng, 0.45)}
}

var ilMethods = []string{
	"toUpperCase", "toLowerCase", "trim", "substr", "slice", "charAt",
	"indexOf", "split", "concat", "repeat", "padStart", "normalize",
	"toFixed", "toString", "valueOf", "join", "sort", "reverse", "push",
	"pop", "includes", "fill",
}

var ilObjectOps = []string{"seal", "freeze", "keys", "values", "getPrototypeOf", "preventExtensions"}

// mutate applies one of the FuzzIL-style mutations: insert, replace-aux,
// duplicate, or append-use.
func (f *Fuzzilli) mutate(prog []ilInst, rng *rand.Rand) []ilInst {
	next := maxVar(prog) + 1
	switch rng.Intn(4) {
	case 0: // insert a new definition
		ins := ilInst{out: next}
		switch rng.Intn(5) {
		case 0:
			ins.op = "LoadInt"
			ins.aux = fmt.Sprint(rng.Intn(1000) - 200)
		case 1:
			ins.op = "LoadFloat"
			ins.aux = fmt.Sprint(float64(rng.Intn(700))/100.0 + 0.14)
		case 2:
			ins.op = "LoadString"
			ins.aux = fmt.Sprintf("%q", []string{"", "abc", "anA", "123", "Name: Albert"}[rng.Intn(5)])
		case 3:
			ins.op = "NewArray"
			ins.aux = "1, 2, 3"
		case 4:
			ins.op = "NewTypedArray"
			ins.aux = fmt.Sprint(rng.Intn(8) + 1)
		}
		at := rng.Intn(len(prog) + 1)
		prog = append(prog[:at], append([]ilInst{ins}, prog[at:]...)...)
	case 1: // call a method on an existing variable
		v := rng.Intn(next)
		prog = append(prog, ilInst{op: "CallMethod", out: next, ins: []int{v},
			aux: ilMethods[rng.Intn(len(ilMethods))]})
	case 2: // object operation
		v := rng.Intn(next)
		prog = append(prog, ilInst{op: "ObjectOp", out: next, ins: []int{v},
			aux: ilObjectOps[rng.Intn(len(ilObjectOps))]})
	default: // print something
		v := rng.Intn(next)
		prog = append(prog, ilInst{op: "Print", out: -1, ins: []int{v}})
	}
	return prog
}

func maxVar(prog []ilInst) int {
	m := 0
	for _, in := range prog {
		if in.out > m {
			m = in.out
		}
	}
	return m
}

// liftIL renders the IL to JavaScript inside a main function, the way
// Fuzzilli's lifter wraps its output (the paper's Listing 11 shape).
func liftIL(prog []ilInst) string {
	var b strings.Builder
	b.WriteString("function main() {\n")
	for _, ins := range prog {
		switch ins.op {
		case "LoadInt", "LoadFloat", "LoadBool":
			fmt.Fprintf(&b, "  var v%d = %s;\n", ins.out, ins.aux)
		case "LoadString":
			fmt.Fprintf(&b, "  var v%d = %s;\n", ins.out, ins.aux)
		case "NewString":
			fmt.Fprintf(&b, "  var v%d = new String(v%d);\n", ins.out, ins.ins[0])
		case "NewArray":
			fmt.Fprintf(&b, "  var v%d = [%s];\n", ins.out, ins.aux)
		case "NewTypedArray":
			fmt.Fprintf(&b, "  var v%d = new Uint8Array(%s);\n", ins.out, ins.aux)
		case "CallMethod":
			fmt.Fprintf(&b, "  var v%d = v%d.%s ? v%d.%s() : v%d;\n",
				ins.out, ins.ins[0], ins.aux, ins.ins[0], ins.aux, ins.ins[0])
		case "ObjectOp":
			fmt.Fprintf(&b, "  var v%d = Object.%s(v%d);\n", ins.out, ins.aux, ins.ins[0])
		case "StoreElem":
			fmt.Fprintf(&b, "  v%d[v%d] = %s;\n", ins.ins[0], ins.ins[1], ins.aux)
		case "Print":
			fmt.Fprintf(&b, "  print(v%d);\n", ins.ins[0])
		}
	}
	b.WriteString("}\nmain();\n")
	return b.String()
}
