package testgen

import (
	"fmt"
	"math/rand"
	"strings"

	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
	"comfort/internal/spec"
)

// Section 3.3: "In addition to generating variables, we also generate code
// to call functions with supplied parameters and print out the results."
// The generated programs often define a function that is never invoked
// (generation stops when the header's braces balance); driver synthesis
// builds the Figure-2-style harness around it: one `var parameter = ...`
// per argument, a call, and a print of the result.

// driverTarget is a top-level function eligible for driver synthesis.
type driverTarget struct {
	name   string
	params []string
	// paramRules maps parameter index → the spec rule of the API argument
	// position the parameter flows into (Algorithm 1's data-flow step).
	paramRules map[int]spec.ParamRule
	// receiverTypes maps parameter index → the API prefix when the
	// parameter is used as a method receiver (e.g. str.substr → String).
	receiverTypes map[int]string
}

// findDriverTargets locates top-level functions that are declared but never
// called, together with the specification knowledge about their parameters.
func findDriverTargets(prog *ast.Program, db *spec.DB) []driverTarget {
	type fn struct {
		lit  *ast.FuncLit
		name string
	}
	var fns []fn
	called := map[string]bool{}
	for _, s := range prog.Body {
		switch st := s.(type) {
		case *ast.FuncDecl:
			fns = append(fns, fn{st.Fn, st.Fn.Name})
		case *ast.VarDecl:
			for _, d := range st.Decls {
				if lit, ok := d.Init.(*ast.FuncLit); ok {
					fns = append(fns, fn{lit, d.Name})
				}
			}
		}
	}
	// A function counts as called only when some call site supplies all of
	// its parameters; the generator's bare trailer (`foo();`) leaves every
	// parameter undefined and is replaced by a synthesised driver.
	arity := map[string]int{}
	for _, f := range fns {
		arity[f.name] = len(f.lit.Params)
	}
	ast.Walk(prog, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Callee.(*ast.Ident); ok {
				if len(call.Args) >= arity[id.Name] {
					called[id.Name] = true
				}
			}
		}
		return true
	})
	var out []driverTarget
	for _, f := range fns {
		if f.name == "" || called[f.name] || len(f.lit.Params) == 0 || f.lit.Body == nil {
			continue
		}
		t := driverTarget{
			name: f.name, params: f.lit.Params,
			paramRules:    map[int]spec.ParamRule{},
			receiverTypes: map[int]string{},
		}
		paramIdx := map[string]int{}
		for i, p := range f.lit.Params {
			paramIdx[p] = i
		}
		associate := func(args []ast.Expr, rules []spec.ParamRule) {
			for j, a := range args {
				if j >= len(rules) {
					break
				}
				if id, isIdent := a.(*ast.Ident); isIdent {
					if i, isParam := paramIdx[id.Name]; isParam {
						if _, seen := t.paramRules[i]; !seen {
							t.paramRules[i] = rules[j]
						}
					}
				}
			}
		}
		ast.Walk(f.lit.Body, func(n ast.Node) bool {
			switch call := n.(type) {
			case *ast.CallExpr:
				member, ok := call.Callee.(*ast.MemberExpr)
				if !ok || member.Computed {
					return true
				}
				key, rules, ok := db.LookupMethod(member.Name)
				if !ok {
					return true
				}
				// Receiver association: str.substr → str is a String.
				if recv, isIdent := member.Obj.(*ast.Ident); isIdent {
					if i, isParam := paramIdx[recv.Name]; isParam {
						t.receiverTypes[i] = apiPrefix(key)
					}
				}
				associate(call.Args, rules)
			case *ast.NewExpr:
				// Constructor sites: new Uint32Array(length) etc.
				if ctor, ok := call.Callee.(*ast.Ident); ok {
					if rules, ok := db.Lookup(ctor.Name); ok {
						associate(call.Args, rules)
					}
				}
			}
			return true
		})
		if len(t.paramRules) > 0 || len(t.receiverTypes) > 0 {
			out = append(out, t)
		}
	}
	return out
}

func apiPrefix(key string) string {
	if i := strings.Index(key, ".prototype."); i > 0 {
		return key[:i]
	}
	return ""
}

// typeDefault supplies the "normal condition" value for a parameter.
func typeDefault(typ string) string {
	switch typ {
	case "integer", "number":
		return "2"
	case "string":
		return `"Name: Albert"`
	case "boolean":
		return "true"
	case "object":
		return "[0, 1]"
	default:
		return "1"
	}
}

// receiverDefault supplies a receiver value for a method's API family.
func receiverDefault(prefix string) string {
	switch prefix {
	case "String":
		return `"Name: Albert"`
	case "Array":
		return "[1, 2, 5]"
	case "Number":
		return "-634619"
	case "RegExp":
		return "/abc/"
	default:
		return `"Name: Albert"`
	}
}

// synthesizeDrivers builds Figure-2-style driver variants for src: for each
// uncalled function and each boundary value of a spec-covered parameter,
// append `var parameter = <value>; print(fn(...));`.
func synthesizeDrivers(src string, db *spec.DB, rng *rand.Rand, budget int) []Variant {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil
	}
	targets := findDriverTargets(prog, db)
	if len(targets) == 0 {
		return nil
	}
	var priority, rest []Variant
	for _, t := range targets {
		// Defaults for every parameter.
		defaults := make([]string, len(t.params))
		for i := range t.params {
			if prefix, ok := t.receiverTypes[i]; ok {
				defaults[i] = receiverDefault(prefix)
			} else if rule, ok := t.paramRules[i]; ok {
				defaults[i] = typeDefault(rule.Type)
			} else {
				defaults[i] = "1"
			}
		}
		// One variant per boundary value per spec-covered parameter.
		for i := range t.params {
			rule, ok := t.paramRules[i]
			if !ok {
				continue
			}
			api := "driver"
			body := stripBareCalls(src, t.name)
			for vi, v := range rule.Values {
				args := append([]string(nil), defaults...)
				args[i] = "parameter"
				driver := fmt.Sprintf("%s\nvar parameter = %s;\nvar result = %s(%s);\nprint(result);\n",
					strings.TrimRight(body, "\n"), v, t.name, strings.Join(args, ", "))
				if _, err := parser.Parse(driver); err != nil {
					continue
				}
				variant := Variant{Source: driver, API: api, Value: v}
				// Each parameter's leading (condition-derived) probe is
				// emitted ahead of the shuffled remainder, as in Mutate.
				if vi == 0 {
					priority = append(priority, variant)
				} else {
					rest = append(rest, variant)
				}
			}
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	out := append(priority, rest...)
	if len(out) > budget {
		out = out[:budget]
	}
	return out
}

// stripBareCalls drops zero-argument invocations of name (the generator's
// trailer), which would otherwise run the function with every parameter
// undefined before the synthesised driver executes.
func stripBareCalls(src, name string) string {
	var kept []string
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == name+"();" {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}
