package exec

import (
	"context"
	"fmt"
	"testing"
	"time"

	"comfort/internal/engines"
)

func schedCfg(workers int) Config {
	return Config{
		Testbeds: engines.Testbeds(),
		Workers:  workers,
		Fuel:     200000,
		Seed:     2021,
	}
}

var testSrcs = []string{
	`print(1 + 1);`,
	`print("Name: Albert".substr(6, undefined));`,
	`var = broken(`,
	`print([3,1,2].sort());`,
	`print(parseInt("08"));`,
	`function f(n){ return n <= 1 ? 1 : n * f(n-1); } print(f(6));`,
}

func collect(t *testing.T, s *Scheduler, srcs []string) []Outcome {
	t.Helper()
	var out []Outcome
	for oc := range s.Run(context.Background(), FromSlice(context.Background(), srcs)) {
		out = append(out, oc)
	}
	return out
}

// TestOutcomesStreamInOrder pins the reorder buffer: outcomes arrive in
// case order regardless of worker interleaving, with entries in testbed
// order.
func TestOutcomesStreamInOrder(t *testing.T) {
	s := New(schedCfg(8))
	outcomes := collect(t, s, testSrcs)
	if len(outcomes) != len(testSrcs) {
		t.Fatalf("got %d outcomes, want %d", len(outcomes), len(testSrcs))
	}
	tbs := engines.Testbeds()
	for i, oc := range outcomes {
		if oc.Index != i {
			t.Errorf("outcome %d has index %d", i, oc.Index)
		}
		if oc.Src != testSrcs[i] {
			t.Errorf("outcome %d carries wrong source", i)
		}
		if len(oc.Entries) != len(tbs) {
			t.Fatalf("outcome %d has %d entries, want %d", i, len(oc.Entries), len(tbs))
		}
		for j, e := range oc.Entries {
			if e.Testbed.ID() != tbs[j].ID() {
				t.Fatalf("outcome %d entry %d is %s, want %s", i, j, e.Testbed.ID(), tbs[j].ID())
			}
		}
	}
}

// TestWorkerCountIndependence pins the scheduler's determinism contract:
// identical inputs produce identical classified outcomes for any pool size.
func TestWorkerCountIndependence(t *testing.T) {
	base := collect(t, New(schedCfg(1)), testSrcs)
	wide := collect(t, New(schedCfg(8)), testSrcs)
	if len(base) != len(wide) {
		t.Fatalf("outcome counts differ: %d vs %d", len(base), len(wide))
	}
	for i := range base {
		if base[i].Result.Verdict != wide[i].Result.Verdict {
			t.Errorf("case %d: verdict %s (1 worker) vs %s (8 workers)",
				i, base[i].Result.Verdict, wide[i].Result.Verdict)
		}
		for j := range base[i].Entries {
			a, b := base[i].Entries[j].Result, wide[i].Entries[j].Result
			if a.Key() != b.Key() {
				t.Errorf("case %d entry %d: result keys differ: %q vs %q", i, j, a.Key(), b.Key())
			}
		}
	}
}

// TestBehaviorClassesCollapse checks that the 104 full testbeds share
// executions: there must be strictly fewer classes than testbeds.
func TestBehaviorClassesCollapse(t *testing.T) {
	s := New(schedCfg(1))
	if s.Classes() >= len(engines.Testbeds()) {
		t.Errorf("expected behaviour classes < %d testbeds, got %d",
			len(engines.Testbeds()), s.Classes())
	}
	if s.Classes() == 0 {
		t.Error("no behaviour classes built")
	}
}

// TestParseCacheShares checks the parse-once property: for n cases over the
// full testbed set, parses stay within (distinct fingerprints × n) instead
// of (testbeds × n).
func TestParseCacheShares(t *testing.T) {
	s := New(schedCfg(4))
	collect(t, s, testSrcs)
	hits, misses, _ := s.CacheStats()
	if hits == 0 {
		t.Error("parse cache recorded no hits on a full-testbed run")
	}
	// Fingerprint diversity is tiny (a handful of parser-defect options),
	// so misses must be far below executions.
	maxMisses := int64(len(testSrcs) * 16)
	if misses > maxMisses {
		t.Errorf("parse cache misses = %d, want <= %d", misses, maxMisses)
	}
	t.Logf("parse cache: %d hits, %d misses", hits, misses)
}

// TestCancellationStopsWithoutDeadlock pins the shutdown contract: a
// cancelled context closes the outcome stream promptly and never deadlocks
// the pool.
func TestCancellationStopsWithoutDeadlock(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// An endless case stream: cancellation is the only way to stop.
	cases := make(chan Case)
	go func() {
		defer close(cases)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case cases <- Case{Index: i, Src: fmt.Sprintf("print(%d);", i)}:
			}
		}
	}()

	s := New(Config{Testbeds: engines.Testbeds()[:8], Workers: 4, Seed: 1})
	outcomes := s.Run(ctx, cases)
	seen := 0
	for oc := range outcomes {
		if oc.Index != seen {
			t.Errorf("outcome %d has index %d", seen, oc.Index)
		}
		seen++
		if seen == 5 {
			cancel()
		}
	}
	if seen < 5 {
		t.Errorf("stream closed after %d outcomes, before cancellation", seen)
	}
	cancel()
}

// TestCancelledRunTerminates guards against scheduler goroutine leaks: a
// run cancelled immediately must still close its outcome channel.
func TestCancelledRunTerminates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Config{Testbeds: engines.Testbeds()[:4], Workers: 2, Seed: 1})
	outcomes := s.Run(ctx, FromSlice(ctx, testSrcs))
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-outcomes:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("outcome channel did not close after cancellation")
		}
	}
}
