package engines

import (
	"math"
	"strings"

	"comfort/internal/js/interp"
)

// nashorn seeds the 18 Nashorn defects (18/12/2/1). Nashorn ceased active
// maintenance in June 2020, which is why only 2 of its 12 verified bugs
// were ever fixed (the paper's Table 2 note).
func (b *catalogBuilder) nashorn() {
	// ---- v13.0.1: 4 verified, none fixed, all new ----
	b.add(&Defect{
		ID: "na-001", Engine: "Nashorn", AttrVersion: "v13.0.1",
		Component: CodeGen, APIType: "Object", API: "Object.defineProperty",
		Channel: ChannelGen, Verified: true, DevFixed: false, Test262: true, New: true,
		Note: "defineProperty accepts descriptors mixing value and accessor fields",
		Witness: `var o = {};
Object.defineProperty(o, "x", {value: 1, get: function() { return 2; }});
print(o.x);`,
		Hook: onAPI("Object.defineProperty", func(ctx *interp.HookCtx) bool {
			if len(ctx.Args) < 3 || !ctx.Args[2].IsObject() {
				return false
			}
			d := ctx.Args[2].Obj()
			return d.HasOwn("value") && (d.HasOwn("get") || d.HasOwn("set"))
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			if len(ctx.Args) > 0 && ctx.Args[0].IsObject() {
				ctx.Args[0].Obj().SetSlot("x", interp.Number(1), interp.DefaultAttr)
			}
			return ctx.Args[0]
		})),
	})
	b.add(&Defect{
		ID: "na-002", Engine: "Nashorn", AttrVersion: "v13.0.1",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.includes",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "includes uses strict equality for NaN (SameValueZero required)",
		Witness: `print([NaN].includes(NaN));`,
		Hook:    onAPI("Array.prototype.includes", argNaN(0), ret(interp.Bool(false))),
	})
	b.add(&Defect{
		ID: "na-003", Engine: "Nashorn", AttrVersion: "v13.0.1",
		Component: Implementation, APIType: "JSON", API: "JSON.parse",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "JSON.parse accepts single-quoted strings",
		Witness: `print(typeof JSON.parse("{'a': 1}"));`,
		Hook: onAPI("JSON.parse", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.Contains(ctx.Args[0].Str(), "'")
		}, func(ctx *interp.HookCtx) *interp.Override {
			return &interp.Override{Post: func(res interp.Value, err error) (interp.Value, error) {
				if _, isThrow := interp.IsThrow(err); isThrow {
					return interp.ObjValue(interp.NewObject(ctx.In.Protos["Object"])), nil
				}
				return res, err
			}}
		}),
	})
	b.add(&Defect{
		ID: "na-004", Engine: "Nashorn", AttrVersion: "v13.0.1",
		Component: RegexEngine, APIType: "RegExp", API: "RegExp.prototype.test",
		Channel: ChannelSpecData, Verified: true, DevFixed: false, New: true,
		Note:    "case-insensitive flag not applied inside character classes",
		Witness: `print(/[a-z]+/i.test("HELLO"));`,
		Hook: onRegex("RegExp.prototype.test", func(pattern, flags string) bool {
			return strings.Contains(flags, "i") && strings.Contains(pattern, "[")
		}, func(ctx *interp.HookCtx) *interp.Override {
			input := ""
			if len(ctx.Args) > 0 {
				input = ctx.Args[0].Str()
			}
			if input == strings.ToLower(input) {
				return nil // lower-case inputs match either way
			}
			return &interp.Override{Replace: true, Return: interp.Undefined()}
		}),
	})

	// ---- v12.0.1: 14 submitted (8 verified, 2 fixed, 6 unverified) ----
	b.add(&Defect{
		ID: "na-005", Engine: "Nashorn", AttrVersion: "v12.0.1", FixedIn: "v13.0.1",
		Component: CodeGen, APIType: "other", API: "parseFloat",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "parseFloat(\"Infinity\") returns NaN",
		Witness: `print(parseFloat("Infinity"));`,
		Hook: onAPI("parseFloat", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindString &&
				strings.HasPrefix(strings.TrimSpace(ctx.Args[0].Str()), "Inf")
		}, ret(interp.Number(math.NaN()))),
	})
	b.add(&Defect{
		ID: "na-006", Engine: "Nashorn", AttrVersion: "v12.0.1", FixedIn: "v13.0.1",
		Component: Implementation, APIType: "other", API: "Math.sign",
		Channel: ChannelSpecData, Verified: true, DevFixed: true, New: true,
		Note:    "Math.sign(-0) returns +0 instead of -0",
		Witness: `print(1 / Math.sign(-0));`,
		Hook: onAPI("Math.sign", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 0 && ctx.Args[0].Kind() == interp.KindNumber &&
				ctx.Args[0].Num() == 0 && math.Signbit(ctx.Args[0].Num())
		}, ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "na-007", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: CodeGen, APIType: "Object", API: "Object.assign",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note: "Object.assign also copies inherited properties",
		Witness: `var proto = {inherited: 1};
var src = Object.create(proto);
print(Object.assign({}, src).inherited);`,
		Hook: onAPI("Object.assign", func(ctx *interp.HookCtx) bool {
			for _, a := range ctx.Args[1:] {
				if a.IsObject() && a.Obj().Proto != nil && len(a.Obj().Proto.EnumerableKeys()) > 0 {
					return true
				}
			}
			return false
		}, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			if !res.IsObject() {
				return res
			}
			for _, a := range ctx.Args[1:] {
				if a.IsObject() && a.Obj().Proto != nil {
					for _, k := range a.Obj().Proto.EnumerableKeys() {
						if v, ok, _ := protoGet(ctx.In, a.Obj().Proto, k); ok {
							res.Obj().SetSlot(k, v, interp.DefaultAttr)
						}
					}
				}
			}
			return res
		})),
	})
	b.add(&Defect{
		ID: "na-008", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: CodeGen, APIType: "Array", API: "Array.prototype.indexOf",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "indexOf compares with loose equality",
		Witness: `print([1, 2, 3].indexOf("2"));`,
		Hook: onAPI("Array.prototype.indexOf", argString(0),
			retFn(func(ctx *interp.HookCtx) interp.Value {
				if !ctx.This.IsObject() || !ctx.This.Obj().IsArray() {
					return interp.Number(-1)
				}
				want := ctx.Args[0].Str()
				for i, e := range ctx.This.Obj().ArrayElems() {
					if e.Kind() == interp.KindNumber && interp.FormatNumber(e.Num()) == want {
						return interp.Number(float64(i))
					}
					if e.Kind() == interp.KindString && e.Str() == want {
						return interp.Number(float64(i))
					}
				}
				return interp.Number(-1)
			})),
	})
	b.add(&Defect{
		ID: "na-009", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: CodeGen, APIType: "other", API: "isFinite",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: false,
		Note:    "isFinite(Infinity) returns true",
		Witness: `print(isFinite(1 / 0));`,
		Hook:    onAPI("isFinite", argInf(0), ret(interp.Bool(true))),
	})
	b.add(&Defect{
		ID: "na-010", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "Object", API: "Object.getOwnPropertyDescriptor",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:    "getOwnPropertyDescriptor returns null instead of undefined for absent properties",
		Witness: `print(Object.getOwnPropertyDescriptor({}, "nope"));`,
		Hook: onAPI("Object.getOwnPropertyDescriptor", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && ctx.Args[0].IsObject() &&
				!ctx.Args[0].Obj().HasOwn(ctx.Args[1].Str())
		}, ret(interp.Null())),
	})
	b.add(&Defect{
		ID: "na-011", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "other", API: "parseInt",
		Channel: ChannelSpecData, Verified: true, DevFixed: false, New: true,
		Note:    "parseInt with radix 1 returns 0 instead of NaN",
		Witness: `print(parseInt("5", 1));`,
		Hook: onAPI("parseInt", argNumber(1, func(f float64) bool { return f == 1 }),
			ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "na-012", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: ParserComp, APIType: "other", API: "parser",
		Channel: ChannelGen, Verified: true, DevFixed: false, New: true,
		Note:     "parser rejects arrow functions with parenthesised parameter lists",
		Witness:  `var f = (a, b) => a + b; print(f(1, 2));`,
		PreParse: rejectSource(") =>", "expected an operand but found ="),
	})
	b.add(&Defect{
		ID: "na-013", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "TypedArray", API: "Float64Array.prototype.fill",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note: "Float64Array.fill rounds values through float32",
		Witness: `var f = new Float64Array(1);
f.fill(0.1);
print(f[0]);`,
		Hook: onAPI("Float64Array.prototype.fill", nil,
			mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
				if res.IsObject() && res.Obj().ElemKind == interp.ElemFloat64 {
					o := res.Obj()
					for i := 0; i < o.ArrayLen; i++ {
						o.TypedSet(i, float64(float32(o.TypedGet(i))))
					}
				}
				return res
			})),
	})
	b.add(&Defect{
		ID: "na-014", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "DataView", API: "DataView.prototype.getFloat32",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note: "getFloat32 ignores the littleEndian flag",
		Witness: `var b = new ArrayBuffer(4);
var dv = new DataView(b);
dv.setFloat32(0, 1.5, true);
print(dv.getFloat32(0, true));`,
		Hook: onAPI("DataView.prototype.getFloat32", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 && interp.ToBoolean(ctx.Args[1])
		}, retFn(func(ctx *interp.HookCtx) interp.Value {
			o := ctx.This.Obj()
			off := int(ctx.Args[0].Num())
			d := o.Buf.Data[o.ByteOff+off:]
			bits := uint32(d[3]) | uint32(d[2])<<8 | uint32(d[1])<<16 | uint32(d[0])<<24
			return interp.Number(float64(math.Float32frombits(bits)))
		})),
	})
	b.add(&Defect{
		ID: "na-015", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: CodeGen, APIType: "other", API: "Math.atan2",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Math.atan2(0, -0) returns 0 instead of PI",
		Witness: `print(Math.atan2(0, -0));`,
		Hook: onAPI("Math.atan2", func(ctx *interp.HookCtx) bool {
			return len(ctx.Args) > 1 &&
				ctx.Args[0].Kind() == interp.KindNumber && ctx.Args[0].Num() == 0 && !math.Signbit(ctx.Args[0].Num()) &&
				ctx.Args[1].Kind() == interp.KindNumber && ctx.Args[1].Num() == 0 && math.Signbit(ctx.Args[1].Num())
		}, ret(interp.Number(0))),
	})
	b.add(&Defect{
		ID: "na-016", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "other", API: "Date.now",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note:    "Date.now returns seconds instead of milliseconds",
		Witness: `print(Date.now() > 1e12);`,
		Hook: onAPI("Date.now", nil, mapResult(func(ctx *interp.HookCtx, res interp.Value) interp.Value {
			return interp.Number(math.Trunc(res.Num() / 1000))
		})),
	})
	b.add(&Defect{
		ID: "na-017", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: CodeGen, APIType: "other", API: "Function.prototype.call",
		Channel: ChannelGen, Verified: false, DevFixed: false, New: false,
		Note: "call() with no arguments binds this to a fresh object, not the global",
		Witness: `function f() { return this === globalThis; }
print(f.call());`,
		Hook: onAPI("Function.prototype.call", noArgs(), func(ctx *interp.HookCtx) *interp.Override {
			if !ctx.This.IsObject() || !ctx.This.Obj().IsCallable() {
				return nil
			}
			res, err := ctx.In.Call(ctx.This.Obj(),
				interp.ObjValue(interp.NewObject(ctx.In.Protos["Object"])), nil)
			return &interp.Override{Replace: true, Return: res, Err: err}
		}),
	})
	b.add(&Defect{
		ID: "na-018", Engine: "Nashorn", AttrVersion: "v12.0.1",
		Component: Implementation, APIType: "other", API: "isNaN",
		Channel: ChannelSpecData, Verified: false, DevFixed: false, New: false,
		Note:    "isNaN(undefined) returns false",
		Witness: `print(isNaN(undefined));`,
		Hook:    onAPI("isNaN", argUndef(0), ret(interp.Bool(false))),
	})
}

// protoGet reads an own property from a prototype object for the
// Object.assign defect.
func protoGet(in *interp.Interp, proto *interp.Object, key string) (interp.Value, bool, error) {
	p, ok := proto.GetOwnProperty(key)
	if !ok {
		return interp.Undefined(), false, nil
	}
	if p.Accessor {
		if p.Get == nil {
			return interp.Undefined(), true, nil
		}
		v, err := in.Call(p.Get, interp.ObjValue(proto), nil)
		return v, true, err
	}
	return p.Value, true, nil
}
