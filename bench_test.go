// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §3 maps each to its implementing modules). The harnesses print
// the regenerated rows once per benchmark so `go test -bench=.` doubles as
// the experiment runner; EXPERIMENTS.md records paper-vs-measured.
package comfort

import (
	"fmt"
	"sync"
	"testing"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/lm"

	"comfort/internal/corpus"
	"comfort/internal/js/lint"

	"math/rand"
)

// campaignOnce caches the headline campaign so the table benchmarks share
// one discovery run (the paper's tables all come from the same 200h run).
var (
	campaignOnce sync.Once
	campaignRes  *campaign.Result
)

func headlineCampaign() *campaign.Result {
	campaignOnce.Do(func() {
		campaignRes = campaign.Run(campaign.Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    1200,
			Seed:     2021,
		})
	})
	return campaignRes
}

// BenchmarkTable1EngineInventory regenerates the engine-version inventory.
func BenchmarkTable1EngineInventory(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table1()
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable2BugStatistics regenerates the per-engine bug statistics
// (ground truth exactly matches the paper; the "found" column is measured).
func BenchmarkTable2BugStatistics(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table2(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
	fmt.Printf("campaign: %d cases, %d testbed executions, %d found, %d dups filtered\n\n",
		res.CasesRun, res.Executed, len(res.Found), res.DuplicatesFiltered)
}

// BenchmarkTable3BugsPerVersion regenerates the per-version attribution.
func BenchmarkTable3BugsPerVersion(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table3(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable4BugCategories regenerates the discovery-channel breakdown.
func BenchmarkTable4BugCategories(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table4(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable5TopBuggyAPIs regenerates the API-type distribution.
func BenchmarkTable5TopBuggyAPIs(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table5(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure7ComponentBugs regenerates the per-component counts.
func BenchmarkFigure7ComponentBugs(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Figure7(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure8FuzzerComparison runs the six-fuzzer comparison with an
// equal test-case budget (the scaled 72-hour experiment).
func BenchmarkFigure8FuzzerComparison(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out, _ = campaign.Figure8(400, 2021)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure9QualityMetrics measures syntax passing rate plus
// statement/function/branch coverage per fuzzer.
func BenchmarkFigure9QualityMetrics(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out, _ = campaign.Figure9(150, 2021)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationLMOrder contrasts syntactic validity across context
// lengths (the §5.3.3 DeepSmith comparison as an ablation).
func BenchmarkAblationLMOrder(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var lines string
		for _, arch := range []lm.Arch{lm.ArchGPT2, lm.ArchLSTM} {
			g := lm.Train(corpus.Programs(), corpus.Headers(), lm.Config{Arch: arch})
			rng := rand.New(rand.NewSource(2021))
			valid := 0
			const n = 200
			for j := 0; j < n; j++ {
				if lint.Valid(g.Generate(rng)) {
					valid++
				}
			}
			lines += fmt.Sprintf("  %-6s validity: %d/%d (%.1f%%)\n", arch, valid, n,
				100*float64(valid)/n)
		}
		out = "Ablation: LM context order vs syntactic validity\n" + lines
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationSpecGuidance contrasts defect discovery with and without
// the ECMA-262-guided data channel (DESIGN.md §4).
func BenchmarkAblationSpecGuidance(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		withSpec := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 250, Seed: 7,
			Testbeds: engines.Testbeds(),
		})
		withoutSpec := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewDeepSmith(), Cases: 250, Seed: 7,
			Testbeds: engines.Testbeds(),
		})
		out = fmt.Sprintf(
			"Ablation: spec guidance — COMFORT found %d defects, generation-only found %d (250 cases each)\n",
			len(withSpec.Found), len(withoutSpec.Found))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationDedup measures the Figure-6 tree's filtering effect.
func BenchmarkAblationDedup(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		on := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 200, Seed: 5,
			Testbeds: engines.Testbeds(),
		})
		off := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 200, Seed: 5,
			Testbeds: engines.Testbeds(), DisableDedup: true,
		})
		out = fmt.Sprintf(
			"Ablation: dedup tree — filtered %d duplicate reports (found %d); without the tree: %d attribution runs for the same %d findings\n",
			on.DuplicatesFiltered, len(on.Found), off.UnattributedFindings+len(off.Found)+off.DuplicatesFiltered, len(off.Found))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationReduction measures witness shrinkage from the Section
// 3.5 reducer over the catalog's own witnesses.
func BenchmarkAblationReduction(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 150, Seed: 11,
			Testbeds:        engines.Testbeds(),
			ReduceWitnesses: true,
		})
		var before, after int
		for _, f := range res.Found {
			before += len(f.TestCase)
			after += len(f.Reduced)
		}
		if before == 0 {
			before = 1
		}
		out = fmt.Sprintf(
			"Ablation: reduction — %d findings, witness bytes %d → %d (%.0f%% of original)\n",
			len(res.Found), before, after, 100*float64(after)/float64(before))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkCampaignThroughput measures testbed executions per second on a
// full-testbed campaign — the scheduler's headline metric (EXPERIMENTS.md
// records the seed-path baseline against the prepared-testbed + parse-cache
// + behaviour-class pipeline).
func BenchmarkCampaignThroughput(b *testing.B) {
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    120,
			Seed:     2021,
			Workers:  8,
		})
		executed += int64(res.Executed)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}

// --- micro-benchmarks of the substrate ---

func BenchmarkInterpreterPipeline(b *testing.B) {
	src := corpus.Programs()[0]
	for i := 0; i < b.N; i++ {
		engines.Reference(src, false, engines.RunOptions{Fuel: 100000, Seed: 1})
	}
}

func BenchmarkGeneration(b *testing.B) {
	g := lm.Train(corpus.Programs(), corpus.Headers(), lm.Config{Arch: lm.ArchGPT2})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Generate(rng)
	}
}

func BenchmarkDifferentialCase(b *testing.B) {
	tbs := engines.LatestTestbeds()
	src := corpus.Programs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffTest(src, tbs, 100000, 1)
	}
}
