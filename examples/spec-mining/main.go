// spec-mining: the paper's Figure 1 → Figure 4 → Figure 2 walkthrough.
// Extract the substr rules from the ECMA-262-style document, generate
// boundary-condition test data for a substr-calling program, and show the
// Rhino conformance bug the data exposes.
package main

import (
	"encoding/json"
	"fmt"

	"comfort"
)

const program = `function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var pre = "Name: ";
var len = 6;
var name = foo(s, pre.length, len);
print(name);`

func main() {
	db := comfort.SpecDatabase()
	fmt.Printf("spec extraction: %.0f%% of clauses mined (paper: ~82%%)\n\n", 100*db.CoverageRate())

	// Figure 4(b): the substr rule in JSON form.
	rules, _ := db.Lookup("String.prototype.substr")
	out, err := json.MarshalIndent(map[string]interface{}{"String.prototype.substr": rules}, "", "  ")
	if err != nil {
		panic(err)
	}
	fmt.Printf("Figure 4(b) — extracted substr rules:\n%s\n\n", out)

	// Algorithm 1: mutate the program's test data.
	variants := comfort.MutateTestData(program, 10, 1)
	fmt.Printf("Algorithm 1 produced %d data variants\n", len(variants))

	// Differential-test the variants on Rhino v1.7.12 vs the reference.
	v, _ := findVersion("Rhino", "v1.7.12")
	tb := comfort.Testbed{Version: v}
	for _, src := range variants {
		buggy := comfort.RunTestbed(tb, src, 200000, 1)
		ref := comfort.RunReference(src, false, 200000, 1)
		if buggy.Key() != ref.Key() {
			fmt.Printf("\n=== Figure 2 reproduced: Rhino deviates ===\n%s\n", src)
			fmt.Printf("Rhino v1.7.12: %q\nreference:     %q\n", buggy.Output, ref.Output)
			return
		}
	}
	fmt.Println("no divergence found (unexpected)")
}

func findVersion(engine, version string) (comfort.Version, bool) {
	for _, e := range comfort.Engines() {
		if e.Name != engine {
			continue
		}
		for _, v := range e.Versions {
			if v.Name == version {
				return v, true
			}
		}
	}
	return comfort.Version{}, false
}
