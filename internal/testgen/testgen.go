// Package testgen implements Algorithm 1 of the paper: ECMA-262-guided
// test data generation. For every API call in a test program it looks up
// the specification database, associates arguments with their defining
// variable declarations by traversing the program's data flow, and emits
// mutated programs whose inputs probe the mined boundary conditions.
package testgen

import (
	"math/rand"

	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
	"comfort/internal/spec"
)

// MutationPoint is one (API, argument) site eligible for data mutation.
type MutationPoint struct {
	API      string // canonical spec key
	CallID   int    // node ID of the call expression
	ArgIndex int
	// DeclName is set when the argument is an identifier defined by a
	// variable declaration — the data-flow association of Algorithm 1
	// line 8; mutation then rewrites the declaration initialiser.
	DeclName string
	Values   []string
}

// FindMutationPoints parses src and locates every API call covered by the
// database.
func FindMutationPoints(src string, db *spec.DB) ([]MutationPoint, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	// Data-flow map: variable name → declared-by-var-decl.
	declared := map[string]bool{}
	ast.Walk(prog, func(n ast.Node) bool {
		if vd, ok := n.(*ast.VarDecl); ok {
			for _, d := range vd.Decls {
				declared[d.Name] = true
			}
		}
		return true
	})
	var points []MutationPoint
	ast.Walk(prog, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var key string
		var rules []spec.ParamRule
		switch callee := call.Callee.(type) {
		case *ast.MemberExpr:
			if callee.Computed {
				return true
			}
			key, rules, ok = db.LookupMethod(callee.Name)
		case *ast.Ident:
			rules, ok = db.Lookup(callee.Name)
			key = callee.Name
		default:
			return true
		}
		if !ok {
			return true
		}
		for i, rule := range rules {
			if len(rule.Values) == 0 {
				continue
			}
			mp := MutationPoint{API: key, CallID: call.ID(), ArgIndex: i, Values: rule.Values}
			if i < len(call.Args) {
				if id, isIdent := call.Args[i].(*ast.Ident); isIdent && declared[id.Name] {
					mp.DeclName = id.Name
				}
			}
			points = append(points, mp)
		}
		return true
	})
	return points, nil
}

// Variant is one mutated test case.
type Variant struct {
	Source string
	API    string
	Value  string
}

// Options bounds the mutation fan-out.
type Options struct {
	// MaxVariants caps the number of emitted test cases per program.
	MaxVariants int
	// RandomExtra adds this many random-value mutations per point on top of
	// the boundary values ("normal conditions" in Algorithm 1).
	RandomExtra int
}

// randomLiterals are the "normal condition" values of Algorithm 1.
var randomLiterals = []string{
	"42", "-7", "0.5", "1e6", `"fuzz"`, `"0"`, "true", "false", "[]", "{}",
	"null", `" "`, "255", "-0.0",
}

// Mutate implements Algorithm 1: it returns test-case variants of src with
// boundary-condition and random argument data.
func Mutate(src string, db *spec.DB, rng *rand.Rand, opts Options) []Variant {
	if opts.MaxVariants == 0 {
		opts.MaxVariants = 12
	}
	// Driver synthesis first: uncalled functions get Figure-2-style
	// harnesses whose parameter values carry the boundary probes.
	drivers := synthesizeDrivers(src, db, rng, opts.MaxVariants)
	points, err := FindMutationPoints(src, db)
	if err != nil || (len(points) == 0 && len(drivers) == 0) {
		return drivers
	}
	// Build the candidate set. Each argument's top-priority probe — the
	// condition-derived value that leads its Figure-4 list — is emitted
	// unconditionally; the remaining boundary and random values are sampled
	// without replacement under the variant budget.
	type cand struct {
		p   MutationPoint
		val string
	}
	var priority, rest []cand
	for _, p := range points {
		for i, val := range p.Values {
			if i == 0 {
				priority = append(priority, cand{p, val})
			} else {
				rest = append(rest, cand{p, val})
			}
		}
		for i := 0; i < opts.RandomExtra; i++ {
			rest = append(rest, cand{p, randomLiterals[rng.Intn(len(randomLiterals))]})
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	// Drivers and in-place mutations share the budget, drivers first: they
	// both exercise the API and make the function's result observable.
	out := drivers
	if len(out) > opts.MaxVariants/2+1 {
		out = out[:opts.MaxVariants/2+1]
	}
	for _, c := range append(priority, rest...) {
		if len(out) >= opts.MaxVariants {
			break
		}
		mutated, ok := applyMutation(src, c.p, c.val)
		if ok && mutated != src {
			out = append(out, Variant{Source: mutated, API: c.p.API, Value: c.val})
		}
	}
	return out
}

// applyMutation rewrites one argument (or its defining declaration) to the
// literal value and prints the program back to source.
func applyMutation(src string, p MutationPoint, value string) (string, bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", false
	}
	lit, err := parser.ParseExprString(value)
	if err != nil {
		return "", false
	}
	changed := false
	if p.DeclName != "" {
		// Rewrite the variable declaration initialiser (data-flow path).
		ast.Walk(prog, func(n ast.Node) bool {
			vd, ok := n.(*ast.VarDecl)
			if !ok || changed {
				return !changed
			}
			for i := range vd.Decls {
				if vd.Decls[i].Name == p.DeclName {
					vd.Decls[i].Init = lit
					changed = true
					return false
				}
			}
			return true
		})
	}
	if !changed {
		// Rewrite the call argument in place.
		ast.Walk(prog, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || changed {
				return !changed
			}
			if call.ID() == p.CallID {
				for len(call.Args) <= p.ArgIndex {
					pad, err := parser.ParseExprString("undefined")
					if err != nil {
						return false
					}
					call.Args = append(call.Args, pad)
				}
				call.Args[p.ArgIndex] = lit
				changed = true
				return false
			}
			return true
		})
	}
	if !changed {
		return "", false
	}
	printed := ast.Print(prog)
	if _, err := parser.Parse(printed); err != nil {
		return "", false
	}
	return printed, true
}
