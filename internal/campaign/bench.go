package campaign

import (
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
)

// ThroughputProbe runs the BenchmarkCampaignThroughput campaign shape — a
// COMFORT campaign over every testbed — and reports the number of testbed
// executions delivered. The root benchmark and cmd/benchgate both measure
// through this helper, so the regression gate can never drift from the
// benchmark it guards.
func ThroughputProbe(cases, workers int, seed int64) int {
	res := Run(Config{
		Fuzzer:   fuzzers.NewComfort(),
		Testbeds: engines.Testbeds(),
		Cases:    cases,
		Seed:     seed,
		Workers:  workers,
	})
	return res.Executed
}
