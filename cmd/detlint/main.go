// Command detlint checks the deterministic-critical packages of this
// repository for nondeterminism hazards: map-order iteration without a
// sort, wall-clock reads, and uses of the process-global math/rand source
// (see internal/analyzers/detlint). CI runs it over the default target set;
// a non-empty finding list is a build failure.
//
// Usage:
//
//	detlint                 # lint the default deterministic-critical set
//	detlint ./...           # same (the pattern is resolved to that set)
//	detlint internal/exec   # lint specific package directories
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"comfort/internal/analyzers/detlint"
)

// defaultTargets is the deterministic-critical package set: generation,
// scheduling, accounting, dedup and reduction — every stage whose output
// must be byte-identical across worker counts and runs.
var defaultTargets = []string{
	"internal/fuzzers",
	"internal/campaign",
	"internal/reduce",
	"internal/dedup",
	"internal/exec",
	"internal/faultinject",
	"internal/server",
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: detlint [package-dir ...]   (no args or ./... = default target set)")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(flag.Args()))
}

func run(args []string) int {
	root, modpath, err := detlint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 2
	}
	targets := args
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "./...") {
		targets = defaultTargets
	}
	l := detlint.NewLinter(root, modpath)
	bad := false
	for _, t := range targets {
		path, err := importPath(root, modpath, t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		findings, err := l.Lint(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 2
		}
		for _, f := range findings {
			bad = true
			fmt.Println(f)
		}
	}
	if bad {
		return 1
	}
	return 0
}

// importPath turns a target argument (an import path or a directory
// relative to the working directory or module root) into a module-internal
// import path.
func importPath(root, modpath, arg string) (string, error) {
	if arg == modpath || strings.HasPrefix(arg, modpath+"/") {
		return arg, nil
	}
	rel := filepath.ToSlash(strings.TrimPrefix(arg, "./"))
	if abs, err := filepath.Abs(arg); err == nil {
		if r, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(r, "..") {
			rel = filepath.ToSlash(r)
		}
	}
	if rel == "." || rel == "" {
		return "", fmt.Errorf("%q does not name a package in %s", arg, modpath)
	}
	return modpath + "/" + rel, nil
}
