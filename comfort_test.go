package comfort

import (
	"strings"
	"testing"
)

func TestPublicAPISurface(t *testing.T) {
	if len(Engines()) != 10 {
		t.Errorf("engines: %d", len(Engines()))
	}
	if len(Testbeds()) != 104 {
		t.Errorf("testbeds: %d", len(Testbeds()))
	}
	if len(Catalog()) != 158 {
		t.Errorf("catalog: %d", len(Catalog()))
	}
	if len(Fuzzers()) != 6 {
		t.Errorf("fuzzers: %d", len(Fuzzers()))
	}
	if SpecDatabase().CoverageRate() < 0.7 {
		t.Error("spec coverage too low")
	}
}

func TestRunReferenceAndTestbed(t *testing.T) {
	src := `print("Name: Albert".substr(6, undefined));`
	ref := RunReference(src, false, 100000, 1)
	if strings.TrimSpace(ref.Output) != "Albert" {
		t.Errorf("reference output: %q", ref.Output)
	}
	var rhino Testbed
	for _, e := range Engines() {
		if e.Name == "Rhino" {
			rhino = Testbed{Version: e.Latest()}
		}
	}
	buggy := RunTestbed(rhino, src, 100000, 1)
	if buggy.Key() == ref.Key() {
		t.Error("Rhino latest must exhibit the Figure-2 substr defect")
	}
}

func TestMutateTestDataPublic(t *testing.T) {
	variants := MutateTestData(`print("abcdef".substr(1, 2));`, 8, 1)
	if len(variants) == 0 {
		t.Fatal("no variants")
	}
}

func TestReduceTestCasePublic(t *testing.T) {
	src := "var noise = 1;\nprint(\"KEY\");\nvar more = 2;"
	out := ReduceTestCase(src, func(s string) bool { return strings.Contains(s, "KEY") })
	if strings.Contains(out, "noise") {
		t.Errorf("reduction kept noise: %s", out)
	}
}

func TestDiffTestPublic(t *testing.T) {
	var tbs []Testbed
	for _, e := range Engines() {
		tbs = append(tbs, Testbed{Version: e.Latest()})
	}
	cr := DiffTest(`print(1);`, tbs, 100000, 1)
	if cr.Verdict.IsBuggy() {
		t.Errorf("trivial program flagged buggy: %v", cr.Verdict)
	}
}
