// Command jsrun executes a JavaScript file on a named engine version (or
// the defect-free reference), printing the program output and outcome.
//
// Usage:
//
//	jsrun -engine Rhino -version v1.7.12 script.js
//	jsrun -strict script.js            # reference engine, strict mode
//	jsrun -list                        # list engine versions
package main

import (
	"flag"
	"fmt"
	"os"

	"comfort/internal/engines"
)

func main() {
	var (
		engine  = flag.String("engine", "", "engine family (empty = reference)")
		version = flag.String("version", "", "engine version or build")
		strict  = flag.Bool("strict", false, "run in strict mode")
		fuel    = flag.Int64("fuel", 2_000_000, "step budget")
		list    = flag.Bool("list", false, "list engine versions and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range engines.All() {
			for _, v := range e.Versions {
				fmt.Printf("%-14s %-12s %-12s (%d seeded defects)\n",
					e.Name, v.Name, v.Build, len(engines.ActiveDefects(v)))
			}
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: jsrun [-engine E -version V] [-strict] file.js")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := engines.RunOptions{Fuel: *fuel, Seed: 1}
	var res engines.ExecResult
	if *engine == "" {
		res = engines.Reference(string(src), *strict, opts)
	} else {
		v, ok := engines.FindVersion(*engine, *version)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown engine version %s/%s (try -list)\n", *engine, *version)
			os.Exit(1)
		}
		res = engines.Testbed{Version: v, Strict: *strict}.Run(string(src), opts)
	}
	fmt.Print(res.Output)
	if res.Outcome != engines.OutcomePass {
		fmt.Fprintf(os.Stderr, "[%s] %s\n", res.Outcome, res.Error)
		os.Exit(1)
	}
}
