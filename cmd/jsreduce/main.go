// Command jsreduce shrinks a bug-exposing test case while the divergence
// between an engine version and the reference persists (Section 3.5).
//
// Usage:
//
//	jsreduce -engine Rhino -version v1.7.12 testcase.js
package main

import (
	"flag"
	"fmt"
	"os"

	"comfort/internal/engines"
	"comfort/internal/reduce"
)

func main() {
	var (
		engine  = flag.String("engine", "", "engine family")
		version = flag.String("version", "", "engine version or build")
		strict  = flag.Bool("strict", false, "strict-mode testbed")
	)
	flag.Parse()
	if flag.NArg() != 1 || *engine == "" {
		fmt.Fprintln(os.Stderr, "usage: jsreduce -engine E -version V [-strict] file.js")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	v, ok := engines.FindVersion(*engine, *version)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine version %s/%s\n", *engine, *version)
		os.Exit(1)
	}
	tb := engines.Testbed{Version: v, Strict: *strict}
	opts := engines.RunOptions{Fuel: 500000, Seed: 1}
	diverges := func(candidate string) bool {
		return tb.Run(candidate, opts).Key() != engines.Reference(candidate, *strict, opts).Key()
	}
	if !diverges(string(src)) {
		fmt.Fprintln(os.Stderr, "input does not diverge from the reference on that testbed")
		os.Exit(1)
	}
	reduced := reduce.Reduce(string(src), diverges)
	fmt.Println(reduced)
	fmt.Fprintf(os.Stderr, "reduced %d bytes -> %d bytes\n", len(src), len(reduced))
}
