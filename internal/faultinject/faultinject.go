// Package faultinject is the deterministic fault-injection harness behind
// the campaign robustness layer's oracle tests and CI soak runs. A Plan is
// a pure function of its seed: whether case i receives an injected
// evaluator panic, an injected wall-clock hang, or nothing — and which
// behaviour class the fault lands on — is derived from (seed, i) alone by
// splitmix64 mixing, never from wall-clock time, map order or scheduling.
// The same spec therefore injects the same faults at every worker count,
// shard count and checkpoint resume, which is what lets the oracle tests
// assert byte-identical findings across a killed-and-resumed campaign and
// an uninterrupted one.
//
// Three fault kinds cover the three robustness layers:
//
//   - FaultPanic: the execution panics inside the evaluator's guarded
//     region (engines.RunOptions.InjectPanic), proving the recover() layer
//     converts panics into classified crash findings.
//   - FaultSlow: the execution's watchdog fires deterministically after a
//     fixed number of probes (CountdownWatchdog), proving the wall-clock
//     deadline path classifies hung cases instead of hanging a worker.
//   - checkpoint kills (KillAtCheckpoint): the campaign dies immediately
//     after its n-th checkpoint write, proving atomic checkpoints resume
//     byte-identically from every kill point.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Fault is the per-case fault kind.
type Fault int

// Per-case faults.
const (
	FaultNone Fault = iota
	// FaultPanic injects an evaluator panic into one behaviour class of
	// the case.
	FaultPanic
	// FaultSlow arms a deterministic watchdog on one behaviour class of
	// the case, simulating a wall-clock hang.
	FaultSlow
)

func (f Fault) String() string {
	switch f {
	case FaultPanic:
		return "panic"
	case FaultSlow:
		return "slow"
	default:
		return "none"
	}
}

// Config parameterises a fault plan. The zero value injects nothing.
type Config struct {
	// Seed drives every per-case decision; plans with equal configs are
	// identical functions.
	Seed int64
	// PanicEvery injects an evaluator panic into roughly 1-in-N cases
	// (exactly: cases whose derived hash ≡ 0 mod N). 0 disables.
	PanicEvery int
	// SlowEvery injects a wall-clock hang into roughly 1-in-N cases
	// (panic wins when both would fire). 0 disables.
	SlowEvery int
	// SlowProbes is the number of watchdog probes an injected hang
	// survives before the watchdog fires; <=0 means 2. Probes happen every
	// interp.WatchdogStride fuel steps, so the abort point — and with it
	// the partial output and fuel reading — is fuel-deterministic.
	SlowProbes int
	// KillAtCheckpoints lists 1-based checkpoint-write ordinals after
	// which the campaign is killed (the kill-at-every-checkpoint resume
	// test iterates this over every ordinal). Empty disables.
	KillAtCheckpoints []int
}

// Plan is a prepared fault plan. A nil *Plan is the no-fault plan: every
// method treats it as "inject nothing", so pipeline code may call through
// unconditionally.
type Plan struct {
	cfg Config
	// Kill, when non-nil, is invoked in place of the default in-process
	// abort when a checkpoint kill fires — cmd/comfort installs a hard
	// os.Exit here so the CI soak run dies exactly as a real crash would.
	Kill func()
}

// New prepares a plan from a config.
func New(cfg Config) *Plan {
	if cfg.SlowProbes <= 0 {
		cfg.SlowProbes = 2
	}
	return &Plan{cfg: cfg}
}

// Fingerprint canonically renders the plan's finding-relevant parameters
// for campaign config fingerprints. Kill points are excluded: they decide
// where a run stops, never what it finds, so a resume may retarget them
// (the kill-at-every-checkpoint oracle depends on exactly that).
func (p *Plan) Fingerprint() string {
	if p == nil || (p.cfg.PanicEvery == 0 && p.cfg.SlowEvery == 0) {
		return "none"
	}
	return fmt.Sprintf("seed=%d,panic=%d,slow=%d,probes=%d",
		p.cfg.Seed, p.cfg.PanicEvery, p.cfg.SlowEvery, p.cfg.SlowProbes)
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.cfg.PanicEvery > 0 || p.cfg.SlowEvery > 0 || len(p.cfg.KillAtCheckpoints) > 0)
}

// mix is one splitmix64 round over (seed, lane): uncorrelated streams for
// consecutive lanes, dependent on nothing but the inputs.
func mix(seed int64, lane uint64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(lane+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CaseFault decides the fault for case index: the kind, and a selector the
// scheduler reduces modulo its behaviour-class count to pick the single
// class the fault lands on (so the faulted class deviates from the healthy
// majority and the fault surfaces as a finding, not a uniform behaviour).
func (p *Plan) CaseFault(index int) (Fault, uint64) {
	if p == nil {
		return FaultNone, 0
	}
	lane := uint64(index) * 3
	if p.cfg.PanicEvery > 0 && mix(p.cfg.Seed, lane)%uint64(p.cfg.PanicEvery) == 0 {
		return FaultPanic, mix(p.cfg.Seed, lane+2)
	}
	if p.cfg.SlowEvery > 0 && mix(p.cfg.Seed, lane+1)%uint64(p.cfg.SlowEvery) == 0 {
		return FaultSlow, mix(p.cfg.Seed, lane+2)
	}
	return FaultNone, 0
}

// SlowProbes returns the armed watchdog's probe budget for injected hangs.
func (p *Plan) SlowProbes() int {
	if p == nil {
		return 0
	}
	return p.cfg.SlowProbes
}

// KillAtCheckpoint reports whether the campaign should die right after
// its n-th (1-based) checkpoint write.
func (p *Plan) KillAtCheckpoint(n int) bool {
	if p == nil {
		return false
	}
	for _, k := range p.cfg.KillAtCheckpoints {
		if k == n {
			return true
		}
	}
	return false
}

// CountdownWatchdog returns a watchdog probe that fires (returns true) on
// the n-th call and every call after it — the deterministic stand-in for
// a wall-clock deadline closure. Each physical run arms its own instance.
func CountdownWatchdog(n int) func() bool {
	remaining := n
	return func() bool {
		remaining--
		return remaining < 0
	}
}

// Parse decodes a fault spec string of comma-separated key=value pairs:
//
//	seed=7,panic=100,slow=150,probes=3,kill=2+5
//
// panic/slow are the 1-in-N case rates, probes the injected hang's
// watchdog budget, kill a '+'-separated list of checkpoint ordinals.
func Parse(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: %q is not key=value", kv)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: seed: %v", err)
			}
			cfg.Seed = n
		case "panic", "slow", "probes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return cfg, fmt.Errorf("faultinject: %s: want a non-negative int, got %q", key, val)
			}
			switch key {
			case "panic":
				cfg.PanicEvery = n
			case "slow":
				cfg.SlowEvery = n
			case "probes":
				cfg.SlowProbes = n
			}
		case "kill":
			for _, part := range strings.Split(val, "+") {
				n, err := strconv.Atoi(part)
				if err != nil || n < 1 {
					return cfg, fmt.Errorf("faultinject: kill: want 1-based checkpoint ordinals, got %q", val)
				}
				cfg.KillAtCheckpoints = append(cfg.KillAtCheckpoints, n)
			}
			sort.Ints(cfg.KillAtCheckpoints)
		default:
			return cfg, fmt.Errorf("faultinject: unknown key %q (want seed/panic/slow/probes/kill)", key)
		}
	}
	return cfg, nil
}
