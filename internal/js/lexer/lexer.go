// Package lexer implements the scanner for the JavaScript subset. It
// produces token.Token values, tracks line terminators for automatic
// semicolon insertion, and disambiguates regular-expression literals from
// division operators using the previous-token heuristic.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"comfort/internal/js/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("SyntaxError: %s at %s", e.Msg, e.Pos) }

// Lexer scans a source string into tokens.
type Lexer struct {
	src     string
	off     int // byte offset of next rune
	line    int
	lineOff int // offset of start of current line
	prev    token.Type
	sawNL   bool
	errs    []*Error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

func (l *Lexer) pos() token.Pos {
	return token.Pos{Offset: l.off, Line: l.line, Col: l.off - l.lineOff + 1}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...interface{}) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.lineOff = l.off
	}
	return c
}

// skipSpace consumes whitespace and comments, recording line terminators.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			l.off++
		case c == '\n':
			l.sawNL = true
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.off++
			}
		case c == '/' && l.peekAt(1) == '*':
			l.off += 2
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.off += 2
					closed = true
					break
				}
				if l.peek() == '\n' {
					l.sawNL = true
				}
				l.advance()
			}
			if !closed {
				l.errorf(l.pos(), "unterminated block comment")
				return
			}
		case c >= 0x80:
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			if unicode.IsSpace(r) {
				if r == 0x2028 || r == 0x2029 {
					l.sawNL = true
				}
				l.off += size
				continue
			}
			return
		default:
			return
		}
	}
}

// regexAllowed reports whether a '/' at the current point begins a regex
// literal rather than a division operator, based on the preceding token.
func (l *Lexer) regexAllowed() bool {
	switch l.prev {
	case token.IDENT, token.NUMBER, token.STRING, token.TEMPLATE, token.REGEX,
		token.RPAREN, token.RBRACK, token.THIS, token.TRUE, token.FALSE,
		token.NULL, token.INC, token.DEC:
		return false
	default:
		// After '}' the grammar is ambiguous (block vs object literal).
		// Treating '/' as a regex start there matches statement-level use;
		// dividing an object-literal expression statement is invalid anyway.
		return true
	}
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.sawNL = false
	l.skipSpace()
	start := l.pos()
	tok := token.Token{Pos: start, NewlineBefore: l.sawNL}
	if l.off >= len(l.src) {
		tok.Type = token.EOF
		l.prev = token.EOF
		return tok
	}
	c := l.peek()
	switch {
	case c >= 0x80:
		// Non-ASCII: identifier when the decoded rune qualifies, otherwise
		// an error token (consuming the rune so scanning always advances).
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if isIdentStart(r) {
			tok.Type, tok.Literal = l.scanIdent()
		} else {
			l.off += size
			l.errorf(start, "unexpected character %q", r)
			tok.Type, tok.Literal = token.ILLEGAL, string(r)
		}
	case isIdentStart(rune(c)):
		tok.Type, tok.Literal = l.scanIdent()
	case c >= '0' && c <= '9':
		tok.Type, tok.Literal = l.scanNumber()
	case c == '.' && isDigit(l.peekAt(1)):
		tok.Type, tok.Literal = l.scanNumber()
	case c == '"' || c == '\'':
		tok.Type, tok.Literal = l.scanString(c)
	case c == '`':
		tok.Type, tok.Literal = l.scanTemplate()
	case c == '/' && l.regexAllowed():
		tok.Type, tok.Literal = l.scanRegex()
	default:
		tok.Type, tok.Literal = l.scanPunct()
	}
	l.prev = tok.Type
	return tok
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) scanIdent() (token.Type, string) {
	start := l.off
	for l.off < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentPart(r) {
			break
		}
		l.off += size
	}
	lit := l.src[start:l.off]
	return token.Lookup(lit), lit
}

func (l *Lexer) scanNumber() (token.Type, string) {
	start := l.off
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.off += 2
		for isHex(l.peek()) {
			l.off++
		}
		return token.NUMBER, l.src[start:l.off]
	}
	if l.peek() == '0' && (l.peekAt(1) == 'b' || l.peekAt(1) == 'B') {
		l.off += 2
		for l.peek() == '0' || l.peek() == '1' {
			l.off++
		}
		return token.NUMBER, l.src[start:l.off]
	}
	if l.peek() == '0' && (l.peekAt(1) == 'o' || l.peekAt(1) == 'O') {
		l.off += 2
		for l.peek() >= '0' && l.peek() <= '7' {
			l.off++
		}
		return token.NUMBER, l.src[start:l.off]
	}
	for isDigit(l.peek()) {
		l.off++
	}
	if l.peek() == '.' {
		l.off++
		for isDigit(l.peek()) {
			l.off++
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.off++
		if l.peek() == '+' || l.peek() == '-' {
			l.off++
		}
		if isDigit(l.peek()) {
			for isDigit(l.peek()) {
				l.off++
			}
		} else {
			l.off = save
		}
	}
	return token.NUMBER, l.src[start:l.off]
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// scanString scans a quoted string and returns its *cooked* value.
func (l *Lexer) scanString(quote byte) (token.Type, string) {
	pos := l.pos()
	l.off++ // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			l.errorf(pos, "unterminated string literal")
			return token.ILLEGAL, b.String()
		}
		c := l.peek()
		if c == quote {
			l.off++
			return token.STRING, b.String()
		}
		if c == '\n' {
			l.errorf(pos, "unterminated string literal")
			return token.ILLEGAL, b.String()
		}
		if c == '\\' {
			l.off++
			l.scanEscape(&b, pos)
			continue
		}
		if c >= 0x80 {
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			b.WriteRune(r)
			l.off += size
			continue
		}
		b.WriteByte(c)
		l.off++
	}
}

func (l *Lexer) scanEscape(b *strings.Builder, pos token.Pos) {
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated escape sequence")
		return
	}
	c := l.advance()
	switch c {
	case 'n':
		b.WriteByte('\n')
	case 't':
		b.WriteByte('\t')
	case 'r':
		b.WriteByte('\r')
	case 'b':
		b.WriteByte('\b')
	case 'f':
		b.WriteByte('\f')
	case 'v':
		b.WriteByte('\v')
	case '0':
		if !isDigit(l.peek()) {
			b.WriteByte(0)
		} else {
			b.WriteByte('0') // legacy octal: approximate
		}
	case 'x':
		if isHex(l.peek()) && isHex(l.peekAt(1)) {
			v := hexVal(l.advance())<<4 | hexVal(l.advance())
			b.WriteRune(rune(v))
		} else {
			l.errorf(pos, "invalid hexadecimal escape sequence")
		}
	case 'u':
		if l.peek() == '{' {
			l.off++
			v := 0
			for isHex(l.peek()) {
				v = v<<4 | hexVal(l.advance())
			}
			if l.peek() == '}' {
				l.off++
				b.WriteRune(rune(v))
			} else {
				l.errorf(pos, "invalid Unicode escape sequence")
			}
		} else if isHex(l.peek()) && isHex(l.peekAt(1)) && isHex(l.peekAt(2)) && isHex(l.peekAt(3)) {
			v := 0
			for i := 0; i < 4; i++ {
				v = v<<4 | hexVal(l.advance())
			}
			b.WriteRune(rune(v))
		} else {
			l.errorf(pos, "invalid Unicode escape sequence")
		}
	case '\n':
		// line continuation: contributes nothing
	case '\r':
		if l.peek() == '\n' {
			l.advance()
		}
	default:
		b.WriteByte(c)
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// scanTemplate scans a template literal and returns the raw body (without
// the backticks). The parser splits substitutions out of the raw body.
func (l *Lexer) scanTemplate() (token.Type, string) {
	pos := l.pos()
	l.off++ // opening backtick
	start := l.off
	depth := 0
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\\' {
			l.off++
			if l.off < len(l.src) {
				l.off++
			}
			continue
		}
		if c == '`' && depth == 0 {
			body := l.src[start:l.off]
			l.off++
			return token.TEMPLATE, body
		}
		if c == '$' && l.peekAt(1) == '{' {
			depth++
			l.off += 2
			continue
		}
		if c == '}' && depth > 0 {
			depth--
			l.off++
			continue
		}
		l.advance()
	}
	l.errorf(pos, "unterminated template literal")
	return token.ILLEGAL, l.src[start:l.off]
}

// scanRegex scans a regular-expression literal including flags; the literal
// is returned verbatim, e.g. "/ab+c/gi".
func (l *Lexer) scanRegex() (token.Type, string) {
	pos := l.pos()
	start := l.off
	l.off++ // opening slash
	inClass := false
	for {
		if l.off >= len(l.src) || l.peek() == '\n' {
			l.errorf(pos, "unterminated regular expression literal")
			return token.ILLEGAL, l.src[start:l.off]
		}
		c := l.advance()
		if c == '\\' {
			if l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if c == '[' {
			inClass = true
		} else if c == ']' {
			inClass = false
		} else if c == '/' && !inClass {
			break
		}
	}
	for l.off < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentPart(r) {
			break
		}
		l.off += size
	}
	return token.REGEX, l.src[start:l.off]
}

func (l *Lexer) scanPunct() (token.Type, string) {
	// Longest-match over the punctuator table.
	three := l.slice(3)
	four := l.slice(4)
	if four == ">>>=" {
		l.off += 4
		return token.USHRASSIGN, four
	}
	switch three {
	case "...":
		l.off += 3
		return token.ELLIPSIS, three
	case "===":
		l.off += 3
		return token.STRICTEQ, three
	case "!==":
		l.off += 3
		return token.STRICTNE, three
	case "**=":
		l.off += 3
		return token.POWASSIGN, three
	case "<<=":
		l.off += 3
		return token.SHLASSIGN, three
	case ">>=":
		l.off += 3
		return token.SHRASSIGN, three
	case ">>>":
		l.off += 3
		return token.USHR, three
	case "&&=":
		l.off += 3
		return token.LOGANDASSIGN, three
	case "||=":
		l.off += 3
		return token.LOGORASSIGN, three
	case "??=":
		l.off += 3
		return token.NULLISHASSIGN, three
	}
	two := l.slice(2)
	if t, ok := twoCharPunct[two]; ok {
		l.off += 2
		return t, two
	}
	one := l.slice(1)
	if t, ok := oneCharPunct[one]; ok {
		l.off++
		return t, one
	}
	pos := l.pos()
	r, size := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += size
	l.errorf(pos, "unexpected character %q", r)
	return token.ILLEGAL, string(r)
}

func (l *Lexer) slice(n int) string {
	if l.off+n <= len(l.src) {
		return l.src[l.off : l.off+n]
	}
	return ""
}

var twoCharPunct = map[string]token.Type{
	"=>": token.ARROW, "==": token.EQ, "!=": token.NEQ, "<=": token.LE,
	">=": token.GE, "+=": token.PLUSASSIGN, "-=": token.MINUSASSIGN,
	"*=": token.STARASSIGN, "/=": token.SLASHASSIGN, "%=": token.PERCENTASSIGN,
	"&=": token.ANDASSIGN, "|=": token.ORASSIGN, "^=": token.XORASSIGN,
	"**": token.POW, "++": token.INC, "--": token.DEC, "<<": token.SHL,
	">>": token.SHR, "&&": token.LOGAND, "||": token.LOGOR, "??": token.NULLISH,
}

var oneCharPunct = map[string]token.Type{
	"(": token.LPAREN, ")": token.RPAREN, "[": token.LBRACK, "]": token.RBRACK,
	"{": token.LBRACE, "}": token.RBRACE, ";": token.SEMI, ",": token.COMMA,
	".": token.DOT, "?": token.QUESTION, ":": token.COLON, "=": token.ASSIGN,
	"<": token.LT, ">": token.GT, "+": token.PLUS, "-": token.MINUS,
	"*": token.STAR, "/": token.SLASH, "%": token.PERCENT, "&": token.AND,
	"|": token.OR, "^": token.XOR, "!": token.NOT, "~": token.BNOT,
}
