package analyze

import (
	"fmt"

	"comfort/internal/js/ast"
	"comfort/internal/js/token"
)

// The early-error pass implements the spec's static semantics for the
// rules the parser itself does not enforce, using a lexical scope model:
//
//   - duplicate lexical declarations: a let/const name may not collide
//     with another lexical binding, a parameter, or a var declared
//     anywhere in the same scope's subtree (vars hoist through blocks,
//     so `let a; { var a; }` is as invalid as `let a; let a;`)
//   - label static semantics: break/continue to an undeclared label,
//     continue to a label that does not denote an iteration statement,
//     and duplicate nested labels
//   - assignment to a const binding (including ++/--, compound assigns
//     and for-in targets) — enforced ahead of execution as a
//     SyntaxError; DESIGN.md documents this deliberate strengthening of
//     the spec's runtime TypeError
//   - return outside a function and unlabeled break/continue outside a
//     loop (defensive: the parser already rejects these forms)
//
// Rules the parser owns stay out: duplicate parameters and strict
// delete-of-variable are parse errors gated by defect parser options
// (AllowDuplicateParams and friends), and re-checking them here would
// mask exactly the seeded parser defects the campaign exists to find.
//
// The pass is deliberately conservative where our engines' dynamic
// semantics are forgiving: const-assignment is only reported when the
// const declaration precedes the write in the traversal (so a write
// resolving to the global object never misfires), var and function
// names are pre-hoisted into their function scope so writes that target
// a hoisted local are never misattributed to an outer const, and
// programs that call eval() skip const checks on program-level bindings
// (eval can only touch the global environment in this subset).

// escope is one lexical scope in the early-error pass.
type escope struct {
	parent *escope
	fn     bool // function or program scope: hoisted vars land here
	prog   bool // the program (global) scope
	lex    map[string]ast.VarKind
	params map[string]bool // function parameters / catch parameter
	vars   map[string]bool // var-declared names known to cross this scope
}

func newScope(parent *escope, fn bool) *escope {
	return &escope{parent: parent, fn: fn, lex: map[string]ast.VarKind{}}
}

// labelEntry is one active label between a function boundary and the
// statement under analysis.
type labelEntry struct {
	name string
	iter bool // labels an iteration statement (continue target)
}

// early carries the traversal state of the early-error pass.
type early struct {
	r        *Report
	evalUsed bool // program references eval: relax global const checks

	labels    []labelEntry
	loopDepth int
	swDepth   int
	fnDepth   int
}

// earlyErrors runs the static-semantics pass over prog, appending
// violations to r.EarlyErrors in source order. scanProgram must have run
// first (the eval relaxation reads the feature bits).
func earlyErrors(prog *ast.Program, r *Report) {
	a := &early{r: r, evalUsed: r.Features&FeatEval != 0}
	global := newScope(nil, true)
	global.prog = true
	prehoist(prog.Body, global)
	for _, s := range prog.Body {
		a.stmt(s, global)
	}
}

func (a *early) errorf(kind string, pos token.Pos, format string, args ...any) {
	a.r.EarlyErrors = append(a.r.EarlyErrors, EarlyError{
		Kind: kind,
		Msg:  fmt.Sprintf(format, args...),
		Pos:  pos,
	})
}

// prehoist seeds sc.vars with every var and function-declaration name in
// the statement subtree, stopping at nested function boundaries — the
// static image of the interpreter's hoisting pass. Seeding before the
// textual walk keeps name resolution faithful to hoisting (a write
// ahead of `var x` targets the local x, not an outer const x) and makes
// the lexical-vs-var clash check order-independent at function level.
func prehoist(body []ast.Stmt, sc *escope) {
	if sc.vars == nil {
		sc.vars = map[string]bool{}
	}
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch v := s.(type) {
		case *ast.VarDecl:
			if v.Kind == ast.Var {
				for _, d := range v.Decls {
					sc.vars[d.Name] = true
				}
			}
		case *ast.FuncDecl:
			if v.Fn.Name != "" {
				sc.vars[v.Fn.Name] = true
			}
		case *ast.BlockStmt:
			for _, c := range v.Body {
				walk(c)
			}
		case *ast.IfStmt:
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *ast.ForStmt:
			if vd, ok := v.Init.(*ast.VarDecl); ok && vd.Kind == ast.Var {
				for _, d := range vd.Decls {
					sc.vars[d.Name] = true
				}
			}
			walk(v.Body)
		case *ast.ForInStmt:
			if v.Decl == ast.Var {
				sc.vars[v.Name] = true
			}
			walk(v.Body)
		case *ast.WhileStmt:
			walk(v.Body)
		case *ast.DoWhileStmt:
			walk(v.Body)
		case *ast.SwitchStmt:
			for _, c := range v.Cases {
				for _, cs := range c.Body {
					walk(cs)
				}
			}
		case *ast.TryStmt:
			if v.Block != nil {
				walk(v.Block)
			}
			if v.Catch != nil {
				walk(v.Catch)
			}
			if v.Finally != nil {
				walk(v.Finally)
			}
		case *ast.LabeledStmt:
			walk(v.Body)
		}
	}
	for _, s := range body {
		walk(s)
	}
}

// lexDeclare records a let/const binding in sc, reporting the clash
// rules: duplicate lexical names, parameter collisions, and var names
// crossing the same scope.
func (a *early) lexDeclare(name string, kind ast.VarKind, sc *escope, pos token.Pos) {
	if _, dup := sc.lex[name]; dup || sc.vars[name] || sc.params[name] {
		a.errorf("dup-decl", pos, "Identifier %q has already been declared", name)
		return
	}
	if lookup(sc.parent, name) != nil {
		a.r.Features |= FeatShadowing
	}
	sc.lex[name] = kind
}

// varDeclare records a var binding: the name is checked against every
// lexical scope it hoists through (up to and including the function
// scope) and recorded at each level so later lexical declarations in
// those scopes see it.
func (a *early) varDeclare(name string, sc *escope, pos token.Pos) {
	for s := sc; s != nil; s = s.parent {
		if _, clash := s.lex[name]; clash {
			a.errorf("dup-decl", pos, "Identifier %q has already been declared", name)
			return
		}
		if s.vars == nil {
			s.vars = map[string]bool{}
		}
		s.vars[name] = true
		if s.fn {
			break
		}
	}
}

// lookup finds the nearest scope binding name, or nil.
func lookup(sc *escope, name string) *escope {
	for s := sc; s != nil; s = s.parent {
		if _, ok := s.lex[name]; ok {
			return s
		}
		if s.params[name] || s.vars[name] {
			return s
		}
	}
	return nil
}

// checkWrite reports a const-assignment early error when name resolves
// to a const binding already in scope.
func (a *early) checkWrite(name string, sc *escope, pos token.Pos) {
	s := lookup(sc, name)
	if s == nil {
		return // unresolved: a plain global-object write
	}
	if kind, ok := s.lex[name]; ok && kind == ast.Const {
		if s.prog && a.evalUsed {
			return // eval may rebind global names; stay conservative
		}
		a.errorf("const-assign", pos, "Assignment to constant variable %q", name)
	}
}

// findLabel returns the active label entry for name, or nil.
func (a *early) findLabel(name string) *labelEntry {
	for i := range a.labels {
		if a.labels[i].name == name {
			return &a.labels[i]
		}
	}
	return nil
}

// stmt analyzes one statement in scope sc.
func (a *early) stmt(s ast.Stmt, sc *escope) {
	switch v := s.(type) {
	case *ast.VarDecl:
		for i := range v.Decls {
			d := &v.Decls[i]
			if d.Init != nil {
				a.expr(d.Init, sc)
			}
			switch v.Kind {
			case ast.Let, ast.Const:
				a.lexDeclare(d.Name, v.Kind, sc, v.Pos())
			default:
				a.varDeclare(d.Name, sc, v.Pos())
			}
		}
	case *ast.FuncDecl:
		// The name itself was pre-hoisted as a var-like binding.
		a.function(v.Fn, sc)
	case *ast.ExprStmt:
		a.expr(v.X, sc)
	case *ast.BlockStmt:
		inner := newScope(sc, false)
		for _, c := range v.Body {
			a.stmt(c, inner)
		}
	case *ast.IfStmt:
		a.expr(v.Cond, sc)
		a.stmt(v.Then, sc)
		if v.Else != nil {
			a.stmt(v.Else, sc)
		}
	case *ast.ForStmt:
		head := sc
		switch init := v.Init.(type) {
		case *ast.VarDecl:
			if init.Kind != ast.Var {
				head = newScope(sc, false)
			}
			a.stmt(init, head)
		case ast.Expr:
			a.expr(init, sc)
		}
		if v.Cond != nil {
			a.expr(v.Cond, head)
		}
		if v.Post != nil {
			a.expr(v.Post, head)
		}
		a.loop(v.Body, head)
	case *ast.ForInStmt:
		a.expr(v.Obj, sc)
		head := sc
		switch v.Decl {
		case ast.Let, ast.Const:
			head = newScope(sc, false)
			a.lexDeclare(v.Name, v.Decl, head, v.Pos())
		case ast.Var:
			a.varDeclare(v.Name, sc, v.Pos())
		default: // plain-name target: an assignment per iteration
			a.checkWrite(v.Name, sc, v.Pos())
		}
		a.loop(v.Body, head)
	case *ast.WhileStmt:
		a.expr(v.Cond, sc)
		a.loop(v.Body, sc)
	case *ast.DoWhileStmt:
		a.loop(v.Body, sc)
		a.expr(v.Cond, sc)
	case *ast.SwitchStmt:
		a.expr(v.Disc, sc)
		inner := newScope(sc, false) // all case bodies share one scope
		a.swDepth++
		for _, c := range v.Cases {
			if c.Test != nil {
				a.expr(c.Test, inner)
			}
			for _, cs := range c.Body {
				a.stmt(cs, inner)
			}
		}
		a.swDepth--
	case *ast.BreakStmt:
		if v.Label == "" {
			if a.loopDepth == 0 && a.swDepth == 0 {
				a.errorf("bad-break", v.Pos(), "Illegal break statement")
			}
		} else if a.findLabel(v.Label) == nil {
			a.errorf("undefined-label", v.Pos(), "Undefined label %q", v.Label)
		}
	case *ast.ContinueStmt:
		if v.Label == "" {
			if a.loopDepth == 0 {
				a.errorf("bad-continue", v.Pos(), "Illegal continue statement")
			}
		} else if e := a.findLabel(v.Label); e == nil {
			a.errorf("undefined-label", v.Pos(), "Undefined label %q", v.Label)
		} else if !e.iter {
			a.errorf("continue-not-loop", v.Pos(),
				"Illegal continue statement: %q does not denote an iteration statement", v.Label)
		}
	case *ast.ReturnStmt:
		if a.fnDepth == 0 {
			a.errorf("bad-return", v.Pos(), "Illegal return statement")
		}
		if v.X != nil {
			a.expr(v.X, sc)
		}
	case *ast.ThrowStmt:
		a.expr(v.X, sc)
	case *ast.TryStmt:
		if v.Block != nil {
			a.stmt(v.Block, sc)
		}
		if v.Catch != nil {
			// The catch parameter and the catch body's lexical bindings
			// share one scope: `catch (e) { let e; }` is a clash.
			cs := newScope(sc, false)
			if v.CatchParam != "" {
				cs.params = map[string]bool{v.CatchParam: true}
			}
			for _, c := range v.Catch.Body {
				a.stmt(c, cs)
			}
		}
		if v.Finally != nil {
			a.stmt(v.Finally, sc)
		}
	case *ast.LabeledStmt:
		if a.findLabel(v.Label) != nil {
			a.errorf("dup-label", v.Pos(), "Label %q has already been declared", v.Label)
		}
		// A label chain targets an iteration statement when the innermost
		// labeled statement is a loop; every label in the chain is then a
		// valid continue target.
		body := ast.Stmt(v.Body)
		for {
			ls, ok := body.(*ast.LabeledStmt)
			if !ok {
				break
			}
			body = ls.Body
		}
		a.labels = append(a.labels, labelEntry{name: v.Label, iter: isIteration(body)})
		a.stmt(v.Body, sc)
		a.labels = a.labels[:len(a.labels)-1]
	}
}

// loop analyzes a loop body with the iteration context open.
func (a *early) loop(body ast.Stmt, sc *escope) {
	a.loopDepth++
	a.stmt(body, sc)
	a.loopDepth--
}

func isIteration(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ForStmt, *ast.ForInStmt, *ast.WhileStmt, *ast.DoWhileStmt:
		return true
	}
	return false
}

// function analyzes a function literal: a fresh function scope seeded
// with the parameters and pre-hoisted vars, and a fresh label/loop
// context (labels do not cross function boundaries).
func (a *early) function(fn *ast.FuncLit, outer *escope) {
	sc := newScope(outer, true)
	sc.params = map[string]bool{}
	for _, p := range fn.Params {
		sc.params[p] = true
	}
	if fn.Rest != "" {
		sc.params[fn.Rest] = true
	}

	savedLabels, savedLoop, savedSw := a.labels, a.loopDepth, a.swDepth
	a.labels, a.loopDepth, a.swDepth = nil, 0, 0
	a.fnDepth++

	if fn.ExprBody != nil {
		a.expr(fn.ExprBody, sc)
	} else if fn.Body != nil {
		prehoist(fn.Body.Body, sc)
		for _, s := range fn.Body.Body {
			a.stmt(s, sc)
		}
	}

	a.fnDepth--
	a.labels, a.loopDepth, a.swDepth = savedLabels, savedLoop, savedSw
}

// expr analyzes one expression in scope sc.
func (a *early) expr(e ast.Expr, sc *escope) {
	switch v := e.(type) {
	case nil:
		return
	case *ast.FuncLit:
		a.function(v, sc)
	case *ast.AssignExpr:
		if id, ok := v.L.(*ast.Ident); ok {
			a.checkWrite(id.Name, sc, v.Pos())
		} else {
			a.expr(v.L, sc)
		}
		a.expr(v.R, sc)
	case *ast.UpdateExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			a.checkWrite(id.Name, sc, v.Pos())
		} else {
			a.expr(v.X, sc)
		}
	default:
		for _, c := range ast.Children(e) {
			if ce, ok := c.(ast.Expr); ok {
				a.expr(ce, sc)
			}
		}
	}
}
