// Package detlint is a small static analyzer over the repository's own Go
// source that enforces the determinism contract the campaign pipeline
// depends on (byte-identical findings for any worker/shard count, and
// replayable runs from a seed alone). It flags three hazard patterns in
// deterministic-critical packages:
//
//   - range-over-map: Go map iteration order is randomised per run, so a
//     `for ... range m` over a map in an accounting or generation path can
//     leak nondeterminism into output order. Sites that launder the order
//     afterwards (collect keys, sort, then use) carry a `//detlint:order`
//     comment on or directly above the range statement.
//   - wall-clock: time.Now / time.Since make behaviour depend on when the
//     run happened rather than the seed; the timer constructors time.Sleep,
//     time.After, time.Tick, time.NewTimer and time.NewTicker smuggle the
//     same dependency in through scheduling. Sites that legitimately own
//     wall time (a server's retry-backoff timer, a watchdog) carry a
//     `//detlint:wallclock` comment on or directly above the call.
//   - global-rand: package-level math/rand functions (rand.Intn,
//     rand.Float64, ...) read the process-global source, which is shared
//     across goroutines and seeded once per process. Deterministic code
//     must thread an explicit *rand.Rand; the constructors rand.New and
//     rand.NewSource are therefore allowed.
//
// The checks are type-driven (go/types), not textual, so runtime.GOMAXPROCS
// does not trip the wall-clock rule and a local package named rand does not
// trip the global-rand rule.
package detlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one determinism hazard at a source position.
type Finding struct {
	Pos  token.Position
	Rule string // "range-over-map" | "wall-clock" | "global-rand"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// orderComment is the escape-hatch marker for range-over-map sites whose
// iteration order is laundered (e.g. keys collected and sorted) before use.
const orderComment = "detlint:order"

// wallclockComment is the escape-hatch marker for call sites that
// legitimately own wall-clock time (injected-clock defaults, backoff
// timers, watchdogs) in packages that are otherwise clock-free.
const wallclockComment = "detlint:wallclock"

// wallClockFuncs are the time-package functions that make behaviour
// depend on when (or how fast) the run happened rather than on the seed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// Check runs all determinism rules over one type-checked package and
// returns the findings in source order. info must have been populated with
// Types and Uses during checking.
func Check(fset *token.FileSet, files []*ast.File, info *types.Info) []Finding {
	var out []Finding
	for _, f := range files {
		out = append(out, checkFile(fset, f, info)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return out
}

func checkFile(fset *token.FileSet, file *ast.File, info *types.Info) []Finding {
	// Lines carrying an escape comment: a marker on the flagged
	// statement's own line or the line directly above suppresses the
	// corresponding rule for that statement.
	orderLines := map[int]bool{}
	wallclockLines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, orderComment) {
				orderLines[fset.Position(c.Pos()).Line] = true
			}
			if strings.Contains(c.Text, wallclockComment) {
				wallclockLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}

	var out []Finding
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.RangeStmt:
			t := info.TypeOf(v.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			line := fset.Position(v.For).Line
			if orderLines[line] || orderLines[line-1] {
				return true
			}
			out = append(out, Finding{
				Pos:  fset.Position(v.For),
				Rule: "range-over-map",
				Msg: fmt.Sprintf("iteration over map %s has randomised order; sort the keys (and mark the site //detlint:order) or use a slice",
					types.TypeString(t, nil)),
			})
		case *ast.CallExpr:
			pkg, name := calleePkgFunc(v, info)
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				line := fset.Position(v.Pos()).Line
				if wallclockLines[line] || wallclockLines[line-1] {
					return true
				}
				out = append(out, Finding{
					Pos:  fset.Position(v.Pos()),
					Rule: "wall-clock",
					Msg:  fmt.Sprintf("time.%s makes behaviour depend on wall-clock time, not the seed; inject the clock/timer, or mark a legitimate owner //detlint:wallclock", name),
				})
			case pkg == "math/rand" && name != "New" && name != "NewSource":
				out = append(out, Finding{
					Pos:  fset.Position(v.Pos()),
					Rule: "global-rand",
					Msg:  fmt.Sprintf("rand.%s reads the process-global source; thread a *rand.Rand from the seed instead", name),
				})
			}
		}
		return true
	})
	return out
}

// calleePkgFunc resolves a call of the form pkg.Func to its package import
// path and function name, or ("", "") when the callee is anything else
// (method call, local function, conversion, variable named like a package).
func calleePkgFunc(call *ast.CallExpr, info *types.Info) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
