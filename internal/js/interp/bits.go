package interp

import "math"

// Little-endian byte-buffer helpers for typed arrays and DataView.

func le32(d []byte) uint32 {
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

func le64(d []byte) uint64 {
	return uint64(le32(d)) | uint64(le32(d[4:]))<<32
}

func putLE32(d []byte, v uint32) {
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
}

func putLE64(d []byte, v uint64) {
	putLE32(d, uint32(v))
	putLE32(d[4:], uint32(v>>32))
}

func bits32(f float32) uint32     { return math.Float32bits(f) }
func fromBits32(u uint32) float32 { return math.Float32frombits(u) }
func bits64(f float64) uint64     { return math.Float64bits(f) }
func fromBits64(u uint64) float64 { return math.Float64frombits(u) }

// toInt64 converts per ECMA-262 ToIntegerOrInfinity then wraps, matching
// the modulo behaviour of typed-array element conversion.
func toInt64(f float64) int64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int64(math.Trunc(math.Mod(f, 18446744073709551616)))
}

func clampUint8(f float64) byte {
	if math.IsNaN(f) || f <= 0 {
		return 0
	}
	if f >= 255 {
		return 255
	}
	// Round half to even per the Uint8ClampedArray spec.
	r := math.RoundToEven(f)
	return byte(r)
}
