package difftest

import (
	"testing"

	"comfort/internal/engines"
)

// TestClassifyWallClockTimeoutUnconditionallyDeviant pins the robustness
// amendment to the Figure-5 timeout rule: a wall-clock watchdog abort is
// deviant even when its fuel reading sits far below the 2× bar (the hung
// engine burned real time, not fuel), while a plain fuel timeout with the
// same reading stays within the rule.
func TestClassifyWallClockTimeoutUnconditionallyDeviant(t *testing.T) {
	wallTimeout := engines.ExecResult{
		Outcome: engines.OutcomeTimeout, ErrName: "timeout",
		FuelUsed: 10, WallClock: true,
	}
	fuelTimeoutLow := engines.ExecResult{
		Outcome: engines.OutcomeTimeout, ErrName: "timeout", FuelUsed: 10,
	}

	res := Classify([]ExecEntry{
		entry("A", "1", false, wallTimeout),
		entry("B", "1", false, pass("1")),
		entry("C", "1", false, pass("1")),
	})
	if res.Verdict != VerdictTimeout {
		t.Fatalf("wall-clock timeout verdict = %v, want timeout", res.Verdict)
	}
	if len(res.Deviations) != 1 || res.Deviations[0].Testbed.Version.Engine != "A" {
		t.Fatalf("wall-clock hang not the deviant: %+v", res.Deviations)
	}

	// Control: the same fuel reading without WallClock is inside the 2×
	// band (10 ≤ 2×100) — not deviant, so the case majority-votes instead.
	ctrl := Classify([]ExecEntry{
		entry("A", "1", false, fuelTimeoutLow),
		entry("B", "1", false, pass("1")),
		entry("C", "1", false, pass("1")),
	})
	if ctrl.Verdict == VerdictTimeout {
		t.Errorf("low-fuel timeout misread as deviant without WallClock")
	}
}

// TestClassifyCrashFromRecoveredPanic: a recovered-panic crash entry drives
// the case to VerdictCrash with the crashing engine deviant — a crash IS a
// finding, per the panic-isolation contract.
func TestClassifyCrashFromRecoveredPanic(t *testing.T) {
	crash := engines.ExecResult{
		Outcome: engines.OutcomeCrash, Error: "panic: boom", ErrName: "panic",
		FuelUsed: 42, Panic: true,
	}
	res := Classify([]ExecEntry{
		entry("A", "1", false, crash),
		entry("B", "1", false, pass("1")),
		entry("C", "1", false, pass("1")),
	})
	if res.Verdict != VerdictCrash {
		t.Fatalf("verdict = %v, want crash", res.Verdict)
	}
	if len(res.Deviations) != 1 || !res.Deviations[0].Result.Panic {
		t.Fatalf("panic crash not the deviant: %+v", res.Deviations)
	}
}

// TestVerdictByNameRoundTrip pins the checkpoint encoding: every verdict
// round-trips through its String rendering.
func TestVerdictByNameRoundTrip(t *testing.T) {
	for v := VerdictPass; v <= VerdictInconclusive; v++ {
		got, ok := VerdictByName(v.String())
		if !ok || got != v {
			t.Errorf("verdict %v does not round-trip (got %v, ok=%v)", v, got, ok)
		}
	}
	if _, ok := VerdictByName("no-such-verdict"); ok {
		t.Error("unknown verdict name resolved")
	}
}
