// Package resolve implements the interpreter's resolve-once pass: a single
// walk over a parsed program that annotates the AST with its static scope
// layout, so that executing the program — which a differential-testing
// campaign does dozens of times per parse, once per behaviour class — pays
// O(1) slot accesses instead of hash lookups over a chain of per-scope maps.
//
// Every scope node (function body, block, for/for-in head, switch body,
// catch clause) gets an ast.ScopeInfo recording its frame size and named
// slot roles; every identifier reference gets an ast.ScopeRef. A scope
// materialises a frame at run time iff it has at least one slot, so most
// fuzzer-generated blocks (which declare nothing lexical) cost no
// allocation at all.
//
// The pass must reproduce the dynamic evaluator's scope semantics exactly —
// var hoisting into function frames, function declarations hoisted past
// intermediate blocks, catch parameters, function expression self-names,
// the TDZ-free ES2015-core rule that a let/const binding becomes visible
// only when its declaration executes, and the quirk that top-level var and
// for-in bindings live on the global object/environment. Three reference
// classes keep that guarantee:
//
//   - RefSlot: emitted only when the binding is provably live at every
//     execution of the reference. Entry-live bindings (params, rest,
//     arguments, self-names, catch params, hoisted vars and function
//     declarations) are always provable; a block's let/const is provable
//     for references in strictly later statements of the same block,
//     including inside function literals created there — but never from
//     inside a hoisted function declaration (callable before the let runs)
//     and never across a switch's case bodies (execution may enter at any
//     case).
//   - RefGlobal: emitted when no scope between the reference and the
//     global scope declares the name at all, so the dynamic walk could only
//     ever end on the global environment or the global object. Sound
//     because eval executes exclusively in the global environment — inner
//     scopes are never extended dynamically.
//   - RefDynamic: everything else falls back to the by-name walk, which is
//     semantically identical to the unresolved evaluator (slot frames are
//     scanned by name, honouring per-slot liveness).
package resolve

import (
	"math"

	"comfort/internal/js/ast"
)

// Declaration-index markers: idxEntry bindings are live from frame entry
// (provable regardless of control flow); idxNever bindings are never
// statically provable. Plain statement indices sit in between.
const (
	idxEntry = -2
	idxNever = math.MaxInt32
)

// maxSlots caps a frame's slot count; declarations beyond it stay on the
// dynamic overlay path (a non-issue for generated programs, but the
// resolver must not mis-index).
const maxSlots = 0xFFF0

// Program annotates prog in place. It is idempotent and must be called
// before the program is shared across goroutines (annotations are plain
// field writes); execution itself only reads them.
func Program(prog *ast.Program) {
	if prog.ResolvedScopes {
		return
	}
	prog.ResolvedScopes = true
	r := &resolver{}
	g := &scope{global: true, isFunc: true, curIndex: -1}
	// Top-level function declarations are hoisted onto the global object
	// with the global environment as their closure — intermediate blocks
	// are invisible to them — so resolve their bodies against the global
	// pseudo-scope, before the statement walk (which skips them).
	r.hoistedFuncDecls(prog.Body, g)
	r.stmts(prog.Body, g)
}

// scope is the resolver's view of one runtime scope.
type scope struct {
	parent    *scope
	info      *ast.ScopeInfo
	global    bool // the root pseudo-scope (always dynamic)
	isFunc    bool // var-scope boundary
	hoistedFn bool // a function entered via a hoisted FuncDecl
	slots     map[string]uint16
	declIndex map[string]int
	// poisoned marks a scope that hit the slot cap: some of its
	// declarations live on the dynamic overlay, so references walking
	// through it can no longer be proven to miss it.
	poisoned bool
	// curIndex is the index of this scope's direct statement currently
	// being walked; frozen (by simply not advancing) while the walk is
	// inside a nested scope or function literal.
	curIndex int
}

func newScopeInfo() *ast.ScopeInfo {
	return &ast.ScopeInfo{RestSlot: -1, ArgumentsSlot: -1, SelfSlot: -1, CatchParamSlot: -1}
}

func (r *resolver) newScope(parent *scope, info *ast.ScopeInfo, isFunc bool) *scope {
	return &scope{
		parent: parent, info: info, isFunc: isFunc,
		slots: map[string]uint16{}, declIndex: map[string]int{}, curIndex: -1,
	}
}

// slot returns the slot for name, creating it if needed. ok is false when
// the frame is at capacity (the name then stays on the dynamic path).
func (s *scope) slot(name string) (uint16, bool) {
	if i, ok := s.slots[name]; ok {
		return i, true
	}
	if len(s.info.Names) >= maxSlots {
		s.poisoned = true
		return 0, false
	}
	i := uint16(len(s.info.Names))
	s.slots[name] = i
	s.info.Names = append(s.info.Names, name)
	s.info.NumSlots++
	return i, true
}

// declare records a declaration of name at index (idxEntry/idxNever/stmt
// index), merging with any earlier declaration by minimum.
func (s *scope) declare(name string, index int) (uint16, bool) {
	sl, ok := s.slot(name)
	if !ok {
		return 0, false
	}
	if old, seen := s.declIndex[name]; !seen || index < old {
		s.declIndex[name] = index
	}
	return sl, true
}

func (s *scope) materialized() bool { return s.info != nil && s.info.NumSlots > 0 }

type resolver struct{}

// ---------- reference resolution ----------

func (r *resolver) ref(id *ast.Ident, s *scope) {
	name := id.Name
	crossed := false // crossed a hoisted-FuncDecl boundary walking out
	depth := 0
	for cur := s; cur != nil; cur = cur.parent {
		if cur.global {
			id.Ref = ast.ScopeRef{Kind: ast.RefGlobal}
			return
		}
		if sl, ok := cur.slots[name]; ok {
			di := cur.declIndex[name]
			if di == idxEntry || (!crossed && di != idxNever && cur.curIndex > di) {
				if depth <= math.MaxUint16 {
					id.Ref = ast.ScopeRef{Kind: ast.RefSlot, Depth: uint16(depth), Slot: sl}
					return
				}
			}
			id.Ref = ast.ScopeRef{Kind: ast.RefDynamic}
			return
		}
		if cur.poisoned {
			// Overlay declarations may shadow outer bindings; stay dynamic.
			id.Ref = ast.ScopeRef{Kind: ast.RefDynamic}
			return
		}
		if cur.materialized() {
			depth++
		}
		if cur.isFunc && cur.hoistedFn {
			crossed = true
		}
	}
}

// target resolves a declaration's write target in scope t as seen from s
// (the scope the write executes in). Returns RefDynamic when t is global.
func declTarget(s, t *scope, sl uint16) ast.ScopeRef {
	if t.global {
		return ast.ScopeRef{}
	}
	depth := 0
	for cur := s; cur != t; cur = cur.parent {
		if cur.materialized() {
			depth++
		}
	}
	if depth > math.MaxUint16 {
		return ast.ScopeRef{}
	}
	return ast.ScopeRef{Kind: ast.RefSlot, Depth: uint16(depth), Slot: sl}
}

func (s *scope) funcScope() *scope {
	cur := s
	for !cur.isFunc {
		cur = cur.parent
	}
	return cur
}

// ---------- function scopes ----------

// funcLit resolves a function literal against parent. hoisted marks
// function declarations, whose bodies may execute before any enclosing
// lexical declaration has run.
func (r *resolver) funcLit(lit *ast.FuncLit, parent *scope, hoisted bool) {
	if lit.Scope != nil {
		return // already resolved (shared subtree)
	}
	if len(lit.Params) >= maxSlots {
		return // absurd frame: leave the whole literal on the dynamic path
	}
	info := newScopeInfo()
	lit.Scope = info
	s := r.newScope(parent, info, true)
	s.hoistedFn = hoisted

	// Runtime binding order: params, rest, arguments, self-name, var
	// hoisting, function-declaration hoisting. Duplicate names share a
	// slot; the later writer wins, as in the map evaluator.
	for _, p := range lit.Params {
		sl, _ := s.declare(p, idxEntry)
		info.ParamSlots = append(info.ParamSlots, sl)
	}
	if lit.Rest != "" {
		if sl, ok := s.declare(lit.Rest, idxEntry); ok {
			info.RestSlot = int32(sl)
		}
	}
	if !lit.Arrow {
		// The map evaluator binds `arguments` unconditionally; the slot is
		// materialised only when the body can observe the name, so most
		// functions skip the arguments-object allocation entirely.
		if usesName(lit, "arguments") {
			if sl, ok := s.declare("arguments", idxEntry); ok {
				info.ArgumentsSlot = int32(sl)
			}
		}
		// The self-name binding is conditional at run time: the dynamic
		// evaluator binds it only when the name is not already visible
		// anywhere up the closure chain (Call gates on callEnv.Has), which
		// no static pass can decide. The slot is reserved, the interpreter
		// re-checks the chain at entry, and references to the name stay
		// dynamic (idxNever) so an unbound self falls through to the outer
		// binding exactly as the map evaluator does. A var sharing the
		// name upgrades it to entry-live below (hoistVar), because var
		// initialisation fills the slot whenever the self-bind declined.
		if lit.Name != "" && !nameIn(lit.Params, lit.Name) && lit.Rest != lit.Name && lit.Name != "arguments" {
			if sl, ok := s.declare(lit.Name, idxNever); ok {
				info.SelfSlot = int32(sl)
			}
		}
	}

	if lit.Body != nil {
		// Phase 1a: hoist vars and function-declaration names (textual
		// order, not descending into nested function literals).
		r.hoistDecls(lit.Body.Body, s)
		// Phase 1b: this scope's lexical declarations, so that references
		// anywhere below can see the full name set before resolution.
		r.prescanLexical(lit.Body.Body, s, true)
		// Phase 1c: hoisted function bodies, resolved against this
		// function frame (intermediate blocks are invisible to them).
		r.hoistedFuncDecls(lit.Body.Body, s)
		// Phase 2: resolve the body.
		r.stmts(lit.Body.Body, s)
	} else if lit.ExprBody != nil {
		r.expr(lit.ExprBody, s)
	}
}

// hoistDecls mirrors the interpreter's hoist walk: var declarators and
// function-declaration names anywhere in the statement subtree — but not
// inside nested function literals — bind in the function frame. Source
// pre-order matches the dynamic hoist's declaration order, which fixes
// the instantiation order of HoistFuncs.
func (r *resolver) hoistDecls(ss []ast.Stmt, fn *scope) {
	for _, st := range ss {
		ast.Walk(st, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncLit:
				return false // nested function: its own frame hoists
			case *ast.FuncDecl:
				if sl, ok := r.hoistVar(fn, t.Fn.Name); ok {
					fn.info.HoistFuncs = append(fn.info.HoistFuncs, t.Fn)
					fn.info.HoistSlots = append(fn.info.HoistSlots, sl)
				}
				return false
			case *ast.VarDecl:
				if t.Kind == ast.Var {
					for _, d := range t.Decls {
						r.hoistVar(fn, d.Name)
					}
				}
			case *ast.ForInStmt:
				if t.Decl == ast.Var {
					r.hoistVar(fn, t.Name)
				}
			}
			return true
		})
	}
}

// hoistVar declares a var-hoisted name on the function frame, reporting
// the slot. Slots that are not already entry-live — new ones, and a
// reserved self-name slot whose conditional bind may decline — are
// recorded for undefined-initialisation at entry (the initialiser skips
// slots something earlier already filled).
func (r *resolver) hoistVar(fn *scope, name string) (uint16, bool) {
	_, existed := fn.slots[name]
	entryLive := existed && fn.declIndex[name] == idxEntry
	sl, ok := fn.declare(name, idxEntry)
	if !ok {
		return 0, false
	}
	if !entryLive {
		fn.info.VarSlots = append(fn.info.VarSlots, sl)
	}
	return sl, true
}

// hoistedFuncDecls resolves every hoisted function declaration's body in
// the statement subtree against fnScope (their closure environment —
// intermediate blocks are invisible to hoisted declarations).
func (r *resolver) hoistedFuncDecls(ss []ast.Stmt, fnScope *scope) {
	for _, st := range ss {
		ast.Walk(st, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncDecl:
				r.funcLit(t.Fn, fnScope, true)
				return false
			case *ast.FuncLit:
				return false // expression literal: resolved at its site
			}
			return true
		})
	}
}

// prescanLexical collects s's let/const declarations before resolution.
// direct statements get their index (provable for later statements);
// declarations reached through non-scope statement bodies (brace-less if
// arms and loop bodies) execute conditionally and are never provable —
// they still bind in s at run time, so they need slots. Nested blocks,
// loops with heads, switches and try clauses open scopes of their own and
// are not descended into.
func (r *resolver) prescanLexical(ss []ast.Stmt, s *scope, direct bool) {
	for i, st := range ss {
		idx := idxNever
		if direct {
			idx = i
		}
		switch t := st.(type) {
		case *ast.VarDecl:
			if t.Kind == ast.Let || t.Kind == ast.Const {
				for _, d := range t.Decls {
					s.declare(d.Name, idx)
				}
			}
		case *ast.IfStmt:
			r.prescanNonScopeBody(t.Then, s)
			if t.Else != nil {
				r.prescanNonScopeBody(t.Else, s)
			}
		case *ast.WhileStmt:
			r.prescanNonScopeBody(t.Body, s)
		case *ast.DoWhileStmt:
			r.prescanNonScopeBody(t.Body, s)
		case *ast.LabeledStmt:
			r.prescanNonScopeBody(t.Body, s)
		}
	}
}

// prescanNonScopeBody handles a single statement that executes in s's own
// environment (no block braces): any lexical declaration in it binds in s
// but is conditionally executed.
func (r *resolver) prescanNonScopeBody(st ast.Stmt, s *scope) {
	switch st.(type) {
	case *ast.BlockStmt, *ast.ForStmt, *ast.ForInStmt, *ast.SwitchStmt, *ast.TryStmt:
		return // opens its own scope
	}
	r.prescanLexical([]ast.Stmt{st}, s, false)
}

// ---------- statements ----------

func (r *resolver) stmts(ss []ast.Stmt, s *scope) {
	for i, st := range ss {
		s.curIndex = i
		r.stmt(st, s)
	}
	s.curIndex = len(ss)
}

func (r *resolver) stmt(st ast.Stmt, s *scope) {
	switch t := st.(type) {
	case *ast.VarDecl:
		r.varDecl(t, s)
	case *ast.FuncDecl:
		// Body already resolved against the function frame during the
		// hoist phase; nothing executes here.
	case *ast.ExprStmt:
		r.expr(t.X, s)
	case *ast.BlockStmt:
		r.block(t, s, "")
	case *ast.IfStmt:
		r.expr(t.Cond, s)
		r.stmt(t.Then, s)
		if t.Else != nil {
			r.stmt(t.Else, s)
		}
	case *ast.ForStmt:
		info := newScopeInfo()
		t.Scope = info
		ls := r.newScope(s, info, false)
		if vd, ok := t.Init.(*ast.VarDecl); ok && (vd.Kind == ast.Let || vd.Kind == ast.Const) {
			for _, d := range vd.Decls {
				ls.declare(d.Name, -1) // live once the init has run
			}
		}
		r.prescanNonScopeBody(t.Body, ls)
		ls.curIndex = -1 // init executes before the head's declarations
		switch init := t.Init.(type) {
		case *ast.VarDecl:
			r.varDecl(init, ls)
		case ast.Expr:
			r.expr(init, ls)
		}
		ls.curIndex = 0 // cond/post/body run after the init
		if t.Cond != nil {
			r.expr(t.Cond, ls)
		}
		if t.Post != nil {
			r.expr(t.Post, ls)
		}
		r.stmt(t.Body, ls)
	case *ast.ForInStmt:
		r.expr(t.Obj, s) // evaluated in the enclosing environment
		info := newScopeInfo()
		t.Scope = info
		ls := r.newScope(s, info, false)
		if t.Decl == ast.Let || t.Decl == ast.Const {
			ls.declare(t.Name, -1)
		}
		r.prescanNonScopeBody(t.Body, ls)
		switch t.Decl {
		case ast.Let, ast.Const:
			if sl, ok := ls.slots[t.Name]; ok {
				t.NameRef = ast.ScopeRef{Kind: ast.RefSlot, Depth: 0, Slot: sl}
			}
		case ast.Var:
			fn := ls.funcScope()
			if sl, ok := fn.slots[t.Name]; ok {
				t.NameRef = declTarget(ls, fn, sl)
			}
		default:
			// Plain-name target: ordinary assignment resolution.
			id := &ast.Ident{Name: t.Name}
			r.ref(id, ls)
			t.NameRef = id.Ref
		}
		ls.curIndex = 0 // the body runs after each per-iteration binding
		r.stmt(t.Body, ls)
	case *ast.WhileStmt:
		r.expr(t.Cond, s)
		r.stmt(t.Body, s)
	case *ast.DoWhileStmt:
		r.stmt(t.Body, s)
		r.expr(t.Cond, s)
	case *ast.SwitchStmt:
		r.expr(t.Disc, s)
		info := newScopeInfo()
		t.Scope = info
		cs := r.newScope(s, info, false)
		for _, c := range t.Cases {
			r.prescanLexical(c.Body, cs, false) // entry point unknown: never provable
		}
		for _, c := range t.Cases {
			if c.Test != nil {
				r.expr(c.Test, cs)
			}
		}
		for _, c := range t.Cases {
			r.stmts(c.Body, cs)
		}
	case *ast.BreakStmt, *ast.ContinueStmt, *ast.EmptyStmt, *ast.DebuggerStmt:
	case *ast.ReturnStmt:
		if t.X != nil {
			r.expr(t.X, s)
		}
	case *ast.ThrowStmt:
		r.expr(t.X, s)
	case *ast.TryStmt:
		r.block(t.Block, s, "")
		if t.Catch != nil {
			r.block(t.Catch, s, t.CatchParam)
		}
		if t.Finally != nil {
			r.block(t.Finally, s, "")
		}
	case *ast.LabeledStmt:
		r.stmt(t.Body, s)
	}
}

// block resolves a block statement's scope. catchParam, when non-empty,
// adds the catch-clause parameter as an entry-live binding (the runtime
// executes a catch body in the same frame as its parameter).
func (r *resolver) block(b *ast.BlockStmt, parent *scope, catchParam string) {
	info := newScopeInfo()
	b.Scope = info
	s := r.newScope(parent, info, false)
	if catchParam != "" {
		if sl, ok := s.declare(catchParam, idxEntry); ok {
			info.CatchParamSlot = int32(sl)
		}
	}
	r.prescanLexical(b.Body, s, true)
	r.stmts(b.Body, s)
}

func (r *resolver) varDecl(t *ast.VarDecl, s *scope) {
	for i := range t.Decls {
		d := &t.Decls[i]
		if d.Init != nil {
			r.expr(d.Init, s)
		}
		switch t.Kind {
		case ast.Var:
			fn := s.funcScope()
			if sl, ok := fn.slots[d.Name]; ok {
				d.Ref = declTarget(s, fn, sl)
			}
		case ast.Let, ast.Const:
			if s.global {
				break // top-level lexicals live on the global environment
			}
			if sl, ok := s.slots[d.Name]; ok {
				d.Ref = ast.ScopeRef{Kind: ast.RefSlot, Depth: 0, Slot: sl}
			}
		}
	}
}

// ---------- expressions ----------

func (r *resolver) expr(e ast.Expr, s *scope) {
	switch t := e.(type) {
	case *ast.Ident:
		r.ref(t, s)
	case *ast.FuncLit:
		r.funcLit(t, s, false)
	case *ast.TemplateLit:
		for _, x := range t.Exprs {
			r.expr(x, s)
		}
	case *ast.ArrayLit:
		for _, el := range t.Elems {
			if el != nil {
				r.expr(el, s)
			}
		}
	case *ast.ObjectLit:
		for i := range t.Props {
			p := &t.Props[i]
			if p.Computed && p.KeyExpr != nil {
				r.expr(p.KeyExpr, s)
			}
			if p.Value != nil {
				r.expr(p.Value, s)
			}
		}
	case *ast.UnaryExpr:
		r.expr(t.X, s)
	case *ast.UpdateExpr:
		r.expr(t.X, s)
	case *ast.BinaryExpr:
		r.expr(t.L, s)
		r.expr(t.R, s)
	case *ast.LogicalExpr:
		r.expr(t.L, s)
		r.expr(t.R, s)
	case *ast.AssignExpr:
		r.expr(t.L, s)
		r.expr(t.R, s)
	case *ast.CondExpr:
		r.expr(t.Cond, s)
		r.expr(t.Then, s)
		r.expr(t.Else, s)
	case *ast.CallExpr:
		r.expr(t.Callee, s)
		for _, a := range t.Args {
			r.expr(a, s)
		}
	case *ast.NewExpr:
		r.expr(t.Callee, s)
		for _, a := range t.Args {
			r.expr(a, s)
		}
	case *ast.MemberExpr:
		r.expr(t.Obj, s)
		if t.Computed && t.Prop != nil {
			r.expr(t.Prop, s)
		}
	case *ast.SeqExpr:
		for _, x := range t.Exprs {
			r.expr(x, s)
		}
	case *ast.SpreadExpr:
		r.expr(t.X, s)
	}
}

// ---------- helpers ----------

func nameIn(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// usesName reports whether the function body can observe the given binding
// name: any identifier occurrence (or for-in loop target) outside nested
// non-arrow function literals, which rebind `arguments`; arrow literals
// inherit it and are descended into.
func usesName(lit *ast.FuncLit, name string) bool {
	found := false
	visit := func(n ast.Node) bool {
		if found {
			return false
		}
		switch t := n.(type) {
		case *ast.Ident:
			if t.Name == name {
				found = true
			}
		case *ast.ForInStmt:
			if t.Name == name {
				found = true
			}
		case *ast.FuncLit:
			return t.Arrow
		}
		return !found
	}
	if lit.Body != nil {
		ast.Walk(lit.Body, visit)
	}
	if lit.ExprBody != nil {
		ast.Walk(lit.ExprBody, visit)
	}
	return found
}
