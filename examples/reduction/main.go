// reduction: shrink a bug-exposing test case (the paper's Section 3.5)
// against the V8 defineProperty defect of Listing 1.
package main

import (
	"fmt"

	"comfort"
)

// A deliberately bloated test case that embeds the Listing-1 bug.
const bloated = `var unrelated = [1, 2, 3].map(function(x) { return x * 2; });
var alsoUnrelated = "hello".toUpperCase();
function helper(n) {
  return n + 1;
}
var foo = function() {
  var counter = 0;
  for (var i = 0; i < 3; i++) {
    counter += helper(i);
  }
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", {value: 1, configurable: true});
  print("no throw");
  return counter;
};
foo();
print(unrelated.join(","));`

func main() {
	v8 := comfort.Engines()[0].Latest()
	tb := comfort.Testbed{Version: v8}

	// Prepare once, run many: the prepared testbeds pay the catalog scan
	// and option resolution a single time across all candidates.
	p := comfort.PrepareTestbed(tb)
	ref := comfort.PrepareTestbed(comfort.ReferenceTestbed(false))
	diverges := func(src string) bool {
		opts := comfort.RunOptions{Fuel: 300000, Seed: 1}
		return p.Run(src, opts).Key() != ref.Run(src, opts).Key()
	}
	if !diverges(bloated) {
		fmt.Println("unexpected: the bloated case does not diverge")
		return
	}
	reduced := comfort.ReduceTestCaseParallel(bloated, diverges, comfort.ReduceOptions{Workers: 4})
	fmt.Printf("original (%d bytes):\n%s\n\n", len(bloated), bloated)
	fmt.Printf("reduced (%d bytes):\n%s\n", len(reduced), reduced)
	fmt.Printf("\nstill diverges on %s: %v\n", tb.ID(), diverges(reduced))
}
