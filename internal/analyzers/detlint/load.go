package detlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Linter loads and type-checks packages of one module without any external
// tooling: module-internal imports are resolved recursively from the module
// root on disk, standard-library imports through the compiler-independent
// source importer. Everything is stdlib-only, so the linter works in the
// offline CI container.
type Linter struct {
	fset    *token.FileSet
	root    string // module root directory
	modpath string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*loaded
}

// loaded memoises one type-checked package in full. Caching only the
// *types.Package and re-checking on demand would mint a second package
// instance for the same import path — and two instances of the same type
// never unify, so a target linted after one of its dependencies would
// fail to typecheck against the stale instance.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// NewLinter builds a Linter for the module rooted at root with the given
// module path.
func NewLinter(root, modpath string) *Linter {
	fset := token.NewFileSet()
	return &Linter{
		fset:    fset,
		root:    root,
		modpath: modpath,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*loaded{},
	}
}

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func ModuleRoot(dir string) (root, modpath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Linter) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// type-checked from source under the module root, everything else is
// delegated to the standard-library source importer.
func (l *Linter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, nil
	}
	if l.internal(path) {
		pkg, _, _, err := l.load(path)
		return pkg, err
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *Linter) internal(path string) bool {
	return path == l.modpath || strings.HasPrefix(path, l.modpath+"/")
}

// Dir returns the on-disk directory of a module-internal import path.
func (l *Linter) Dir(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modpath), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module-internal package (non-test files
// only, in file-name order) and memoises the result; a path is checked at
// most once per Linter so every client sees one package identity.
func (l *Linter) load(path string) (*types.Package, []*ast.File, *types.Info, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.pkg, p.files, p.info, nil
	}
	dir := l.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, nil, perr
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if pkg != nil && err == nil {
		l.pkgs[path] = &loaded{pkg: pkg, files: files, info: info}
	}
	return pkg, files, info, err
}

// Lint type-checks one module-internal package and returns its determinism
// findings in source order.
func (l *Linter) Lint(path string) ([]Finding, error) {
	if !l.internal(path) {
		return nil, fmt.Errorf("%s is not in module %s", path, l.modpath)
	}
	_, files, info, err := l.load(path)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return Check(l.fset, files, info), nil
}
