module comfort

go 1.22
