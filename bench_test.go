// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §3 maps each to its implementing modules). The harnesses print
// the regenerated rows once per benchmark so `go test -bench=.` doubles as
// the experiment runner; EXPERIMENTS.md records paper-vs-measured.
package comfort

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/lm"
	"comfort/internal/reduce"

	"comfort/internal/corpus"
	"comfort/internal/js/ast"
	"comfort/internal/js/lint"
	"comfort/internal/js/parser"

	"math/rand"
)

// campaignOnce caches the headline campaign so the table benchmarks share
// one discovery run (the paper's tables all come from the same 200h run).
var (
	campaignOnce sync.Once
	campaignRes  *campaign.Result
)

func headlineCampaign() *campaign.Result {
	campaignOnce.Do(func() {
		campaignRes = campaign.Run(campaign.Config{
			Fuzzer:   fuzzers.NewComfort(),
			Testbeds: engines.Testbeds(),
			Cases:    1200,
			Seed:     2021,
		})
	})
	return campaignRes
}

// BenchmarkTable1EngineInventory regenerates the engine-version inventory.
func BenchmarkTable1EngineInventory(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table1()
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable2BugStatistics regenerates the per-engine bug statistics
// (ground truth exactly matches the paper; the "found" column is measured).
func BenchmarkTable2BugStatistics(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table2(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
	fmt.Printf("campaign: %d cases, %d testbed executions, %d found, %d dups filtered\n\n",
		res.CasesRun, res.Executed, len(res.Found), res.DuplicatesFiltered)
}

// BenchmarkTable3BugsPerVersion regenerates the per-version attribution.
func BenchmarkTable3BugsPerVersion(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table3(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable4BugCategories regenerates the discovery-channel breakdown.
func BenchmarkTable4BugCategories(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table4(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkTable5TopBuggyAPIs regenerates the API-type distribution.
func BenchmarkTable5TopBuggyAPIs(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Table5(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure7ComponentBugs regenerates the per-component counts.
func BenchmarkFigure7ComponentBugs(b *testing.B) {
	res := headlineCampaign()
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = campaign.Figure7(res.FoundDefects())
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure8FuzzerComparison runs the six-fuzzer comparison with an
// equal test-case budget (the scaled 72-hour experiment).
func BenchmarkFigure8FuzzerComparison(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out, _ = campaign.Figure8(400, 2021)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkFigure9QualityMetrics measures syntax passing rate plus
// statement/function/branch coverage per fuzzer.
func BenchmarkFigure9QualityMetrics(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out, _ = campaign.Figure9(150, 2021)
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationLMOrder contrasts syntactic validity across context
// lengths (the §5.3.3 DeepSmith comparison as an ablation).
func BenchmarkAblationLMOrder(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var lines string
		for _, arch := range []lm.Arch{lm.ArchGPT2, lm.ArchLSTM} {
			g := lm.Train(corpus.Programs(), corpus.Headers(), lm.Config{Arch: arch})
			rng := rand.New(rand.NewSource(2021))
			valid := 0
			const n = 200
			for j := 0; j < n; j++ {
				if lint.Valid(g.Generate(rng)) {
					valid++
				}
			}
			lines += fmt.Sprintf("  %-6s validity: %d/%d (%.1f%%)\n", arch, valid, n,
				100*float64(valid)/n)
		}
		out = "Ablation: LM context order vs syntactic validity\n" + lines
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationSpecGuidance contrasts defect discovery with and without
// the ECMA-262-guided data channel (DESIGN.md §4).
func BenchmarkAblationSpecGuidance(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		withSpec := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 250, Seed: 7,
			Testbeds: engines.Testbeds(),
		})
		withoutSpec := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewDeepSmith(), Cases: 250, Seed: 7,
			Testbeds: engines.Testbeds(),
		})
		out = fmt.Sprintf(
			"Ablation: spec guidance — COMFORT found %d defects, generation-only found %d (250 cases each)\n",
			len(withSpec.Found), len(withoutSpec.Found))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationDedup measures the Figure-6 tree's filtering effect.
func BenchmarkAblationDedup(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		on := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 200, Seed: 5,
			Testbeds: engines.Testbeds(),
		})
		off := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 200, Seed: 5,
			Testbeds: engines.Testbeds(), DisableDedup: true,
		})
		out = fmt.Sprintf(
			"Ablation: dedup tree — filtered %d duplicate reports (found %d); without the tree: %d attribution runs for the same %d findings\n",
			on.DuplicatesFiltered, len(on.Found), off.UnattributedFindings+len(off.Found)+off.DuplicatesFiltered, len(off.Found))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkAblationReduction measures witness shrinkage from the Section
// 3.5 reducer over the catalog's own witnesses.
func BenchmarkAblationReduction(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer: fuzzers.NewComfort(), Cases: 150, Seed: 11,
			Testbeds:        engines.Testbeds(),
			ReduceWitnesses: true,
		})
		var before, after int
		for _, f := range res.Found {
			before += len(f.TestCase)
			after += len(f.Reduced)
		}
		if before == 0 {
			before = 1
		}
		out = fmt.Sprintf(
			"Ablation: reduction — %d findings, witness bytes %d → %d (%.0f%% of original)\n",
			len(res.Found), before, after, 100*float64(after)/float64(before))
	}
	b.StopTimer()
	fmt.Println(out)
}

// BenchmarkCampaignThroughput measures testbed executions per second on a
// full-testbed campaign — the scheduler's headline metric (EXPERIMENTS.md
// records the seed-path baseline against the prepared-testbed + parse-cache
// + behaviour-class pipeline, and now the resolve-once interpreter).
func BenchmarkCampaignThroughput(b *testing.B) {
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The campaign shape lives in campaign.ThroughputProbe, shared
		// with cmd/benchgate (the CI regression gate on this metric).
		executed += int64(campaign.ThroughputProbe(120, 8, 2021))
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkCampaignThroughputCheckpointed is the headline shape with the
// full robustness stack armed: periodic checkpoint writes at an aggressive
// 30-case cadence (8× the default density, so a 120-case run pays for four
// mid-run snapshots plus the final flush), the per-case wall-clock watchdog
// on the real clock, and panic guards (always on). The delta against
// BenchmarkCampaignThroughput is the price of crash-safety; EXPERIMENTS.md
// records it (<3% claimed).
func BenchmarkCampaignThroughputCheckpointed(b *testing.B) {
	dir := b.TempDir()
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer:          fuzzers.NewComfort(),
			Testbeds:        engines.Testbeds(),
			Cases:           120,
			Seed:            2021,
			Workers:         8,
			Checkpoint:      filepath.Join(dir, "bench.ckpt"),
			CheckpointEvery: 30,
			CaseDeadline:    10 * time.Second,
			Clock:           time.Now,
		})
		executed += int64(res.Executed)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkCampaignThroughputMapLM is the same campaign shape with
// generation on the map-backed LM and a single generator shard — the
// generation-side ablation pair for BenchmarkCampaignThroughput
// (execution stays on the resolve-once path in both).
func BenchmarkCampaignThroughputMapLM(b *testing.B) {
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer:    fuzzers.NewComfortLM(fuzzers.LMOptions{DisableFrozenLM: true}),
			Testbeds:  engines.Testbeds(),
			Cases:     120,
			Seed:      2021,
			Workers:   8,
			GenShards: 1,
		})
		executed += int64(res.Executed)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}

// BenchmarkCampaignThroughputMapScopes is the same campaign shape on the
// legacy dynamic map-scope evaluator (DisableResolve) — the ablation pair
// for BenchmarkCampaignThroughput.
func BenchmarkCampaignThroughputMapScopes(b *testing.B) {
	var executed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := campaign.Run(campaign.Config{
			Fuzzer:         fuzzers.NewComfort(),
			Testbeds:       engines.Testbeds(),
			Cases:          120,
			Seed:           2021,
			Workers:        8,
			DisableResolve: true,
		})
		executed += int64(res.Executed)
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
}

// loopFuzzer emits a fixed set of interpreter-bound programs (deep loops,
// calls, element traffic) so the campaign benchmark variant below measures
// the evaluator, not generation or parse.
type loopFuzzer struct{ i int }

func (f *loopFuzzer) Name() string { return "loop-bench" }

func (f *loopFuzzer) Next(_ *rand.Rand) []string {
	progs := []string{
		`function w(n){ var a = 0, b = 1; for (var i = 0; i < n; i++) { var t = a + b; a = b; b = t % 99991; } return a; } print(w(3000));`,
		`function leaf(x){ return x + 1; } function w(n){ var acc = 0; for (var i = 0; i < n; i++) { acc += leaf(i) % 17; } return acc; } print(w(1500));`,
		`function w(n){ var a = []; for (var i = 0; i < n; i++) { a[i] = i; } var s = 0; for (var j = 0; j < n; j++) { s += a[j]; } return s; } print(w(1200));`,
	}
	f.i++
	return []string{progs[f.i%len(progs)]}
}

// BenchmarkCampaignThroughputInterpBound drives the full campaign pipeline
// with interpreter-bound cases: per-case cost is dominated by evaluation,
// so this is where the evaluator shows up at campaign level.
// Sub-benchmarks contrast the compiled-thunk, resolved tree-walking and
// legacy map evaluators.
func BenchmarkCampaignThroughputInterpBound(b *testing.B) {
	for _, mode := range []struct {
		name                       string
		disableCompile, disableRes bool
	}{{"compiled", false, false}, {"resolved", true, false}, {"map", true, true}} {
		b.Run(mode.name, func(b *testing.B) {
			var executed int64
			for i := 0; i < b.N; i++ {
				res := campaign.Run(campaign.Config{
					Fuzzer:         &loopFuzzer{},
					Testbeds:       engines.Testbeds(),
					Cases:          30,
					Seed:           2021,
					Workers:        8,
					Fuel:           2_000_000,
					DisableCompile: mode.disableCompile,
					DisableResolve: mode.disableRes,
				})
				executed += int64(res.Executed)
			}
			b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "execs/sec")
		})
	}
}

// BenchmarkReduce measures Section-3.5 witness reduction: the seed's
// greedy reparse-per-candidate reducer (preserved below as the baseline)
// against the hierarchical ddmin subsystem at one and eight workers. The
// witness embeds the Listing-1 V8 defineProperty defect in a
// multi-statement program; every path reduces it to the same divergence.
// EXPERIMENTS.md records the measured speedups.
func BenchmarkReduce(b *testing.B) {
	v8 := engines.All()[0].Latest()
	p := engines.Testbed{Version: v8}.Prepare()
	ref := engines.ReferenceTestbed(false).Prepare()
	opts := engines.RunOptions{Fuel: 300000, Seed: 1}
	pred := engines.Diverges(p, ref, opts)
	if !pred(reduceBenchWitness) {
		b.Fatal("bench witness does not diverge on the V8 testbed")
	}
	// The seed predicate resolved the testbed per candidate (Testbed.Run +
	// Reference); the baseline keeps that exact path.
	seedPred := func(src string) bool {
		tb := engines.Testbed{Version: v8}
		return tb.Run(src, opts).Key() != engines.Reference(src, false, opts).Key()
	}
	var outs [3]string
	b.Run("baseline-greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs[0] = greedyReduceBaseline(reduceBenchWitness, seedPred)
		}
	})
	b.Run("ddmin-workers1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs[1] = reduce.Parallel(reduceBenchWitness, pred, reduce.Options{Workers: 1})
		}
	})
	b.Run("ddmin-workers8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			outs[2] = reduce.Parallel(reduceBenchWitness, pred, reduce.Options{Workers: 8})
		}
	})
	if outs[1] != "" && outs[2] != "" && outs[1] != outs[2] {
		b.Fatalf("ddmin output differs across worker counts:\n%s\nvs\n%s", outs[1], outs[2])
	}
	for i, out := range outs {
		if out != "" && !pred(out) {
			b.Fatalf("reducer %d lost the divergence:\n%s", i, out)
		}
	}
}

// reduceBenchWitness embeds the Listing-1 V8 bug in 40+ statements of
// unrelated code — the shape a fuzzer-found witness actually has.
const reduceBenchWitness = `var unrelated = [1, 2, 3].map(function(x) { return x * 2; });
var alsoUnrelated = "hello".toUpperCase();
var t0 = Math.max(1, 2, 3);
var t1 = [4, 5, 6].join("-");
var t2 = {a: 1, b: 2};
var t3 = t2.a + t2.b;
var u0 = "abcdef".indexOf("c");
var u1 = [7, 8, 9].reverse();
var u2 = Math.min(4, 5);
var u3 = parseInt("101", 2);
var u4 = "x,y,z".split(",");
var u5 = u4.length + u1.length;
var u6 = {k: "v", n: 3};
var u7 = u6.n * u2;
var u8 = [t0, u0, u3];
var u9 = u8.join("|");
var w0 = "pad".charAt(1);
var w1 = Math.abs(-9);
var w2 = [1, 1, 2, 3, 5, 8];
var w3 = w2.slice(2, 4);
var w4 = w3.concat([13]);
var w5 = "" + w1 + w0;
print(u5 + u7);
print(u9);
print(w4.join("+") + w5);
function helper(n) {
  return n + 1;
}
function unusedHelper(m) {
  var acc = 0;
  for (var j = 0; j < m; j++) {
    acc += j;
  }
  return acc;
}
var foo = function() {
  var counter = 0;
  for (var i = 0; i < 3; i++) {
    counter += helper(i);
  }
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", {value: 1, configurable: true});
  print("no throw");
  return counter;
};
foo();
print(unrelated.join(","));
print(unusedHelper(4));
print(t0 + t1 + t3);
if (t0 > 1) {
  print("big");
} else {
  print("small");
}`

// greedyReduceBaseline is the seed repo's reducer, verbatim: reparse the
// whole source for every candidate, restart a full scan after each
// accepted removal, strictly sequential. Kept as the benchmark baseline.
func greedyReduceBaseline(src string, pred func(string) bool) string {
	if !pred(src) {
		return src
	}
	current := src
	for {
		next, improved := greedyPass(current, pred)
		if !improved {
			return current
		}
		current = next
	}
}

func greedyPass(current string, pred func(string) bool) (string, bool) {
	prog, err := parser.Parse(current)
	if err != nil {
		return current, false
	}
	total := 0
	for _, l := range greedyStmtLists(prog) {
		total += len(*l)
	}
	for idx := total - 1; idx >= 0; idx-- {
		candidate, ok := greedyRemoveNth(current, idx)
		if !ok || candidate == current {
			continue
		}
		if pred(candidate) {
			return candidate, true
		}
	}
	for idx := 0; idx < total; idx++ {
		candidate, ok := greedySimplifyNth(current, idx)
		if !ok || candidate == current {
			continue
		}
		if pred(candidate) {
			return candidate, true
		}
	}
	return current, false
}

func greedyStmtLists(prog *ast.Program) []*[]ast.Stmt {
	lists := []*[]ast.Stmt{&prog.Body}
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt:
			lists = append(lists, &v.Body)
		case *ast.SwitchCase:
			lists = append(lists, &v.Body)
		}
		return true
	})
	return lists
}

func greedyRemoveNth(src string, idx int) (string, bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", false
	}
	n := idx
	for _, l := range greedyStmtLists(prog) {
		if n < len(*l) {
			*l = append(append([]ast.Stmt(nil), (*l)[:n]...), (*l)[n+1:]...)
			out := ast.Print(prog)
			if _, err := parser.Parse(out); err != nil {
				return "", false
			}
			return out, true
		}
		n -= len(*l)
	}
	return "", false
}

func greedySimplifyNth(src string, idx int) (string, bool) {
	prog, err := parser.Parse(src)
	if err != nil {
		return "", false
	}
	n := idx
	for _, l := range greedyStmtLists(prog) {
		if n < len(*l) {
			s := (*l)[n]
			var repl ast.Stmt
			switch v := s.(type) {
			case *ast.IfStmt:
				repl = v.Then
			case *ast.WhileStmt:
				repl = v.Body
			case *ast.ForStmt:
				repl = v.Body
			case *ast.TryStmt:
				repl = v.Block
			case *ast.LabeledStmt:
				repl = v.Body
			default:
				return "", false
			}
			if repl == nil {
				return "", false
			}
			(*l)[n] = repl
			out := ast.Print(prog)
			if _, err := parser.Parse(out); err != nil {
				return "", false
			}
			return out, true
		}
		n -= len(*l)
	}
	return "", false
}

// --- micro-benchmarks of the substrate ---

func BenchmarkInterpreterPipeline(b *testing.B) {
	src := corpus.Programs()[0]
	for i := 0; i < b.N; i++ {
		engines.Reference(src, false, engines.RunOptions{Fuel: 100000, Seed: 1})
	}
}

// BenchmarkGeneration measures whole-program generation per LM-backed
// fuzzer configuration — COMFORT's long-context generator, DeepSmith's
// short-context model, and Montage's expression sampler — contrasting the
// frozen token-ID sampler against the map-backed oracle implementation.
// tokens/sec counts sampled LM tokens (the acceptance metric; the frozen
// path's bar is ≥ 5× map). EXPERIMENTS.md records the measurements.
func BenchmarkGeneration(b *testing.B) {
	type fz struct {
		name   string
		arch   lm.Arch
		header string // "" = random corpus header, the fuzzer's own priming
	}
	fuzzersLM := []fz{
		{"COMFORT", lm.ArchGPT2, ""},
		{"DeepSmith", lm.ArchLSTM, ""},
		{"Montage", lm.ArchLSTM, "var x = "},
	}
	for _, f := range fuzzersLM {
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"frozen", false}, {"map", true}} {
			b.Run(f.name+"/"+mode.name, func(b *testing.B) {
				headers := corpus.Headers()
				g := lm.Train(corpus.Programs(), headers,
					lm.Config{Arch: f.arch, DisableFrozenLM: mode.disable})
				rng := rand.New(rand.NewSource(1))
				tokens := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					header := f.header
					if header == "" {
						header = headers[rng.Intn(len(headers))]
					}
					_, n := g.GenerateFromN(header, rng)
					tokens += n
				}
				b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tokens/sec")
			})
		}
	}
}

func BenchmarkDifferentialCase(b *testing.B) {
	tbs := engines.LatestTestbeds()
	src := corpus.Programs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DiffTest(src, tbs, 100000, 1)
	}
}
