package builtins

import (
	"testing"

	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
)

// BenchmarkNewRuntime measures realm construction — one full standard
// library install. A differential campaign builds a fresh realm for every
// physical testbed execution, so this is a direct term in campaign
// throughput; the lazy method registration exists because of it
// (EXPERIMENTS.md records the trajectory).
func BenchmarkNewRuntime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewRuntime(interp.Config{})
	}
}

// BenchmarkRuntimeFirstUse measures a realm build plus one trivial
// execution touching print — the cost a minimal program actually pays,
// including the lazily materialised globals it reaches.
func BenchmarkRuntimeFirstUse(b *testing.B) {
	prog, err := parser.Parse("print(1+2);")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewRuntime(interp.Config{})
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLazyInstallPreservesEnumerationOrder pins engine fidelity of the
// lazy builtin registration: own-property order of builtin namespace
// objects must not depend on which members a program touched first.
func TestLazyInstallPreservesEnumerationOrder(t *testing.T) {
	names := func(prelude string) string {
		in := NewRuntime(interp.Config{Fuel: 500000})
		prog, err := parser.Parse(prelude + `print(Object.getOwnPropertyNames(Math).join(","));` +
			`print(Object.getOwnPropertyNames(String.prototype).join(","));`)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Run(prog); err != nil {
			t.Fatal(err)
		}
		return in.Out.String()
	}
	cold := names("")
	warm := names(`Math.sqrt(4); "x".padStart(3); "y".charAt(0);`)
	if cold != warm {
		t.Errorf("builtin enumeration order depends on access order:\ncold: %s\nwarm: %s", cold, warm)
	}
}
