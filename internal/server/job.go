// Package server is the campaign service behind cmd/comfortd: a
// supervised, kill-resistant job queue that runs fuzzing campaigns as
// long-lived, resumable jobs. Job specs, statuses and final accounting
// live on disk as atomically-written JSON (temp + rename, the
// campaign.State discipline), so the full queue is reconstructible from
// the data directory alone — a server killed with SIGKILL at any instant
// restarts with every job's accounting intact and every unfinished job
// auto-resuming from its last checkpoint. The supervisor (supervisor.go)
// schedules queued jobs over a shared execution pool, isolates each run
// behind a recover() chokepoint, retries crashed jobs with exponential
// backoff, and quarantines jobs that exhaust their retries with the last
// error preserved. Progress streams to HTTP subscribers through bounded
// drop-oldest buffers (hub.go), so a slow or dead client can never stall
// a campaign.
package server

import (
	"encoding/json"
	"fmt"
	"sort"

	"comfort/internal/campaign"
	"comfort/internal/engines"
	"comfort/internal/faultinject"
	"comfort/internal/fuzzers"
)

// Spec is a submitted job: the finding-relevant campaign parameters plus
// throughput knobs. It is persisted verbatim at submission and never
// rewritten, so a restart rebuilds exactly the submitted campaign (the
// checkpoint fingerprint guards the finding-relevant subset).
type Spec struct {
	Fuzzer string `json:"fuzzer"`
	Cases  int    `json:"cases"`
	Seed   int64  `json:"seed"`
	Fuel   int64  `json:"fuel,omitempty"`
	// Priority orders dispatch: higher runs first, ties break by
	// submission order. Range [-100, 100]; 0 is the default.
	Priority int `json:"priority,omitempty"`
	// TestbedLimit restricts the campaign to the first N catalog testbeds
	// (a deterministic subset); 0 means the full catalog. Small limits are
	// the testing/CI shape.
	TestbedLimit int `json:"testbed_limit,omitempty"`
	// Workers is the job's own scheduler-goroutine count; the shared
	// execution gate bounds how many of them run interpreters at once
	// across all jobs. 0 means the campaign default.
	Workers   int  `json:"workers,omitempty"`
	GenShards int  `json:"gen_shards,omitempty"`
	Reduce    bool `json:"reduce_witnesses,omitempty"`
	// Oracle/ablation knobs, mirroring campaign.Config.
	DisableDedup   bool `json:"disable_dedup,omitempty"`
	DisableResolve bool `json:"disable_resolve,omitempty"`
	DisableCompile bool `json:"disable_compile,omitempty"`
	DisableShapes  bool `json:"disable_shapes,omitempty"`
	DisableAnalyze bool `json:"disable_analyze,omitempty"`
	// CheckpointEvery is the job's checkpoint cadence in cases; 0 means
	// the campaign default (256).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Faults is a faultinject spec string (testing/CI soak): injected
	// evaluator panics and hangs surface as findings, kill points make the
	// campaign die after the n-th checkpoint write — which the supervisor
	// treats exactly like a crashed job and auto-resumes.
	Faults string `json:"faults,omitempty"`
}

// Validate rejects malformed specs with an actionable message.
func (sp *Spec) Validate() error {
	if _, ok := fuzzers.ByName(sp.Fuzzer); !ok {
		return fmt.Errorf("unknown fuzzer %q", sp.Fuzzer)
	}
	if sp.Cases <= 0 {
		return fmt.Errorf("cases must be positive, got %d", sp.Cases)
	}
	if sp.Priority < -100 || sp.Priority > 100 {
		return fmt.Errorf("priority %d outside [-100, 100]", sp.Priority)
	}
	if sp.TestbedLimit < 0 || sp.TestbedLimit > len(engines.Testbeds()) {
		return fmt.Errorf("testbed_limit %d outside [0, %d]", sp.TestbedLimit, len(engines.Testbeds()))
	}
	if sp.Workers < 0 || sp.GenShards < 0 || sp.CheckpointEvery < 0 || sp.Fuel < 0 {
		return fmt.Errorf("workers/gen_shards/checkpoint_every/fuel must be non-negative")
	}
	if sp.Faults != "" {
		if _, err := faultinject.Parse(sp.Faults); err != nil {
			return err
		}
	}
	return nil
}

// testbeds resolves the spec's testbed subset.
func (sp *Spec) testbeds() []engines.Testbed {
	all := engines.Testbeds()
	if sp.TestbedLimit > 0 && sp.TestbedLimit < len(all) {
		return all[:sp.TestbedLimit]
	}
	return all
}

// Job states. The lifecycle is
//
//	queued → running → done
//	                 ↘ waiting (backoff) → queued        (bounded retries)
//	                 ↘ quarantined                       (retries exhausted
//	                                                      or permanent error)
//	queued/waiting/running → cancelled                   (operator request)
//	running → interrupted                                (graceful drain)
//
// and on startup every non-terminal state — including running, which only
// a crash can leave behind — collapses back to queued, so unfinished work
// auto-resumes from its checkpoint.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateWaiting     = "waiting"
	StateDone        = "done"
	StateQuarantined = "quarantined"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
)

// terminalState reports whether a state never transitions again.
func terminalState(s string) bool {
	return s == StateDone || s == StateQuarantined || s == StateCancelled
}

// Status is a job's supervisor-visible state, persisted atomically on
// every transition. CasesDone/Findings are live in the API and refreshed
// on transitions in the file; the authoritative accounting position is
// the job's checkpoint.
type Status struct {
	ID         string `json:"id"`
	Seq        int    `json:"seq"`
	State      string `json:"state"`
	Retries    int    `json:"retries,omitempty"`
	LastError  string `json:"last_error,omitempty"`
	CasesDone  int    `json:"cases_done"`
	CasesTotal int    `json:"cases_total"`
	Findings   int    `json:"findings,omitempty"`
	// NextRetryMS is the backoff delay scheduled when State is waiting.
	NextRetryMS int64 `json:"next_retry_ms,omitempty"`
	// UpdatedAt is wall-clock metadata (RFC3339) stamped by the injected
	// clock; empty when the supervisor runs clock-free (tests).
	UpdatedAt string `json:"updated_at,omitempty"`
	// Instance/Epoch record which instance last ran the job and under
	// which fencing epoch — multi-instance provenance (see lease.go).
	Instance string `json:"instance,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`
}

// FindingRecord is one finding in a job's final accounting, by catalog
// defect ID.
type FindingRecord struct {
	DefectID string   `json:"defect_id"`
	Verdict  string   `json:"verdict"`
	Engine   string   `json:"engine"`
	Features []string `json:"features,omitempty"`
	Flags    []string `json:"flags,omitempty"`
}

// Accounting is a completed job's deterministic result summary — the
// byte-identical half of the server's crash-recovery contract. It carries
// exactly the accounted (seed-determined) fields of campaign.Result;
// diagnostic counters like cache hits, which resuming legitimately
// changes, are deliberately excluded so the serialised accounting of a
// killed-and-resumed job is byte-identical to an uninterrupted run's.
type Accounting struct {
	Fuzzer               string          `json:"fuzzer"`
	CasesRun             int             `json:"cases_run"`
	Executed             int             `json:"executed"`
	Verdicts             map[string]int  `json:"verdicts"`
	Found                []FindingRecord `json:"found"`
	Suppressed           []FindingRecord `json:"suppressed,omitempty"`
	DuplicatesFiltered   int             `json:"duplicates_filtered"`
	UnattributedFindings int             `json:"unattributed_findings"`
	EarlyErrorCases      int             `json:"early_error_cases"`
	FlaggedNondet        int64           `json:"flagged_nondet"`
	FeatureCounts        map[string]int  `json:"feature_counts,omitempty"`
	FeaturesSeen         int             `json:"features_seen,omitempty"`
}

// accountingOf distils a campaign result into its deterministic
// accounting. Findings are rendered in defect-ID order and map keys are
// sorted by encoding/json, so equal accounting marshals to equal bytes.
func accountingOf(res *campaign.Result) *Accounting {
	a := &Accounting{
		Fuzzer:               res.FuzzerName,
		CasesRun:             res.CasesRun,
		Executed:             res.Executed,
		Verdicts:             map[string]int{},
		Found:                findingRecords(res.Found),
		Suppressed:           findingRecords(res.SuppressedNondet),
		DuplicatesFiltered:   res.DuplicatesFiltered,
		UnattributedFindings: res.UnattributedFindings,
		EarlyErrorCases:      res.EarlyErrorCases,
		FlaggedNondet:        res.FlaggedNondet,
		FeaturesSeen:         res.FeaturesSeen,
	}
	for v, n := range res.Verdicts { //detlint:order — string-keyed map output (JSON-sorted)
		a.Verdicts[v.String()] = n
	}
	if res.FeatureCounts != nil {
		a.FeatureCounts = map[string]int{}
		for name, n := range res.FeatureCounts { //detlint:order — string-keyed map output (JSON-sorted)
			a.FeatureCounts[name] = n
		}
	}
	return a
}

// marshalAccounting renders the canonical result.json bytes: indented
// JSON plus a trailing newline. Byte-identity of accounting is defined
// over this encoding.
func marshalAccounting(a *Accounting) ([]byte, error) {
	data, err := json.MarshalIndent(a, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func findingRecords(m map[string]*campaign.Finding) []FindingRecord {
	ids := make([]string, 0, len(m))
	for id := range m { //detlint:order — sorted before use below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]FindingRecord, 0, len(ids))
	for _, id := range ids {
		f := m[id]
		out = append(out, FindingRecord{
			DefectID: id, Verdict: f.Verdict.String(), Engine: f.Engine,
			Features: f.Features, Flags: f.Flags,
		})
	}
	return out
}
