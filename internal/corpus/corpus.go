// Package corpus embeds the JavaScript training data standing in for the
// paper's 140k-file GitHub corpus: realistic programs exercising the API
// surface the engines implement, the seed generation headers the language
// model is primed with, and the code fragments the assembly-based baseline
// fuzzers (CodeAlchemist, Montage, DIE) recombine.
package corpus

import "strings"

// Programs returns the embedded training programs.
func Programs() []string { return programs }

// Headers returns the seed generation headers: function openings collected
// automatically from the training programs (the paper harvests 2,000 such
// headers from its corpus) plus a hand-seeded base set.
func Headers() []string {
	seen := map[string]bool{}
	var out []string
	add := func(h string) {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range headers {
		add(h)
	}
	for _, p := range programs {
		for _, line := range strings.Split(p, "\n") {
			trimmed := strings.TrimSpace(line)
			if strings.HasSuffix(trimmed, "{") &&
				(strings.HasPrefix(trimmed, "function ") ||
					(strings.HasPrefix(trimmed, "var ") && strings.Contains(trimmed, "= function"))) {
				add(trimmed)
			}
		}
	}
	return out
}

// Joined returns the whole corpus as one training text.
func Joined() string { return strings.Join(programs, "\n<EOF>\n") + "\n<EOF>\n" }

var headers = []string{
	"var a = function(assert) {",
	"var foo = function(str) {",
	"var foo = function(size) {",
	"var foo = function(num) {",
	"var foo = function() {",
	"function foo(str, start, len) {",
	"function compute(a, b) {",
	"function process(list) {",
	"function check(value) {",
	"function main() {",
	"var run = function(input) {",
	"var helper = function(obj) {",
	"var test = function(arr) {",
	"function formatName(first, last) {",
	"function sumArray(values) {",
	"var parse = function(text) {",
	"function makeCounter() {",
	"var convert = function(n) {",
	"function find(items, target) {",
	"var validate = function(s) {",
}

var programs = []string{
	// --- string manipulation ---
	`function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var pre = "Name: ";
var len = 6;
var name = foo(s, pre.length, len);
print(name);`,

	`var foo = function(str) {
  var parts = str.split(",");
  var out = [];
  for (var i = 0; i < parts.length; i++) {
    out.push(parts[i].trim());
  }
  return out.join("|");
};
print(foo("a, b ,c"));`,

	`function formatName(first, last) {
  var full = first.charAt(0).toUpperCase() + first.slice(1);
  full = full + " " + last.toUpperCase();
  return full;
}
print(formatName("ada", "lovelace"));`,

	`var foo = function(str) {
  if (str.startsWith("http")) {
    return str.substring(7);
  }
  return str;
};
print(foo("http://example"));`,

	`var validate = function(s) {
  var trimmed = s.trim();
  if (trimmed.length === 0) {
    return "empty";
  }
  if (trimmed.indexOf(" ") !== -1) {
    return "has spaces";
  }
  return "ok";
};
print(validate("  hello  "));
print(validate("   "));`,

	`var foo = function(str) {
  var count = 0;
  for (var i = 0; i < str.length; i++) {
    if (str.charAt(i) === "a") {
      count++;
    }
  }
  return count;
};
print(foo("banana"));`,

	`var pad = function(n) {
  return String(n).padStart(2, "0");
};
print(pad(7) + ":" + pad(30));`,

	`var foo = function(text) {
  return text.replace(/\s+/g, " ").trim();
};
print(foo("  too   many    spaces "));`,

	`var parse = function(text) {
  var m = text.match(/(\d+)-(\d+)/);
  if (m) {
    return Number(m[1]) + Number(m[2]);
  }
  return 0;
};
print(parse("range 10-32 units"));`,

	`var foo = function(s) {
  return s.split("").reverse().join("");
};
print(foo("stressed"));`,

	`var repeatBar = function(n) {
  var bar = "=".repeat(n);
  return "[" + bar.padEnd(10, ".") + "]";
};
print(repeatBar(4));`,

	`var foo = function(str) {
  var lower = str.toLowerCase();
  return lower === lower.split("").reverse().join("");
};
print(foo("Level"));
print(foo("levels"));`,

	// --- arrays ---
	`var test = function(arr) {
  var total = arr.reduce(function(acc, x) { return acc + x; }, 0);
  return total / arr.length;
};
print(test([2, 4, 6, 8]));`,

	`function sumArray(values) {
  var sum = 0;
  for (var v of values) {
    sum += v;
  }
  return sum;
}
print(sumArray([1, 2, 3, 4, 5]));`,

	`var process = function(list) {
  return list.filter(function(x) { return x % 2 === 0; })
             .map(function(x) { return x * x; });
};
print(process([1, 2, 3, 4, 5, 6]));`,

	`var foo = function(size) {
  var array = new Array(size);
  while (size--) {
    array[size] = size * 2;
  }
  return array;
};
print(foo(5));`,

	`var find = function(items, target) {
  var idx = items.indexOf(target);
  if (idx < 0) {
    return "missing";
  }
  return "at " + idx;
};
print(find([5, 10, 15], 10));
print(find([5, 10, 15], 12));`,

	`var foo = function(arr) {
  var copy = arr.slice();
  copy.sort(function(a, b) { return a - b; });
  return copy[0] + "-" + copy[copy.length - 1];
};
print(foo([42, 7, 19]));`,

	`var merge = function(a, b) {
  var out = a.concat(b);
  out.splice(1, 2);
  return out;
};
print(merge([1, 2], [3, 4]));`,

	`var test = function(arr) {
  var flags = arr.map(function(x) { return x > 2; });
  return flags.some(function(f) { return f; }) && !flags.every(function(f) { return f; });
};
print(test([1, 2, 3]));`,

	`var foo = function() {
  var nested = [1, [2, [3, [4]]]];
  return nested.flat(2);
};
print(foo());`,

	`var rotate = function(arr) {
  var first = arr.shift();
  arr.push(first);
  return arr;
};
print(rotate([1, 2, 3]));`,

	`var stack = [];
stack.push(1);
stack.push(2);
stack.push(3);
var top = stack.pop();
print(top, stack.length);`,

	// --- objects ---
	`var helper = function(obj) {
  var keys = Object.keys(obj);
  keys.sort();
  var out = [];
  for (var i = 0; i < keys.length; i++) {
    out.push(keys[i] + "=" + obj[keys[i]]);
  }
  return out.join("&");
};
print(helper({b: 2, a: 1}));`,

	`var foo = function() {
  var config = Object.assign({}, {debug: false}, {debug: true, level: 3});
  return config.debug + ":" + config.level;
};
print(foo());`,

	`function Point(x, y) {
  this.x = x;
  this.y = y;
}
Point.prototype.dist = function() {
  return Math.sqrt(this.x * this.x + this.y * this.y);
};
var p = new Point(3, 4);
print(p.dist());
print(p instanceof Point);`,

	`var counter = {
  n: 0,
  inc: function() { this.n++; return this.n; }
};
counter.inc();
counter.inc();
print(counter.n);`,

	`var foo = function() {
  var frozen = Object.freeze({version: 1});
  frozen.version = 2;
  return frozen.version;
};
print(foo());`,

	`var obj = {};
Object.defineProperty(obj, "answer", {value: 42, enumerable: true});
print(obj.answer, Object.keys(obj).length);`,

	`var proto = {greet: function() { return "hi " + this.name; }};
var child = Object.create(proto);
child.name = "bob";
print(child.greet());`,

	`var foo = function(obj) {
  var total = 0;
  for (var key in obj) {
    if (obj.hasOwnProperty(key)) {
      total += obj[key];
    }
  }
  return total;
};
print(foo({a: 1, b: 2, c: 3}));`,

	// --- numbers and Math ---
	`var convert = function(n) {
  return n.toFixed(2) + " / 0x" + n.toString(16);
};
print(convert(255));`,

	`function compute(a, b) {
  var hyp = Math.sqrt(a * a + b * b);
  return Math.round(hyp * 100) / 100;
}
print(compute(3, 4));`,

	`var check = function(value) {
  if (isNaN(value)) {
    return "not a number";
  }
  if (!isFinite(value)) {
    return "infinite";
  }
  return "finite: " + value;
};
print(check(parseFloat("3.5")));
print(check(parseInt("zzz")));
print(check(1 / 0));`,

	`var clamp = function(x, lo, hi) {
  return Math.min(Math.max(x, lo), hi);
};
print(clamp(15, 0, 10), clamp(-3, 0, 10), clamp(5, 0, 10));`,

	`var foo = function(num) {
  var p = num.toFixed(1);
  return p;
};
var parameter = -634.619;
print(foo(parameter));`,

	`var stats = function(xs) {
  var max = Math.max.apply(null, xs);
  var min = Math.min.apply(null, xs);
  return max - min;
};
print(stats([3, 9, 4, 1]));`,

	`var toBits = function(n) {
  return ((n & 0xff) >>> 0).toString(2);
};
print(toBits(5), toBits(255));`,

	// --- JSON ---
	`var parse = function(text) {
  var data = JSON.parse(text);
  return data.items.length;
};
print(parse('{"items": [1, 2, 3]}'));`,

	`var foo = function(obj) {
  return JSON.stringify(obj);
};
print(foo({name: "x", tags: ["a", "b"], ok: true}));`,

	`var roundTrip = function(v) {
  return JSON.parse(JSON.stringify(v));
};
var out = roundTrip({nested: {deep: [null, false, 1.5]}});
print(out.nested.deep[2]);`,

	// --- closures, control flow, functions ---
	`function makeCounter() {
  var n = 0;
  return function() {
    n += 1;
    return n;
  };
}
var c = makeCounter();
c();
c();
print(c());`,

	`var run = function(input) {
  var result;
  switch (typeof input) {
    case "number":
      result = input * 2;
      break;
    case "string":
      result = input.length;
      break;
    default:
      result = null;
  }
  return result;
};
print(run(21), run("four"), run(true));`,

	`var safeDiv = function(a, b) {
  try {
    if (b === 0) {
      throw new RangeError("division by zero");
    }
    return a / b;
  } catch (e) {
    return e.message;
  } finally {
    // cleanup hook
  }
};
print(safeDiv(10, 2));
print(safeDiv(1, 0));`,

	`var fib = function(n) {
  if (n <= 1) return n;
  return fib(n - 1) + fib(n - 2);
};
print(fib(10));`,

	`var apply = function(f, x) {
  return f(x);
};
print(apply(function(v) { return v + 1; }, 41));`,

	`var foo = function() {
  var fns = [];
  for (var i = 0; i < 3; i++) {
    fns.push((function(j) {
      return function() { return j * 10; };
    })(i));
  }
  return fns[1]();
};
print(foo());`,

	`var compose = function(f, g) {
  return function(x) { return f(g(x)); };
};
var addOne = function(x) { return x + 1; };
var double = function(x) { return x * 2; };
print(compose(addOne, double)(5));`,

	`var memo = {};
var square = function(n) {
  if (memo[n] !== undefined) {
    return memo[n];
  }
  memo[n] = n * n;
  return memo[n];
};
square(9);
print(square(9));`,

	// --- regex ---
	`var foo = function() {
  var a = "anA".split(/n/);
  return a;
};
print(foo());`,

	`var isEmail = function(s) {
  return /^\w+@\w+\.\w+$/.test(s);
};
print(isEmail("bob@example.com"));
print(isEmail("not an email"));`,

	`var extract = function(log) {
  var re = /level=(\w+)/g;
  var m = re.exec(log);
  return m ? m[1] : "none";
};
print(extract("ts=1 level=warn msg=x"));`,

	`var count = function(s) {
  var matches = s.match(/\d+/g);
  return matches ? matches.length : 0;
};
print(count("a1 b22 c333"));`,

	// --- typed arrays and eval ---
	`var foo = function() {
  var e = "123";
  var A = new Uint8Array(5);
  A.set(e);
  return A;
};
print(foo());`,

	`var buf = new ArrayBuffer(8);
var view = new DataView(buf);
view.setUint16(0, 513, true);
print(view.getUint8(0), view.getUint8(1));`,

	`var foo = function(length) {
  var array = new Uint32Array(length);
  return array.length;
};
var parameter = 4;
print(foo(parameter));`,

	`var ints = new Int32Array([1, -2, 3]);
var total = 0;
for (var i = 0; i < ints.length; i++) {
  total += ints[i];
}
print(total);`,

	`var foo = function(cmd) {
  var value = eval(cmd);
  return value;
};
print(foo("6 * 7"));`,

	`var dynamic = function(name) {
  eval("var " + name + " = 5;");
  return eval(name + " + 1");
};
print(dynamic("tempvar"));`,

	// --- dates ---
	`var d = new Date(86400000);
print(d.getUTCFullYear(), d.getUTCMonth(), d.getUTCDate());`,

	`var elapsed = function() {
  var t0 = Date.now();
  var t1 = Date.now();
  return t1 >= t0;
};
print(elapsed());`,

	// --- misc idioms the fuzzer should learn ---
	`var config = {
  retries: 3,
  get limit() { return this.retries * 2; }
};
print(config.limit);`,

	`var tagOf = function(v) {
  return Object.prototype.toString.call(v);
};
print(tagOf([]), tagOf(null), tagOf(7));`,

	`var list = [3, 1, 2];
var labels = list.map(function(n, i) { return i + ":" + n; });
print(labels.join(" "));`,

	`var first = function(arr, pred) {
  var found = arr.find(pred);
  return found === undefined ? -1 : found;
};
print(first([4, 8, 15], function(x) { return x > 5; }));`,

	`var foo = function(str) {
  var padded = str.padStart(8);
  return "[" + padded + "]";
};
print(foo("tail"));`,

	`var swap = function(pair) {
  var tmp = pair[0];
  pair[0] = pair[1];
  pair[1] = tmp;
  return pair;
};
print(swap(["x", "y"]));`,

	`var range = function(n) {
  var out = [];
  var i = 0;
  do {
    out.push(i);
    i++;
  } while (i < n);
  return out;
};
print(range(4));`,

	`var foo = function(n) {
  var label = n > 0 ? "pos" : n < 0 ? "neg" : "zero";
  return label;
};
print(foo(3), foo(-3), foo(0));`,
}

// Fragments splits the corpus into statement-level code bricks for the
// assembly-based baseline fuzzers.
func Fragments() []string {
	var out []string
	for _, p := range programs {
		for _, line := range strings.Split(p, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "//") {
				continue
			}
			out = append(out, line)
		}
	}
	return out
}
