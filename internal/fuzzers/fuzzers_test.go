package fuzzers

import (
	"math/rand"
	"testing"
	"unicode/utf8"

	"comfort/internal/js/lint"
)

func TestAllFuzzersProduceCases(t *testing.T) {
	for _, f := range All() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			total, valid := 0, 0
			for i := 0; i < 25; i++ {
				for _, src := range f.Next(rng) {
					if src == "" {
						t.Fatal("empty test case")
					}
					total++
					if lint.Valid(src) {
						valid++
					}
				}
			}
			if total == 0 {
				t.Fatal("no cases produced")
			}
			// Every strategy must produce a usable share of parseable code
			// (DeepSmith's short-context model sits lowest, near the
			// paper's ~31% LSTM rate).
			if float64(valid)/float64(total) < 0.1 {
				t.Errorf("validity too low: %d/%d", valid, total)
			}
			t.Logf("%s: %d cases, %d valid", f.Name(), total, valid)
		})
	}
}

func TestFuzzerDeterminism(t *testing.T) {
	for _, mk := range []func() Fuzzer{
		func() Fuzzer { return NewDIE() },
		func() Fuzzer { return NewFuzzilli() },
		func() Fuzzer { return NewCodeAlchemist() },
	} {
		a := mk()
		b := mk()
		ra, rb := rand.New(rand.NewSource(5)), rand.New(rand.NewSource(5))
		for i := 0; i < 10; i++ {
			ca, cb := a.Next(ra), b.Next(rb)
			if len(ca) != len(cb) {
				t.Fatalf("%s: nondeterministic batch size", a.Name())
			}
			for j := range ca {
				if ca[j] != cb[j] {
					t.Fatalf("%s: nondeterministic output", a.Name())
				}
			}
		}
	}
}

// TestForkableSet pins which fuzzers opt into sharded generation: the
// pure-per-batch strategies fork, the corpus-evolving strategy classes
// (DIE, Montage) stay on the campaign's serial path.
func TestForkableSet(t *testing.T) {
	want := map[string]bool{
		"COMFORT": true, "DeepSmith": true, "Fuzzilli": true,
		"CodeAlchemist": true, "DIE": false, "Montage": false,
	}
	for _, f := range All() {
		_, forkable := f.(Forkable)
		if forkable != want[f.Name()] {
			t.Errorf("%s: Forkable=%v, want %v", f.Name(), forkable, want[f.Name()])
		}
	}
}

// TestForkPurity is the contract behind shard-count-independent campaign
// streams: for every Forkable fuzzer, any fork fed a fresh RNG seeded for
// batch j must emit exactly the batch the parent emits for that seed —
// regardless of which fork runs which batch, and regardless of how many
// batches the fork has produced before.
func TestForkPurity(t *testing.T) {
	for _, f := range All() {
		forkable, ok := f.(Forkable)
		if !ok {
			continue
		}
		t.Run(f.Name(), func(t *testing.T) {
			want := make([][]string, 12)
			for j := range want {
				want[j] = f.Next(rand.New(rand.NewSource(int64(100 + j))))
			}
			a, b := forkable.Fork(1), forkable.Fork(2)
			// Interleave the batches across the two forks out of order.
			order := []int{7, 0, 11, 3, 1, 10, 2, 9, 4, 8, 5, 6}
			for i, j := range order {
				fz := a
				if i%2 == 1 {
					fz = b
				}
				got := fz.Next(rand.New(rand.NewSource(int64(100 + j))))
				if len(got) != len(want[j]) {
					t.Fatalf("batch %d: fork emitted %d cases, parent %d", j, len(got), len(want[j]))
				}
				for k := range got {
					if got[k] != want[j][k] {
						t.Fatalf("batch %d case %d: fork output differs from parent", j, k)
					}
				}
			}
		})
	}
}

// TestForkConcurrent drives four forks of each Forkable fuzzer from four
// goroutines at once (the campaign's shard shape) — the race detector
// guards the shared trained state, and the merged per-batch outputs must
// match a serial replay.
func TestForkConcurrent(t *testing.T) {
	for _, f := range All() {
		forkable, ok := f.(Forkable)
		if !ok {
			continue
		}
		t.Run(f.Name(), func(t *testing.T) {
			const shards, batches = 4, 16
			got := make([][]string, batches)
			done := make(chan struct{})
			for s := 0; s < shards; s++ {
				go func(s int, fz Fuzzer) {
					defer func() { done <- struct{}{} }()
					for j := s; j < batches; j += shards {
						got[j] = fz.Next(rand.New(rand.NewSource(int64(j))))
					}
				}(s, forkable.Fork(int64(s)))
			}
			for s := 0; s < shards; s++ {
				<-done
			}
			for j := 0; j < batches; j++ {
				want := f.Next(rand.New(rand.NewSource(int64(j))))
				if len(got[j]) != len(want) {
					t.Fatalf("batch %d: concurrent shard emitted %d cases, serial %d",
						j, len(got[j]), len(want))
				}
				for k := range want {
					if got[j][k] != want[k] {
						t.Fatalf("batch %d case %d: concurrent output differs from serial", j, k)
					}
				}
			}
		})
	}
}

// The baselines deliberately emit a share of syntactically invalid output
// (the paper's Figure 9 measures all of them below a 60% passing rate), so
// their validity is checked as a band, not a guarantee.
func TestBaselineValidityBands(t *testing.T) {
	for _, mk := range []func() Fuzzer{
		func() Fuzzer { return NewFuzzilli() },
		func() Fuzzer { return NewCodeAlchemist() },
		func() Fuzzer { return NewDIE() },
	} {
		f := mk()
		rng := rand.New(rand.NewSource(2))
		valid, total := 0, 0
		for i := 0; i < 300; i++ {
			for _, src := range f.Next(rng) {
				total++
				if lint.Valid(src) {
					valid++
				}
			}
		}
		rate := float64(valid) / float64(total)
		if rate < 0.35 || rate > 0.75 {
			t.Errorf("%s validity %.2f outside the Figure-9 band [0.35, 0.75]", f.Name(), rate)
		}
	}
}

// TestFirstExprLine is the regression test for the Montage sampleExpr
// off-by-one: a neural sample starting with ';' or a newline must yield an
// empty candidate (→ pool fallback), not the entire multi-line raw string.
func TestFirstExprLine(t *testing.T) {
	cases := map[string]string{
		";var y = 2\nprint(y)":  "",
		"\nvar y = 2\nprint(y)": "",
		"a + b;rest":            "a + b",
		"a + b\nrest":           "a + b",
		"plain":                 "plain",
		"":                      "",
	}
	for in, want := range cases {
		if got := firstExprLine(in); got != want {
			t.Errorf("firstExprLine(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestMineBrickScoping is the regression test for the CodeAlchemist def/use
// unsoundness: names bound only inside nested functions must not count as
// brick-wide defines, hoisted declarations must, and nested-scope vars must
// not leak into defines.
func TestMineBrickScoping(t *testing.T) {
	has := func(xs []string, n string) bool {
		for _, x := range xs {
			if x == n {
				return true
			}
		}
		return false
	}

	// z is a param of the nested function; the trailing z is free in the
	// brick. The walk-order analysis treated the outer z as defined.
	b, ok := mineBrick(`var r = [function(z) { return z; }, z];`)
	if !ok {
		t.Fatal("brick not mined")
	}
	if !has(b.uses, "z") {
		t.Errorf("outer z must be a use (param z is function-local): uses=%v", b.uses)
	}
	if !has(b.defines, "r") {
		t.Errorf("r must be a define: defines=%v", b.defines)
	}

	// inner is declared inside the nested function body: neither a define
	// of the brick nor a use.
	b, ok = mineBrick(`var g = function() { var inner = 1; return inner; };`)
	if !ok {
		t.Fatal("brick not mined")
	}
	if has(b.defines, "inner") {
		t.Errorf("nested var must not be a brick define: defines=%v", b.defines)
	}
	if has(b.uses, "inner") {
		t.Errorf("nested var is bound locally, not a use: uses=%v", b.uses)
	}

	// w is used before its var in pre-order; hoisting makes it a define,
	// not a free use.
	b, ok = mineBrick(`if (w) { print(w); } else { var w = 1; }`)
	if !ok {
		t.Fatal("brick not mined")
	}
	if has(b.uses, "w") {
		t.Errorf("hoisted w must not be a use: uses=%v", b.uses)
	}
	if !has(b.defines, "w") {
		t.Errorf("hoisted w must be a define: defines=%v", b.defines)
	}

	// Function declarations define their name; params stay local.
	b, ok = mineBrick(`function f(p) { return p + q; }`)
	if !ok {
		t.Fatal("brick not mined")
	}
	if !has(b.defines, "f") || has(b.defines, "p") {
		t.Errorf("f defines, p does not: defines=%v", b.defines)
	}
	if !has(b.uses, "q") || has(b.uses, "p") {
		t.Errorf("q is free, p is not: uses=%v", b.uses)
	}
}

// TestCodeAlchemistBricksSound checks the assembled-program property behind
// the fix: every mined brick's uses are exactly the free identifiers, so a
// program assembled under the def-use constraint never references an
// undefined name at the point of placement.
func TestCodeAlchemistBricksSound(t *testing.T) {
	c := NewCodeAlchemist()
	if len(c.bricks) == 0 {
		t.Fatal("no bricks mined")
	}
	for _, b := range c.bricks {
		seen := map[string]bool{}
		for _, u := range b.uses {
			if isGlobalName(u) {
				t.Errorf("brick %q uses global %q (should be filtered)", b.src, u)
			}
			if seen[u] {
				t.Errorf("brick %q duplicates use %q", b.src, u)
			}
			seen[u] = true
		}
	}
}

// TestTextCorruptRuneSafe is the regression test for mid-rune slicing:
// corrupted output must remain valid UTF-8 whenever the input is.
func TestTextCorruptRuneSafe(t *testing.T) {
	src := `var s = "héllo wörld — ünïcode ΩΩΩ 日本語"; print(s + "…");`
	if !utf8.ValidString(src) {
		t.Fatal("test input must be valid UTF-8")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		out := textCorrupt(src, rng, 1.0)
		if !utf8.ValidString(out) {
			t.Fatalf("iteration %d produced invalid UTF-8: %q", i, out)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"COMFORT", "deepsmith", "Fuzzilli", "CodeAlchemist", "DIE", "montage"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown fuzzer resolved")
	}
}
