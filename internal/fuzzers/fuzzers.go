// Package fuzzers implements COMFORT plus faithful-in-kind reimplementations
// of the five baseline fuzzers the paper compares against (Figure 8/9):
// DeepSmith (short-context neural generation), Fuzzilli (typed-IL mutation
// with lifting), CodeAlchemist (constraint-respecting code-brick assembly),
// DIE (aspect-preserving seed mutation) and Montage (neural AST-subtree
// replacement).
package fuzzers

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"unicode/utf8"

	"comfort/internal/corpus"
	"comfort/internal/gen"
	"comfort/internal/js/ast"
	"comfort/internal/js/parser"
	"comfort/internal/lm"
	"comfort/internal/spec"
	"comfort/internal/testgen"
)

// Fuzzer produces test-case sources.
type Fuzzer interface {
	Name() string
	// Next returns the next batch of test cases (a generated program plus
	// any derived data-mutated variants).
	Next(rng *rand.Rand) []string
}

// Forkable marks fuzzers whose Next is a pure function of the rng passed
// in — no internal state evolves across calls — so a campaign may run
// several generator shards concurrently, each shard deriving its batches'
// RNGs from (campaign seed, batch index). Fork returns an independent
// handle for one shard; forks share the expensive immutable state (trained
// models, mined bricks, seed pools) and must be safe to drive from
// different goroutines. shardSeed is entropy for any shard-local scratch a
// future implementation needs; the current pure fuzzers ignore it.
//
// Fuzzers whose strategy is inherently sequential — DIE's class grows a
// mutation corpus from its own output and Montage's subtree inventory
// evolves with the seeds it has consumed — do not implement Forkable and
// automatically stay on the campaign's serial generation path.
type Forkable interface {
	Fuzzer
	Fork(shardSeed int64) Fuzzer
}

// LMOptions configures the LM-backed fuzzers' generators.
type LMOptions struct {
	// DisableFrozenLM keeps generation on the map-backed string sampler
	// instead of the frozen token-ID model — the differential-oracle knob
	// mirroring campaign.Config.DisableResolve.
	DisableFrozenLM bool
}

// All instantiates the six fuzzers of the paper's comparison.
func All() []Fuzzer {
	return []Fuzzer{
		NewComfort(), NewDIE(), NewFuzzilli(), NewMontage(), NewDeepSmith(), NewCodeAlchemist(),
	}
}

// ByName resolves a fuzzer.
func ByName(name string) (Fuzzer, bool) {
	for _, f := range All() {
		if strings.EqualFold(f.Name(), name) {
			return f, true
		}
	}
	return nil, false
}

// ---------- COMFORT ----------

// Comfort couples the GPT-2-substitute generator with ECMA-262-guided data
// generation (the full pipeline of the paper's Figure 3).
type Comfort struct {
	pipeline *gen.Pipeline
	db       *spec.DB
}

// NewComfort trains the generator on the embedded corpus.
func NewComfort() *Comfort { return NewComfortLM(LMOptions{}) }

// comfortLM holds the process-wide default-configuration generator. The
// embedded corpus is immutable and a trained Generator is read-only after
// construction (Fork already shares it across campaign shards), so every
// default-config Comfort in the process can share one training run —
// repeated campaign construction (CLI re-runs in one process, the
// throughput benchmarks, test suites) stops paying BPE + n-gram training
// per instance.
var comfortLM struct {
	once sync.Once
	g    *lm.Generator
}

// NewComfortLM trains COMFORT with an explicit LM configuration.
func NewComfortLM(o LMOptions) *Comfort {
	var g *lm.Generator
	if o == (LMOptions{}) {
		comfortLM.once.Do(func() {
			comfortLM.g = lm.Train(corpus.Programs(), corpus.Headers(),
				lm.Config{Arch: lm.ArchGPT2})
		})
		g = comfortLM.g
	} else {
		g = lm.Train(corpus.Programs(), corpus.Headers(),
			lm.Config{Arch: lm.ArchGPT2, DisableFrozenLM: o.DisableFrozenLM})
	}
	return &Comfort{pipeline: gen.New(g), db: spec.Default()}
}

// Name implements Fuzzer.
func (c *Comfort) Name() string { return "COMFORT" }

// Fork implements Forkable: Next reads only the trained pipeline and the
// spec database, both immutable after construction, so shards share them.
func (c *Comfort) Fork(shardSeed int64) Fuzzer {
	return &Comfort{pipeline: c.pipeline.Fork(), db: c.db}
}

// Next generates a program and its spec-guided data variants.
func (c *Comfort) Next(rng *rand.Rand) []string {
	p := c.pipeline.Next(rng)
	out := []string{p.Source}
	if p.Valid {
		for _, v := range testgen.Mutate(p.Source, c.db, rng, testgen.Options{MaxVariants: 8, RandomExtra: 3}) {
			out = append(out, v.Source)
		}
	}
	return out
}

// GenerateOnly returns just the LM output (used by the quality metrics,
// which evaluate program generation in isolation).
func (c *Comfort) GenerateOnly(rng *rand.Rand) string { return c.pipeline.Gen.Generate(rng) }

// ---------- DeepSmith ----------

// DeepSmith is the LSTM-based generative baseline: same corpus, short
// context, no specification guidance.
type DeepSmith struct {
	gen *lm.Generator
}

// NewDeepSmith trains the short-context model.
func NewDeepSmith() *DeepSmith { return NewDeepSmithLM(LMOptions{}) }

// NewDeepSmithLM trains DeepSmith with an explicit LM configuration.
func NewDeepSmithLM(o LMOptions) *DeepSmith {
	return &DeepSmith{gen: lm.Train(corpus.Programs(), corpus.Headers(),
		lm.Config{Arch: lm.ArchLSTM, DisableFrozenLM: o.DisableFrozenLM})}
}

// Name implements Fuzzer.
func (d *DeepSmith) Name() string { return "DeepSmith" }

// Fork implements Forkable: the trained generator is immutable and
// sampling is read-only, so shards share it.
func (d *DeepSmith) Fork(shardSeed int64) Fuzzer { return &DeepSmith{gen: d.gen} }

// Next implements Fuzzer.
func (d *DeepSmith) Next(rng *rand.Rand) []string {
	return []string{d.gen.Generate(rng)}
}

// ---------- DIE ----------

// DIE mutates corpus seeds while preserving their "aspects": the structure
// and the types of literals are kept, only the values change.
type DIE struct {
	seeds      []string
	numberPool []float64
	stringPool []string
}

// NewDIE uses the embedded corpus as its seed pool (the paper feeds the
// baselines their publication seed sets; ours share the corpus so the
// comparison isolates strategy, not data). Replacement values are harvested
// from the corpus itself — DIE's aspect-preserving mutation reuses values
// observed in other seeds rather than inventing boundary probes.
func NewDIE() *DIE {
	d := &DIE{seeds: corpus.Programs()}
	seenN := map[float64]bool{}
	seenS := map[string]bool{}
	for _, p := range d.seeds {
		prog, err := parser.Parse(p)
		if err != nil {
			continue
		}
		ast.Walk(prog, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.NumberLit:
				if !seenN[v.Value] {
					seenN[v.Value] = true
					d.numberPool = append(d.numberPool, v.Value)
				}
			case *ast.StringLit:
				if !seenS[v.Value] && len(v.Value) < 24 {
					seenS[v.Value] = true
					d.stringPool = append(d.stringPool, v.Value)
				}
			}
			return true
		})
	}
	return d
}

// Name implements Fuzzer.
func (d *DIE) Name() string { return "DIE" }

// Next implements Fuzzer.
func (d *DIE) Next(rng *rand.Rand) []string {
	seed := d.seeds[rng.Intn(len(d.seeds))]
	prog, err := parser.Parse(seed)
	if err != nil {
		return []string{seed}
	}
	d.mutateLiterals(prog, rng)
	return []string{textCorrupt(ast.Print(prog), rng, 0.45)}
}

// mutateLiterals performs the aspect-preserving value mutation using the
// corpus-harvested value pools.
func (d *DIE) mutateLiterals(prog *ast.Program, rng *rand.Rand) {
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.NumberLit:
			if rng.Intn(3) == 0 && len(d.numberPool) > 0 {
				v.Value = d.numberPool[rng.Intn(len(d.numberPool))]
				v.Raw = ""
			}
		case *ast.StringLit:
			if rng.Intn(3) == 0 && len(d.stringPool) > 0 {
				v.Value = d.stringPool[rng.Intn(len(d.stringPool))]
			}
		case *ast.BoolLit:
			if rng.Intn(3) == 0 {
				v.Value = !v.Value
			}
		}
		return true
	})
}

// ---------- CodeAlchemist ----------

// CodeAlchemist assembles test cases from corpus code bricks under def-use
// constraints: a brick is only placed when the variables it uses are
// already defined.
type CodeAlchemist struct {
	bricks []brick
}

type brick struct {
	src     string
	defines []string
	uses    []string
}

// NewCodeAlchemist mines bricks from the corpus.
func NewCodeAlchemist() *CodeAlchemist {
	var bricks []brick
	for _, frag := range corpus.Fragments() {
		b, ok := mineBrick(frag)
		if ok {
			bricks = append(bricks, b)
		}
	}
	return &CodeAlchemist{bricks: bricks}
}

// mineBrick parses a fragment as a statement and extracts its def/use
// sets with proper scoping: defines are the names the brick hoists into
// the scope it is placed in (top-level var/function declarations, all of
// them hoisted regardless of pre-order position), and uses are the free
// identifiers — names bound only inside a nested function do NOT leak
// into the brick-wide environment. A flat walk-order analysis treats such
// inner bindings as brick-wide defines, so assembled programs "use"
// variables that were never defined, inflating invalid output beyond the
// modeled textCorrupt rate.
func mineBrick(frag string) (brick, bool) {
	prog, err := parser.Parse(frag)
	if err != nil || len(prog.Body) != 1 {
		return brick{}, false
	}
	b := brick{src: frag}
	top := &scope{bound: map[string]bool{}}
	b.defines = hoistedBindings(prog, top.bound)
	seenUse := map[string]bool{}
	freeIdents(prog, top, func(name string) {
		if !seenUse[name] {
			seenUse[name] = true
			b.uses = append(b.uses, name)
		}
	})
	return b, true
}

// scope is one function (or catch) scope in a brick's binding chain.
type scope struct {
	bound  map[string]bool
	parent *scope
}

func (s *scope) has(name string) bool {
	for c := s; c != nil; c = c.parent {
		if c.bound[name] {
			return true
		}
	}
	return false
}

// hoistedBindings collects the names bound in the function scope rooted at
// n — var/let/const declarators, for-in declarations and function
// declarations — without descending into nested function bodies. It fills
// bound and returns the names in first-appearance order.
func hoistedBindings(n ast.Node, bound map[string]bool) []string {
	var names []string
	add := func(name string) {
		if name != "" && !bound[name] {
			bound[name] = true
			names = append(names, name)
		}
	}
	ast.Walk(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.VarDecl:
			for _, d := range v.Decls {
				add(d.Name)
			}
		case *ast.ForInStmt:
			if v.Decl >= 0 {
				add(v.Name)
			}
		case *ast.FuncDecl:
			if v.Fn != nil {
				add(v.Fn.Name)
			}
			return false // the body is a nested scope
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return names
}

// freeIdents reports every identifier not bound by any enclosing scope
// within the brick (and not a well-known global). Function literals open a
// child scope holding their params, own name and hoisted body bindings;
// catch clauses scope their parameter over the catch block only.
func freeIdents(n ast.Node, sc *scope, report func(string)) {
	switch v := n.(type) {
	case *ast.FuncLit:
		inner := map[string]bool{}
		for _, p := range v.Params {
			inner[p] = true
		}
		if v.Rest != "" {
			inner[v.Rest] = true
		}
		if v.Name != "" {
			inner[v.Name] = true
		}
		if v.Body != nil {
			hoistedBindings(v.Body, inner)
		}
		child := &scope{bound: inner, parent: sc}
		for _, c := range ast.Children(v) {
			freeIdents(c, child, report)
		}
		return
	case *ast.TryStmt:
		freeIdents(v.Block, sc, report)
		if v.Catch != nil {
			cs := sc
			if v.CatchParam != "" {
				cs = &scope{bound: map[string]bool{v.CatchParam: true}, parent: sc}
			}
			freeIdents(v.Catch, cs, report)
		}
		if v.Finally != nil {
			freeIdents(v.Finally, sc, report)
		}
		return
	case *ast.ForInStmt:
		if v.Decl < 0 && !sc.has(v.Name) && !isGlobalName(v.Name) {
			report(v.Name)
		}
	case *ast.Ident:
		if !sc.has(v.Name) && !isGlobalName(v.Name) {
			report(v.Name)
		}
		return
	}
	for _, c := range ast.Children(n) {
		freeIdents(c, sc, report)
	}
}

// runeStart snaps a byte index back to the start of the rune containing
// it, so corruption cuts never split a UTF-8 sequence. Byte-index cuts
// that produce invalid UTF-8 model encoding corruption, a different
// failure class than the intended mis-bracketing/truncation.
func runeStart(src string, i int) int {
	for i > 0 && !utf8.RuneStart(src[i]) {
		i--
	}
	return i
}

// textCorrupt models the syntactically invalid share of the baselines'
// output. The paper's Figure 9 measures every baseline below a 60% syntax
// passing rate: mutational pipelines splice fragments across incompatible
// contexts and emit truncated or mis-bracketed programs at these rates.
// With probability p the source suffers one such splice error. All cut
// points are rune-aligned: the corrupted output is valid UTF-8 whenever
// the input is.
func textCorrupt(src string, rng *rand.Rand, p float64) string {
	if rng.Float64() >= p || len(src) < 8 {
		return src
	}
	switch rng.Intn(4) {
	case 0: // truncate mid-program
		return src[:runeStart(src, 4+rng.Intn(len(src)-6))]
	case 1: // drop a random brace/paren (ASCII, so always a whole rune)
		for attempt := 0; attempt < 20; attempt++ {
			i := rng.Intn(len(src))
			if strings.ContainsRune("{}()", rune(src[i])) {
				return src[:i] + src[i+1:]
			}
		}
		return src[:runeStart(src, len(src)-1)]
	case 2: // duplicate a random operator
		ops := []string{"+", "=", ")", "{", ","}
		op := ops[rng.Intn(len(ops))]
		i := runeStart(src, rng.Intn(len(src)))
		return src[:i] + op + op + src[i:]
	default: // splice an incompatible fragment
		frag := []string{"} else {", "case 1:", ") => {", "var = ", "..."}[rng.Intn(5)]
		i := runeStart(src, rng.Intn(len(src)))
		return src[:i] + frag + src[i:]
	}
}

var globalNames = map[string]bool{
	"print": true, "Math": true, "JSON": true, "Object": true, "Array": true,
	"String": true, "Number": true, "Boolean": true, "Date": true,
	"RegExp": true, "parseInt": true, "parseFloat": true, "isNaN": true,
	"isFinite": true, "undefined": true, "NaN": true, "Infinity": true,
	"eval": true, "Error": true, "TypeError": true, "RangeError": true,
	"SyntaxError": true, "ReferenceError": true, "Uint8Array": true,
	"Int8Array": true, "Uint16Array": true, "Int16Array": true,
	"Uint32Array": true, "Int32Array": true, "Float32Array": true,
	"Float64Array": true, "ArrayBuffer": true, "DataView": true,
	"globalThis": true, "console": true, "arguments": true, "this": true,
	"Uint8ClampedArray": true, "Function": true, "EvalError": true,
}

func isGlobalName(n string) bool { return globalNames[n] }

// Name implements Fuzzer.
func (c *CodeAlchemist) Name() string { return "CodeAlchemist" }

// Fork implements Forkable: brick assembly reads the mined brick set and
// nothing else, so shards share it.
func (c *CodeAlchemist) Fork(shardSeed int64) Fuzzer {
	return &CodeAlchemist{bricks: c.bricks}
}

// Next implements Fuzzer.
func (c *CodeAlchemist) Next(rng *rand.Rand) []string {
	defined := map[string]bool{}
	var lines []string
	want := 3 + rng.Intn(6)
	attempts := 0
	for len(lines) < want && attempts < 200 {
		attempts++
		b := c.bricks[rng.Intn(len(c.bricks))]
		ok := true
		for _, u := range b.uses {
			if !defined[u] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		lines = append(lines, b.src)
		for _, d := range b.defines {
			defined[d] = true
		}
	}
	body := strings.Join(lines, "\n")
	out := fmt.Sprintf("var v0 = (function() {\n%s\n});\nv0();\n", body)
	return []string{textCorrupt(out, rng, 0.42)}
}

// ---------- Montage ----------

// Montage replaces a random expression subtree of a corpus seed with a
// fragment produced by the short-context neural model (the paper's
// LSTM-guided AST mutation).
type Montage struct {
	seeds []string
	gen   *lm.Generator
}

// NewMontage trains the subtree model. Montage stays off the Forkable
// sharded path by design: the strategy class it models maintains an
// evolving AST-subtree inventory, so the campaign keeps it serial.
func NewMontage() *Montage { return NewMontageLM(LMOptions{}) }

// NewMontageLM trains Montage with an explicit LM configuration.
func NewMontageLM(o LMOptions) *Montage {
	return &Montage{
		seeds: corpus.Programs(),
		gen: lm.Train(corpus.Programs(), corpus.Headers(),
			lm.Config{Arch: lm.ArchLSTM, DisableFrozenLM: o.DisableFrozenLM}),
	}
}

// Name implements Fuzzer.
func (m *Montage) Name() string { return "Montage" }

// exprPool is the neutral fragment inventory Montage splices in when the
// neural sample fails to parse as an expression.
var exprPool = []string{
	"v1", "20", "typeof v1", "x + 1", "arr.length",
	"Math.random()", "[1, 2, 5]", "obj[key]",
	"(function v1() { return typeof v1; }())",
}

// Next implements Fuzzer.
func (m *Montage) Next(rng *rand.Rand) []string {
	seed := m.seeds[rng.Intn(len(m.seeds))]
	prog, err := parser.Parse(seed)
	if err != nil {
		return []string{seed}
	}
	// Collect replaceable expression slots: call arguments and declaration
	// initialisers.
	type slot struct {
		set func(ast.Expr)
	}
	var slots []slot
	ast.Walk(prog, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			for i := range v.Args {
				i := i
				c := v
				slots = append(slots, slot{set: func(e ast.Expr) { c.Args[i] = e }})
			}
		case *ast.VarDecl:
			for i := range v.Decls {
				if v.Decls[i].Init != nil {
					i := i
					d := v
					slots = append(slots, slot{set: func(e ast.Expr) { d.Decls[i].Init = e }})
				}
			}
		}
		return true
	})
	if len(slots) == 0 {
		return []string{seed}
	}
	repl := m.sampleExpr(rng)
	slots[rng.Intn(len(slots))].set(repl)
	out := ast.Print(prog)
	if _, err := parser.Parse(out); err != nil {
		return []string{seed}
	}
	return []string{textCorrupt(out, rng, 0.40)}
}

// firstExprLine truncates a neural sample at the first statement
// terminator. A sample starting with ';' or a newline must yield the empty
// fragment (which then fails to parse and falls back to the pool) — with
// the old `i > 0` test such samples kept the entire multi-line raw string
// as the candidate expression.
func firstExprLine(raw string) string {
	if i := strings.IndexAny(raw, ";\n"); i >= 0 {
		raw = raw[:i]
	}
	return raw
}

// sampleExpr asks the neural model for a fragment and falls back to the
// curated pool when the sample does not parse.
func (m *Montage) sampleExpr(rng *rand.Rand) ast.Expr {
	raw := m.gen.GenerateFrom("var x = ", rng)
	raw = firstExprLine(strings.TrimPrefix(raw, "var x = "))
	if e, err := parser.ParseExprString(raw); err == nil {
		return e
	}
	e, err := parser.ParseExprString(exprPool[rng.Intn(len(exprPool))])
	if err != nil {
		e, _ = parser.ParseExprString("0")
	}
	return e
}
