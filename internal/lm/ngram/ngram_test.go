package ngram

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSampleFollowsCounts(t *testing.T) {
	m := New(2)
	m.Train(strings.Fields("a b c a b d a b c"))
	rng := rand.New(rand.NewSource(1))
	// After "a b" the continuations are c (2) and d (1).
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		tok, ok := m.Sample([]string{"a", "b"}, 10, rng)
		if !ok {
			t.Fatal("sample failed")
		}
		seen[tok]++
	}
	// Sampling is uniform among the top-k (the paper's sampling scheme), so
	// both observed continuations must appear; nothing else may.
	if seen["c"] == 0 || seen["d"] == 0 {
		t.Errorf("both continuations should appear: %v", seen)
	}
	if len(seen) != 2 {
		t.Errorf("only observed continuations may be sampled: %v", seen)
	}
}

func TestBackoff(t *testing.T) {
	m := New(3)
	m.Train(strings.Fields("x y z w"))
	rng := rand.New(rand.NewSource(2))
	// Unseen long context must back off to shorter suffixes.
	tok, ok := m.Sample([]string{"q", "q", "z"}, 10, rng)
	if !ok || tok != "w" {
		t.Errorf("backoff: got %q ok=%v", tok, ok)
	}
}

func TestEmptyModel(t *testing.T) {
	m := New(2)
	rng := rand.New(rand.NewSource(3))
	if _, ok := m.Sample([]string{"a"}, 10, rng); ok {
		t.Error("untrained model must fail to sample")
	}
}

func TestTopKRestriction(t *testing.T) {
	// 20 distinct continuations with frequencies 21..1.
	m2 := New(1)
	for i := 0; i < 20; i++ {
		for j := 0; j <= 20-i; j++ {
			m2.Train([]string{"ctx", string(rune('a' + i))})
		}
	}
	rng := rand.New(rand.NewSource(4))
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		tok, _ := m2.Sample([]string{"ctx"}, 3, rng)
		seen[tok] = true
	}
	if len(seen) > 3 {
		t.Errorf("top-3 sampling drew %d distinct tokens: %v", len(seen), seen)
	}
}

func TestDeterminism(t *testing.T) {
	m := New(4)
	m.Train(strings.Fields("the quick brown fox jumps over the lazy dog the quick brown cat"))
	a := sampleSeq(m, 42)
	b := sampleSeq(m, 42)
	if a != b {
		t.Errorf("sampling not deterministic: %q vs %q", a, b)
	}
}

func sampleSeq(m *Model, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	ctx := []string{"the"}
	var out []string
	for i := 0; i < 10; i++ {
		tok, ok := m.Sample(ctx, 10, rng)
		if !ok {
			break
		}
		out = append(out, tok)
		ctx = append(ctx, tok)
	}
	return strings.Join(out, " ")
}
