package engines

import (
	"strings"
	"testing"

	"comfort/internal/js/interp"
)

// TestInjectedPanicBecomesCrashResult pins the panic-isolation contract:
// an injected evaluator panic never escapes — it surfaces as a classified,
// deterministic crash result.
func TestInjectedPanicBecomesCrashResult(t *testing.T) {
	tb := ReferenceTestbed(false)
	opts := RunOptions{Fuel: 100000, Seed: 1, InjectPanic: true}
	r := tb.Run(`print(1);`, opts)
	if r.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v, want crash", r.Outcome)
	}
	if !r.Panic || r.ErrName != "panic" {
		t.Errorf("crash not marked as recovered panic: %+v", r)
	}
	if !strings.Contains(r.Error, "injected evaluator panic") {
		t.Errorf("panic message lost: %q", r.Error)
	}
	again := tb.Run(`print(1);`, opts)
	if r.Key() != again.Key() || r.Error != again.Error || r.Output != again.Output {
		t.Errorf("recovered panic not deterministic:\n%+v\nvs\n%+v", r, again)
	}
}

// TestHookPanicRecoveredMidRun: a panic from deep inside a real execution
// (a defect hook here, standing in for an evaluator bug) is recovered with
// the partial output and fuel reading intact.
func TestHookPanicRecoveredMidRun(t *testing.T) {
	d := &Defect{
		ID: "TEST-PANIC", Engine: "Test",
		Hook: func(ctx *interp.HookCtx) *interp.Override {
			if ctx.Site == interp.HookBuiltin && ctx.Name == "Array.prototype.push" {
				panic("synthetic evaluator bug")
			}
			return nil
		},
	}
	src := `print("before"); var a = []; a.push(1); print("after");`
	r := RunWithDefect(d, src, false, RunOptions{Fuel: 100000, Seed: 1})
	if r.Outcome != OutcomeCrash || !r.Panic {
		t.Fatalf("hook panic not classified as crash: %+v", r)
	}
	if !strings.Contains(r.Output, "before") || strings.Contains(r.Output, "after") {
		t.Errorf("partial output not captured: %q", r.Output)
	}
	if !strings.Contains(r.Error, "synthetic evaluator bug") {
		t.Errorf("panic value lost: %q", r.Error)
	}
	if r.FuelUsed == 0 {
		t.Error("fuel reading lost on recovered panic")
	}
	again := RunWithDefect(d, src, false, RunOptions{Fuel: 100000, Seed: 1})
	if r.Key() != again.Key() || r.Output != again.Output || r.FuelUsed != again.FuelUsed {
		t.Errorf("recovered mid-run panic not deterministic")
	}
}

// TestWatchdogTimeoutClassified: a firing watchdog surfaces as a timeout
// result with the WallClock marker (the classifier treats it as deviant
// unconditionally, unlike fuel timeouts).
func TestWatchdogTimeoutClassified(t *testing.T) {
	probes := 0
	r := ReferenceTestbed(false).Run(`while (true) {}`, RunOptions{
		Fuel: 100 * interp.WatchdogStride, Seed: 1,
		Watchdog: func() bool { probes++; return probes >= 2 },
	})
	if r.Outcome != OutcomeTimeout || !r.WallClock {
		t.Fatalf("watchdog abort not classified as wall-clock timeout: %+v", r)
	}
	if r.ErrName != "timeout" {
		t.Errorf("ErrName = %q", r.ErrName)
	}
}

// TestPanicAndWallClockExcludedFromKey: the robustness markers must not
// perturb behaviour keys for otherwise-identical results (Key drives
// majority voting and dedup).
func TestPanicMarkerInvisibleToSemantics(t *testing.T) {
	a := ExecResult{Outcome: OutcomeCrash, Error: "panic: x", ErrName: "panic", Panic: true}
	b := ExecResult{Outcome: OutcomeCrash, Error: "panic: x", ErrName: "panic", FuelUsed: 99}
	if a.Key() != b.Key() {
		t.Errorf("Panic/FuelUsed leaked into Key: %q vs %q", a.Key(), b.Key())
	}
}
