package builtins

import (
	"math"

	"comfort/internal/js/interp"
)

func installMath(r *registry) {
	in := r.in
	m := in.NewObject(in.Protos["Object"])
	m.Class = "Math"
	r.global("Math", interp.ObjValue(m))

	m.SetSlot("PI", interp.Number(math.Pi), 0)
	m.SetSlot("E", interp.Number(math.E), 0)
	m.SetSlot("LN2", interp.Number(math.Ln2), 0)
	m.SetSlot("LN10", interp.Number(math.Log(10)), 0)
	m.SetSlot("LOG2E", interp.Number(1/math.Ln2), 0)
	m.SetSlot("LOG10E", interp.Number(1/math.Log(10)), 0)
	m.SetSlot("SQRT2", interp.Number(math.Sqrt2), 0)
	m.SetSlot("SQRT1_2", interp.Number(math.Sqrt(0.5)), 0)

	unary := func(name string, f func(float64) float64) {
		r.method(m, "Math."+name, 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			n, err := in.ToNumber(arg(args, 0))
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.Number(f(n)), nil
		})
	}
	unary("abs", math.Abs)
	unary("floor", math.Floor)
	unary("ceil", math.Ceil)
	unary("trunc", math.Trunc)
	unary("sqrt", math.Sqrt)
	unary("cbrt", math.Cbrt)
	unary("exp", math.Exp)
	unary("expm1", math.Expm1)
	unary("log", math.Log)
	unary("log2", math.Log2)
	unary("log10", math.Log10)
	unary("log1p", math.Log1p)
	unary("sin", math.Sin)
	unary("cos", math.Cos)
	unary("tan", math.Tan)
	unary("asin", math.Asin)
	unary("acos", math.Acos)
	unary("atan", math.Atan)
	unary("sinh", math.Sinh)
	unary("cosh", math.Cosh)
	unary("tanh", math.Tanh)
	unary("asinh", math.Asinh)
	unary("acosh", math.Acosh)
	unary("atanh", math.Atanh)
	unary("fround", func(f float64) float64 { return float64(float32(f)) })
	unary("sign", func(f float64) float64 {
		switch {
		case math.IsNaN(f):
			return f
		case f > 0:
			return 1
		case f < 0:
			return -1
		default:
			return f // ±0 preserved
		}
	})
	unary("round", func(f float64) float64 {
		// JS Math.round: halves round toward +Infinity.
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return f
		}
		return math.Floor(f + 0.5)
	})
	unary("clz32", func(f float64) float64 {
		u := uint32(int64(math.Trunc(math.Mod(f, 4294967296))))
		n := 0
		for i := 31; i >= 0; i-- {
			if u&(1<<uint(i)) != 0 {
				break
			}
			n++
		}
		return float64(n)
	})

	r.method(m, "Math.pow", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		a, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		b, err := in.ToNumber(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(math.Pow(a, b)), nil
	})

	r.method(m, "Math.atan2", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		a, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		b, err := in.ToNumber(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(math.Atan2(a, b)), nil
	})

	r.method(m, "Math.hypot", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		sum := 0.0
		for _, a := range args {
			n, err := in.ToNumber(a)
			if err != nil {
				return interp.Undefined(), err
			}
			sum += n * n
		}
		return interp.Number(math.Sqrt(sum)), nil
	})

	r.method(m, "Math.imul", 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		a, err := in.ToNumber(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		b, err := in.ToNumber(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(float64(int32(int64(a)) * int32(int64(b)))), nil
	})

	minmax := func(name string, better func(a, b float64) bool, empty float64) {
		r.method(m, "Math."+name, 2, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			best := empty
			for _, a := range args {
				n, err := in.ToNumber(a)
				if err != nil {
					return interp.Undefined(), err
				}
				if math.IsNaN(n) {
					return interp.Number(math.NaN()), nil
				}
				if better(n, best) {
					best = n
				}
			}
			return interp.Number(best), nil
		})
	}
	minmax("max", func(a, b float64) bool { return a > b }, math.Inf(-1))
	minmax("min", func(a, b float64) bool { return a < b }, math.Inf(1))

	r.method(m, "Math.random", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Number(in.Rand().Float64()), nil
	})
}
