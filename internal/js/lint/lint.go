// Package lint is the JSHint substitute: a static syntax checker used by
// the generation pipeline to classify synthesised programs as syntactically
// valid or invalid, plus a handful of static quality warnings.
//
// The warning passes live in internal/js/analyze now (one analyzer serves
// the lint API, the exec pipeline's early-error gate and the campaign's
// fingerprint accounting); Check and Valid remain as the stable thin API
// the generators and the Figure-9 quality metrics call.
package lint

import (
	"comfort/internal/js/analyze"
	"comfort/internal/js/parser"
)

// Result is the outcome of linting one program.
type Result struct {
	Valid    bool
	Err      error // parse error when !Valid
	Warnings []string
}

// Check parses src and, when it parses, runs the analyzer's static
// warning passes.
func Check(src string) Result {
	prog, err := parser.Parse(src)
	if err != nil {
		return Result{Valid: false, Err: err}
	}
	return Result{Valid: true, Warnings: analyze.Analyze(prog).Warnings}
}

// Valid reports only whether src parses.
func Valid(src string) bool {
	_, err := parser.Parse(src)
	return err == nil
}
