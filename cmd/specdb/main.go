// Command specdb runs the ECMA-262 extraction pipeline and dumps the
// boundary-condition database in the paper's Figure-4(b) JSON shape.
//
// Usage:
//
//	specdb                      # dump the whole database
//	specdb -api substr          # one API's rules
//	specdb -stats               # extraction coverage statistics
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"comfort/internal/spec"
)

func main() {
	var (
		api   = flag.String("api", "", "dump rules for one API (short or canonical name)")
		stats = flag.Bool("stats", false, "print extraction statistics")
	)
	flag.Parse()

	db := spec.Default()
	if *stats {
		fmt.Printf("clauses: %d, mined: %d, coverage: %.1f%% (paper reports ~82%%)\n",
			db.TotalClauses, db.MinedClauses, 100*db.CoverageRate())
		fmt.Printf("APIs in database: %d\n", len(db.Names()))
		return
	}
	if *api != "" {
		key, rules, ok := db.LookupMethod(*api)
		if !ok {
			fmt.Fprintf(os.Stderr, "no rules for %q\n", *api)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(map[string]interface{}{key: rules}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	out, err := json.Marshal(db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}
