package interp

import (
	"math"
	"strings"

	"comfort/internal/js/jsnum"
)

// ToPrimitive implements ECMA-262 ToPrimitive with the given preferred type
// ("number", "string", or "" for default).
func (in *Interp) ToPrimitive(v Value, hint string) (Value, error) {
	if !v.IsObject() {
		return v, nil
	}
	o := v.Obj()
	order := []string{"valueOf", "toString"}
	if hint == "string" {
		order = []string{"toString", "valueOf"}
	}
	if hint == "" && o.Class == "Date" {
		order = []string{"toString", "valueOf"}
	}
	for _, name := range order {
		fn, err := in.GetProp(v, name)
		if err != nil {
			return Undefined(), err
		}
		if fn.IsObject() && fn.Obj().IsCallable() {
			res, err := in.Call(fn.Obj(), v, nil)
			if err != nil {
				return Undefined(), err
			}
			if !res.IsObject() {
				return res, nil
			}
		}
	}
	return Undefined(), in.TypeErrorf("Cannot convert object to primitive value")
}

// ToNumber implements ECMA-262 ToNumber.
func (in *Interp) ToNumber(v Value) (float64, error) {
	switch v.Kind() {
	case KindUndefined:
		return math.NaN(), nil
	case KindNull:
		return 0, nil
	case KindBool:
		if v.BoolVal() {
			return 1, nil
		}
		return 0, nil
	case KindNumber:
		return v.Num(), nil
	case KindString:
		return jsnum.Parse(v.Str()), nil
	default:
		prim, err := in.ToPrimitive(v, "number")
		if err != nil {
			return 0, err
		}
		return in.ToNumber(prim)
	}
}

// ToInteger applies ToNumber then ToInteger.
func (in *Interp) ToInteger(v Value) (float64, error) {
	f, err := in.ToNumber(v)
	if err != nil {
		return 0, err
	}
	return jsnum.ToInteger(f), nil
}

// ToString implements ECMA-262 ToString.
func (in *Interp) ToString(v Value) (string, error) {
	switch v.Kind() {
	case KindUndefined:
		return "undefined", nil
	case KindNull:
		return "null", nil
	case KindBool:
		if v.BoolVal() {
			return "true", nil
		}
		return "false", nil
	case KindNumber:
		return jsnum.Format(v.Num()), nil
	case KindString:
		return v.Str(), nil
	default:
		prim, err := in.ToPrimitive(v, "string")
		if err != nil {
			return "", err
		}
		return in.ToString(prim)
	}
}

// ToPropertyKey converts v to a property key string.
func (in *Interp) ToPropertyKey(v Value) (string, error) {
	return in.ToString(v)
}

// ToObject implements ECMA-262 ToObject (primitive boxing).
func (in *Interp) ToObject(v Value) (*Object, error) {
	switch v.Kind() {
	case KindUndefined, KindNull:
		return nil, in.TypeErrorf("Cannot convert %s to object", v.Kind())
	case KindObject:
		return v.Obj(), nil
	case KindString:
		o := NewObject(in.Protos["String"])
		o.Class = "String"
		o.Prim, o.HasPrim = v, true
		return o, nil
	case KindNumber:
		o := NewObject(in.Protos["Number"])
		o.Class = "Number"
		o.Prim, o.HasPrim = v, true
		return o, nil
	default:
		o := NewObject(in.Protos["Boolean"])
		o.Class = "Boolean"
		o.Prim, o.HasPrim = v, true
		return o, nil
	}
}

// LooseEquals implements the == algorithm.
func (in *Interp) LooseEquals(a, b Value) (bool, error) {
	if a.Kind() == b.Kind() {
		return SameValueStrict(a, b), nil
	}
	switch {
	case a.IsNullish() && b.IsNullish():
		return true, nil
	case a.Kind() == KindNumber && b.Kind() == KindString:
		return a.Num() == jsnum.Parse(b.Str()), nil
	case a.Kind() == KindString && b.Kind() == KindNumber:
		return jsnum.Parse(a.Str()) == b.Num(), nil
	case a.Kind() == KindBool:
		n := 0.0
		if a.BoolVal() {
			n = 1
		}
		return in.LooseEquals(Number(n), b)
	case b.Kind() == KindBool:
		n := 0.0
		if b.BoolVal() {
			n = 1
		}
		return in.LooseEquals(a, Number(n))
	case (a.Kind() == KindNumber || a.Kind() == KindString) && b.IsObject():
		prim, err := in.ToPrimitive(b, "")
		if err != nil {
			return false, err
		}
		return in.LooseEquals(a, prim)
	case a.IsObject() && (b.Kind() == KindNumber || b.Kind() == KindString):
		prim, err := in.ToPrimitive(a, "")
		if err != nil {
			return false, err
		}
		return in.LooseEquals(prim, b)
	}
	return false, nil
}

// Compare implements the abstract relational comparison; op is one of
// "<", ">", "<=", ">=".
func (in *Interp) Compare(op string, a, b Value) (bool, error) {
	pa, err := in.ToPrimitive(a, "number")
	if err != nil {
		return false, err
	}
	pb, err := in.ToPrimitive(b, "number")
	if err != nil {
		return false, err
	}
	if pa.Kind() == KindString && pb.Kind() == KindString {
		sa, sb := pa.Str(), pb.Str()
		switch op {
		case "<":
			return sa < sb, nil
		case ">":
			return sa > sb, nil
		case "<=":
			return sa <= sb, nil
		default:
			return sa >= sb, nil
		}
	}
	na, err := in.ToNumber(pa)
	if err != nil {
		return false, err
	}
	nb, err := in.ToNumber(pb)
	if err != nil {
		return false, err
	}
	if math.IsNaN(na) || math.IsNaN(nb) {
		return false, nil
	}
	switch op {
	case "<":
		return na < nb, nil
	case ">":
		return na > nb, nil
	case "<=":
		return na <= nb, nil
	default:
		return na >= nb, nil
	}
}

// DebugString renders a value for diagnostics without invoking JS code.
func DebugString(v Value) string {
	switch v.Kind() {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.BoolVal() {
			return "true"
		}
		return "false"
	case KindNumber:
		return jsnum.Format(v.Num())
	case KindString:
		return "\"" + v.Str() + "\""
	default:
		o := v.Obj()
		if o.IsCallable() {
			return "[Function]"
		}
		if o.IsArray() {
			var parts []string
			for _, e := range o.elems {
				parts = append(parts, DebugString(e))
			}
			return "[" + strings.Join(parts, ", ") + "]"
		}
		return "[object " + o.Class + "]"
	}
}
