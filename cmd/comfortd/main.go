// Command comfortd serves fuzzing campaigns as supervised, resumable
// jobs over HTTP/JSON (see internal/server). The job queue lives on disk
// in the -data directory; killing the server at any instant — power cut,
// OOM kill, kill -9 — loses nothing: on restart the queue is rebuilt and
// every unfinished job resumes from its last checkpoint.
//
// Usage:
//
//	comfortd -data /var/lib/comfortd             # serve on :8334
//	comfortd -addr :9000 -pool 8 -max-active 4   # wider shared pool
//
// Several instances may share one -data directory (distinct
// -instance-id each): jobs are claimed through per-job lease files with
// fencing epochs, a crashed instance's jobs are taken over by peers
// after -lease-ttl, and a gracefully stopped instance hands its jobs
// over immediately (see internal/server/lease.go and DESIGN.md §9).
//
// API (see internal/server.Handler):
//
//	POST /jobs              submit a campaign spec
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         status (+ accounting when done)
//	POST /jobs/{id}/cancel  cancel
//	GET  /jobs/{id}/stream  progress as server-sent events
//	GET  /healthz           liveness
//
// Signals mirror cmd/comfort: the first SIGINT/SIGTERM drains — running
// campaigns flush final checkpoints, statuses are persisted — and exits 3;
// a second signal force-quits with 130.
//
// Exit codes: 0 never in steady state (the server runs until signalled),
// 1 usage/config error, 3 graceful drain after a signal, 130 forced quit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"comfort/internal/server"
)

// exitInterrupted is the graceful-drain exit code, shared with
// cmd/comfort: "stopped on request, all state flushed, safe to restart".
const exitInterrupted = 3

func main() {
	var (
		addr       = flag.String("addr", ":8334", "HTTP listen address")
		data       = flag.String("data", "comfortd-data", "data directory holding the persistent job queue")
		pool       = flag.Int("pool", 0, "shared execution pool slots across all jobs; 0 = GOMAXPROCS")
		maxActive  = flag.Int("max-active", 0, "concurrently running campaigns; 0 = default (2)")
		queueMax   = flag.Int("queue-max", 0, "admission bound on queued+waiting jobs; 0 = default (64)")
		maxRetries = flag.Int("max-retries", 0, "no-progress failures before quarantine; 0 = default (3)")
		backoffMin = flag.Duration("backoff-base", 0, "first retry delay; 0 = default (1s)")
		backoffMax = flag.Duration("backoff-max", 0, "retry delay cap; 0 = default (1m)")
		progEach   = flag.Int("progress-every", 0, "cases between streamed progress samples; 0 = default (64)")
		instanceID = flag.String("instance-id", "", "stable identity for job leases; instances sharing a -data directory must differ, a restart should reuse its old ID; default: hostname")
		leaseTTL   = flag.Duration("lease-ttl", 0, "job lease lifetime — a dead instance's jobs become claimable by peers after this; 0 = default (15s)")
		heartbeat  = flag.Duration("heartbeat", 0, "lease renewal and peer-scan interval; 0 = default (lease-ttl/3)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "comfortd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(1)
	}

	if *instanceID == "" {
		if host, herr := os.Hostname(); herr == nil && host != "" {
			*instanceID = host
		} else {
			*instanceID = "comfortd"
		}
	}

	store, err := server.OpenStore(*data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "comfortd: %v\n", err)
		os.Exit(1)
	}
	sup, err := server.NewSupervisor(server.Options{
		Store:         store,
		InstanceID:    *instanceID,
		LeaseTTL:      *leaseTTL,
		Heartbeat:     *heartbeat,
		PoolWorkers:   *pool,
		MaxActive:     *maxActive,
		QueueMax:      *queueMax,
		MaxRetries:    *maxRetries,
		BackoffBase:   *backoffMin,
		BackoffMax:    *backoffMax,
		ProgressEvery: *progEach,
		Clock:         time.Now,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "comfortd: %v\n", err)
		os.Exit(1)
	}
	for _, w := range sup.Warnings() {
		fmt.Fprintf(os.Stderr, "comfortd: warning: %s\n", w)
	}
	recovered := 0
	for _, st := range sup.List() {
		if st.State == server.StateQueued {
			recovered++
		}
	}

	srv := &http.Server{Addr: *addr, Handler: server.Handler(sup)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "comfortd: instance %q serving on %s, data in %s (%d jobs pending)\n",
		*instanceID, *addr, *data, recovered)

	// First SIGINT/SIGTERM drains: stop accepting HTTP, cancel running
	// campaigns (each flushes a final checkpoint), persist every status,
	// exit 3. A second signal force-quits with the conventional 130.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "comfortd: %v\n", err)
		os.Exit(1)
	case <-sigCh:
	}
	fmt.Fprintln(os.Stderr, "comfortd: interrupted — draining jobs and flushing checkpoints (signal again to force quit)")
	go func() {
		<-sigCh
		os.Exit(130)
	}()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	sup.Shutdown()
	fmt.Fprintln(os.Stderr, "comfortd: drained; all unfinished jobs will resume on restart")
	os.Exit(exitInterrupted)
}
