package interp

// Polymorphic inline caches for the compiled evaluator's member-access
// thunks. Each non-computed member get/set (and method-call property load)
// compiled by internal/js/compile owns one icSite, indexed into the
// interpreter's per-execution ics slice; the site remembers up to
// icMaxEntries (receiver shape → slot) resolutions and goes megamorphic
// beyond that. Correctness rests on three guards:
//
//   - receiver shape identity: a hit requires the receiver's shape pointer
//     to equal the cached one, so any layout change (new key, delete,
//     dictionary conversion) misses by construction;
//   - prototype-chain linkage: entries that resolved through the chain
//     record the chain object pointers, so Object.setPrototypeOf-style
//     surgery (including the engine-defect hooks' `.Proto` writes) breaks
//     the cached path immediately;
//   - validity epochs: every chain object's epoch (bumped on key addition,
//     deletion, redefinition and mode change — see Object.epoch) is
//     recorded at fill time, so a later shadowing write or accessor
//     install on a prototype invalidates entries that resolved past it.
//
// Caches only ever hold plain data-property resolutions: shape-mode
// objects cannot carry accessors, dictionary-mode holders are never
// cached, and virtual slots (array/string/typed length and indices) are
// excluded by key. Everything else — and every miss — falls through to
// the byte-identical generic paths, so a cache can only change speed,
// never behaviour. With DisableShapes the ics slice stays empty and the
// entry points collapse to the generic calls.

// icMaxEntries bounds a site's polymorphism before it goes megamorphic.
const icMaxEntries = 4

// icEntry is one cached resolution at a site.
type icEntry struct {
	// shape is the receiver's shape; nil marks a primitive-receiver entry
	// matched by prim instead (string/number/boolean method loads).
	shape *Shape
	prim  Kind
	// holder owns the property; nil means it is an own property of the
	// receiver. h1 (and h2 for depth-2 resolutions) are the prototype
	// links the lookup walked: recv.Proto == h1, h1.Proto == h2, with the
	// holder being the last link. e1/e2 are their epochs at fill time.
	holder *Object
	h1, h2 *Object
	e1, e2 uint32
	// hshape pins the holder's shape (holder slot layout) at fill time.
	hshape *Shape
	slot   int32
	// next, on set sites, is the transition target: the write adds key and
	// moves the receiver from shape to next. nil means overwrite in place.
	next *Shape
}

// icSite is one member-access site: a monomorphic entry inline plus
// overflow entries allocated on demand.
type icSite struct {
	e0   icEntry
	more []icEntry
	n    uint8
	mega bool
}

// EnsureICSites grows the per-execution site table to n entries; the
// compile pass sizes n at compile time and Compiled.Run calls this before
// the first thunk executes. DisableShapes leaves the table empty, which
// turns every IC entry point into its generic fallback.
func (in *Interp) EnsureICSites(n int) {
	if in.DisableShapes || n <= len(in.ics) {
		return
	}
	ics := make([]icSite, n)
	copy(ics, in.ics)
	in.ics = ics
}

// ICStats reports the hit / miss / megamorphic counters accumulated by
// this execution's inline caches.
func (in *Interp) ICStats() (hit, miss, mega uint64) {
	return in.icHit, in.icMiss, in.icMega
}

// icObjectHit probes the site's entries for an object receiver and
// returns the cached value on a validated hit.
func (s *icSite) icObjectHit(o *Object) (Value, bool) {
	sh := o.shape
	if e := &s.e0; e.shape == sh && sh != nil {
		if v, ok := e.read(o); ok {
			return v, true
		}
	}
	for i := range s.more {
		if e := &s.more[i]; e.shape == sh && sh != nil {
			if v, ok := e.read(o); ok {
				return v, true
			}
		}
	}
	return Value{}, false
}

// icPrimHit probes the site's entries for a primitive receiver.
func (s *icSite) icPrimHit(k Kind) (Value, bool) {
	if e := &s.e0; e.shape == nil && e.prim == k && e.holder != nil {
		if v, ok := e.read(nil); ok {
			return v, true
		}
	}
	for i := range s.more {
		if e := &s.more[i]; e.shape == nil && e.prim == k && e.holder != nil {
			if v, ok := e.read(nil); ok {
				return v, true
			}
		}
	}
	return Value{}, false
}

// read validates the entry's chain guards against the current heap state
// and returns the cached slot's value. o is the receiver (nil for
// primitive receivers, whose chains start at h1 directly).
func (e *icEntry) read(o *Object) (Value, bool) {
	holder := o
	if e.holder != nil {
		if o != nil && o.Proto != e.h1 {
			return Value{}, false
		}
		if e.h1 == nil || e.h1.epoch != e.e1 {
			return Value{}, false
		}
		holder = e.h1
		if e.holder == e.h2 {
			if e.h1.Proto != e.h2 || e.h2.epoch != e.e2 {
				return Value{}, false
			}
			holder = e.h2
		}
		if holder.shape != e.hshape {
			return Value{}, false
		}
	}
	v := holder.slots[e.slot]
	if v.kind == kindPending {
		return Value{}, false
	}
	return v, true
}

// add installs a new entry at the site, flipping to megamorphic past the
// polymorphism bound.
func (s *icSite) add(e icEntry) {
	if s.n == 0 {
		s.e0 = e
		s.n = 1
		return
	}
	if int(s.n) >= icMaxEntries {
		s.mega = true
		return
	}
	s.more = append(s.more, e)
	s.n++
}

// GetPropICKey is GetPropKey with an inline cache at the given compiled
// site. Hits charge the same single step the generic path charges and
// return the cached data slot; everything else falls through to
// GetPropKey and refills the site from the resolved state.
func (in *Interp) GetPropICKey(site int, v Value, key string) (Value, error) {
	if site < 0 || site >= len(in.ics) {
		return in.GetPropKey(v, key)
	}
	s := &in.ics[site]
	if s.mega {
		in.icMega++
		return in.GetPropKey(v, key)
	}
	if v.kind == KindObject {
		if val, ok := s.icObjectHit(v.obj); ok {
			in.icHit++
			if err := in.charge(1); err != nil {
				return Undefined(), err
			}
			return val, nil
		}
	} else if v.kind == KindString || v.kind == KindNumber || v.kind == KindBool {
		if val, ok := s.icPrimHit(v.kind); ok {
			in.icHit++
			if err := in.charge(1); err != nil {
				return Undefined(), err
			}
			return val, nil
		}
	}
	in.icMiss++
	res, err := in.GetPropKey(v, key)
	if err == nil {
		in.icFillGet(s, v, key)
	}
	return res, err
}

// icFillGet records where the just-completed generic lookup found key, if
// the resolution is of a cacheable kind: data property, shaped holder,
// chain depth at most two, no virtual-slot candidates anywhere on the
// walked prefix.
func (in *Interp) icFillGet(s *icSite, v Value, key string) {
	var e icEntry
	var start *Object
	switch v.kind {
	case KindObject:
		o := v.obj
		if o.shape == nil || !o.shapeFastKey(key) {
			return
		}
		e.shape = o.shape
		if sp := o.shape.find(key); sp != nil {
			if o.slots[sp.slot].kind == kindPending {
				return
			}
			e.slot = sp.slot
			s.add(e)
			return
		}
		start = o.Proto
	case KindString:
		if len(key) == 0 || (key[0] >= '0' && key[0] <= '9') || key == "length" {
			return
		}
		e.prim = KindString
		start = in.Protos["String"]
	case KindNumber:
		e.prim = KindNumber
		start = in.Protos["Number"]
	case KindBool:
		e.prim = KindBool
		start = in.Protos["Boolean"]
	default:
		return
	}
	cur := start
	for depth := 0; depth < 2 && cur != nil; depth++ {
		if !cur.shapeFastKey(key) {
			return
		}
		if depth == 0 {
			e.h1, e.e1 = cur, cur.epoch
		} else {
			e.h2, e.e2 = cur, cur.epoch
		}
		if cur.shape != nil {
			if sp := cur.shape.find(key); sp != nil {
				if cur.slots[sp.slot].kind == kindPending {
					return
				}
				e.holder, e.hshape, e.slot = cur, cur.shape, sp.slot
				s.add(e)
				return
			}
		} else if _, ok := cur.props[key]; ok {
			return // dictionary holder: uncacheable
		}
		cur = cur.Proto
	}
}

// SetPropICKey is SetProp with an inline cache at the given compiled
// site. Cacheable writes are plain data-property stores on shape-mode
// receivers with no defect hook installed; hits perform exactly the slot
// write (or shape transition) the generic path would, with the same
// single-step charge.
func (in *Interp) SetPropICKey(site int, target Value, key string, v Value, strict bool) error {
	if site < 0 || site >= len(in.ics) || in.Hook != nil {
		return in.SetProp(target, key, v, strict)
	}
	s := &in.ics[site]
	if s.mega {
		in.icMega++
		return in.SetProp(target, key, v, strict)
	}
	if target.kind == KindObject {
		o := target.obj
		sh := o.shape
		if sh != nil {
			if e := s.setHit(sh); e != nil {
				if e.next == nil {
					in.icHit++
					if err := in.charge(1); err != nil {
						return err
					}
					o.slots[e.slot] = v
					return nil
				}
				if o.Extensible && e.chainValid(o) {
					in.icHit++
					if err := in.charge(1); err != nil {
						return err
					}
					o.shape = e.next
					o.slots = append(o.slots, v)
					o.epoch++
					o.noteKey(key)
					return nil
				}
			}
		}
	}
	in.icMiss++
	var pre *Shape
	var o *Object
	if target.kind == KindObject {
		o = target.obj
		pre = o.shape
	}
	err := in.SetProp(target, key, v, strict)
	if err == nil && o != nil && pre != nil {
		in.icFillSet(s, o, pre, key)
	}
	return err
}

// setHit returns the site entry matching the receiver shape, if any.
func (s *icSite) setHit(sh *Shape) *icEntry {
	if e := &s.e0; e.shape == sh {
		return e
	}
	for i := range s.more {
		if e := &s.more[i]; e.shape == sh {
			return e
		}
	}
	return nil
}

// chainValid revalidates a transition entry's prototype-chain guards: the
// links are unchanged (pointer identity) and no link's layout has moved
// (epochs), so the chain still provably holds no accessor or conflicting
// virtual slot for the key.
func (e *icEntry) chainValid(o *Object) bool {
	if o.Proto != e.h1 {
		return false
	}
	if e.h1 == nil {
		return true
	}
	if e.h1.epoch != e.e1 || e.h1.Proto != e.h2 {
		return false
	}
	if e.h2 == nil {
		return true
	}
	return e.h2.epoch == e.e2 && e.h2.Proto == nil
}

// icFillSet records the just-completed generic write if it was a plain
// own-slot overwrite or a one-step shape transition on a chain short and
// clean enough to guard.
func (in *Interp) icFillSet(s *icSite, o *Object, pre *Shape, key string) {
	post := o.shape
	if post == nil || !o.shapeFastKey(key) {
		return
	}
	if preSp := pre.find(key); preSp != nil {
		// Overwrite: cache only the layout assignment preserves (SetProp's
		// terminal SetSlot writes DefaultAttr, so anything else would have
		// left shape mode).
		if post == pre && preSp.attr == DefaultAttr && o.slots[preSp.slot].kind != kindPending {
			s.add(icEntry{shape: pre, slot: preSp.slot})
		}
		return
	}
	if post.parent != pre || post.key != key || post.attr != DefaultAttr {
		return
	}
	e := icEntry{shape: pre, next: post, slot: post.slot}
	// Guard the prototype chain: at most two links, each free of virtual
	// slots for the key and free of a dictionary accessor, terminated by
	// nil. Epochs catch later accessor installs or shadowing changes.
	cur := o.Proto
	for depth := 0; cur != nil; depth++ {
		if depth >= 2 || !cur.shapeFastKey(key) {
			return
		}
		if cur.shape == nil {
			if p, ok := cur.props[key]; ok && p.Accessor {
				return
			}
		}
		if depth == 0 {
			e.h1, e.e1 = cur, cur.epoch
		} else {
			e.h2, e.e2 = cur, cur.epoch
		}
		cur = cur.Proto
	}
	s.add(e)
}
