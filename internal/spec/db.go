package spec

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
)

// ParamRule is the Figure-4(b) record for one API parameter: its inferred
// type, the boundary values worth probing, the step indices where boundary
// scopes apply, and the mined conditions.
type ParamRule struct {
	Name       string   `json:"name"`
	Type       string   `json:"type"`
	Values     []string `json:"values"`
	Scopes     []int    `json:"scopes"`
	Conditions []string `json:"conditions"`
}

// APIRule is the extracted rule set for one API.
type APIRule struct {
	Name   string
	Params []ParamRule
}

// DB is the structured specification database of Figure 4: canonical API
// name → parameter rules.
type DB struct {
	Rules map[string][]ParamRule
	// Coverage statistics for the extraction pass.
	TotalClauses int
	MinedClauses int
}

// CoverageRate reports the fraction of clauses the extractor mined
// (the paper reports ~82% for the real ECMA-262).
func (db *DB) CoverageRate() float64 {
	if db.TotalClauses == 0 {
		return 0
	}
	return float64(db.MinedClauses) / float64(db.TotalClauses)
}

// Lookup finds the rules for a canonical API name.
func (db *DB) Lookup(name string) ([]ParamRule, bool) {
	r, ok := db.Rules[name]
	return r, ok
}

// LookupMethod resolves a bare method name (e.g. "substr") against the
// database, returning the canonical key — how the fuzzer maps a call site
// `x.substr(...)` to its specification.
func (db *DB) LookupMethod(method string) (string, []ParamRule, bool) {
	if r, ok := db.Rules[method]; ok {
		return method, r, true
	}
	var keys []string
	for k := range db.Rules {
		if strings.HasSuffix(k, "."+method) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "", nil, false
	}
	sort.Strings(keys)
	return keys[0], db.Rules[keys[0]], true
}

// Names returns all canonical API names in sorted order.
func (db *DB) Names() []string {
	var out []string
	for k := range db.Rules {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarshalJSON renders the database in the Figure-4(b) JSON shape.
func (db *DB) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(db.Rules, "", "  ")
}

// UnmarshalJSON loads a Figure-4(b) JSON database.
func (db *DB) UnmarshalJSON(data []byte) error {
	db.Rules = map[string][]ParamRule{}
	return json.Unmarshal(data, &db.Rules)
}

// Build runs the full extraction pipeline over an ECMA-262-style document.
func Build(html string) *DB {
	db := &DB{Rules: map[string][]ParamRule{}}
	clauses := ExtractClauses(html)
	db.TotalClauses = len(clauses)
	for _, c := range clauses {
		rule, ok := MineRules(c)
		if !ok {
			continue
		}
		db.MinedClauses++
		db.Rules[rule.Name] = rule.Params
	}
	return db
}

var (
	defaultOnce sync.Once
	defaultDB   *DB
)

// Default returns the database built from the embedded document.
func Default() *DB {
	defaultOnce.Do(func() { defaultDB = Build(Document) })
	return defaultDB
}
