package builtins

import (
	"math"
	"strings"
	"unicode/utf8"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/regex"
)

func installString(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	proto.Class = "String"
	proto.Prim, proto.HasPrim = interp.String(""), true

	call := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.String(""), nil
		}
		s, err := in.ToString(args[0])
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(s), nil
	}
	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v, err := call(in, this, args)
		if err != nil {
			return interp.Undefined(), err
		}
		o := in.NewObject(in.Protos["String"])
		o.Class = "String"
		o.Prim, o.HasPrim = v, true
		return interp.ObjValue(o), nil
	}
	ctor := r.ctor("String", 1, proto, call, construct)

	r.method(ctor, "String.fromCharCode", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		var b strings.Builder
		for _, a := range args {
			n, err := in.ToNumber(a)
			if err != nil {
				return interp.Undefined(), err
			}
			b.WriteRune(rune(uint16(int64(n))))
		}
		return interp.String(b.String()), nil
	})

	r.method(ctor, "String.fromCodePoint", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		var b strings.Builder
		for _, a := range args {
			n, err := in.ToNumber(a)
			if err != nil {
				return interp.Undefined(), err
			}
			if n != math.Trunc(n) || n < 0 || n > 0x10FFFF {
				return interp.Undefined(), in.RangeErrorf("Invalid code point %v", n)
			}
			b.WriteRune(rune(int64(n)))
		}
		return interp.String(b.String()), nil
	})

	// thisStr coerces the receiver per CheckObjectCoercible + ToString.
	thisStr := func(in *interp.Interp, this interp.Value, method string) (string, error) {
		if err := requireObjectCoercible(in, this, method); err != nil {
			return "", err
		}
		return in.ToString(this)
	}

	str := func(name string, arity int,
		f func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error)) {
		r.method(proto, name, arity, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			s, err := thisStr(in, this, name)
			if err != nil {
				return interp.Undefined(), err
			}
			return f(in, []rune(s), this, args)
		})
	}

	// strRaw passes the receiver without materialising a rune slice — the
	// adapter for the position-indexed accessors, which campaign profiles
	// show dominated by the []rune conversion ([]rune(s) allocates and
	// copies the whole string per call; charCodeAt in a scan loop paid it
	// quadratically).
	strRaw := func(name string, arity int,
		f func(in *interp.Interp, s string, this interp.Value, args []interp.Value) (interp.Value, error)) {
		r.method(proto, name, arity, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
			s, err := thisStr(in, this, name)
			if err != nil {
				return interp.Undefined(), err
			}
			return f(in, s, this, args)
		})
	}

	r.method(proto, "String.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return stringThisValue(in, this)
	})
	r.method(proto, "String.prototype.valueOf", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return stringThisValue(in, this)
	})

	strRaw("String.prototype.charAt", 1, func(in *interp.Interp, s string, this interp.Value, args []interp.Value) (interp.Value, error) {
		pos, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if r, ok := in.RuneAt(s, pos); ok {
			return interp.String(string(r)), nil
		}
		return interp.String(""), nil
	})

	strRaw("String.prototype.charCodeAt", 1, func(in *interp.Interp, s string, this interp.Value, args []interp.Value) (interp.Value, error) {
		pos, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if r, ok := in.RuneAt(s, pos); ok {
			return interp.Number(float64(r)), nil
		}
		return interp.Number(math.NaN()), nil
	})

	strRaw("String.prototype.codePointAt", 1, func(in *interp.Interp, s string, this interp.Value, args []interp.Value) (interp.Value, error) {
		pos, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if r, ok := in.RuneAt(s, pos); ok {
			return interp.Number(float64(r)), nil
		}
		return interp.Undefined(), nil
	})

	strRaw("String.prototype.at", 1, func(in *interp.Interp, s string, this interp.Value, args []interp.Value) (interp.Value, error) {
		pos, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if pos < 0 {
			pos += float64(in.RuneLen(s))
		}
		if r, ok := in.RuneAt(s, pos); ok {
			return interp.String(string(r)), nil
		}
		return interp.Undefined(), nil
	})

	str("String.prototype.concat", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		var b strings.Builder
		b.WriteString(string(s))
		for _, a := range args {
			as, err := in.ToString(a)
			if err != nil {
				return interp.Undefined(), err
			}
			b.WriteString(as)
		}
		return interp.String(b.String()), nil
	})

	str("String.prototype.indexOf", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		needle, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		posF, err := in.ToInteger(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		start := clampIndex(posF, len(s))
		idx := runeIndex(s, []rune(needle), start)
		return interp.Number(float64(idx)), nil
	})

	str("String.prototype.lastIndexOf", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		needle, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		nr := []rune(needle)
		best := -1
		for i := 0; i+len(nr) <= len(s); i++ {
			if string(s[i:i+len(nr)]) == needle {
				best = i
			}
		}
		return interp.Number(float64(best)), nil
	})

	str("String.prototype.includes", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		if isRegExpArg(arg(args, 0)) {
			return interp.Undefined(), in.TypeErrorf("First argument to String.prototype.includes must not be a regular expression")
		}
		needle, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(strings.Contains(string(s), needle)), nil
	})

	str("String.prototype.startsWith", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		if isRegExpArg(arg(args, 0)) {
			return interp.Undefined(), in.TypeErrorf("First argument to String.prototype.startsWith must not be a regular expression")
		}
		needle, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		posF, err := in.ToInteger(arg(args, 1))
		if err != nil {
			return interp.Undefined(), err
		}
		start := clampIndex(posF, len(s))
		return interp.Bool(strings.HasPrefix(string(s[start:]), needle)), nil
	})

	str("String.prototype.endsWith", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		if isRegExpArg(arg(args, 0)) {
			return interp.Undefined(), in.TypeErrorf("First argument to String.prototype.endsWith must not be a regular expression")
		}
		needle, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		end := len(s)
		if e := arg(args, 1); !e.IsUndefined() {
			f, err := in.ToInteger(e)
			if err != nil {
				return interp.Undefined(), err
			}
			end = clampIndex(f, len(s))
		}
		return interp.Bool(strings.HasSuffix(string(s[:end]), needle)), nil
	})

	str("String.prototype.slice", 2, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		start, end, err := sliceRange(in, args, len(s))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(string(s[start:end])), nil
	})

	str("String.prototype.substring", 2, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		n := len(s)
		a, b := 0, n
		if v := arg(args, 0); !v.IsUndefined() {
			f, err := in.ToInteger(v)
			if err != nil {
				return interp.Undefined(), err
			}
			a = clampAbs(f, n)
		}
		if v := arg(args, 1); !v.IsUndefined() {
			f, err := in.ToInteger(v)
			if err != nil {
				return interp.Undefined(), err
			}
			b = clampAbs(f, n)
		}
		if a > b {
			a, b = b, a
		}
		return interp.String(string(s[a:b])), nil
	})

	// String.prototype.substr — the paper's Figure 1/2 walkthrough API.
	str("String.prototype.substr", 2, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		size := len(s)
		intStart, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		end := math.Inf(1)
		if lv := arg(args, 1); !lv.IsUndefined() {
			end, err = in.ToInteger(lv)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		if intStart < 0 {
			intStart = math.Max(float64(size)+intStart, 0)
		}
		resultLength := math.Min(math.Max(end, 0), float64(size)-intStart)
		if resultLength <= 0 {
			return interp.String(""), nil
		}
		start := int(intStart)
		return interp.String(string(s[start : start+int(resultLength)])), nil
	})

	str("String.prototype.toUpperCase", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.ToUpper(string(s))), nil
	})
	str("String.prototype.toLowerCase", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.ToLower(string(s))), nil
	})
	str("String.prototype.toLocaleUpperCase", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.ToUpper(string(s))), nil
	})
	str("String.prototype.toLocaleLowerCase", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.ToLower(string(s))), nil
	})

	str("String.prototype.trim", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.TrimFunc(string(s), isTrimmable)), nil
	})
	str("String.prototype.trimStart", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.TrimLeftFunc(string(s), isTrimmable)), nil
	})
	str("String.prototype.trimEnd", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.String(strings.TrimRightFunc(string(s), isTrimmable)), nil
	})

	pad := func(name string, start bool) {
		str(name, 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
			targetF, err := in.ToInteger(arg(args, 0))
			if err != nil {
				return interp.Undefined(), err
			}
			target := jsnum.SafeInt(targetF)
			filler := " "
			if f := arg(args, 1); !f.IsUndefined() {
				filler, err = in.ToString(f)
				if err != nil {
					return interp.Undefined(), err
				}
			}
			if target <= len(s) || filler == "" {
				return interp.String(string(s)), nil
			}
			if err := in.Burn(int64(target) / 16); err != nil {
				return interp.Undefined(), err
			}
			// Build the result in one pre-sized buffer, filling with bulk
			// copies: the whole filler repetitions are one strings.Repeat
			// (doubling memmove) and only the trailing partial repetition
			// walks runes. The previous rune-by-rune WriteRune loop was the
			// single hottest site of whole campaigns — generated programs
			// pad inside loops — at ~29% of campaign CPU.
			need := target - len(s) // pad length in runes
			var b strings.Builder
			b.Grow(target) // exact for ASCII; the builder grows otherwise
			fillerRunes := utf8.RuneCountInString(filler)
			writePad := func() {
				if whole := need / fillerRunes; whole > 0 {
					b.WriteString(strings.Repeat(filler, whole))
				}
				rem := need % fillerRunes
				for _, fr := range filler {
					if rem == 0 {
						break
					}
					b.WriteRune(fr)
					rem--
				}
			}
			if start {
				writePad()
				b.WriteString(string(s))
				return interp.String(b.String()), nil
			}
			b.WriteString(string(s))
			writePad()
			return interp.String(b.String()), nil
		})
	}
	pad("String.prototype.padStart", true)
	pad("String.prototype.padEnd", false)

	str("String.prototype.repeat", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		nF, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		if nF < 0 || math.IsInf(nF, 0) {
			return interp.Undefined(), in.RangeErrorf("Invalid count value: %v", nF)
		}
		n := int(nF)
		if err := in.Burn(int64(n * (len(s) + 1))); err != nil {
			return interp.Undefined(), err
		}
		return interp.String(strings.Repeat(string(s), n)), nil
	})

	str("String.prototype.normalize", 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		form := "NFC"
		if f := arg(args, 0); !f.IsUndefined() {
			var err error
			form, err = in.ToString(f)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		switch form {
		case "NFC", "NFD", "NFKC", "NFKD":
			// Our corpus is ASCII-dominated; identity is a faithful NFC for
			// it. (Real engines differ here only on combining sequences.)
			return interp.String(string(s)), nil
		default:
			return interp.Undefined(), in.RangeErrorf("The normalization form should be one of NFC, NFD, NFKC, NFKD.")
		}
	})

	str("String.prototype.localeCompare", 1, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
		other, err := in.ToString(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		switch {
		case string(s) < other:
			return interp.Number(-1), nil
		case string(s) > other:
			return interp.Number(1), nil
		default:
			return interp.Number(0), nil
		}
	})

	// Annex B legacy HTML methods (String.prototype.big et al) — kept
	// because real engines ship them and fuzzers find bugs in them.
	htmlWrap := func(name, tag string) {
		str(name, 0, func(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
			return interp.String("<" + tag + ">" + string(s) + "</" + tag + ">"), nil
		})
	}
	htmlWrap("String.prototype.big", "big")
	htmlWrap("String.prototype.blink", "blink")
	htmlWrap("String.prototype.bold", "b")
	htmlWrap("String.prototype.italics", "i")
	htmlWrap("String.prototype.small", "small")
	htmlWrap("String.prototype.strike", "strike")
	htmlWrap("String.prototype.sub", "sub")
	htmlWrap("String.prototype.sup", "sup")

	str("String.prototype.split", 2, stringSplit)
	str("String.prototype.replace", 2, stringReplace)
	str("String.prototype.match", 1, stringMatch)
	str("String.prototype.search", 1, stringSearch)
}

// stringThisValue implements the toString/valueOf receiver check shared by
// String wrapper objects.
func stringThisValue(in *interp.Interp, this interp.Value) (interp.Value, error) {
	if this.Kind() == interp.KindString {
		return this, nil
	}
	if this.IsObject() && this.Obj().Class == "String" && this.Obj().HasPrim {
		return this.Obj().Prim, nil
	}
	return interp.Undefined(), in.TypeErrorf("String.prototype.toString requires that 'this' be a String")
}

func isRegExpArg(v interp.Value) bool {
	return v.IsObject() && v.Obj().Class == "RegExp"
}

func isTrimmable(r rune) bool {
	switch r {
	case ' ', '\t', '\n', '\r', '\v', '\f', 0x00a0, 0x2028, 0x2029, 0xfeff:
		return true
	}
	return false
}

func clampAbs(f float64, n int) int {
	if f < 0 || math.IsNaN(f) {
		return 0
	}
	if f > float64(n) {
		return n
	}
	return int(f)
}

func runeIndex(s, needle []rune, start int) int {
	if len(needle) == 0 {
		if start > len(s) {
			return len(s)
		}
		return start
	}
	for i := start; i+len(needle) <= len(s); i++ {
		match := true
		for j := range needle {
			if s[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}

// argRegex resolves a pattern argument to a compiled regex, per the
// RegExpCreate coercion used by split/match/search/replace. The regex-engine
// hook fires on every execution through these entry points.
func argRegex(in *interp.Interp, v interp.Value) (*regex.Regexp, bool, error) {
	if v.IsObject() && v.Obj().Class == "RegExp" {
		return v.Obj().Regex, true, nil
	}
	return nil, false, nil
}

// runRegex executes a regex with the HookRegexExec defect site applied.
func runRegex(in *interp.Interp, re *regex.Regexp, input string, start int, api string) (*regex.Match, error) {
	if err := in.Burn(int64(len(input))/4 + 2); err != nil {
		return nil, err
	}
	if in.Hook != nil {
		ov := in.Hook(&interp.HookCtx{
			Site: interp.HookRegexExec, In: in, Name: api,
			Pattern: re.Source, Flags: re.Flags,
			Args: []interp.Value{interp.String(input), interp.Number(float64(start))},
		})
		if ov != nil {
			if ov.CostExtra > 0 {
				if err := in.Burn(ov.CostExtra); err != nil {
					return nil, err
				}
			}
			if ov.Replace {
				if ov.Err != nil {
					return nil, ov.Err
				}
				// A FakeMatch object injects a bogus match range (the
				// anchor-mishandling regex defect family); anything else
				// replaces the result with "no match".
				if fm := ov.Return; fm.IsObject() && fm.Obj().Class == "FakeMatch" {
					s, _ := in.GetPropKey(fm, "start")
					e, _ := in.GetPropKey(fm, "end")
					return &regex.Match{
						Groups: [][2]int{{int(s.Num()), int(e.Num())}},
						Input:  []rune(input),
					}, nil
				}
				return nil, nil
			}
		}
	}
	m, err := re.Exec(input, start)
	if err == regex.ErrBudget {
		return nil, in.Burn(interp.DefaultFuel) // surface as timeout
	}
	return m, err
}

func stringSplit(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
	sepV := arg(args, 0)
	limit := math.Inf(1)
	if lv := arg(args, 1); !lv.IsUndefined() {
		f, err := in.ToNumber(lv)
		if err != nil {
			return interp.Undefined(), err
		}
		limit = float64(uint32(int64(f)))
	}
	out := in.NewArray(nil)
	push := func(v interp.Value) bool {
		if float64(out.ArrayLength()) >= limit {
			return false
		}
		out.AppendElem(v)
		return true
	}
	if sepV.IsUndefined() {
		push(interp.String(string(s)))
		return interp.ObjValue(out), nil
	}
	if re, ok, err := argRegex(in, sepV); err != nil {
		return interp.Undefined(), err
	} else if ok {
		input := string(s)
		at := 0
		last := 0
		for at <= len(s) {
			m, err := runRegex(in, re, input, at, "String.prototype.split")
			if err != nil {
				return interp.Undefined(), err
			}
			if m == nil {
				break
			}
			start, end := m.Groups[0][0], m.Groups[0][1]
			if end == 0 && start == 0 && len(s) > 0 {
				// Zero-width match at start: skip forward.
				at = 1
				continue
			}
			if start == end && start == last {
				at = start + 1
				continue
			}
			if !push(interp.String(string(s[last:start]))) {
				return interp.ObjValue(out), nil
			}
			for g := 1; g < len(m.Groups); g++ {
				if m.GroupMatched(g) {
					if !push(interp.String(m.GroupString(g))) {
						return interp.ObjValue(out), nil
					}
				} else if !push(interp.Undefined()) {
					return interp.ObjValue(out), nil
				}
			}
			last = end
			if end == start {
				at = end + 1
			} else {
				at = end
			}
		}
		push(interp.String(string(s[last:])))
		return interp.ObjValue(out), nil
	}
	sep, err := in.ToString(sepV)
	if err != nil {
		return interp.Undefined(), err
	}
	if sep == "" {
		for _, c := range s {
			if !push(interp.String(string(c))) {
				break
			}
		}
		return interp.ObjValue(out), nil
	}
	for _, part := range strings.Split(string(s), sep) {
		if !push(interp.String(part)) {
			break
		}
	}
	return interp.ObjValue(out), nil
}

func stringReplace(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
	pat := arg(args, 0)
	replV := arg(args, 1)
	input := string(s)

	callRepl := func(matched string, groups []interp.Value, pos int) (string, error) {
		callArgs := append([]interp.Value{interp.String(matched)}, groups...)
		callArgs = append(callArgs, interp.Number(float64(pos)), interp.String(input))
		res, err := in.Call(replV.Obj(), interp.Undefined(), callArgs)
		if err != nil {
			return "", err
		}
		return in.ToString(res)
	}
	isFunc := replV.IsObject() && replV.Obj().IsCallable()

	if re, ok, err := argRegex(in, pat); err != nil {
		return interp.Undefined(), err
	} else if ok {
		if !isFunc {
			repl, err := in.ToString(replV)
			if err != nil {
				return interp.Undefined(), err
			}
			// Route the match through the hook once for defect visibility.
			if _, err := runRegex(in, re, input, 0, "String.prototype.replace"); err != nil {
				return interp.Undefined(), err
			}
			res, err := re.ReplaceAll(input, repl, re.Global)
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.String(res), nil
		}
		var b strings.Builder
		at := 0
		for at <= len(s) {
			m, err := runRegex(in, re, input, at, "String.prototype.replace")
			if err != nil {
				return interp.Undefined(), err
			}
			if m == nil {
				break
			}
			start, end := m.Groups[0][0], m.Groups[0][1]
			b.WriteString(string(s[at:start]))
			var groups []interp.Value
			for g := 1; g < len(m.Groups); g++ {
				if m.GroupMatched(g) {
					groups = append(groups, interp.String(m.GroupString(g)))
				} else {
					groups = append(groups, interp.Undefined())
				}
			}
			rs, err := callRepl(m.GroupString(0), groups, start)
			if err != nil {
				return interp.Undefined(), err
			}
			b.WriteString(rs)
			if end == start {
				if start < len(s) {
					b.WriteRune(s[start])
				}
				at = start + 1
			} else {
				at = end
			}
			if !re.Global {
				break
			}
		}
		if at <= len(s) {
			b.WriteString(string(s[at:]))
		}
		return interp.String(b.String()), nil
	}

	// String pattern: replace the first occurrence only.
	patStr, err := in.ToString(pat)
	if err != nil {
		return interp.Undefined(), err
	}
	idx := strings.Index(input, patStr)
	if idx < 0 {
		return interp.String(input), nil
	}
	if isFunc {
		rs, err := callRepl(patStr, nil, len([]rune(input[:idx])))
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(input[:idx] + rs + input[idx+len(patStr):]), nil
	}
	repl, err := in.ToString(replV)
	if err != nil {
		return interp.Undefined(), err
	}
	repl = strings.ReplaceAll(repl, "$&", patStr)
	return interp.String(input[:idx] + repl + input[idx+len(patStr):]), nil
}

func stringMatch(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
	pat := arg(args, 0)
	re, ok, err := argRegex(in, pat)
	if err != nil {
		return interp.Undefined(), err
	}
	if !ok {
		src := ""
		if !pat.IsUndefined() {
			src, err = in.ToString(pat)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		re, err = regex.Compile(regexQuote(src), "")
		if err != nil {
			return interp.Undefined(), in.SyntaxErrorf("%v", err)
		}
	}
	input := string(s)
	if !re.Global {
		m, err := runRegex(in, re, input, 0, "String.prototype.match")
		if err != nil {
			return interp.Undefined(), err
		}
		if m == nil {
			return interp.Null(), nil
		}
		return matchToArray(in, m), nil
	}
	out := in.NewArray(nil)
	at := 0
	for {
		m, err := runRegex(in, re, input, at, "String.prototype.match")
		if err != nil {
			return interp.Undefined(), err
		}
		if m == nil {
			break
		}
		out.AppendElem(interp.String(m.GroupString(0)))
		if m.Groups[0][1] == m.Groups[0][0] {
			at = m.Groups[0][0] + 1
		} else {
			at = m.Groups[0][1]
		}
		if at > len(s) {
			break
		}
	}
	if out.ArrayLength() == 0 {
		return interp.Null(), nil
	}
	return interp.ObjValue(out), nil
}

func stringSearch(in *interp.Interp, s []rune, this interp.Value, args []interp.Value) (interp.Value, error) {
	pat := arg(args, 0)
	re, ok, err := argRegex(in, pat)
	if err != nil {
		return interp.Undefined(), err
	}
	if !ok {
		src := ""
		if !pat.IsUndefined() {
			src, err = in.ToString(pat)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		re, err = regex.Compile(regexQuote(src), "")
		if err != nil {
			return interp.Undefined(), in.SyntaxErrorf("%v", err)
		}
	}
	m, err := runRegex(in, re, string(s), 0, "String.prototype.search")
	if err != nil {
		return interp.Undefined(), err
	}
	if m == nil {
		return interp.Number(-1), nil
	}
	return interp.Number(float64(m.Groups[0][0])), nil
}

// matchToArray builds the exec-style result array for a match.
func matchToArray(in *interp.Interp, m *regex.Match) interp.Value {
	arr := in.NewArray(nil)
	for g := 0; g < len(m.Groups); g++ {
		if m.GroupMatched(g) {
			arr.AppendElem(interp.String(m.GroupString(g)))
		} else {
			arr.AppendElem(interp.Undefined())
		}
	}
	arr.SetSlot("index", interp.Number(float64(m.Groups[0][0])), interp.DefaultAttr)
	arr.SetSlot("input", interp.String(string(m.Input)), interp.DefaultAttr)
	return interp.ObjValue(arr)
}

// regexQuote escapes a literal string for use as a regex source.
func regexQuote(s string) string {
	var b strings.Builder
	for _, r := range s {
		if strings.ContainsRune(`\.+*?()|[]{}^$/`, r) {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	return b.String()
}
