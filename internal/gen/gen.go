// Package gen implements the test-program generation stage: sample the
// language model, lint with the JSHint substitute, and keep 20% of the
// syntactically invalid programs for parser testing (Section 4.3).
package gen

import (
	"math/rand"

	"comfort/internal/js/lint"
	"comfort/internal/lm"
)

// Program is one generated test program.
type Program struct {
	Source string
	Valid  bool
}

// Pipeline couples a trained generator with the lint filter.
type Pipeline struct {
	Gen *lm.Generator
	// KeepInvalid is the fraction of syntactically invalid programs kept
	// for parser fuzzing (the paper keeps 20%).
	KeepInvalid float64
}

// New builds a pipeline with the paper's defaults.
func New(g *lm.Generator) *Pipeline {
	return &Pipeline{Gen: g, KeepInvalid: 0.2}
}

// Fork returns a pipeline sharing this one's trained generator and filter
// configuration. The generator is immutable after training and the lint
// filter is stateless, so forks may generate concurrently; Next stays a
// pure function of the rng argument — the property campaign generator
// shards rely on.
func (p *Pipeline) Fork() *Pipeline {
	cp := *p
	return &cp
}

// Next produces the next test program that survives the filter.
func (p *Pipeline) Next(rng *rand.Rand) Program {
	for {
		src := p.Gen.Generate(rng)
		valid := lint.Valid(src)
		if valid {
			return Program{Source: src, Valid: true}
		}
		if rng.Float64() < p.KeepInvalid {
			return Program{Source: src, Valid: false}
		}
	}
}

// Batch produces n filtered programs.
func (p *Pipeline) Batch(n int, rng *rand.Rand) []Program {
	out := make([]Program, 0, n)
	for len(out) < n {
		out = append(out, p.Next(rng))
	}
	return out
}
