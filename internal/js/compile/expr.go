package compile

import (
	"math"
	"strings"

	"comfort/internal/js/ast"
	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
	"comfort/internal/js/token"
)

// expr compiles one expression. Every produced thunk opens with the tree
// walker's expression prologue: one fuel step. Operand resolution that the
// tree walker performs per execution (reference-kind switches, operator
// mapping, callee rendering, key staticness) happens here, once.
func (c *compiler) expr(e ast.Expr) exprThunk {
	switch x := e.(type) {
	case *ast.Ident:
		return c.ident(x)
	case *ast.NumberLit:
		v := interp.Number(x.Value)
		return constThunk(v)
	case *ast.StringLit:
		v := interp.String(x.Value)
		return constThunk(v)
	case *ast.BoolLit:
		v := interp.Bool(x.Value)
		return constThunk(v)
	case *ast.NullLit:
		return constThunk(interp.Null())
	case *ast.ThisExpr:
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return in.CurrentThis(), nil
		}
	case *ast.RegexLit:
		pattern, flags := x.Pattern, x.Flags
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return in.NewRegExp(pattern, flags)
		}
	case *ast.TemplateLit:
		return c.template(x)
	case *ast.ArrayLit:
		return c.arrayLit(x)
	case *ast.ObjectLit:
		return c.objectLit(x)
	case *ast.FuncLit:
		c.funcBody(x)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return interp.ObjValue(in.MakeFunction(x, env, strict)), nil
		}
	case *ast.UnaryExpr:
		return c.unary(x)
	case *ast.UpdateExpr:
		return c.update(x)
	case *ast.BinaryExpr:
		return c.binary(x)
	case *ast.LogicalExpr:
		return c.logical(x)
	case *ast.AssignExpr:
		return c.assign(x)
	case *ast.CondExpr:
		id := x.ID()
		cond, then, els := c.expr(x.Cond), c.expr(x.Then), c.expr(x.Else)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			cv, err := cond(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if interp.ToBoolean(cv) {
				if in.Cov != nil {
					in.Cov.Branches[[2]int{id, 0}] = true
				}
				return then(in, env, strict)
			}
			if in.Cov != nil {
				in.Cov.Branches[[2]int{id, 1}] = true
			}
			return els(in, env, strict)
		}
	case *ast.CallExpr:
		return c.call(x)
	case *ast.NewExpr:
		callee := c.expr(x.Callee)
		args := c.args(x.Args)
		name := describeCallee(x.Callee)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			fnVal, err := callee(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			av, err := args.eval(in, env, strict, false)
			if err != nil {
				return interp.Undefined(), err
			}
			if !fnVal.IsObject() || !fnVal.Obj().IsCallable() {
				return interp.Undefined(), in.TypeErrorf("%s is not a constructor", name)
			}
			return in.Construct(fnVal.Obj(), av)
		}
	case *ast.MemberExpr:
		if x.Computed {
			if ol, ook := leafOf(x.Obj); ook {
				if kl, kok := leafOf(x.Prop); kok {
					return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
						if err := in.Charge(1); err != nil {
							return interp.Undefined(), err
						}
						ov, err := ol.read(in, env)
						if err != nil {
							return interp.Undefined(), err
						}
						kv, err := kl.read(in, env)
						if err != nil {
							return interp.Undefined(), err
						}
						if kv.IsObject() {
							key, err := in.ToPropertyKey(kv)
							if err != nil {
								return interp.Undefined(), err
							}
							kv = interp.String(key)
						}
						return in.GetPropByValue(ov, kv)
					}
				}
			}
			parts := c.computedParts(x)
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				obj, kv, err := parts(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				return in.GetPropByValue(obj, kv)
			}
		}
		key := x.Name
		if id, ok := x.Obj.(*ast.Ident); ok {
			read := identReader(id.Name, id.Ref)
			site := c.icSite()
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				// Two fuel steps: the member node and its identifier
				// operand, exactly the tree walker's two evalExpr entries.
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				ov, err := read(in, env)
				if err != nil {
					return interp.Undefined(), err
				}
				return in.GetPropICKey(site, ov, key)
			}
		}
		obj := c.expr(x.Obj)
		site := c.icSite()
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			ov, err := obj(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			return in.GetPropICKey(site, ov, key)
		}
	case *ast.SeqExpr:
		subs := make([]exprThunk, len(x.Exprs))
		for i, sub := range x.Exprs {
			subs[i] = c.expr(sub)
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			var last interp.Value
			for _, sub := range subs {
				var err error
				last, err = sub(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
			}
			return last, nil
		}
	case *ast.SpreadExpr:
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return interp.Undefined(), in.SyntaxErrorf("unexpected spread element")
		}
	default:
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return interp.Undefined(), in.Throwf("InternalError", "unsupported expression %T", e)
		}
	}
}

// leafKind classifies operand expressions whose evaluation is a pure,
// call-free read: literals and resolved identifiers. Fusing them into the
// parent thunk removes a closure invocation per operand while charging the
// same per-node fuel step at the same point.
type leafKind uint8

const (
	leafConst leafKind = iota
	leafSlot
	leafGlobal
	leafDynamic
)

type leaf struct {
	kind        leafKind
	v           interp.Value
	depth, slot uint16
	name        string
}

// leafOf classifies e; ok is false for non-leaf expressions.
func leafOf(e ast.Expr) (leaf, bool) {
	switch t := e.(type) {
	case *ast.NumberLit:
		return leaf{kind: leafConst, v: interp.Number(t.Value)}, true
	case *ast.StringLit:
		return leaf{kind: leafConst, v: interp.String(t.Value)}, true
	case *ast.BoolLit:
		return leaf{kind: leafConst, v: interp.Bool(t.Value)}, true
	case *ast.NullLit:
		return leaf{kind: leafConst, v: interp.Null()}, true
	case *ast.Ident:
		switch t.Ref.Kind {
		case ast.RefSlot:
			return leaf{kind: leafSlot, depth: t.Ref.Depth, slot: t.Ref.Slot}, true
		case ast.RefGlobal:
			return leaf{kind: leafGlobal, name: t.Name}, true
		default:
			return leaf{kind: leafDynamic, name: t.Name}, true
		}
	}
	return leaf{}, false
}

// read evaluates the leaf, charging its node's fuel step first (the tree
// walker's evalExpr entry).
func (lf *leaf) read(in *interp.Interp, env *interp.Env) (interp.Value, error) {
	if err := in.Charge(1); err != nil {
		return interp.Undefined(), err
	}
	switch lf.kind {
	case leafConst:
		return lf.v, nil
	case leafSlot:
		return env.SlotValue(lf.depth, lf.slot), nil
	case leafGlobal:
		return in.LookupGlobalName(lf.name)
	default:
		return in.LookupDynamic(lf.name, env)
	}
}

// binary compiles a binary operator application, fusing leaf operands
// into the operator thunk. Slot/const operand pairs — the shape of
// virtually every loop condition and accumulator step — collapse into a
// single thunk with one fused fuel charge and direct slot reads: the
// three per-node unit charges the tree walker pays are contiguous with
// only pure slot/constant reads between them, exactly ChargeSeq's
// contract.
func (c *compiler) binary(x *ast.BinaryExpr) exprThunk {
	apply := binApplier(x.Op)
	ll, lok := leafOf(x.L)
	rl, rok := leafOf(x.R)
	if lok && rok {
		switch {
		case ll.kind == leafSlot && rl.kind == leafSlot:
			ld, ls, rd, rs := ll.depth, ll.slot, rl.depth, rl.slot
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.ChargeSeq(3); err != nil {
					return interp.Undefined(), err
				}
				return apply(in, env.SlotValue(ld, ls), env.SlotValue(rd, rs))
			}
		case ll.kind == leafSlot && rl.kind == leafConst:
			ld, ls, rv := ll.depth, ll.slot, rl.v
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.ChargeSeq(3); err != nil {
					return interp.Undefined(), err
				}
				return apply(in, env.SlotValue(ld, ls), rv)
			}
		case ll.kind == leafConst && rl.kind == leafSlot:
			lv, rd, rs := ll.v, rl.depth, rl.slot
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.ChargeSeq(3); err != nil {
					return interp.Undefined(), err
				}
				return apply(in, lv, env.SlotValue(rd, rs))
			}
		case ll.kind == leafConst && rl.kind == leafConst:
			lv, rv := ll.v, rl.v
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.ChargeSeq(3); err != nil {
					return interp.Undefined(), err
				}
				return apply(in, lv, rv)
			}
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			lv, err := ll.read(in, env)
			if err != nil {
				return interp.Undefined(), err
			}
			rv, err := rl.read(in, env)
			if err != nil {
				return interp.Undefined(), err
			}
			return apply(in, lv, rv)
		}
	}
	if lok {
		r := c.expr(x.R)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			lv, err := ll.read(in, env)
			if err != nil {
				return interp.Undefined(), err
			}
			rv, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			return apply(in, lv, rv)
		}
	}
	l := c.expr(x.L)
	if rok {
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			lv, err := l(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			rv, err := rl.read(in, env)
			if err != nil {
				return interp.Undefined(), err
			}
			return apply(in, lv, rv)
		}
	}
	r := c.expr(x.R)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		lv, err := l(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		rv, err := r(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		return apply(in, lv, rv)
	}
}

// binApplier selects the operator application at compile time. The common
// operators get monomorphic appliers whose primitive fast paths are the
// tree walker's own semantics with the conversion calls proven away —
// ToPrimitive and ToNumber are identities on numbers, ToString on strings,
// and none of them charge fuel or fire hooks on primitives, so the fast
// paths are observably identical to ApplyBinary. Everything else (and
// every mixed-type operand pair) falls back to the shared ApplyBinary.
func binApplier(op token.Type) func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
	const num = interp.KindNumber
	switch op {
	case token.PLUS:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Number(l.Num() + r.Num()), nil
			}
			if l.Kind() == interp.KindString && r.Kind() == interp.KindString {
				return interp.String(l.Str() + r.Str()), nil
			}
			return in.ApplyBinary(token.PLUS, l, r)
		}
	case token.MINUS:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Number(l.Num() - r.Num()), nil
			}
			return in.ApplyBinary(token.MINUS, l, r)
		}
	case token.STAR:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Number(l.Num() * r.Num()), nil
			}
			return in.ApplyBinary(token.STAR, l, r)
		}
	case token.SLASH:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Number(l.Num() / r.Num()), nil
			}
			return in.ApplyBinary(token.SLASH, l, r)
		}
	case token.PERCENT:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Number(fmod(l.Num(), r.Num())), nil
			}
			return in.ApplyBinary(token.PERCENT, l, r)
		}
	case token.LT:
		// Go float comparisons are false on NaN operands, which is exactly
		// the abstract relational comparison's undefined→false rule.
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() < r.Num()), nil
			}
			return in.ApplyBinary(token.LT, l, r)
		}
	case token.GT:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() > r.Num()), nil
			}
			return in.ApplyBinary(token.GT, l, r)
		}
	case token.LE:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() <= r.Num()), nil
			}
			return in.ApplyBinary(token.LE, l, r)
		}
	case token.GE:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() >= r.Num()), nil
			}
			return in.ApplyBinary(token.GE, l, r)
		}
	case token.EQ:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() == r.Num()), nil
			}
			return in.ApplyBinary(token.EQ, l, r)
		}
	case token.NEQ:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			if l.Kind() == num && r.Kind() == num {
				return interp.Bool(l.Num() != r.Num()), nil
			}
			return in.ApplyBinary(token.NEQ, l, r)
		}
	case token.STRICTEQ:
		// === is pure over all kinds; bypass the dispatch entirely.
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			return interp.Bool(interp.SameValueStrict(l, r)), nil
		}
	case token.STRICTNE:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			return interp.Bool(!interp.SameValueStrict(l, r)), nil
		}
	default:
		return func(in *interp.Interp, l, r interp.Value) (interp.Value, error) {
			return in.ApplyBinary(op, l, r)
		}
	}
}

// fmod is math.Mod with an exact fast path for integral operands in the
// safe-integer range — the shape of virtually every fuzzer-generated
// modulus. Go's % truncates toward zero with the dividend's sign, exactly
// fmod's contract, and integral results up to 2⁵³ are exact in both
// representations; a zero result keeps the dividend's sign (JS -5 % 5 is
// -0). Everything else (NaN, infinities, fractional operands, huge
// magnitudes) takes math.Mod unchanged.
func fmod(a, b float64) float64 {
	const maxSafe = 1 << 53
	if a > -maxSafe && a < maxSafe && b > -maxSafe && b < maxSafe {
		ia, ib := int64(a), int64(b)
		if float64(ia) == a && float64(ib) == b && ib != 0 {
			m := ia % ib
			if m == 0 {
				return math.Copysign(0, a)
			}
			return float64(m)
		}
	}
	return math.Mod(a, b)
}

// constThunk evaluates to a fixed value (literals still pay their node's
// fuel step, exactly as the tree walker does).
func constThunk(v interp.Value) exprThunk {
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		return v, nil
	}
}

// ident compiles an identifier read through its resolved reference class.
func (c *compiler) ident(x *ast.Ident) exprThunk {
	switch x.Ref.Kind {
	case ast.RefSlot:
		depth, slot := x.Ref.Depth, x.Ref.Slot
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return env.SlotValue(depth, slot), nil
		}
	case ast.RefGlobal:
		name := x.Name
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return in.LookupGlobalName(name)
		}
	default:
		name := x.Name
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return in.LookupDynamic(name, env)
		}
	}
}

// identReader resolves an identifier without the expression fuel step —
// the evalRef read position, which the tree walker reaches without
// charging for the identifier node.
func identReader(name string, ref ast.ScopeRef) func(in *interp.Interp, env *interp.Env) (interp.Value, error) {
	switch ref.Kind {
	case ast.RefSlot:
		depth, slot := ref.Depth, ref.Slot
		return func(in *interp.Interp, env *interp.Env) (interp.Value, error) {
			return env.SlotValue(depth, slot), nil
		}
	case ast.RefGlobal:
		return func(in *interp.Interp, env *interp.Env) (interp.Value, error) {
			return in.LookupGlobalName(name)
		}
	default:
		return func(in *interp.Interp, env *interp.Env) (interp.Value, error) {
			return in.LookupDynamic(name, env)
		}
	}
}

// identAssigner writes an identifier through its resolved reference class.
func identAssigner(name string, ref ast.ScopeRef) func(in *interp.Interp, env *interp.Env, v interp.Value, strict bool) error {
	switch ref.Kind {
	case ast.RefSlot:
		depth, slot := ref.Depth, ref.Slot
		return func(in *interp.Interp, env *interp.Env, v interp.Value, strict bool) error {
			return in.AssignSlot(env, depth, slot, v, strict)
		}
	case ast.RefGlobal:
		return func(in *interp.Interp, env *interp.Env, v interp.Value, strict bool) error {
			return in.AssignGlobalName(name, v, strict)
		}
	default:
		return func(in *interp.Interp, env *interp.Env, v interp.Value, strict bool) error {
			return in.AssignDynamic(name, v, env, strict)
		}
	}
}

func (c *compiler) template(x *ast.TemplateLit) exprThunk {
	quasis := x.Quasis
	exprs := make([]exprThunk, len(x.Exprs))
	for i, sub := range x.Exprs {
		exprs[i] = c.expr(sub)
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		var b strings.Builder
		for i, q := range quasis {
			b.WriteString(q)
			if i < len(exprs) {
				v, err := exprs[i](in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				s, err := in.ToString(v)
				if err != nil {
					return interp.Undefined(), err
				}
				b.WriteString(s)
			}
		}
		return interp.String(b.String()), nil
	}
}

// arrayElem is one compiled array-literal element: a hole, a spread, or a
// plain expression.
type arrayElem struct {
	thunk  exprThunk // nil for a hole
	spread bool
}

func (c *compiler) arrayLit(x *ast.ArrayLit) exprThunk {
	elems := make([]arrayElem, len(x.Elems))
	for i, el := range x.Elems {
		if el == nil {
			continue
		}
		if sp, ok := el.(*ast.SpreadExpr); ok {
			elems[i] = arrayElem{thunk: c.expr(sp.X), spread: true}
			continue
		}
		elems[i] = arrayElem{thunk: c.expr(el)}
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		arr := in.NewArray(nil)
		for _, el := range elems {
			if el.thunk == nil {
				arr.AppendElem(interp.Undefined())
				continue
			}
			v, err := el.thunk(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if el.spread {
				items, err := in.Iterate(v)
				if err != nil {
					return interp.Undefined(), err
				}
				for _, item := range items {
					arr.AppendElem(item)
				}
				continue
			}
			arr.AppendElem(v)
		}
		return interp.ObjValue(arr), nil
	}
}

// propThunk is one compiled object-literal property.
type propThunk struct {
	key     string    // static key (Computed false)
	keyExpr exprThunk // computed key
	kind    ast.PropKind
	value   exprThunk    // PropInit
	accFn   *ast.FuncLit // PropGet / PropSet
}

func (c *compiler) objectLit(x *ast.ObjectLit) exprThunk {
	props := make([]propThunk, len(x.Props))
	for i := range x.Props {
		p := &x.Props[i]
		pt := propThunk{key: p.Key, kind: p.Kind}
		if p.Computed {
			pt.keyExpr = c.expr(p.KeyExpr)
		}
		switch p.Kind {
		case ast.PropInit:
			pt.value = c.expr(p.Value)
		case ast.PropGet, ast.PropSet:
			pt.accFn = p.Value.(*ast.FuncLit)
			c.funcBody(pt.accFn)
		}
		props[i] = pt
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		o := in.NewObject(in.Protos["Object"])
		for i := range props {
			p := &props[i]
			key := p.key
			if p.keyExpr != nil {
				kv, err := p.keyExpr(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				key, err = in.ToPropertyKey(kv)
				if err != nil {
					return interp.Undefined(), err
				}
			}
			switch p.kind {
			case ast.PropInit:
				v, err := p.value(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				o.SetSlot(key, v, interp.DefaultAttr)
			case ast.PropGet, ast.PropSet:
				fn := in.MakeFunction(p.accFn, env, strict)
				o.DefineAccessor(key, fn, p.kind == ast.PropGet)
			}
		}
		return interp.ObjValue(o), nil
	}
}

// ---------- unary / update ----------

func (c *compiler) unary(x *ast.UnaryExpr) exprThunk {
	if x.Op == token.TYPEOF {
		return c.typeofExpr(x)
	}
	if x.Op == token.DELETE {
		return c.deleteExpr(x)
	}
	operand := c.expr(x.X)
	op := x.Op
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		v, err := operand(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		switch op {
		case token.NOT:
			return interp.Bool(!interp.ToBoolean(v)), nil
		case token.MINUS:
			n, err := in.ToNumber(v)
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.Number(-n), nil
		case token.PLUS:
			n, err := in.ToNumber(v)
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.Number(n), nil
		case token.BNOT:
			n, err := in.ToNumber(v)
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.Number(float64(^jsnum.ToInt32(n))), nil
		case token.VOID:
			return interp.Undefined(), nil
		}
		return interp.Undefined(), in.Throwf("InternalError", "unsupported unary %s", op)
	}
}

func (c *compiler) typeofExpr(x *ast.UnaryExpr) exprThunk {
	operand := c.expr(x.X)
	id, isIdent := x.X.(*ast.Ident)
	if !isIdent {
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			v, err := operand(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			return interp.String(interp.TypeOf(v)), nil
		}
	}
	name := id.Name
	kind := id.Ref.Kind
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		switch kind {
		case ast.RefSlot:
			// Provably declared — fall through and evaluate.
		case ast.RefGlobal:
			if !in.GlobalEnv.Has(name) && !in.HasGlobalName(name) &&
				name != "undefined" && name != "globalThis" {
				return interp.String("undefined"), nil
			}
		default:
			if !env.Has(name) && !in.HasGlobalName(name) &&
				name != "undefined" && name != "globalThis" {
				return interp.String("undefined"), nil
			}
		}
		v, err := operand(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(interp.TypeOf(v)), nil
	}
}

func (c *compiler) deleteExpr(x *ast.UnaryExpr) exprThunk {
	if m, ok := x.X.(*ast.MemberExpr); ok {
		parts := c.memberParts(m)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			obj, key, err := parts(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if !obj.IsObject() {
				return interp.Bool(true), nil
			}
			ok := obj.Obj().DeleteOwn(key)
			if !ok && strict {
				return interp.Undefined(), in.TypeErrorf("Cannot delete property '%s'", key)
			}
			return interp.Bool(ok), nil
		}
	}
	if id, ok := x.X.(*ast.Ident); ok {
		name := id.Name
		kind := id.Ref.Kind
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			switch kind {
			case ast.RefSlot:
				return interp.Bool(false), nil
			case ast.RefGlobal:
				if in.GlobalEnv.Has(name) {
					return interp.Bool(false), nil
				}
			default:
				if env.Has(name) {
					return interp.Bool(false), nil
				}
			}
			return interp.Bool(in.Global.DeleteOwn(name)), nil
		}
	}
	// delete of a non-reference evaluates the operand and returns true.
	operand := c.expr(x.X)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		if _, err := operand(in, env, strict); err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(true), nil
	}
}

// readRefIdent reads an identifier at the evalRef position, mirroring the
// tree walker's unresolved-identifier handling: non-throw errors (fuel
// aborts) propagate, strict-mode reference errors propagate, and sloppy
// reads of missing names yield undefined (the setter may create a global).
func readRefIdent(read func(*interp.Interp, *interp.Env) (interp.Value, error),
	in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
	v, err := read(in, env)
	if err != nil {
		if _, isThrow := interp.IsThrow(err); !isThrow {
			return interp.Undefined(), err
		}
		if strict {
			return interp.Undefined(), err
		}
		v = interp.Undefined()
	}
	return v, nil
}

func (c *compiler) update(x *ast.UpdateExpr) exprThunk {
	delta := 1.0
	if x.Op == token.DEC {
		delta = -1
	}
	prefix := x.Prefix
	// Slot-resolved updates collapse to a direct read-modify-write on the
	// frame slot: no reader/writer closures at all. The slot read cannot
	// fail, so the generic path's unresolved-identifier handling is dead
	// here.
	if id, ok := x.X.(*ast.Ident); ok && id.Ref.Kind == ast.RefSlot {
		depth, slot := id.Ref.Depth, id.Ref.Slot
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			old := env.SlotValue(depth, slot)
			var n float64
			var err error
			if old.Kind() == interp.KindNumber {
				n = old.Num()
			} else if n, err = in.ToNumber(old); err != nil {
				return interp.Undefined(), err
			}
			nv := interp.Number(n + delta)
			if err := in.AssignSlot(env, depth, slot, nv, strict); err != nil {
				return interp.Undefined(), err
			}
			if prefix {
				return nv, nil
			}
			return interp.Number(n), nil
		}
	}
	// Identifier updates (the i++ of every fuzzer loop) read and write
	// through the resolved reference directly — no setter closure, no
	// ToNumber call for values that are already numbers.
	if id, ok := x.X.(*ast.Ident); ok {
		read := identReader(id.Name, id.Ref)
		write := identAssigner(id.Name, id.Ref)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			old, err := readRefIdent(read, in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			var n float64
			if old.Kind() == interp.KindNumber {
				n = old.Num()
			} else if n, err = in.ToNumber(old); err != nil {
				return interp.Undefined(), err
			}
			nv := interp.Number(n + delta)
			if err := write(in, env, nv, strict); err != nil {
				return interp.Undefined(), err
			}
			if prefix {
				return nv, nil
			}
			return interp.Number(n), nil
		}
	}
	ref := c.ref(x.X)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		old, set, err := ref(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		n, err := in.ToNumber(old)
		if err != nil {
			return interp.Undefined(), err
		}
		nv := interp.Number(n + delta)
		if err := set(nv); err != nil {
			return interp.Undefined(), err
		}
		if prefix {
			return nv, nil
		}
		return interp.Number(n), nil
	}
}

// refThunk resolves an assignable expression to its current value plus a
// setter — the thunk twin of evalRef.
type refThunk func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, func(interp.Value) error, error)

func (c *compiler) ref(e ast.Expr) refThunk {
	switch t := e.(type) {
	case *ast.Ident:
		read := identReader(t.Name, t.Ref)
		write := identAssigner(t.Name, t.Ref)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, func(interp.Value) error, error) {
			v, err := read(in, env)
			if err != nil {
				if _, isThrow := interp.IsThrow(err); !isThrow {
					return interp.Undefined(), nil, err
				}
				// Unresolved identifier: reads throw, but the setter may
				// create a global in sloppy mode.
				if strict {
					return interp.Undefined(), nil, err
				}
				v = interp.Undefined()
			}
			return v, func(nv interp.Value) error { return write(in, env, nv, strict) }, nil
		}
	case *ast.MemberExpr:
		parts := c.memberParts(t)
		if !t.Computed {
			// Static key: both the read and the write-back get inline-cache
			// sites (site soundness needs the key fixed at compile time).
			getSite := c.icSite()
			setSite := c.icSite()
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, func(interp.Value) error, error) {
				obj, key, err := parts(in, env, strict)
				if err != nil {
					return interp.Undefined(), nil, err
				}
				cur, err := in.GetPropICKey(getSite, obj, key)
				if err != nil {
					return interp.Undefined(), nil, err
				}
				return cur, func(nv interp.Value) error { return in.SetPropICKey(setSite, obj, key, nv, strict) }, nil
			}
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, func(interp.Value) error, error) {
			obj, key, err := parts(in, env, strict)
			if err != nil {
				return interp.Undefined(), nil, err
			}
			cur, err := in.GetPropKey(obj, key)
			if err != nil {
				return interp.Undefined(), nil, err
			}
			return cur, func(nv interp.Value) error { return in.SetProp(obj, key, nv, strict) }, nil
		}
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, func(interp.Value) error, error) {
		return interp.Undefined(), nil, in.SyntaxErrorf("invalid assignment target")
	}
}

// memberParts evaluates a member expression's object and string key — the
// thunk twin of evalMemberParts (keys are converted eagerly; conversion
// can run user code, so it happens at the key's evaluation position).
type partsThunk func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, string, error)

func (c *compiler) memberParts(m *ast.MemberExpr) partsThunk {
	if !m.Computed {
		key := m.Name
		if ol, ok := leafOf(m.Obj); ok {
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, string, error) {
				ov, err := ol.read(in, env)
				if err != nil {
					return interp.Undefined(), "", err
				}
				return ov, key, nil
			}
		}
		obj := c.expr(m.Obj)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, string, error) {
			ov, err := obj(in, env, strict)
			if err != nil {
				return interp.Undefined(), "", err
			}
			return ov, key, nil
		}
	}
	obj := c.expr(m.Obj)
	prop := c.expr(m.Prop)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, string, error) {
		ov, err := obj(in, env, strict)
		if err != nil {
			return interp.Undefined(), "", err
		}
		kv, err := prop(in, env, strict)
		if err != nil {
			return interp.Undefined(), "", err
		}
		key, err := in.ToPropertyKey(kv)
		if err != nil {
			return interp.Undefined(), "", err
		}
		return ov, key, nil
	}
}

// computedParts evaluates a computed member expression keeping primitive
// keys unconverted — the thunk twin of evalComputedParts, feeding the
// by-value fast paths.
type valuePartsThunk func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, interp.Value, error)

func (c *compiler) computedParts(m *ast.MemberExpr) valuePartsThunk {
	if oid, ok := m.Obj.(*ast.Ident); ok {
		if kid, ok := m.Prop.(*ast.Ident); ok {
			readObj := identReader(oid.Name, oid.Ref)
			readKey := identReader(kid.Name, kid.Ref)
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, interp.Value, error) {
				// One fuel step per identifier node, as the tree walker's
				// evalExpr entries charge.
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), interp.Undefined(), err
				}
				ov, err := readObj(in, env)
				if err != nil {
					return interp.Undefined(), interp.Undefined(), err
				}
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), interp.Undefined(), err
				}
				kv, err := readKey(in, env)
				if err != nil {
					return interp.Undefined(), interp.Undefined(), err
				}
				if kv.IsObject() {
					key, err := in.ToPropertyKey(kv)
					if err != nil {
						return interp.Undefined(), interp.Undefined(), err
					}
					kv = interp.String(key)
				}
				return ov, kv, nil
			}
		}
	}
	obj := c.expr(m.Obj)
	prop := c.expr(m.Prop)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, interp.Value, error) {
		ov, err := obj(in, env, strict)
		if err != nil {
			return interp.Undefined(), interp.Undefined(), err
		}
		kv, err := prop(in, env, strict)
		if err != nil {
			return interp.Undefined(), interp.Undefined(), err
		}
		if kv.IsObject() {
			key, err := in.ToPropertyKey(kv)
			if err != nil {
				return interp.Undefined(), interp.Undefined(), err
			}
			kv = interp.String(key)
		}
		return ov, kv, nil
	}
}

// ---------- logical / assignment ----------

func (c *compiler) logical(x *ast.LogicalExpr) exprThunk {
	id := x.ID()
	l, r := c.expr(x.L), c.expr(x.R)
	op := x.Op
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		lv, err := l(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		short := false
		switch op {
		case token.LOGAND:
			short = !interp.ToBoolean(lv)
		case token.LOGOR:
			short = interp.ToBoolean(lv)
		case token.NULLISH:
			short = !lv.IsNullish()
		}
		if short {
			if in.Cov != nil {
				in.Cov.Branches[[2]int{id, 1}] = true
			}
			return lv, nil
		}
		if in.Cov != nil {
			in.Cov.Branches[[2]int{id, 0}] = true
		}
		return r(in, env, strict)
	}
}

// compoundOps maps compound-assignment tokens to their binary operator.
var compoundOps = map[token.Type]token.Type{
	token.PLUSASSIGN:    token.PLUS,
	token.MINUSASSIGN:   token.MINUS,
	token.STARASSIGN:    token.STAR,
	token.SLASHASSIGN:   token.SLASH,
	token.PERCENTASSIGN: token.PERCENT,
	token.POWASSIGN:     token.POW,
	token.SHLASSIGN:     token.SHL,
	token.SHRASSIGN:     token.SHR,
	token.USHRASSIGN:    token.USHR,
	token.ANDASSIGN:     token.AND,
	token.ORASSIGN:      token.OR,
	token.XORASSIGN:     token.XOR,
}

func (c *compiler) assign(x *ast.AssignExpr) exprThunk {
	if x.Op == token.ASSIGN {
		return c.plainAssign(x)
	}
	switch x.Op {
	case token.LOGANDASSIGN, token.LOGORASSIGN, token.NULLISHASSIGN:
		r := c.expr(x.R)
		op := x.Op
		if id, ok := x.L.(*ast.Ident); ok {
			read := identReader(id.Name, id.Ref)
			write := identAssigner(id.Name, id.Ref)
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				cur, err := readRefIdent(read, in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				if !logicalAssignTakes(op, cur) {
					return cur, nil
				}
				v, err := r(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				return v, write(in, env, v, strict)
			}
		}
		ref := c.ref(x.L)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			cur, set, err := ref(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if !logicalAssignTakes(op, cur) {
				return cur, nil
			}
			v, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			return v, set(v)
		}
	}
	r := c.expr(x.R)
	binOp, known := compoundOps[x.Op]
	// Slot-resolved compound targets (acc += …) read and write the frame
	// slot directly; the slot read cannot fail, so the generic path's
	// unresolved-identifier handling is dead here.
	if id, ok := x.L.(*ast.Ident); ok && known && id.Ref.Kind == ast.RefSlot {
		depth, slot := id.Ref.Depth, id.Ref.Slot
		apply := binApplier(binOp)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			cur := env.SlotValue(depth, slot)
			rhs, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			v, err := apply(in, cur, rhs)
			if err != nil {
				return interp.Undefined(), err
			}
			if err := in.AssignSlot(env, depth, slot, v, strict); err != nil {
				return interp.Undefined(), err
			}
			return v, nil
		}
	}
	if id, ok := x.L.(*ast.Ident); ok && known {
		read := identReader(id.Name, id.Ref)
		write := identAssigner(id.Name, id.Ref)
		apply := binApplier(binOp)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			cur, err := readRefIdent(read, in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			rhs, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			v, err := apply(in, cur, rhs)
			if err != nil {
				return interp.Undefined(), err
			}
			return v, write(in, env, v, strict)
		}
	}
	ref := c.ref(x.L)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		cur, set, err := ref(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		rhs, err := r(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		if !known {
			return interp.Undefined(), in.SyntaxErrorf("unsupported assignment operator")
		}
		v, err := in.ApplyBinary(binOp, cur, rhs)
		if err != nil {
			return interp.Undefined(), err
		}
		return v, set(v)
	}
}

// logicalAssignTakes reports whether a logical assignment operator
// proceeds to its right-hand side given the current value.
func logicalAssignTakes(op token.Type, cur interp.Value) bool {
	switch op {
	case token.LOGANDASSIGN:
		return interp.ToBoolean(cur)
	case token.LOGORASSIGN:
		return !interp.ToBoolean(cur)
	default: // NULLISHASSIGN
		return cur.IsNullish()
	}
}

func (c *compiler) plainAssign(x *ast.AssignExpr) exprThunk {
	switch t := x.L.(type) {
	case *ast.Ident:
		// Slot-resolved targets write the frame slot directly; leaf
		// right-hand sides fuse the two unit charges (assign node + leaf
		// node) — the intervening slot/const read is pure, ChargeSeq's
		// contract. An unnamed function literal RHS needs the name fix, so
		// it stays on the generic thunk below.
		if fn, ok := x.R.(*ast.FuncLit); t.Ref.Kind == ast.RefSlot && !(ok && fn.Name == "") {
			depth, slot := t.Ref.Depth, t.Ref.Slot
			if rl, rok := leafOf(x.R); rok {
				switch rl.kind {
				case leafSlot:
					rd, rs := rl.depth, rl.slot
					return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
						if err := in.ChargeSeq(2); err != nil {
							return interp.Undefined(), err
						}
						v := env.SlotValue(rd, rs)
						if err := in.AssignSlot(env, depth, slot, v, strict); err != nil {
							return interp.Undefined(), err
						}
						return v, nil
					}
				case leafConst:
					rv := rl.v
					return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
						if err := in.ChargeSeq(2); err != nil {
							return interp.Undefined(), err
						}
						if err := in.AssignSlot(env, depth, slot, rv, strict); err != nil {
							return interp.Undefined(), err
						}
						return rv, nil
					}
				}
			}
			r := c.expr(x.R)
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				v, err := r(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				if err := in.AssignSlot(env, depth, slot, v, strict); err != nil {
					return interp.Undefined(), err
				}
				return v, nil
			}
		}
		r := c.expr(x.R)
		nameFix := false
		if fn, ok := x.R.(*ast.FuncLit); ok && fn.Name == "" {
			nameFix = true
		}
		name := t.Name
		write := identAssigner(name, t.Ref)
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			v, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if nameFix && v.IsObject() {
				v.Obj().SetSlot("name", interp.String(name), interp.Configurable)
			}
			if err := write(in, env, v, strict); err != nil {
				return interp.Undefined(), err
			}
			return v, nil
		}
	case *ast.MemberExpr:
		if t.Computed {
			r := c.expr(x.R)
			if ol, ook := leafOf(t.Obj); ook {
				if kl, kok := leafOf(t.Prop); kok {
					return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
						if err := in.Charge(1); err != nil {
							return interp.Undefined(), err
						}
						ov, err := ol.read(in, env)
						if err != nil {
							return interp.Undefined(), err
						}
						kv, err := kl.read(in, env)
						if err != nil {
							return interp.Undefined(), err
						}
						if kv.IsObject() {
							key, err := in.ToPropertyKey(kv)
							if err != nil {
								return interp.Undefined(), err
							}
							kv = interp.String(key)
						}
						v, err := r(in, env, strict)
						if err != nil {
							return interp.Undefined(), err
						}
						if err := in.SetPropByValue(ov, kv, v, strict); err != nil {
							return interp.Undefined(), err
						}
						return v, nil
					}
				}
			}
			parts := c.computedParts(t)
			return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
				if err := in.Charge(1); err != nil {
					return interp.Undefined(), err
				}
				obj, kv, err := parts(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				v, err := r(in, env, strict)
				if err != nil {
					return interp.Undefined(), err
				}
				if err := in.SetPropByValue(obj, kv, v, strict); err != nil {
					return interp.Undefined(), err
				}
				return v, nil
			}
		}
		obj := c.expr(t.Obj)
		key := t.Name
		r := c.expr(x.R)
		site := c.icSite()
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			ov, err := obj(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			v, err := r(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			if err := in.SetPropICKey(site, ov, key, v, strict); err != nil {
				return interp.Undefined(), err
			}
			return v, nil
		}
	default:
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			return interp.Undefined(), in.SyntaxErrorf("invalid assignment target")
		}
	}
}

// ---------- calls ----------

func (c *compiler) call(x *ast.CallExpr) exprThunk {
	args := c.args(x.Args)
	name := describeCallee(x.Callee)
	if m, ok := x.Callee.(*ast.MemberExpr); ok {
		parts := c.memberParts(m)
		// The method load gets an inline-cache site when the property name
		// is a compile-time constant; computed callees stay generic.
		site := -1
		if !m.Computed {
			site = c.icSite()
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
			if err := in.Charge(1); err != nil {
				return interp.Undefined(), err
			}
			obj, key, err := parts(in, env, strict)
			if err != nil {
				return interp.Undefined(), err
			}
			var fnVal interp.Value
			if site >= 0 {
				fnVal, err = in.GetPropICKey(site, obj, key)
			} else {
				fnVal, err = in.GetPropKey(obj, key)
			}
			if err != nil {
				return interp.Undefined(), err
			}
			pooled := args.poolable && plainFunc(fnVal)
			av, err := args.eval(in, env, strict, pooled)
			if err != nil {
				return interp.Undefined(), err
			}
			if !fnVal.IsObject() || !fnVal.Obj().IsCallable() {
				return interp.Undefined(), in.TypeErrorf("%s is not a function", name)
			}
			v, err := in.Call(fnVal.Obj(), obj, av)
			if pooled {
				in.ReleaseArgs(av)
			}
			return v, err
		}
	}
	callee := c.expr(x.Callee)
	return func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if err := in.Charge(1); err != nil {
			return interp.Undefined(), err
		}
		fnVal, err := callee(in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		var thisVal interp.Value
		if !in.Strict && !strict {
			thisVal = interp.ObjValue(in.Global)
		}
		pooled := args.poolable && plainFunc(fnVal)
		av, err := args.eval(in, env, strict, pooled)
		if err != nil {
			return interp.Undefined(), err
		}
		if !fnVal.IsObject() || !fnVal.Obj().IsCallable() {
			return interp.Undefined(), in.TypeErrorf("%s is not a function", name)
		}
		v, err := in.Call(fnVal.Obj(), thisVal, av)
		if pooled {
			in.ReleaseArgs(av)
		}
		return v, err
	}
}

// argElem is one compiled call argument.
type argElem struct {
	thunk  exprThunk
	spread bool
}

// argList is a compiled argument list. Spread-free lists (the normal
// case) may evaluate into a pooled slice when the call site proved the
// callee cannot retain it.
type argList struct {
	elems    []argElem
	poolable bool // no spread elements
}

// args compiles an argument list — the thunk twin of evalArgs.
func (c *compiler) args(exprs []ast.Expr) argList {
	elems := make([]argElem, len(exprs))
	poolable := true
	for i, a := range exprs {
		if sp, ok := a.(*ast.SpreadExpr); ok {
			elems[i] = argElem{thunk: c.expr(sp.X), spread: true}
			poolable = false
			continue
		}
		elems[i] = argElem{thunk: c.expr(a)}
	}
	return argList{elems: elems, poolable: poolable}
}

// eval evaluates the argument list; pooled selects the recycled-slice
// path (callers must ReleaseArgs after the call completes).
func (al *argList) eval(in *interp.Interp, env *interp.Env, strict bool, pooled bool) ([]interp.Value, error) {
	if pooled {
		out := in.AcquireArgs(len(al.elems))
		for i := range al.elems {
			v, err := al.elems[i].thunk(in, env, strict)
			if err != nil {
				// Return the slice on the throw path too — fuzzed
				// programs throw mid-argument-list constantly, and the
				// pool would otherwise drain exactly when it matters.
				in.ReleaseArgs(out)
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var out []interp.Value
	if len(al.elems) > 0 {
		out = make([]interp.Value, 0, len(al.elems))
	}
	for i := range al.elems {
		el := &al.elems[i]
		v, err := el.thunk(in, env, strict)
		if err != nil {
			return nil, err
		}
		if el.spread {
			items, err := in.Iterate(v)
			if err != nil {
				return nil, err
			}
			out = append(out, items...)
			continue
		}
		out = append(out, v)
	}
	return out, nil
}

// plainFunc reports whether the callee is a plain JS function — the
// args-pooling precondition (natives and bound functions may retain the
// argument slice; plain functions only copy values out of it).
func plainFunc(fnVal interp.Value) bool {
	if !fnVal.IsObject() {
		return false
	}
	o := fnVal.Obj()
	return o.Fn != nil && o.Native == nil && o.BoundTarget == nil
}

// describeCallee renders a callee for not-a-function/constructor errors,
// mirroring the tree walker's rendering.
func describeCallee(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.MemberExpr:
		if !t.Computed {
			return describeCallee(t.Obj) + "." + t.Name
		}
		return describeCallee(t.Obj) + "[...]"
	default:
		return "expression"
	}
}
