// The HTTP/JSON surface of comfortd. Thin by design: every endpoint
// translates between HTTP and the supervisor, which owns all state. The
// stream endpoint speaks server-sent events off a hub subscription; its
// bounded drop-oldest buffer is what lets a slow or dead client fall
// behind without ever stalling the campaign feeding it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler builds the comfortd HTTP API over a supervisor:
//
//	POST /jobs              submit a Spec, returns the created Status
//	GET  /jobs              list all job statuses in submission order
//	GET  /jobs/{id}         one job's status (+ accounting once done)
//	POST /jobs/{id}/cancel  cancel a non-terminal job
//	GET  /jobs/{id}/stream  server-sent events of progress samples
//	GET  /healthz           liveness + queue counters
func Handler(s *Supervisor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var sp Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed spec: %v", err))
			return
		}
		st, err := s.Submit(sp)
		if err != nil {
			var qf *QueueFullError
			switch {
			case errors.As(err, &qf):
				w.Header().Set("Retry-After", strconv.Itoa(int(qf.RetryAfter.Seconds())))
				writeError(w, http.StatusServiceUnavailable, err.Error())
			case errors.Is(err, ErrDraining):
				writeError(w, http.StatusServiceUnavailable, err.Error())
			default:
				writeError(w, http.StatusBadRequest, err.Error())
			}
			return
		}
		writeJSONResponse(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		st, ok := s.JobStatus(id)
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound.Error())
			return
		}
		resp := map[string]any{"status": st}
		if st.State == StateDone {
			if data := s.Accounting(id); data != nil {
				resp["accounting"] = json.RawMessage(data)
			}
		}
		writeJSONResponse(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		switch err := s.CancelJob(id); {
		case err == nil:
			st, _ := s.JobStatus(id)
			writeJSONResponse(w, http.StatusOK, st)
		case errors.Is(err, ErrNotFound):
			writeError(w, http.StatusNotFound, err.Error())
		case errors.Is(err, ErrTerminal):
			writeError(w, http.StatusConflict, err.Error())
		default:
			var ph *PeerHeldError
			if errors.As(err, &ph) {
				writeError(w, http.StatusConflict, err.Error())
				return
			}
			writeError(w, http.StatusInternalServerError, err.Error())
		}
	})
	mux.HandleFunc("GET /jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		sub, ok := s.Subscribe(id)
		if !ok {
			writeError(w, http.StatusNotFound, ErrNotFound.Error())
			return
		}
		defer s.Unsubscribe(id, sub)
		fl, canFlush := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		if canFlush {
			fl.Flush()
		}
		for {
			select {
			case <-r.Context().Done():
				return
			case sample, open := <-sub.ch:
				if !open {
					return // terminal state reached: stream complete
				}
				data, err := json.Marshal(sample)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
					return
				}
				if canFlush {
					fl.Flush()
				}
			}
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		counts := map[string]int{}
		for _, st := range s.List() {
			counts[st.State]++
		}
		resp := map[string]any{
			"ok":   true,
			"jobs": counts,
			// The operator's view of this instance's lease health: its
			// identity, how many jobs it holds, how often it self-fenced
			// (non-zero means it keeps losing claims to peers), and how
			// many jobs are parked in quarantine.
			"instance": map[string]any{
				"id":          s.Instance(),
				"leases_held": s.LeasesHeld(),
				"fences":      s.Fences(),
				"quarantined": counts[StateQuarantined],
			},
		}
		if warns := s.Warnings(); len(warns) > 0 {
			resp["store_warnings"] = warns
		}
		writeJSONResponse(w, http.StatusOK, resp)
	})
	return mux
}

func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSONResponse(w, code, map[string]any{"error": msg})
}
