package engines

import (
	"comfort/internal/js/analyze"
	"comfort/internal/js/ast"
	"comfort/internal/js/builtins"
	"comfort/internal/js/compile"
	"comfort/internal/js/interp"
	"comfort/internal/js/parser"
	"comfort/internal/js/resolve"
)

// finishParse applies the resolve-once, compile-once and analyze-once
// passes to a fresh parse per the run options — the single-defect
// executors' equivalent of PreparedTestbed.parseFor.
func finishParse(prog *ast.Program, opts RunOptions) {
	if !opts.DisableResolve {
		resolve.Program(prog)
		if !opts.DisableCompile {
			compile.Program(prog)
		}
	}
	analyze.Program(prog)
}

// RunWithDefect executes src with exactly one defect installed — the
// ground-truth attribution primitive used by the campaign accounting.
func RunWithDefect(d *Defect, src string, strict bool, opts RunOptions) ExecResult {
	cfg := interp.Config{Fuel: opts.Fuel, Seed: opts.Seed, Strict: strict}
	parseOpts := parser.Options{Strict: strict}
	if d != nil {
		if d.Configure != nil {
			d.Configure(&cfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			cfg.Hook = d.Hook
		}
		if d.PreParse != nil {
			if msg := d.PreParse(src); msg != "" {
				return ExecResult{Outcome: OutcomeParseError, Error: "SyntaxError: " + msg, ErrName: "SyntaxError"}
			}
		}
	}
	cfg.DisableCompile = opts.DisableCompile
	cfg.DisableShapes = opts.DisableShapes
	cfg.Watchdog = opts.Watchdog
	in := builtins.NewRuntime(cfg)
	prog, err := parser.ParseWith(src, parseOpts)
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	finishParse(prog, opts)
	if res, bad := earlyErrorResult(prog, opts); bad {
		return res
	}
	return runGuarded(in, prog, opts)
}

// DefectRunner is the prepared form of RunWithDefect: the interpreter
// config, parser options and hook for one (defect, mode) pair are resolved
// once, so a reduction predicate that executes hundreds of candidates pays
// the setup exactly once. A nil defect prepares the defect-free reference.
// Run is safe for concurrent use (each call builds its own runtime).
type DefectRunner struct {
	d         *Defect
	baseCfg   interp.Config // Strict + Configure deltas; Fuel/Seed per run
	parseOpts parser.Options
}

// NewDefectRunner prepares a single-defect executor with semantics
// identical to RunWithDefect(d, ·, strict, ·).
func NewDefectRunner(d *Defect, strict bool) *DefectRunner {
	r := &DefectRunner{
		d:         d,
		baseCfg:   interp.Config{Strict: strict},
		parseOpts: parser.Options{Strict: strict},
	}
	if d != nil {
		if d.Configure != nil {
			d.Configure(&r.baseCfg)
		}
		if d.ParserOpts != nil {
			d.ParserOpts(&r.parseOpts)
		}
		if d.Hook != nil && (!d.StrictOnly || strict) {
			r.baseCfg.Hook = d.Hook
		}
	}
	return r
}

// Run executes src with the prepared defect (or the reference when the
// runner was prepared with a nil defect). RunOptions.DisableResolve keeps
// the execution on the dynamic map-scope evaluator.
func (r *DefectRunner) Run(src string, opts RunOptions) ExecResult {
	if msg := r.preParseError(src); msg != "" {
		return PreParseResult(msg)
	}
	prog, err := parser.ParseWith(src, r.parseOpts)
	if err == nil {
		finishParse(prog, opts)
	}
	return r.execParsed(prog, err, opts)
}

// preParseError runs the defect's pre-parse interceptor, if any.
func (r *DefectRunner) preParseError(src string) string {
	if r.d != nil && r.d.PreParse != nil {
		if msg := r.d.PreParse(src); msg != "" {
			return "SyntaxError: " + msg
		}
	}
	return ""
}

// execParsed executes an already-compiled (and pre-parse-gated) program.
func (r *DefectRunner) execParsed(prog *ast.Program, err error, opts RunOptions) ExecResult {
	if err != nil {
		return ExecResult{Outcome: OutcomeParseError, Error: err.Error(), ErrName: "SyntaxError"}
	}
	if res, bad := earlyErrorResult(prog, opts); bad {
		return res
	}
	cfg := r.baseCfg
	cfg.Fuel = opts.Fuel
	cfg.Seed = opts.Seed
	cfg.DisableCompile = opts.DisableCompile
	cfg.DisableShapes = opts.DisableShapes
	cfg.Watchdog = opts.Watchdog
	in := builtins.NewRuntime(cfg)
	return runGuarded(in, prog, opts)
}

// DivergesRunners builds a reduction predicate over two prepared
// single-defect runners: it reports whether src behaves differently under
// a and b. When the runners’ parser options coincide (the common case —
// a defect without parser interceptors against the defect-free reference)
// each candidate is compiled once and the program shared between both
// executions, halving the per-candidate parse+resolve cost of a campaign
// reduction. Safe for concurrent calls, as reduce.Parallel requires.
func DivergesRunners(a, b *DefectRunner, opts RunOptions) func(src string) bool {
	if a.parseOpts.Fingerprint() != b.parseOpts.Fingerprint() {
		return func(src string) bool {
			return a.Run(src, opts).Key() != b.Run(src, opts).Key()
		}
	}
	return func(src string) bool {
		var prog *ast.Program
		var perr error
		parsed := false
		runOne := func(r *DefectRunner) ExecResult {
			if msg := r.preParseError(src); msg != "" {
				return PreParseResult(msg)
			}
			if !parsed {
				prog, perr = parser.ParseWith(src, a.parseOpts)
				if perr == nil {
					finishParse(prog, opts)
				}
				parsed = true
			}
			return r.execParsed(prog, perr, opts)
		}
		return runOne(a).Key() != runOne(b).Key()
	}
}

// Attribute identifies which seeded defects of the testbed's version are
// responsible for a divergence observed on src: each active defect is
// re-run in isolation against the defect-free reference. Candidates whose
// resolved parser options coincide share one compiled program — the same
// trick DivergesRunners uses — so a witness is parsed (and scope-resolved)
// once per distinct option fingerprint instead of once per candidate;
// only the handful of defects with parser interceptors pay their own
// parse. Execution semantics are unchanged: each candidate still runs
// with exactly its own config, hook and pre-parse gate.
func Attribute(src string, tb Testbed, opts RunOptions) []*Defect {
	type compiled struct {
		prog *ast.Program
		err  error
	}
	cache := map[uint64]compiled{}
	runOne := func(r *DefectRunner) ExecResult {
		if msg := r.preParseError(src); msg != "" {
			return PreParseResult(msg)
		}
		fp := r.parseOpts.Fingerprint()
		c, ok := cache[fp]
		if !ok {
			c.prog, c.err = parser.ParseWith(src, r.parseOpts)
			if c.err == nil {
				if !opts.DisableResolve {
					resolve.Program(c.prog)
				}
				analyze.Program(c.prog)
			}
			cache[fp] = c
		}
		return r.execParsed(c.prog, c.err, opts)
	}
	ref := runOne(NewDefectRunner(nil, tb.Strict))
	var out []*Defect
	for _, d := range ActiveDefects(tb.Version) {
		r := runOne(NewDefectRunner(d, tb.Strict))
		if r.Key() != ref.Key() {
			out = append(out, d)
		}
	}
	return out
}
