// conformance-hunt: a miniature end-to-end COMFORT campaign over all 104
// testbeds, with ground-truth attribution and the paper's Table-2 output.
package main

import (
	"fmt"

	"comfort"
)

func main() {
	fmt.Printf("testbeds: %d, seeded defects: %d\n",
		len(comfort.Testbeds()), len(comfort.Catalog()))
	fmt.Println("running a 400-case COMFORT campaign (scaled stand-in for the paper's 200h run)...")

	res := comfort.RunCampaign(comfort.CampaignConfig{
		Fuzzer:   comfort.NewComfortFuzzer(),
		Testbeds: comfort.Testbeds(),
		Cases:    400,
		Seed:     7,
	})

	fmt.Printf("\ncases run:           %d\n", res.CasesRun)
	fmt.Printf("testbed executions:  %d\n", res.Executed)
	fmt.Printf("duplicates filtered: %d (Figure-6 tree)\n", res.DuplicatesFiltered)
	fmt.Printf("unique bugs found:   %d\n\n", len(res.Found))

	for id, f := range res.Found {
		fmt.Printf("  %-10s %-12s %-40s %s\n", id, f.Defect.Engine, f.Defect.API, f.Verdict)
	}
	fmt.Println()
	fmt.Println(comfort.Tables.Table2(res.FoundDefects()))
}
