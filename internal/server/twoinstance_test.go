package server

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a shared, manually-advanced clock: leases expire only
// when a test says time passed, so takeover timing is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

const testLeaseTTL = 10 * time.Second

// twoInstanceOptions configures one member of a shared-store pair: a
// fake shared clock, an hour-long heartbeat (the background loop stays
// parked; tests drive maintain() directly), and instant backoff sleeps.
func twoInstanceOptions(store *Store, clk *fakeClock, id string) Options {
	return Options{
		Store:         store,
		InstanceID:    id,
		LeaseTTL:      testLeaseTTL,
		Heartbeat:     time.Hour,
		PoolWorkers:   2,
		MaxActive:     3,
		Sleep:         instantSleep,
		ProgressEvery: 4,
		Clock:         clk.Now,
	}
}

// expireDeadLeases advances the shared clock past the lease TTL in
// sub-TTL steps, renewing every live instance's leases between steps —
// so dead instances' claims expire while live holders never miss a
// renewal (exactly what real heartbeats do, compressed).
func expireDeadLeases(clk *fakeClock, live ...*Supervisor) {
	for i := 0; i < 2; i++ {
		clk.Advance(testLeaseTTL/2 + time.Second)
		for _, s := range live {
			s.maintain()
		}
	}
}

// TestTwoInstanceCrashRecoveryOracle is the multi-instance half of the
// crash-recovery contract: two supervisors share one store and one
// clock, jobs are submitted to both, and instances are killed (SIGKILL
// emulation: no drain, no flush, leases left to rot) and restarted in
// alternating order at escalating progress thresholds, with peers taking
// over expired claims in between. After convergence every job's
// result.json must be byte-identical to an uninterrupted direct campaign
// run, and no clean job may have burned a retry — a takeover resumes the
// checkpoint, it does not re-execute or double-account work. The
// StalledInstanceSelfFences subtest covers the other failure shape: a
// live-but-stalled instance (SIGSTOP emulation) whose lease expired
// mid-write must detect the peer's fencing epoch and refuse the write.
func TestTwoInstanceCrashRecoveryOracle(t *testing.T) {
	t.Run("KillRotation", func(t *testing.T) {
		specs := []Spec{
			{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 6, CheckpointEvery: 8},
			{Fuzzer: "COMFORT", Cases: 40, Seed: 7, TestbedLimit: 6, CheckpointEvery: 8,
				Faults: "kill=1"},
			{Fuzzer: "COMFORT", Cases: 32, Seed: 11, TestbedLimit: 4, CheckpointEvery: 8},
		}
		want := make([][]byte, len(specs))
		for i, sp := range specs {
			clean := sp
			clean.Faults = ""
			want[i] = expectedAccounting(t, clean)
		}

		clk := newFakeClock()
		store, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := map[string]Options{
			"alpha": twoInstanceOptions(store, clk, "alpha"),
			"beta":  twoInstanceOptions(store, clk, "beta"),
		}
		live := map[string]*Supervisor{}
		for name, o := range opts {
			if live[name], err = NewSupervisor(o); err != nil {
				t.Fatal(err)
			}
		}

		// Spread submissions across both instances; the job-directory
		// create arbitrates the shared sequence space, so IDs never
		// collide even though both instances start counting from 1.
		ids := make([]string, len(specs))
		for i, sp := range specs {
			owner := "alpha"
			if i%2 == 1 {
				owner = "beta"
			}
			st, err := live[owner].Submit(sp)
			if err != nil {
				t.Fatalf("submit %d to %s: %v", i, owner, err)
			}
			ids[i] = st.ID
		}
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate job ID %s: seq arbitration failed", id)
			}
			seen[id] = true
		}
		for _, s := range live {
			s.maintain() // adopt the peer's submissions
		}

		// progress sums each job's best-known case position across the
		// live instances.
		progress := func() int {
			total := 0
			for _, id := range ids {
				best := 0
				for _, s := range live {
					if st, ok := s.JobStatus(id); ok && st.CasesDone > best {
						best = st.CasesDone
					}
				}
				total += best
			}
			return total
		}
		converged := func() bool {
			for _, id := range ids {
				if store.ReadResult(id) == nil {
					return false
				}
			}
			return true
		}

		// Kill rotation: alpha, beta, alpha — each kill abandons leases
		// mid-flight, the survivor takes the work over after the TTL, and
		// the victim restarts under its old identity (so it may reclaim
		// any lease the survivor has not contested yet).
		victims := []string{"alpha", "beta", "alpha"}
		thresholds := []int{8, 24, 48}
		for round, victim := range victims {
			deadline := time.Now().Add(2 * time.Minute)
			for progress() < thresholds[round] && !converged() {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: never reached %d cases", round, thresholds[round])
				}
				time.Sleep(2 * time.Millisecond)
			}
			live[victim].kill()
			delete(live, victim)
			survivors := make([]*Supervisor, 0, len(live))
			for _, s := range live {
				survivors = append(survivors, s)
			}
			expireDeadLeases(clk, survivors...)
			restarted, err := NewSupervisor(opts[victim])
			if err != nil {
				t.Fatalf("round %d: restart %s: %v", round, victim, err)
			}
			live[victim] = restarted
			restarted.maintain()
		}

		// Converge: both instances live, heartbeats driven manually. The
		// slow clock creep expires any claim a dead incarnation left
		// behind without ever outrunning the live holders' renewals.
		deadline := time.Now().Add(2 * time.Minute)
		for !converged() {
			if time.Now().After(deadline) {
				for _, id := range ids {
					if st, err := store.ReadStatus(id); err == nil {
						t.Logf("%s: %s %d/%d r%d inst=%s e%d %q", id, st.State,
							st.CasesDone, st.CasesTotal, st.Retries, st.Instance, st.Epoch, st.LastError)
					}
				}
				t.Fatal("jobs never converged to completion")
			}
			clk.Advance(100 * time.Millisecond)
			for _, s := range live {
				s.maintain()
			}
			time.Sleep(2 * time.Millisecond)
		}
		for _, s := range live {
			defer s.Shutdown()
		}

		for i, id := range ids {
			st, err := store.ReadStatus(id)
			if err != nil {
				t.Fatalf("job %s: no status on disk: %v", id, err)
			}
			if st.State != StateDone {
				t.Errorf("job %s: state %s (%d/%d, retries %d, %q), want done",
					id, st.State, st.CasesDone, st.CasesTotal, st.Retries, st.LastError)
				continue
			}
			got := store.ReadResult(id)
			if !bytes.Equal(got, want[i]) {
				t.Errorf("job %s: accounting diverged from uninterrupted baseline:\n--- want\n%s\n--- got\n%s",
					id, want[i], got)
			}
			// Clean jobs must finish with zero retries burned: a takeover
			// resumes the checkpoint, it never re-runs accounted work.
			if specs[i].Faults == "" && st.Retries != 0 {
				t.Errorf("job %s: %d retries burned across takeovers, want 0 (double execution?)",
					id, st.Retries)
			}
			if st.Instance == "" || st.Epoch < 1 {
				t.Errorf("job %s: final status carries no instance/epoch provenance: %+v", id, st)
			}
		}
	})

	t.Run("StalledInstanceSelfFences", func(t *testing.T) {
		sp := Spec{Fuzzer: "COMFORT", Cases: 40, Seed: 2, TestbedLimit: 6, CheckpointEvery: 8}
		want := expectedAccounting(t, sp)

		clk := newFakeClock()
		store, err := OpenStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewSupervisor(twoInstanceOptions(store, clk, "alpha"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSupervisor(twoInstanceOptions(store, clk, "beta"))
		if err != nil {
			t.Fatal(err)
		}
		defer b.Shutdown()

		// SIGSTOP emulation: alpha's third fenced write for the job (the
		// running transition, then the case-8 checkpoint, then the case-16
		// checkpoint) blocks until released — the process is alive but
		// stopped with a write already decided, the worst-case shape for a
		// stale writer.
		target := jobID(1)
		var calls atomic.Int32
		paused := make(chan struct{})
		release := make(chan struct{})
		a.writeGate = func(id string) {
			if id != target {
				return
			}
			if calls.Add(1) == 3 {
				close(paused)
				<-release
			}
		}

		st, err := a.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if st.ID != target {
			t.Fatalf("submitted job is %s, test expects %s", st.ID, target)
		}
		<-paused

		// Alpha stalls past its TTL; beta scans, sees the expired claim,
		// and takes over by bumping the fencing epoch.
		clk.Advance(testLeaseTTL + time.Second)
		b.maintain()
		deadline := time.Now().Add(2 * time.Minute)
		for store.ReadResult(target) == nil {
			if time.Now().After(deadline) {
				close(release)
				t.Fatal("beta never completed the taken-over job")
			}
			b.maintain()
			time.Sleep(2 * time.Millisecond)
		}
		got := store.ReadResult(target)
		if !bytes.Equal(got, want) {
			t.Fatalf("taken-over accounting diverged:\n--- want\n%s\n--- got\n%s", want, got)
		}
		lease, err := store.ReadLease(target)
		if err != nil || lease == nil {
			t.Fatalf("lease after takeover: %v, %+v", err, lease)
		}
		if lease.Instance != "beta" || lease.Epoch != 2 || !lease.Released {
			t.Fatalf("lease after beta finished: %+v, want beta/epoch 2/released", lease)
		}

		// Wake alpha: its pending write must self-fence — detect the lost
		// lease and write nothing — rather than clobber beta's result.
		if a.Fences() != 0 {
			t.Fatalf("alpha fenced before waking: %d", a.Fences())
		}
		close(release)
		deadline = time.Now().Add(time.Minute)
		for a.Fences() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("alpha never self-fenced after waking")
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Alpha's abandoned run drains; the job's disk state must remain
		// exactly beta's.
		for {
			cur, _ := a.JobStatus(target)
			if cur.State == StateDone {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("alpha never mirrored beta's completion, state %s", cur.State)
			}
			a.maintain()
			time.Sleep(2 * time.Millisecond)
		}
		a.Shutdown()
		if got := store.ReadResult(target); !bytes.Equal(got, want) {
			t.Fatalf("stale instance corrupted the result after waking:\n--- want\n%s\n--- got\n%s", want, got)
		}
		final, err := store.ReadStatus(target)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Instance != "beta" || final.Epoch != 2 || final.Retries != 0 {
			t.Fatalf("final disk status %+v, want done by beta under epoch 2 with 0 retries", final)
		}
		endLease, err := store.ReadLease(target)
		if err != nil || endLease == nil || endLease.Epoch != 2 || endLease.Instance != "beta" {
			t.Fatalf("stale instance rewrote the lease: %+v (err %v)", endLease, err)
		}
	})
}

// TestSubmitSeqCollisionNeverTouchesPeerDirectory pins Submit's
// persist-first ordering: when this instance's candidate sequence number
// collides with a job a peer created first, the losing attempt must
// leave the peer-owned directory completely untouched — no lease, no
// status overwrite, no checkpoint — because the job is published to the
// dispatcher only after the directory create wins the arbitration.
// (Publishing first used to open a window where the dispatcher could
// lease the peer's directory and run a different spec inside it.)
func TestSubmitSeqCollisionNeverTouchesPeerDirectory(t *testing.T) {
	clk := newFakeClock()
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSupervisor(twoInstanceOptions(store, clk, "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// A peer wins seq 1 on the shared store after alpha booted, so
	// alpha's in-memory nextSeq still points at 1.
	peer := jobID(1)
	peerSpec := Spec{Fuzzer: "COMFORT", Cases: 8, Seed: 99, TestbedLimit: 2}
	peerStatus := Status{ID: peer, Seq: 1, State: StateQueued, CasesTotal: peerSpec.Cases}
	if err := store.CreateJob(peerStatus, peerSpec); err != nil {
		t.Fatal(err)
	}
	statusPath := filepath.Join(store.jobDir(peer), "status.json")
	peerBytes, err := os.ReadFile(statusPath)
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.Submit(Spec{Fuzzer: "COMFORT", Cases: 16, Seed: 2, TestbedLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != jobID(2) {
		t.Fatalf("submit returned %s, want %s (seq 1 belongs to the peer)", st.ID, jobID(2))
	}
	waitIdle(t, s)

	// The losing attempt never surfaced: no job-000001 entry exists on
	// alpha (the heartbeat is parked, so only Submit could have added
	// one), and the peer directory holds exactly the peer's two files,
	// byte-identical.
	if _, ok := s.JobStatus(peer); ok {
		t.Fatalf("losing submit published %s into the supervisor", peer)
	}
	if l, lerr := store.ReadLease(peer); lerr != nil || l != nil {
		t.Fatalf("peer job was leased by the losing submit: %+v (err %v)", l, lerr)
	}
	entries, err := os.ReadDir(store.jobDir(peer))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "spec.json" || names[1] != "status.json" {
		t.Fatalf("peer directory contents %v, want exactly [spec.json status.json]", names)
	}
	if got, _ := os.ReadFile(statusPath); !bytes.Equal(got, peerBytes) {
		t.Fatalf("peer status rewritten by the losing submit:\n--- before\n%s\n--- after\n%s", peerBytes, got)
	}
	// The retried submission itself converged in its own directory.
	if final, ok := s.JobStatus(st.ID); !ok || final.State != StateDone {
		t.Fatalf("retried submission state %+v, want done", final)
	}
}
