// Package campaign orchestrates fuzzing runs: a worker pool executes
// differential tests across testbeds, findings are deduplicated with the
// Figure-6 tree, reduced, and attributed to ground-truth catalog defects;
// report generators then regenerate every table and figure of the paper's
// evaluation.
package campaign

import (
	"math/rand"
	"sync"

	"comfort/internal/dedup"
	"comfort/internal/difftest"
	"comfort/internal/engines"
	"comfort/internal/fuzzers"
	"comfort/internal/reduce"
	"comfort/internal/spec"
)

// Config parameterises one fuzzing campaign.
type Config struct {
	Fuzzer   fuzzers.Fuzzer
	Testbeds []engines.Testbed
	// Cases is the number of test cases to execute (the scaled stand-in for
	// the paper's wall-clock budgets).
	Cases   int
	Fuel    int64
	Seed    int64
	Workers int
	// ReduceWitnesses runs test-case reduction on each new finding.
	ReduceWitnesses bool
	// DisableDedup turns the Figure-6 filter off (ablation).
	DisableDedup bool
}

// Finding is one unique discovered bug, attributed to its seeded defect.
type Finding struct {
	Defect   *Defect
	TestCase string
	Reduced  string
	Verdict  difftest.Verdict
	Engine   string
}

// Defect aliases the engines type for the public API surface.
type Defect = engines.Defect

// Result summarises a campaign.
type Result struct {
	FuzzerName string
	CasesRun   int
	Executed   int // testbed executions
	Verdicts   map[difftest.Verdict]int
	// Found maps defect ID → finding for every ground-truth defect the
	// campaign discovered.
	Found map[string]*Finding
	// DuplicatesFiltered counts test cases the dedup tree rejected.
	DuplicatesFiltered int
	// UnattributedFindings counts divergences that matched no single seeded
	// defect in isolation (interaction effects).
	UnattributedFindings int
}

// FoundDefects returns the discovered defects.
func (r *Result) FoundDefects() []*Defect {
	var out []*Defect
	for _, f := range r.Found {
		out = append(out, f.Defect)
	}
	return out
}

// Run executes the campaign.
func Run(cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = 200000
	}
	if len(cfg.Testbeds) == 0 {
		cfg.Testbeds = engines.LatestTestbeds()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{
		FuzzerName: cfg.Fuzzer.Name(),
		Verdicts:   map[difftest.Verdict]int{},
		Found:      map[string]*Finding{},
	}
	tree := dedup.New(dedup.KnownAPIsFromSpec(spec.Default().Names()))

	// Generate the case list sequentially (the RNG is the determinism
	// anchor), execute differential tests in parallel, then account
	// findings in order.
	var cases []string
	for len(cases) < cfg.Cases {
		batch := cfg.Fuzzer.Next(rng)
		for _, src := range batch {
			if len(cases) < cfg.Cases {
				cases = append(cases, src)
			}
		}
		if len(batch) == 0 {
			break
		}
	}
	res.CasesRun = len(cases)

	results := make([]difftest.CaseResult, len(cases))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, src := range cases {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, src string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = difftest.Run(src, cfg.Testbeds, difftest.Options{Fuel: cfg.Fuel, Seed: cfg.Seed})
		}(i, src)
	}
	wg.Wait()

	for i, cr := range results {
		res.Executed += len(cfg.Testbeds)
		res.Verdicts[cr.Verdict]++
		if !cr.Verdict.IsBuggy() {
			continue
		}
		src := cases[i]
		api := tree.APIOf(src)
		for _, dev := range cr.Deviations {
			engine := dev.Testbed.Version.Engine
			class := dedup.BehaviourClass(dev.Result.Outcome.String(), dev.Result.ErrName, dev.Result.Output)
			if !cfg.DisableDedup && tree.SeenOrAdd(engine, api, class) {
				res.DuplicatesFiltered++
				continue
			}
			attributed := engines.Attribute(src, dev.Testbed,
				engines.RunOptions{Fuel: cfg.Fuel, Seed: cfg.Seed})
			if len(attributed) == 0 {
				res.UnattributedFindings++
				continue
			}
			for _, d := range attributed {
				if _, seen := res.Found[d.ID]; seen {
					continue
				}
				f := &Finding{Defect: d, TestCase: src, Verdict: cr.Verdict, Engine: engine}
				if cfg.ReduceWitnesses {
					f.Reduced = reduceFinding(src, dev.Testbed, d, cfg)
				}
				res.Found[d.ID] = f
			}
		}
	}
	return res
}

// reduceFinding shrinks a bug-exposing test case while the single-defect
// divergence persists.
func reduceFinding(src string, tb engines.Testbed, d *engines.Defect, cfg Config) string {
	opts := engines.RunOptions{Fuel: cfg.Fuel, Seed: cfg.Seed}
	return reduce.Reduce(src, func(candidate string) bool {
		buggy := engines.RunWithDefect(d, candidate, tb.Strict, opts)
		ref := engines.RunWithDefect(nil, candidate, tb.Strict, opts)
		return buggy.Key() != ref.Key()
	})
}
