// Package compile implements the interpreter's compile-once pass: a single
// walk over a parsed-and-resolved program that turns every AST node into an
// executable closure thunk. A campaign executes one cached program dozens
// of times (once per behaviour class per case, plus reduction predicates);
// the tree walker pays a type switch, interface conversions and virtual
// dispatch per node per execution, while a compiled program pays them once,
// at compile time — execution is direct closure calls over pre-resolved
// operands.
//
// The pass preserves the tree walker's observable contract exactly, and the
// tree walker remains in service as the differential oracle's second
// implementation (interp.Config.DisableCompile and the knobs layered above
// it). The invariants that keep the two evaluators byte-identical,
// including fuel:
//
//   - Fuel is charged at the same sites with the same amounts: one step at
//     every statement and expression entry, per loop iteration, per for-in
//     binding, and whatever the shared runtime helpers (Call, GetPropKey,
//     SetProp, ...) charge internally — the thunks call the exact same
//     helpers.
//   - Coverage is recorded at the same statements, functions and branch
//     arms.
//   - Seeded-defect hooks fire identically: every hook site lives inside a
//     shared runtime helper (Call, SetProp, SetPropByValue, eval), so a
//     compiled program shared between testbeds with different hook chains
//     behaves per-testbed exactly as the tree walk would.
//   - The labelled break/continue protocol stays dynamic (the pending-label
//     handshake), because the tree walker lets a label flow through
//     arbitrary statements — even across calls — until the first loop
//     consumes it; no static attachment reproduces that.
//
// Compilation additionally marks scopes whose frames provably cannot
// escape (no function literal below them closes over the frame) as
// Poolable; the interpreter recycles those frames through a free list
// instead of allocating a []binding per activation.
//
// Like resolution, compilation runs once, before the program is shared
// across goroutines; execution only reads the annotations.
package compile

import (
	"comfort/internal/js/ast"
	"comfort/internal/js/interp"
)

// ctrlKind mirrors the tree walker's control-flow signal.
type ctrlKind uint8

const (
	ctrlNormal ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// stmtThunk executes one compiled statement. The completion record is a
// one-byte control kind; the label and return-value payloads travel in
// the interpreter's control registers (interp.CtrlLabel/CtrlVal), written
// by the producing thunk and read by the direct consumer before any other
// thunk runs — try/finally, the one construct that executes statements in
// between, snapshots and restores them.
type stmtThunk func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error)

// exprThunk evaluates one compiled expression.
type exprThunk func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error)

// Compiled is a program's executable thunk form, attached to
// ast.Program.Compiled. It shares the cache entry (and the concurrency
// contract) of the scope annotations it was compiled from.
type Compiled struct {
	hoist      []ast.HoistedDecl
	body       []stmtThunk
	progStrict bool
	// icSites is the number of inline-cache sites the compile pass
	// allocated across the whole program, nested function bodies included;
	// Run sizes the interpreter's per-execution site table from it.
	icSites int
}

// Program compiles a resolved program in place, attaching the thunk tree
// to prog.Compiled and a CompiledBody to every function literal. It is
// idempotent and must run before the program is shared across goroutines
// (the same contract as resolve.Program). Unresolved programs are left
// untouched — the compiler consumes the resolver's scope layout.
func Program(prog *ast.Program) {
	if prog.Compiled != nil || !prog.ResolvedScopes {
		return
	}
	c := &compiler{}
	cp := &Compiled{
		// The hoist plan is the shared traversal the tree walker's hoist
		// step consumes too (ast.HoistedDecls) — one definition of what
		// hoists, in what order.
		hoist:      ast.HoistedDecls(prog.Body),
		body:       c.seq(prog.Body),
		progStrict: prog.Strict,
	}
	cp.icSites = c.icSites
	prog.Compiled = cp
}

// Of returns the program's compiled form, or nil when the program has not
// been through the compile pass.
func Of(prog *ast.Program) *Compiled {
	cp, _ := prog.Compiled.(*Compiled)
	return cp
}

// Run executes the compiled program in the interpreter's global scope —
// the thunk twin of interp.Run.
func (cp *Compiled) Run(in *interp.Interp) error {
	in.EnsureICSites(cp.icSites)
	strict := in.Strict || cp.progStrict
	for _, a := range cp.hoist {
		if a.Fn != nil {
			fobj := in.MakeFunction(a.Fn, in.GlobalEnv, strict)
			in.Global.SetSlot(a.Name, interp.ObjValue(fobj), interp.Writable|interp.Enumerable)
		} else if !in.Global.HasOwn(a.Name) {
			in.Global.SetSlot(a.Name, interp.Undefined(), interp.Writable|interp.Enumerable)
		}
	}
	for _, th := range cp.body {
		c, err := th(in, in.GlobalEnv, strict)
		if err != nil {
			return err
		}
		if c != ctrlNormal {
			break
		}
	}
	return nil
}

// runSeq executes a compiled statement list — the thunk twin of
// execStmts.
func runSeq(ths []stmtThunk, in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
	for _, th := range ths {
		c, err := th(in, env, strict)
		if err != nil {
			return ctrlNormal, err
		}
		if c != ctrlNormal {
			return c, nil
		}
	}
	return ctrlNormal, nil
}

// compiler is the per-program compile state: the inline-cache site
// counter, shared by the program body and every nested function body.
type compiler struct {
	icSites int
}

// icSite allocates one inline-cache site index for a member-access thunk.
func (c *compiler) icSite() int {
	n := c.icSites
	c.icSites++
	return n
}

// seq compiles a statement list.
func (c *compiler) seq(ss []ast.Stmt) []stmtThunk {
	if len(ss) == 0 {
		return nil
	}
	out := make([]stmtThunk, len(ss))
	for i, s := range ss {
		out[i] = c.stmt(s)
	}
	return out
}

// frameFor materialises the environment a compiled scope statement runs
// in; pool reports whether the caller owns the frame and must release it.
func frameFor(in *interp.Interp, env *interp.Env, scope *ast.ScopeInfo, pool bool) (*interp.Env, bool) {
	if pool {
		return in.AcquireScope(env, scope, false), true
	}
	return in.ScopeEnv(env, scope), false
}

// poolableScope reports whether scope materialises a frame that the
// compiled path may recycle: non-empty, and no function literal in the
// given subtrees can close over it.
func poolableScope(scope *ast.ScopeInfo, subtrees ...ast.Node) bool {
	if scope == nil || scope.NumSlots == 0 {
		return false
	}
	return !subtreeHasFunc(subtrees...)
}

// subtreeHasFunc reports whether any function literal or declaration
// occurs in the given subtrees (the frame-escape condition).
func subtreeHasFunc(nodes ...ast.Node) bool {
	found := false
	probe := func(m ast.Node) bool {
		if found {
			return false
		}
		switch m.(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			found = true
			return false
		}
		return true
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		ast.Walk(n, probe)
		if found {
			return true
		}
	}
	return false
}

// stmtsAsNodes adapts a statement list for subtreeHasFunc.
func stmtsAsNodes(ss []ast.Stmt) []ast.Node {
	out := make([]ast.Node, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// ---------- statements ----------

// stmt compiles one statement. Every produced thunk opens with the tree
// walker's statement prologue: one fuel step, then statement coverage.
func (c *compiler) stmt(s ast.Stmt) stmtThunk {
	id := s.ID()
	switch st := s.(type) {
	case *ast.VarDecl:
		decls := c.varDecl(st)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return runDecls(decls, in, env, strict)
		}
	case *ast.FuncDecl:
		// Hoisted; at execution time only the prologue remains.
		c.funcBody(st.Fn)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return ctrlNormal, nil
		}
	case *ast.ExprStmt:
		x := c.expr(st.X)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			// The tree walker forwards the expression value in its ctrl
			// record for eval's completion-value rule; compiled programs
			// never run under eval, so the value is dropped here.
			if _, err := x(in, env, strict); err != nil {
				return ctrlNormal, err
			}
			return ctrlNormal, nil
		}
	case *ast.BlockStmt:
		body := c.seq(st.Body)
		scope := st.Scope
		pool := poolableScope(scope, stmtsAsNodes(st.Body)...)
		// Thin blocks — a slotless scope around a single statement, the
		// shape of virtually every fuzzer loop body — skip the frame
		// machinery and the sequence loop.
		if scope != nil && scope.NumSlots == 0 && len(body) == 1 {
			inner := body[0]
			return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
				if err := in.Charge(1); err != nil {
					return ctrlNormal, err
				}
				if in.Cov != nil {
					in.Cov.Stmts[id] = true
				}
				env2 := env
				if env == in.GlobalEnv {
					// Top-level blocks still need the child frame (var
					// semantics distinguish it; see Interp.ScopeEnv).
					env2 = in.ScopeEnv(env, scope)
				}
				return inner(in, env2, strict)
			}
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			env2, owned := frameFor(in, env, scope, pool)
			ctl, err := runSeq(body, in, env2, strict)
			if owned {
				in.ReleaseScope(env2)
			}
			return ctl, err
		}
	case *ast.EmptyStmt, *ast.DebuggerStmt:
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return ctrlNormal, nil
		}
	case *ast.IfStmt:
		cond := c.expr(st.Cond)
		then := c.stmt(st.Then)
		var els stmtThunk
		if st.Else != nil {
			els = c.stmt(st.Else)
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			cv, err := cond(in, env, strict)
			if err != nil {
				return ctrlNormal, err
			}
			if interp.ToBoolean(cv) {
				if in.Cov != nil {
					in.Cov.Branches[[2]int{id, 0}] = true
				}
				return then(in, env, strict)
			}
			if in.Cov != nil {
				in.Cov.Branches[[2]int{id, 1}] = true
			}
			if els != nil {
				return els(in, env, strict)
			}
			return ctrlNormal, nil
		}
	case *ast.WhileStmt:
		cond := c.expr(st.Cond)
		body := c.stmt(st.Body)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return runLoop(in, env, strict, cond, nil, body, id, false)
		}
	case *ast.DoWhileStmt:
		cond := c.expr(st.Cond)
		body := c.stmt(st.Body)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return runLoop(in, env, strict, cond, nil, body, id, true)
		}
	case *ast.ForStmt:
		return c.forStmt(st)
	case *ast.ForInStmt:
		return c.forInStmt(st)
	case *ast.SwitchStmt:
		return c.switchStmt(st)
	case *ast.BreakStmt:
		label := st.Label
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			in.SetCtrlLabel(label)
			return ctrlBreak, nil
		}
	case *ast.ContinueStmt:
		label := st.Label
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			in.SetCtrlLabel(label)
			return ctrlContinue, nil
		}
	case *ast.ReturnStmt:
		var x exprThunk
		if st.X != nil {
			x = c.expr(st.X)
		}
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			v := interp.Undefined()
			if x != nil {
				var err error
				v, err = x(in, env, strict)
				if err != nil {
					return ctrlNormal, err
				}
			}
			in.SetCtrlVal(v)
			return ctrlReturn, nil
		}
	case *ast.ThrowStmt:
		x := c.expr(st.X)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			v, err := x(in, env, strict)
			if err != nil {
				return ctrlNormal, err
			}
			return ctrlNormal, &interp.Throw{Val: v}
		}
	case *ast.TryStmt:
		return c.tryStmt(st)
	case *ast.LabeledStmt:
		label := st.Label
		body := c.stmt(st.Body)
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			in.SetPendingLabel(label)
			ctl, err := body(in, env, strict)
			in.SetPendingLabel("")
			if err != nil {
				return ctrlNormal, err
			}
			if (ctl == ctrlBreak || ctl == ctrlContinue) && in.CtrlLabel() == label {
				return ctrlNormal, nil
			}
			return ctl, nil
		}
	default:
		return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
			if err := in.Charge(1); err != nil {
				return ctrlNormal, err
			}
			if in.Cov != nil {
				in.Cov.Stmts[id] = true
			}
			return ctrlNormal, in.Throwf("InternalError", "unsupported statement %T", s)
		}
	}
}

// declThunk executes one compiled declarator (evaluate init, write the
// resolved target).
type declThunk func(in *interp.Interp, env *interp.Env, strict bool) error

func runDecls(decls []declThunk, in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
	for _, d := range decls {
		if err := d(in, env, strict); err != nil {
			return ctrlNormal, err
		}
	}
	return ctrlNormal, nil
}

// varDecl compiles a var/let/const statement's declarators. The thunks
// carry no statement prologue: the tree walker's for-loop init path
// executes declarators without re-entering execStmt, and the compiled
// for-loop relies on the same property.
func (c *compiler) varDecl(st *ast.VarDecl) []declThunk {
	out := make([]declThunk, 0, len(st.Decls))
	for i := range st.Decls {
		d := &st.Decls[i]
		var init exprThunk
		nameFix := false
		if d.Init != nil {
			init = c.expr(d.Init)
			if fn, ok := d.Init.(*ast.FuncLit); ok && fn.Name == "" {
				nameFix = true
			}
		}
		name := d.Name
		kind := st.Kind
		ref := d.Ref
		out = append(out, func(in *interp.Interp, env *interp.Env, strict bool) error {
			var v interp.Value
			if init != nil {
				var err error
				v, err = init(in, env, strict)
				if err != nil {
					return err
				}
				if nameFix && v.IsObject() {
					v.Obj().SetSlot("name", interp.String(name), interp.Configurable)
				}
			}
			if ref.Kind == ast.RefSlot {
				switch kind {
				case ast.Var:
					in.DeclareSlotVar(env, ref.Depth, ref.Slot, v)
				case ast.Let:
					env.AtDepth(ref.Depth).SetSlotLexical(ref.Slot, v, true)
				case ast.Const:
					env.AtDepth(ref.Depth).SetSlotLexical(ref.Slot, v, false)
				}
				return nil
			}
			switch kind {
			case ast.Var:
				if env == in.GlobalEnv {
					in.Global.SetSlot(name, v, interp.Writable|interp.Enumerable)
				} else {
					env.DeclareVar(name, v)
				}
			case ast.Let:
				env.DeclareLexical(name, v, true)
			case ast.Const:
				env.DeclareLexical(name, v, false)
			}
			return nil
		})
	}
	return out
}

// runLoop is the thunk twin of execLoop: while, do-while and the
// three-clause for share it, with identical fuel charging, branch
// coverage and labelled break/continue handling.
func runLoop(in *interp.Interp, env *interp.Env, strict bool, cond, post exprThunk,
	body stmtThunk, nodeID int, doWhile bool) (ctrlKind, error) {
	myLabel := in.TakePendingLabel()
	first := true
	for {
		if err := in.Charge(1); err != nil {
			return ctrlNormal, err
		}
		if !(doWhile && first) && cond != nil {
			cv, err := cond(in, env, strict)
			if err != nil {
				return ctrlNormal, err
			}
			if !interp.ToBoolean(cv) {
				if in.Cov != nil {
					in.Cov.Branches[[2]int{nodeID, 1}] = true
				}
				return ctrlNormal, nil
			}
			if in.Cov != nil {
				in.Cov.Branches[[2]int{nodeID, 0}] = true
			}
		}
		first = false
		c, err := body(in, env, strict)
		if err != nil {
			return ctrlNormal, err
		}
		switch c {
		case ctrlBreak:
			if l := in.CtrlLabel(); l == "" || l == myLabel {
				return ctrlNormal, nil
			}
			return c, nil
		case ctrlContinue:
			if l := in.CtrlLabel(); l != "" && l != myLabel {
				return c, nil
			}
		case ctrlReturn:
			return c, nil
		}
		if doWhile && cond != nil {
			cv, err := cond(in, env, strict)
			if err != nil {
				return ctrlNormal, err
			}
			if !interp.ToBoolean(cv) {
				return ctrlNormal, nil
			}
			// Re-enter loop without re-testing at top.
			first = true
		}
		if post != nil {
			if _, err := post(in, env, strict); err != nil {
				return ctrlNormal, err
			}
		}
	}
}

func (c *compiler) forStmt(st *ast.ForStmt) stmtThunk {
	id := st.ID()
	scope := st.Scope
	pool := poolableScope(scope, st.Init, st.Cond, st.Post, st.Body)
	var initDecls []declThunk
	var initExpr exprThunk
	switch init := st.Init.(type) {
	case *ast.VarDecl:
		initDecls = c.varDecl(init)
	case ast.Expr:
		initExpr = c.expr(init)
	}
	var cond, post exprThunk
	if st.Cond != nil {
		cond = c.expr(st.Cond)
	}
	if st.Post != nil {
		post = c.expr(st.Post)
	}
	body := c.stmt(st.Body)
	return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
		if err := in.Charge(1); err != nil {
			return ctrlNormal, err
		}
		if in.Cov != nil {
			in.Cov.Stmts[id] = true
		}
		label := in.TakePendingLabel()
		loopEnv, owned := frameFor(in, env, scope, pool)
		if initDecls != nil {
			if _, err := runDecls(initDecls, in, loopEnv, strict); err != nil {
				if owned {
					in.ReleaseScope(loopEnv)
				}
				return ctrlNormal, err
			}
		} else if initExpr != nil {
			if _, err := initExpr(in, loopEnv, strict); err != nil {
				if owned {
					in.ReleaseScope(loopEnv)
				}
				return ctrlNormal, err
			}
		}
		in.SetPendingLabel(label)
		ctl, err := runLoop(in, loopEnv, strict, cond, post, body, id, false)
		if owned {
			in.ReleaseScope(loopEnv)
		}
		return ctl, err
	}
}

func (c *compiler) forInStmt(st *ast.ForInStmt) stmtThunk {
	id := st.ID()
	scope := st.Scope
	pool := poolableScope(scope, st.Body)
	obj := c.expr(st.Obj)
	body := c.stmt(st.Body)
	of := st.Of

	// The per-iteration binding/assignment, specialised at compile time —
	// the thunk twin of execForIn's assign closure.
	name := st.Name
	ref := st.NameRef
	var assign func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error
	switch st.Decl {
	case ast.Let, ast.Const:
		if ref.Kind == ast.RefSlot {
			slot := ref.Slot
			assign = func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error {
				// The map evaluator declares both kinds mutable here.
				loopEnv.SetSlotLexical(slot, v, true)
				return nil
			}
		} else {
			assign = func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error {
				loopEnv.DeclareLexical(name, v, true)
				return nil
			}
		}
	case ast.Var:
		if ref.Kind == ast.RefSlot {
			depth, slot := ref.Depth, ref.Slot
			assign = func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error {
				in.DeclareSlotVar(loopEnv, depth, slot, v)
				return nil
			}
		} else {
			assign = func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error {
				loopEnv.DeclareVar(name, v)
				return nil
			}
		}
	default:
		set := identAssigner(name, ref)
		assign = func(in *interp.Interp, loopEnv *interp.Env, v interp.Value, strict bool) error {
			return set(in, loopEnv, v, strict)
		}
	}

	return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
		if err := in.Charge(1); err != nil {
			return ctrlNormal, err
		}
		if in.Cov != nil {
			in.Cov.Stmts[id] = true
		}
		myLabel := in.TakePendingLabel()
		ov, err := obj(in, env, strict)
		if err != nil {
			return ctrlNormal, err
		}
		loopEnv, owned := frameFor(in, env, scope, pool)
		release := func() {
			if owned {
				in.ReleaseScope(loopEnv)
			}
		}
		var items []interp.Value
		if of {
			items, err = in.Iterate(ov)
		} else {
			items, err = in.ForInKeys(ov)
		}
		if err != nil {
			release()
			return ctrlNormal, err
		}
		for _, item := range items {
			if err := in.Charge(1); err != nil {
				release()
				return ctrlNormal, err
			}
			if err := assign(in, loopEnv, item, strict); err != nil {
				release()
				return ctrlNormal, err
			}
			ctl, err := body(in, loopEnv, strict)
			if err != nil {
				release()
				return ctrlNormal, err
			}
			switch ctl {
			case ctrlBreak:
				release()
				if l := in.CtrlLabel(); l == "" || l == myLabel {
					return ctrlNormal, nil
				}
				return ctl, nil
			case ctrlContinue:
				if l := in.CtrlLabel(); l != "" && l != myLabel {
					release()
					return ctl, nil
				}
			case ctrlReturn:
				release()
				return ctl, nil
			}
		}
		release()
		return ctrlNormal, nil
	}
}

func (c *compiler) switchStmt(st *ast.SwitchStmt) stmtThunk {
	id := st.ID()
	scope := st.Scope
	var subtrees []ast.Node
	for _, cs := range st.Cases {
		if cs.Test != nil {
			subtrees = append(subtrees, cs.Test)
		}
		subtrees = append(subtrees, stmtsAsNodes(cs.Body)...)
	}
	pool := poolableScope(scope, subtrees...)
	disc := c.expr(st.Disc)
	tests := make([]exprThunk, len(st.Cases))
	bodies := make([][]stmtThunk, len(st.Cases))
	defaultCase := -1
	for i, cs := range st.Cases {
		if cs.Test != nil {
			tests[i] = c.expr(cs.Test)
		} else if defaultCase < 0 {
			defaultCase = i
		}
		bodies[i] = c.seq(cs.Body)
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
		if err := in.Charge(1); err != nil {
			return ctrlNormal, err
		}
		if in.Cov != nil {
			in.Cov.Stmts[id] = true
		}
		dv, err := disc(in, env, strict)
		if err != nil {
			return ctrlNormal, err
		}
		inner, owned := frameFor(in, env, scope, pool)
		release := func() {
			if owned {
				in.ReleaseScope(inner)
			}
		}
		matched := -1
		for i, test := range tests {
			if test == nil {
				continue
			}
			tv, err := test(in, inner, strict)
			if err != nil {
				release()
				return ctrlNormal, err
			}
			if interp.SameValueStrict(dv, tv) {
				matched = i
				break
			}
		}
		if matched < 0 {
			matched = defaultCase
		}
		if matched < 0 {
			release()
			return ctrlNormal, nil
		}
		if in.Cov != nil {
			in.Cov.Branches[[2]int{id, matched}] = true
		}
		for i := matched; i < len(bodies); i++ {
			for _, th := range bodies[i] {
				ctl, err := th(in, inner, strict)
				if err != nil {
					release()
					return ctrlNormal, err
				}
				switch ctl {
				case ctrlBreak:
					release()
					if in.CtrlLabel() == "" {
						return ctrlNormal, nil
					}
					return ctl, nil
				case ctrlContinue, ctrlReturn:
					release()
					return ctl, nil
				}
			}
		}
		release()
		return ctrlNormal, nil
	}
}

func (c *compiler) tryStmt(st *ast.TryStmt) stmtThunk {
	id := st.ID()
	blockScope := st.Block.Scope
	blockPool := poolableScope(blockScope, stmtsAsNodes(st.Block.Body)...)
	block := c.seq(st.Block.Body)
	var catchBody []stmtThunk
	var catchScope *ast.ScopeInfo
	catchPool := false
	hasCatch := st.Catch != nil
	catchParam := st.CatchParam
	catchSlot := int32(-1)
	if hasCatch {
		catchScope = st.Catch.Scope
		catchPool = poolableScope(catchScope, stmtsAsNodes(st.Catch.Body)...)
		catchBody = c.seq(st.Catch.Body)
		if catchScope != nil {
			catchSlot = catchScope.CatchParamSlot
		}
	}
	var finallyBody []stmtThunk
	var finallyScope *ast.ScopeInfo
	finallyPool := false
	hasFinally := st.Finally != nil
	if hasFinally {
		finallyScope = st.Finally.Scope
		finallyPool = poolableScope(finallyScope, stmtsAsNodes(st.Finally.Body)...)
		finallyBody = c.seq(st.Finally.Body)
	}
	return func(in *interp.Interp, env *interp.Env, strict bool) (ctrlKind, error) {
		if err := in.Charge(1); err != nil {
			return ctrlNormal, err
		}
		if in.Cov != nil {
			in.Cov.Stmts[id] = true
		}
		blockEnv, owned := frameFor(in, env, blockScope, blockPool)
		ctl, err := runSeq(block, in, blockEnv, strict)
		if owned {
			in.ReleaseScope(blockEnv)
		}
		if err != nil {
			if t, ok := interp.IsThrow(err); ok && hasCatch {
				catchEnv, cowned := frameFor(in, env, catchScope, catchPool)
				if catchParam != "" {
					if catchSlot >= 0 {
						catchEnv.SetSlotLexical(uint16(catchSlot), t.Val, true)
					} else {
						catchEnv.DeclareLexical(catchParam, t.Val, true)
					}
				}
				ctl, err = runSeq(catchBody, in, catchEnv, strict)
				if cowned {
					in.ReleaseScope(catchEnv)
				}
			}
		}
		if hasFinally {
			// The finally body may clobber the control registers with its
			// own (consumed) break/continue/return signals; snapshot the
			// propagating completion's payload around it.
			savedLabel, savedVal := in.CtrlLabel(), in.CtrlVal()
			finallyEnv, fowned := frameFor(in, env, finallyScope, finallyPool)
			fc, ferr := runSeq(finallyBody, in, finallyEnv, strict)
			if fowned {
				in.ReleaseScope(finallyEnv)
			}
			if ferr != nil {
				return ctrlNormal, ferr
			}
			if fc != ctrlNormal {
				return fc, nil
			}
			in.SetCtrlLabel(savedLabel)
			in.SetCtrlVal(savedVal)
		}
		return ctl, err
	}
}

// funcBody compiles a function literal's body into an interp.CompiledBody
// and attaches it; MakeFunction copies the attachment onto every function
// object created from the literal. Literals the resolver left without a
// scope stay uncompiled (Call tree-walks them — the dynamic fallback).
func (c *compiler) funcBody(lit *ast.FuncLit) {
	if lit == nil || lit.Compiled != nil || lit.Scope == nil {
		return
	}
	lit.Scope.Poolable = !subtreeHasFunc(lit.Body, lit.ExprBody)
	if lit.ExprBody != nil {
		th := c.expr(lit.ExprBody)
		lit.Compiled = interp.CompiledBody(th)
		return
	}
	id := lit.ID()
	body := c.seq(lit.Body.Body)
	lit.Compiled = interp.CompiledBody(func(in *interp.Interp, env *interp.Env, strict bool) (interp.Value, error) {
		if in.Cov != nil {
			in.Cov.Funcs[id] = true
		}
		ctl, err := runSeq(body, in, env, strict)
		if err != nil {
			return interp.Undefined(), err
		}
		if ctl == ctrlReturn {
			return in.CtrlVal(), nil
		}
		return interp.Undefined(), nil
	})
}
