// Per-job progress broadcasting. Each job owns a hub; the campaign's
// Progress callback publishes samples into it and HTTP stream handlers
// subscribe. The backpressure contract: publish NEVER blocks, no matter
// how slow or dead a subscriber is. Every subscriber owns a bounded
// buffer; when it is full the oldest buffered sample is dropped to make
// room for the newest (progress is a gauge, not a log — the latest sample
// is the valuable one). A campaign can therefore outrun, and outlive,
// every client watching it.
package server

import (
	"sync"

	"comfort/internal/campaign"
)

// Sample is one streamed progress event: the job, its state at the time,
// and the campaign's progress counters.
type Sample struct {
	JobID string `json:"job_id"`
	State string `json:"state"`
	campaign.Progress
}

// subBuffer is each subscriber's buffered-sample bound.
const subBuffer = 16

type subscriber struct {
	ch chan Sample
}

type hub struct {
	mu      sync.Mutex
	subs    map[*subscriber]bool
	last    Sample
	hasLast bool
	closed  bool
	// dropped counts samples discarded across all subscribers (test and
	// diagnostics visibility for the drop-oldest policy).
	dropped int64
}

func newHub() *hub {
	return &hub{subs: map[*subscriber]bool{}}
}

// subscribe registers a new subscriber; the most recent sample (if any)
// is delivered immediately so late subscribers see the current position
// without waiting for the next cadence tick. A closed hub returns a
// subscriber whose channel is already closed.
func (h *hub) subscribe() *subscriber {
	sub := &subscriber{ch: make(chan Sample, subBuffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hasLast {
		sub.ch <- h.last
	}
	if h.closed {
		close(sub.ch)
		return sub
	}
	h.subs[sub] = true
	return sub
}

func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs[sub] {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// publish delivers a sample to every subscriber without ever blocking:
// a full subscriber buffer sheds its oldest sample first.
func (h *hub) publish(s Sample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.last, h.hasLast = s, true
	for sub := range h.subs { //detlint:order — independent per-subscriber delivery, order-free
		select {
		case sub.ch <- s:
			continue
		default:
		}
		// Buffer full: drop the oldest, then retry once. The subscriber may
		// have drained concurrently, so both selects need defaults.
		select {
		case <-sub.ch:
			h.dropped++
		default:
		}
		select {
		case sub.ch <- s:
		default:
			h.dropped++
		}
	}
}

// close ends the stream: all subscriber channels are closed (the HTTP
// handlers see EOF after draining buffered samples) and later publishes
// are ignored.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs { //detlint:order — closing every channel, order-free
		close(sub.ch)
	}
	h.subs = map[*subscriber]bool{}
}

// droppedCount reports the total samples shed by the drop-oldest policy.
func (h *hub) droppedCount() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
