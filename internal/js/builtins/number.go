package builtins

import (
	"math"
	"strconv"

	"comfort/internal/js/interp"
	"comfort/internal/js/jsnum"
)

func installNumber(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	proto.Class = "Number"
	proto.Prim, proto.HasPrim = interp.Number(0), true

	call := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		if len(args) == 0 {
			return interp.Number(0), nil
		}
		n, err := in.ToNumber(args[0])
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(n), nil
	}
	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v, err := call(in, this, args)
		if err != nil {
			return interp.Undefined(), err
		}
		o := in.NewObject(in.Protos["Number"])
		o.Class = "Number"
		o.Prim, o.HasPrim = v, true
		return interp.ObjValue(o), nil
	}
	ctor := r.ctor("Number", 1, proto, call, construct)

	ctor.SetSlot("MAX_SAFE_INTEGER", interp.Number(9007199254740991), 0)
	ctor.SetSlot("MIN_SAFE_INTEGER", interp.Number(-9007199254740991), 0)
	ctor.SetSlot("MAX_VALUE", interp.Number(math.MaxFloat64), 0)
	ctor.SetSlot("MIN_VALUE", interp.Number(5e-324), 0)
	ctor.SetSlot("EPSILON", interp.Number(2.220446049250313e-16), 0)
	ctor.SetSlot("POSITIVE_INFINITY", interp.Number(math.Inf(1)), 0)
	ctor.SetSlot("NEGATIVE_INFINITY", interp.Number(math.Inf(-1)), 0)
	ctor.SetSlot("NaN", interp.Number(math.NaN()), 0)

	r.method(ctor, "Number.isInteger", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		return interp.Bool(v.Kind() == interp.KindNumber && !math.IsNaN(v.Num()) &&
			!math.IsInf(v.Num(), 0) && v.Num() == math.Trunc(v.Num())), nil
	})
	r.method(ctor, "Number.isFinite", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		return interp.Bool(v.Kind() == interp.KindNumber && !math.IsNaN(v.Num()) && !math.IsInf(v.Num(), 0)), nil
	})
	r.method(ctor, "Number.isNaN", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		return interp.Bool(v.Kind() == interp.KindNumber && math.IsNaN(v.Num())), nil
	})
	r.method(ctor, "Number.isSafeInteger", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		v := arg(args, 0)
		ok := v.Kind() == interp.KindNumber && !math.IsNaN(v.Num()) && !math.IsInf(v.Num(), 0) &&
			v.Num() == math.Trunc(v.Num()) && math.Abs(v.Num()) <= 9007199254740991
		return interp.Bool(ok), nil
	})
	r.method(ctor, "Number.parseInt", 2, parseIntImpl)
	r.method(ctor, "Number.parseFloat", 1, parseFloatImpl)

	thisNum := func(in *interp.Interp, this interp.Value, method string) (float64, error) {
		if this.Kind() == interp.KindNumber {
			return this.Num(), nil
		}
		if this.IsObject() && this.Obj().Class == "Number" && this.Obj().HasPrim {
			return this.Obj().Prim.Num(), nil
		}
		return 0, in.TypeErrorf("%s requires that 'this' be a Number", method)
	}

	r.method(proto, "Number.prototype.toString", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.toString")
		if err != nil {
			return interp.Undefined(), err
		}
		radix := 10.0
		if rv := arg(args, 0); !rv.IsUndefined() {
			radix, err = in.ToInteger(rv)
			if err != nil {
				return interp.Undefined(), err
			}
		}
		if radix < 2 || radix > 36 {
			return interp.Undefined(), in.RangeErrorf("toString() radix must be between 2 and 36")
		}
		return interp.String(jsnum.FormatRadix(n, int(radix))), nil
	})

	r.method(proto, "Number.prototype.valueOf", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.valueOf")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Number(n), nil
	})

	r.method(proto, "Number.prototype.toFixed", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.toFixed")
		if err != nil {
			return interp.Undefined(), err
		}
		digitsF, err := in.ToInteger(arg(args, 0))
		if err != nil {
			return interp.Undefined(), err
		}
		// ECMA-262: digits must be in [0, 100] (20 before ES2018); outside
		// the range a RangeError is thrown — the Rhino Listing-4 rule.
		if digitsF < 0 || digitsF > 100 {
			return interp.Undefined(), in.RangeErrorf("toFixed() digits argument must be between 0 and 100")
		}
		if math.IsNaN(n) {
			return interp.String("NaN"), nil
		}
		if math.Abs(n) >= 1e21 {
			return interp.String(jsnum.Format(n)), nil
		}
		return interp.String(toFixedString(n, int(digitsF))), nil
	})

	r.method(proto, "Number.prototype.toPrecision", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.toPrecision")
		if err != nil {
			return interp.Undefined(), err
		}
		pv := arg(args, 0)
		if pv.IsUndefined() {
			return interp.String(jsnum.Format(n)), nil
		}
		pF, err := in.ToInteger(pv)
		if err != nil {
			return interp.Undefined(), err
		}
		if pF < 1 || pF > 100 {
			return interp.Undefined(), in.RangeErrorf("toPrecision() argument must be between 1 and 100")
		}
		if math.IsNaN(n) {
			return interp.String("NaN"), nil
		}
		s := strconv.FormatFloat(n, 'g', int(pF), 64)
		return interp.String(s), nil
	})

	r.method(proto, "Number.prototype.toExponential", 1, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.toExponential")
		if err != nil {
			return interp.Undefined(), err
		}
		digits := 6
		if dv := arg(args, 0); !dv.IsUndefined() {
			dF, err := in.ToInteger(dv)
			if err != nil {
				return interp.Undefined(), err
			}
			if dF < 0 || dF > 100 {
				return interp.Undefined(), in.RangeErrorf("toExponential() argument must be between 0 and 100")
			}
			digits = int(dF)
		}
		if math.IsNaN(n) {
			return interp.String("NaN"), nil
		}
		s := strconv.FormatFloat(n, 'e', digits, 64)
		return interp.String(s), nil
	})

	r.method(proto, "Number.prototype.toLocaleString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		n, err := thisNum(in, this, "Number.prototype.toLocaleString")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.String(jsnum.Format(n)), nil
	})
}

// toFixedString implements the Number.prototype.toFixed digit algorithm:
// pick the integer n minimising |n/10^f - x|, breaking ties toward the
// larger n (unlike Go's round-half-to-even formatting).
func toFixedString(x float64, digits int) string {
	neg := math.Signbit(x)
	a := math.Abs(x)
	pow := math.Pow(10, float64(digits))
	scaled := a * pow
	i := math.Floor(scaled)
	if scaled-i >= 0.5 {
		i++
	}
	s := strconv.FormatFloat(i, 'f', 0, 64)
	for len(s) <= digits {
		s = "0" + s
	}
	if digits > 0 {
		s = s[:len(s)-digits] + "." + s[len(s)-digits:]
	}
	if neg && i != 0 {
		s = "-" + s
	}
	return s
}

func installBoolean(r *registry) {
	in := r.in
	proto := in.NewObject(in.Protos["Object"])
	proto.Class = "Boolean"
	proto.Prim, proto.HasPrim = interp.Bool(false), true

	call := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		return interp.Bool(interp.ToBoolean(arg(args, 0))), nil
	}
	construct := func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		o := in.NewObject(in.Protos["Boolean"])
		o.Class = "Boolean"
		o.Prim, o.HasPrim = interp.Bool(interp.ToBoolean(arg(args, 0))), true
		return interp.ObjValue(o), nil
	}
	r.ctor("Boolean", 1, proto, call, construct)

	thisBool := func(in *interp.Interp, this interp.Value, method string) (bool, error) {
		if this.Kind() == interp.KindBool {
			return this.BoolVal(), nil
		}
		if this.IsObject() && this.Obj().Class == "Boolean" && this.Obj().HasPrim {
			return this.Obj().Prim.BoolVal(), nil
		}
		return false, in.TypeErrorf("%s requires that 'this' be a Boolean", method)
	}
	r.method(proto, "Boolean.prototype.toString", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		b, err := thisBool(in, this, "Boolean.prototype.toString")
		if err != nil {
			return interp.Undefined(), err
		}
		if b {
			return interp.String("true"), nil
		}
		return interp.String("false"), nil
	})
	r.method(proto, "Boolean.prototype.valueOf", 0, func(in *interp.Interp, this interp.Value, args []interp.Value) (interp.Value, error) {
		b, err := thisBool(in, this, "Boolean.prototype.valueOf")
		if err != nil {
			return interp.Undefined(), err
		}
		return interp.Bool(b), nil
	})
}
